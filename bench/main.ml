(* Benchmark harness.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- tables  -- only regenerate the paper tables
     dune exec bench/main.exe -- micro   -- only the Bechamel microbenchmarks

   Two jobs live here:

   1. "tables": regenerate every table and figure of the paper at full
      trace scale on the Ba_par pool and print them (the same output
      `experiments all` produces), followed by a JSON record of the
      per-workload evaluation wall times — this is the reproduction
      artifact.

   2. "micro": Bechamel timings with one Test.make per table/figure (the
      regeneration pipelines at reduced trace scale, so the timer can
      iterate) plus microbenchmarks of the three alignment algorithms and
      of the simulation substrate. *)

open Bechamel
open Toolkit

let reduced_steps = 30_000

(* A profiled mid-size workload for the algorithm microbenchmarks; gcc has
   the most procedures and branch sites.  The profile comes from the
   process-wide Profiled memo rather than a toplevel [lazy]: Lazy.force
   from two domains at once raises [Lazy.Undefined], the memo blocks the
   second caller instead. *)
let gcc_profile () =
  let w = Option.get (Ba_workloads.Spec.by_name "gcc") in
  snd (Ba_workloads.Profiled.get ~max_steps:reduced_steps w)

let subset names = List.filter_map Ba_workloads.Spec.by_name names

let table_workloads =
  subset [ "alvinn"; "swm256"; "compress"; "espresso"; "gcc"; "groff" ]

let fig4_workloads = subset [ "alvinn"; "eqntott"; "sc" ]

let evaluate workloads =
  Ba_report.Harness.evaluate_suite ~max_steps:reduced_steps workloads

(* One Test.make per table / figure: each runs that table's full
   regeneration pipeline (profile, align, multi-architecture simulation,
   formatting) over a representative subset at reduced scale. *)
let table_tests =
  Test.make_grouped ~name:"tables"
    [
      Test.make ~name:"table1" (Staged.stage (fun () -> Ba_report.Tables.table1 ()));
      Test.make ~name:"table2"
        (Staged.stage (fun () -> Ba_report.Tables.table2 (evaluate table_workloads)));
      Test.make ~name:"table3"
        (Staged.stage (fun () -> Ba_report.Tables.table3 (evaluate table_workloads)));
      Test.make ~name:"table4"
        (Staged.stage (fun () -> Ba_report.Tables.table4 (evaluate table_workloads)));
      Test.make ~name:"fig4"
        (Staged.stage (fun () -> Ba_report.Tables.fig4 (evaluate fig4_workloads)));
    ]

let align_with algo =
  let profile = gcc_profile () in
  ignore (Ba_core.Align.align_program algo ~arch:Ba_core.Cost_model.Fallthrough profile)

let algorithm_tests =
  Test.make_grouped ~name:"alignment"
    [
      Test.make ~name:"greedy" (Staged.stage (fun () -> align_with Ba_core.Align.Greedy));
      Test.make ~name:"cost" (Staged.stage (fun () -> align_with Ba_core.Align.Cost));
      Test.make ~name:"try5" (Staged.stage (fun () -> align_with (Ba_core.Align.Tryn 5)));
      Test.make ~name:"try15" (Staged.stage (fun () -> align_with (Ba_core.Align.Tryn 15)));
    ]

let substrate_tests =
  let program =
    (Option.get (Ba_workloads.Spec.by_name "espresso")).Ba_workloads.Spec.build ()
  in
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"interpret-30k-steps"
        (Staged.stage (fun () ->
             ignore
               (Ba_exec.Engine.run ~max_steps:reduced_steps
                  (Ba_layout.Image.original program))));
      Test.make ~name:"simulate-6-archs"
        (Staged.stage (fun () ->
             ignore
               (Ba_sim.Runner.simulate ~max_steps:reduced_steps
                  ~archs:
                    [
                      Ba_sim.Bep.Static_fallthrough;
                      Ba_sim.Bep.Static_btfnt;
                      Ba_sim.Bep.Pht_direct { entries = 4096 };
                      Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 };
                      Ba_sim.Bep.Btb_arch { entries = 64; assoc = 2 };
                      Ba_sim.Bep.Btb_arch { entries = 256; assoc = 4 };
                    ]
                  (Ba_layout.Image.original program))));
    ]

let run_micro () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ~kde:(Some 100) ()
  in
  let measure_and_analyze tests =
    let raw = Benchmark.all cfg instances tests in
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  List.iter (fun i -> Bechamel_notty.Unit.add i (Measure.unit i)) instances;
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 120; h = 1 }
  in
  List.iter
    (fun tests ->
      let results = measure_and_analyze tests in
      Notty_unix.output_image
        (Notty_unix.eol
           (Bechamel_notty.Multiple.image_of_ols_results ~rect:window
              ~predictor:Measure.run results)))
    [ table_tests; algorithm_tests; substrate_tests ]

(* Perf-trajectory record: BENCH_<n>.json.

   For every workload, time one full harness evaluation in
   interpret-every-image mode against record-once/replay-many mode — each
   from a cold Profiled cache, so both sides pay their own profiling pass —
   and record the packed trace's size.  The file number self-advances past
   any BENCH_*.json already in the working directory, so successive runs
   accumulate a trajectory; CI uploads the file as an artifact. *)
let record_steps = 200_000

let next_bench_path () =
  let n =
    Array.fold_left
      (fun acc f ->
        if
          String.length f >= 12
          && String.sub f 0 6 = "BENCH_"
          && Filename.check_suffix f ".json"
        then
          match int_of_string_opt (String.sub f 6 (String.length f - 11)) with
          | Some n -> max acc n
          | None -> acc
        else acc)
      0 (Sys.readdir ".")
  in
  Printf.sprintf "BENCH_%d.json" (n + 1)

let time_run f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let run_record () =
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        Ba_workloads.Profiled.clear ();
        let interpret_s =
          time_run (fun () ->
              Ba_report.Harness.evaluate ~max_steps:record_steps ~replay:false w)
        in
        Ba_workloads.Profiled.clear ();
        let replay_s =
          time_run (fun () -> Ba_report.Harness.evaluate ~max_steps:record_steps w)
        in
        let program, profile, trace =
          Ba_workloads.Profiled.get_traced ~max_steps:record_steps w
        in
        (* The static conflict analysis stage, from the warm profile: one
           full default-suite pass over the original image's address map. *)
        let analyze_s =
          time_run (fun () ->
              Ba_conflict.Analyze.analyze ~profile
                (Ba_layout.Image.original ~profile program))
        in
        (* The abstract-interpretation bound stage: price the original
           image under all five cost-model architectures. *)
        let bound_s =
          time_run (fun () ->
              let image = Ba_layout.Image.original ~profile program in
              List.iter
                (fun model ->
                  ignore
                    (Ba_bound.Analyze.bounds
                       ~arch:(Ba_bound.Analyze.arch_of_model model ~profile image)
                       ~profile image))
                Ba_report.Gap.models)
        in
        (* Try15 candidate scoring, delta vs full: price the same sampled
           one-move neighbours of the Try15 layout with the incremental
           evaluator (one Stream pass amortised, O(affected sites) per
           candidate) and with a full trace replay per candidate.  Both
           sides produce identical integers (test_delta.ml's wall); the
           ratio is the point of the delta subsystem. *)
        let delta_s, full_s =
          let base =
            Ba_core.Align.align_program (Ba_core.Align.Tryn 15)
              ~arch:Ba_core.Cost_model.Btfnt profile
          in
          let moves =
            List.filteri
              (fun i _ -> i < 24)
              (Ba_delta.Move.enumerate
                 ~cond_counts:(fun p b -> Ba_cfg.Profile.cond_counts profile p b)
                 program base)
          in
          let spec = Ba_delta.Eval.spec_of_model Ba_core.Cost_model.Btfnt in
          let ev = Ba_delta.Eval.create ~specs:[| spec |] profile trace base in
          let delta_s =
            time_run (fun () ->
                List.iter
                  (fun mv ->
                    ignore
                      (Ba_delta.Eval.cost_arch ev 0 (Ba_delta.Move.apply base mv)
                        : int))
                  moves)
          in
          let full_s =
            time_run (fun () ->
                List.iter
                  (fun mv ->
                    let image =
                      Ba_layout.Image.build ~profile program
                        (Ba_delta.Move.apply base mv)
                    in
                    let arch = Ba_delta.Eval.to_arch spec ~image ~profile in
                    ignore
                      (Ba_sim.Runner.simulate ~max_steps:record_steps ~trace
                         ~archs:[ arch ] image
                        : Ba_sim.Runner.outcome))
                  moves)
          in
          (delta_s, full_s)
        in
        (* ExtTsp chain-merge pricing, incremental vs from-scratch: run
           the same merge loop twice, once reading the windowed
           evaluator's cached total after every merge and once
           recomputing every edge with scratch_total.  Both sides see
           identical floats (test_exttsp.ml's wall holds them
           bit-equal); the ratio is what incremental merge pricing
           buys. *)
        let exttsp_delta_s, exttsp_full_s =
          let merge_loop ~price pid =
            let ev = Ba_core.Exttsp.Eval.create profile pid in
            let rec loop () =
              match Ba_core.Exttsp.Eval.best_merge ev with
              | None -> ()
              | Some (a, b, _) ->
                Ba_core.Exttsp.Eval.merge ev a b;
                ignore (price ev : float);
                loop ()
            in
            loop ()
          in
          let each price () =
            for pid = 0 to Ba_ir.Program.n_procs program - 1 do
              merge_loop ~price pid
            done
          in
          ( time_run (each Ba_core.Exttsp.Eval.total),
            time_run (each Ba_core.Exttsp.Eval.scratch_total) )
        in
        ( w.Ba_workloads.Spec.name, interpret_s, replay_s, analyze_s, bound_s,
          delta_s, full_s, exttsp_delta_s, exttsp_full_s, trace ))
      Ba_workloads.Spec.all
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let total_interpret = total (fun (_, i, _, _, _, _, _, _, _, _) -> i) in
  let total_replay = total (fun (_, _, r, _, _, _, _, _, _, _) -> r) in
  let total_analyze = total (fun (_, _, _, a, _, _, _, _, _, _) -> a) in
  let total_bound = total (fun (_, _, _, _, b, _, _, _, _, _) -> b) in
  let total_delta = total (fun (_, _, _, _, _, d, _, _, _, _) -> d) in
  let total_full = total (fun (_, _, _, _, _, _, f, _, _, _) -> f) in
  let total_exttsp_delta = total (fun (_, _, _, _, _, _, _, d, _, _) -> d) in
  let total_exttsp_full = total (fun (_, _, _, _, _, _, _, _, f, _) -> f) in
  let json =
    Ba_util.Json.Obj
      [
        ("schema", Ba_util.Json.String "ba-bench-trajectory/1");
        ("max_steps", Ba_util.Json.Int record_steps);
        ( "workloads",
          Ba_util.Json.List
            (List.map
               (fun
                 ( name, interpret_s, replay_s, analyze_s, bound_s, delta_s,
                   full_s, exttsp_delta_s, exttsp_full_s, trace )
               ->
                 Ba_util.Json.Obj
                   [
                     ("workload", Ba_util.Json.String name);
                     ("interpret_s", Ba_util.Json.Float interpret_s);
                     ("replay_s", Ba_util.Json.Float replay_s);
                     ("analyze_s", Ba_util.Json.Float analyze_s);
                     ("bound_s", Ba_util.Json.Float bound_s);
                     ("delta_s", Ba_util.Json.Float delta_s);
                     ("full_s", Ba_util.Json.Float full_s);
                     ("exttsp_delta_s", Ba_util.Json.Float exttsp_delta_s);
                     ("exttsp_full_s", Ba_util.Json.Float exttsp_full_s);
                     ("speedup", Ba_util.Json.Float (interpret_s /. replay_s));
                     ("delta_speedup", Ba_util.Json.Float (full_s /. delta_s));
                     ( "exttsp_speedup",
                       Ba_util.Json.Float (exttsp_full_s /. exttsp_delta_s) );
                     ( "trace_bytes",
                       Ba_util.Json.Int (Ba_trace.Trace.byte_size trace) );
                     ("trace_steps", Ba_util.Json.Int trace.Ba_trace.Trace.steps);
                   ])
               rows) );
        ("total_interpret_s", Ba_util.Json.Float total_interpret);
        ("total_replay_s", Ba_util.Json.Float total_replay);
        ("total_analyze_s", Ba_util.Json.Float total_analyze);
        ("total_bound_s", Ba_util.Json.Float total_bound);
        ("total_delta_s", Ba_util.Json.Float total_delta);
        ("total_full_s", Ba_util.Json.Float total_full);
        ("total_exttsp_delta_s", Ba_util.Json.Float total_exttsp_delta);
        ("total_exttsp_full_s", Ba_util.Json.Float total_exttsp_full);
        ("total_speedup", Ba_util.Json.Float (total_interpret /. total_replay));
        ( "total_delta_speedup",
          Ba_util.Json.Float (total_full /. total_delta) );
        ( "total_exttsp_speedup",
          Ba_util.Json.Float (total_exttsp_full /. total_exttsp_delta) );
      ]
  in
  let path = next_bench_path () in
  let oc = open_out path in
  output_string oc (Ba_util.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "== Perf trajectory (interpret vs replay, %d steps) ==\n" record_steps;
  List.iter
    (fun
      ( name, interpret_s, replay_s, analyze_s, bound_s, delta_s, full_s,
        exttsp_delta_s, exttsp_full_s, trace )
    ->
      Printf.printf
        "%-12s interpret %6.3fs  replay %6.3fs  analyze %6.3fs  bound %6.3fs  \
         speedup %5.2fx  delta %8.5fs  full %6.3fs  delta-speedup %7.1fx  \
         exttsp %8.5fs/%8.5fs  trace %d B\n"
        name interpret_s replay_s analyze_s bound_s
        (interpret_s /. replay_s)
        delta_s full_s (full_s /. delta_s) exttsp_delta_s exttsp_full_s
        (Ba_trace.Trace.byte_size trace))
    rows;
  Printf.printf
    "%-12s interpret %6.3fs  replay %6.3fs  analyze %6.3fs  bound %6.3fs  \
     speedup %5.2fx  delta %8.5fs  full %6.3fs  delta-speedup %7.1fx  \
     exttsp %8.5fs/%8.5fs (%5.1fx)\n"
    "TOTAL" total_interpret total_replay total_analyze total_bound
    (total_interpret /. total_replay)
    total_delta total_full (total_full /. total_delta)
    total_exttsp_delta total_exttsp_full
    (total_exttsp_full /. total_exttsp_delta);
  Printf.printf "wrote %s\n" path

(* Serve-mode load generator:

     dune exec bench/main.exe -- serve --clients C --requests R \
         --mix align,simulate,verify

   Spins an in-process {!Ba_serve.Server} three times against the same
   deterministic request table — cold cache at -j1, cold cache at -j4,
   warm cache at -j4 — and drives each instance with C pipelining client
   domains.  The serving contract is checked end to end: every request
   answered ok, all three waves byte-identical per request id, and the
   warm wave served mostly from the Profiled LRU.  Throughput,
   server-side latency percentiles and cache hit rates land in
   BENCH_<n>.json (schema ba-serve-bench/1); any violated check makes the
   run exit non-zero, so CI can gate on this binary alone. *)

module P = Ba_serve.Protocol

let serve_steps = 20_000
let serve_window = 8
let serve_algos = [| "try15"; "greedy"; "cost"; "exttsp"; "orig" |]
let serve_arches = [| "btfnt"; "fallthrough"; "pht" |]

let parse_serve_args () =
  let clients = ref 8 and requests = ref 1200 in
  let mix = ref [ P.Align; P.Simulate; P.Verify ] in
  let usage () =
    Printf.eprintf
      "usage: bench serve [--clients C] [--requests R] [--mix align,simulate,verify]\n";
    exit 1
  in
  let positive flag s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ ->
      Printf.eprintf "bench serve: %s wants a positive integer, got %S\n" flag s;
      usage ()
  in
  let parse_mix s =
    let kind k =
      match P.kind_of_name (String.trim k) with
      | Ok P.Metrics ->
        (* Metrics bodies carry wall-clock times, so they can never take
           part in the byte-identity checks. *)
        Printf.eprintf "bench serve: --mix takes compute kinds, not metrics\n";
        usage ()
      | Ok kind -> kind
      | Error msg ->
        Printf.eprintf "bench serve: %s\n" msg;
        usage ()
    in
    match String.split_on_char ',' s with
    | [] -> usage ()
    | ks -> List.map kind ks
  in
  let rec loop i =
    if i < Array.length Sys.argv then begin
      let value flag =
        if i + 1 >= Array.length Sys.argv then begin
          Printf.eprintf "bench serve: %s needs a value\n" flag;
          usage ()
        end
        else Sys.argv.(i + 1)
      in
      (match Sys.argv.(i) with
      | "--clients" -> clients := positive "--clients" (value "--clients")
      | "--requests" -> requests := positive "--requests" (value "--requests")
      | "--mix" -> mix := parse_mix (value "--mix")
      | other ->
        Printf.eprintf "bench serve: unknown flag %S\n" other;
        usage ());
      loop (i + 2)
    end
  in
  loop 2;
  (!clients, !requests, !mix)

(* The request table is a pure function of (requests, mix): workloads,
   algorithms and architectures rotate on independent periods, so every
   wave replays the identical id -> request mapping and responses can be
   compared byte for byte across waves. *)
let serve_request_table ~requests ~mix =
  let kinds = Array.of_list mix in
  let workloads = Array.of_list Ba_workloads.Spec.all in
  Array.init requests (fun i ->
      let w = workloads.(i mod Array.length workloads) in
      P.request ~workload:w.Ba_workloads.Spec.name
        ~algo:serve_algos.(i mod Array.length serve_algos)
        ~arch:serve_arches.(i mod Array.length serve_arches)
        ~max_steps:serve_steps ~id:i
        kinds.(i mod Array.length kinds))

type wave = {
  w_label : string;
  w_jobs : int;
  w_cold : bool;
  w_wall_s : float;
  w_retries : int;  (** overloaded rejections that were re-sent *)
  w_hits : int;
  w_misses : int;
  w_server : Ba_util.Json.t;  (** the metrics response's "server" block *)
  w_bodies : string array;  (** response body per request id; [""] = unanswered *)
}

let run_wave ~label ~jobs ~cold ~clients reqs =
  if cold then Ba_workloads.Profiled.clear ();
  let lru0 = Ba_workloads.Profiled.lru_stats () in
  let socket_path =
    Printf.sprintf "/tmp/ba-bench-%d-%s.sock" (Unix.getpid ()) label
  in
  let cfg =
    {
      (Ba_serve.Server.default_config ~socket_path) with
      jobs = Some jobs;
      install_signals = false;
    }
  in
  let handle = Ba_serve.Server.start cfg in
  let n = Array.length reqs in
  let bodies = Array.make n "" in
  let t0 = Unix.gettimeofday () in
  (* Each client owns the ids congruent to its index and keeps up to
     [serve_window] requests in flight; an overloaded rejection re-queues
     the id after a tiny backoff. *)
  let worker c =
    let cl = Ba_serve.Client.connect socket_path in
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      if i mod clients = c then Queue.add i queue
    done;
    let outstanding = ref 0 and retries = ref 0 in
    let rec pump () =
      if (not (Queue.is_empty queue)) || !outstanding > 0 then begin
        while !outstanding < serve_window && not (Queue.is_empty queue) do
          Ba_serve.Client.send cl reqs.(Queue.pop queue);
          incr outstanding
        done;
        (match Ba_serve.Client.recv cl with
        | None -> failwith "server closed the connection mid-wave"
        | Some r -> (
          decr outstanding;
          match r.P.status with
          | P.Ok_ -> bodies.(r.P.rid) <- Ba_util.Json.to_string r.P.body
          | P.Error_ msg ->
            failwith (Printf.sprintf "request %d failed: %s" r.P.rid msg)
          | P.Overloaded ->
            incr retries;
            ignore (Unix.select [] [] [] 0.002);
            Queue.add r.P.rid queue));
        pump ()
      end
    in
    pump ();
    Ba_serve.Client.close cl;
    !retries
  in
  let domains = List.init clients (fun c -> Domain.spawn (fun () -> worker c)) in
  let retries = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let wall_s = Unix.gettimeofday () -. t0 in
  let cl = Ba_serve.Client.connect socket_path in
  let m = Ba_serve.Client.call cl (P.request ~id:n P.Metrics) in
  Ba_serve.Client.close cl;
  Ba_serve.Server.stop handle;
  let lru1 = Ba_workloads.Profiled.lru_stats () in
  let w_server =
    Option.value ~default:Ba_util.Json.Null
      (Ba_util.Json.member "server" m.P.body)
  in
  {
    w_label = label;
    w_jobs = jobs;
    w_cold = cold;
    w_wall_s = wall_s;
    w_retries = retries;
    w_hits = lru1.Ba_par.Lru.hits - lru0.Ba_par.Lru.hits;
    w_misses = lru1.Ba_par.Lru.misses - lru0.Ba_par.Lru.misses;
    w_server;
    w_bodies = bodies;
  }

let run_serve () =
  let clients, requests, mix = parse_serve_args () in
  let reqs = serve_request_table ~requests ~mix in
  Printf.printf "== Serve bench: %d clients, %d requests, mix %s ==\n%!" clients
    requests
    (String.concat "," (List.map P.kind_name mix));
  let service_pct w field =
    match Ba_util.Json.member "service" w.w_server with
    | Some s ->
      Option.value ~default:0
        (Option.bind (Ba_util.Json.member field s) Ba_util.Json.to_int_opt)
    | None -> 0
  in
  let hit_rate w =
    float_of_int w.w_hits /. float_of_int (max 1 (w.w_hits + w.w_misses))
  in
  let report w =
    Printf.printf
      "%-8s -j%d  %6.2fs  %7.1f req/s  service p50 %6d us  p95 %6d us  p99 \
       %6d us  cache %d/%d (%.1f%% hit)%s\n\
       %!"
      w.w_label w.w_jobs w.w_wall_s
      (float_of_int requests /. w.w_wall_s)
      (service_pct w "p50_us") (service_pct w "p95_us")
      (service_pct w "p99_us") w.w_hits (w.w_hits + w.w_misses)
      (100.0 *. hit_rate w)
      (if w.w_retries > 0 then Printf.sprintf "  %d retries" w.w_retries
       else "")
  in
  let wave label jobs cold =
    let w = run_wave ~label ~jobs ~cold ~clients reqs in
    report w;
    w
  in
  let cold1 = wave "cold-j1" 1 true in
  let cold4 = wave "cold-j4" 4 true in
  let warm4 = wave "warm-j4" 4 false in
  let failures = ref [] in
  let check cond msg = if not cond then failures := msg :: !failures in
  List.iter
    (fun w ->
      let unanswered =
        Array.fold_left (fun acc b -> if b = "" then acc + 1 else acc) 0 w.w_bodies
      in
      check (unanswered = 0)
        (Printf.sprintf "%s: %d requests unanswered" w.w_label unanswered))
    [ cold1; cold4; warm4 ];
  let mismatches a b =
    let m = ref 0 in
    Array.iteri (fun i s -> if s <> b.w_bodies.(i) then incr m) a.w_bodies;
    !m
  in
  let m14 = mismatches cold1 cold4 in
  let m1w = mismatches cold1 warm4 in
  check (m14 = 0)
    (Printf.sprintf "cold -j1 vs cold -j4: %d response bodies differ" m14);
  check (m1w = 0)
    (Printf.sprintf "cold -j1 vs warm -j4: %d response bodies differ" m1w);
  let warm_rate = hit_rate warm4 in
  check (warm_rate > 0.5)
    (Printf.sprintf "warm hit rate %.3f is not > 0.5" warm_rate);
  let wave_json w =
    Ba_util.Json.Obj
      [
        ("label", Ba_util.Json.String w.w_label);
        ("jobs", Ba_util.Json.Int w.w_jobs);
        ("cold", Ba_util.Json.Bool w.w_cold);
        ("wall_s", Ba_util.Json.Float w.w_wall_s);
        ( "throughput_rps",
          Ba_util.Json.Float (float_of_int requests /. w.w_wall_s) );
        ("overload_retries", Ba_util.Json.Int w.w_retries);
        ("cache_hits", Ba_util.Json.Int w.w_hits);
        ("cache_misses", Ba_util.Json.Int w.w_misses);
        ("cache_hit_rate", Ba_util.Json.Float (hit_rate w));
        ("server", w.w_server);
      ]
  in
  let json =
    Ba_util.Json.Obj
      [
        ("schema", Ba_util.Json.String "ba-serve-bench/1");
        ("clients", Ba_util.Json.Int clients);
        ("requests", Ba_util.Json.Int requests);
        ( "mix",
          Ba_util.Json.List
            (List.map (fun k -> Ba_util.Json.String (P.kind_name k)) mix) );
        ("max_steps", Ba_util.Json.Int serve_steps);
        ("waves", Ba_util.Json.List (List.map wave_json [ cold1; cold4; warm4 ]));
        ("identical_cold_j1_vs_j4", Ba_util.Json.Bool (m14 = 0));
        ("identical_cold_vs_warm", Ba_util.Json.Bool (m1w = 0));
        ("warm_hit_rate", Ba_util.Json.Float warm_rate);
      ]
  in
  let path = next_bench_path () in
  let oc = open_out path in
  output_string oc (Ba_util.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" path;
  match List.rev !failures with
  | [] -> ()
  | fs ->
    List.iter (fun msg -> Printf.eprintf "bench serve: FAILED: %s\n" msg) fs;
    exit 1

let run_tables () =
  let registry = Ba_obs.Registry.create () in
  let evals, stats =
    Ba_obs.Registry.with_registry registry (fun () ->
        Ba_report.Harness.evaluate_suite_timed Ba_workloads.Spec.all)
  in
  print_endline "== Table 1: branch cost model (cycles) ==";
  print_string (Ba_report.Tables.table1 ());
  print_endline "\n== Table 2: measured attributes of the traced programs ==";
  print_string (Ba_report.Tables.table2 evals);
  print_endline "\n== Table 3: relative CPI, static prediction architectures ==";
  print_string (Ba_report.Tables.table3 evals);
  print_endline "\n== Table 4: relative CPI, dynamic prediction architectures ==";
  print_string (Ba_report.Tables.table4 evals);
  print_endline "\n== Figure 4: relative execution time, Alpha 21064 model ==";
  print_string (Ba_report.Tables.fig4 evals);
  (* Machine-readable timing record for tracking evaluation cost across
     commits; one JSON object per run on a line of its own. *)
  print_endline "\n== Evaluation timings (JSON) ==";
  print_endline (Ba_util.Json.to_string (Ba_par.Stats.to_json stats));
  (* Per-run pipeline metrics record, with wall-clock span times included
     (this record tracks cost across commits, it is not diffed). *)
  print_endline "\n== Pipeline metrics (JSON) ==";
  print_string (Ba_obs.Sink.emit ~times:true Ba_obs.Sink.Json registry);
  print_newline ();
  run_record ()

let () =
  (match Ba_par.Pool.check_env () with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "bench: %s\n" msg;
    exit 2);
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "tables" -> run_tables ()
  | "micro" -> run_micro ()
  | "record" -> run_record ()
  | "serve" -> run_serve ()
  | "all" ->
    run_tables ();
    print_endline "\n== Bechamel microbenchmarks (time per run) ==";
    run_micro ()
  | other ->
    Printf.eprintf
      "unknown argument %S (expected: tables | micro | record | serve | all)\n"
      other;
    exit 1
