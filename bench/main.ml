(* Benchmark harness.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- tables  -- only regenerate the paper tables
     dune exec bench/main.exe -- micro   -- only the Bechamel microbenchmarks

   Two jobs live here:

   1. "tables": regenerate every table and figure of the paper at full
      trace scale on the Ba_par pool and print them (the same output
      `experiments all` produces), followed by a JSON record of the
      per-workload evaluation wall times — this is the reproduction
      artifact.

   2. "micro": Bechamel timings with one Test.make per table/figure (the
      regeneration pipelines at reduced trace scale, so the timer can
      iterate) plus microbenchmarks of the three alignment algorithms and
      of the simulation substrate. *)

open Bechamel
open Toolkit

let reduced_steps = 30_000

(* A profiled mid-size workload for the algorithm microbenchmarks; gcc has
   the most procedures and branch sites.  The profile comes from the
   process-wide Profiled memo rather than a toplevel [lazy]: Lazy.force
   from two domains at once raises [Lazy.Undefined], the memo blocks the
   second caller instead. *)
let gcc_profile () =
  let w = Option.get (Ba_workloads.Spec.by_name "gcc") in
  snd (Ba_workloads.Profiled.get ~max_steps:reduced_steps w)

let subset names = List.filter_map Ba_workloads.Spec.by_name names

let table_workloads =
  subset [ "alvinn"; "swm256"; "compress"; "espresso"; "gcc"; "groff" ]

let fig4_workloads = subset [ "alvinn"; "eqntott"; "sc" ]

let evaluate workloads =
  Ba_report.Harness.evaluate_suite ~max_steps:reduced_steps workloads

(* One Test.make per table / figure: each runs that table's full
   regeneration pipeline (profile, align, multi-architecture simulation,
   formatting) over a representative subset at reduced scale. *)
let table_tests =
  Test.make_grouped ~name:"tables"
    [
      Test.make ~name:"table1" (Staged.stage (fun () -> Ba_report.Tables.table1 ()));
      Test.make ~name:"table2"
        (Staged.stage (fun () -> Ba_report.Tables.table2 (evaluate table_workloads)));
      Test.make ~name:"table3"
        (Staged.stage (fun () -> Ba_report.Tables.table3 (evaluate table_workloads)));
      Test.make ~name:"table4"
        (Staged.stage (fun () -> Ba_report.Tables.table4 (evaluate table_workloads)));
      Test.make ~name:"fig4"
        (Staged.stage (fun () -> Ba_report.Tables.fig4 (evaluate fig4_workloads)));
    ]

let align_with algo =
  let profile = gcc_profile () in
  ignore (Ba_core.Align.align_program algo ~arch:Ba_core.Cost_model.Fallthrough profile)

let algorithm_tests =
  Test.make_grouped ~name:"alignment"
    [
      Test.make ~name:"greedy" (Staged.stage (fun () -> align_with Ba_core.Align.Greedy));
      Test.make ~name:"cost" (Staged.stage (fun () -> align_with Ba_core.Align.Cost));
      Test.make ~name:"try5" (Staged.stage (fun () -> align_with (Ba_core.Align.Tryn 5)));
      Test.make ~name:"try15" (Staged.stage (fun () -> align_with (Ba_core.Align.Tryn 15)));
    ]

let substrate_tests =
  let program =
    (Option.get (Ba_workloads.Spec.by_name "espresso")).Ba_workloads.Spec.build ()
  in
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"interpret-30k-steps"
        (Staged.stage (fun () ->
             ignore
               (Ba_exec.Engine.run ~max_steps:reduced_steps
                  (Ba_layout.Image.original program))));
      Test.make ~name:"simulate-6-archs"
        (Staged.stage (fun () ->
             ignore
               (Ba_sim.Runner.simulate ~max_steps:reduced_steps
                  ~archs:
                    [
                      Ba_sim.Bep.Static_fallthrough;
                      Ba_sim.Bep.Static_btfnt;
                      Ba_sim.Bep.Pht_direct { entries = 4096 };
                      Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 };
                      Ba_sim.Bep.Btb_arch { entries = 64; assoc = 2 };
                      Ba_sim.Bep.Btb_arch { entries = 256; assoc = 4 };
                    ]
                  (Ba_layout.Image.original program))));
    ]

let run_micro () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ~kde:(Some 100) ()
  in
  let measure_and_analyze tests =
    let raw = Benchmark.all cfg instances tests in
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  List.iter (fun i -> Bechamel_notty.Unit.add i (Measure.unit i)) instances;
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 120; h = 1 }
  in
  List.iter
    (fun tests ->
      let results = measure_and_analyze tests in
      Notty_unix.output_image
        (Notty_unix.eol
           (Bechamel_notty.Multiple.image_of_ols_results ~rect:window
              ~predictor:Measure.run results)))
    [ table_tests; algorithm_tests; substrate_tests ]

(* Perf-trajectory record: BENCH_<n>.json.

   For every workload, time one full harness evaluation in
   interpret-every-image mode against record-once/replay-many mode — each
   from a cold Profiled cache, so both sides pay their own profiling pass —
   and record the packed trace's size.  The file number self-advances past
   any BENCH_*.json already in the working directory, so successive runs
   accumulate a trajectory; CI uploads the file as an artifact. *)
let record_steps = 200_000

let next_bench_path () =
  let n =
    Array.fold_left
      (fun acc f ->
        if
          String.length f >= 12
          && String.sub f 0 6 = "BENCH_"
          && Filename.check_suffix f ".json"
        then
          match int_of_string_opt (String.sub f 6 (String.length f - 11)) with
          | Some n -> max acc n
          | None -> acc
        else acc)
      0 (Sys.readdir ".")
  in
  Printf.sprintf "BENCH_%d.json" (n + 1)

let time_run f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

let run_record () =
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        Ba_workloads.Profiled.clear ();
        let interpret_s =
          time_run (fun () ->
              Ba_report.Harness.evaluate ~max_steps:record_steps ~replay:false w)
        in
        Ba_workloads.Profiled.clear ();
        let replay_s =
          time_run (fun () -> Ba_report.Harness.evaluate ~max_steps:record_steps w)
        in
        let program, profile, trace =
          Ba_workloads.Profiled.get_traced ~max_steps:record_steps w
        in
        (* The static conflict analysis stage, from the warm profile: one
           full default-suite pass over the original image's address map. *)
        let analyze_s =
          time_run (fun () ->
              Ba_conflict.Analyze.analyze ~profile
                (Ba_layout.Image.original ~profile program))
        in
        (* The abstract-interpretation bound stage: price the original
           image under all five cost-model architectures. *)
        let bound_s =
          time_run (fun () ->
              let image = Ba_layout.Image.original ~profile program in
              List.iter
                (fun model ->
                  ignore
                    (Ba_bound.Analyze.bounds
                       ~arch:(Ba_bound.Analyze.arch_of_model model ~profile image)
                       ~profile image))
                Ba_report.Gap.models)
        in
        (* Try15 candidate scoring, delta vs full: price the same sampled
           one-move neighbours of the Try15 layout with the incremental
           evaluator (one Stream pass amortised, O(affected sites) per
           candidate) and with a full trace replay per candidate.  Both
           sides produce identical integers (test_delta.ml's wall); the
           ratio is the point of the delta subsystem. *)
        let delta_s, full_s =
          let base =
            Ba_core.Align.align_program (Ba_core.Align.Tryn 15)
              ~arch:Ba_core.Cost_model.Btfnt profile
          in
          let moves =
            List.filteri
              (fun i _ -> i < 24)
              (Ba_delta.Move.enumerate
                 ~cond_counts:(fun p b -> Ba_cfg.Profile.cond_counts profile p b)
                 program base)
          in
          let spec = Ba_delta.Eval.spec_of_model Ba_core.Cost_model.Btfnt in
          let ev = Ba_delta.Eval.create ~specs:[| spec |] profile trace base in
          let delta_s =
            time_run (fun () ->
                List.iter
                  (fun mv ->
                    ignore
                      (Ba_delta.Eval.cost_arch ev 0 (Ba_delta.Move.apply base mv)
                        : int))
                  moves)
          in
          let full_s =
            time_run (fun () ->
                List.iter
                  (fun mv ->
                    let image =
                      Ba_layout.Image.build ~profile program
                        (Ba_delta.Move.apply base mv)
                    in
                    let arch = Ba_delta.Eval.to_arch spec ~image ~profile in
                    ignore
                      (Ba_sim.Runner.simulate ~max_steps:record_steps ~trace
                         ~archs:[ arch ] image
                        : Ba_sim.Runner.outcome))
                  moves)
          in
          (delta_s, full_s)
        in
        (* ExtTsp chain-merge pricing, incremental vs from-scratch: run
           the same merge loop twice, once reading the windowed
           evaluator's cached total after every merge and once
           recomputing every edge with scratch_total.  Both sides see
           identical floats (test_exttsp.ml's wall holds them
           bit-equal); the ratio is what incremental merge pricing
           buys. *)
        let exttsp_delta_s, exttsp_full_s =
          let merge_loop ~price pid =
            let ev = Ba_core.Exttsp.Eval.create profile pid in
            let rec loop () =
              match Ba_core.Exttsp.Eval.best_merge ev with
              | None -> ()
              | Some (a, b, _) ->
                Ba_core.Exttsp.Eval.merge ev a b;
                ignore (price ev : float);
                loop ()
            in
            loop ()
          in
          let each price () =
            for pid = 0 to Ba_ir.Program.n_procs program - 1 do
              merge_loop ~price pid
            done
          in
          ( time_run (each Ba_core.Exttsp.Eval.total),
            time_run (each Ba_core.Exttsp.Eval.scratch_total) )
        in
        ( w.Ba_workloads.Spec.name, interpret_s, replay_s, analyze_s, bound_s,
          delta_s, full_s, exttsp_delta_s, exttsp_full_s, trace ))
      Ba_workloads.Spec.all
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let total_interpret = total (fun (_, i, _, _, _, _, _, _, _, _) -> i) in
  let total_replay = total (fun (_, _, r, _, _, _, _, _, _, _) -> r) in
  let total_analyze = total (fun (_, _, _, a, _, _, _, _, _, _) -> a) in
  let total_bound = total (fun (_, _, _, _, b, _, _, _, _, _) -> b) in
  let total_delta = total (fun (_, _, _, _, _, d, _, _, _, _) -> d) in
  let total_full = total (fun (_, _, _, _, _, _, f, _, _, _) -> f) in
  let total_exttsp_delta = total (fun (_, _, _, _, _, _, _, d, _, _) -> d) in
  let total_exttsp_full = total (fun (_, _, _, _, _, _, _, _, f, _) -> f) in
  let json =
    Ba_util.Json.Obj
      [
        ("schema", Ba_util.Json.String "ba-bench-trajectory/1");
        ("max_steps", Ba_util.Json.Int record_steps);
        ( "workloads",
          Ba_util.Json.List
            (List.map
               (fun
                 ( name, interpret_s, replay_s, analyze_s, bound_s, delta_s,
                   full_s, exttsp_delta_s, exttsp_full_s, trace )
               ->
                 Ba_util.Json.Obj
                   [
                     ("workload", Ba_util.Json.String name);
                     ("interpret_s", Ba_util.Json.Float interpret_s);
                     ("replay_s", Ba_util.Json.Float replay_s);
                     ("analyze_s", Ba_util.Json.Float analyze_s);
                     ("bound_s", Ba_util.Json.Float bound_s);
                     ("delta_s", Ba_util.Json.Float delta_s);
                     ("full_s", Ba_util.Json.Float full_s);
                     ("exttsp_delta_s", Ba_util.Json.Float exttsp_delta_s);
                     ("exttsp_full_s", Ba_util.Json.Float exttsp_full_s);
                     ("speedup", Ba_util.Json.Float (interpret_s /. replay_s));
                     ("delta_speedup", Ba_util.Json.Float (full_s /. delta_s));
                     ( "exttsp_speedup",
                       Ba_util.Json.Float (exttsp_full_s /. exttsp_delta_s) );
                     ( "trace_bytes",
                       Ba_util.Json.Int (Ba_trace.Trace.byte_size trace) );
                     ("trace_steps", Ba_util.Json.Int trace.Ba_trace.Trace.steps);
                   ])
               rows) );
        ("total_interpret_s", Ba_util.Json.Float total_interpret);
        ("total_replay_s", Ba_util.Json.Float total_replay);
        ("total_analyze_s", Ba_util.Json.Float total_analyze);
        ("total_bound_s", Ba_util.Json.Float total_bound);
        ("total_delta_s", Ba_util.Json.Float total_delta);
        ("total_full_s", Ba_util.Json.Float total_full);
        ("total_exttsp_delta_s", Ba_util.Json.Float total_exttsp_delta);
        ("total_exttsp_full_s", Ba_util.Json.Float total_exttsp_full);
        ("total_speedup", Ba_util.Json.Float (total_interpret /. total_replay));
        ( "total_delta_speedup",
          Ba_util.Json.Float (total_full /. total_delta) );
        ( "total_exttsp_speedup",
          Ba_util.Json.Float (total_exttsp_full /. total_exttsp_delta) );
      ]
  in
  let path = next_bench_path () in
  let oc = open_out path in
  output_string oc (Ba_util.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "== Perf trajectory (interpret vs replay, %d steps) ==\n" record_steps;
  List.iter
    (fun
      ( name, interpret_s, replay_s, analyze_s, bound_s, delta_s, full_s,
        exttsp_delta_s, exttsp_full_s, trace )
    ->
      Printf.printf
        "%-12s interpret %6.3fs  replay %6.3fs  analyze %6.3fs  bound %6.3fs  \
         speedup %5.2fx  delta %8.5fs  full %6.3fs  delta-speedup %7.1fx  \
         exttsp %8.5fs/%8.5fs  trace %d B\n"
        name interpret_s replay_s analyze_s bound_s
        (interpret_s /. replay_s)
        delta_s full_s (full_s /. delta_s) exttsp_delta_s exttsp_full_s
        (Ba_trace.Trace.byte_size trace))
    rows;
  Printf.printf
    "%-12s interpret %6.3fs  replay %6.3fs  analyze %6.3fs  bound %6.3fs  \
     speedup %5.2fx  delta %8.5fs  full %6.3fs  delta-speedup %7.1fx  \
     exttsp %8.5fs/%8.5fs (%5.1fx)\n"
    "TOTAL" total_interpret total_replay total_analyze total_bound
    (total_interpret /. total_replay)
    total_delta total_full (total_full /. total_delta)
    total_exttsp_delta total_exttsp_full
    (total_exttsp_full /. total_exttsp_delta);
  Printf.printf "wrote %s\n" path

let run_tables () =
  let registry = Ba_obs.Registry.create () in
  let evals, stats =
    Ba_obs.Registry.with_registry registry (fun () ->
        Ba_report.Harness.evaluate_suite_timed Ba_workloads.Spec.all)
  in
  print_endline "== Table 1: branch cost model (cycles) ==";
  print_string (Ba_report.Tables.table1 ());
  print_endline "\n== Table 2: measured attributes of the traced programs ==";
  print_string (Ba_report.Tables.table2 evals);
  print_endline "\n== Table 3: relative CPI, static prediction architectures ==";
  print_string (Ba_report.Tables.table3 evals);
  print_endline "\n== Table 4: relative CPI, dynamic prediction architectures ==";
  print_string (Ba_report.Tables.table4 evals);
  print_endline "\n== Figure 4: relative execution time, Alpha 21064 model ==";
  print_string (Ba_report.Tables.fig4 evals);
  (* Machine-readable timing record for tracking evaluation cost across
     commits; one JSON object per run on a line of its own. *)
  print_endline "\n== Evaluation timings (JSON) ==";
  print_endline (Ba_util.Json.to_string (Ba_par.Stats.to_json stats));
  (* Per-run pipeline metrics record, with wall-clock span times included
     (this record tracks cost across commits, it is not diffed). *)
  print_endline "\n== Pipeline metrics (JSON) ==";
  print_string (Ba_obs.Sink.emit ~times:true Ba_obs.Sink.Json registry);
  print_newline ();
  run_record ()

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "tables" -> run_tables ()
  | "micro" -> run_micro ()
  | "record" -> run_record ()
  | "all" ->
    run_tables ();
    print_endline "\n== Bechamel microbenchmarks (time per run) ==";
    run_micro ()
  | other ->
    Printf.eprintf "unknown argument %S (expected: tables | micro | record | all)\n"
      other;
    exit 1
