(* Tests for Ba_util: RNG determinism and distribution sanity, statistics,
   ASCII table rendering. *)

open Ba_util

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose msg = Alcotest.(check (float 0.02)) msg

(* -- Rng ---------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 8 (fun _ -> Rng.int64 a) in
  let ys = List.init 8 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 7 in
  let _ = Rng.int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues stream" (Rng.int64 a) (Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 8 (fun _ -> Rng.int64 a) in
  let ys = List.init 8 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of range: %d" v
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "Rng.float out of range: %f" v
  done

let test_rng_bernoulli_rate () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  check_float_loose "bernoulli(0.3)" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_int_uniform () =
  let r = Rng.create 13 in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let rate = float_of_int c /. float_of_int n in
      if abs_float (rate -. 0.1) > 0.01 then
        Alcotest.failf "bucket %d rate %.3f too far from 0.1" i rate)
    counts

let test_rng_pick_weighted () =
  let r = Rng.create 17 in
  let n = 30_000 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to n do
    let v = Rng.pick_weighted r [| ("a", 1.0); ("b", 3.0) |] in
    Hashtbl.replace counts v (1 + try Hashtbl.find counts v with Not_found -> 0)
  done;
  let b = try Hashtbl.find counts "b" with Not_found -> 0 in
  check_float_loose "weighted pick" 0.75 (float_of_int b /. float_of_int n)

let test_rng_pick_weighted_zero_total () =
  let r = Rng.create 17 in
  Alcotest.check_raises "all-zero weights"
    (Invalid_argument "Rng.pick_weighted: weights must sum to a positive value")
    (fun () -> ignore (Rng.pick_weighted r [| ((), 0.0) |]))

let test_rng_shuffle_permutation () =
  let r = Rng.create 23 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* -- Stats -------------------------------------------------------------- *)

let test_summarize () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  check_float "mean" 2.5 s.Stats.mean;
  check_float "variance" 1.25 s.Stats.variance;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 4.0 s.Stats.max

let test_summarize_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize []))

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_percentile () =
  let xs = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  check_float "median" 3.0 (Stats.percentile 50.0 xs);
  check_float "p100" 5.0 (Stats.percentile 100.0 xs);
  check_float "p1" 1.0 (Stats.percentile 1.0 xs)

let test_quantile_sites () =
  (* Mirrors the paper's Q-50/Q-90 columns: how many sites cover a fraction
     of all executions, heaviest first. *)
  let weights = [ (0, 60); (1, 25); (2, 10); (3, 4); (4, 1) ] in
  Alcotest.(check int) "Q-50" 1 (Stats.quantile_sites ~weights ~fraction:0.5);
  Alcotest.(check int) "Q-90" 3 (Stats.quantile_sites ~weights ~fraction:0.9);
  Alcotest.(check int) "Q-99" 4 (Stats.quantile_sites ~weights ~fraction:0.99);
  Alcotest.(check int) "Q-100" 5 (Stats.quantile_sites ~weights ~fraction:1.0);
  Alcotest.(check int) "empty" 0 (Stats.quantile_sites ~weights:[] ~fraction:0.5)

let test_ratio_pct () =
  check_float "ratio" 0.5 (Stats.ratio 1 2);
  check_float "ratio by zero" 0.0 (Stats.ratio 1 0);
  check_float "pct" 25.0 (Stats.pct 1 4)

(* -- Ascii_table -------------------------------------------------------- *)

let test_table_render () =
  let columns = [ Ascii_table.column ~align:Ascii_table.Left "name"; Ascii_table.column "x" ] in
  let s = Ascii_table.render ~columns ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: _sep :: row1 :: row2 :: _ ->
    Alcotest.(check string) "header" "name    x" header;
    Alcotest.(check string) "row1" "alpha   1" row1;
    Alcotest.(check string) "row2" "b      22" row2
  | _ -> Alcotest.fail "unexpected table shape")

let test_table_width_mismatch () =
  let columns = [ Ascii_table.column "a"; Ascii_table.column "b" ] in
  Alcotest.check_raises "row width"
    (Invalid_argument "Ascii_table.render: row width mismatch") (fun () ->
      ignore (Ascii_table.render ~columns ~rows:[ [ "1" ] ]))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_table_grouped () =
  let columns = [ Ascii_table.column ~align:Ascii_table.Left "name" ] in
  let s =
    Ascii_table.render_grouped ~columns
      ~groups:[ ("G1", [ [ "x" ] ]); ("G2", [ [ "y" ] ]) ]
  in
  Alcotest.(check bool) "group header present" true (contains_substring s "-- G1 --");
  Alcotest.(check bool) "second group present" true (contains_substring s "-- G2 --")

let test_int_cell () =
  Alcotest.(check string) "thousands" "1,234,567" (Ascii_table.int_cell 1234567);
  Alcotest.(check string) "small" "42" (Ascii_table.int_cell 42);
  Alcotest.(check string) "negative" "-1,000" (Ascii_table.int_cell (-1000))

let test_float_cell () =
  Alcotest.(check string) "default decimals" "1.235" (Ascii_table.float_cell 1.2349);
  Alcotest.(check string) "one decimal" "1.2" (Ascii_table.float_cell ~decimals:1 1.2349)

(* -- QCheck properties --------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"Rng.int always in range" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let r = Rng.create seed in
        let v = Rng.int r bound in
        v >= 0 && v < bound);
    Test.make ~name:"shuffle preserves multiset" ~count:200
      (pair small_int (list small_int))
      (fun (seed, xs) ->
        let r = Rng.create seed in
        let a = Array.of_list xs in
        Rng.shuffle r a;
        List.sort compare (Array.to_list a) = List.sort compare xs);
    Test.make ~name:"percentile is a sample element" ~count:200
      (pair (list_of_size Gen.(int_range 1 20) (float_range (-100.) 100.)) (float_range 0. 100.))
      (fun (xs, p) -> List.mem (Stats.percentile p xs) xs);
    Test.make ~name:"quantile_sites monotone in fraction" ~count:200
      (list (pair small_int (int_range 0 100)))
      (fun weights ->
        Stats.quantile_sites ~weights ~fraction:0.5
        <= Stats.quantile_sites ~weights ~fraction:0.9);
  ]

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "int rejects non-positive" `Quick test_rng_int_rejects_nonpositive;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
        Alcotest.test_case "int uniformity" `Quick test_rng_int_uniform;
        Alcotest.test_case "pick_weighted rate" `Quick test_rng_pick_weighted;
        Alcotest.test_case "pick_weighted zero total" `Quick test_rng_pick_weighted_zero_total;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "summarize" `Quick test_summarize;
        Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "quantile_sites" `Quick test_quantile_sites;
        Alcotest.test_case "ratio/pct" `Quick test_ratio_pct;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        Alcotest.test_case "grouped" `Quick test_table_grouped;
        Alcotest.test_case "int_cell" `Quick test_int_cell;
        Alcotest.test_case "float_cell" `Quick test_float_cell;
      ] );
    ("util.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
