(* Tests for Ba_cfg: edges, profiles, graph utilities. *)

open Ba_ir
open Ba_cfg

let cond ?(behavior = Behavior.Bias 0.5) t f =
  Term.Cond { on_true = t; on_false = f; behavior }

(* Diamond with a loop:
   b0 -cond-> b1/b2; b1 -jump-> b3; b2 -jump-> b3; b3 -cond-> b0 (back) / b4; b4 ret *)
let diamond () =
  Proc.make ~name:"diamond"
    [|
      Block.make (cond 1 2);
      Block.make (Term.Jump 3);
      Block.make (Term.Jump 3);
      Block.make (cond 0 4);
      Block.make Term.Ret;
    |]

let test_edges_of_proc () =
  let edges = Edge.of_proc (diamond ()) in
  Alcotest.(check int) "edge count" 6 (List.length edges);
  let alignable = List.filter Edge.is_alignable edges in
  Alcotest.(check int) "all alignable" 6 (List.length alignable)

let test_edges_switch_not_alignable () =
  let p =
    Proc.make ~name:"sw"
      [|
        Block.make (Term.Switch { targets = [| (1, 1.0); (1, 2.0) |] });
        Block.make Term.Ret;
      |]
  in
  let edges = Edge.of_proc p in
  Alcotest.(check int) "two case edges" 2 (List.length edges);
  Alcotest.(check bool) "none alignable" true
    (List.for_all (fun e -> not (Edge.is_alignable e)) edges)

let test_profile_recording () =
  let p = diamond () in
  let prog = Program.make ~name:"t" [| Proc.make ~name:"main" [| Block.make Term.Halt |]; p |] in
  let prof = Profile.create prog in
  Profile.record_visit prof 1 0;
  Profile.record_visit prof 1 0;
  Profile.record_cond prof 1 0 true;
  Profile.record_cond prof 1 0 false;
  Profile.record_cond prof 1 0 true;
  Alcotest.(check int) "visits" 2 (Profile.visits prof 1 0);
  Alcotest.(check (pair int int)) "cond counts" (2, 1) (Profile.cond_counts prof 1 0);
  Alcotest.(check bool) "likely taken" true (Profile.likely_taken prof 1 0)

let test_profile_edge_weight () =
  let p = diamond () in
  let prog = Program.make ~name:"t" [| p |] in
  let prof = Profile.create prog in
  Profile.record_cond prof 0 0 true;
  Profile.record_cond prof 0 0 true;
  Profile.record_cond prof 0 0 false;
  Profile.record_visit prof 0 1;
  let w_true = Profile.edge_weight prof 0 { Edge.src = 0; dst = 1; kind = Edge.On_true } in
  let w_false = Profile.edge_weight prof 0 { Edge.src = 0; dst = 2; kind = Edge.On_false } in
  let w_flow = Profile.edge_weight prof 0 { Edge.src = 1; dst = 3; kind = Edge.Flow } in
  Alcotest.(check int) "on_true weight" 2 w_true;
  Alcotest.(check int) "on_false weight" 1 w_false;
  Alcotest.(check int) "flow weight" 1 w_flow

let test_profile_cond_counts_non_cond () =
  let p = diamond () in
  let prog = Program.make ~name:"t" [| p |] in
  let prof = Profile.create prog in
  Alcotest.check_raises "not a conditional"
    (Invalid_argument "Profile.cond_counts: not a conditional block") (fun () ->
      ignore (Profile.cond_counts prof 0 1))

let test_profile_merge () =
  let p = diamond () in
  let prog = Program.make ~name:"t" [| p |] in
  let mk f =
    let prof = Profile.create prog in
    f prof;
    prof
  in
  let p1 =
    mk (fun prof ->
        Profile.record_visit prof 0 0;
        Profile.record_cond prof 0 0 true)
  in
  let p2 =
    mk (fun prof ->
        Profile.record_visit prof 0 0;
        Profile.record_visit prof 0 0;
        Profile.record_cond prof 0 0 false)
  in
  let merged = Profile.merge [ p1; p2 ] in
  Alcotest.(check int) "visits summed" 3 (Profile.visits merged 0 0);
  Alcotest.(check (pair int int)) "cond counts summed" (1, 1)
    (Profile.cond_counts merged 0 0);
  (* Inputs untouched. *)
  Alcotest.(check int) "p1 unchanged" 1 (Profile.visits p1 0 0)

let test_profile_merge_rejects () =
  let prog1 = Program.make ~name:"a" [| diamond () |] in
  let prog2 = Program.make ~name:"b" [| diamond () |] in
  Alcotest.check_raises "empty" (Invalid_argument "Profile.merge: empty list") (fun () ->
      ignore (Profile.merge []));
  Alcotest.check_raises "different programs"
    (Invalid_argument "Profile.merge: profiles of different programs") (fun () ->
      ignore (Profile.merge [ Profile.create prog1; Profile.create prog2 ]))

let test_program_with_seed () =
  let prog = Program.make ~name:"t" ~seed:5 [| diamond () |] in
  let other = Ba_ir.Program.with_seed prog 9 in
  Alcotest.(check int) "new seed" 9 other.Program.seed;
  Alcotest.(check int) "original unchanged" 5 prog.Program.seed;
  Alcotest.(check bool) "same structure" true (prog.Program.procs == other.Program.procs)

let test_alignable_edges_sorted () =
  let p = diamond () in
  let prog = Program.make ~name:"t" [| p |] in
  let prof = Profile.create prog in
  Profile.record_cond prof 0 0 true;
  (* weight 1 on b0->b1 *)
  for _ = 1 to 5 do
    Profile.record_visit prof 0 2
  done;
  (* weight 5 on b2->b3 *)
  let edges = Profile.alignable_edges prof 0 in
  (match edges with
  | (first, w) :: _ ->
    Alcotest.(check int) "heaviest first" 5 w;
    Alcotest.(check int) "src" 2 first.Edge.src
  | [] -> Alcotest.fail "no edges");
  let weights = List.map snd edges in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) weights) weights

let test_dfs_preorder () =
  let order = Graph.dfs_preorder (diamond ()) in
  Alcotest.(check int) "starts at entry" 0 order.(0);
  Alcotest.(check int) "visits all" 5 (Array.length order)

let test_back_edges () =
  let bes = Graph.back_edges (diamond ()) in
  Alcotest.(check (list (pair int int))) "loop back edge" [ (3, 0) ] bes

let test_back_edges_self_loop () =
  let p =
    Proc.make ~name:"self"
      [| Block.make (cond 0 1); Block.make Term.Ret |]
  in
  Alcotest.(check (list (pair int int))) "self loop" [ (0, 0) ] (Graph.back_edges p)

let test_loop_depth () =
  let d = Graph.loop_depth (diamond ()) in
  Alcotest.(check int) "header in loop" 1 d.(0);
  Alcotest.(check int) "body in loop" 1 d.(1);
  Alcotest.(check int) "tail in loop" 1 d.(3);
  Alcotest.(check int) "exit outside" 0 d.(4)

let test_dot_output () =
  let s = Graph.dot (diamond ()) in
  Alcotest.(check bool) "digraph" true (String.length s > 0 && String.sub s 0 7 = "digraph")

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"generated programs validate" ~count:200 Gen_prog.program_arb
      (fun p -> Result.is_ok (Ba_ir.Program.validate p));
    Test.make ~name:"dfs reaches every block" ~count:200 Gen_prog.program_arb (fun p ->
        Array.for_all
          (fun proc ->
            Array.length (Graph.dfs_preorder proc) = Ba_ir.Proc.n_blocks proc)
          p.Program.procs);
    Test.make ~name:"alignable edges have out-degree <= 2 sources" ~count:200
      Gen_prog.program_arb (fun p ->
        Array.for_all
          (fun proc ->
            List.for_all
              (fun e ->
                Edge.is_alignable e = false
                || List.length
                     (Term.successors (Proc.block proc e.Edge.src).Block.term)
                   <= 2)
              (Edge.of_proc proc))
          p.Program.procs);
  ]

let suites =
  [
    ( "cfg.edge",
      [
        Alcotest.test_case "of_proc" `Quick test_edges_of_proc;
        Alcotest.test_case "switch not alignable" `Quick test_edges_switch_not_alignable;
      ] );
    ( "cfg.profile",
      [
        Alcotest.test_case "recording" `Quick test_profile_recording;
        Alcotest.test_case "edge weight" `Quick test_profile_edge_weight;
        Alcotest.test_case "cond_counts non-cond" `Quick test_profile_cond_counts_non_cond;
        Alcotest.test_case "alignable sorted" `Quick test_alignable_edges_sorted;
        Alcotest.test_case "merge" `Quick test_profile_merge;
        Alcotest.test_case "merge rejects" `Quick test_profile_merge_rejects;
        Alcotest.test_case "with_seed" `Quick test_program_with_seed;
      ] );
    ( "cfg.graph",
      [
        Alcotest.test_case "dfs preorder" `Quick test_dfs_preorder;
        Alcotest.test_case "back edges" `Quick test_back_edges;
        Alcotest.test_case "self loop" `Quick test_back_edges_self_loop;
        Alcotest.test_case "loop depth" `Quick test_loop_depth;
        Alcotest.test_case "dot" `Quick test_dot_output;
      ] );
    ("cfg.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
