test/test_ir.ml: Alcotest Array Ba_ir Ba_util Behavior Block Fmt Fun List Proc Program QCheck QCheck_alcotest Result Term Test
