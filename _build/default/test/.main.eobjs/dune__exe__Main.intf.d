test/main.mli:
