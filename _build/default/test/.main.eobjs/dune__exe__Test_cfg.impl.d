test/test_cfg.ml: Alcotest Array Ba_cfg Ba_ir Behavior Block Edge Gen_prog Graph List Proc Profile Program QCheck QCheck_alcotest Result String Term Test
