test/test_workloads.ml: Alcotest Ba_exec Ba_ir Ba_layout Ba_util Ba_workloads Block Builder List Option Printf Proc Program Result Spec Term
