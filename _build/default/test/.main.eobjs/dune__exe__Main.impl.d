test/main.ml: Alcotest List Test_analysis Test_cfg Test_core Test_exec Test_ir Test_isa Test_layout Test_predict Test_report Test_sim Test_util Test_workloads
