test/gen_prog.ml: Array Ba_ir Ba_layout Ba_util Behavior Block Fmt Printf Proc Program QCheck Term
