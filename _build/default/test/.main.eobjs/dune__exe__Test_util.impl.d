test/test_util.ml: Alcotest Array Ascii_table Ba_util Fun Gen Hashtbl List QCheck QCheck_alcotest Rng Stats String Test
