test/test_analysis.ml: Alcotest Ba_analysis Ba_cfg Ba_core Ba_exec Ba_ir Ba_layout Ba_workloads Behavior Block Check_decision Check_profile Diagnostic List Proc Program Run Term
