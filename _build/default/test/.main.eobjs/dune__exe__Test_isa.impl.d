test/test_isa.ml: Alcotest Array Ba_core Ba_exec Ba_ir Ba_isa Ba_layout Ba_sim Behavior Block Codegen Disasm Hashtbl Insn List Pairing Proc Program String Term
