test/test_layout.ml: Alcotest Array Ba_cfg Ba_ir Ba_layout Behavior Block Chain Chain_order Decision Gen_prog Image Linear List Lower Proc Program QCheck QCheck_alcotest Result Term Test
