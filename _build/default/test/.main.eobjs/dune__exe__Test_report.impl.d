test/test_report.ml: Alcotest Ba_exec Ba_layout Ba_report Ba_util Ba_workloads Lazy List Option Printf String
