(* Tests for Ba_layout: decisions, chains, chain ordering, lowering,
   image building. *)

open Ba_ir
open Ba_layout

let cond ?(behavior = Behavior.Bias 0.5) t f =
  Term.Cond { on_true = t; on_false = f; behavior }

let diamond () =
  Proc.make ~name:"diamond"
    [|
      Block.make (cond 1 2);
      Block.make (Term.Jump 3);
      Block.make (Term.Jump 3);
      Block.make (cond 0 4);
      Block.make Term.Ret;
    |]

(* -- Decision -------------------------------------------------------------- *)

let test_decision_identity () =
  let d = Decision.identity (diamond ()) in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3; 4 |] d.Decision.order;
  Alcotest.(check bool) "valid" true (Result.is_ok (Decision.validate (diamond ()) d))

let test_decision_position () =
  let d = Decision.of_order [| 0; 2; 1 |] in
  Alcotest.(check (array int)) "inverse" [| 0; 2; 1 |] (Decision.position d)

let test_decision_validate_rejects () =
  let p = diamond () in
  let bad order = Result.is_error (Decision.validate p (Decision.of_order order)) in
  Alcotest.(check bool) "wrong length" true (bad [| 0; 1 |]);
  Alcotest.(check bool) "duplicate" true (bad [| 0; 1; 1; 3; 4 |]);
  Alcotest.(check bool) "entry not first" true (bad [| 1; 0; 2; 3; 4 |]);
  Alcotest.(check bool) "out of range" true (bad [| 0; 1; 2; 3; 9 |])

let test_decision_of_chains () =
  let d = Decision.of_chains [ [ 0; 3 ]; [ 2 ]; [ 1; 4 ] ] in
  Alcotest.(check (array int)) "concat" [| 0; 3; 2; 1; 4 |] d.Decision.order

(* -- Chain ------------------------------------------------------------------ *)

let test_chain_basic () =
  let c = Chain.create 4 in
  Alcotest.(check bool) "can link" true (Chain.can_link c ~src:0 ~dst:1);
  Chain.link c ~src:0 ~dst:1;
  Chain.link c ~src:1 ~dst:2;
  Alcotest.(check int) "head" 0 (Chain.head c 2);
  Alcotest.(check int) "tail" 2 (Chain.tail c 0);
  Alcotest.(check bool) "same chain" true (Chain.same_chain c 0 2);
  Alcotest.(check bool) "not same chain" false (Chain.same_chain c 0 3);
  Alcotest.(check (option int)) "succ" (Some 1) (Chain.chain_succ c 0);
  Alcotest.(check (option int)) "pred" (Some 1) (Chain.chain_pred c 2)

let test_chain_rejects_cycle () =
  let c = Chain.create 3 in
  Chain.link c ~src:0 ~dst:1;
  Chain.link c ~src:1 ~dst:2;
  Alcotest.(check bool) "no cycle" false (Chain.can_link c ~src:2 ~dst:0)

let test_chain_rejects_double_fallthrough () =
  let c = Chain.create 3 in
  Chain.link c ~src:0 ~dst:1;
  Alcotest.(check bool) "src has succ" false (Chain.can_link c ~src:0 ~dst:2);
  Alcotest.(check bool) "dst has pred" false (Chain.can_link c ~src:2 ~dst:1)

let test_chain_forbid () =
  let c = Chain.create 3 in
  Chain.forbid_fallthrough c 0;
  Alcotest.(check bool) "forbidden" true (Chain.fallthrough_forbidden c 0);
  Alcotest.(check bool) "cannot link" false (Chain.can_link c ~src:0 ~dst:1);
  Alcotest.(check bool) "incoming still fine" true (Chain.can_link c ~src:1 ~dst:0)

let test_chain_forbid_after_link () =
  let c = Chain.create 3 in
  Chain.link c ~src:0 ~dst:1;
  Alcotest.check_raises "forbid linked"
    (Invalid_argument "Chain.forbid_fallthrough: block already has a chain successor")
    (fun () -> Chain.forbid_fallthrough c 0)

let test_chain_link_invalid () =
  let c = Chain.create 2 in
  Chain.link c ~src:0 ~dst:1;
  Alcotest.check_raises "link invalid" (Invalid_argument "Chain.link: cannot link 0 -> 1")
    (fun () -> Chain.link c ~src:0 ~dst:1)

let test_chain_pin_head () =
  let c = Chain.create 3 in
  Chain.pin_head c 0;
  Alcotest.(check bool) "cannot link into pinned head" false (Chain.can_link c ~src:1 ~dst:0);
  Alcotest.(check bool) "pinned block can still be a source" true
    (Chain.can_link c ~src:0 ~dst:1);
  Chain.link c ~src:1 ~dst:2;
  Alcotest.check_raises "pin with pred"
    (Invalid_argument "Chain.pin_head: block already has a chain predecessor") (fun () ->
      Chain.pin_head c 2)

let test_chain_chains () =
  let c = Chain.create 5 in
  Chain.link c ~src:0 ~dst:3;
  Chain.link c ~src:3 ~dst:1;
  Alcotest.(check (list (list int))) "chains" [ [ 0; 3; 1 ]; [ 2 ]; [ 4 ] ] (Chain.chains c)

let test_chain_copy_independent () =
  let c = Chain.create 3 in
  Chain.link c ~src:0 ~dst:1;
  let c2 = Chain.copy c in
  Chain.link c2 ~src:1 ~dst:2;
  Alcotest.(check (option int)) "original untouched" None (Chain.chain_succ c 1);
  Alcotest.(check (option int)) "copy linked" (Some 2) (Chain.chain_succ c2 1)

(* -- Chain_order ------------------------------------------------------------ *)

let test_order_weight_desc () =
  let p = diamond () in
  let weight = function 1 -> 100 | 2 -> 5 | _ -> 1 in
  let edge_weight _ = 0 in
  let ordered =
    Chain_order.order Chain_order.Weight_desc p ~weight ~edge_weight
      [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3; 4 ] ]
  in
  Alcotest.(check (list (list int))) "entry first, then by weight"
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3; 4 ] ]
    ordered;
  (* [3;4] has weight 2, [2] weight 5: check real ordering *)
  let ordered2 =
    Chain_order.order Chain_order.Weight_desc p ~weight ~edge_weight
      [ [ 3; 4 ]; [ 2 ]; [ 1 ]; [ 0 ] ]
  in
  Alcotest.(check (list (list int))) "reordered" [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3; 4 ] ] ordered2

let test_order_entry_always_first () =
  let p = diamond () in
  let weight _ = 1 in
  let edge_weight _ = 1 in
  List.iter
    (fun strategy ->
      let ordered =
        Chain_order.order strategy p ~weight ~edge_weight [ [ 3; 4 ]; [ 1; 2 ]; [ 0 ] ]
      in
      match ordered with
      | first :: _ -> Alcotest.(check bool) "entry chain first" true (List.mem 0 first)
      | [] -> Alcotest.fail "no chains")
    [ Chain_order.Weight_desc; Chain_order.Btfnt_precedence ]

let test_order_btfnt_prefers_target_before_source () =
  (* b1 --cond taken--> b3 with large weight: the BT/FNT ordering should put
     b3's chain before b1's chain so the branch becomes backward. *)
  let p =
    Proc.make ~name:"prec"
      [|
        Block.make (Term.Jump 1);
        Block.make (cond 3 2);
        Block.make Term.Ret;
        Block.make (Term.Jump 2);
      |]
  in
  let weight _ = 1 in
  let edge_weight (e : Ba_cfg.Edge.t) =
    match (e.src, e.kind) with
    | 1, Ba_cfg.Edge.On_true -> 1000 (* hot taken leg to b3 *)
    | 1, Ba_cfg.Edge.On_false -> 1 (* cold fall-through to b2 *)
    | _ -> 0
  in
  let chains = [ [ 0; 1; 2 ]; [ 3 ] ] in
  let ordered = Chain_order.order Chain_order.Btfnt_precedence p ~weight ~edge_weight chains in
  (* Entry chain is forced first, so [3] cannot precede; but with entry
     constraint the only valid order keeps [0;1;2] first.  Use a variant
     where the hot branch is not in the entry chain instead. *)
  Alcotest.(check int) "two chains" 2 (List.length ordered)

let test_order_btfnt_noncontrived () =
  (* Entry chain [0]; hot cond in chain [1;2] jumping to chain [3].
     4*w_ft < 3*w_taken => [3] should be placed before [1;2]. *)
  let p =
    Proc.make ~name:"prec2"
      [|
        Block.make (Term.Jump 1);
        Block.make (cond 3 2);
        Block.make Term.Ret;
        Block.make (Term.Jump 2);
      |]
  in
  let weight _ = 1 in
  let edge_weight (e : Ba_cfg.Edge.t) =
    match (e.src, e.kind) with
    | 1, Ba_cfg.Edge.On_true -> 1000
    | 1, Ba_cfg.Edge.On_false -> 1
    | _ -> 0
  in
  let ordered =
    Chain_order.order Chain_order.Btfnt_precedence p ~weight ~edge_weight
      [ [ 0 ]; [ 1; 2 ]; [ 3 ] ]
  in
  Alcotest.(check (list (list int))) "target chain before source chain"
    [ [ 0 ]; [ 3 ]; [ 1; 2 ] ]
    ordered

(* -- Lower ------------------------------------------------------------------- *)

let test_lower_identity_diamond () =
  let p = diamond () in
  let linear = Lower.lower p (Decision.identity p) in
  Alcotest.(check bool) "valid" true (Result.is_ok (Linear.validate linear));
  (* b0: cond with on_true=1 adjacent -> fall-through on true. *)
  (match linear.Linear.blocks.(0).Linear.term with
  | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
    Alcotest.(check int) "taken to b2's position" 2 taken_pos;
    Alcotest.(check bool) "taken when false" false taken_on;
    Alcotest.(check (option int)) "no inserted jump" None inserted_jump
  | _ -> Alcotest.fail "b0 should be a conditional");
  (* b1: jump to b3, not adjacent (b2 is next) -> explicit jump. *)
  (match linear.Linear.blocks.(1).Linear.term with
  | Linear.Ljump pos -> Alcotest.(check int) "jump to pos of b3" 3 pos
  | _ -> Alcotest.fail "b1 should be a jump");
  (* b2: jump to b3 adjacent -> pure fall-through. *)
  (match linear.Linear.blocks.(2).Linear.term with
  | Linear.Lnone -> ()
  | _ -> Alcotest.fail "b2 should fall through")

let test_lower_sense_inversion () =
  (* Layout [0; 2; 1; 3; 4]: b0's on_false (b2) becomes adjacent, so the
     branch sense must flip: taken when the condition is true. *)
  let p = diamond () in
  let linear = Lower.lower p (Decision.of_order [| 0; 2; 1; 3; 4 |]) in
  match linear.Linear.blocks.(0).Linear.term with
  | Linear.Lcond { taken_on; taken_pos; _ } ->
    Alcotest.(check bool) "taken on true" true taken_on;
    Alcotest.(check int) "taken to b1's position" 2 taken_pos
  | _ -> Alcotest.fail "b0 should be a conditional"

let test_lower_neither_adjacent () =
  (* Self-loop block laid out last: cond true->self (hot), false->exit.
     Neither leg can be the fall-through.  Unforced, lowering uses the
     compiler-natural encoding (branch taken to on_true, jump to on_false);
     forcing [Jump_on_true] realises the paper's inverted-sense loop
     transformation. *)
  let p =
    Proc.make ~name:"selfloop"
      [|
        Block.make (Term.Jump 1);
        Block.make (cond 1 2);
        Block.make Term.Ret;
      |]
  in
  let order = [| 0; 2; 1 |] in
  (* positions: 0 -> 0; 2 -> 1; 1 -> 2 *)
  let linear = Lower.lower p (Decision.of_order order) in
  (match linear.Linear.blocks.(2).Linear.term with
  | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
    Alcotest.(check bool) "natural: taken when true" true taken_on;
    Alcotest.(check int) "taken back to loop" 2 taken_pos;
    Alcotest.(check (option int)) "jump to exit" (Some 1) inserted_jump
  | _ -> Alcotest.fail "should be a conditional");
  let forced =
    Decision.of_order ~neither:[| None; Some Decision.Jump_on_true; None |] order
  in
  let linear2 = Lower.lower p forced in
  match linear2.Linear.blocks.(2).Linear.term with
  | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
    Alcotest.(check bool) "inverted: taken when false" false taken_on;
    Alcotest.(check int) "taken leg exits" 1 taken_pos;
    Alcotest.(check (option int)) "jump back to loop" (Some 2) inserted_jump
  | _ -> Alcotest.fail "should be a conditional"

let test_lower_forced_neither_despite_adjacency () =
  (* A forced neither decision must survive even when a successor happens to
     be adjacent in the layout. *)
  let p =
    Proc.make ~name:"forced"
      [|
        Block.make (Term.Jump 1);
        Block.make (cond 1 2);
        Block.make Term.Ret;
      |]
  in
  let forced =
    Decision.of_order ~neither:[| None; Some Decision.Jump_on_true; None |] [| 0; 1; 2 |]
  in
  let linear = Lower.lower p forced in
  match linear.Linear.blocks.(1).Linear.term with
  | Linear.Lcond { inserted_jump = Some 1; taken_on = false; _ } -> ()
  | _ -> Alcotest.fail "expected forced neither lowering"

let test_lower_call_continuation () =
  let callee = Proc.make ~name:"callee" [| Block.make Term.Ret |] in
  ignore callee;
  let p =
    Proc.make ~name:"caller"
      [|
        Block.make (Term.Call { callee = 1; next = 2 });
        Block.make Term.Ret;
        Block.make (Term.Jump 1);
      |]
  in
  let linear = Lower.lower p (Decision.identity p) in
  (match linear.Linear.blocks.(0).Linear.term with
  | Linear.Lcall { cont = Linear.Jump_to pos; _ } ->
    Alcotest.(check int) "continuation jump to b2" 2 pos
  | _ -> Alcotest.fail "call should need a continuation jump");
  let linear2 = Lower.lower p (Decision.of_order [| 0; 2; 1 |]) in
  match linear2.Linear.blocks.(0).Linear.term with
  | Linear.Lcall { cont = Linear.Fall; _ } -> ()
  | _ -> Alcotest.fail "call continuation should fall through"

let test_lower_sizes () =
  let p = diamond () in
  let linear = Lower.lower p (Decision.identity p) in
  (* b0: 4 insns + cond = 5; b1: 4 + jump = 5; b2: 4 + 0 = 4;
     b3: 4 + cond = 5; b4: 4 + ret = 5. *)
  Alcotest.(check int) "code size" 24 (Linear.code_size linear);
  Alcotest.(check int) "b2 size" 4 (Linear.block_size linear.Linear.blocks.(2))

(* -- Image ------------------------------------------------------------------- *)

let two_proc_program () =
  let callee =
    Proc.make ~name:"callee" [| Block.make ~insns:3 Term.Ret |]
  in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:2 (Term.Call { callee = 1; next = 1 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"two" [| main; callee |]

let test_image_addresses () =
  let prog = two_proc_program () in
  let image = Image.original prog in
  Alcotest.(check bool) "valid" true (Result.is_ok (Image.validate image));
  Alcotest.(check int) "main base" 0 (Image.entry_addr image 0);
  (* main: b0 = 2 insns + call = 3 addresses [0..2]; b1 at 3, size 2. *)
  Alcotest.(check int) "b1 addr" 3 (Image.block_addr image 0 1);
  Alcotest.(check int) "callee base" 5 (Image.entry_addr image 1);
  Alcotest.(check int) "total size" 9 image.Image.total_size

let test_image_wrong_decisions () =
  let prog = two_proc_program () in
  Alcotest.check_raises "arity" (Invalid_argument "Image.build: one decision per procedure required")
    (fun () -> ignore (Image.build prog [||]))

(* -- QCheck ------------------------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"lowering any valid decision validates" ~count:300
      Gen_prog.program_with_decisions_arb (fun (p, ds) ->
        let image = Ba_layout.Image.build p ds in
        Result.is_ok (Ba_layout.Image.validate image));
    Test.make ~name:"addresses strictly increase across layout blocks" ~count:200
      Gen_prog.program_with_decisions_arb (fun (p, ds) ->
        let image = Ba_layout.Image.build p ds in
        let ok = ref true in
        let last = ref (-1) in
        Array.iter
          (fun (linear : Linear.t) ->
            Array.iter
              (fun (lb : Linear.lblock) ->
                if lb.Linear.addr <= !last then ok := false;
                last := lb.Linear.addr)
              linear.Linear.blocks)
          image.Image.linears;
        !ok);
    Test.make ~name:"every semantic block appears exactly once" ~count:200
      Gen_prog.program_with_decisions_arb (fun (p, ds) ->
        let image = Ba_layout.Image.build p ds in
        Array.for_all2
          (fun (linear : Linear.t) proc ->
            let seen = Array.make (Proc.n_blocks proc) 0 in
            Array.iter
              (fun (lb : Linear.lblock) -> seen.(lb.Linear.src) <- seen.(lb.Linear.src) + 1)
              linear.Linear.blocks;
            Array.for_all (( = ) 1) seen)
          image.Image.linears p.Program.procs);
  ]

let suites =
  [
    ( "layout.decision",
      [
        Alcotest.test_case "identity" `Quick test_decision_identity;
        Alcotest.test_case "position" `Quick test_decision_position;
        Alcotest.test_case "validate rejects" `Quick test_decision_validate_rejects;
        Alcotest.test_case "of_chains" `Quick test_decision_of_chains;
      ] );
    ( "layout.chain",
      [
        Alcotest.test_case "basic" `Quick test_chain_basic;
        Alcotest.test_case "rejects cycle" `Quick test_chain_rejects_cycle;
        Alcotest.test_case "rejects double fall-through" `Quick test_chain_rejects_double_fallthrough;
        Alcotest.test_case "forbid" `Quick test_chain_forbid;
        Alcotest.test_case "forbid after link" `Quick test_chain_forbid_after_link;
        Alcotest.test_case "link invalid" `Quick test_chain_link_invalid;
        Alcotest.test_case "pin head" `Quick test_chain_pin_head;
        Alcotest.test_case "chains listing" `Quick test_chain_chains;
        Alcotest.test_case "copy independent" `Quick test_chain_copy_independent;
      ] );
    ( "layout.chain_order",
      [
        Alcotest.test_case "weight desc" `Quick test_order_weight_desc;
        Alcotest.test_case "entry always first" `Quick test_order_entry_always_first;
        Alcotest.test_case "btfnt two chains" `Quick test_order_btfnt_prefers_target_before_source;
        Alcotest.test_case "btfnt precedence" `Quick test_order_btfnt_noncontrived;
      ] );
    ( "layout.lower",
      [
        Alcotest.test_case "identity diamond" `Quick test_lower_identity_diamond;
        Alcotest.test_case "sense inversion" `Quick test_lower_sense_inversion;
        Alcotest.test_case "neither adjacent" `Quick test_lower_neither_adjacent;
        Alcotest.test_case "forced neither" `Quick test_lower_forced_neither_despite_adjacency;
        Alcotest.test_case "call continuation" `Quick test_lower_call_continuation;
        Alcotest.test_case "sizes" `Quick test_lower_sizes;
      ] );
    ( "layout.image",
      [
        Alcotest.test_case "addresses" `Quick test_image_addresses;
        Alcotest.test_case "wrong decisions" `Quick test_image_wrong_decisions;
      ] );
    ("layout.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
