(* Tests for Ba_workloads: the builder DSL and the 24-program suite. *)

open Ba_ir
open Ba_workloads

(* -- Builder ----------------------------------------------------------------- *)

let build_single body =
  let b = Builder.create ~name:"t" ~seed:1 in
  let main = Builder.declare b ~name:"main" in
  Builder.define b main body;
  Builder.build b

let run prog =
  Ba_exec.Engine.run ~max_steps:100_000 (Ba_layout.Image.original prog)

let test_builder_basic () =
  let prog = build_single (fun pb -> Builder.basic pb ~insns:7 ()) in
  Alcotest.(check int) "two blocks (body + halt)" 2 (Program.total_blocks prog);
  let r = run prog in
  Alcotest.(check bool) "completed" true r.Ba_exec.Engine.completed;
  (* 7 body insns + the final block's single instruction + its halt. *)
  Alcotest.(check int) "insns" 9 r.Ba_exec.Engine.insns

let test_builder_seq () =
  let prog =
    build_single (fun pb ->
        Builder.seq pb
          [
            (fun pb -> Builder.basic pb ~insns:1 ());
            (fun pb -> Builder.basic pb ~insns:2 ());
            (fun pb -> Builder.basic pb ~insns:3 ());
          ])
  in
  let r = run prog in
  Alcotest.(check int) "insns" 8 r.Ba_exec.Engine.insns;
  Alcotest.(check int) "steps" 4 r.Ba_exec.Engine.steps

let test_builder_while_loop_shape () =
  let prog =
    build_single (fun pb ->
        Builder.while_loop pb ~trips:5 ~body:(fun pb -> Builder.basic pb ~insns:4 ()))
  in
  (* Naive layout: header first, body after, back jump at the bottom. *)
  let main = Program.proc prog 0 in
  (match (Proc.block main 0).Block.term with
  | Term.Cond { on_true = 1; on_false = 2; _ } -> ()
  | _ -> Alcotest.fail "header should test and fall into the body");
  (match (Proc.block main 1).Block.term with
  | Term.Jump 0 -> ()
  | _ -> Alcotest.fail "body should jump back to the header");
  let r = run prog in
  (* header x5, body x4, halt. *)
  Alcotest.(check int) "steps" 10 r.Ba_exec.Engine.steps

let test_builder_do_while_shape () =
  let prog =
    build_single (fun pb ->
        Builder.do_while pb ~trips:5 ~body:(fun pb -> Builder.basic pb ~insns:4 ()))
  in
  let main = Program.proc prog 0 in
  (match (Proc.block main 1).Block.term with
  | Term.Cond { on_true = 0; on_false = 2; _ } -> ()
  | _ -> Alcotest.fail "latch should branch back to the body");
  let r = run prog in
  (* body+latch x5, halt. *)
  Alcotest.(check int) "steps" 11 r.Ba_exec.Engine.steps

let test_builder_if_else_layout () =
  let prog =
    build_single (fun pb ->
        Builder.if_else pb ~p_true:0.5
          ~then_:(fun pb -> Builder.basic pb ~insns:1 ())
          ~else_:(fun pb -> Builder.basic pb ~insns:2 ()))
  in
  let main = Program.proc prog 0 in
  match (Proc.block main 0).Block.term with
  | Term.Cond { on_true = 1; on_false = 2; _ } -> ()
  | _ -> Alcotest.fail "then-arm should be the true target right after the test"

let test_builder_switch () =
  let prog =
    build_single (fun pb ->
        Builder.switch pb
          ~cases:
            [
              (1.0, fun pb -> Builder.basic pb ~insns:1 ());
              (2.0, fun pb -> Builder.basic pb ~insns:1 ());
            ])
  in
  let r = run prog in
  Alcotest.(check bool) "completed" true r.Ba_exec.Engine.completed;
  Alcotest.(check int) "steps: switch, one case, halt" 3 r.Ba_exec.Engine.steps

let test_builder_call_and_vcall () =
  let b = Builder.create ~name:"t" ~seed:1 in
  let main = Builder.declare b ~name:"main" in
  let leaf1 = Builder.declare b ~name:"leaf1" in
  let leaf2 = Builder.declare b ~name:"leaf2" in
  Builder.define b leaf1 (fun pb -> Builder.basic pb ~insns:2 ());
  Builder.define b leaf2 (fun pb -> Builder.basic pb ~insns:3 ());
  Builder.define b main (fun pb ->
      Builder.seq pb
        [
          (fun pb -> Builder.call pb leaf1);
          (fun pb -> Builder.vcall pb [ (leaf1, 1.0); (leaf2, 1.0) ]);
        ]);
  let prog = Builder.build b in
  Alcotest.(check bool) "valid" true (Result.is_ok (Program.validate prog));
  let r = run prog in
  Alcotest.(check bool) "completed" true r.Ba_exec.Engine.completed

let test_builder_rejects_double_define () =
  let b = Builder.create ~name:"t" ~seed:1 in
  let main = Builder.declare b ~name:"main" in
  Builder.define b main (fun pb -> Builder.basic pb ());
  Alcotest.check_raises "double define"
    (Invalid_argument "Builder.define: procedure already defined") (fun () ->
      Builder.define b main (fun pb -> Builder.basic pb ()))

let test_builder_rejects_undefined () =
  let b = Builder.create ~name:"t" ~seed:1 in
  let main = Builder.declare b ~name:"main" in
  let _ = Builder.declare b ~name:"missing" in
  Builder.define b main (fun pb -> Builder.basic pb ());
  Alcotest.check_raises "undefined proc"
    (Invalid_argument "Builder.build: procedure missing undefined") (fun () ->
      ignore (Builder.build b))

let test_builder_rejects_double_patch () =
  let b = Builder.create ~name:"t" ~seed:1 in
  let main = Builder.declare b ~name:"main" in
  Alcotest.(check bool) "double patch raises" true
    (try
       Builder.define b main (fun pb ->
           let r = Builder.basic pb () in
           r.Builder.patch_next 0;
           r);
       false
     with Invalid_argument _ -> true)

(* -- the suite ----------------------------------------------------------------- *)

let test_suite_has_24_programs () =
  Alcotest.(check int) "24 workloads" 24 (List.length Spec.all);
  let names = List.map (fun (w : Spec.t) -> w.Spec.name) Spec.all in
  Alcotest.(check bool) "names unique" true
    (List.length (List.sort_uniq compare names) = 24);
  Alcotest.(check int) "13 fp" 13
    (List.length (List.filter (fun (w : Spec.t) -> w.Spec.cls = Spec.Fp) Spec.all));
  Alcotest.(check int) "6 int" 6
    (List.length (List.filter (fun (w : Spec.t) -> w.Spec.cls = Spec.Int) Spec.all));
  Alcotest.(check int) "5 other" 5
    (List.length (List.filter (fun (w : Spec.t) -> w.Spec.cls = Spec.Other) Spec.all))

let test_by_name () =
  (match Spec.by_name "espresso" with
  | Some w -> Alcotest.(check bool) "espresso is int" true (w.Spec.cls = Spec.Int)
  | None -> Alcotest.fail "espresso missing");
  Alcotest.(check bool) "unknown" true (Spec.by_name "quake" = None)

let test_fig4_programs_exist () =
  Alcotest.(check int) "eight C programs" 8 (List.length Spec.spec_c_programs);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " exists") true (Option.is_some (Spec.by_name n)))
    Spec.spec_c_programs

let test_all_workloads_valid_and_deterministic () =
  List.iter
    (fun (w : Spec.t) ->
      let p1 = w.Spec.build () in
      Alcotest.(check bool) (w.Spec.name ^ " valid") true
        (Result.is_ok (Program.validate p1));
      let p2 = w.Spec.build () in
      let r1 = Ba_exec.Engine.run ~max_steps:20_000 (Ba_layout.Image.original p1) in
      let r2 = Ba_exec.Engine.run ~max_steps:20_000 (Ba_layout.Image.original p2) in
      Alcotest.(check bool) (w.Spec.name ^ " deterministic") true (r1 = r2))
    Spec.all

let test_all_workloads_terminate () =
  List.iter
    (fun (w : Spec.t) ->
      let r =
        Ba_exec.Engine.run ~max_steps:Spec.default_max_steps
          (Ba_layout.Image.original (w.Spec.build ()))
      in
      Alcotest.(check bool) (w.Spec.name ^ " completes in budget") true
        r.Ba_exec.Engine.completed)
    Spec.all

(* The class signatures the suite is designed around (paper §6: FP programs
   break control flow ~6.5% of instructions vs ~16% for INT/Other; C++
   workloads are the ones with virtual dispatch). *)
let class_stats cls =
  List.filter_map
    (fun (w : Spec.t) ->
      if w.Spec.cls <> cls then None
      else begin
        let program = w.Spec.build () in
        let stats = Ba_exec.Trace_stats.create () in
        let r =
          Ba_exec.Engine.run ~max_steps:400_000
            ~on_event:(Ba_exec.Trace_stats.on_event stats)
            (Ba_layout.Image.original program)
        in
        Some (Ba_exec.Trace_stats.summarize stats ~program ~insns:r.Ba_exec.Engine.insns)
      end)
    Spec.all

let test_fp_breaks_lower_than_int () =
  let mean sel xs = Ba_util.Stats.mean (List.map sel xs) in
  let fp = class_stats Spec.Fp and int_ = class_stats Spec.Int in
  let fp_breaks = mean (fun s -> s.Ba_exec.Trace_stats.pct_breaks) fp in
  let int_breaks = mean (fun s -> s.Ba_exec.Trace_stats.pct_breaks) int_ in
  Alcotest.(check bool)
    (Printf.sprintf "fp breaks (%.1f%%) well below int breaks (%.1f%%)" fp_breaks int_breaks)
    true
    (fp_breaks +. 5.0 < int_breaks);
  let fp_taken = mean (fun s -> s.Ba_exec.Trace_stats.pct_taken) fp in
  Alcotest.(check bool)
    (Printf.sprintf "fp conditionals mostly taken (%.1f%%)" fp_taken)
    true (fp_taken > 55.0)

let test_cxx_programs_have_indirect_calls () =
  let others = class_stats Spec.Other in
  List.iter
    (fun s ->
      Alcotest.(check bool) "indirect share positive" true
        (s.Ba_exec.Trace_stats.pct_ij > 0.5))
    others

let suites =
  [
    ( "workloads.builder",
      [
        Alcotest.test_case "basic" `Quick test_builder_basic;
        Alcotest.test_case "seq" `Quick test_builder_seq;
        Alcotest.test_case "while shape" `Quick test_builder_while_loop_shape;
        Alcotest.test_case "do_while shape" `Quick test_builder_do_while_shape;
        Alcotest.test_case "if_else layout" `Quick test_builder_if_else_layout;
        Alcotest.test_case "switch" `Quick test_builder_switch;
        Alcotest.test_case "call/vcall" `Quick test_builder_call_and_vcall;
        Alcotest.test_case "double define" `Quick test_builder_rejects_double_define;
        Alcotest.test_case "undefined proc" `Quick test_builder_rejects_undefined;
        Alcotest.test_case "double patch" `Quick test_builder_rejects_double_patch;
      ] );
    ( "workloads.suite",
      [
        Alcotest.test_case "24 programs" `Quick test_suite_has_24_programs;
        Alcotest.test_case "by_name" `Quick test_by_name;
        Alcotest.test_case "figure 4 programs" `Quick test_fig4_programs_exist;
        Alcotest.test_case "valid and deterministic" `Slow
          test_all_workloads_valid_and_deterministic;
        Alcotest.test_case "terminate" `Slow test_all_workloads_terminate;
        Alcotest.test_case "fp vs int breaks" `Slow test_fp_breaks_lower_than_int;
        Alcotest.test_case "c++ indirect calls" `Slow test_cxx_programs_have_indirect_calls;
      ] );
  ]
