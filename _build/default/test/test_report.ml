(* Integration tests of the experiment harness: run the full methodology at
   reduced scale on a subset of workloads and assert the paper's headline
   shapes (§6), plus rendering checks for the table formatters. *)

let subset = [ "alvinn"; "espresso"; "gcc" ]

let evals =
  lazy
    (Ba_report.Harness.evaluate_suite ~max_steps:40_000
       (List.filter_map Ba_workloads.Spec.by_name subset))

let mean sel = Ba_util.Stats.mean (List.map sel (Lazy.force evals))

let check_le msg a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.3f <= %.3f)" msg a b) true (a <= b +. 1e-9)

let test_alignment_ordering_fallthrough () =
  (* Try15 <= Greedy <= Orig on average for the architecture with the most
     headroom. *)
  let orig = mean (fun e -> e.Ba_report.Harness.orig.Ba_report.Harness.fallthrough) in
  let greedy = mean (fun e -> e.Ba_report.Harness.greedy.Ba_report.Harness.fallthrough) in
  let try15 = mean (fun e -> e.Ba_report.Harness.try15.Ba_report.Harness.fallthrough) in
  check_le "greedy <= orig" greedy orig;
  check_le "try15 <= greedy" try15 greedy

let test_alignment_helps_every_static_arch () =
  List.iter
    (fun (label, sel) ->
      let orig = mean (fun e -> sel e.Ba_report.Harness.orig) in
      let try15 = mean (fun e -> sel e.Ba_report.Harness.try15) in
      check_le (label ^ ": try15 <= orig") try15 orig)
    [
      ("fallthrough", fun (c : Ba_report.Harness.arch_cpis) -> c.Ba_report.Harness.fallthrough);
      ("btfnt", fun c -> c.Ba_report.Harness.btfnt);
      ("likely", fun c -> c.Ba_report.Harness.likely);
      ("pht", fun c -> c.Ba_report.Harness.pht_direct);
      ("gshare", fun c -> c.Ba_report.Harness.gshare);
      ("btb64", fun c -> c.Ba_report.Harness.btb64);
      ("btb256", fun c -> c.Ba_report.Harness.btb256);
    ]

let test_architecture_ordering_original () =
  (* On the original layout: FALLTHROUGH is the worst static architecture
     and the BTB the best overall (paper §6). *)
  let orig sel = mean (fun e -> sel e.Ba_report.Harness.orig) in
  check_le "likely <= fallthrough"
    (orig (fun c -> c.Ba_report.Harness.likely))
    (orig (fun c -> c.Ba_report.Harness.fallthrough));
  check_le "btb256 <= likely"
    (orig (fun c -> c.Ba_report.Harness.btb256))
    (orig (fun c -> c.Ba_report.Harness.likely));
  check_le "btb256 <= pht"
    (orig (fun c -> c.Ba_report.Harness.btb256))
    (orig (fun c -> c.Ba_report.Harness.pht_direct))

let test_btb_benefits_least () =
  (* Alignment's gain on the 256-entry BTB is smaller than on FALLTHROUGH. *)
  let gain sel =
    mean (fun e -> sel e.Ba_report.Harness.orig)
    -. mean (fun e -> sel e.Ba_report.Harness.try15)
  in
  let ft_gain = gain (fun c -> c.Ba_report.Harness.fallthrough) in
  let btb_gain = gain (fun c -> c.Ba_report.Harness.btb256) in
  Alcotest.(check bool)
    (Printf.sprintf "btb gain (%.3f) < fallthrough gain (%.3f)" btb_gain ft_gain)
    true (btb_gain < ft_gain)

let test_fallthrough_percentage_rises () =
  let orig = mean (fun e -> e.Ba_report.Harness.pct_ft_orig) in
  let aligned = mean (fun e -> e.Ba_report.Harness.pct_ft_try15_ft) in
  Alcotest.(check bool)
    (Printf.sprintf "fall-through pct rises (%.1f -> %.1f)" orig aligned)
    true
    (aligned > orig +. 10.0)

let test_alignment_narrows_static_dynamic_gap () =
  (* Paper §6: "branch alignment reduces the difference in performance
     between the various branch architectures" — measured between BT/FNT
     and the correlation PHT. *)
  let gap sel_a sel_b which =
    mean (fun e -> sel_a (which e)) -. mean (fun e -> sel_b (which e))
  in
  let before =
    gap
      (fun (c : Ba_report.Harness.arch_cpis) -> c.Ba_report.Harness.btfnt)
      (fun c -> c.Ba_report.Harness.gshare)
      (fun e -> e.Ba_report.Harness.orig)
  in
  let after =
    gap
      (fun c -> c.Ba_report.Harness.btfnt)
      (fun c -> c.Ba_report.Harness.gshare)
      (fun e -> e.Ba_report.Harness.try15)
  in
  Alcotest.(check bool)
    (Printf.sprintf "gap narrows (%.3f -> %.3f)" before after)
    true (after < before +. 1e-9)

let test_alpha_only_for_c_programs () =
  List.iter
    (fun (e : Ba_report.Harness.eval) ->
      let name = e.Ba_report.Harness.workload.Ba_workloads.Spec.name in
      let expected = List.mem name Ba_workloads.Spec.spec_c_programs in
      Alcotest.(check bool) (name ^ " alpha presence") expected
        (Option.is_some e.Ba_report.Harness.alpha))
    (Lazy.force evals)

let test_alpha_normalized () =
  List.iter
    (fun (e : Ba_report.Harness.eval) ->
      match e.Ba_report.Harness.alpha with
      | Some (o, g, t) ->
        Alcotest.(check (float 1e-9)) "original is 1.0" 1.0 o;
        Alcotest.(check bool) "aligned in sane range" true
          (g > 0.5 && g <= 1.2 && t > 0.5 && t <= 1.2)
      | None -> ())
    (Lazy.force evals)

(* -- table rendering ---------------------------------------------------------- *)

let line_count s = List.length (String.split_on_char '\n' s)

let test_tables_render () =
  let evals = Lazy.force evals in
  let t2 = Ba_report.Tables.table2 evals in
  let t3 = Ba_report.Tables.table3 evals in
  let t4 = Ba_report.Tables.table4 evals in
  let f4 = Ba_report.Tables.fig4 evals in
  (* header + separator + 2 group banners + 3 rows + 2 averages + final \n *)
  Alcotest.(check int) "table2 lines" 10 (line_count t2);
  Alcotest.(check int) "table3 lines" 10 (line_count t3);
  Alcotest.(check int) "table4 lines" 10 (line_count t4);
  (* all three subset programs are SPEC C programs, so Figure 4 has three
     rows: header + separator + 3 rows + trailing newline. *)
  Alcotest.(check int) "fig4 lines" 6 (line_count f4)

let test_table1_contents () =
  let t1 = Ba_report.Tables.table1 () in
  List.iter
    (fun needle ->
      let found =
        let nh = String.length t1 and nn = String.length needle in
        let rec scan i = i + nn <= nh && (String.sub t1 i nn = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (needle ^ " present") true found)
    [ "Unconditional branch"; "Mispredicted"; "instruction + mispredict" ]

(* -- hotspots ------------------------------------------------------------------ *)

let test_hotspots_alvinn () =
  (* The paper's own diagnosis: ALVINN's branches concentrate in the two
     self-loop blocks of input_hidden / hidden_input. *)
  let w = Option.get (Ba_workloads.Spec.by_name "alvinn") in
  let program = w.Ba_workloads.Spec.build () in
  let image = Ba_layout.Image.original program in
  let hot = Ba_report.Hotspots.create image in
  let (_ : Ba_exec.Engine.result) =
    Ba_exec.Engine.run ~max_steps:300_000
      ~on_event:(Ba_report.Hotspots.on_event hot) image
  in
  match Ba_report.Hotspots.top ~k:2 hot with
  | [ a; b ] ->
    let names = List.sort compare [ a.Ba_report.Hotspots.proc_name; b.Ba_report.Hotspots.proc_name ] in
    Alcotest.(check (list string)) "the two layer loops dominate"
      [ "hidden_input"; "input_hidden" ] names;
    Alcotest.(check bool) "each is nearly always taken" true
      (let rate (s : Ba_report.Hotspots.site) =
         float_of_int s.Ba_report.Hotspots.taken /. float_of_int s.Ba_report.Hotspots.executions
       in
       rate a > 0.99 && rate b > 0.99);
    Alcotest.(check string) "kind" "cond" a.Ba_report.Hotspots.kind
  | other -> Alcotest.failf "expected 2 sites, got %d" (List.length other)

let test_hotspots_render () =
  let w = Option.get (Ba_workloads.Spec.by_name "groff") in
  let program = w.Ba_workloads.Spec.build () in
  let image = Ba_layout.Image.original program in
  let hot = Ba_report.Hotspots.create image in
  let (_ : Ba_exec.Engine.result) =
    Ba_exec.Engine.run ~max_steps:50_000 ~on_event:(Ba_report.Hotspots.on_event hot) image
  in
  let s = Ba_report.Hotspots.render ~k:5 hot in
  Alcotest.(check int) "header + sep + 5 rows + newline" 8
    (List.length (String.split_on_char '\n' s))

let suites =
  [
    ( "report.shapes",
      [
        Alcotest.test_case "try15 <= greedy <= orig (FT)" `Slow
          test_alignment_ordering_fallthrough;
        Alcotest.test_case "alignment helps every arch" `Slow
          test_alignment_helps_every_static_arch;
        Alcotest.test_case "architecture ordering" `Slow test_architecture_ordering_original;
        Alcotest.test_case "btb benefits least" `Slow test_btb_benefits_least;
        Alcotest.test_case "fall-through pct rises" `Slow test_fallthrough_percentage_rises;
        Alcotest.test_case "static-dynamic gap narrows" `Slow
          test_alignment_narrows_static_dynamic_gap;
        Alcotest.test_case "alpha for C programs" `Slow test_alpha_only_for_c_programs;
        Alcotest.test_case "alpha normalised" `Slow test_alpha_normalized;
      ] );
    ( "report.tables",
      [
        Alcotest.test_case "render shapes" `Slow test_tables_render;
        Alcotest.test_case "table1 contents" `Quick test_table1_contents;
      ] );
    ( "report.hotspots",
      [
        Alcotest.test_case "alvinn self-loops" `Quick test_hotspots_alvinn;
        Alcotest.test_case "render" `Quick test_hotspots_render;
      ] );
  ]
