(* Tests for Ba_isa: instruction materialisation, disassembly, and the
   dual-issue pairing model. *)

open Ba_ir
open Ba_isa

let cond ?(behavior = Behavior.Loop 5) t f = Term.Cond { on_true = t; on_false = f; behavior }

let sample_program () =
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:4 (cond 1 2);
        Block.make ~insns:3 (Term.Jump 0);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"isa" ~seed:77 [| main |]

let listing ?fp_fraction ?decision () =
  let prog = sample_program () in
  let image =
    match decision with
    | None -> Ba_layout.Image.original prog
    | Some d -> Ba_layout.Image.build prog [| d |]
  in
  Codegen.of_image ?fp_fraction image

(* -- Insn ------------------------------------------------------------------ *)

let test_insn_pipes () =
  Alcotest.(check bool) "alu is integer pipe" true (Insn.pipe Insn.Ialu = Insn.Epipe);
  Alcotest.(check bool) "loads use integer pipe" true (Insn.pipe Insn.Load = Insn.Epipe);
  Alcotest.(check bool) "fp ops use fp pipe" true (Insn.pipe Insn.Fmul = Insn.Fpipe);
  Alcotest.(check bool) "branches are branches" true (Insn.is_branch Insn.Cbr);
  Alcotest.(check bool) "halt is not a branch" false (Insn.is_branch Insn.Halt)

(* -- Codegen ---------------------------------------------------------------- *)

let test_codegen_covers_every_address () =
  let l = listing () in
  let image = l.Codegen.image in
  for addr = 0 to image.Ba_layout.Image.total_size - 1 do
    if Codegen.insn_at l addr = None then Alcotest.failf "no instruction at %d" addr
  done

let test_codegen_terminators () =
  let l = listing () in
  (* b0: 4 body insns then a conditional at address 4 targeting b1?  b0's
     taken leg is on_false = b2 (b1 is adjacent). *)
  (match Codegen.insn_at l 4 with
  | Some { Insn.opcode = Insn.Cbr; target = Some t } ->
    (* b0 occupies 0-4, b1 5-8, so b2 starts at 9. *)
    Alcotest.(check int) "cbr targets b2" 9 t
  | _ -> Alcotest.fail "expected conditional at 4");
  (* b1 starts at 5 with 3 body insns; its back jump sits at 8. *)
  match Codegen.insn_at l 8 with
  | Some { Insn.opcode = Insn.Br; target = Some 0 } -> ()
  | _ -> Alcotest.fail "expected back jump to b0"

let test_codegen_deterministic () =
  let l1 = listing () and l2 = listing () in
  let image = l1.Codegen.image in
  for addr = 0 to image.Ba_layout.Image.total_size - 1 do
    if Codegen.insn_at l1 addr <> Codegen.insn_at l2 addr then
      Alcotest.failf "address %d differs across builds" addr
  done

let test_codegen_body_stable_across_layouts () =
  (* A block's straight-line opcodes must not depend on where the layout
     put it: rewriters do not regenerate code. *)
  let prog = sample_program () in
  let l_orig = Codegen.of_image (Ba_layout.Image.original prog) in
  let d = Ba_layout.Decision.of_order [| 0; 2; 1 |] in
  let l_alt = Codegen.of_image (Ba_layout.Image.build prog [| d |]) in
  let body l pos =
    let lb = Ba_layout.Image.lblock l.Codegen.image 0 pos in
    List.filteri (fun i _ -> i < lb.Ba_layout.Linear.insns) (Codegen.block_insns l lb)
    |> List.map (fun i -> i.Insn.opcode)
  in
  (* Block b1 sits at position 1 originally and position 2 in the variant. *)
  Alcotest.(check bool) "b1 body opcodes identical" true (body l_orig 1 = body l_alt 2)

let test_codegen_fp_fraction () =
  let count_fp l =
    let image = l.Codegen.image in
    let fp = ref 0 and total = ref 0 in
    for addr = 0 to image.Ba_layout.Image.total_size - 1 do
      match Codegen.insn_at l addr with
      | Some i when not (Insn.is_branch i.Insn.opcode) ->
        incr total;
        if Insn.pipe i.Insn.opcode = Insn.Fpipe then incr fp
      | _ -> ()
    done;
    (!fp, !total)
  in
  let fp0, _ = count_fp (listing ~fp_fraction:0.0 ()) in
  let fp9, total = count_fp (listing ~fp_fraction:0.9 ()) in
  Alcotest.(check int) "no fp at fraction 0" 0 fp0;
  Alcotest.(check bool) "mostly fp at fraction 0.9" true (fp9 * 2 > total)

(* -- Pairing ---------------------------------------------------------------- *)

let test_pairing_rules () =
  let i op = Insn.make op in
  (* Two integer ops cannot pair. *)
  Alcotest.(check int) "alu;alu" 2 (Pairing.issue_cycles [ i Insn.Ialu; i Insn.Ialu ]);
  (* Integer + fp pair. *)
  Alcotest.(check int) "alu;fadd" 1 (Pairing.issue_cycles [ i Insn.Ialu; i Insn.Fadd ]);
  Alcotest.(check int) "fadd;alu" 1 (Pairing.issue_cycles [ i Insn.Fadd; i Insn.Ialu ]);
  (* Two fp ops cannot pair. *)
  Alcotest.(check int) "fadd;fmul" 2 (Pairing.issue_cycles [ i Insn.Fadd; i Insn.Fmul ]);
  (* A branch ends its issue group: it does not pair with a following op. *)
  Alcotest.(check int) "cbr;fadd" 2 (Pairing.issue_cycles [ i Insn.Cbr; i Insn.Fadd ]);
  (* But an fp op can pair with a following branch. *)
  Alcotest.(check int) "fadd;cbr" 1 (Pairing.issue_cycles [ i Insn.Fadd; i Insn.Cbr ]);
  Alcotest.(check int) "empty" 0 (Pairing.issue_cycles [])

let test_pairing_prefix_consistency () =
  (* The prefix table's full-length entry must equal issue_cycles. *)
  let l = listing ~fp_fraction:0.4 () in
  let prefix = Pairing.prefix_table l in
  Array.iter
    (fun (lb : Ba_layout.Linear.lblock) ->
      let c = Hashtbl.find prefix lb.Ba_layout.Linear.addr in
      let n = Ba_layout.Linear.block_size lb in
      Alcotest.(check int) "prefix length" (n + 1) (Array.length c);
      Alcotest.(check int) "full prefix equals issue_cycles"
        (Pairing.block_cycles l lb) c.(n);
      (* Prefixes are monotone and bounded by k. *)
      for k = 1 to n do
        if c.(k) < c.(k - 1) then Alcotest.fail "prefix not monotone";
        if c.(k) > k then Alcotest.fail "prefix exceeds instruction count"
      done)
    l.Codegen.image.Ba_layout.Image.linears.(0).Ba_layout.Linear.blocks

let test_pairing_fp_code_issues_faster () =
  let cycles fp_fraction =
    let l = listing ~fp_fraction () in
    let tbl = Pairing.per_block_table l in
    Hashtbl.fold (fun _ c acc -> acc + c) tbl 0
  in
  Alcotest.(check bool) "fp-heavy code dual-issues more" true (cycles 0.5 < cycles 0.0)

(* -- Disasm ----------------------------------------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_disasm_listing () =
  let l = listing () in
  let s = Disasm.proc_listing l 0 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains s needle))
    [ "main:"; "b0:"; "b1:"; "b2:"; "bne"; "br"; "call_pal halt"; "main:b0" ]

let test_disasm_side_by_side () =
  let prog = sample_program () in
  let profile = Ba_exec.Engine.profile_program prog in
  let original = Codegen.of_image (Ba_layout.Image.original ~profile prog) in
  let aligned =
    Codegen.of_image
      (Ba_core.Align.image (Ba_core.Align.Tryn 15) ~arch:Ba_core.Cost_model.Fallthrough
         profile)
  in
  let s = Disasm.side_by_side ~original ~aligned 0 in
  Alcotest.(check bool) "header" true (contains s "ORIGINAL");
  Alcotest.(check bool) "separator" true (contains s " | ")

let test_alpha_pairing_integration () =
  (* The Alpha model with a listing must count more base cycles for pure
     integer code than for fp-heavy code of the same program. *)
  let prog = sample_program () in
  let image = Ba_layout.Image.original prog in
  let cycles fp_fraction =
    let r, a = Ba_sim.Runner.simulate_alpha ~fp_fraction image in
    Ba_sim.Alpha.cycles a ~insns:r.Ba_exec.Engine.insns
  in
  Alcotest.(check bool) "fp pairs better end to end" true (cycles 0.9 < cycles 0.0)

let suites =
  [
    ("isa.insn", [ Alcotest.test_case "pipes" `Quick test_insn_pipes ]);
    ( "isa.codegen",
      [
        Alcotest.test_case "covers every address" `Quick test_codegen_covers_every_address;
        Alcotest.test_case "terminators" `Quick test_codegen_terminators;
        Alcotest.test_case "deterministic" `Quick test_codegen_deterministic;
        Alcotest.test_case "body stable across layouts" `Quick
          test_codegen_body_stable_across_layouts;
        Alcotest.test_case "fp fraction" `Quick test_codegen_fp_fraction;
      ] );
    ( "isa.pairing",
      [
        Alcotest.test_case "rules" `Quick test_pairing_rules;
        Alcotest.test_case "prefix consistency" `Quick test_pairing_prefix_consistency;
        Alcotest.test_case "fp issues faster" `Quick test_pairing_fp_code_issues_faster;
      ] );
    ( "isa.disasm",
      [
        Alcotest.test_case "listing" `Quick test_disasm_listing;
        Alcotest.test_case "side by side" `Quick test_disasm_side_by_side;
        Alcotest.test_case "alpha integration" `Quick test_alpha_pairing_integration;
      ] );
  ]
