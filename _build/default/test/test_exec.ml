(* Tests for Ba_exec: interpreter semantics, determinism, layout
   equivalence, trace statistics. *)

open Ba_ir
open Ba_layout
open Ba_exec

let cond ?(behavior = Behavior.Bias 0.5) t f =
  Term.Cond { on_true = t; on_false = f; behavior }

let run_events ?max_steps image =
  let events = ref [] in
  let result = Engine.run ?max_steps ~on_event:(fun e -> events := e :: !events) image in
  (result, List.rev !events)

(* A tiny fully deterministic program:
   main: b0 (2 insns, call p1) -> b1 (1 insn, halt)
   p1:   b0 (3 insns, ret) *)
let call_program () =
  let callee = Proc.make ~name:"callee" [| Block.make ~insns:3 Term.Ret |] in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:2 (Term.Call { callee = 1; next = 1 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"call" ~seed:7 [| main; callee |]

let test_call_ret_sequence () =
  let image = Image.original (call_program ()) in
  let result, events = run_events image in
  Alcotest.(check bool) "completed" true result.Engine.completed;
  (* call (1) + callee straight (3) + ret (1) + main straight already counted:
     2 + 1 + 3 + 1 + 1 + 1(halt) = 9 *)
  Alcotest.(check int) "insns" 9 result.Engine.insns;
  Alcotest.(check int) "steps" 3 result.Engine.steps;
  match events with
  | [ call; ret ] ->
    Alcotest.(check bool) "call kind" true (call.Event.kind = Event.Call);
    Alcotest.(check int) "call pc" 2 call.Event.pc;
    Alcotest.(check int) "call target = callee base" 5 call.Event.target;
    Alcotest.(check bool) "ret kind" true (ret.Event.kind = Event.Ret);
    Alcotest.(check int) "ret target = after call" 3 ret.Event.target
  | _ -> Alcotest.failf "expected 2 events, got %d" (List.length events)

let test_loop_program () =
  (* b0: loop header, cond Loop 4 -> self-ish structure:
     b0 (cond true->b1 body, false->b2 exit); b1 jumps back to b0; b2 halts. *)
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1 (cond ~behavior:(Behavior.Loop 4) 1 2);
        Block.make ~insns:2 (Term.Jump 0);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let prog = Program.make ~name:"loop" ~seed:1 [| main |] in
  let image = Image.original prog in
  let result, events = run_events image in
  Alcotest.(check bool) "completed" true result.Engine.completed;
  (* Loop 4: T T T N -> 3 iterations of body, then exit.
     steps: b0,b1 three times, then b0,b2 -> 8 *)
  Alcotest.(check int) "steps" 8 result.Engine.steps;
  let conds =
    List.filter (fun e -> match e.Event.kind with Event.Cond _ -> true | _ -> false) events
  in
  Alcotest.(check int) "cond executions" 4 (List.length conds);
  let taken = List.filter Event.is_taken conds in
  (* on_true = b1 is the fall-through in the original layout, so the three
     "continue" outcomes are NOT taken and the final exit IS taken. *)
  Alcotest.(check int) "taken conds" 1 (List.length taken)

let test_determinism () =
  let prog = call_program () in
  let image = Image.original prog in
  let r1, e1 = run_events image in
  let r2, e2 = run_events image in
  Alcotest.(check int) "same insns" r1.Engine.insns r2.Engine.insns;
  Alcotest.(check bool) "same events" true (e1 = e2)

let test_max_steps_budget () =
  (* Infinite loop: b0 jumps to itself... not allowed by validate
     (unreachable b1 if any); use a 2-block spin. *)
  let main =
    Proc.make ~name:"spin"
      [|
        Block.make ~insns:1 (Term.Jump 1);
        Block.make ~insns:1 (Term.Jump 0);
      |]
  in
  let prog = Program.make ~name:"spin" [| main |] in
  let image = Image.original prog in
  let result = Engine.run ~max_steps:100 image in
  Alcotest.(check int) "stops at budget" 100 result.Engine.steps;
  Alcotest.(check bool) "not completed" false result.Engine.completed

let test_ret_from_main_halts () =
  let main = Proc.make ~name:"main" [| Block.make ~insns:1 Term.Ret |] in
  let prog = Program.make ~name:"retmain" [| main |] in
  let result, events = run_events (Image.original prog) in
  Alcotest.(check bool) "completed" true result.Engine.completed;
  Alcotest.(check int) "one event" 1 (List.length events)

let test_profile_collection () =
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1 (cond ~behavior:(Behavior.Loop 5) 1 2);
        Block.make ~insns:2 (Term.Jump 0);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let prog = Program.make ~name:"prof" ~seed:3 [| main |] in
  let profile = Engine.profile_program prog in
  Alcotest.(check int) "header visits" 5 (Ba_cfg.Profile.visits profile 0 0);
  Alcotest.(check int) "body visits" 4 (Ba_cfg.Profile.visits profile 0 1);
  Alcotest.(check (pair int int)) "cond counts" (4, 1) (Ba_cfg.Profile.cond_counts profile 0 0)

let test_inserted_jump_event () =
  (* Self-loop in a layout where neither leg is adjacent: check the extra
     Uncond event and instruction accounting. *)
  let main =
    Proc.make ~name:"selfloop"
      [|
        Block.make ~insns:1 (Term.Jump 1);
        Block.make ~insns:2 (cond ~behavior:(Behavior.Loop 3) 1 2);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let prog = Program.make ~name:"self" ~seed:5 [| main |] in
  let profile = Engine.profile_program prog in
  (* Lay the loop block out last so neither leg is adjacent. *)
  let image = Image.build ~profile prog [| Decision.of_order [| 0; 2; 1 |] |] in
  let _, events = run_events image in
  let unconds = List.filter (fun e -> e.Event.kind = Event.Uncond) events in
  (* The entry jump to the loop block, plus the loop exit (Loop 3 -> T T N:
     continues are taken branches under the natural encoding; the final
     not-taken outcome goes through the inserted jump to the exit block). *)
  Alcotest.(check int) "entry jump + exit jump" 2 (List.length unconds);
  let conds =
    List.filter (fun e -> match e.Event.kind with Event.Cond _ -> true | _ -> false) events
  in
  Alcotest.(check int) "loop test executed thrice" 3 (List.length conds);
  Alcotest.(check int) "continues taken" 2 (List.length (List.filter Event.is_taken conds))

let test_vcall_dispatch () =
  let leaf name = Proc.make ~name [| Block.make ~insns:1 Term.Ret |] in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1
          (Term.Vcall { callees = [| (1, 1.0); (2, 1.0) |]; next = 1 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let prog = Program.make ~name:"vc" ~seed:9 [| main; leaf "a"; leaf "b" |] in
  let _, events = run_events (Image.original prog) in
  let icalls = List.filter (fun e -> e.Event.kind = Event.Indirect_call) events in
  Alcotest.(check int) "one indirect call" 1 (List.length icalls)

let test_switch_dispatch () =
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1 (Term.Switch { targets = [| (1, 1.0); (2, 1.0) |] });
        Block.make ~insns:1 (Term.Jump 3);
        Block.make ~insns:1 (Term.Jump 3);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let prog = Program.make ~name:"sw" ~seed:11 [| main |] in
  let profile = Ba_cfg.Profile.create prog in
  let result = Engine.run ~profile (Image.original prog) in
  Alcotest.(check bool) "completed" true result.Engine.completed;
  let c1 = Ba_cfg.Profile.visits profile 0 1 and c2 = Ba_cfg.Profile.visits profile 0 2 in
  Alcotest.(check int) "exactly one case taken" 1 (c1 + c2)

(* The central property: the semantic execution is independent of layout. *)
let semantic_equivalence (p, ds) =
  let max_steps = 3_000 in
  let prof_orig = Ba_cfg.Profile.create p in
  let r_orig = Engine.run ~profile:prof_orig ~max_steps (Image.original p) in
  let prof_alt = Ba_cfg.Profile.create p in
  let r_alt = Engine.run ~profile:prof_alt ~max_steps (Image.build p ds) in
  let same_profiles =
    let ok = ref true in
    Program.iter_blocks p (fun pid b blk ->
        if Ba_cfg.Profile.visits prof_orig pid b <> Ba_cfg.Profile.visits prof_alt pid b
        then ok := false;
        match blk.Block.term with
        | Term.Cond _ ->
          if
            Ba_cfg.Profile.cond_counts prof_orig pid b
            <> Ba_cfg.Profile.cond_counts prof_alt pid b
          then ok := false
        | _ -> ());
    !ok
  in
  r_orig.Engine.steps = r_alt.Engine.steps
  && r_orig.Engine.completed = r_alt.Engine.completed
  && same_profiles

let test_trace_stats () =
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:8 (cond ~behavior:(Behavior.Loop 10) 1 2);
        Block.make ~insns:2 (Term.Jump 0);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let prog = Program.make ~name:"stats" ~seed:13 [| main |] in
  let stats = Trace_stats.create () in
  let result =
    Engine.run ~on_event:(Trace_stats.on_event stats) (Image.original prog)
  in
  let s = Trace_stats.summarize stats ~program:prog ~insns:result.Engine.insns in
  Alcotest.(check int) "static sites" 1 s.Trace_stats.static_cond_sites;
  Alcotest.(check int) "q100" 1 s.Trace_stats.q100;
  Alcotest.(check int) "q50" 1 s.Trace_stats.q50;
  (* Loop 10 with on_true adjacent: 9 not-taken continues + 1 taken exit. *)
  Alcotest.(check (float 0.01)) "pct taken" 10.0 s.Trace_stats.pct_taken;
  Alcotest.(check (float 0.01)) "pct fall-through" 90.0
    (Trace_stats.pct_cond_fallthrough stats);
  (* breaks: 10 cond + 9 uncond = 19; insns: 10*9 + 9*3 + 1*2 = 119. *)
  Alcotest.(check (float 0.01)) "pct breaks" (100.0 *. 19.0 /. 119.0) s.Trace_stats.pct_breaks;
  Alcotest.(check (float 0.01)) "pct cbr" (100.0 *. 10.0 /. 19.0) s.Trace_stats.pct_cbr;
  Alcotest.(check (float 0.01)) "pct br" (100.0 *. 9.0 /. 19.0) s.Trace_stats.pct_br

(* -- Trace_io -------------------------------------------------------------- *)

let tmp_trace_path suffix = Filename.temp_file "ba_trace" suffix

let test_trace_roundtrip () =
  let prog = call_program () in
  let image = Image.original prog in
  let recorded = ref [] in
  let path = tmp_trace_path ".trace" in
  let result =
    Trace_io.record ~path (fun ~on_event ->
        Engine.run
          ~on_event:(fun e ->
            recorded := e :: !recorded;
            on_event e)
          image)
  in
  let replayed = ref [] in
  let n = Trace_io.replay ~path (fun e -> replayed := e :: !replayed) in
  Sys.remove path;
  Alcotest.(check int) "event count" result.Engine.branches n;
  Alcotest.(check bool) "events identical" true (!recorded = !replayed)

let test_trace_bad_magic () =
  let path = tmp_trace_path ".bad" in
  let oc = open_out_bin path in
  output_string oc "NOTATRACE";
  close_out oc;
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Trace_io.replay ~path (fun _ -> ()));
       false
     with Failure _ -> true);
  Sys.remove path

let test_trace_replay_predictions_match_live () =
  (* Replaying a trace through a predictor must give exactly the penalties a
     live run gives. *)
  let prog =
    Program.make ~name:"replay" ~seed:21
      [|
        Proc.make ~name:"main"
          [|
            Block.make ~insns:2 (cond ~behavior:(Behavior.Loop 37) 1 2);
            Block.make ~insns:3 (Term.Jump 0);
            Block.make ~insns:1 Term.Halt;
          |];
      |]
  in
  let image = Image.original prog in
  let live = Ba_sim.Bep.create Ba_sim.Bep.Static_btfnt in
  let path = tmp_trace_path ".trace" in
  let (_ : Engine.result) =
    Trace_io.record ~path (fun ~on_event ->
        Engine.run
          ~on_event:(fun e ->
            Ba_sim.Bep.on_event live e;
            on_event e)
          image)
  in
  let offline = Ba_sim.Bep.create Ba_sim.Bep.Static_btfnt in
  let (_ : int) = Trace_io.replay ~path (Ba_sim.Bep.on_event offline) in
  Sys.remove path;
  Alcotest.(check int) "same bep" (Ba_sim.Bep.bep live) (Ba_sim.Bep.bep offline);
  Alcotest.(check bool) "same counts" true (Ba_sim.Bep.counts live = Ba_sim.Bep.counts offline)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"semantic execution is layout independent" ~count:150
      Gen_prog.program_with_decisions_arb semantic_equivalence;
    Test.make ~name:"engine is deterministic" ~count:60 Gen_prog.program_arb (fun p ->
        let image = Image.original p in
        let r1 = Engine.run ~max_steps:2_000 image in
        let r2 = Engine.run ~max_steps:2_000 image in
        r1 = r2);
    Test.make ~name:"branch events never exceed instructions" ~count:60
      Gen_prog.program_arb (fun p ->
        let r = Engine.run ~max_steps:2_000 (Image.original p) in
        r.Engine.branches <= r.Engine.insns);
    Test.make ~name:"trace files round-trip" ~count:30 Gen_prog.program_arb (fun p ->
        let image = Image.original p in
        let recorded = ref [] in
        let path = Filename.temp_file "ba_qc" ".trace" in
        let (_ : Engine.result) =
          Trace_io.record ~path (fun ~on_event ->
              Engine.run ~max_steps:1_000
                ~on_event:(fun e ->
                  recorded := e :: !recorded;
                  on_event e)
                image)
        in
        let replayed = ref [] in
        let (_ : int) = Trace_io.replay ~path (fun e -> replayed := e :: !replayed) in
        Sys.remove path;
        !recorded = !replayed);
  ]

let suites =
  [
    ( "exec.engine",
      [
        Alcotest.test_case "call/ret sequence" `Quick test_call_ret_sequence;
        Alcotest.test_case "loop program" `Quick test_loop_program;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "max_steps budget" `Quick test_max_steps_budget;
        Alcotest.test_case "ret from main halts" `Quick test_ret_from_main_halts;
        Alcotest.test_case "profile collection" `Quick test_profile_collection;
        Alcotest.test_case "inserted jump events" `Quick test_inserted_jump_event;
        Alcotest.test_case "vcall dispatch" `Quick test_vcall_dispatch;
        Alcotest.test_case "switch dispatch" `Quick test_switch_dispatch;
      ] );
    ( "exec.trace_stats",
      [ Alcotest.test_case "loop stats" `Quick test_trace_stats ] );
    ( "exec.trace_io",
      [
        Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
        Alcotest.test_case "bad magic" `Quick test_trace_bad_magic;
        Alcotest.test_case "replay matches live" `Quick test_trace_replay_predictions_match_live;
      ] );
    ("exec.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
