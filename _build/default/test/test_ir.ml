(* Tests for Ba_ir: behaviours, terminators, procedure/program validation. *)

open Ba_ir

let rng seed = Ba_util.Rng.create seed

let drawn behavior ~n ~seed =
  let st = Behavior.init_state behavior (rng seed) in
  let history = ref 0 in
  List.init n (fun _ ->
      let v = Behavior.next behavior st ~history:!history in
      history := (!history lsl 1) lor (if v then 1 else 0);
      v)

let rate xs =
  let t = List.length (List.filter Fun.id xs) in
  float_of_int t /. float_of_int (List.length xs)

(* -- Behavior ------------------------------------------------------------ *)

let test_always () =
  Alcotest.(check (list bool)) "always true" [ true; true; true ]
    (drawn (Behavior.Always true) ~n:3 ~seed:1);
  Alcotest.(check (list bool)) "always false" [ false; false ]
    (drawn (Behavior.Always false) ~n:2 ~seed:1)

let test_bias_rate () =
  let xs = drawn (Behavior.Bias 0.8) ~n:20_000 ~seed:2 in
  Alcotest.(check (float 0.02)) "bias rate" 0.8 (rate xs)

let test_loop_shape () =
  (* Loop 4: T T T N repeating. *)
  Alcotest.(check (list bool)) "loop 4"
    [ true; true; true; false; true; true; true; false ]
    (drawn (Behavior.Loop 4) ~n:8 ~seed:3)

let test_loop_one () =
  Alcotest.(check (list bool)) "loop 1 never continues" [ false; false; false ]
    (drawn (Behavior.Loop 1) ~n:3 ~seed:3)

let test_pattern () =
  let p = Behavior.Pattern [| true; false; false |] in
  Alcotest.(check (list bool)) "pattern repeats"
    [ true; false; false; true; false; false; true ]
    (drawn p ~n:7 ~seed:4)

let test_correlated_follows_history () =
  (* Outcome = bit 0 of history (i.e. repeat the previous global outcome). *)
  let b = Behavior.Correlated { bits = 1; table = [| false; true |]; noise = 0.0 } in
  let st = Behavior.init_state b (rng 5) in
  Alcotest.(check bool) "history 0 -> false" false (Behavior.next b st ~history:0);
  Alcotest.(check bool) "history 1 -> true" true (Behavior.next b st ~history:1);
  Alcotest.(check bool) "history 2 -> false" false (Behavior.next b st ~history:2)

let test_correlated_noise () =
  let b = Behavior.Correlated { bits = 1; table = [| false; false |]; noise = 1.0 } in
  let st = Behavior.init_state b (rng 6) in
  Alcotest.(check bool) "full noise flips" true (Behavior.next b st ~history:0)

let test_markov_runs () =
  (* Very sticky chain: long runs of equal outcomes. *)
  let b = Behavior.Markov { p_stay_true = 0.95; p_stay_false = 0.95; init = false } in
  let xs = drawn b ~n:10_000 ~seed:7 in
  let switches =
    let rec count acc = function
      | a :: (b :: _ as rest) -> count (if a <> b then acc + 1 else acc) rest
      | _ -> acc
    in
    count 0 xs
  in
  (* Expected switch rate is 5%; allow generous slack. *)
  Alcotest.(check bool) "few switches" true (switches < 800)

let test_markov_stationary () =
  let b = Behavior.Markov { p_stay_true = 0.9; p_stay_false = 0.6; init = false } in
  (* stationary P(true) = (1-0.6) / ((1-0.9) + (1-0.6)) = 0.8 *)
  Alcotest.(check (float 1e-9)) "mean_rate" 0.8 (Behavior.mean_rate b);
  let xs = drawn b ~n:40_000 ~seed:8 in
  Alcotest.(check (float 0.02)) "empirical rate" 0.8 (rate xs)

let test_mean_rate () =
  Alcotest.(check (float 1e-9)) "always" 1.0 (Behavior.mean_rate (Behavior.Always true));
  Alcotest.(check (float 1e-9)) "bias" 0.25 (Behavior.mean_rate (Behavior.Bias 0.25));
  Alcotest.(check (float 1e-9)) "loop" 0.75 (Behavior.mean_rate (Behavior.Loop 4));
  Alcotest.(check (float 1e-9)) "pattern" (1.0 /. 3.0)
    (Behavior.mean_rate (Behavior.Pattern [| true; false; false |]))

let test_behavior_validate () =
  let ok b = Alcotest.(check bool) "valid" true (Result.is_ok (Behavior.validate b)) in
  let bad b = Alcotest.(check bool) "invalid" true (Result.is_error (Behavior.validate b)) in
  ok (Behavior.Bias 0.5);
  bad (Behavior.Bias 1.5);
  bad (Behavior.Loop 0);
  ok (Behavior.Loop 1);
  bad (Behavior.Pattern [||]);
  bad (Behavior.Correlated { bits = 2; table = [| true |]; noise = 0.0 });
  ok (Behavior.Correlated { bits = 2; table = Array.make 4 true; noise = 0.1 });
  bad (Behavior.Markov { p_stay_true = -0.1; p_stay_false = 0.5; init = false })

let test_behavior_determinism () =
  let b = Behavior.Bias 0.5 in
  Alcotest.(check (list bool)) "same seed same stream"
    (drawn b ~n:50 ~seed:123) (drawn b ~n:50 ~seed:123)

(* -- Term ----------------------------------------------------------------- *)

let cond t f = Term.Cond { on_true = t; on_false = f; behavior = Behavior.Bias 0.5 }

let test_successors () =
  Alcotest.(check (list int)) "jump" [ 3 ] (Term.successors (Term.Jump 3));
  Alcotest.(check (list int)) "cond" [ 1; 2 ] (Term.successors (cond 1 2));
  Alcotest.(check (list int)) "cond same target" [ 1 ] (Term.successors (cond 1 1));
  Alcotest.(check (list int)) "switch dedup" [ 1; 2 ]
    (Term.successors (Term.Switch { targets = [| (1, 0.5); (2, 0.3); (1, 0.2) |] }));
  Alcotest.(check (list int)) "call" [ 4 ]
    (Term.successors (Term.Call { callee = 0; next = 4 }));
  Alcotest.(check (list int)) "ret" [] (Term.successors Term.Ret);
  Alcotest.(check (list int)) "halt" [] (Term.successors Term.Halt)

let test_is_branch_site () =
  Alcotest.(check bool) "jump" false (Term.is_branch_site (Term.Jump 0));
  Alcotest.(check bool) "cond" true (Term.is_branch_site (cond 0 1));
  Alcotest.(check bool) "ret" true (Term.is_branch_site Term.Ret);
  Alcotest.(check bool) "halt" false (Term.is_branch_site Term.Halt)

(* -- Proc / Program ------------------------------------------------------- *)

let simple_proc () =
  (* b0 -cond-> b1 / b2 ; b1 -jump-> b2 ; b2 ret *)
  Proc.make ~name:"p"
    [|
      Block.make (cond 1 2);
      Block.make (Term.Jump 2);
      Block.make Term.Ret;
    |]

let test_proc_predecessors () =
  let p = simple_proc () in
  let preds = Proc.predecessors p in
  Alcotest.(check (list int)) "entry preds" [] preds.(0);
  Alcotest.(check (list int)) "b1 preds" [ 0 ] preds.(1);
  Alcotest.(check (list int)) "b2 preds" [ 0; 1 ] preds.(2)

let test_proc_validate_ok () =
  Alcotest.(check bool) "valid" true (Result.is_ok (Proc.validate (simple_proc ())))

let test_proc_validate_out_of_range () =
  let p = Proc.make ~name:"bad" [| Block.make (Term.Jump 5) |] in
  Alcotest.(check bool) "invalid" true (Result.is_error (Proc.validate p))

let test_proc_validate_unreachable () =
  let p =
    Proc.make ~name:"unreach"
      [| Block.make Term.Ret; Block.make Term.Ret |]
  in
  Alcotest.(check bool) "unreachable detected" true (Result.is_error (Proc.validate p))

let test_proc_validate_bad_behavior () =
  let p =
    Proc.make ~name:"badb"
      [|
        Block.make (Term.Cond { on_true = 1; on_false = 1; behavior = Behavior.Loop 0 });
        Block.make Term.Ret;
      |]
  in
  Alcotest.(check bool) "bad behaviour detected" true (Result.is_error (Proc.validate p))

let test_proc_empty () =
  Alcotest.check_raises "empty proc" (Invalid_argument "Proc.make: empty procedure")
    (fun () -> ignore (Proc.make ~name:"e" [||]))

let test_program_validate () =
  let leaf = Proc.make ~name:"leaf" [| Block.make Term.Ret |] in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make (Term.Call { callee = 1; next = 1 });
        Block.make Term.Halt;
      |]
  in
  let prog = Program.make ~name:"prog" [| main; leaf |] in
  Alcotest.(check bool) "valid program" true (Result.is_ok (Program.validate prog))

let test_program_validate_bad_callee () =
  let main =
    Proc.make ~name:"main"
      [| Block.make (Term.Call { callee = 9; next = 1 }); Block.make Term.Halt |]
  in
  let prog = Program.make ~name:"prog" [| main |] in
  Alcotest.(check bool) "bad callee" true (Result.is_error (Program.validate prog))

let test_program_validate_halt_outside_main () =
  let other = Proc.make ~name:"other" [| Block.make Term.Halt |] in
  let main =
    Proc.make ~name:"main"
      [| Block.make (Term.Call { callee = 1; next = 1 }); Block.make Term.Halt |]
  in
  let prog = Program.make ~name:"prog" [| main; other |] in
  Alcotest.(check bool) "halt outside main" true (Result.is_error (Program.validate prog))

let test_program_accessors () =
  let leaf = Proc.make ~name:"leaf" [| Block.make Term.Ret |] in
  let main =
    Proc.make ~name:"main"
      [| Block.make (cond 1 1); Block.make Term.Halt |]
  in
  let prog = Program.make ~name:"prog" ~seed:99 [| main; leaf |] in
  Alcotest.(check int) "n_procs" 2 (Program.n_procs prog);
  Alcotest.(check int) "total blocks" 3 (Program.total_blocks prog);
  Alcotest.(check int) "seed" 99 prog.Program.seed;
  Alcotest.(check (list (pair int int))) "cond sites" [ (0, 0) ]
    (Program.conditional_sites prog)

let test_block_negative_insns () =
  Alcotest.check_raises "zero insns"
    (Invalid_argument "Block.make: instruction count must be positive") (fun () ->
      ignore (Block.make ~insns:0 Term.Ret))

let test_cond_equal_targets_rejected () =
  let p =
    Proc.make ~name:"eq"
      [|
        Block.make (Term.Cond { on_true = 1; on_false = 1; behavior = Behavior.Bias 0.5 });
        Block.make Term.Ret;
      |]
  in
  Alcotest.(check bool) "equal cond targets rejected" true
    (Result.is_error (Proc.validate p))

(* -- QCheck --------------------------------------------------------------- *)

let behavior_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun b -> Behavior.Always b) bool;
      map (fun p -> Behavior.Bias p) (float_bound_inclusive 1.0);
      map (fun n -> Behavior.Loop n) (int_range 1 64);
      map (fun l -> Behavior.Pattern (Array.of_list l)) (list_size (int_range 1 12) bool);
      map2
        (fun p q -> Behavior.Markov { p_stay_true = p; p_stay_false = q; init = false })
        (float_bound_inclusive 1.0) (float_bound_inclusive 1.0);
    ]

let behavior_arb = QCheck.make ~print:(Fmt.to_to_string Behavior.pp) behavior_gen

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"generated behaviours validate" ~count:300 behavior_arb
      (fun b -> Result.is_ok (Behavior.validate b));
    Test.make ~name:"mean_rate in [0,1]" ~count:300 behavior_arb (fun b ->
        let r = Behavior.mean_rate b in
        r >= 0.0 && r <= 1.0);
    Test.make ~name:"empirical rate tracks mean_rate" ~count:40
      (pair behavior_arb small_int)
      (fun (b, seed) ->
        (* Correlated excluded by the generator; all others have an exact
           long-run rate. *)
        let xs = drawn b ~n:30_000 ~seed in
        abs_float (rate xs -. Behavior.mean_rate b) < 0.05);
  ]

let suites =
  [
    ( "ir.behavior",
      [
        Alcotest.test_case "always" `Quick test_always;
        Alcotest.test_case "bias rate" `Quick test_bias_rate;
        Alcotest.test_case "loop shape" `Quick test_loop_shape;
        Alcotest.test_case "loop 1" `Quick test_loop_one;
        Alcotest.test_case "pattern" `Quick test_pattern;
        Alcotest.test_case "correlated history" `Quick test_correlated_follows_history;
        Alcotest.test_case "correlated noise" `Quick test_correlated_noise;
        Alcotest.test_case "markov runs" `Quick test_markov_runs;
        Alcotest.test_case "markov stationary" `Quick test_markov_stationary;
        Alcotest.test_case "mean_rate" `Quick test_mean_rate;
        Alcotest.test_case "validate" `Quick test_behavior_validate;
        Alcotest.test_case "determinism" `Quick test_behavior_determinism;
      ] );
    ( "ir.term",
      [
        Alcotest.test_case "successors" `Quick test_successors;
        Alcotest.test_case "is_branch_site" `Quick test_is_branch_site;
      ] );
    ( "ir.proc",
      [
        Alcotest.test_case "predecessors" `Quick test_proc_predecessors;
        Alcotest.test_case "validate ok" `Quick test_proc_validate_ok;
        Alcotest.test_case "validate out of range" `Quick test_proc_validate_out_of_range;
        Alcotest.test_case "validate unreachable" `Quick test_proc_validate_unreachable;
        Alcotest.test_case "validate bad behaviour" `Quick test_proc_validate_bad_behavior;
        Alcotest.test_case "empty proc" `Quick test_proc_empty;
        Alcotest.test_case "zero insns" `Quick test_block_negative_insns;
        Alcotest.test_case "equal cond targets" `Quick test_cond_equal_targets_rejected;
      ] );
    ( "ir.program",
      [
        Alcotest.test_case "validate" `Quick test_program_validate;
        Alcotest.test_case "bad callee" `Quick test_program_validate_bad_callee;
        Alcotest.test_case "halt outside main" `Quick test_program_validate_halt_outside_main;
        Alcotest.test_case "accessors" `Quick test_program_accessors;
      ] );
    ("ir.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
