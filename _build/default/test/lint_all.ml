(* The lint-all matrix: every built-in workload, linted end-to-end under
   every alignment algorithm and every architectural cost model.  Runs as
   part of `dune runtest`; any Error-severity diagnostic fails the build
   with its rule id and location printed.

   Each workload is profiled once and the profile reused across the
   algorithm × architecture grid (the profile is layout-independent, so
   this is exactly what the experiment harness does too). *)

let algos =
  [
    Ba_core.Align.Original;
    Ba_core.Align.Greedy;
    Ba_core.Align.Cost;
    Ba_core.Align.Tryn 15;
  ]

(* Enough budget that every workload's control-flow signature is fully
   exercised; completion is not required (truncation is lint-legal). *)
let max_steps = 60_000

let () =
  let failed = ref 0 and reports = ref 0 in
  List.iter
    (fun (w : Ba_workloads.Spec.t) ->
      let program = w.Ba_workloads.Spec.build () in
      let profile = Ba_exec.Engine.profile_program ~max_steps program in
      List.iter
        (fun algo ->
          List.iter
            (fun arch ->
              incr reports;
              let report =
                Ba_analysis.Run.check_pipeline ~arch ~profile ~algo program
              in
              let errs = Ba_analysis.Run.error_count report in
              if errs > 0 then begin
                incr failed;
                Printf.printf "FAIL %-12s %-8s %-11s %d error%s\n" w.name
                  (Ba_core.Align.algo_name algo)
                  (Ba_core.Cost_model.arch_name arch)
                  errs
                  (if errs = 1 then "" else "s");
                List.iter
                  (fun d ->
                    if Ba_analysis.Diagnostic.is_error d then
                      Format.printf "  %a@." Ba_analysis.Diagnostic.pp d)
                  (Ba_analysis.Run.diagnostics report)
              end)
            Ba_core.Cost_model.all_arches)
        algos)
    Ba_workloads.Spec.all;
  if !failed > 0 then begin
    Printf.printf "lint-all: %d of %d workload/algo/arch combinations failed\n"
      !failed !reports;
    exit 1
  end
  else
    Printf.printf
      "lint-all: %d workload/algo/arch combinations, no errors\n" !reports
