open Ba_exec

type site = {
  pc : int;
  proc_name : string;
  block : Ba_ir.Term.block_id;
  kind : string;
  executions : int;
  taken : int;
}

type cell = { mutable execs : int; mutable takens : int; mutable kind : string }

type t = {
  image : Ba_layout.Image.t;
  cells : (int, cell) Hashtbl.t;
  mutable total : int;
}

let create image = { image; cells = Hashtbl.create 256; total = 0 }

let kind_name (e : Event.t) =
  match e.kind with
  | Event.Cond _ -> "cond"
  | Event.Uncond -> "uncond"
  | Event.Indirect_jump -> "ijump"
  | Event.Call -> "call"
  | Event.Indirect_call -> "icall"
  | Event.Ret -> "ret"

let on_event t (e : Event.t) =
  t.total <- t.total + 1;
  let cell =
    match Hashtbl.find_opt t.cells e.pc with
    | Some c -> c
    | None ->
      let c = { execs = 0; takens = 0; kind = kind_name e } in
      Hashtbl.add t.cells e.pc c;
      c
  in
  cell.execs <- cell.execs + 1;
  if Event.is_taken e then cell.takens <- cell.takens + 1

(* Map a branch pc back to its procedure and semantic block. *)
let locate (image : Ba_layout.Image.t) pc =
  let found = ref None in
  Array.iteri
    (fun p (linear : Ba_layout.Linear.t) ->
      Array.iter
        (fun (lb : Ba_layout.Linear.lblock) ->
          let base = lb.Ba_layout.Linear.addr in
          if pc >= base && pc < base + Ba_layout.Linear.block_size lb then
            found := Some (p, lb.Ba_layout.Linear.src))
        linear.Ba_layout.Linear.blocks)
    image.Ba_layout.Image.linears;
  !found

let top ?(k = 10) t =
  let sites =
    Hashtbl.fold
      (fun pc (c : cell) acc ->
        let proc_name, block =
          match locate t.image pc with
          | Some (p, b) ->
            ((Ba_ir.Program.proc t.image.Ba_layout.Image.program p).Ba_ir.Proc.name, b)
          | None -> ("?", -1)
        in
        { pc; proc_name; block; kind = c.kind; executions = c.execs; taken = c.takens }
        :: acc)
      t.cells []
  in
  let sorted = List.sort (fun a b -> compare b.executions a.executions) sites in
  List.filteri (fun i _ -> i < k) sorted

let render ?(k = 10) t =
  let open Ba_util.Ascii_table in
  let columns =
    [
      column ~align:Left "site"; column ~align:Left "kind"; column "pc";
      column "executions"; column "share%"; column "cum%"; column "taken%";
    ]
  in
  let cum = ref 0 in
  let rows =
    List.map
      (fun s ->
        cum := !cum + s.executions;
        [
          Printf.sprintf "%s:b%d" s.proc_name s.block;
          s.kind;
          string_of_int s.pc;
          int_cell s.executions;
          float_cell ~decimals:1 (Ba_util.Stats.pct s.executions t.total);
          float_cell ~decimals:1 (Ba_util.Stats.pct !cum t.total);
          float_cell ~decimals:1 (Ba_util.Stats.pct s.taken s.executions);
        ])
      (top ~k t)
  in
  render ~columns ~rows
