(** Formatters that render the paper's tables and figure series from
    harness evaluations, in the paper's row/column layout (programs grouped
    as SPECfp92 / SPECint92 / Other, with per-group arithmetic averages). *)

val table1 : unit -> string
(** Table 1: the branch cost model in cycles. *)

val table2 : Harness.eval list -> string
(** Table 2: measured attributes of the traced programs. *)

val table3 : Harness.eval list -> string
(** Table 3: relative CPI for the static prediction architectures and the
    fall-through percentages. *)

val table4 : Harness.eval list -> string
(** Table 4: relative CPI for the dynamic prediction architectures. *)

val fig4 : Harness.eval list -> string
(** Figure 4: relative total execution time on the Alpha 21064 model for
    the SPEC92 C programs (Original / Pettis & Hansen / Try15). *)
