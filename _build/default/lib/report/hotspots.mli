(** Per-site branch hotspot analysis.

    The paper motivates transformations by looking at individual routines —
    "6% of all branches in ALVINN arise from a single branch from basic
    block 4".  This module reproduces that analysis for any image: it
    aggregates the event stream per branch instruction, maps addresses back
    to procedures and blocks, and reports the hottest sites with their
    taken rates and cumulative contribution (the data behind Table 2's Q
    columns). *)

type site = {
  pc : int;
  proc_name : string;
  block : Ba_ir.Term.block_id;
  kind : string;  (** "cond", "uncond", "ijump", "call", "icall", "ret" *)
  executions : int;
  taken : int;
}

type t

val create : Ba_layout.Image.t -> t
val on_event : t -> Ba_exec.Event.t -> unit

val top : ?k:int -> t -> site list
(** The [k] most-executed branch sites (default 10), hottest first. *)

val render : ?k:int -> t -> string
(** A table of the top sites: share of all branch events, cumulative share,
    taken percentage, location. *)
