lib/report/tables.ml: Ascii_table Ba_core Ba_exec Ba_util Ba_workloads Harness List Stats
