lib/report/harness.mli: Ba_exec Ba_workloads
