lib/report/tables.mli: Harness
