lib/report/hotspots.ml: Array Ba_exec Ba_ir Ba_layout Ba_util Event Hashtbl List Printf
