lib/report/hotspots.mli: Ba_exec Ba_ir Ba_layout
