lib/report/harness.ml: Align Alpha Ba_core Ba_exec Ba_layout Ba_predict Ba_sim Ba_workloads Bep Cost_model List Runner
