open Ba_layout

type breakdown = {
  straight : float;
  cond : float;
  uncond : float;
  calls : float;
  indirect : float;
  returns : float;
  total : float;
}

let evaluate ~arch ?(table = Cost_model.default_table) ~visits ~cond_counts
    (linear : Linear.t) =
  let straight = ref 0.0 in
  let cond = ref 0.0 in
  let uncond = ref 0.0 in
  let calls = ref 0.0 in
  let indirect = ref 0.0 in
  let returns = ref 0.0 in
  let uncond_c = Cost_model.uncond_cost arch table in
  Array.iteri
    (fun pos (lb : Linear.lblock) ->
      let w = float_of_int (visits lb.Linear.src) in
      straight := !straight +. (w *. float_of_int lb.Linear.insns *. table.Cost_model.instruction);
      match lb.Linear.term with
      | Linear.Lnone -> ()
      | Linear.Ljump _ -> uncond := !uncond +. (w *. uncond_c)
      | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
        let n_true, n_false = cond_counts lb.Linear.src in
        let w_taken, w_fall =
          if taken_on then (float_of_int n_true, float_of_int n_false)
          else (float_of_int n_false, float_of_int n_true)
        in
        (* Positions are address-ordered, so a target at or before this
           block is a backward branch. *)
        let taken_backward = taken_pos <= pos in
        cond :=
          !cond
          +. Cost_model.cond_cost arch table ~w_taken ~w_fall ~taken_backward;
        (match inserted_jump with
        | Some _ -> uncond := !uncond +. (w_fall *. uncond_c)
        | None -> ())
      | Linear.Lswitch _ -> indirect := !indirect +. (w *. Cost_model.indirect_cost arch table)
      | Linear.Lcall { cont; _ } ->
        calls := !calls +. (w *. Cost_model.call_cost arch table);
        (match cont with
        | Linear.Jump_to _ -> uncond := !uncond +. (w *. uncond_c)
        | Linear.Fall -> ())
      | Linear.Lvcall { cont; _ } ->
        indirect := !indirect +. (w *. Cost_model.indirect_cost arch table);
        (match cont with
        | Linear.Jump_to _ -> uncond := !uncond +. (w *. uncond_c)
        | Linear.Fall -> ())
      | Linear.Lret -> returns := !returns +. (w *. Cost_model.return_cost table)
      | Linear.Lhalt -> returns := !returns +. (w *. table.Cost_model.instruction))
    linear.Linear.blocks;
  let total = !straight +. !cond +. !uncond +. !calls +. !indirect +. !returns in
  {
    straight = !straight;
    cond = !cond;
    uncond = !uncond;
    calls = !calls;
    indirect = !indirect;
    returns = !returns;
    total;
  }

let branch_cost ~arch ?table ~visits ~cond_counts linear =
  let b = evaluate ~arch ?table ~visits ~cond_counts linear in
  b.total -. b.straight
