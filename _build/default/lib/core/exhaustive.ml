open Ba_ir
open Ba_layout

let max_blocks = 9

(* Heap's algorithm, calling [f] on every permutation of [a] in place. *)
let iter_permutations a f =
  let n = Array.length a in
  let c = Array.make n 0 in
  f a;
  let i = ref 0 in
  while !i < n do
    if c.(!i) < !i then begin
      let j = if !i mod 2 = 0 then 0 else c.(!i) in
      let tmp = a.(j) in
      a.(j) <- a.(!i);
      a.(!i) <- tmp;
      f a;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done

let conds_of proc =
  Array.to_list proc.Proc.blocks
  |> List.mapi (fun b (blk : Block.t) -> (b, blk.term))
  |> List.filter_map (fun (b, term) ->
         match term with Term.Cond _ -> Some b | _ -> None)

let align_proc ~arch ?(table = Cost_model.default_table) profile pid =
  let program = Ba_cfg.Profile.program profile in
  let proc = Program.proc program pid in
  let n = Proc.n_blocks proc in
  if n > max_blocks then
    invalid_arg
      (Printf.sprintf "Exhaustive.align_proc: %d blocks exceeds the %d-block limit" n
         max_blocks);
  let visits b = Ba_cfg.Profile.visits profile pid b in
  let cond_counts b = Ba_cfg.Profile.cond_counts profile pid b in
  let cost decision =
    Layout_cost.branch_cost ~arch ~table ~visits ~cond_counts
      (Lower.lower ~cond_counts proc decision)
  in
  let conds = conds_of proc in
  let best_cost = ref infinity in
  let best = ref (Decision.identity proc) in
  let consider order =
    (* Site costs are independent given the block positions, so the best
       forced jump-leg choice can be picked one conditional at a time. *)
    let neither = Array.make n None in
    let base = ref (cost (Decision.of_order ~neither:(Array.copy neither) order)) in
    List.iter
      (fun b ->
        List.iter
          (fun leg ->
            let previous = neither.(b) in
            neither.(b) <- Some leg;
            let c = cost (Decision.of_order ~neither:(Array.copy neither) order) in
            if c < !base then base := c else neither.(b) <- previous)
          [ Decision.Jump_on_true; Decision.Jump_on_false ])
      conds;
    if !base < !best_cost then begin
      best_cost := !base;
      best := Decision.of_order ~neither:(Array.copy neither) (Array.copy order)
    end
  in
  if n = 1 then Decision.identity proc
  else begin
    let rest = Array.init (n - 1) (fun i -> i + 1) in
    iter_permutations rest (fun perm ->
        consider (Array.append [| Proc.entry |] perm));
    !best
  end

let optimal_cost ~arch ?table profile pid =
  let program = Ba_cfg.Profile.program profile in
  let proc = Program.proc program pid in
  let decision = align_proc ~arch ?table profile pid in
  let visits b = Ba_cfg.Profile.visits profile pid b in
  let cond_counts b = Ba_cfg.Profile.cond_counts profile pid b in
  Layout_cost.branch_cost ~arch
    ?table
    ~visits ~cond_counts
    (Lower.lower ~cond_counts proc decision)
