lib/core/greedy.mli: Ba_layout Ctx
