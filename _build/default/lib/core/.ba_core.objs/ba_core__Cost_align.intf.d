lib/core/cost_align.mli: Ba_layout Cost_model Ctx
