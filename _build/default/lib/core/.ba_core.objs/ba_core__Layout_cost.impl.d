lib/core/layout_cost.ml: Array Ba_layout Cost_model Linear
