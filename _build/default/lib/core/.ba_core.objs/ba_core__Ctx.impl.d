lib/core/ctx.ml: Array Ba_cfg Ba_ir Ba_layout Block Hashtbl List Proc Program Term
