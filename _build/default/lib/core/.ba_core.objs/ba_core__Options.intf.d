lib/core/options.mli: Ba_ir Ba_layout Cost_model Ctx
