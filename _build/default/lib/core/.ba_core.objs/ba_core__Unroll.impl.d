lib/core/unroll.ml: Array Ba_ir Behavior Block Hashtbl List Proc Program Term
