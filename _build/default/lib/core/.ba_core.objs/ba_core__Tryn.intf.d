lib/core/tryn.mli: Ba_layout Cost_model Ctx
