lib/core/layout_cost.mli: Ba_ir Ba_layout Cost_model
