lib/core/options.ml: Ba_ir Ba_layout Chain Cost_model Ctx Decision List
