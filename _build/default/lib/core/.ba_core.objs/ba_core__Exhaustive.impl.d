lib/core/exhaustive.ml: Array Ba_cfg Ba_ir Ba_layout Block Cost_model Decision Layout_cost List Lower Printf Proc Program Term
