lib/core/ctx.mli: Ba_cfg Ba_ir Ba_layout
