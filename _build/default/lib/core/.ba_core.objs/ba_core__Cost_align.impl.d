lib/core/cost_align.ml: Array Ba_cfg Ba_ir Ba_layout Chain Cost_model Ctx List Options
