lib/core/align.ml: Array Ba_cfg Ba_ir Ba_layout Cost_align Cost_model Ctx Greedy Printf Tryn
