lib/core/unroll.mli: Ba_ir
