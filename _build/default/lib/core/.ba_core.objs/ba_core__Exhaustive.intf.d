lib/core/exhaustive.mli: Ba_cfg Ba_ir Ba_layout Cost_model
