lib/core/greedy.ml: Ba_cfg Ba_layout Ctx List
