lib/core/tryn.ml: Array Ba_cfg Ba_ir Ba_layout Chain Cost_model Ctx Hashtbl List Options
