(** The paper's "Cost" alignment algorithm (§4).

    Like Greedy, edges are processed from heaviest to lightest, but each
    link is decided against the target architecture's cost model:

    - for a single-exit block, aligning the edge as a fall-through is
      compared with leaving an unconditional branch;
    - for a conditional, three placements are compared — either leg as the
      fall-through, or {e neither} (insert a jump on the heavier leg), the
      transformation that pays off for tight loops under FALLTHROUGH and
      BT/FNT;
    - before claiming block [D] as [S]'s fall-through, the other
      predecessors of [D] are examined: if one of them would benefit more
      from having [D] as its fall-through, the link is declined (§4: "We
      examine all the predecessors of D ...").

    Branch direction (for BT/FNT) is estimated from DFS back edges, since
    final addresses are unknown during chain formation — the difficulty the
    paper notes for the BT/FNT architecture. *)

val build_chains :
  arch:Cost_model.arch -> ?table:Cost_model.table -> Ctx.t -> Ba_layout.Chain.t
