(** The Pettis & Hansen bottom-up ("greedy") chain-building algorithm
    (paper §4, "Greedy").

    Edges are visited from heaviest to lightest; an edge [S -> D] links two
    chains whenever [S] is still a chain tail and [D] a chain head.  The
    algorithm is architecture-oblivious — it is the baseline the paper's
    Cost and Try15 algorithms are compared against. *)

val build_chains : Ctx.t -> Ba_layout.Chain.t
