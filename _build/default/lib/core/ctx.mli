(** Shared per-procedure context for the alignment algorithms: the weighted
    alignable-edge worklist and the profile/CFG lookups every heuristic
    needs. *)

type t = {
  proc : Ba_ir.Proc.t;
  edges : (Ba_cfg.Edge.t * int) list;  (** alignable edges, weight-descending *)
  visits : Ba_ir.Term.block_id -> int;
  cond_counts : Ba_ir.Term.block_id -> int * int;
  edge_weight : Ba_cfg.Edge.t -> int;
  is_back_edge : Ba_ir.Term.block_id -> Ba_ir.Term.block_id -> bool;
      (** DFS-retreating edge — the heuristics' stand-in for "this taken
          branch will point backward", before final addresses exist *)
  preds : Ba_ir.Term.block_id list array;
}

val of_profile : Ba_cfg.Profile.t -> Ba_ir.Term.proc_id -> t

val with_direction :
  t -> (Ba_ir.Term.block_id -> Ba_ir.Term.block_id -> bool) -> t
(** Replace the branch-direction oracle.  Used by iterative refinement: a
    first alignment pass guesses directions from DFS back edges; subsequent
    passes know the actual positions of the previous layout. *)

val fresh_chain : t -> Ba_layout.Chain.t
(** A chain store for the procedure with the entry block pinned as a chain
    head (no fall-through into the procedure's first address). *)

val cond_legs :
  t ->
  Ba_ir.Term.block_id ->
  ((Ba_ir.Term.block_id * int) * (Ba_ir.Term.block_id * int)) option
(** For a conditional block, its [(on_true, weight), (on_false, weight)]
    legs; [None] for any other terminator. *)

val to_decision :
  ?strategy:Ba_layout.Chain_order.strategy ->
  t ->
  Ba_layout.Chain.t ->
  Ba_layout.Decision.t
(** Order the chains (default {!Ba_layout.Chain_order.Weight_desc}, the
    ordering §6.1 found best) and concatenate them into a decision. *)
