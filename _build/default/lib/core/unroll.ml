open Ba_ir

let is_unrollable ~factor (b : Term.block_id) (blk : Block.t) =
  match blk.term with
  | Term.Cond { on_true; behavior = Behavior.Loop n; _ } ->
    on_true = b && n mod factor = 0 && n / factor >= 1
  | Term.Cond _ | Term.Jump _ | Term.Switch _ | Term.Call _ | Term.Vcall _
  | Term.Ret | Term.Halt -> false

let unrollable_self_loops program ~factor =
  let sites = ref [] in
  Program.iter_blocks program (fun p b blk ->
      if is_unrollable ~factor b blk then sites := (p, b) :: !sites);
  List.rev !sites

let unroll_proc ~factor proc =
  let n = Proc.n_blocks proc in
  let loops =
    Array.to_list proc.Proc.blocks
    |> List.mapi (fun b blk -> (b, blk))
    |> List.filter (fun (b, blk) -> is_unrollable ~factor b blk)
    |> List.map fst
  in
  if loops = [] then proc
  else begin
    (* Copies are appended after the existing blocks, [factor - 1] per
       rewritten loop, in loop order. *)
    let first_copy = Hashtbl.create 4 in
    List.iteri (fun i b -> Hashtbl.add first_copy b (n + (i * (factor - 1)))) loops;
    let rewrite b (blk : Block.t) =
      match blk.term with
      | Term.Cond { on_true; on_false; behavior = Behavior.Loop _ }
        when on_true = b && Hashtbl.mem first_copy b ->
        (* The original block becomes copy 0: pure fall into copy 1. *)
        ignore on_false;
        Block.make ~insns:blk.insns (Term.Jump (Hashtbl.find first_copy b))
      | _ -> blk
    in
    let base = Array.mapi rewrite proc.Proc.blocks in
    let copies =
      List.concat_map
        (fun b ->
          let blk = Proc.block proc b in
          let trips =
            match blk.Block.term with
            | Term.Cond { behavior = Behavior.Loop n; _ } -> n
            | _ -> assert false
          in
          let exit_block =
            match blk.Block.term with
            | Term.Cond { on_false; _ } -> on_false
            | _ -> assert false
          in
          let c0 = Hashtbl.find first_copy b in
          List.init (factor - 1) (fun k ->
              if k < factor - 2 then
                (* Intermediate copies fall through to the next copy. *)
                Block.make ~insns:blk.Block.insns (Term.Jump (c0 + k + 1))
              else
                (* The last copy carries the rotated loop test. *)
                Block.make ~insns:blk.Block.insns
                  (Term.Cond
                     {
                       on_true = b;
                       on_false = exit_block;
                       behavior = Behavior.Loop (trips / factor);
                     })))
        loops
    in
    Proc.make ~name:proc.Proc.name (Array.append base (Array.of_list copies))
  end

let unroll_self_loops ~factor program =
  if factor < 2 then invalid_arg "Unroll.unroll_self_loops: factor must be >= 2";
  let procs = Array.map (unroll_proc ~factor) program.Program.procs in
  let unrolled =
    Program.make ~name:(program.Program.name ^ "-unrolled") ~seed:program.Program.seed
      ~main:program.Program.main procs
  in
  match Program.validate unrolled with
  | Ok () -> unrolled
  | Error e -> invalid_arg ("Unroll: produced invalid program: " ^ e)
