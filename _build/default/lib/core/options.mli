(** Placement options for a conditional branch site, shared by the Cost and
    TryN algorithms.

    A conditional has four possible lowerings: either leg as the
    fall-through, or "align neither" with either leg routed through the
    inserted unconditional jump.  Costs are estimated with the
    architecture's model, guessing taken-branch direction from DFS back
    edges (final addresses do not exist yet — the BT/FNT difficulty the
    paper notes in §6). *)

type kind =
  | Fall_to of Ba_ir.Term.block_id  (** link this leg as the fall-through *)
  | Neither of Ba_layout.Decision.jump_leg
      (** no fall-through; the named leg goes through the inserted jump *)

val cost :
  arch:Cost_model.arch ->
  table:Cost_model.table ->
  Ctx.t ->
  Ba_ir.Term.block_id ->
  legs:(Ba_ir.Term.block_id * int) * (Ba_ir.Term.block_id * int) ->
  kind ->
  float

val feasible :
  arch:Cost_model.arch ->
  table:Cost_model.table ->
  Ctx.t ->
  Ba_layout.Chain.t ->
  Ba_ir.Term.block_id ->
  legs:(Ba_ir.Term.block_id * int) * (Ba_ir.Term.block_id * int) ->
  (kind * float) list
(** All options feasible under the current chain state, cheapest first
    (stable: fall-through options win cost ties over jump insertion). *)

val best_neither :
  arch:Cost_model.arch ->
  table:Cost_model.table ->
  Ctx.t ->
  Ba_ir.Term.block_id ->
  legs:(Ba_ir.Term.block_id * int) * (Ba_ir.Term.block_id * int) ->
  Ba_layout.Decision.jump_leg * float
(** The cheaper of the two jump-insertion variants. *)
