open Ba_ir

type t = {
  proc : Proc.t;
  edges : (Ba_cfg.Edge.t * int) list;
  visits : Term.block_id -> int;
  cond_counts : Term.block_id -> int * int;
  edge_weight : Ba_cfg.Edge.t -> int;
  is_back_edge : Term.block_id -> Term.block_id -> bool;
  preds : Term.block_id list array;
}

let of_profile profile pid =
  let proc = Program.proc (Ba_cfg.Profile.program profile) pid in
  let back =
    let tbl = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace tbl e ()) (Ba_cfg.Graph.back_edges proc);
    tbl
  in
  {
    proc;
    edges = Ba_cfg.Profile.alignable_edges profile pid;
    visits = (fun b -> Ba_cfg.Profile.visits profile pid b);
    cond_counts = (fun b -> Ba_cfg.Profile.cond_counts profile pid b);
    edge_weight = (fun e -> Ba_cfg.Profile.edge_weight profile pid e);
    is_back_edge = (fun src dst -> Hashtbl.mem back (src, dst));
    preds = Proc.predecessors proc;
  }

let with_direction t is_back_edge = { t with is_back_edge }

let fresh_chain t =
  let chain = Ba_layout.Chain.create (Proc.n_blocks t.proc) in
  Ba_layout.Chain.pin_head chain Proc.entry;
  chain

let cond_legs t b =
  match (Proc.block t.proc b).Block.term with
  | Term.Cond { on_true; on_false; _ } ->
    let n_true, n_false = t.cond_counts b in
    Some ((on_true, n_true), (on_false, n_false))
  | Term.Jump _ | Term.Switch _ | Term.Call _ | Term.Vcall _ | Term.Ret | Term.Halt
    -> None

let to_decision ?(strategy = Ba_layout.Chain_order.Weight_desc) t chain =
  let chains = Ba_layout.Chain.chains chain in
  let ordered =
    Ba_layout.Chain_order.order strategy t.proc ~weight:t.visits
      ~edge_weight:t.edge_weight chains
  in
  let neither =
    Array.init (Proc.n_blocks t.proc) (Ba_layout.Chain.forced_neither chain)
  in
  Ba_layout.Decision.of_chains ~neither ordered
