(** Exhaustive optimal alignment for small procedures.

    §4: "We briefly considered using the cost model to assess the cost of
    every possible basic block alignment using an exhaustive search and
    selecting the minimal cost ordering.  In practice, this sounds
    expensive, but in the common case procedures contain 5-15 basic
    blocks."  This module is that search, used as an optimality reference:
    it enumerates every block permutation (entry fixed first) combined with
    every forced jump-leg choice for conditionals left without an adjacent
    successor, scoring each candidate with the {e exact} layout evaluator
    {!Layout_cost} — no direction guessing, no chain heuristics.

    The search visits (n-1)! permutations, so it is gated on procedure
    size; the tests use it to bound how far Try15 lands from optimal. *)

val max_blocks : int
(** Largest procedure size accepted (9: 40,320 permutations). *)

val align_proc :
  arch:Cost_model.arch ->
  ?table:Cost_model.table ->
  Ba_cfg.Profile.t ->
  Ba_ir.Term.proc_id ->
  Ba_layout.Decision.t
(** The minimum-cost decision under the exact cost model.  Raises
    [Invalid_argument] if the procedure has more than {!max_blocks}
    blocks. *)

val optimal_cost :
  arch:Cost_model.arch ->
  ?table:Cost_model.table ->
  Ba_cfg.Profile.t ->
  Ba_ir.Term.proc_id ->
  float
(** The branch cost of the optimal decision (convenience wrapper). *)
