(** Self-loop unrolling — the paper's suggested ALVINN optimisation (§3).

    For a single-block loop (Figure 2), the paper observes that "simply
    duplicating the 11-instruction basic block and then inverting
    (aligning) the branch condition ... would offer some performance
    improvement", even ignoring the other benefits of loop unrolling: the
    duplicated copies need no conditional branch at all, so both the
    misfetch traffic and the number of executed branches drop.

    [unroll_self_loops ~factor p] rewrites every block of the form

    {v   B: insns; if continue goto B else goto X   v}

    whose behaviour is a counted [Loop n] with [factor | n] into [factor]
    copies laid out consecutively: copies [1 .. factor-1] are straight-line
    blocks falling into the next copy, and the last copy carries the
    conditional with a [Loop (n / factor)] behaviour branching back to the
    first copy.  The transformed program performs exactly the same
    straight-line work per loop entry ([n] executions of the body) with
    [n / factor] conditional branches instead of [n].

    Loops whose trip count is not divisible by [factor], non-counted
    self-loops, and everything else are left untouched. *)

val unroll_self_loops : factor:int -> Ba_ir.Program.t -> Ba_ir.Program.t
(** Raises [Invalid_argument] if [factor < 2]. *)

val unrollable_self_loops :
  Ba_ir.Program.t -> factor:int -> (Ba_ir.Term.proc_id * Ba_ir.Term.block_id) list
(** The sites the transformation would rewrite. *)
