let build_chains (ctx : Ctx.t) =
  let chain = Ctx.fresh_chain ctx in
  List.iter
    (fun ((e : Ba_cfg.Edge.t), _w) ->
      if Ba_layout.Chain.can_link chain ~src:e.src ~dst:e.dst then
        Ba_layout.Chain.link chain ~src:e.src ~dst:e.dst)
    ctx.Ctx.edges;
  chain
