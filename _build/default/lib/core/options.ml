open Ba_layout

type kind = Fall_to of Ba_ir.Term.block_id | Neither of Decision.jump_leg

let cost ~arch ~table (ctx : Ctx.t) s ~legs kind =
  let (d1, w1), (d2, w2) = legs in
  let fw = float_of_int in
  match kind with
  | Fall_to d when d = d1 ->
    Cost_model.cond_cost arch table ~w_taken:(fw w2) ~w_fall:(fw w1)
      ~taken_backward:(ctx.Ctx.is_back_edge s d2)
  | Fall_to _ ->
    Cost_model.cond_cost arch table ~w_taken:(fw w1) ~w_fall:(fw w2)
      ~taken_backward:(ctx.Ctx.is_back_edge s d1)
  | Neither leg ->
    let jump_on_true =
      match leg with
      | Decision.Jump_on_true -> true
      | Decision.Jump_on_false -> false
      | Decision.Jump_heavier -> w1 >= w2
    in
    let w_jump, (d_taken, w_taken) =
      if jump_on_true then (w1, (d2, w2)) else (w2, (d1, w1))
    in
    Cost_model.cond_neither_cost arch table ~w_jump:(fw w_jump) ~w_taken:(fw w_taken)
      ~taken_backward:(ctx.Ctx.is_back_edge s d_taken)

let feasible ~arch ~table ctx chain s ~legs =
  let (d1, _), (d2, _) = legs in
  let candidates =
    List.filter_map
      (fun kind ->
        let ok =
          match kind with
          | Fall_to d -> Chain.can_link chain ~src:s ~dst:d
          | Neither _ -> not (Chain.fallthrough_forbidden chain s)
        in
        if ok then Some (kind, cost ~arch ~table ctx s ~legs kind) else None)
      [
        Fall_to d1;
        Fall_to d2;
        Neither Decision.Jump_on_true;
        Neither Decision.Jump_on_false;
      ]
  in
  List.stable_sort (fun (_, c1) (_, c2) -> compare c1 c2) candidates

let best_neither ~arch ~table ctx s ~legs =
  let t = cost ~arch ~table ctx s ~legs (Neither Decision.Jump_on_true) in
  let f = cost ~arch ~table ctx s ~legs (Neither Decision.Jump_on_false) in
  if t <= f then (Decision.Jump_on_true, t) else (Decision.Jump_on_false, f)
