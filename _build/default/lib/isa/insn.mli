(** A small Alpha-flavoured instruction vocabulary.

    The block-level IR deliberately abstracts straight-line code to an
    instruction count; this module puts concrete (if schematic) instructions
    back, giving the rewriting layer something to disassemble and the
    timing models issue classes to pair.  Operands are not modelled — the
    evaluation never depends on data values — but opcodes, pipes and
    branch targets are. *)

type opcode =
  | Ialu  (** integer operate: addq, s4addq, bis, cmpult, ... *)
  | Fadd  (** floating add/compare pipe *)
  | Fmul  (** floating multiply pipe *)
  | Load  (** ldq/ldl/lds *)
  | Store  (** stq/stl/sts *)
  | Cbr  (** conditional branch *)
  | Br  (** unconditional branch *)
  | Jmp  (** indirect jump *)
  | Jsr  (** call *)
  | Ret
  | Halt

type t = {
  opcode : opcode;
  target : int option;  (** branch/call target address, when static *)
}

val make : ?target:int -> opcode -> t

val mnemonic : opcode -> string

type pipe = Epipe | Fpipe
(** The 21064's two issue pipes: integer (also loads, stores and branches)
    and floating point. *)

val pipe : opcode -> pipe

val is_branch : opcode -> bool

val pp : Format.formatter -> t -> unit
