type opcode = Ialu | Fadd | Fmul | Load | Store | Cbr | Br | Jmp | Jsr | Ret | Halt

type t = { opcode : opcode; target : int option }

let make ?target opcode = { opcode; target }

let mnemonic = function
  | Ialu -> "addq"
  | Fadd -> "addt"
  | Fmul -> "mult"
  | Load -> "ldq"
  | Store -> "stq"
  | Cbr -> "bne"
  | Br -> "br"
  | Jmp -> "jmp"
  | Jsr -> "jsr"
  | Ret -> "ret"
  | Halt -> "call_pal halt"

type pipe = Epipe | Fpipe

let pipe = function
  | Ialu | Load | Store | Cbr | Br | Jmp | Jsr | Ret | Halt -> Epipe
  | Fadd | Fmul -> Fpipe

let is_branch = function
  | Cbr | Br | Jmp | Jsr | Ret -> true
  | Ialu | Fadd | Fmul | Load | Store | Halt -> false

let pp ppf t =
  match t.target with
  | Some target -> Fmt.pf ppf "%-6s -> %#x" (mnemonic t.opcode) target
  | None -> Fmt.string ppf (mnemonic t.opcode)
