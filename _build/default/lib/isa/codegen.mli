(** Materialising instructions for a code image.

    Each layout block's straight-line instruction count is expanded into a
    concrete opcode sequence: a deterministic per-block mix of integer
    operations, loads, stores and floating-point work, followed by the
    terminator's branch instruction(s) with resolved target addresses.
    The mix is drawn from the block's identity and the program seed, so a
    program disassembles identically on every run, and the {e same} block
    keeps the same body instructions under every layout (only branch
    targets and inserted jumps differ — exactly what a binary rewriter may
    touch).

    [fp_fraction] controls how much of the straight-line code is
    floating-point (numeric workloads pair much better on a dual-issue
    machine). *)

type listing = {
  image : Ba_layout.Image.t;
  insns : (int, Insn.t) Hashtbl.t;  (** by address *)
}

val of_image : ?fp_fraction:float -> Ba_layout.Image.t -> listing
(** Default [fp_fraction] 0.15. *)

val insn_at : listing -> int -> Insn.t option

val block_insns : listing -> Ba_layout.Linear.lblock -> Insn.t list
(** The block's instructions in address order. *)
