(** Dual-issue pairing model for the 21064.

    The 21064 issues up to two instructions per cycle, but only when they
    use different pipes: one integer-pipe instruction (integer ops, loads,
    stores, branches) may pair with one floating-point instruction.  Two
    integer-pipe instructions never dual-issue.  Numeric code therefore
    approaches 0.5 cycles per instruction while pure integer code stays at
    1.0 — which is why the paper's FP programs have so little to gain from
    removing branch bubbles.

    Issue is modelled in order with no reordering: scan the instruction
    sequence and greedily pair adjacent instructions with compatible
    pipes.  Taken branches end an issue group. *)

val issue_cycles : Insn.t list -> int
(** Cycles to issue the sequence under greedy in-order pairing. *)

val block_cycles : Codegen.listing -> Ba_layout.Linear.lblock -> int
(** Issue cycles of one layout block's full instruction sequence
    (memoisable: depends only on the block's instructions). *)

val per_block_table : Codegen.listing -> (int, int) Hashtbl.t
(** Precomputed [block start address -> issue cycles] for every block of
    the listing, used by the timing model's per-visit accounting. *)

val prefix_table : Codegen.listing -> (int, int array) Hashtbl.t
(** [block start address -> c] where [c.(k)] is the issue cycles of the
    block's first [k] instructions.  A visit that executes only part of a
    block (a not-taken conditional stops before an inserted jump, a taken
    one before nothing) costs [c.(fetched)]. *)
