lib/isa/disasm.ml: Array Ba_ir Ba_layout Codegen Hashtbl Image Insn Linear List Printf String
