lib/isa/disasm.mli: Ba_ir Codegen
