lib/isa/codegen.mli: Ba_layout Hashtbl Insn
