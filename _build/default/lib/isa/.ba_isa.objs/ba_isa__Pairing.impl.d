lib/isa/pairing.ml: Array Ba_layout Codegen Hashtbl Insn List
