lib/isa/pairing.mli: Ba_layout Codegen Hashtbl Insn
