lib/isa/codegen.ml: Array Ba_ir Ba_layout Ba_util Hashtbl Image Insn Linear List
