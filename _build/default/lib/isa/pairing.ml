let issue_cycles insns =
  let rec go cycles = function
    | [] -> cycles
    | [ _ ] -> cycles + 1
    | a :: (b :: rest as tail) ->
      if
        Insn.pipe a.Insn.opcode <> Insn.pipe b.Insn.opcode
        && not (Insn.is_branch a.Insn.opcode)
      then go (cycles + 1) rest
      else go (cycles + 1) tail
  in
  go 0 insns

let block_cycles listing lb = issue_cycles (Codegen.block_insns listing lb)

let prefix_cycles insns =
  (* c.(k) = issue cycles of the first k instructions. *)
  let n = List.length insns in
  let c = Array.make (n + 1) 0 in
  let rec go k cycles = function
    | [] -> ()
    | [ _ ] -> c.(k + 1) <- cycles + 1
    | a :: (b :: rest as tail) ->
      if
        Insn.pipe a.Insn.opcode <> Insn.pipe b.Insn.opcode
        && not (Insn.is_branch a.Insn.opcode)
      then begin
        (* a and b issue together. *)
        c.(k + 1) <- cycles + 1;
        c.(k + 2) <- cycles + 1;
        go (k + 2) (cycles + 1) rest
      end
      else begin
        c.(k + 1) <- cycles + 1;
        go (k + 1) (cycles + 1) tail
      end
  in
  go 0 0 insns;
  c

let prefix_table (listing : Codegen.listing) =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun (linear : Ba_layout.Linear.t) ->
      Array.iter
        (fun (lb : Ba_layout.Linear.lblock) ->
          Hashtbl.replace tbl lb.Ba_layout.Linear.addr
            (prefix_cycles (Codegen.block_insns listing lb)))
        linear.Ba_layout.Linear.blocks)
    listing.Codegen.image.Ba_layout.Image.linears;
  tbl

let per_block_table (listing : Codegen.listing) =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun (linear : Ba_layout.Linear.t) ->
      Array.iter
        (fun (lb : Ba_layout.Linear.lblock) ->
          Hashtbl.replace tbl lb.Ba_layout.Linear.addr (block_cycles listing lb))
        linear.Ba_layout.Linear.blocks)
    listing.Codegen.image.Ba_layout.Image.linears;
  tbl
