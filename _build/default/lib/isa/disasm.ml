open Ba_layout

(* Label every block-start address as proc:bN. *)
let labels (image : Image.t) =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun p (linear : Linear.t) ->
      let name = (Ba_ir.Program.proc image.Image.program p).Ba_ir.Proc.name in
      Array.iter
        (fun (lb : Linear.lblock) ->
          Hashtbl.replace tbl lb.Linear.addr (Printf.sprintf "%s:b%d" name lb.Linear.src))
        linear.Linear.blocks)
    image.Image.linears;
  tbl

let render_insn labels addr (insn : Insn.t) =
  let target =
    match insn.Insn.target with
    | None -> ""
    | Some t -> (
      match Hashtbl.find_opt labels t with
      | Some label -> Printf.sprintf "  %s" label
      | None -> Printf.sprintf "  %#x" t)
  in
  Printf.sprintf "  %04x  %-6s%s" addr (Insn.mnemonic insn.Insn.opcode) target

let proc_lines (t : Codegen.listing) pid =
  let image = t.Codegen.image in
  let linear = image.Image.linears.(pid) in
  let labels = labels image in
  let name = (Ba_ir.Program.proc image.Image.program pid).Ba_ir.Proc.name in
  Printf.sprintf "%s:" name
  :: List.concat_map
       (fun (lb : Linear.lblock) ->
         Printf.sprintf "b%d:" lb.Linear.src
         :: List.mapi
              (fun k insn -> render_insn labels (lb.Linear.addr + k) insn)
              (Codegen.block_insns t lb))
       (Array.to_list linear.Linear.blocks)

let proc_listing t pid = String.concat "\n" (proc_lines t pid) ^ "\n"

let program_listing t =
  let n = Ba_ir.Program.n_procs t.Codegen.image.Image.program in
  String.concat "\n" (List.concat (List.init n (fun pid -> proc_lines t pid))) ^ "\n"

let side_by_side ~original ~aligned pid =
  let left = proc_lines original pid in
  let right = proc_lines aligned pid in
  let width =
    List.fold_left (fun acc line -> max acc (String.length line)) 0 left
  in
  let rec zip left right acc =
    match (left, right) with
    | [], [] -> List.rev acc
    | l :: ls, [] -> zip ls [] ((l ^ "") :: acc)
    | [], r :: rs ->
      zip [] rs ((String.make width ' ' ^ " | " ^ r) :: acc)
    | l :: ls, r :: rs ->
      zip ls rs ((l ^ String.make (width - String.length l) ' ' ^ " | " ^ r) :: acc)
  in
  let header =
    Printf.sprintf "%-*s | %s" width "ORIGINAL" "ALIGNED"
  in
  String.concat "\n" (header :: zip left right []) ^ "\n"
