(** Disassembly listings of (rewritten) code images.

    Renders a code image the way objdump would show the binary the paper's
    OM post-processor emits: procedures with their blocks in final layout
    order, one line per instruction with its address and mnemonic, branch
    targets resolved to [proc:block] labels.  Comparing the original and
    aligned listings of a procedure makes every rewrite visible — reordered
    blocks, inverted branch senses, inserted and removed jumps. *)

val proc_listing : Codegen.listing -> Ba_ir.Term.proc_id -> string

val program_listing : Codegen.listing -> string

val side_by_side :
  original:Codegen.listing -> aligned:Codegen.listing -> Ba_ir.Term.proc_id -> string
(** Two-column original-vs-aligned listing of one procedure. *)
