open Ba_layout

type listing = { image : Image.t; insns : (int, Insn.t) Hashtbl.t }

(* Body opcodes must be a function of the semantic block (not its layout
   position), so the same block reads the same under every alignment. *)
let body_opcode rng ~fp_fraction =
  let x = Ba_util.Rng.float rng 1.0 in
  if x < fp_fraction /. 2.0 then Insn.Fadd
  else if x < fp_fraction then Insn.Fmul
  else if x < fp_fraction +. 0.3 then Insn.Load
  else if x < fp_fraction +. 0.42 then Insn.Store
  else Insn.Ialu

let of_image ?(fp_fraction = 0.15) (image : Image.t) =
  if fp_fraction < 0.0 || fp_fraction > 1.0 then
    invalid_arg "Codegen.of_image: fp_fraction out of [0,1]";
  let seed = image.Image.program.Ba_ir.Program.seed in
  let insns = Hashtbl.create 1024 in
  let emit addr insn = Hashtbl.replace insns addr insn in
  Array.iteri
    (fun p (linear : Linear.t) ->
      Array.iter
        (fun (lb : Linear.lblock) ->
          let rng =
            Ba_util.Rng.create
              (seed lxor (p * 0x9E3779B9) lxor (lb.Linear.src * 0x85EBCA6B) lxor 0x51ED)
          in
          for k = 0 to lb.Linear.insns - 1 do
            emit (lb.Linear.addr + k) (Insn.make (body_opcode rng ~fp_fraction))
          done;
          let pc = Linear.branch_pc lb in
          let addr_of pos = (Image.lblock image p pos).Linear.addr in
          match lb.Linear.term with
          | Linear.Lnone -> ()
          | Linear.Ljump pos -> emit pc (Insn.make ~target:(addr_of pos) Insn.Br)
          | Linear.Lcond { taken_pos; inserted_jump; _ } ->
            emit pc (Insn.make ~target:(addr_of taken_pos) Insn.Cbr);
            (match inserted_jump with
            | Some pos -> emit (pc + 1) (Insn.make ~target:(addr_of pos) Insn.Br)
            | None -> ())
          | Linear.Lswitch _ -> emit pc (Insn.make Insn.Jmp)
          | Linear.Lcall { callee; cont } ->
            emit pc (Insn.make ~target:(Image.entry_addr image callee) Insn.Jsr);
            (match cont with
            | Linear.Jump_to pos -> emit (pc + 1) (Insn.make ~target:(addr_of pos) Insn.Br)
            | Linear.Fall -> ())
          | Linear.Lvcall { cont; _ } ->
            emit pc (Insn.make Insn.Jsr) (* indirect call: jsr (r27) *);
            (match cont with
            | Linear.Jump_to pos -> emit (pc + 1) (Insn.make ~target:(addr_of pos) Insn.Br)
            | Linear.Fall -> ())
          | Linear.Lret -> emit pc (Insn.make Insn.Ret)
          | Linear.Lhalt -> emit pc (Insn.make Insn.Halt))
        linear.Linear.blocks)
    image.Image.linears;
  { image; insns }

let insn_at t addr = Hashtbl.find_opt t.insns addr

let block_insns t (lb : Linear.lblock) =
  List.init (Linear.block_size lb) (fun k ->
      match insn_at t (lb.Linear.addr + k) with
      | Some i -> i
      | None -> assert false)
