lib/exec/engine.ml: Array Ba_cfg Ba_ir Ba_layout Ba_util Behavior Block Event Hashtbl Image Linear Proc Program Term
