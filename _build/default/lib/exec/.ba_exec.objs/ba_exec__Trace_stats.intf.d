lib/exec/trace_stats.mli: Ba_ir Event
