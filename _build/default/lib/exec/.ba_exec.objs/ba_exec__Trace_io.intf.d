lib/exec/trace_io.mli: Event
