lib/exec/trace_stats.ml: Ba_ir Ba_util Event Hashtbl List Option
