lib/exec/engine.mli: Ba_cfg Ba_ir Ba_layout Event
