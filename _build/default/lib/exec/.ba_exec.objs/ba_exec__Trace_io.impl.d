lib/exec/trace_io.ml: Event Fun Printf String
