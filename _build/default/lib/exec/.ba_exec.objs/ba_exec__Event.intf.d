lib/exec/event.mli: Format
