(** Trace statistics — the measurements behind the paper's Table 2.

    Attach {!on_event} to an {!Engine.run}, then {!summarize}.  All
    percentages follow the paper's definitions: "% Breaks" is branch
    instructions (taken or not) as a share of all executed instructions;
    the break-kind columns split the executed breaks into conditional
    branches, indirect jumps (including virtual calls), unconditional
    branches, direct calls and returns; "Q-x" is the number of conditional
    branch {e sites} accounting for x% of executed conditional branches. *)

type t

val create : unit -> t

val on_event : t -> Event.t -> unit

type summary = {
  insns : int;  (** instructions traced *)
  pct_breaks : float;
  q50 : int;
  q90 : int;
  q99 : int;
  q100 : int;  (** conditional sites executed at least once *)
  static_cond_sites : int;
  pct_taken : float;  (** taken share of executed conditional branches *)
  pct_cbr : float;
  pct_ij : float;
  pct_br : float;
  pct_call : float;
  pct_ret : float;
}

val summarize : t -> program:Ba_ir.Program.t -> insns:int -> summary

val pct_cond_fallthrough : t -> float
(** Share of executed conditional branches that fell through — the paper's
    "% of Fall-Through Conditional Branches" columns in Table 3. *)
