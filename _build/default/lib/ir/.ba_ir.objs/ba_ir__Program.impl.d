lib/ir/program.ml: Array Block Hashtbl List Printf Proc Term
