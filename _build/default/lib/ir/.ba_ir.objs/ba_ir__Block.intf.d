lib/ir/block.mli: Format Term
