lib/ir/program.mli: Block Proc Term
