lib/ir/term.ml: Array Behavior Fmt Hashtbl List Printf String
