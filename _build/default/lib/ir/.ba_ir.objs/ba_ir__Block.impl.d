lib/ir/block.ml: Fmt Term
