lib/ir/proc.mli: Block Format Term
