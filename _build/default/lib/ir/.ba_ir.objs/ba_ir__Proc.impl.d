lib/ir/proc.ml: Array Behavior Block Fmt List Printf Term
