lib/ir/term.mli: Behavior Format
