lib/ir/behavior.mli: Ba_util Format
