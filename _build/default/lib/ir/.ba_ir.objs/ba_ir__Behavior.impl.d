lib/ir/behavior.ml: Array Ba_util Fmt String
