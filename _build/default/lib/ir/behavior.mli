(** Conditional-branch outcome models.

    Every conditional branch site in a program carries a behaviour, a small
    stochastic process that produces the branch's semantic outcome stream
    ([true] = the source-level condition held).  Outcomes are a property of
    the *program*, not of the code layout: reordering basic blocks or
    inverting a branch's sense changes which outcome is architecturally
    "taken", but never the outcome stream itself.  This is what makes
    original and aligned layouts directly comparable in the simulator.

    Behaviours are deterministic given the per-site seed, so the whole
    evaluation is reproducible. *)

type t =
  | Always of bool  (** the condition always evaluates the same way *)
  | Bias of float
      (** i.i.d. Bernoulli: the condition holds with the given probability *)
  | Loop of int
      (** a counted loop's continuation test with trip count [n]: the
          condition holds [n - 1] consecutive times, then fails once, then
          repeats (each failure is one entry into the loop) *)
  | Pattern of bool array
      (** a deterministic repeating outcome pattern; captures branches that a
          local-history or global-history predictor can learn perfectly *)
  | Correlated of { bits : int; table : bool array; noise : float }
      (** the outcome is a function of the last [bits] semantic outcomes of
          the whole program ([table] has [2^bits] entries, indexed by the
          global outcome history), flipped with probability [noise]; captures
          the inter-branch correlation that gshare-style predictors exploit *)
  | Markov of { p_stay_true : float; p_stay_false : float; init : bool }
      (** a two-state Markov chain: runs of identical outcomes, as produced
          by data-dependent branches scanning clustered data *)

val validate : t -> (unit, string) result
(** Check structural well-formedness (probabilities in range, trip count
    positive, table sized [2^bits], etc.). *)

val mean_rate : t -> float
(** The long-run probability that the condition holds; used by workload
    construction to predict taken rates, and by tests. *)

type state
(** Mutable per-site evaluation state (position in a pattern, loop counter,
    RNG stream, ...). *)

val init_state : t -> Ba_util.Rng.t -> state
(** [init_state b rng] creates the state for one site; [rng] must be a
    dedicated (split) generator for this site. *)

val next : t -> state -> history:int -> bool
(** [next b st ~history] draws the site's next outcome.  [history] is the
    global semantic-outcome history register (most recent outcome in bit 0),
    consulted only by [Correlated]. *)

val pp : Format.formatter -> t -> unit
