type block_id = int
type proc_id = int

type t =
  | Jump of block_id
  | Cond of { on_true : block_id; on_false : block_id; behavior : Behavior.t }
  | Switch of { targets : (block_id * float) array }
  | Call of { callee : proc_id; next : block_id }
  | Vcall of { callees : (proc_id * float) array; next : block_id }
  | Ret
  | Halt

let successors = function
  | Jump b -> [ b ]
  | Cond { on_true; on_false; _ } ->
    if on_true = on_false then [ on_true ] else [ on_true; on_false ]
  | Switch { targets } ->
    let seen = Hashtbl.create 8 in
    Array.fold_left
      (fun acc (b, _) ->
        if Hashtbl.mem seen b then acc
        else begin
          Hashtbl.add seen b ();
          b :: acc
        end)
      [] targets
    |> List.rev
  | Call { next; _ } | Vcall { next; _ } -> [ next ]
  | Ret | Halt -> []

let kind_name = function
  | Jump _ -> "jump"
  | Cond _ -> "cond"
  | Switch _ -> "switch"
  | Call _ -> "call"
  | Vcall _ -> "vcall"
  | Ret -> "ret"
  | Halt -> "halt"

let is_branch_site = function
  | Cond _ | Switch _ | Call _ | Vcall _ | Ret -> true
  | Jump _ | Halt -> false

let pp ppf = function
  | Jump b -> Fmt.pf ppf "jump b%d" b
  | Cond { on_true; on_false; behavior } ->
    Fmt.pf ppf "cond(%a) true->b%d false->b%d" Behavior.pp behavior on_true on_false
  | Switch { targets } ->
    Fmt.pf ppf "switch [%s]"
      (String.concat "; "
         (Array.to_list (Array.map (fun (b, w) -> Printf.sprintf "b%d:%.2f" b w) targets)))
  | Call { callee; next } -> Fmt.pf ppf "call p%d then b%d" callee next
  | Vcall { callees; next } ->
    Fmt.pf ppf "vcall [%s] then b%d"
      (String.concat "; "
         (Array.to_list (Array.map (fun (p, w) -> Printf.sprintf "p%d:%.2f" p w) callees)))
      next
  | Ret -> Fmt.pf ppf "ret"
  | Halt -> Fmt.pf ppf "halt"
