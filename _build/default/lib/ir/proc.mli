(** Procedures.

    A procedure is an array of basic blocks; the array order is the
    *original* code layout (what "the compiler" emitted), and block 0 is the
    entry block.  Alignment algorithms compute a permutation of this
    array. *)

type t = { name : string; blocks : Block.t array }

val make : name:string -> Block.t array -> t
(** Raises [Invalid_argument] on an empty block array. *)

val n_blocks : t -> int

val block : t -> Term.block_id -> Block.t
(** Raises [Invalid_argument] if the id is out of range. *)

val entry : Term.block_id
(** Always [0]. *)

val predecessors : t -> Term.block_id list array
(** Cached-free computation of the predecessor lists of every block:
    [(predecessors p).(b)] lists the blocks with an edge into [b]. *)

val validate : t -> (unit, string) result
(** Checks that all intra-procedural successor ids are in range, conditional
    branches have distinct targets, behaviours are well-formed, switch/vcall
    weight tables are non-empty with non-negative weights, and every block is
    reachable from the entry. *)

val pp : Format.formatter -> t -> unit
