type t = { name : string; blocks : Block.t array }

let make ~name blocks =
  if Array.length blocks = 0 then invalid_arg "Proc.make: empty procedure";
  { name; blocks }

let n_blocks p = Array.length p.blocks

let block p b =
  if b < 0 || b >= Array.length p.blocks then
    invalid_arg (Printf.sprintf "Proc.block: id %d out of range in %s" b p.name);
  p.blocks.(b)

let entry = 0

let predecessors p =
  let preds = Array.make (n_blocks p) [] in
  Array.iteri
    (fun src blk ->
      List.iter
        (fun dst -> preds.(dst) <- src :: preds.(dst))
        (Term.successors blk.Block.term))
    p.blocks;
  Array.map List.rev preds

let validate p =
  let n = n_blocks p in
  let err fmt = Printf.ksprintf (fun s -> Error (p.name ^ ": " ^ s)) fmt in
  let check_id src b =
    if b < 0 || b >= n then Some (src, b) else None
  in
  let exception Bad of string in
  try
    Array.iteri
      (fun src blk ->
        (* Every message names the offending block and its terminator kind,
           so downstream consumers (lint diagnostics, CLI errors) can locate
           the fault without re-parsing the procedure. *)
        let kind = Term.kind_name blk.Block.term in
        let bad b =
          match check_id src b with
          | Some (src, b) ->
            raise
              (Bad
                 (Printf.sprintf "block %d (%s): successor %d out of range" src kind b))
          | None -> ()
        in
        List.iter bad (Term.successors blk.Block.term);
        (match blk.Block.term with
        | Term.Cond { behavior; on_true; on_false } -> begin
          if on_true = on_false then
            raise
              (Bad
                 (Printf.sprintf
                    "block %d (cond): conditional with equal targets (both b%d)" src
                    on_true));
          match Behavior.validate behavior with
          | Ok () -> ()
          | Error e -> raise (Bad (Printf.sprintf "block %d (cond): %s" src e))
        end
        | Term.Switch { targets } ->
          if Array.length targets = 0 then
            raise (Bad (Printf.sprintf "block %d (switch): empty switch" src));
          Array.iter
            (fun (d, w) ->
              if w < 0.0 then
                raise
                  (Bad
                     (Printf.sprintf
                        "block %d (switch): negative weight %g on target b%d" src w d)))
            targets;
          if Array.for_all (fun (_, w) -> w = 0.0) targets then
            raise (Bad (Printf.sprintf "block %d (switch): all-zero switch weights" src))
        | Term.Vcall { callees; _ } ->
          if Array.length callees = 0 then
            raise (Bad (Printf.sprintf "block %d (vcall): empty vcall" src));
          Array.iter
            (fun (callee, w) ->
              if w < 0.0 then
                raise
                  (Bad
                     (Printf.sprintf
                        "block %d (vcall): negative weight %g on callee p%d" src w
                        callee)))
            callees
        | Term.Jump _ | Term.Call _ | Term.Ret | Term.Halt -> ()))
      p.blocks;
    (* Reachability from the entry block. *)
    let seen = Array.make n false in
    let rec visit b =
      if not seen.(b) then begin
        seen.(b) <- true;
        List.iter visit (Term.successors p.blocks.(b).Block.term)
      end
    in
    visit entry;
    (match Array.to_list seen |> List.mapi (fun i s -> (i, s)) |> List.find_opt (fun (_, s) -> not s) with
    | Some (i, _) ->
      raise
        (Bad
           (Printf.sprintf "block %d (%s) unreachable from entry" i
              (Term.kind_name p.blocks.(i).Block.term)))
    | None -> ());
    Ok ()
  with Bad msg -> err "%s" msg

let pp ppf p =
  Fmt.pf ppf "@[<v>proc %s:@," p.name;
  Array.iteri (fun i b -> Fmt.pf ppf "  b%d: %a@," i Block.pp b) p.blocks;
  Fmt.pf ppf "@]"
