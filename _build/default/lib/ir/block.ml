type t = { insns : int; term : Term.t }

let make ?(insns = 4) term =
  (* At least one instruction per block keeps every address in the final
     image distinct, which branch predictors index by. *)
  if insns < 1 then invalid_arg "Block.make: instruction count must be positive";
  { insns; term }

let pp ppf b = Fmt.pf ppf "{%d insns; %a}" b.insns Term.pp b.term
