(** Whole programs.

    A program is an array of procedures; [main] names the procedure where
    execution starts.  [seed] determines every stochastic choice made while
    executing the program (branch behaviours, switch targets, virtual-call
    receivers), so a program value fully determines its traces. *)

type t = { name : string; procs : Proc.t array; main : Term.proc_id; seed : int }

val make : name:string -> ?seed:int -> ?main:Term.proc_id -> Proc.t array -> t
(** [make ~name procs] builds a program.  [main] defaults to procedure 0 and
    [seed] to a hash of [name], so distinct workloads get distinct but
    reproducible streams.  Raises [Invalid_argument] on an empty procedure
    array or out-of-range [main]. *)

val with_seed : t -> int -> t
(** The same program running on a different input: every stochastic branch
    behaviour, switch and dispatch draws from fresh streams.  Used for
    cross-input profile-robustness experiments. *)

val n_procs : t -> int
val proc : t -> Term.proc_id -> Proc.t

val validate : t -> (unit, string) result
(** Validates every procedure (see {!Proc.validate}) plus inter-procedural
    references: callee ids in range, and [Halt] appearing only in [main]. *)

val iter_blocks : t -> (Term.proc_id -> Term.block_id -> Block.t -> unit) -> unit
(** Visit every block of every procedure. *)

val total_blocks : t -> int

val conditional_sites : t -> (Term.proc_id * Term.block_id) list
(** All blocks ending in a conditional branch, in a fixed order. *)
