type t = { name : string; procs : Proc.t array; main : Term.proc_id; seed : int }

let make ~name ?seed ?(main = 0) procs =
  if Array.length procs = 0 then invalid_arg "Program.make: no procedures";
  if main < 0 || main >= Array.length procs then
    invalid_arg "Program.make: main out of range";
  let seed = match seed with Some s -> s | None -> Hashtbl.hash name in
  { name; procs; main; seed }

let with_seed t seed = { t with seed }

let n_procs t = Array.length t.procs

let proc t p =
  if p < 0 || p >= Array.length t.procs then
    invalid_arg (Printf.sprintf "Program.proc: id %d out of range" p);
  t.procs.(p)

let validate t =
  let n = n_procs t in
  let rec check_procs i =
    if i = n then Ok ()
    else
      match Proc.validate t.procs.(i) with
      | Error _ as e -> e
      | Ok () ->
        let exception Bad of string in
        (try
           Array.iteri
             (fun b blk ->
               let check_callee p =
                 if p < 0 || p >= n then
                   raise
                     (Bad
                        (Printf.sprintf "%s: block %d: callee %d out of range"
                           t.procs.(i).Proc.name b p))
               in
               match blk.Block.term with
               | Term.Call { callee; _ } -> check_callee callee
               | Term.Vcall { callees; _ } ->
                 Array.iter (fun (p, _) -> check_callee p) callees
               | Term.Halt ->
                 if i <> t.main then
                   raise
                     (Bad
                        (Printf.sprintf "%s: block %d: Halt outside main"
                           t.procs.(i).Proc.name b))
               | Term.Jump _ | Term.Cond _ | Term.Switch _ | Term.Ret -> ())
             t.procs.(i).Proc.blocks;
           check_procs (i + 1)
         with Bad msg -> Error msg)
  in
  check_procs 0

let iter_blocks t f =
  Array.iteri
    (fun p proc -> Array.iteri (fun b blk -> f p b blk) proc.Proc.blocks)
    t.procs

let total_blocks t =
  Array.fold_left (fun acc p -> acc + Proc.n_blocks p) 0 t.procs

let conditional_sites t =
  let sites = ref [] in
  iter_blocks t (fun p b blk ->
      match blk.Block.term with
      | Term.Cond _ -> sites := (p, b) :: !sites
      | _ -> ());
  List.rev !sites
