type t =
  | Always of bool
  | Bias of float
  | Loop of int
  | Pattern of bool array
  | Correlated of { bits : int; table : bool array; noise : float }
  | Markov of { p_stay_true : float; p_stay_false : float; init : bool }

let probability_ok p = p >= 0.0 && p <= 1.0

let validate = function
  | Always _ -> Ok ()
  | Bias p ->
    if probability_ok p then Ok () else Error "Bias: probability out of [0,1]"
  | Loop n -> if n >= 1 then Ok () else Error "Loop: trip count must be >= 1"
  | Pattern a ->
    if Array.length a > 0 then Ok () else Error "Pattern: empty pattern"
  | Correlated { bits; table; noise } ->
    if bits < 1 || bits > 16 then Error "Correlated: bits must be in [1,16]"
    else if Array.length table <> 1 lsl bits then
      Error "Correlated: table must have 2^bits entries"
    else if not (probability_ok noise) then
      Error "Correlated: noise out of [0,1]"
    else Ok ()
  | Markov { p_stay_true; p_stay_false; _ } ->
    if probability_ok p_stay_true && probability_ok p_stay_false then Ok ()
    else Error "Markov: probability out of [0,1]"

let count_true a = Array.fold_left (fun n b -> if b then n + 1 else n) 0 a

let mean_rate = function
  | Always b -> if b then 1.0 else 0.0
  | Bias p -> p
  | Loop n -> float_of_int (n - 1) /. float_of_int n
  | Pattern a -> float_of_int (count_true a) /. float_of_int (Array.length a)
  | Correlated { table; noise; _ } ->
    (* Approximation assuming a uniform history distribution. *)
    let base = float_of_int (count_true table) /. float_of_int (Array.length table) in
    (base *. (1.0 -. noise)) +. ((1.0 -. base) *. noise)
  | Markov { p_stay_true; p_stay_false; _ } ->
    (* Stationary distribution of the two-state chain. *)
    let leave_true = 1.0 -. p_stay_true and leave_false = 1.0 -. p_stay_false in
    if leave_true +. leave_false = 0.0 then 0.5
    else leave_false /. (leave_true +. leave_false)

type state = {
  rng : Ba_util.Rng.t;
  mutable counter : int;  (* Loop position / Pattern index *)
  mutable last : bool;    (* Markov current state *)
}

let init_state b rng =
  let last = match b with Markov { init; _ } -> init | _ -> false in
  { rng; counter = 0; last }

let next b st ~history =
  match b with
  | Always v -> v
  | Bias p -> Ba_util.Rng.bernoulli st.rng p
  | Loop n ->
    let continue_loop = st.counter < n - 1 in
    st.counter <- (if continue_loop then st.counter + 1 else 0);
    continue_loop
  | Pattern a ->
    let v = a.(st.counter) in
    st.counter <- (st.counter + 1) mod Array.length a;
    v
  | Correlated { bits; table; noise } ->
    let v = table.(history land ((1 lsl bits) - 1)) in
    if noise > 0.0 && Ba_util.Rng.bernoulli st.rng noise then not v else v
  | Markov { p_stay_true; p_stay_false; _ } ->
    let stay = if st.last then p_stay_true else p_stay_false in
    let v = if Ba_util.Rng.bernoulli st.rng stay then st.last else not st.last in
    st.last <- v;
    v

let pp ppf = function
  | Always b -> Fmt.pf ppf "always %b" b
  | Bias p -> Fmt.pf ppf "bias %.3f" p
  | Loop n -> Fmt.pf ppf "loop %d" n
  | Pattern a ->
    Fmt.pf ppf "pattern %s"
      (String.concat "" (Array.to_list (Array.map (fun b -> if b then "T" else "N") a)))
  | Correlated { bits; noise; _ } -> Fmt.pf ppf "correlated bits=%d noise=%.3f" bits noise
  | Markov { p_stay_true; p_stay_false; _ } ->
    Fmt.pf ppf "markov tt=%.3f ff=%.3f" p_stay_true p_stay_false
