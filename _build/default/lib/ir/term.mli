(** Basic-block terminators.

    Block and procedure identifiers are plain integers: a block id indexes
    the block array of its procedure, a proc id indexes the procedure array
    of the program.  The IR has no implicit fall-through: every successor is
    named explicitly, and it is the *layout* (see [Ba_layout]) that later
    decides which successor, if any, becomes the architectural fall-through
    path. *)

type block_id = int
type proc_id = int

type t =
  | Jump of block_id
      (** single successor; becomes either a fall-through or an unconditional
          branch after layout *)
  | Cond of { on_true : block_id; on_false : block_id; behavior : Behavior.t }
      (** two-way conditional branch; the behaviour generates the semantic
          outcome stream *)
  | Switch of { targets : (block_id * float) array }
      (** indirect jump (computed goto / jump table); targets are chosen with
          the given relative weights at run time *)
  | Call of { callee : proc_id; next : block_id }
      (** direct procedure call; on return execution continues at [next]
          (which therefore behaves like a fall-through edge for layout) *)
  | Vcall of { callees : (proc_id * float) array; next : block_id }
      (** indirect (virtual-dispatch) call; counted as an indirect jump in
          trace statistics, as the paper does for C++ dynamic dispatch *)
  | Ret  (** procedure return *)
  | Halt  (** program exit; only meaningful in the main procedure *)

val successors : t -> block_id list
(** Intra-procedural successor blocks, without duplicates, in a fixed
    order. *)

val kind_name : t -> string
(** Lower-case constructor name ("jump", "cond", ...), used to locate
    diagnostics in validation and lint messages. *)

val is_branch_site : t -> bool
(** Does this terminator always lower to at least one branch instruction?
    [Jump]/[Call]/[Vcall] continuations may lower to pure fall-throughs;
    every other terminator with control transfer is a branch instruction. *)

val pp : Format.formatter -> t -> unit
