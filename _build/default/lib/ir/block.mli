(** Basic blocks.

    A block carries a count of "straight-line" (non-branch) instructions and
    a terminator.  The branch instruction implied by the terminator, if any,
    is accounted for separately at layout time, because whether a [Jump]
    needs an instruction at all depends on block placement. *)

type t = { insns : int; term : Term.t }

val make : ?insns:int -> Term.t -> t
(** [make term] is a block with [insns] straight-line instructions
    (default 4, a typical basic-block size from the paper's Figure 1).
    Raises [Invalid_argument] if [insns < 1]: every block occupies at least
    one address, keeping instruction addresses unique in the laid-out
    image. *)

val pp : Format.formatter -> t -> unit
