lib/predict/icache.mli:
