lib/predict/pht.mli:
