lib/predict/alpha_bits.ml: Array
