lib/predict/btb.ml: Array Counter2
