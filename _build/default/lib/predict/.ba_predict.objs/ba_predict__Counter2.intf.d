lib/predict/counter2.mli:
