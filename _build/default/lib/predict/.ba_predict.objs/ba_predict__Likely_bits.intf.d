lib/predict/likely_bits.mli: Ba_cfg Ba_layout
