lib/predict/pht.ml: Array Counter2
