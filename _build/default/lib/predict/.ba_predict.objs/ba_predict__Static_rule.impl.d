lib/predict/static_rule.ml:
