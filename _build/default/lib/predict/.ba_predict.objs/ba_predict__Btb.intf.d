lib/predict/btb.mli:
