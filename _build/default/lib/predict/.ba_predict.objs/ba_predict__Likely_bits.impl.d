lib/predict/likely_bits.ml: Array Ba_cfg Ba_layout Hashtbl Image Linear Printf
