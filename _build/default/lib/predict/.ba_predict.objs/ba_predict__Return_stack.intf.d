lib/predict/return_stack.mli:
