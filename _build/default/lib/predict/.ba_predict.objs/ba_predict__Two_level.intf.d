lib/predict/two_level.mli:
