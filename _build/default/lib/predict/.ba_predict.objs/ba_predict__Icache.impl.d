lib/predict/icache.ml: Array
