lib/predict/alpha_bits.mli:
