lib/predict/counter2.ml:
