lib/predict/return_stack.ml: Array
