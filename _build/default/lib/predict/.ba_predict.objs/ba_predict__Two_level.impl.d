lib/predict/two_level.ml: Array Counter2 Printf
