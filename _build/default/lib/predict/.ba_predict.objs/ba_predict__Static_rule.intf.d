lib/predict/static_rule.mli:
