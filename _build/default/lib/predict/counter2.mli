(** Two-bit saturating up/down counters, the prediction state used by both
    the PHTs and the BTB entries (paper §3). *)

type t = private int
(** 0 = strongly not-taken, 1 = weakly not-taken, 2 = weakly taken,
    3 = strongly taken. *)

val initial : t
(** Weakly not-taken: a cold counter predicts the fall-through, matching the
    paper's BTB/PHT fall-through-on-miss convention. *)

val strongly_taken : t
(** Starting state for entries allocated on a taken branch. *)

val predict : t -> bool
val update : t -> taken:bool -> t

val of_int : int -> t
(** Clamped to [\[0, 3\]]; for tests. *)
