open Ba_layout

type t = (int, bool) Hashtbl.t

let build (image : Image.t) profile =
  let hints = Hashtbl.create 256 in
  Array.iteri
    (fun p (linear : Linear.t) ->
      Array.iter
        (fun (lb : Linear.lblock) ->
          match lb.Linear.term with
          | Linear.Lcond { taken_on; _ } ->
            let n_true, n_false = Ba_cfg.Profile.cond_counts profile p lb.Linear.src in
            let majority_outcome = n_true >= n_false in
            Hashtbl.replace hints (Linear.branch_pc lb) (majority_outcome = taken_on)
          | Linear.Lnone | Linear.Ljump _ | Linear.Lswitch _ | Linear.Lcall _
          | Linear.Lvcall _ | Linear.Lret | Linear.Lhalt -> ())
        linear.Linear.blocks)
    image.Image.linears;
  hints

let hint t pc =
  match Hashtbl.find_opt t pc with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Likely_bits.hint: %d is not a conditional branch" pc)

let count = Hashtbl.length
