type t = int

let initial = 1
let strongly_taken = 3

let predict c = c >= 2

let update c ~taken = if taken then min 3 (c + 1) else max 0 (c - 1)

let of_int n = max 0 (min 3 n)
