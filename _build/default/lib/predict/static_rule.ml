type t = Fallthrough | Btfnt | Likely of (int -> bool)

let predict_taken t ~pc ~taken_target =
  match t with
  | Fallthrough -> false
  | Btfnt -> taken_target <= pc
  | Likely hint -> hint pc

let name = function
  | Fallthrough -> "FALLTHROUGH"
  | Btfnt -> "BT/FNT"
  | Likely _ -> "LIKELY"
