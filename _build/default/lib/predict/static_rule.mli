(** The paper's three static conditional-branch prediction rules (§3).

    - {b FALLTHROUGH}: always predict the fall-through path.
    - {b BT/FNT}: backward taken, forward not taken — predict taken exactly
      when the branch target precedes the branch (HP PA-RISC, Alpha 21064
      default).
    - {b LIKELY}: a per-site hint bit encodes the profile-majority
      direction (Tera-style likely bits, set from profile feedback). *)

type t =
  | Fallthrough
  | Btfnt
  | Likely of (int -> bool)
      (** maps a conditional branch's pc to its likely-taken hint *)

val predict_taken : t -> pc:int -> taken_target:int -> bool
(** Would this rule predict "taken" for the conditional at [pc] whose taken
    target is [taken_target]?  (For BT/FNT the target address decides;
    a self-branch counts as backward.) *)

val name : t -> string
