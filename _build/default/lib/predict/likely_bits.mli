(** Profile-derived LIKELY hint bits.

    The LIKELY architecture encodes each conditional branch's probable
    direction in the instruction; compilers set it from profile feedback.
    This module computes the hint for every conditional branch {e
    instruction} of a code image: the branch at address [pc] is hinted taken
    iff the profile-majority semantic outcome corresponds to "taken" under
    that image's layout (a layout that flips a branch's sense flips its
    hint, exactly as re-running the compiler on the transformed code
    would). *)

type t

val build : Ba_layout.Image.t -> Ba_cfg.Profile.t -> t

val hint : t -> int -> bool
(** [hint t pc] is the likely-taken bit of the conditional at [pc].  Raises
    [Invalid_argument] for an address that is not a conditional branch. *)

val count : t -> int
