(** The workload suite: synthetic stand-ins for the 24 programs of the
    paper's Table 2 (13 SPECfp92, 6 SPECint92, 5 "Other" C++/text
    programs).

    Each workload is a deterministic program built with {!Builder} whose
    control-flow character — break density, taken rate, branch-site
    concentration, break-kind mix, call-graph shape — mimics its namesake's
    published signature.  Absolute instruction counts are scaled down from
    billions to millions; the alignment algorithms and predictors only see
    CFG structure and branch statistics, which are preserved.  (Substitution
    documented in DESIGN.md.) *)

type cls = Fp | Int | Other

val cls_name : cls -> string

type t = {
  name : string;
  cls : cls;
  description : string;  (** what the original program does and which
                              control-flow signature we imitate *)
  build : unit -> Ba_ir.Program.t;
}

val all : t list
(** The 24 workloads in the paper's Table 2 order (FP, then INT, then
    Other). *)

val by_name : string -> t option

val spec_c_programs : string list
(** The eight SPEC92 C programs of Figure 4: alvinn, ear, compress,
    eqntott, espresso, gcc, li, sc. *)

val default_max_steps : int
(** Execution budget (semantic block visits) used by the experiment
    harness; large enough that every workload runs to completion. *)
