(** The five "Other" (C++ / text-processing) workload stand-ins. *)

val all : (string * (unit -> Ba_ir.Program.t) * string) list
(** [(name, builder, description)] triples in the paper's Table 2 order. *)
