lib/workloads/fp.mli: Ba_ir
