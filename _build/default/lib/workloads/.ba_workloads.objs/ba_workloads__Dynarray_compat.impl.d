lib/workloads/dynarray_compat.ml: Array
