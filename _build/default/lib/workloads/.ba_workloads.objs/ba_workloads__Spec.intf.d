lib/workloads/spec.mli: Ba_ir
