lib/workloads/intw.mli: Ba_ir
