lib/workloads/fp.ml: Ba_ir Behavior Builder
