lib/workloads/dynarray_compat.mli:
