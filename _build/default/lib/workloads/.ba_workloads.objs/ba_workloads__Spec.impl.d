lib/workloads/spec.ml: Ba_ir Cxx Fp Intw List
