lib/workloads/builder.ml: Array Ba_ir Behavior Block Dynarray_compat List Printf Proc Program Term
