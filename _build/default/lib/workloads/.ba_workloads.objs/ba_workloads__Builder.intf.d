lib/workloads/builder.mli: Ba_ir
