lib/workloads/intw.ml: Ba_ir Behavior Builder List
