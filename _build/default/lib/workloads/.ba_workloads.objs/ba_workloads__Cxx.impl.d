lib/workloads/cxx.ml: Ba_ir Behavior Builder
