lib/workloads/cxx.mli: Ba_ir
