type cls = Fp | Int | Other

let cls_name = function Fp -> "SPECfp92" | Int -> "SPECint92" | Other -> "Other"

type t = {
  name : string;
  cls : cls;
  description : string;
  build : unit -> Ba_ir.Program.t;
}

let of_entry cls (name, build, description) = { name; cls; description; build }

let all =
  List.map (of_entry Fp) Fp.all
  @ List.map (of_entry Int) Intw.all
  @ List.map (of_entry Other) Cxx.all

let by_name name = List.find_opt (fun w -> w.name = name) all

let spec_c_programs =
  [ "alvinn"; "ear"; "compress"; "eqntott"; "espresso"; "gcc"; "li"; "sc" ]

let default_max_steps = 3_000_000
