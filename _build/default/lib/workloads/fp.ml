(* The thirteen SPECfp92 stand-ins.

   Common signature being imitated (paper Table 2): few instructions break
   control flow (~4-8%), conditional branches are mostly loop tests and
   therefore heavily taken (60-90%), a handful of branch sites dominate
   (Q-50 of 1-5), and calls/returns are rare.  The builders below realise
   that with long counted loops, large straight-line blocks, and shallow
   call graphs; each program differs in nesting shape, block sizes and the
   data-dependent branches of its namesake. *)

open Ba_ir
open Builder

(* ALVINN: a back-propagation network simulator.  The paper singles out
   input_hidden / hidden_input (Figure 2): a single 11-instruction basic
   block looping on itself accounts for most branches.  We reproduce that
   structure exactly: two procedures dominated by one self-loop each,
   driven by a training-epoch loop. *)
let alvinn () =
  let b = create ~name:"alvinn" ~seed:0xA171 in
  let main = declare b ~name:"main" in
  let input_hidden = declare b ~name:"input_hidden" in
  let hidden_input = declare b ~name:"hidden_input" in
  let output_err = declare b ~name:"output_error" in
  define b input_hidden (fun pb ->
      seq pb [ (fun pb -> basic pb ~insns:6 ()); (fun pb -> self_loop ~insns:11 pb ~trips:1200) ]);
  define b hidden_input (fun pb ->
      seq pb [ (fun pb -> basic pb ~insns:6 ()); (fun pb -> self_loop ~insns:11 pb ~trips:1200) ]);
  define b output_err (fun pb ->
      do_while pb ~trips:30 ~body:(fun pb -> basic pb ~insns:14 ()));
  define b main (fun pb ->
      driver pb ~trips:90
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:3 input_hidden);
              (fun pb -> call pb ~insns:3 hidden_input);
              (fun pb -> call pb ~insns:3 output_err);
            ]));
  build b

(* DODUC: Monte-Carlo simulation of a nuclear reactor component; dominated
   by a few very hot branch sites (the paper notes three sites cover 50% of
   executed branches) and straight-line numeric code. *)
let doduc () =
  let b = create ~name:"doduc" ~seed:0xD0D0 in
  let main = declare b ~name:"main" in
  let integrate = declare b ~name:"integrate" in
  let interp = declare b ~name:"interpolate" in
  define b interp (fun pb ->
      (* Table lookup: a short search loop with a biased early-out. *)
      seq pb
        [
          (fun pb ->
            do_while pb ~latch_insns:3
              ~behavior:(Behavior.Bias 0.82) ~trips:6
              ~body:(fun pb -> basic pb ~insns:7 ()));
          (fun pb -> basic pb ~insns:18 ());
        ]);
  define b integrate (fun pb ->
      do_while pb ~trips:40
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> basic pb ~insns:22 ());
              (fun pb ->
                if_then pb ~p_true:0.07 ~then_:(fun pb -> basic pb ~insns:12 ()));
              (fun pb -> call pb ~insns:4 interp);
            ]));
  define b main (fun pb ->
      driver pb ~trips:500
        ~body:(fun pb ->
          seq pb [ (fun pb -> basic pb ~insns:9 ()); (fun pb -> call pb ~insns:3 integrate) ]));
  build b

(* EAR: an inner-ear model — a cascade of filter-bank loops applied per
   input sample; several sequential hot loops of moderate body size. *)
let ear () =
  let b = create ~name:"ear" ~seed:0xEA12 in
  let main = declare b ~name:"main" in
  let filter_bank = declare b ~name:"filter_bank" in
  let compress_stage = declare b ~name:"agc_stage" in
  define b filter_bank (fun pb ->
      seq pb
        [
          (fun pb -> do_while pb ~trips:34 ~body:(fun pb -> basic pb ~insns:16 ()));
          (fun pb -> do_while pb ~trips:34 ~body:(fun pb -> basic pb ~insns:13 ()));
          (fun pb -> do_while pb ~trips:34 ~body:(fun pb -> basic pb ~insns:19 ()));
        ]);
  define b compress_stage (fun pb ->
      do_while pb ~trips:34 ~body:(fun pb -> basic pb ~insns:9 ()));
  define b main (fun pb ->
      driver pb ~trips:1000
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:3 filter_bank);
              (fun pb -> call pb ~insns:3 compress_stage);
            ]));
  build b

(* FPPPP: two-electron integral derivatives, famous for enormous basic
   blocks — very low break density is its defining trait. *)
let fpppp () =
  let b = create ~name:"fpppp" ~seed:0xF999 in
  let main = declare b ~name:"main" in
  let twoel = declare b ~name:"twoel" in
  define b twoel (fun pb ->
      seq pb
        [
          (fun pb -> basic pb ~insns:140 ());
          (fun pb ->
            if_then pb ~cond_insns:4 ~p_true:0.5 ~then_:(fun pb -> basic pb ~insns:120 ()));
          (fun pb -> basic pb ~insns:95 ());
        ]);
  define b main (fun pb ->
      driver pb ~trips:12_000
        ~body:(fun pb ->
          seq pb [ (fun pb -> basic pb ~insns:30 ()); (fun pb -> call pb ~insns:4 twoel) ]));
  build b

(* HYDRO2D: Navier-Stokes on a 2-D grid — doubly nested grid sweeps with a
   rare boundary condition test in the inner body. *)
let hydro2d () =
  let b = create ~name:"hydro2d" ~seed:0x42D0 in
  let main = declare b ~name:"main" in
  let sweep = declare b ~name:"grid_sweep" in
  define b sweep (fun pb ->
      while_loop pb ~trips:55
        ~body:(fun pb ->
          do_while pb ~trips:55
            ~body:(fun pb ->
              seq pb
                [
                  (fun pb -> basic pb ~insns:17 ());
                  (fun pb ->
                    if_then pb ~p_true:0.04 ~then_:(fun pb -> basic pb ~insns:6 ()));
                ])));
  define b main (fun pb ->
      driver pb ~trips:60
        ~body:(fun pb ->
          seq pb [ (fun pb -> basic pb ~insns:8 ()); (fun pb -> call pb ~insns:3 sweep) ]));
  build b

(* MDLJSP2: molecular dynamics — a pairwise-interaction loop whose cutoff
   test fails for most pairs (a frequently not-taken branch), plus a
   neighbour-list rebuild every few steps. *)
let mdljsp2 () =
  let b = create ~name:"mdljsp2" ~seed:0x3D25 in
  let main = declare b ~name:"main" in
  let forces = declare b ~name:"forces" in
  let rebuild = declare b ~name:"neighbor_rebuild" in
  define b forces (fun pb ->
      do_while pb ~trips:600
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> basic pb ~insns:8 ());
              (fun pb ->
                if_else pb ~p_true:0.28 (* within cutoff *)
                  ~then_:(fun pb -> basic pb ~insns:24 ())
                  ~else_:(fun pb -> basic pb ~insns:2 ()));
            ]));
  define b rebuild (fun pb ->
      do_while pb ~trips:200 ~body:(fun pb -> basic pb ~insns:12 ()));
  define b main (fun pb ->
      driver pb ~trips:110
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:3 forces);
              (fun pb ->
                if_then pb ~p_true:0.1 ~then_:(fun pb -> call pb ~insns:2 rebuild));
            ]));
  build b

(* NASA7: seven numeric kernels run in sequence — several distinct loop
   nests of different shapes under one driver loop. *)
let nasa7 () =
  let b = create ~name:"nasa7" ~seed:0x7A5A in
  let main = declare b ~name:"main" in
  let mxm = declare b ~name:"kernel_mxm" in
  let fft = declare b ~name:"kernel_fft" in
  let chol = declare b ~name:"kernel_cholesky" in
  let emit = declare b ~name:"kernel_emit" in
  define b mxm (fun pb ->
      while_loop pb ~trips:24
        ~body:(fun pb ->
          do_while pb ~trips:24 ~body:(fun pb -> basic pb ~insns:21 ())));
  define b fft (fun pb ->
      while_loop pb ~trips:9
        ~body:(fun pb ->
          do_while pb ~trips:64 ~body:(fun pb -> basic pb ~insns:15 ())));
  define b chol (fun pb ->
      while_loop pb ~trips:30
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> do_while pb ~trips:15 ~body:(fun pb -> basic pb ~insns:11 ()));
              (fun pb -> basic pb ~insns:7 ());
            ]));
  define b emit (fun pb ->
      do_while pb ~trips:120 ~body:(fun pb -> basic pb ~insns:18 ()));
  define b main (fun pb ->
      driver pb ~trips:100
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:2 mxm);
              (fun pb -> call pb ~insns:2 fft);
              (fun pb -> call pb ~insns:2 chol);
              (fun pb -> call pb ~insns:2 emit);
            ]));
  build b

(* ORA: optical ray tracing through lens assemblies — a tight geometric
   loop that almost always continues, with heavy straight-line maths. *)
let ora () =
  let b = create ~name:"ora" ~seed:0x08A0 in
  let main = declare b ~name:"main" in
  let trace_ray = declare b ~name:"trace_ray" in
  define b trace_ray (fun pb ->
      do_while pb ~behavior:(Behavior.Bias 0.985) ~trips:60
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> basic pb ~insns:34 ());
              (fun pb ->
                if_then pb ~p_true:0.02 ~then_:(fun pb -> basic pb ~insns:10 ()));
            ]));
  define b main (fun pb ->
      driver pb ~trips:3600
        ~body:(fun pb -> call pb ~insns:4 trace_ray));
  build b

(* SPICE: circuit simulation — sparse-matrix traversal where runs of
   nonzeros cluster (a Markov branch), plus a device-model dispatch. *)
let spice () =
  let b = create ~name:"spice" ~seed:0x591C in
  let main = declare b ~name:"main" in
  let load = declare b ~name:"matrix_load" in
  let device = declare b ~name:"device_eval" in
  define b device (fun pb ->
      switch pb ~insns:4
        ~cases:
          [
            (0.55, fun pb -> basic pb ~insns:26 ());
            (0.3, fun pb -> basic pb ~insns:19 ());
            (0.15, fun pb -> basic pb ~insns:31 ());
          ]);
  define b load (fun pb ->
      do_while pb ~trips:700
        ~body:(fun pb ->
          seq pb
            [
              (fun pb ->
                if_else pb
                  ~behavior:
                    (Behavior.Markov { p_stay_true = 0.85; p_stay_false = 0.7; init = true })
                  ~p_true:0.6
                  ~then_:(fun pb -> basic pb ~insns:9 ())
                  ~else_:(fun pb -> basic pb ~insns:3 ()));
              (fun pb ->
                if_then pb ~p_true:0.12 ~then_:(fun pb -> call pb ~insns:3 device));
            ]));
  define b main (fun pb ->
      driver pb ~trips:130
        ~body:(fun pb ->
          seq pb [ (fun pb -> basic pb ~insns:11 ()); (fun pb -> call pb ~insns:3 load) ]));
  build b

(* SU2COR: quark-gluon lattice QCD — deep, short loop nests over 4-D
   lattice dimensions, giving a very high density of taken loop branches. *)
let su2cor () =
  let b = create ~name:"su2cor" ~seed:0x52C0 in
  let main = declare b ~name:"main" in
  let update = declare b ~name:"lattice_update" in
  define b update (fun pb ->
      while_loop pb ~trips:8
        ~body:(fun pb ->
          while_loop pb ~trips:8
            ~body:(fun pb ->
              do_while pb ~trips:8
                ~body:(fun pb ->
                  do_while pb ~trips:8 ~body:(fun pb -> basic pb ~insns:13 ())))));
  define b main (fun pb ->
      driver pb ~trips:42
        ~body:(fun pb ->
          seq pb [ (fun pb -> basic pb ~insns:10 ()); (fun pb -> call pb ~insns:3 update) ]));
  build b

(* SWM256: shallow-water model on a 256-wide grid — long inner loops of
   vectorisable code, the highest taken-rate of the suite. *)
let swm256 () =
  let b = create ~name:"swm256" ~seed:0x5256 in
  let main = declare b ~name:"main" in
  let calc = declare b ~name:"calc_uvp" in
  define b calc (fun pb ->
      while_loop pb ~trips:22
        ~body:(fun pb ->
          do_while pb ~trips:256 ~body:(fun pb -> basic pb ~insns:14 ())));
  define b main (fun pb ->
      driver pb ~trips:38
        ~body:(fun pb ->
          seq pb [ (fun pb -> basic pb ~insns:6 ()); (fun pb -> call pb ~insns:3 calc) ]));
  build b

(* TOMCATV: mesh generation — two sequential grid sweeps and a residual
   test under an outer convergence loop; boundary handling follows a
   regular repeating pattern. *)
let tomcatv () =
  let b = create ~name:"tomcatv" ~seed:0x70CA in
  let main = declare b ~name:"main" in
  let sweep1 = declare b ~name:"sweep_xy" in
  let sweep2 = declare b ~name:"sweep_residual" in
  define b sweep1 (fun pb ->
      while_loop pb ~trips:50
        ~body:(fun pb ->
          do_while pb ~trips:50
            ~body:(fun pb ->
              seq pb
                [
                  (fun pb -> basic pb ~insns:20 ());
                  (fun pb ->
                    if_then pb
                      ~behavior:
                        (Behavior.Pattern
                           [| true; false; false; false; false; false; false; false |])
                      ~p_true:0.125
                      ~then_:(fun pb -> basic pb ~insns:5 ()));
                ])));
  define b sweep2 (fun pb ->
      do_while pb ~trips:50
        ~body:(fun pb ->
          do_while pb ~trips:50 ~body:(fun pb -> basic pb ~insns:8 ())));
  define b main (fun pb ->
      driver pb ~trips:26
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:3 sweep1);
              (fun pb -> call pb ~insns:3 sweep2);
            ]));
  build b

(* WAVE5: plasma particle-in-cell — alternating particle pushes (with a
   50/50 scatter direction branch) and field solves with large blocks. *)
let wave5 () =
  let b = create ~name:"wave5" ~seed:0x3A5E in
  let main = declare b ~name:"main" in
  let push = declare b ~name:"particle_push" in
  let field = declare b ~name:"field_solve" in
  define b push (fun pb ->
      (* A top-tested particle loop (as era C compilers emitted `for`):
         header conditional plus a backward jump every iteration -- prime
         material for the Figure 3 rotation. *)
      seq pb
        [
          (fun pb -> basic pb ~insns:4 ());
          (fun pb ->
            while_loop pb ~trips:900
              ~body:(fun pb ->
                seq pb
                  [
                    (fun pb -> basic pb ~insns:12 ());
                    (fun pb ->
                      if_else pb ~p_true:0.5
                        ~then_:(fun pb -> basic pb ~insns:9 ())
                        ~else_:(fun pb -> basic pb ~insns:9 ()));
                  ]));
        ]);
  define b field (fun pb ->
      do_while pb ~trips:300 ~body:(fun pb -> basic pb ~insns:23 ()));
  define b main (fun pb ->
      driver pb ~trips:95
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:3 push);
              (fun pb -> call pb ~insns:3 field);
            ]));
  build b

let all =
  [
    ("alvinn", alvinn, "back-propagation net; one hot self-loop block per layer (Figure 2)");
    ("doduc", doduc, "Monte-Carlo reactor; three sites dominate, biased search loops");
    ("ear", ear, "inner-ear model; cascaded filter loops of moderate body size");
    ("fpppp", fpppp, "electron integrals; enormous straight-line basic blocks");
    ("hydro2d", hydro2d, "Navier-Stokes grid sweeps with rare boundary tests");
    ("mdljsp2", mdljsp2, "molecular dynamics; frequently not-taken cutoff test");
    ("nasa7", nasa7, "seven numeric kernels of differing loop shapes");
    ("ora", ora, "ray tracing; near-certain loop continuation, huge blocks");
    ("spice", spice, "sparse circuit simulation; clustered-run Markov branch");
    ("su2cor", su2cor, "lattice QCD; deep short loop nests, loop-branch dense");
    ("swm256", swm256, "shallow water; 256-long inner loops, highest taken rate");
    ("tomcatv", tomcatv, "mesh generation; sweeps plus patterned boundary branch");
    ("wave5", wave5, "particle-in-cell; 50/50 scatter branch plus field loops");
  ]
