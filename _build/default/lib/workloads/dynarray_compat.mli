(** Minimal growable array (OCaml 5.1's stdlib predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> 'a -> int
(** Append and return the element's index. *)

val get : 'a t -> int -> 'a
val length : 'a t -> int
