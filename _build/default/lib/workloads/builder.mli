(** A structured-control-flow DSL for constructing workload programs.

    The builder emits blocks in the order a simple compiler would: loop
    tests at the top with a backward jump at the bottom of the body,
    if/then/else with the then-arm falling through and a jump over the else
    arm, switch cases in declaration order.  That "naive" original layout is
    deliberate — it is the layout the paper's binary transformations start
    from.

    Procedures are declared first (so call graphs, including recursion and
    mutual calls, can be wired), then defined.  Inside a definition,
    combinators return {!region} values: a sub-CFG with one entry and a
    [patch_next] closure that wires every dangling exit to the
    continuation.  Each combinator allocates its blocks at call time, so the
    textual order of combinator calls is the original code layout. *)

type t
(** A program under construction. *)

type pb
(** A procedure body under construction. *)

type region = {
  entry : Ba_ir.Term.block_id;
  patch_next : Ba_ir.Term.block_id -> unit;
      (** wire all dangling exits; must be called exactly once *)
}

val create : name:string -> seed:int -> t

val declare : t -> name:string -> Ba_ir.Term.proc_id
(** Reserve a procedure id.  The first declaration is the main procedure. *)

val define : t -> Ba_ir.Term.proc_id -> (pb -> region) -> unit
(** Define a declared procedure's body; the body region's continuation is a
    fresh [Ret] block ([Halt] for the main procedure).  Raises
    [Invalid_argument] on double definition. *)

val build : t -> Ba_ir.Program.t
(** Assemble and validate.  Raises [Invalid_argument] if any declared
    procedure is undefined or validation fails. *)

(** {1 Regions} *)

val basic : pb -> ?insns:int -> unit -> region
(** A straight-line block. *)

val seq : pb -> (pb -> region) list -> region
(** Build sub-regions in order and chain them.  The list must be
    non-empty. *)

val while_loop :
  ?header_insns:int ->
  ?behavior:Ba_ir.Behavior.t ->
  pb ->
  trips:int ->
  body:(pb -> region) ->
  region
(** Top-tested loop: [header: if done goto exit; body; goto header].  The
    default behaviour is [Loop trips]; pass [behavior] for data-dependent
    continuation tests (its [true] outcome means "continue"). *)

val do_while :
  ?latch_insns:int ->
  ?behavior:Ba_ir.Behavior.t ->
  pb ->
  trips:int ->
  body:(pb -> region) ->
  region
(** Bottom-tested loop: [body; latch: if again goto body].  The backward
    conditional is taken on every iteration but the last — the high
    taken-rate pattern of Fortran inner loops. *)

val driver :
  ?prologue_insns:int ->
  ?behavior:Ba_ir.Behavior.t ->
  pb ->
  trips:int ->
  body:(pb -> region) ->
  region
(** A program's main loop: a short prologue block (setup/argument parsing)
    followed by a top-tested loop.  The prologue matters structurally: it
    keeps the loop header off the procedure's pinned entry address, so
    alignment is free to rotate the loop. *)

val self_loop : ?insns:int -> pb -> trips:int -> region
(** A single block that branches back to itself — the ALVINN [input_hidden]
    pattern of the paper's Figure 2. *)

val if_else :
  ?cond_insns:int ->
  ?behavior:Ba_ir.Behavior.t ->
  pb ->
  p_true:float ->
  then_:(pb -> region) ->
  else_:(pb -> region) ->
  region
(** Two-armed conditional; the then-arm falls through when the condition
    holds.  Default behaviour is [Bias p_true]. *)

val if_then :
  ?cond_insns:int ->
  ?behavior:Ba_ir.Behavior.t ->
  pb ->
  p_true:float ->
  then_:(pb -> region) ->
  region
(** One-armed conditional: the false edge skips the arm. *)

val switch :
  ?insns:int -> pb -> cases:(float * (pb -> region)) list -> region
(** Indirect multi-way dispatch; case bodies are emitted in order and each
    jumps to the continuation.  Weights select cases at run time. *)

val call : pb -> ?insns:int -> Ba_ir.Term.proc_id -> region
(** A block performing a direct call, continuing afterwards. *)

val vcall : pb -> ?insns:int -> (Ba_ir.Term.proc_id * float) list -> region
(** An indirect (virtual-dispatch) call with weighted receivers. *)
