(** The thirteen SPECfp92 workload stand-ins (see the implementation for
    per-program notes on the control-flow signature each one imitates). *)

val all : (string * (unit -> Ba_ir.Program.t) * string) list
(** [(name, builder, description)] triples in the paper's Table 2 order. *)
