open Ba_ir

type slot = { insns : int; mutable term : Term.t option }

type pb = { slots : slot Dynarray_compat.t }

and t = {
  prog_name : string;
  seed : int;
  mutable procs : (string * pb option ref) list;  (* in declaration order, reversed *)
  mutable n_declared : int;
}

type region = { entry : Term.block_id; patch_next : Term.block_id -> unit }

let create ~name ~seed = { prog_name = name; seed; procs = []; n_declared = 0 }

let declare t ~name =
  let id = t.n_declared in
  t.n_declared <- t.n_declared + 1;
  t.procs <- (name, ref None) :: t.procs;
  id

let add pb ~insns = Dynarray_compat.add pb.slots { insns; term = None }

let set_term pb b term =
  let slot = Dynarray_compat.get pb.slots b in
  match slot.term with
  | Some _ -> invalid_arg "Builder: terminator already set"
  | None -> slot.term <- Some term

let once name f =
  let used = ref false in
  fun x ->
    if !used then invalid_arg (Printf.sprintf "Builder: %s patched twice" name);
    used := true;
    f x

(* -- regions ----------------------------------------------------------- *)

let basic pb ?(insns = 4) () =
  let b = add pb ~insns in
  { entry = b; patch_next = once "basic" (fun next -> set_term pb b (Term.Jump next)) }

let seq pb builders =
  match builders with
  | [] -> invalid_arg "Builder.seq: empty sequence"
  | first :: rest ->
    let r0 = first pb in
    let last =
      List.fold_left
        (fun prev build ->
          let r = build pb in
          prev.patch_next r.entry;
          r)
        r0 rest
    in
    { entry = r0.entry; patch_next = last.patch_next }

let while_loop ?(header_insns = 2) ?behavior pb ~trips ~body =
  if trips < 1 then invalid_arg "Builder.while_loop: trips must be positive";
  let behavior = match behavior with Some b -> b | None -> Behavior.Loop trips in
  let header = add pb ~insns:header_insns in
  let body_region = body pb in
  body_region.patch_next header;
  {
    entry = header;
    patch_next =
      once "while_loop"
        (fun next ->
          set_term pb header
            (Term.Cond { on_true = body_region.entry; on_false = next; behavior }));
  }

let do_while ?(latch_insns = 2) ?behavior pb ~trips ~body =
  if trips < 1 then invalid_arg "Builder.do_while: trips must be positive";
  let behavior = match behavior with Some b -> b | None -> Behavior.Loop trips in
  let body_region = body pb in
  let latch = add pb ~insns:latch_insns in
  body_region.patch_next latch;
  {
    entry = body_region.entry;
    patch_next =
      once "do_while"
        (fun next ->
          set_term pb latch
            (Term.Cond { on_true = body_region.entry; on_false = next; behavior }));
  }

let driver ?(prologue_insns = 6) ?behavior pb ~trips ~body =
  seq pb
    [
      (fun pb -> basic pb ~insns:prologue_insns ());
      (fun pb -> while_loop ?behavior pb ~trips ~body);
    ]

let self_loop ?(insns = 11) pb ~trips =
  if trips < 1 then invalid_arg "Builder.self_loop: trips must be positive";
  let b = add pb ~insns in
  {
    entry = b;
    patch_next =
      once "self_loop"
        (fun next ->
          set_term pb b
            (Term.Cond { on_true = b; on_false = next; behavior = Behavior.Loop trips }));
  }

let if_else ?(cond_insns = 3) ?behavior pb ~p_true ~then_ ~else_ =
  let behavior = match behavior with Some b -> b | None -> Behavior.Bias p_true in
  let cond = add pb ~insns:cond_insns in
  let then_region = then_ pb in
  let else_region = else_ pb in
  set_term pb cond
    (Term.Cond { on_true = then_region.entry; on_false = else_region.entry; behavior });
  {
    entry = cond;
    patch_next =
      once "if_else"
        (fun next ->
          then_region.patch_next next;
          else_region.patch_next next);
  }

let if_then ?(cond_insns = 3) ?behavior pb ~p_true ~then_ =
  let behavior = match behavior with Some b -> b | None -> Behavior.Bias p_true in
  let cond = add pb ~insns:cond_insns in
  let then_region = then_ pb in
  {
    entry = cond;
    patch_next =
      once "if_then"
        (fun next ->
          set_term pb cond
            (Term.Cond { on_true = then_region.entry; on_false = next; behavior });
          then_region.patch_next next);
  }

let switch ?(insns = 3) pb ~cases =
  if cases = [] then invalid_arg "Builder.switch: no cases";
  let sw = add pb ~insns in
  let regions = List.map (fun (w, build) -> (w, build pb)) cases in
  set_term pb sw
    (Term.Switch
       { targets = Array.of_list (List.map (fun (w, r) -> (r.entry, w)) regions) });
  {
    entry = sw;
    patch_next =
      once "switch" (fun next -> List.iter (fun (_, r) -> r.patch_next next) regions);
  }

let call pb ?(insns = 4) callee =
  let b = add pb ~insns in
  {
    entry = b;
    patch_next =
      once "call" (fun next -> set_term pb b (Term.Call { callee; next }));
  }

let vcall pb ?(insns = 4) callees =
  if callees = [] then invalid_arg "Builder.vcall: no callees";
  let b = add pb ~insns in
  {
    entry = b;
    patch_next =
      once "vcall"
        (fun next ->
          set_term pb b (Term.Vcall { callees = Array.of_list callees; next }));
  }

(* -- program assembly --------------------------------------------------- *)

let define t pid body =
  let in_order = List.rev t.procs in
  let _, cell =
    try List.nth in_order pid
    with Failure _ | Invalid_argument _ -> invalid_arg "Builder.define: unknown procedure"
  in
  (match !cell with
  | Some _ -> invalid_arg "Builder.define: procedure already defined"
  | None -> ());
  let pb = { slots = Dynarray_compat.create () } in
  let region = body pb in
  let final = add pb ~insns:1 in
  set_term pb final (if pid = 0 then Term.Halt else Term.Ret);
  region.patch_next final;
  cell := Some pb

let build t =
  let in_order = List.rev t.procs in
  let procs =
    List.map
      (fun (name, cell) ->
        match !cell with
        | None -> invalid_arg (Printf.sprintf "Builder.build: procedure %s undefined" name)
        | Some pb ->
          let blocks =
            Array.init (Dynarray_compat.length pb.slots) (fun i ->
                let slot = Dynarray_compat.get pb.slots i in
                match slot.term with
                | None ->
                  invalid_arg
                    (Printf.sprintf "Builder.build: %s block %d has no terminator" name i)
                | Some term -> Block.make ~insns:slot.insns term)
          in
          Proc.make ~name blocks)
      in_order
  in
  let program = Program.make ~name:t.prog_name ~seed:t.seed (Array.of_list procs) in
  match Program.validate program with
  | Ok () -> program
  | Error e -> invalid_arg ("Builder.build: invalid program: " ^ e)
