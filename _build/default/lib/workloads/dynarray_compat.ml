type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let add t x =
  if t.len = Array.length t.data then begin
    let cap = max 8 (2 * Array.length t.data) in
    let data = Array.make cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarray_compat.get: index out of bounds";
  t.data.(i)

let length t = t.len
