(* The five "Other" stand-ins: C++ and text-processing programs the paper
   added because SPEC92 "did not typify the behavior seen in large programs
   or C++ programs".

   Signature imitated: many small procedures, deep call chains, and — for
   the C++ programs — dynamic dispatch implemented as indirect jumps
   (vcalls), which show up in the paper's %IJ column and stress the BTB and
   the return stack. *)

open Ba_ir
open Builder

(* CFRONT: the AT&T C++ front end — a token loop feeding a large dispatch,
   with virtual calls on AST nodes and deep call chains. *)
let cfront () =
  let b = create ~name:"cfront" ~seed:0xCF07 in
  let main = declare b ~name:"main" in
  let get_token = declare b ~name:"get_token" in
  let expr_node = declare b ~name:"expr_typecheck" in
  let stmt_node = declare b ~name:"stmt_typecheck" in
  let decl_node = declare b ~name:"decl_typecheck" in
  let simpl = declare b ~name:"simpl" in
  define b get_token (fun pb ->
      seq pb
        [
          (fun pb ->
            do_while pb ~behavior:(Behavior.Bias 0.25) ~trips:2
              ~body:(fun pb -> basic pb ~insns:3 ()) (* skip whitespace *));
          (fun pb ->
            if_else pb ~p_true:0.6
              ~then_:(fun pb -> basic pb ~insns:4 ())
              ~else_:(fun pb -> basic pb ~insns:6 ()));
        ]);
  define b expr_node (fun pb ->
      seq pb
        [
          (fun pb -> basic pb ~insns:5 ());
          (fun pb ->
            if_then pb ~p_true:0.35
              ~then_:(fun pb -> call pb ~insns:2 get_token) (* re-lex lookahead *));
        ]);
  define b stmt_node (fun pb ->
      if_else pb ~p_true:0.5
        ~then_:(fun pb -> basic pb ~insns:6 ())
        ~else_:(fun pb -> call pb ~insns:2 expr_node));
  define b decl_node (fun pb ->
      seq pb
        [
          (fun pb -> basic pb ~insns:7 ());
          (fun pb ->
            if_then pb ~p_true:0.4 ~then_:(fun pb -> call pb ~insns:2 expr_node));
        ]);
  define b simpl (fun pb ->
      do_while pb ~behavior:(Behavior.Bias 0.55) ~trips:3
        ~body:(fun pb ->
          vcall pb ~insns:3 [ (expr_node, 0.5); (stmt_node, 0.3); (decl_node, 0.2) ]));
  define b main (fun pb ->
      driver pb ~trips:17_000
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:2 get_token);
              (fun pb ->
                vcall pb ~insns:3
                  [ (expr_node, 0.45); (stmt_node, 0.35); (decl_node, 0.2) ]);
              (fun pb ->
                if_then pb ~p_true:0.25 ~then_:(fun pb -> call pb ~insns:2 simpl));
            ]));
  build b

(* DB++ (deltablue): incremental constraint solver — plan execution walks a
   chain of constraints, each executed through a virtual method; whether a
   constraint is already satisfied clusters strongly. *)
let dbxx () =
  let b = create ~name:"db++" ~seed:0xDB99 in
  let main = declare b ~name:"main" in
  let execute_eq = declare b ~name:"EqualityConstraint::execute" in
  let execute_scale = declare b ~name:"ScaleConstraint::execute" in
  let execute_stay = declare b ~name:"StayConstraint::execute" in
  let add_propagate = declare b ~name:"add_propagate" in
  define b execute_eq (fun pb -> basic pb ~insns:4 ());
  define b execute_scale (fun pb -> basic pb ~insns:7 ());
  define b execute_stay (fun pb -> basic pb ~insns:2 ());
  define b add_propagate (fun pb ->
      do_while pb ~behavior:(Behavior.Bias 0.75) ~trips:4
        ~body:(fun pb ->
          seq pb
            [
              (fun pb ->
                if_else pb
                  ~behavior:
                    (Behavior.Markov { p_stay_true = 0.88; p_stay_false = 0.6; init = true })
                  ~p_true:0.7
                  ~then_:(fun pb -> basic pb ~insns:3 ()) (* already satisfied *)
                  ~else_:(fun pb ->
                    vcall pb ~insns:2
                      [ (execute_eq, 0.5); (execute_scale, 0.3); (execute_stay, 0.2) ]));
            ]));
  define b main (fun pb ->
      driver pb ~trips:20_000
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> basic pb ~insns:4 ());
              (fun pb -> call pb ~insns:2 add_propagate);
              (fun pb ->
                if_then pb ~p_true:0.15
                  ~then_:(fun pb ->
                    vcall pb ~insns:2 [ (execute_eq, 0.6); (execute_stay, 0.4) ]));
            ]));
  build b

(* GROFF: the ditroff formatter in C++ — per-character processing with a
   skewed character-class dispatch, rare hyphenation work, and output
   flushes through virtual node methods. *)
let groff () =
  let b = create ~name:"groff" ~seed:0x6055 in
  let main = declare b ~name:"main" in
  let out_glyph = declare b ~name:"glyph_node::output" in
  let out_space = declare b ~name:"space_node::output" in
  let hyphenate = declare b ~name:"hyphenate_word" in
  let flush_line = declare b ~name:"flush_line" in
  define b out_glyph (fun pb -> basic pb ~insns:5 ());
  define b out_space (fun pb -> basic pb ~insns:3 ());
  define b hyphenate (fun pb ->
      do_while pb ~behavior:(Behavior.Bias 0.7) ~trips:4
        ~body:(fun pb ->
          if_else pb ~p_true:0.45
            ~then_:(fun pb -> basic pb ~insns:4 ())
            ~else_:(fun pb -> basic pb ~insns:6 ())));
  define b flush_line (fun pb ->
      do_while pb ~trips:60
        ~body:(fun pb ->
          vcall pb ~insns:2 [ (out_glyph, 0.8); (out_space, 0.2) ]));
  define b main (fun pb ->
      driver pb ~trips:20_000
        ~body:(fun pb ->
          seq pb
            [
              (fun pb ->
                switch pb ~insns:3
                  ~cases:
                    [
                      (0.62, fun pb -> basic pb ~insns:4 ()) (* ordinary char *);
                      (0.2, fun pb -> basic pb ~insns:3 ()) (* space *);
                      (0.12, fun pb -> basic pb ~insns:7 ()) (* escape *);
                      (0.06, fun pb -> basic pb ~insns:5 ()) (* request *);
                    ]);
              (fun pb ->
                if_then pb ~p_true:0.04 ~then_:(fun pb -> call pb ~insns:2 hyphenate));
              (fun pb ->
                if_then pb ~p_true:0.016 ~then_:(fun pb -> call pb ~insns:2 flush_line));
            ]));
  build b

(* IDL: a CORBA interface-definition-language parser — recursive descent
   with one small procedure per production and virtual AST construction. *)
let idl () =
  let b = create ~name:"idl" ~seed:0x1D10 in
  let main = declare b ~name:"main" in
  let parse_def = declare b ~name:"parse_definition" in
  let parse_type = declare b ~name:"parse_type_spec" in
  let parse_member = declare b ~name:"parse_member" in
  let make_node = declare b ~name:"AST_Node::make" in
  define b make_node (fun pb ->
      if_else pb ~p_true:0.55
        ~then_:(fun pb -> basic pb ~insns:4 ())
        ~else_:(fun pb -> basic pb ~insns:6 ()));
  define b parse_type (fun pb ->
      seq pb
        [
          (fun pb ->
            switch pb ~insns:3
              ~cases:
                [
                  (0.5, fun pb -> basic pb ~insns:3 ()) (* base type *);
                  (0.3, fun pb -> vcall pb ~insns:2 [ (make_node, 1.0) ]);
                  (0.2, fun pb -> basic pb ~insns:5 ()) (* scoped name *);
                ]);
        ]);
  define b parse_member (fun pb ->
      seq pb
        [
          (fun pb -> call pb ~insns:2 parse_type);
          (fun pb -> vcall pb ~insns:2 [ (make_node, 1.0) ]);
          (fun pb ->
            if_then pb ~p_true:0.3 ~then_:(fun pb -> basic pb ~insns:4 ()));
        ]);
  define b parse_def (fun pb ->
      seq pb
        [
          (fun pb -> basic pb ~insns:4 ());
          (fun pb ->
            do_while pb ~behavior:(Behavior.Bias 0.65) ~trips:3
              ~body:(fun pb -> call pb ~insns:2 parse_member));
          (* Nested interface: bounded recursion. *)
          (fun pb ->
            if_then pb ~p_true:0.18 ~then_:(fun pb -> call pb ~insns:2 parse_def));
        ]);
  define b main (fun pb ->
      driver pb ~trips:9_000
        ~body:(fun pb ->
          seq pb
            [ (fun pb -> basic pb ~insns:3 ()); (fun pb -> call pb ~insns:2 parse_def) ]));
  build b

(* TEX: typesetting — the main control loop fetches tokens (through a
   procedure), dispatches on command codes, and periodically runs the
   paragraph builder's inner loop. *)
let tex () =
  let b = create ~name:"tex" ~seed:0x7E50 in
  let main = declare b ~name:"main_control" in
  let get_next = declare b ~name:"get_next" in
  let line_break = declare b ~name:"line_break" in
  let hpack = declare b ~name:"hpack" in
  define b get_next (fun pb ->
      seq pb
        [
          (fun pb -> basic pb ~insns:4 ());
          (fun pb ->
            if_then pb ~p_true:0.12 ~then_:(fun pb -> basic pb ~insns:6 ())
            (* macro expansion *));
        ]);
  define b hpack (fun pb ->
      do_while pb ~trips:14 ~body:(fun pb -> basic pb ~insns:6 ()));
  define b line_break (fun pb ->
      while_loop pb ~trips:25
        ~body:(fun pb ->
          seq pb
            [
              (fun pb ->
                if_else pb ~p_true:0.3
                  ~then_:(fun pb -> basic pb ~insns:8 ()) (* feasible breakpoint *)
                  ~else_:(fun pb -> basic pb ~insns:3 ()));
              (fun pb ->
                if_then pb ~p_true:0.2 ~then_:(fun pb -> call pb ~insns:2 hpack));
            ]));
  define b main (fun pb ->
      driver pb ~trips:26_000
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:2 get_next);
              (fun pb ->
                switch pb ~insns:3
                  ~cases:
                    [
                      (0.55, fun pb -> basic pb ~insns:4 ()) (* letter *);
                      (0.2, fun pb -> basic pb ~insns:3 ()) (* spacer *);
                      (0.15, fun pb -> basic pb ~insns:6 ()) (* command *);
                      (0.1, fun pb -> basic pb ~insns:5 ()) (* math shift *);
                    ]);
              (fun pb ->
                if_then pb ~p_true:0.01 ~then_:(fun pb -> call pb ~insns:2 line_break));
            ]));
  build b

let all =
  [
    ("cfront", cfront, "C++ front end; token loop, AST vcalls, deep call chains");
    ("db++", dbxx, "deltablue constraint solver; virtual execute methods");
    ("groff", groff, "ditroff formatter; skewed per-character dispatch");
    ("idl", idl, "CORBA IDL parser; recursive descent, one proc per production");
    ("tex", tex, "typesetting; token fetch, command dispatch, paragraph builder");
  ]
