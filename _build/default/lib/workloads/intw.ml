(* The six SPECint92 stand-ins.

   Signature imitated (paper Table 2): roughly 16% of instructions break
   control flow, conditional branches are data dependent with mixed biases
   (taken rates near 50-70%), branch sites are spread over many procedures
   (gcc's Q-90 runs to hundreds of sites), blocks are small, and call/return
   traffic is significant.  Several branches correlate with recent global
   outcomes, which is what separates the gshare PHT from the direct-mapped
   one in Table 4. *)

open Ba_ir
open Builder

(* COMPRESS: LZW compression — one hot loop whose hash-hit branch comes in
   runs (compressible input), with a rare table-reset path. *)
let compress () =
  let b = create ~name:"compress" ~seed:0xC033 in
  let main = declare b ~name:"main" in
  let output_code = declare b ~name:"output_code" in
  define b output_code (fun pb ->
      seq pb
        [
          (fun pb -> basic pb ~insns:7 ());
          (fun pb -> if_then pb ~p_true:0.3 ~then_:(fun pb -> basic pb ~insns:5 ()));
        ]);
  define b main (fun pb ->
      driver pb ~trips:80_000
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> basic pb ~insns:5 ());
              (fun pb ->
                if_else pb
                  ~behavior:
                    (Behavior.Markov { p_stay_true = 0.82; p_stay_false = 0.55; init = true })
                  ~p_true:0.7
                  ~then_:(fun pb -> basic pb ~insns:4 ()) (* hash hit: extend string *)
                  ~else_:(fun pb -> call pb ~insns:3 output_code));
              (fun pb ->
                if_then pb ~p_true:0.002 ~then_:(fun pb -> basic pb ~insns:20 ()));
            ]));
  build b

(* EQNTOTT: truth-table generation — execution concentrates in a comparison
   routine called from a sort; its two hot branches are heavily biased, and
   consecutive comparisons correlate. *)
let eqntott () =
  let b = create ~name:"eqntott" ~seed:0xE060 in
  let main = declare b ~name:"main" in
  let cmppt = declare b ~name:"cmppt" in
  define b cmppt (fun pb ->
      do_while pb ~latch_insns:2 ~behavior:(Behavior.Bias 0.88) ~trips:8
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> basic pb ~insns:3 ());
              (fun pb ->
                if_else pb
                  ~behavior:
                    (Behavior.Correlated
                       { bits = 2; table = [| true; true; false; true |]; noise = 0.05 })
                  ~p_true:0.75
                  ~then_:(fun pb -> basic pb ~insns:2 ())
                  ~else_:(fun pb -> basic pb ~insns:4 ()));
            ]));
  define b main (fun pb ->
      driver pb ~trips:25_000
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> basic pb ~insns:4 ());
              (fun pb -> call pb ~insns:2 cmppt);
              (fun pb ->
                if_then pb ~p_true:0.45 ~then_:(fun pb -> basic pb ~insns:5 ()));
            ]));
  build b

(* ESPRESSO: two-level logic minimisation — loops over cube lists in
   several procedures with varied biases; includes an elim_lowering-like
   routine with the multi-way shape of the paper's Figure 1. *)
let espresso () =
  let b = create ~name:"espresso" ~seed:0xE590 in
  let main = declare b ~name:"main" in
  let elim_lowering = declare b ~name:"elim_lowering" in
  let cofactor = declare b ~name:"cofactor" in
  let sharp = declare b ~name:"sharp" in
  define b elim_lowering (fun pb ->
      (* Loop over cube pairs; an unbalanced inner decision tree. *)
      while_loop pb ~trips:60
        ~body:(fun pb ->
          seq pb
            [
              (fun pb ->
                if_else pb ~p_true:0.35
                  ~then_:(fun pb -> basic pb ~insns:5 ())
                  ~else_:(fun pb ->
                    if_else pb ~p_true:0.6
                      ~then_:(fun pb -> basic pb ~insns:7 ())
                      ~else_:(fun pb -> basic pb ~insns:4 ())));
              (fun pb ->
                if_then pb ~p_true:0.2 ~then_:(fun pb -> basic pb ~insns:8 ()));
            ]));
  define b cofactor (fun pb ->
      do_while pb ~trips:25
        ~body:(fun pb ->
          if_else pb ~p_true:0.55
            ~then_:(fun pb -> basic pb ~insns:6 ())
            ~else_:(fun pb -> basic pb ~insns:3 ())));
  define b sharp (fun pb ->
      while_loop pb ~trips:18
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> basic pb ~insns:4 ());
              (fun pb ->
                if_then pb ~p_true:0.15 ~then_:(fun pb -> call pb ~insns:2 cofactor));
            ]));
  define b main (fun pb ->
      driver pb ~trips:900
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:3 elim_lowering);
              (fun pb -> call pb ~insns:3 sharp);
              (fun pb ->
                if_then pb ~p_true:0.5 ~then_:(fun pb -> call pb ~insns:2 cofactor));
            ]));
  build b

(* GCC: the compiler — the suite's flattest branch profile: many
   procedures, a yyparse-like dispatch over dozens of cases, shallow biases
   everywhere, heavy call/return traffic. *)
let gcc () =
  let b = create ~name:"gcc" ~seed:0x6CC0 in
  let main = declare b ~name:"main" in
  let yyparse = declare b ~name:"yyparse" in
  let fold_rtx = declare b ~name:"fold_rtx" in
  let combine = declare b ~name:"combine" in
  let regalloc = declare b ~name:"reg_alloc" in
  let sched = declare b ~name:"schedule" in
  let emit = declare b ~name:"emit_insn" in
  (* A branchy helper with a different bias per call site region.  Each
     tree also carries a rarely-taken error path with a large handler block
     -- the cold code that pollutes gcc's instruction-cache lines until
     alignment pushes it out of the hot path. *)
  let decision_tree pb biases =
    seq pb
      (List.map
         (fun p (pb : pb) ->
           if_else pb ~p_true:p
             ~then_:(fun pb -> basic pb ~insns:3 ())
             ~else_:(fun pb -> basic pb ~insns:4 ()))
         biases
      @ [
          (fun pb ->
            if_then pb ~p_true:0.002
              ~then_:(fun pb -> basic pb ~insns:45 ()) (* error handler *));
        ])
  in
  define b yyparse (fun pb ->
      while_loop pb ~trips:40
        ~body:(fun pb ->
          switch pb ~insns:3
            ~cases:
              [
                (0.22, fun pb -> decision_tree pb [ 0.45; 0.6 ]);
                (0.18, fun pb -> basic pb ~insns:6 ());
                (0.15, fun pb -> decision_tree pb [ 0.52 ]);
                (0.13, fun pb -> basic pb ~insns:4 ());
                (0.1, fun pb -> decision_tree pb [ 0.38; 0.7; 0.5 ]);
                (0.08, fun pb -> basic pb ~insns:8 ());
                (0.07, fun pb -> decision_tree pb [ 0.65 ]);
                (0.07, fun pb -> basic pb ~insns:5 ());
              ]));
  define b fold_rtx (fun pb ->
      seq pb
        [
          (fun pb -> decision_tree pb [ 0.55; 0.42; 0.6; 0.35 ]);
          (fun pb ->
            if_then pb ~p_true:0.25 ~then_:(fun pb -> basic pb ~insns:9 ()));
        ]);
  define b combine (fun pb ->
      while_loop pb ~trips:14
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:2 fold_rtx);
              (fun pb -> decision_tree pb [ 0.5; 0.62 ]);
            ]));
  define b regalloc (fun pb ->
      while_loop pb ~trips:20
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> decision_tree pb [ 0.7; 0.44 ]);
              (fun pb ->
                if_then pb ~p_true:0.3 ~then_:(fun pb -> basic pb ~insns:6 ()));
            ]));
  define b sched (fun pb ->
      do_while pb ~trips:12
        ~body:(fun pb -> decision_tree pb [ 0.58; 0.49; 0.53 ]));
  define b emit (fun pb -> decision_tree pb [ 0.6; 0.5 ]);
  define b main (fun pb ->
      driver pb ~trips:600
        ~body:(fun pb ->
          seq pb
            [
              (fun pb -> call pb ~insns:3 yyparse);
              (fun pb -> call pb ~insns:3 combine);
              (fun pb -> call pb ~insns:3 regalloc);
              (fun pb -> call pb ~insns:3 sched);
              (fun pb -> call pb ~insns:2 emit);
            ]));
  build b

(* LI: a Lisp interpreter — a recursive eval with a type dispatch, cons
   traversal loops and dense call/return traffic (the return stack matters
   here). *)
let li () =
  let b = create ~name:"li" ~seed:0x0113 in
  let main = declare b ~name:"main" in
  let eval = declare b ~name:"xleval" in
  let apply = declare b ~name:"xlapply" in
  let gc = declare b ~name:"gc_mark" in
  define b eval (fun pb ->
      switch pb ~insns:4
        ~cases:
          [
            (0.4, fun pb -> basic pb ~insns:3 ()) (* self-evaluating *);
            (0.3, fun pb ->
              seq pb
                [
                  (fun pb -> basic pb ~insns:4 ());
                  (fun pb ->
                    if_then pb ~p_true:0.55 ~then_:(fun pb -> call pb ~insns:2 apply));
                ]);
            (0.2, fun pb ->
              do_while pb ~behavior:(Behavior.Bias 0.6) ~trips:3
                ~body:(fun pb -> basic pb ~insns:5 ()) (* arg list walk *));
            (0.1, fun pb -> basic pb ~insns:7 ());
          ]);
  define b apply (fun pb ->
      seq pb
        [
          (fun pb -> basic pb ~insns:5 ());
          (* Bounded recursion back into eval. *)
          (fun pb ->
            if_then pb ~p_true:0.4 ~then_:(fun pb -> call pb ~insns:2 eval));
          (fun pb ->
            if_then pb ~p_true:0.02 ~then_:(fun pb -> call pb ~insns:2 gc));
        ]);
  define b gc (fun pb ->
      do_while pb ~behavior:(Behavior.Bias 0.9) ~trips:40
        ~body:(fun pb ->
          if_else pb ~p_true:0.5
            ~then_:(fun pb -> basic pb ~insns:4 ())
            ~else_:(fun pb -> basic pb ~insns:3 ())));
  define b main (fun pb ->
      driver pb ~trips:45_000
        ~body:(fun pb ->
          seq pb [ (fun pb -> basic pb ~insns:3 ()); (fun pb -> call pb ~insns:2 eval) ]));
  build b

(* SC: a spreadsheet — recalculation sweeps where each cell's operation
   repeats the type test of its neighbours (strong global correlation),
   plus an operator dispatch. *)
let sc () =
  let b = create ~name:"sc" ~seed:0x05C5 in
  let main = declare b ~name:"main" in
  let recalc = declare b ~name:"recalc_cell" in
  let update = declare b ~name:"update_display" in
  define b recalc (fun pb ->
      seq pb
        [
          (fun pb ->
            if_else pb
              ~behavior:
                (Behavior.Correlated
                   { bits = 1; table = [| false; true |]; noise = 0.03 })
              ~p_true:0.5
              ~then_:(fun pb -> basic pb ~insns:4 ())
              ~else_:(fun pb -> basic pb ~insns:3 ()));
          (fun pb ->
            switch pb ~insns:3
              ~cases:
                [
                  (0.45, fun pb -> basic pb ~insns:4 ());
                  (0.3, fun pb -> basic pb ~insns:6 ());
                  (0.25, fun pb -> basic pb ~insns:5 ());
                ]);
        ]);
  define b update (fun pb ->
      do_while pb ~trips:30
        ~body:(fun pb ->
          if_then pb ~p_true:0.2 ~then_:(fun pb -> basic pb ~insns:6 ())));
  define b main (fun pb ->
      driver pb ~trips:1500
        ~body:(fun pb ->
          seq pb
            [
              (fun pb ->
                do_while pb ~trips:24 ~body:(fun pb -> call pb ~insns:2 recalc));
              (fun pb -> call pb ~insns:2 update);
            ]));
  build b

let all =
  [
    ("compress", compress, "LZW; clustered hash-hit branch, rare reset path");
    ("eqntott", eqntott, "truth tables; hot biased comparator with correlation");
    ("espresso", espresso, "logic minimisation; varied-bias cube loops (Figure 1)");
    ("gcc", gcc, "compiler; many procedures, yyparse dispatch, flat biases");
    ("li", li, "Lisp interpreter; recursive eval, type dispatch, call-heavy");
    ("sc", sc, "spreadsheet; correlated type tests plus operator dispatch");
  ]
