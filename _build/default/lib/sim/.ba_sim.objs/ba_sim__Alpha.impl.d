lib/sim/alpha.ml: Alpha_bits Array Ba_exec Ba_predict Event Hashtbl Icache Return_stack
