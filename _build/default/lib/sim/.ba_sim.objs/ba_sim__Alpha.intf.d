lib/sim/alpha.mli: Ba_exec Hashtbl
