lib/sim/bep.mli: Ba_exec Ba_predict
