lib/sim/bep.ml: Ba_exec Ba_predict Ba_util Btb Event Likely_bits Pht Printf Return_stack Static_rule Two_level
