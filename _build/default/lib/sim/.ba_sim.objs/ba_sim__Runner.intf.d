lib/sim/runner.mli: Alpha Ba_exec Ba_layout Bep
