lib/sim/runner.ml: Alpha Ba_exec Ba_isa Bep List
