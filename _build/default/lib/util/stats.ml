type summary = {
  count : int;
  mean : float;
  variance : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | x :: _ as xs ->
    (* Welford's online algorithm keeps the variance numerically stable. *)
    let count = ref 0 and mean = ref 0.0 and m2 = ref 0.0 in
    let mn = ref x and mx = ref x in
    let step v =
      incr count;
      let delta = v -. !mean in
      mean := !mean +. (delta /. float_of_int !count);
      m2 := !m2 +. (delta *. (v -. !mean));
      if v < !mn then mn := v;
      if v > !mx then mx := v
    in
    List.iter step xs;
    { count = !count; mean = !mean; variance = !m2 /. float_of_int !count;
      min = !mn; max = !mx }

let mean xs = (summarize xs).mean

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty sample"
  | xs ->
    let n = List.length xs in
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
          acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int n)

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | xs ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let quantile_sites ~weights ~fraction =
  let counts = List.map snd weights in
  let total = List.fold_left ( + ) 0 counts in
  if total = 0 then 0
  else begin
    let sorted = List.sort (fun a b -> compare b a) counts in
    let target = fraction *. float_of_int total in
    let rec take n acc = function
      | [] -> n
      | c :: rest ->
        let acc = acc + c in
        if float_of_int acc >= target then n + 1 else take (n + 1) acc rest
    in
    take 0 0 sorted
  end

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b
let pct a b = 100.0 *. ratio a b
