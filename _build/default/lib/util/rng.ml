type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 finaliser: xor-shift / multiply mixing of the Weyl counter. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = int64 t in
  { state = s }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n land (n - 1) = 0 then bits30 t land (n - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let rec draw () =
      let r = bits30 t in
      let v = r mod n in
      if r - v + (n - 1) < 0 then draw () else v
    in
    draw ()
  end

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_weighted t a =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 a in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: weights must sum to a positive value";
  let x = float t total in
  let n = Array.length a in
  let rec scan i acc =
    if i = n - 1 then fst a.(i)
    else
      let acc = acc +. snd a.(i) in
      if x < acc then fst a.(i) else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
