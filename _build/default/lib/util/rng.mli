(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    workload, trace and experiment is reproducible from a single integer
    seed.  The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
    64-bit state advanced by a Weyl sequence and finalised with a
    variance-maximising mixer.  It is fast, has a full 2^64 period, and
    supports cheap splitting, which we use to give every branch site its own
    independent stream. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to
    derive per-site generators from a program-level seed. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** Next 30 uniformly distributed non-negative bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** Choice proportional to the (non-negative, not all zero) weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
