(** Small statistics helpers used by trace analysis and reporting. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** population variance *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Single-pass summary of a sample.  Raises [Invalid_argument] on the empty
    list. *)

val mean : float list -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]]: nearest-rank percentile of the
    sample. *)

val quantile_sites : weights:(int * int) list -> fraction:float -> int
(** Paper Table 2 "Q-x" columns: [quantile_sites ~weights ~fraction] is the
    smallest number of sites (given as [(site, count)] pairs) whose combined
    counts reach [fraction] of the total count, counting heaviest sites
    first.  Returns [0] when the total count is zero. *)

val ratio : int -> int -> float
(** [ratio a b] is [a / b] as a float, and [0.] when [b = 0]. *)

val pct : int -> int -> float
(** [pct a b] is [100 * a / b] as a float, and [0.] when [b = 0]. *)
