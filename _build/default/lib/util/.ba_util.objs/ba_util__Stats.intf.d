lib/util/stats.mli:
