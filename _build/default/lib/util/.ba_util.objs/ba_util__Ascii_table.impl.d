lib/util/ascii_table.ml: Array Buffer List Printf String
