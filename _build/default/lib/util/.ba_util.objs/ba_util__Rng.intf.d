lib/util/rng.mli:
