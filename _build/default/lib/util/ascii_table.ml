type align = Left | Right

type column = { title : string; align : align }

let column ?(align = Right) title = { title; align }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let check_width ncols row =
  if List.length row <> ncols then
    invalid_arg "Ascii_table.render: row width mismatch"

let widths columns rows =
  let w = Array.of_list (List.map (fun c -> String.length c.title) columns) in
  let update row =
    List.iteri (fun i cell -> if String.length cell > w.(i) then w.(i) <- String.length cell) row
  in
  List.iter update rows;
  w

let render_line columns w row =
  let cells =
    List.mapi (fun i (c, cell) -> pad c.align w.(i) cell)
      (List.combine columns row)
  in
  String.concat "  " cells

let separator w =
  String.concat "--" (Array.to_list (Array.map (fun n -> String.make n '-') w))

let render ~columns ~rows =
  let ncols = List.length columns in
  List.iter (check_width ncols) rows;
  let w = widths columns rows in
  let header = render_line columns w (List.map (fun c -> c.title) columns) in
  let body = List.map (render_line columns w) rows in
  String.concat "\n" (header :: separator w :: body) ^ "\n"

let render_grouped ~columns ~groups =
  let ncols = List.length columns in
  List.iter (fun (_, rows) -> List.iter (check_width ncols) rows) groups;
  let all_rows = List.concat_map snd groups in
  let w = widths columns all_rows in
  let header = render_line columns w (List.map (fun c -> c.title) columns) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (separator w);
  Buffer.add_char buf '\n';
  let emit_group (name, rows) =
    if name <> "" then begin
      Buffer.add_string buf ("-- " ^ name ^ " --");
      Buffer.add_char buf '\n'
    end;
    List.iter
      (fun row ->
        Buffer.add_string buf (render_line columns w row);
        Buffer.add_char buf '\n')
      rows
  in
  List.iter emit_group groups;
  Buffer.contents buf

let float_cell ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

let int_cell n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
