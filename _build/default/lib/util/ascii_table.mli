(** Plain-text table rendering for experiment reports.

    The benchmark harness prints tables in the same row/column layout as the
    paper; this module handles column sizing and alignment so that the
    reporting code only supplies cells. *)

type align = Left | Right

type column = { title : string; align : align }

val column : ?align:align -> string -> column
(** [column title] is a right-aligned column (numeric data is the common
    case); pass [~align:Left] for labels. *)

val render : columns:column list -> rows:string list list -> string
(** Render a table with a header row, a separator, and one line per row.
    Raises [Invalid_argument] if any row's width differs from the header's. *)

val render_grouped :
  columns:column list -> groups:(string * string list list) list -> string
(** Like {!render} but rows come in named groups; each group is preceded by a
    separator with its name, as the paper separates SPECfp92 / SPECint92 /
    Other. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point formatting, 3 decimals by default (the paper's CPI format). *)

val int_cell : int -> string
(** Decimal formatting with thousands separators, as in the paper's
    instruction counts. *)
