open Ba_ir

let lower ?(cond_counts = fun _ -> (1, 0)) p (decision : Decision.t) =
  (match Decision.validate p decision with
  | Error e -> invalid_arg ("Lower.lower: " ^ e)
  | Ok () -> ());
  let pos = Decision.position decision in
  let n = Array.length decision.order in
  let lower_block i b =
    let blk = Proc.block p b in
    let next = if i + 1 < n then Some decision.order.(i + 1) else None in
    let cont_of d = if next = Some d then Linear.Fall else Linear.Jump_to pos.(d) in
    let term =
      match blk.Block.term with
      | Term.Jump d -> if next = Some d then Linear.Lnone else Linear.Ljump pos.(d)
      | Term.Cond { on_true; on_false; _ } ->
        let forced = decision.neither.(b) in
        if forced = None && next = Some on_true then
          Linear.Lcond { taken_pos = pos.(on_false); taken_on = false; inserted_jump = None }
        else if forced = None && next = Some on_false then
          Linear.Lcond { taken_pos = pos.(on_true); taken_on = true; inserted_jump = None }
        else begin
          (* Neither target is (usable as) adjacent: one leg is taken, the
             other goes through an inserted unconditional jump.  A forced
             decision names the jump leg; unforced (compiler-natural)
             encoding branches to [on_true] and jumps to [on_false]. *)
          let jump_on_true =
            match forced with
            | Some Decision.Jump_on_true -> true
            | Some Decision.Jump_on_false | None -> false
            | Some Decision.Jump_heavier ->
              let w_true, w_false = cond_counts b in
              w_true >= w_false
          in
          if jump_on_true then
            Linear.Lcond
              { taken_pos = pos.(on_false); taken_on = false;
                inserted_jump = Some pos.(on_true) }
          else
            Linear.Lcond
              { taken_pos = pos.(on_true); taken_on = true;
                inserted_jump = Some pos.(on_false) }
        end
      | Term.Switch { targets } ->
        Linear.Lswitch
          {
            positions = Array.map (fun (d, _) -> pos.(d)) targets;
            weights = Array.map snd targets;
          }
      | Term.Call { callee; next = d } -> Linear.Lcall { callee; cont = cont_of d }
      | Term.Vcall { callees; next = d } ->
        Linear.Lvcall
          {
            callees = Array.map fst callees;
            weights = Array.map snd callees;
            cont = cont_of d;
          }
      | Term.Ret -> Linear.Lret
      | Term.Halt -> Linear.Lhalt
    in
    { Linear.src = b; insns = blk.Block.insns; term; addr = 0 }
  in
  let blocks = Array.mapi (fun i b -> lower_block i b) decision.order in
  { Linear.proc = p; decision; blocks }
