type t = {
  succ : int option array;
  pred : int option array;
  forbidden : Decision.jump_leg option array;
  pinned : bool array;
}

let create n =
  {
    succ = Array.make n None;
    pred = Array.make n None;
    forbidden = Array.make n None;
    pinned = Array.make n false;
  }

let copy t =
  {
    succ = Array.copy t.succ;
    pred = Array.copy t.pred;
    forbidden = Array.copy t.forbidden;
    pinned = Array.copy t.pinned;
  }

let chain_succ t b = t.succ.(b)
let chain_pred t b = t.pred.(b)

let rec head t b = match t.pred.(b) with None -> b | Some p -> head t p
let rec tail t b = match t.succ.(b) with None -> b | Some s -> tail t s

let same_chain t a b = head t a = head t b

let pin_head t b =
  if t.pred.(b) <> None then
    invalid_arg "Chain.pin_head: block already has a chain predecessor";
  t.pinned.(b) <- true

let can_link t ~src ~dst =
  t.succ.(src) = None
  && t.pred.(dst) = None
  && t.forbidden.(src) = None
  && (not t.pinned.(dst))
  && not (same_chain t src dst)

let link t ~src ~dst =
  if not (can_link t ~src ~dst) then
    invalid_arg (Printf.sprintf "Chain.link: cannot link %d -> %d" src dst);
  t.succ.(src) <- Some dst;
  t.pred.(dst) <- Some src

let unlink t ~src =
  match t.succ.(src) with
  | None -> invalid_arg "Chain.unlink: block has no chain successor"
  | Some dst ->
    t.succ.(src) <- None;
    t.pred.(dst) <- None

let forbid_fallthrough ?(jump_leg = Decision.Jump_heavier) t b =
  if t.succ.(b) <> None then
    invalid_arg "Chain.forbid_fallthrough: block already has a chain successor";
  t.forbidden.(b) <- Some jump_leg

let fallthrough_forbidden t b = t.forbidden.(b) <> None

let forced_neither t b = t.forbidden.(b)

let chains t =
  let n = Array.length t.succ in
  let result = ref [] in
  for b = n - 1 downto 0 do
    if t.pred.(b) = None then begin
      let rec walk acc x =
        match t.succ.(x) with None -> List.rev (x :: acc) | Some s -> walk (x :: acc) s
      in
      result := walk [] b :: !result
    end
  done;
  !result
