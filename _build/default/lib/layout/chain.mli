(** Chains of basic blocks, after Pettis & Hansen.

    A chain is a sequence of blocks threaded head-to-tail that will be laid
    out contiguously; each in-chain link is a fall-through edge of the final
    layout.  Every block starts as its own singleton chain.  Linking
    [src -> dst] is allowed when [src] is some chain's tail, [dst] is some
    chain's head, the two chains are distinct (no cycles), and [src] has not
    been marked "no fall-through" by a cost-model decision. *)

type t

val create : int -> t
(** [create n] makes the chain store for a procedure with [n] blocks. *)

val copy : t -> t
(** Independent snapshot; used by search algorithms to explore alternatives. *)

val chain_succ : t -> Ba_ir.Term.block_id -> Ba_ir.Term.block_id option
val chain_pred : t -> Ba_ir.Term.block_id -> Ba_ir.Term.block_id option

val head : t -> Ba_ir.Term.block_id -> Ba_ir.Term.block_id
(** First block of the chain containing the argument. *)

val tail : t -> Ba_ir.Term.block_id -> Ba_ir.Term.block_id

val same_chain : t -> Ba_ir.Term.block_id -> Ba_ir.Term.block_id -> bool

val can_link : t -> src:Ba_ir.Term.block_id -> dst:Ba_ir.Term.block_id -> bool

val link : t -> src:Ba_ir.Term.block_id -> dst:Ba_ir.Term.block_id -> unit
(** Raises [Invalid_argument] when [can_link] is false. *)

val pin_head : t -> Ba_ir.Term.block_id -> unit
(** Forbid any link {e into} this block, keeping it a chain head forever.
    Used for procedure entry blocks: nothing can fall through into the
    procedure's first address. *)

val unlink : t -> src:Ba_ir.Term.block_id -> unit
(** Undo a previous [link] whose source was [src].  Raises
    [Invalid_argument] if [src] has no chain successor.  Supports the
    backtracking search in the Try15 alignment algorithm. *)

val forbid_fallthrough : ?jump_leg:Decision.jump_leg -> t -> Ba_ir.Term.block_id -> unit
(** Record a cost-model decision that this block must end its chain (the
    "align neither edge, insert a jump" transformation), routing [jump_leg]
    (default [Jump_heavier]) through the inserted jump.  Raises
    [Invalid_argument] if the block already has a chain successor. *)

val fallthrough_forbidden : t -> Ba_ir.Term.block_id -> bool

val forced_neither : t -> Ba_ir.Term.block_id -> Decision.jump_leg option

val chains : t -> Ba_ir.Term.block_id list list
(** All chains, each listed head to tail, ordered by head id (deterministic;
    final ordering is the job of {!Chain_order}). *)
