(** Ordering chains into a final procedure layout.

    After chain formation, the chains themselves must be sequenced.  The
    paper's implementation study (§6.1) compared two strategies:

    - {b Weight_desc}: chains from most to least frequently executed, which
      Calder & Grunwald found to perform slightly better overall (it tends to
      satisfy the BT/FNT priorities anyway and improves locality);
    - {b Btfnt_precedence}: the Pettis & Hansen ordering, which places the
      target chain of a frequently taken conditional before its source chain
      so the branch becomes backward (predicted taken under BT/FNT).

    The chain containing the procedure entry always comes first. *)

type strategy = Weight_desc | Btfnt_precedence

val order :
  strategy ->
  Ba_ir.Proc.t ->
  weight:(Ba_ir.Term.block_id -> int) ->
  edge_weight:(Ba_cfg.Edge.t -> int) ->
  Ba_ir.Term.block_id list list ->
  Ba_ir.Term.block_id list list
(** [order strategy proc ~weight ~edge_weight chains] sequences [chains].
    [weight] gives a block's execution count and [edge_weight] an edge's
    traversal count (both typically from a {!Ba_cfg.Profile}). *)
