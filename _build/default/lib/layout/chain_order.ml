open Ba_ir

type strategy = Weight_desc | Btfnt_precedence

let chain_weight ~weight chain = List.fold_left (fun acc b -> acc + weight b) 0 chain

let split_entry chains =
  match List.partition (fun c -> List.mem Proc.entry c) chains with
  | [ entry_chain ], rest -> (entry_chain, rest)
  | _ -> invalid_arg "Chain_order: entry block missing or duplicated"

let order_weight_desc ~weight chains =
  let entry_chain, rest = split_entry chains in
  let keyed = List.map (fun c -> (chain_weight ~weight c, c)) rest in
  let sorted =
    List.stable_sort (fun (w1, _) (w2, _) -> compare w2 w1) keyed |> List.map snd
  in
  entry_chain :: sorted

(* Pettis & Hansen precedence ordering for BT/FNT.

   For every conditional block [s] whose taken leg (a leg that is not the
   in-chain fall-through) goes to [d] in another chain, placing [d]'s chain
   before [s]'s chain makes the branch backward (predicted taken), at the
   price of mispredicting the fall-through leg; placing it after does the
   opposite.  Comparing the two costs with the paper's Table 1 numbers
   (fall-through 1, predicted-taken 2, mispredict 5) yields: prefer
   target-before-source iff 4 * w_fallthrough < 3 * w_taken.  We build a
   weighted precedence relation from these preferences and sequence chains
   greedily, always keeping the entry chain first. *)
let order_btfnt p ~weight ~edge_weight chains =
  let entry_chain, rest = split_entry chains in
  let all = entry_chain :: rest in
  let chain_ids = List.mapi (fun i c -> (i, c)) all in
  let chain_of_block = Hashtbl.create 64 in
  List.iter
    (fun (i, c) -> List.iter (fun b -> Hashtbl.replace chain_of_block b i) c)
    chain_ids;
  let nchains = List.length all in
  (* prec.(a).(b) = weight of the preference "chain a before chain b". *)
  let prec = Array.make_matrix nchains nchains 0 in
  let fallthrough_succ = Hashtbl.create 64 in
  List.iter
    (fun (_, c) ->
      let rec walk = function
        | a :: (b :: _ as rest) ->
          Hashtbl.replace fallthrough_succ a b;
          walk rest
        | _ -> ()
      in
      walk c)
    chain_ids;
  Array.iteri
    (fun s (blk : Block.t) ->
      match blk.term with
      | Term.Cond { on_true; on_false; _ } ->
        let ft = try Some (Hashtbl.find fallthrough_succ s) with Not_found -> None in
        let w_ft =
          match ft with
          | Some d when d = on_true -> edge_weight { Ba_cfg.Edge.src = s; dst = d; kind = On_true }
          | Some d when d = on_false ->
            edge_weight { Ba_cfg.Edge.src = s; dst = d; kind = On_false }
          | _ -> 0
        in
        let taken_legs =
          List.filter_map
            (fun (d, kind) ->
              if ft = Some d then None
              else Some (d, edge_weight { Ba_cfg.Edge.src = s; dst = d; kind }))
            [ (on_true, Ba_cfg.Edge.On_true); (on_false, Ba_cfg.Edge.On_false) ]
        in
        let cs = Hashtbl.find chain_of_block s in
        List.iter
          (fun (d, w_taken) ->
            let cd = Hashtbl.find chain_of_block d in
            if cd <> cs then
              if 4 * w_ft < 3 * w_taken then
                prec.(cd).(cs) <- prec.(cd).(cs) + w_taken
              else prec.(cs).(cd) <- prec.(cs).(cd) + max w_ft w_taken)
          taken_legs
      | Term.Jump _ | Term.Switch _ | Term.Call _ | Term.Vcall _ | Term.Ret
      | Term.Halt -> ())
    p.Proc.blocks;
  (* Greedy sequencing: place the entry chain, then repeatedly pick the
     chain whose satisfied-precedence score is highest. *)
  let placed = Array.make nchains false in
  let chains_arr = Array.of_list all in
  let weights = Array.map (chain_weight ~weight) chains_arr in
  let result = ref [ 0 ] in
  placed.(0) <- true;
  for _ = 2 to nchains do
    let best = ref None in
    for c = 0 to nchains - 1 do
      if not placed.(c) then begin
        let score = ref 0 in
        for o = 0 to nchains - 1 do
          if placed.(o) then score := !score + prec.(o).(c) - prec.(c).(o)
          else score := !score + prec.(c).(o)
        done;
        let candidate = (!score, weights.(c), -c) in
        match !best with
        | Some (_, b) when compare b candidate >= 0 -> ()
        | _ -> best := Some (c, candidate)
      end
    done;
    match !best with
    | Some (c, _) ->
      placed.(c) <- true;
      result := c :: !result
    | None -> ()
  done;
  List.rev_map (fun i -> chains_arr.(i)) !result

let order strategy p ~weight ~edge_weight chains =
  match strategy with
  | Weight_desc -> order_weight_desc ~weight chains
  | Btfnt_precedence -> order_btfnt p ~weight ~edge_weight chains
