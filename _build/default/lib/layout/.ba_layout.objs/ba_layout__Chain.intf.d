lib/layout/chain.mli: Ba_ir Decision
