lib/layout/image.ml: Array Ba_cfg Ba_ir Decision Linear Lower Printf
