lib/layout/chain.ml: Array Decision List Printf
