lib/layout/chain_order.mli: Ba_cfg Ba_ir
