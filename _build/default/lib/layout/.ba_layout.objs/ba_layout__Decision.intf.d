lib/layout/decision.mli: Ba_ir Format
