lib/layout/image.mli: Ba_cfg Ba_ir Decision Linear
