lib/layout/linear.ml: Array Ba_ir Decision Fmt Printf
