lib/layout/lower.ml: Array Ba_ir Block Decision Linear Proc Term
