lib/layout/lower.mli: Ba_ir Decision Linear
