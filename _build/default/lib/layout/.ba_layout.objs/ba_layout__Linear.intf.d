lib/layout/linear.mli: Ba_ir Decision Format
