lib/layout/decision.ml: Array Ba_ir Fmt Fun List Option Printf String
