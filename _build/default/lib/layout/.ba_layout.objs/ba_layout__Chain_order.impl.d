lib/layout/chain_order.ml: Array Ba_cfg Ba_ir Block Hashtbl List Proc Term
