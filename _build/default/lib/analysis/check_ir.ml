open Ba_ir

let check_proc ~proc_id (p : Proc.t) =
  let n = Proc.n_blocks p in
  let diags = ref [] in
  let at block sev ~rule fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          { Diagnostic.severity = sev; rule;
            loc = Diagnostic.Block { proc = proc_id; proc_name = p.Proc.name; block };
            message }
          :: !diags)
      fmt
  in
  let in_range b = b >= 0 && b < n in
  let all_in_range = ref true in
  Array.iteri
    (fun src (blk : Block.t) ->
      let kind = Term.kind_name blk.Block.term in
      List.iter
        (fun d ->
          if not (in_range d) then begin
            all_in_range := false;
            at src Diagnostic.Error ~rule:"ir/successor-range"
              "%s successor %d out of range (procedure has %d blocks)" kind d n
          end)
        (Term.successors blk.Block.term);
      match blk.Block.term with
      | Term.Jump d -> if d = src then
          at src Diagnostic.Error ~rule:"ir/self-jump"
            "unconditional jump to itself: control can never leave this block"
      | Term.Cond { on_true; on_false; behavior } ->
        if on_true = on_false then
          at src Diagnostic.Error ~rule:"ir/cond-equal-targets"
            "conditional with equal targets (both b%d)" on_true;
        (match Behavior.validate behavior with
        | Ok () -> ()
        | Error e -> at src Diagnostic.Error ~rule:"ir/bad-behavior" "%s" e);
        (match behavior with
        | Behavior.Always v ->
          at src Diagnostic.Info ~rule:"ir/cond-constant"
            "conditional always resolves %b: edge to b%d is dead" v
            (if v then on_false else on_true)
        | _ -> ())
      | Term.Switch { targets } ->
        if Array.length targets = 0 then
          at src Diagnostic.Error ~rule:"ir/switch-empty" "switch with no targets"
        else begin
          Array.iteri
            (fun i (d, w) ->
              if w < 0.0 then
                at src Diagnostic.Error ~rule:"ir/switch-negative-weight"
                  "case %d (target b%d) has negative weight %g" i d w)
            targets;
          if Array.for_all (fun (_, w) -> w = 0.0) targets then
            at src Diagnostic.Error ~rule:"ir/switch-all-zero"
              "all %d switch weights are zero" (Array.length targets)
          else
            Array.iteri
              (fun i (d, w) ->
                if w = 0.0 then
                  at src Diagnostic.Warning ~rule:"ir/switch-dead-case"
                    "case %d (target b%d) has zero weight and never executes" i d)
              targets;
          let seen = Hashtbl.create 8 in
          Array.iter
            (fun (d, _) ->
              if Hashtbl.mem seen d then begin
                if Hashtbl.find seen d then begin
                  Hashtbl.replace seen d false;
                  at src Diagnostic.Info ~rule:"ir/switch-duplicate-target"
                    "target b%d appears in several cases" d
                end
              end
              else Hashtbl.add seen d true)
            targets
        end
      | Term.Vcall { callees; _ } ->
        if Array.length callees = 0 then
          at src Diagnostic.Error ~rule:"ir/vcall-empty" "vcall with no callees"
        else begin
          Array.iteri
            (fun i (callee, w) ->
              if w < 0.0 then
                at src Diagnostic.Error ~rule:"ir/vcall-negative-weight"
                  "callee %d (p%d) has negative weight %g" i callee w)
            callees;
          if Array.for_all (fun (_, w) -> w = 0.0) callees then
            at src Diagnostic.Warning ~rule:"ir/vcall-all-zero"
              "all %d vcall weights are zero: dispatch degenerates to the last callee"
              (Array.length callees)
          else
            Array.iteri
              (fun i (callee, w) ->
                if w = 0.0 then
                  at src Diagnostic.Warning ~rule:"ir/vcall-dead-callee"
                    "callee %d (p%d) has zero weight and is never dispatched" i callee)
              callees
        end
      | Term.Call _ | Term.Ret | Term.Halt -> ())
    p.Proc.blocks;
  (* Graph-shaped rules need every successor id in range. *)
  if !all_in_range then begin
    let seen = Array.make n false in
    let rec visit b =
      if not seen.(b) then begin
        seen.(b) <- true;
        List.iter visit (Term.successors p.Proc.blocks.(b).Block.term)
      end
    in
    visit Proc.entry;
    Array.iteri
      (fun b reached ->
        if not reached then
          at b Diagnostic.Error ~rule:"ir/unreachable-block"
            "block (%s) unreachable from the entry block"
            (Term.kind_name p.Proc.blocks.(b).Block.term))
      seen;
    (* Jump-only cycles: once entered, control revisits the same blocks
       forever without a single branch decision.  Self-jumps are reported by
       their own rule above. *)
    let jump_succ b =
      match p.Proc.blocks.(b).Block.term with Term.Jump d -> Some d | _ -> None
    in
    let state = Array.make n `White in
    let rec walk path b =
      match state.(b) with
      | `Done -> ()
      | `On_path ->
        (* Reconstruct the cycle: the suffix of [path] up to [b]. *)
        let rec suffix = function
          | [] -> []
          | x :: rest -> if x = b then [ x ] else x :: suffix rest
        in
        let members = suffix path in
        if List.length members > 1 then
          at b Diagnostic.Error ~rule:"ir/jump-cycle"
            "jump-only cycle [%s]: control can never leave it"
            (String.concat " -> "
               (List.rev_map (fun x -> Printf.sprintf "b%d" x) members))
      | `White -> begin
        match jump_succ b with
        | None -> state.(b) <- `Done
        | Some d ->
          state.(b) <- `On_path;
          walk (b :: path) d;
          state.(b) <- `Done
      end
    in
    for b = 0 to n - 1 do
      if state.(b) = `White && jump_succ b <> None then walk [] b
    done
  end;
  List.rev !diags

let check_program (program : Program.t) =
  let n = Program.n_procs program in
  let diags = ref [] in
  let at ~proc ~block sev ~rule fmt =
    let proc_name = (Program.proc program proc).Proc.name in
    Printf.ksprintf
      (fun message ->
        diags :=
          { Diagnostic.severity = sev; rule;
            loc = Diagnostic.Block { proc; proc_name; block }; message }
          :: !diags)
      fmt
  in
  let per_proc =
    List.concat
      (List.init n (fun pid -> check_proc ~proc_id:pid (Program.proc program pid)))
  in
  Program.iter_blocks program (fun pid b blk ->
      let check_callee callee =
        if callee < 0 || callee >= n then
          at ~proc:pid ~block:b Diagnostic.Error ~rule:"ir/dangling-callee"
            "callee p%d out of range (program has %d procedures)" callee n
      in
      match blk.Block.term with
      | Term.Call { callee; _ } -> check_callee callee
      | Term.Vcall { callees; _ } -> Array.iter (fun (c, _) -> check_callee c) callees
      | Term.Halt ->
        if pid <> program.Program.main then
          at ~proc:pid ~block:b Diagnostic.Error ~rule:"ir/halt-outside-main"
            "Halt outside the main procedure (main is p%d)" program.Program.main
      | Term.Jump _ | Term.Cond _ | Term.Switch _ | Term.Ret -> ());
  (* Call-graph reachability from main, following only in-range callees. *)
  let reachable = Array.make n false in
  let rec visit pid =
    if pid >= 0 && pid < n && not reachable.(pid) then begin
      reachable.(pid) <- true;
      Array.iter
        (fun (blk : Block.t) ->
          match blk.Block.term with
          | Term.Call { callee; _ } -> visit callee
          | Term.Vcall { callees; _ } -> Array.iter (fun (c, _) -> visit c) callees
          | _ -> ())
        (Program.proc program pid).Proc.blocks
    end
  in
  visit program.Program.main;
  Array.iteri
    (fun pid r ->
      if not r then
        diags :=
          Diagnostic.make Diagnostic.Warning ~rule:"ir/unreachable-proc"
            ~loc:
              (Diagnostic.Proc
                 { proc = pid; proc_name = (Program.proc program pid).Proc.name })
            "procedure is never called (unreachable in the call graph from main p%d)"
            program.Program.main
          :: !diags)
    reachable;
  per_proc @ List.rev !diags
