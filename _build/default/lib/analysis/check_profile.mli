(** Stage 2: profile flow conservation.

    A profile collected by the interpreter must obey Kirchhoff-style
    conservation laws: a conditional's true/false resolutions sum to its
    visit count, a switch's per-case counts sum to its visit count, and
    every block's visit count is explained by the traversals of its
    incoming edges (plus, for procedure entry blocks, the calls into the
    procedure; plus, for main's entry, the program start).

    Call-continuation edges only bound visits from above (a callee that
    never returns — budget truncation mid-call — legally leaves the
    continuation unvisited), and vcall dispatch counts are not recorded
    per-callee, so callee entries get an upper bound from the dispatching
    sites' visit counts.  Exactly one control transfer program-wide may be
    in flight when the step budget truncates a run, so a total visit
    deficit of one across the whole program is tolerated; anything beyond
    that is a conservation error.

    Rules: [profile/negative-count], [profile/cond-resolution],
    [profile/switch-resolution], [profile/flow-conservation],
    [profile/entry-count]. *)

val check : Ba_cfg.Profile.t -> Diagnostic.t list
