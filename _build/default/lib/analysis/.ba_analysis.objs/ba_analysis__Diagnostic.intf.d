lib/analysis/diagnostic.mli: Ba_ir Format
