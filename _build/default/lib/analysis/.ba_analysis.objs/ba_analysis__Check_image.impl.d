lib/analysis/check_image.ml: Array Ba_ir Ba_layout Diagnostic Image Linear List Proc Program
