lib/analysis/check_image.mli: Ba_layout Diagnostic
