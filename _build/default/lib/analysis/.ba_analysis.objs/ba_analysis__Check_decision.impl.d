lib/analysis/check_decision.ml: Array Ba_ir Ba_layout Block Diagnostic List Printf Proc Term
