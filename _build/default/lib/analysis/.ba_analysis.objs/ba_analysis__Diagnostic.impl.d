lib/analysis/diagnostic.ml: Ba_ir Fmt List Printf
