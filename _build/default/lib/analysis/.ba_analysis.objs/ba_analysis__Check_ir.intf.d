lib/analysis/check_ir.mli: Ba_ir Diagnostic
