lib/analysis/check_decision.mli: Ba_ir Ba_layout Diagnostic
