lib/analysis/check_linear.ml: Array Ba_ir Ba_layout Block Decision Diagnostic Linear List Printf Proc Term
