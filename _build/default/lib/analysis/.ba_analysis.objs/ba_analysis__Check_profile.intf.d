lib/analysis/check_profile.mli: Ba_cfg Diagnostic
