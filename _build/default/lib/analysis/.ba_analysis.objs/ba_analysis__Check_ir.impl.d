lib/analysis/check_ir.ml: Array Ba_ir Behavior Block Diagnostic Hashtbl List Printf Proc Program String Term
