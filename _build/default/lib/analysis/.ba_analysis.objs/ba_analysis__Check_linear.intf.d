lib/analysis/check_linear.mli: Ba_ir Ba_layout Diagnostic
