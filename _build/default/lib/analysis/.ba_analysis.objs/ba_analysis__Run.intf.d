lib/analysis/run.mli: Ba_cfg Ba_core Ba_ir Ba_layout Diagnostic
