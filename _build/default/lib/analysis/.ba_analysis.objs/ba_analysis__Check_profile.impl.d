lib/analysis/check_profile.ml: Array Ba_cfg Ba_ir Block Diagnostic List Printf Proc Program Term
