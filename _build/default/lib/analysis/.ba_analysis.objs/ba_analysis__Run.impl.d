lib/analysis/run.ml: Array Ba_cfg Ba_core Ba_exec Ba_ir Ba_layout Check_decision Check_image Check_ir Check_linear Check_profile Diagnostic List
