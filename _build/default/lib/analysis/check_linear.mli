(** Stage 4: lowered (linear) code.

    Each lowered layout block must round-trip to its semantic block: pure
    fall-throughs target exactly the next layout position, a conditional's
    taken/fall legs biject with the IR terminator's true/false edges (with
    [taken_on] naming the sense correctly after any inversion), inserted
    unconditional jumps appear only where the decision forces them or no
    successor is adjacent, forced "neither" decisions are honoured and
    routed through the demanded leg, switch position/weight tables mirror
    the IR target table, and call continuations fall through exactly when
    adjacent.  A jump to the very next layout position is reported as
    redundant — the lowering never needs one.

    Rules: [linear/invalid-decision], [linear/block-count],
    [linear/src-mismatch], [linear/off-end], [linear/position-range],
    [linear/terminator-kind], [linear/fallthrough-mismatch],
    [linear/cond-edges], [linear/jump-not-demanded],
    [linear/forced-ignored], [linear/forced-leg], [linear/redundant-jump],
    [linear/switch-mismatch], [linear/call-mismatch]. *)

val check : proc_id:Ba_ir.Term.proc_id -> Ba_layout.Linear.t -> Diagnostic.t list
(** Assumes the linear code's decision is a valid permutation; if it is
    not, a single [linear/invalid-decision] error is returned instead
    (stage 3 reports the details). *)
