(** Execution profiles.

    A profile records, per basic block, how often the block executed and how
    its terminator resolved.  Profiles are collected at the *semantic* level
    (condition held / failed, switch case index), so the same profile
    describes the program under any code layout — exactly the property the
    alignment algorithms need, since they consume a profile gathered on the
    original layout and produce a new layout.

    The counters are mutable and updated by the interpreter
    ([Ba_exec.Engine]); everything else reads them. *)

type t

val create : Ba_ir.Program.t -> t
(** Fresh all-zero profile shaped like the program. *)

val program : t -> Ba_ir.Program.t

(** {1 Recording} *)

val record_visit : t -> Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> unit
val record_cond : t -> Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> bool -> unit

val record_switch : t -> Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> int -> unit
(** The [int] is the index into the switch's target array. *)

(** {1 Queries} *)

val visits : t -> Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> int

val cond_counts : t -> Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> int * int
(** [(times condition held, times it failed)].  Raises [Invalid_argument] if
    the block is not a conditional. *)

val switch_counts : t -> Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> int array
(** Per-case resolution counts of a switch block, indexed like its target
    array.  Raises [Invalid_argument] if the block is not a switch. *)

val edge_weight : t -> Ba_ir.Term.proc_id -> Edge.t -> int
(** Traversal count of one edge.  [Flow] edges are traversed once per block
    visit; [Case] edges use the recorded per-case counts. *)

val alignable_edges :
  t -> Ba_ir.Term.proc_id -> (Edge.t * int) list
(** The procedure's alignable edges paired with their weights, sorted by
    decreasing weight (ties broken by edge order, so the result is
    deterministic).  This is the worklist all three alignment algorithms
    start from. *)

val likely_taken : t -> Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> bool
(** Profile-majority direction of a conditional: [true] if the condition
    held at least as often as not.  Used to set the LIKELY architecture's
    branch hint bits, as with profile-driven compilation. *)

val merge : t list -> t
(** Combine profiles of the {e same} program (e.g. several training inputs,
    §4: "If more profiles are used or combined for a program ...") by
    summing all counters.  Raises [Invalid_argument] on an empty list or on
    profiles of different programs. *)

val scale_to_float : int -> float
(** Convenience conversion used by cost models. *)
