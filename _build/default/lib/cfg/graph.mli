(** Graph utilities over a procedure's control-flow graph. *)

val dfs_preorder : Ba_ir.Proc.t -> Ba_ir.Term.block_id array
(** Depth-first preorder from the entry block, following successors in
    terminator order.  Only reachable blocks appear (validation guarantees
    all are). *)

val back_edges : Ba_ir.Proc.t -> (Ba_ir.Term.block_id * Ba_ir.Term.block_id) list
(** Retreating edges of the DFS: [(src, dst)] where [dst] is an ancestor of
    [src] on the DFS stack (or [src] itself for self-loops).  Alignment
    heuristics use these as "this taken branch will likely point backward"
    hints before final addresses are known. *)

val loop_depth : Ba_ir.Proc.t -> int array
(** A simple nesting-depth estimate per block: the number of back-edge
    natural loops whose body contains the block. *)

val dot :
  ?profile:(Profile.t * Ba_ir.Term.proc_id) -> Ba_ir.Proc.t -> string
(** GraphViz rendering of the CFG, with edge weights when a profile is
    supplied; handy for debugging workloads and for the examples. *)
