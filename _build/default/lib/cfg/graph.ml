open Ba_ir

let successors p b = Term.successors (Proc.block p b).Block.term

let dfs_preorder p =
  let n = Proc.n_blocks p in
  let seen = Array.make n false in
  let order = ref [] in
  let rec visit b =
    if not seen.(b) then begin
      seen.(b) <- true;
      order := b :: !order;
      List.iter visit (successors p b)
    end
  in
  visit Proc.entry;
  Array.of_list (List.rev !order)

let back_edges p =
  let n = Proc.n_blocks p in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let state = Array.make n 0 in
  let edges = ref [] in
  let rec visit b =
    state.(b) <- 1;
    List.iter
      (fun s ->
        if state.(s) = 1 then edges := (b, s) :: !edges
        else if state.(s) = 0 then visit s)
      (successors p b);
    state.(b) <- 2
  in
  visit Proc.entry;
  List.rev !edges

let loop_depth p =
  let n = Proc.n_blocks p in
  let preds = Proc.predecessors p in
  let depth = Array.make n 0 in
  (* For each back edge (tail, header), the natural loop body is the header
     plus every block that reaches the tail without passing through the
     header. *)
  let mark (tail, header) =
    let in_loop = Array.make n false in
    in_loop.(header) <- true;
    let rec pull b =
      if not in_loop.(b) then begin
        in_loop.(b) <- true;
        List.iter pull preds.(b)
      end
    in
    pull tail;
    Array.iteri (fun b inside -> if inside then depth.(b) <- depth.(b) + 1) in_loop
  in
  List.iter mark (back_edges p);
  depth

let dot ?profile p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph cfg {\n  node [shape=box];\n";
  Array.iteri
    (fun b (blk : Block.t) ->
      let extra =
        match profile with
        | Some (prof, pid) -> Printf.sprintf "\\nvisits=%d" (Profile.visits prof pid b)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  b%d [label=\"b%d (%d)%s\"];\n" b b blk.insns extra))
    p.Proc.blocks;
  List.iter
    (fun (e : Edge.t) ->
      let label =
        match profile with
        | Some (prof, pid) -> Printf.sprintf " [label=\"%d\"]" (Profile.edge_weight prof pid e)
        | None -> (
          match e.kind with
          | Edge.On_true -> " [label=\"T\"]"
          | Edge.On_false -> " [label=\"F\"]"
          | Edge.Flow -> ""
          | Edge.Case i -> Printf.sprintf " [label=\"case %d\"]" i)
      in
      Buffer.add_string buf (Printf.sprintf "  b%d -> b%d%s;\n" e.src e.dst label))
    (Edge.of_proc p);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
