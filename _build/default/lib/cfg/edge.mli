(** Control-flow edges.

    An edge is identified by its source block and its kind; since a
    conditional branch has distinct targets (enforced by {!Ba_ir.Proc.validate})
    this identification is unique for all alignable edges. *)

type kind =
  | On_true  (** the conditional's condition held *)
  | On_false  (** the conditional's condition failed *)
  | Flow
      (** the single successor of a [Jump] block or the continuation of a
          [Call]/[Vcall] block *)
  | Case of int  (** switch edge, by target index; never alignable *)

type t = { src : Ba_ir.Term.block_id; dst : Ba_ir.Term.block_id; kind : kind }

val compare : t -> t -> int

val is_alignable : t -> bool
(** The paper aligns only edges out of blocks with out-degree one or two:
    conditional legs and fall-through/jump successors.  Switch (indirect)
    edges are never alignable. *)

val of_proc : Ba_ir.Proc.t -> t list
(** Every edge of the procedure, in block order. *)

val pp : Format.formatter -> t -> unit
