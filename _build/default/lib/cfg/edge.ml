type kind = On_true | On_false | Flow | Case of int

type t = { src : Ba_ir.Term.block_id; dst : Ba_ir.Term.block_id; kind : kind }

let compare = Stdlib.compare

let is_alignable e =
  match e.kind with On_true | On_false | Flow -> true | Case _ -> false

let of_block src (blk : Ba_ir.Block.t) =
  match blk.term with
  | Ba_ir.Term.Jump dst -> [ { src; dst; kind = Flow } ]
  | Ba_ir.Term.Cond { on_true; on_false; _ } ->
    [ { src; dst = on_true; kind = On_true }; { src; dst = on_false; kind = On_false } ]
  | Ba_ir.Term.Switch { targets } ->
    Array.to_list (Array.mapi (fun i (dst, _) -> { src; dst; kind = Case i }) targets)
  | Ba_ir.Term.Call { next; _ } | Ba_ir.Term.Vcall { next; _ } ->
    [ { src; dst = next; kind = Flow } ]
  | Ba_ir.Term.Ret | Ba_ir.Term.Halt -> []

let of_proc p =
  List.concat
    (Array.to_list (Array.mapi of_block p.Ba_ir.Proc.blocks))

let pp_kind ppf = function
  | On_true -> Fmt.string ppf "T"
  | On_false -> Fmt.string ppf "F"
  | Flow -> Fmt.string ppf "flow"
  | Case i -> Fmt.pf ppf "case%d" i

let pp ppf e = Fmt.pf ppf "b%d -%a-> b%d" e.src pp_kind e.kind e.dst
