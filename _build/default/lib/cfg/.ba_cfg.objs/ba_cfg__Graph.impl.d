lib/cfg/graph.ml: Array Ba_ir Block Buffer Edge List Printf Proc Profile Term
