lib/cfg/edge.mli: Ba_ir Format
