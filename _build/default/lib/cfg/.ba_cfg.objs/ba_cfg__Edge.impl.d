lib/cfg/edge.ml: Array Ba_ir Fmt List Stdlib
