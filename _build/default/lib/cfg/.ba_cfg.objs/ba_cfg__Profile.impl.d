lib/cfg/profile.ml: Array Ba_ir Block Edge List Proc Program Term
