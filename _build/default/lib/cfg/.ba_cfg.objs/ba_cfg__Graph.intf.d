lib/cfg/graph.mli: Ba_ir Profile
