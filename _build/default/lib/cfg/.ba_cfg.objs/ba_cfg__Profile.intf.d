lib/cfg/profile.mli: Ba_ir Edge
