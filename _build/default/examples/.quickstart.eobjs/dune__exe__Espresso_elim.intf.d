examples/espresso_elim.mli:
