examples/predictor_tour.ml: Array Ba_core Ba_exec Ba_layout Ba_predict Ba_sim Ba_util Ba_workloads Fmt List Printf Sys
