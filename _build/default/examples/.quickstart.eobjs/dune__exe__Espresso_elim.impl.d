examples/espresso_elim.ml: Array Ba_cfg Ba_core Ba_exec Ba_ir Ba_layout Behavior Block Fmt List Proc Program String Term
