examples/alvinn_loop.ml: Ba_cfg Ba_core Ba_exec Ba_ir Ba_layout Behavior Block Fmt Proc Program Term
