examples/quickstart.ml: Array Ba_cfg Ba_core Ba_exec Ba_ir Ba_layout Ba_sim Ba_util Ba_workloads Fmt List Program
