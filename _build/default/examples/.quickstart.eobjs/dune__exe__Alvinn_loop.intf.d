examples/alvinn_loop.mli:
