examples/quickstart.mli:
