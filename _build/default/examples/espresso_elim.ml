(* Figure 1 of the paper: the elim_lowering fragment from ESPRESSO.

     dune exec examples/espresso_elim.exe

   The original layout leaves three hot edges taken (25->31, 31->25 and
   27->29); the LIKELY architecture predicts them (misfetch each), the
   FALLTHROUGH architecture mispredicts all three, and BT/FNT mispredicts
   the two forward ones.  Branch alignment lays 31 before 25 and 29 before
   27, turning the hot path into fall-throughs and backward branches —
   after which every static architecture predicts it.  This example
   reconstructs the fragment with the paper's block sizes, reports the
   branch execution cost per architecture for the original, Greedy and Try15
   layouts, and prints the layouts themselves. *)

open Ba_ir

(* Block ids follow the paper's numbering: index 0 is the subroutine entry
   (node 21 in the figure), and 25..32 map to ids 1..8. *)
let names = [| "21"; "25"; "26"; "27"; "28"; "29"; "30"; "31"; "32" |]

let n25 = 1
and n26 = 2
and n27 = 3
and n28 = 4
and n29 = 5
and n30 = 6
and n31 = 7
and n32 = 8

let fragment =
  let cond ?(insns = 4) on_true on_false p =
    Block.make ~insns (Term.Cond { on_true; on_false; behavior = Behavior.Bias p })
  in
  let jump ?(insns = 4) d = Block.make ~insns (Term.Jump d) in
  Proc.make ~name:"elim_lowering"
    [|
      (* 21 *) jump ~insns:11 n25;
      (* 25: hot leg to 31 (taken in the original layout) *)
      cond ~insns:3 n26 n31 0.06;
      (* 26 *) jump ~insns:5 n27;
      (* 27: hot leg to 29 (taken, forward in the original layout) *)
      cond ~insns:4 n28 n29 0.2;
      (* 28: two modest legs; the transformed code needs an inserted jump *)
      cond ~insns:5 n30 n32 0.5;
      (* 29 *) jump ~insns:1 n30;
      (* 30: closes the outer loop *)
      jump ~insns:7 n25;
      (* 31: hot loop back to 25 *)
      cond ~insns:3 n25 n32 0.94;
      (* 32 *) Block.make ~insns:8 Term.Ret;
    |]

let program =
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:2
          (Term.Cond { on_true = 1; on_false = 2; behavior = Behavior.Loop 2000 });
        Block.make ~insns:1 (Term.Call { callee = 1; next = 0 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"espresso_elim" ~seed:0xE5 [| main; fragment |]

let pid = 1 (* the fragment's procedure id *)

let () =
  let profile = Ba_exec.Engine.profile_program program in
  Fmt.pr "elim_lowering, profiled (%d invocations):@.%s@."
    (Ba_cfg.Profile.visits profile pid 0)
    (Ba_cfg.Graph.dot ~profile:(profile, pid) fragment);

  let visits b = Ba_cfg.Profile.visits profile pid b in
  let cond_counts b = Ba_cfg.Profile.cond_counts profile pid b in
  let cost ~arch decision =
    let linear = Ba_layout.Lower.lower ~cond_counts fragment decision in
    Ba_core.Layout_cost.branch_cost ~arch ~visits ~cond_counts linear
  in
  let layout_of algo arch =
    Ba_core.Align.align_proc algo ~arch profile pid
  in
  let show_order (d : Ba_layout.Decision.t) =
    String.concat " " (Array.to_list (Array.map (fun b -> names.(b)) d.order))
  in
  Fmt.pr "Branch execution cost of the fragment (cycles; lower is better):@.";
  Fmt.pr "%-12s %12s %12s %12s@." "architecture" "Original" "Greedy" "Try15";
  List.iter
    (fun arch ->
      let orig = cost ~arch (Ba_layout.Decision.identity fragment) in
      let greedy = cost ~arch (layout_of Ba_core.Align.Greedy arch) in
      let try15 = cost ~arch (layout_of (Ba_core.Align.Tryn 15) arch) in
      Fmt.pr "%-12s %12.0f %12.0f %12.0f@."
        (Ba_core.Cost_model.arch_name arch)
        orig greedy try15)
    Ba_core.Cost_model.[ Fallthrough; Btfnt; Likely ];
  Fmt.pr "@.Original layout : %s@." (show_order (Ba_layout.Decision.identity fragment));
  List.iter
    (fun arch ->
      Fmt.pr "Try15 (%s)%s: %s@."
        (Ba_core.Cost_model.arch_name arch)
        (String.make (max 0 (12 - String.length (Ba_core.Cost_model.arch_name arch))) ' ')
        (show_order (layout_of (Ba_core.Align.Tryn 15) arch)))
    Ba_core.Cost_model.[ Fallthrough; Btfnt; Likely ];
  Fmt.pr
    "@.As in the paper, the aligned layouts place 31 ahead of 25 and 29 ahead of@.\
     27 (or make them fall-throughs outright), so the hot edges stop costing@.\
     mispredictions on every static architecture.@."
