(* Figures 2 and 3 of the paper: loops and branch alignment.

     dune exec examples/alvinn_loop.exe

   Part 1 (Figure 2) — ALVINN's input_hidden: a single 11-instruction basic
   block that branches back to itself accounts for nearly all branches of
   the routine.  Under FALLTHROUGH the loop edge is mispredicted every
   iteration (5 cycles with Table 1); the Cost/Try15 transformation inverts
   the branch sense and inserts an unconditional jump, cutting each
   iteration to 3 cycles.

   Part 2 (Figure 3) — a three-block loop the Greedy algorithm cannot
   rotate.  With the paper's edge weights (8999 iterations of the loop, one
   exit), the original layout costs 36,002 cycles under the LIKELY model and
   the paper's transformed layout costs ~27,004 (ours evaluates its variant
   at 27,003); Try15 finds a rotation that is better still. *)

open Ba_ir

(* -- Part 1: the self-loop ---------------------------------------------- *)

let self_loop_program =
  let main =
    Proc.make ~name:"input_hidden"
      [|
        Block.make ~insns:6 (Term.Jump 1);
        Block.make ~insns:11
          (Term.Cond { on_true = 1; on_false = 2; behavior = Behavior.Loop 5000 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"alvinn_self_loop" ~seed:0xA1 [| main |]

let () =
  let program = self_loop_program in
  let profile = Ba_exec.Engine.profile_program program in
  let arch = Ba_core.Cost_model.Fallthrough in
  let visits b = Ba_cfg.Profile.visits profile 0 b in
  let cond_counts b = Ba_cfg.Profile.cond_counts profile 0 b in
  let cost decision =
    Ba_core.Layout_cost.branch_cost ~arch ~visits ~cond_counts
      (Ba_layout.Lower.lower ~cond_counts (Program.proc program 0) decision)
  in
  let orig = cost (Ba_layout.Decision.identity (Program.proc program 0)) in
  let aligned = cost (Ba_core.Align.align_proc Ba_core.Align.Cost ~arch profile 0) in
  Fmt.pr "Figure 2 — the ALVINN self-loop under FALLTHROUGH:@.";
  Fmt.pr "  iterations                   : %d@." (visits 1);
  Fmt.pr "  original branch cost         : %.0f cycles (~5/iteration)@." orig;
  Fmt.pr "  Cost-aligned (invert + jump) : %.0f cycles (~3/iteration)@." aligned;
  Fmt.pr "  reduction                    : %.0f%%@.@."
    (100.0 *. (1.0 -. (aligned /. orig)))

(* -- Part 2: the Figure 3 loop ------------------------------------------- *)

let figure3_program =
  let main =
    Proc.make ~name:"figure3"
      [|
        (* E *) Block.make ~insns:1 (Term.Jump 1);
        (* A *)
        Block.make ~insns:1
          (Term.Cond { on_true = 2; on_false = 4; behavior = Behavior.Loop 9000 });
        (* B *) Block.make ~insns:1 (Term.Jump 3);
        (* C *) Block.make ~insns:1 (Term.Jump 1);
        (* D *) Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"figure3" ~seed:42 [| main |]

let () =
  let program = figure3_program in
  let profile = Ba_exec.Engine.profile_program ~max_steps:100_000 program in
  let proc = Program.proc program 0 in
  let visits b = Ba_cfg.Profile.visits profile 0 b in
  let cond_counts b = Ba_cfg.Profile.cond_counts profile 0 b in
  let cost ~arch decision =
    Ba_core.Layout_cost.branch_cost ~arch ~visits ~cond_counts
      (Ba_layout.Lower.lower ~cond_counts proc decision)
  in
  let arch = Ba_core.Cost_model.Likely in
  let original = Ba_layout.Decision.of_order [| 0; 1; 4; 2; 3 |] in
  let paper_transform = Ba_layout.Decision.of_order [| 0; 1; 2; 3; 4 |] in
  let try15 = Ba_core.Align.align_proc (Ba_core.Align.Tryn 15) ~arch profile 0 in
  Fmt.pr "Figure 3 — loop alignment under the LIKELY model:@.";
  Fmt.pr "  original layout [E A D B C]    : %.0f cycles (paper: 36,002)@."
    (cost ~arch original);
  Fmt.pr "  paper's transformed [E A B C D]: %.0f cycles (paper: 27,004)@."
    (cost ~arch paper_transform);
  Fmt.pr "  Try15's layout %a: %.0f cycles@." Ba_layout.Decision.pp try15
    (cost ~arch try15);
  Fmt.pr
    "@.Try15 keeps the whole likely path of the loop in one chain (the paper's@.\
     \"ideally, we want the most likely path through the loop to be in a single@.\
     chain\"), removing the unconditional branch entirely.@."
