(* Experiment driver: regenerates every table and figure of the paper's
   evaluation, plus the ablations called out in DESIGN.md.

     experiments table1 | table2 | table3 | table4 | fig4 | all
     experiments ablation-order | ablation-tryn | ablation-penalty
     experiments calibrate

   All commands accept --max-steps to trade fidelity for speed, and
   --only PROG[,PROG...] to restrict the workload set.  The table/figure
   commands additionally take -j JOBS (default: BA_JOBS or the domain
   count) to evaluate workloads on a deterministic Ba_par pool; output is
   byte-identical whatever the job count. *)

open Cmdliner

let select only =
  match only with
  | [] -> Ba_workloads.Spec.all
  | names ->
    List.map
      (fun n ->
        match Ba_workloads.Spec.by_name n with
        | Some w -> w
        | None -> failwith (Printf.sprintf "unknown workload %S" n))
      names

let max_steps_arg =
  let doc = "Execution budget in semantic block visits per run." in
  Arg.(value & opt int Ba_workloads.Spec.default_max_steps & info [ "max-steps" ] ~doc)

let only_arg =
  let doc = "Comma-separated workload names to evaluate (default: all 24)." in
  Arg.(value & opt (list string) [] & info [ "only" ] ~doc)

let tryn_arg =
  let doc = "Group size for the TryN algorithm (the paper uses 15)." in
  Arg.(value & opt int 15 & info [ "tryn" ] ~doc)

(* Strict job-count parsing, shared with BA_JOBS: zero, negative and
   garbage values are command-line errors, never silent defaults. *)
let jobs_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Ba_par.Pool.jobs_of_string s)
  in
  Arg.conv (parse, Fmt.int)

let jobs_arg =
  let doc =
    "Worker domains for the evaluation pool (default: \\$(b,BA_JOBS) or the \
     machine's domain count; 1 forces the sequential path).  Output is \
     byte-identical for every value."
  in
  Arg.(value & opt (some jobs_conv) None & info [ "j"; "jobs" ] ~doc)

let timings_arg =
  let doc = "After the figures, print per-workload evaluation wall times." in
  Arg.(value & flag & info [ "timings" ] ~doc)

let metrics_arg =
  let doc =
    "Collect pipeline metrics (counters, histograms, stage spans) while \
     evaluating and print them after the figures.  $(b,--metrics) prints \
     ASCII tables; $(b,--metrics=json) prints a deterministic JSON document \
     (byte-identical for every $(b,-j); wall times and scheduling-dependent \
     metrics are elided)."
  in
  let fmt =
    Arg.enum [ ("ascii", Ba_obs.Sink.Ascii); ("json", Ba_obs.Sink.Json) ]
  in
  Arg.(value & opt ~vopt:(Some Ba_obs.Sink.Ascii) (some fmt) None & info [ "metrics" ] ~doc)

let evaluate ~max_steps ~tryn ~only ?jobs () =
  Ba_report.Harness.evaluate_suite ~max_steps ~tryn ?jobs (select only)

let print_table1 () = print_string (Ba_report.Tables.table1 ())

let run_table which max_steps only tryn jobs =
  let evals = evaluate ~max_steps ~tryn ~only ?jobs () in
  let render =
    match which with
    | `Table2 -> Ba_report.Tables.table2
    | `Table3 -> Ba_report.Tables.table3
    | `Table4 -> Ba_report.Tables.table4
    | `Fig4 -> Ba_report.Tables.fig4
  in
  print_string (render evals)

let run_all max_steps only tryn jobs timings metrics =
  let registry =
    match metrics with None -> None | Some _ -> Some (Ba_obs.Registry.create ())
  in
  let collected f =
    match registry with None -> f () | Some r -> Ba_obs.Registry.with_registry r f
  in
  let evals, stats =
    collected (fun () ->
        Ba_report.Harness.evaluate_suite_timed ~max_steps ~tryn ?jobs (select only))
  in
  print_endline "== Table 1: branch cost model (cycles) ==";
  print_string (Ba_report.Tables.table1 ());
  print_endline "\n== Table 2: measured attributes of the traced programs ==";
  print_string (Ba_report.Tables.table2 evals);
  print_endline "\n== Table 3: relative CPI, static prediction architectures ==";
  print_string (Ba_report.Tables.table3 evals);
  print_endline "\n== Table 4: relative CPI, dynamic prediction architectures ==";
  print_string (Ba_report.Tables.table4 evals);
  print_endline "\n== Figure 4: relative execution time, Alpha 21064 model ==";
  print_string (Ba_report.Tables.fig4 evals);
  print_endline
    "\n== Inter-procedural layout: penalty cycles, plain>stitched (ExtTsp) ==";
  let ip_rows =
    collected (fun () ->
        Ba_report.Interproc.evaluate_suite ~max_steps ?jobs (select only))
  in
  print_string (Ba_report.Interproc.render ip_rows);
  if timings then begin
    print_endline "\n== Per-workload evaluation wall times ==";
    print_string (Ba_par.Stats.render stats)
  end;
  match (metrics, registry) with
  | Some format, Some r ->
    print_endline "\n== Pipeline metrics ==";
    print_string (Ba_obs.Sink.emit format r)
  | _ -> ()

let placement_format_arg =
  let doc = "Output format: the default ASCII table, or json." in
  let fmt = Arg.enum [ ("ascii", `Ascii); ("table", `Ascii); ("json", `Json) ] in
  Arg.(value & opt fmt `Ascii & info [ "format" ] ~doc)

(* The conflict-aware placement table: penalty cycles with and without the
   placement post-pass, across the seven simulated architectures. *)
let run_placement max_steps only tryn jobs format =
  let rows =
    Ba_report.Placement.evaluate_suite ~max_steps ~tryn ?jobs (select only)
  in
  match format with
  | `Ascii -> print_string (Ba_report.Placement.render rows)
  | `Json ->
    print_endline (Ba_util.Json.to_string (Ba_report.Placement.to_json rows))

(* The inter-procedural layout table: ExtTsp-aligned decisions scored
   through both the classic per-procedure image and the stitched one, the
   stitched layout proved before being trusted. *)
let run_interproc max_steps only jobs format =
  let rows =
    Ba_report.Interproc.evaluate_suite ~max_steps ?jobs (select only)
  in
  (match format with
  | `Ascii -> print_string (Ba_report.Interproc.render rows)
  | `Json ->
    print_endline (Ba_util.Json.to_string (Ba_report.Interproc.to_json rows)));
  if List.exists (fun r -> not r.Ba_report.Interproc.verified) rows then exit 1

(* The measured optimality-gap table: exact simulated penalty cycles of
   each algorithm's layout against the Optimal-k branch-and-bound winner,
   whose search is pruned by the static Ba_bound lower bounds. *)
let run_gap max_steps only tryn jobs k no_delta format =
  let rows =
    Ba_report.Gap.evaluate_suite ~max_steps ~k ~tryn ~delta:(not no_delta)
      ?jobs (select only)
  in
  match format with
  | `Ascii -> print_string (Ba_report.Gap.render rows)
  | `Json -> print_endline (Ba_util.Json.to_string (Ba_report.Gap.to_json rows))

let calibrate max_steps only =
  let columns =
    Ba_util.Ascii_table.
      [
        column ~align:Left "workload"; column "steps"; column "insns"; column "branches";
        column ~align:Left "completed"; column "blocks"; column "procs";
      ]
  in
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        let program = w.build () in
        let image = Ba_layout.Image.original program in
        let r = Ba_exec.Engine.run ~max_steps image in
        [
          w.name;
          Ba_util.Ascii_table.int_cell r.Ba_exec.Engine.steps;
          Ba_util.Ascii_table.int_cell r.Ba_exec.Engine.insns;
          Ba_util.Ascii_table.int_cell r.Ba_exec.Engine.branches;
          string_of_bool r.Ba_exec.Engine.completed;
          string_of_int (Ba_ir.Program.total_blocks program);
          string_of_int (Ba_ir.Program.n_procs program);
        ])
      (select only)
  in
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* -- ablations ------------------------------------------------------------- *)

(* Ablation A (§6.1): chain ordering strategy, weight-descending vs the
   Pettis & Hansen BT/FNT precedence, measured on the BT/FNT architecture. *)
let ablation_order max_steps only =
  let workloads =
    match only with [] -> select [ "compress"; "eqntott"; "espresso"; "gcc"; "li"; "sc" ]
    | names -> select names
  in
  let columns =
    Ba_util.Ascii_table.
      [ column ~align:Left "workload"; column "Orig"; column "weight-desc"; column "btfnt-prec" ]
  in
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        let program = w.build () in
        let profile, trace =
          Ba_trace.Record.profile_and_record ~max_steps program
        in
        let orig_out =
          Ba_sim.Runner.simulate ~max_steps ~trace ~archs:[ Ba_sim.Bep.Static_btfnt ]
            (Ba_layout.Image.original ~profile program)
        in
        let orig_insns = orig_out.Ba_sim.Runner.result.Ba_exec.Engine.insns in
        let run strategy =
          let image =
            Ba_core.Align.image (Ba_core.Align.Tryn 15) ~strategy
              ~arch:Ba_core.Cost_model.Btfnt profile
          in
          let out =
            Ba_sim.Runner.simulate ~max_steps ~trace
              ~archs:[ Ba_sim.Bep.Static_btfnt ] image
          in
          let _, sim = out.Ba_sim.Runner.sims.(0) in
          Ba_sim.Bep.relative_cpi sim ~insns:out.Ba_sim.Runner.result.Ba_exec.Engine.insns
            ~orig_insns
        in
        let _, orig_sim = orig_out.Ba_sim.Runner.sims.(0) in
        [
          w.name;
          Ba_util.Ascii_table.float_cell
            (Ba_sim.Bep.relative_cpi orig_sim
               ~insns:orig_out.Ba_sim.Runner.result.Ba_exec.Engine.insns ~orig_insns);
          Ba_util.Ascii_table.float_cell (run Ba_layout.Chain_order.Weight_desc);
          Ba_util.Ascii_table.float_cell (run Ba_layout.Chain_order.Btfnt_precedence);
        ])
      workloads
  in
  print_endline "Ablation A: chain ordering strategy (BT/FNT relative CPI, Try15)";
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* Ablation B (§4): TryN group size.  Joint placement of a whole loop's
   edges (the paper's Figure 3) matters on architectures that predict taken
   branches, so this ablation measures on LIKELY over the loop-heavy
   workloads. *)
let ablation_tryn max_steps only =
  let workloads =
    match only with
    | [] -> select [ "wave5"; "hydro2d"; "compress"; "tomcatv"; "espresso"; "gcc" ]
    | names -> select names
  in
  let ns = [ 1; 5; 10; 15 ] in
  let columns =
    Ba_util.Ascii_table.column ~align:Ba_util.Ascii_table.Left "workload"
    :: List.map (fun n -> Ba_util.Ascii_table.column (Printf.sprintf "Try%d" n)) ns
  in
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        let program = w.build () in
        let profile, trace =
          Ba_trace.Record.profile_and_record ~max_steps program
        in
        let orig_insns =
          (Ba_trace.Replay.run
             (Ba_trace.Flat.of_image (Ba_layout.Image.original ~profile program))
             trace)
            .Ba_exec.Engine.insns
        in
        w.name
        :: List.map
             (fun n ->
               let image =
                 Ba_core.Align.image (Ba_core.Align.Tryn n)
                   ~arch:Ba_core.Cost_model.Likely profile
               in
               let out =
                 Ba_sim.Runner.simulate ~max_steps ~trace
                   ~archs:
                     [ Ba_sim.Bep.Static_likely
                         (Ba_predict.Likely_bits.build image profile) ]
                   image
               in
               let _, sim = out.Ba_sim.Runner.sims.(0) in
               Ba_util.Ascii_table.float_cell
                 (Ba_sim.Bep.relative_cpi sim
                    ~insns:out.Ba_sim.Runner.result.Ba_exec.Engine.insns ~orig_insns))
             ns)
      workloads
  in
  print_endline "Ablation B: TryN group size (LIKELY relative CPI)";
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* Ablation C: cost-model sensitivity — sweep the mispredict penalty used by
   the optimizer and measure on the unchanged simulator. *)
let ablation_penalty max_steps only =
  let workloads =
    match only with [] -> select [ "espresso" ] | names -> select names
  in
  let penalties = [ 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let columns =
    Ba_util.Ascii_table.column ~align:Ba_util.Ascii_table.Left "workload"
    :: List.map
         (fun p -> Ba_util.Ascii_table.column (Printf.sprintf "mp=%.0f" p))
         penalties
  in
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        let program = w.build () in
        let profile, trace =
          Ba_trace.Record.profile_and_record ~max_steps program
        in
        let orig_insns =
          (Ba_trace.Replay.run
             (Ba_trace.Flat.of_image (Ba_layout.Image.original ~profile program))
             trace)
            .Ba_exec.Engine.insns
        in
        w.name
        :: List.map
             (fun mispredict ->
               let table =
                 { Ba_core.Cost_model.default_table with mispredict }
               in
               let image =
                 Ba_core.Align.image (Ba_core.Align.Tryn 15) ~table
                   ~arch:Ba_core.Cost_model.Fallthrough profile
               in
               let out =
                 Ba_sim.Runner.simulate ~max_steps ~trace
                   ~archs:[ Ba_sim.Bep.Static_fallthrough ] image
               in
               let _, sim = out.Ba_sim.Runner.sims.(0) in
               Ba_util.Ascii_table.float_cell
                 (Ba_sim.Bep.relative_cpi sim
                    ~insns:out.Ba_sim.Runner.result.Ba_exec.Engine.insns ~orig_insns))
             penalties)
      workloads
  in
  print_endline
    "Ablation C: optimizer mispredict-penalty sweep (FALLTHROUGH relative CPI, Try15)";
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* Ablation E: iterative direction refinement for BT/FNT -- rounds after
   the first re-run Try15 with branch directions read off the previous
   layout instead of DFS guesses. *)
let ablation_refine max_steps only =
  let workloads =
    match only with
    | [] -> select [ "compress"; "li"; "eqntott"; "wave5"; "hydro2d"; "gcc" ]
    | names -> select names
  in
  let rounds = [ 1; 2; 3 ] in
  let columns =
    Ba_util.Ascii_table.column ~align:Ba_util.Ascii_table.Left "workload"
    :: Ba_util.Ascii_table.column "Orig"
    :: List.map
         (fun r -> Ba_util.Ascii_table.column (Printf.sprintf "rounds=%d" r))
         rounds
  in
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        let program = w.build () in
        let profile, trace =
          Ba_trace.Record.profile_and_record ~max_steps program
        in
        let orig_image = Ba_layout.Image.original ~profile program in
        let orig_out =
          Ba_sim.Runner.simulate ~max_steps ~trace
            ~archs:[ Ba_sim.Bep.Static_btfnt ] orig_image
        in
        let orig_insns = orig_out.Ba_sim.Runner.result.Ba_exec.Engine.insns in
        let cpi_of out =
          let _, sim = out.Ba_sim.Runner.sims.(0) in
          Ba_sim.Bep.relative_cpi sim
            ~insns:out.Ba_sim.Runner.result.Ba_exec.Engine.insns ~orig_insns
        in
        (w.name :: [ Ba_util.Ascii_table.float_cell (cpi_of orig_out) ])
        @ List.map
            (fun refine_rounds ->
              let image =
                Ba_core.Align.image (Ba_core.Align.Tryn 15)
                  ~strategy:Ba_layout.Chain_order.Btfnt_precedence
                  ~arch:Ba_core.Cost_model.Btfnt ~refine_rounds profile
              in
              Ba_util.Ascii_table.float_cell
                (cpi_of
                   (Ba_sim.Runner.simulate ~max_steps ~trace
                      ~archs:[ Ba_sim.Bep.Static_btfnt ] image)))
            rounds)
      workloads
  in
  print_endline "Ablation E: direction-refinement rounds (BT/FNT relative CPI, Try15)";
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* Ablation D (§3): the ALVINN suggestion — duplicate single-block loop
   bodies so the copies need no branch at all; combined with alignment. *)
let ablation_unroll max_steps only =
  let workloads =
    match only with [] -> select [ "alvinn"; "ear" ] | names -> select names
  in
  let factors = [ 2; 4 ] in
  let columns =
    Ba_util.Ascii_table.column ~align:Ba_util.Ascii_table.Left "workload"
    :: Ba_util.Ascii_table.column "sites"
    :: Ba_util.Ascii_table.column "Orig"
    :: Ba_util.Ascii_table.column "Try15"
    :: List.map
         (fun f -> Ba_util.Ascii_table.column (Printf.sprintf "unroll%d+Try15" f))
         factors
  in
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        let program = w.build () in
        (* One recording pass per distinct program (the unrolled variants are
           different programs with their own decision streams). *)
        let base_profile, base_trace =
          Ba_trace.Record.profile_and_record ~max_steps program
        in
        let orig_out =
          Ba_sim.Runner.simulate ~max_steps ~trace:base_trace
            ~archs:[ Ba_sim.Bep.Static_fallthrough ]
            (Ba_layout.Image.original program)
        in
        let orig_insns = orig_out.Ba_sim.Runner.result.Ba_exec.Engine.insns in
        let ft_cpi_traced ~profile ~trace =
          let image =
            Ba_core.Align.image (Ba_core.Align.Tryn 15)
              ~arch:Ba_core.Cost_model.Fallthrough profile
          in
          let out =
            Ba_sim.Runner.simulate ~max_steps ~trace
              ~archs:[ Ba_sim.Bep.Static_fallthrough ] image
          in
          let _, sim = out.Ba_sim.Runner.sims.(0) in
          Ba_sim.Bep.relative_cpi sim ~insns:out.Ba_sim.Runner.result.Ba_exec.Engine.insns
            ~orig_insns
        in
        let ft_cpi program =
          let profile, trace =
            Ba_trace.Record.profile_and_record ~max_steps program
          in
          ft_cpi_traced ~profile ~trace
        in
        ignore ft_cpi;
        let _, orig_sim = orig_out.Ba_sim.Runner.sims.(0) in
        let sites = List.length (Ba_core.Unroll.unrollable_self_loops program ~factor:2) in
        [
          w.name;
          string_of_int sites;
          Ba_util.Ascii_table.float_cell
            (Ba_sim.Bep.relative_cpi orig_sim
               ~insns:orig_out.Ba_sim.Runner.result.Ba_exec.Engine.insns ~orig_insns);
          Ba_util.Ascii_table.float_cell
            (ft_cpi_traced ~profile:base_profile ~trace:base_trace);
        ]
        @ List.map
            (fun factor ->
              Ba_util.Ascii_table.float_cell
                (ft_cpi (Ba_core.Unroll.unroll_self_loops ~factor program)))
            factors)
      workloads
  in
  print_endline
    "Ablation D: self-loop unrolling + Try15 (FALLTHROUGH relative CPI vs the\n\
     un-unrolled original program's instruction count)";
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* Ablation F: profile robustness -- align with a profile gathered on one
   input (seed), evaluate on another.  The paper profiles and evaluates on
   the same input; this quantifies how much that flatters the results. *)
let ablation_cross_input max_steps only =
  let workloads =
    match only with
    | [] -> select [ "espresso"; "gcc"; "li"; "sc"; "compress"; "spice" ]
    | names -> select names
  in
  let columns =
    Ba_util.Ascii_table.
      [
        column ~align:Left "workload"; column "Orig";
        column "same-input"; column "cross-input"; column "merged-2";
      ]
  in
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        let program = w.build () in
        let alt = Ba_ir.Program.with_seed program (program.Ba_ir.Program.seed + 1) in
        let alt2 = Ba_ir.Program.with_seed program (program.Ba_ir.Program.seed + 2) in
        (* Evaluation always runs the alternate input, so one recording of
           [alt] replays through every candidate layout below. *)
        let alt_profile, alt_trace =
          Ba_trace.Record.profile_and_record ~max_steps alt
        in
        let eval_cpi image_program decisions =
          let image = Ba_layout.Image.build image_program decisions in
          let out =
            Ba_sim.Runner.simulate ~max_steps ~trace:alt_trace
              ~archs:[ Ba_sim.Bep.Static_fallthrough ] image
          in
          let _, sim = out.Ba_sim.Runner.sims.(0) in
          (out.Ba_sim.Runner.result.Ba_exec.Engine.insns, Ba_sim.Bep.bep sim)
        in
        let orig_insns, orig_bep =
          eval_cpi alt
            (Array.init (Ba_ir.Program.n_procs alt) (fun p ->
                 Ba_layout.Decision.identity (Ba_ir.Program.proc alt p)))
        in
        let cpi_of (insns, bep) =
          float_of_int (insns + bep) /. float_of_int orig_insns
        in
        let aligned_with profile =
          Ba_core.Align.align_program (Ba_core.Align.Tryn 15)
            ~arch:Ba_core.Cost_model.Fallthrough profile
        in
        let profile_of prog = Ba_exec.Engine.profile_program ~max_steps prog in
        let same = aligned_with alt_profile in
        let cross = aligned_with (profile_of program) in
        let merged =
          (* Two training inputs, neither the evaluation input. *)
          let p1 = profile_of program in
          let prog2 = Ba_ir.Program.with_seed program alt2.Ba_ir.Program.seed in
          let p2 = Ba_cfg.Profile.create program in
          let (_ : Ba_exec.Engine.result) =
            Ba_exec.Engine.run ~max_steps ~profile:p2 (Ba_layout.Image.original prog2)
          in
          aligned_with (Ba_cfg.Profile.merge [ p1; p2 ])
        in
        [
          w.name;
          Ba_util.Ascii_table.float_cell (cpi_of (orig_insns, orig_bep));
          Ba_util.Ascii_table.float_cell (cpi_of (eval_cpi alt same));
          Ba_util.Ascii_table.float_cell (cpi_of (eval_cpi alt cross));
          Ba_util.Ascii_table.float_cell (cpi_of (eval_cpi alt merged));
        ])
      workloads
  in
  print_endline
    "Ablation F: profile robustness (FALLTHROUGH relative CPI on a held-out\n\
     input; aligned with the same input, a different one, or two merged)";
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* Ablation G: all four algorithms side by side on one architecture --
   the paper's qualitative claim that the cost-model algorithms beat Greedy
   (Â§4), including the cheap Cost heuristic it describes but does not
   tabulate. *)
let ablation_algos max_steps only =
  let workloads =
    match only with
    | [] -> select [ "alvinn"; "hydro2d"; "espresso"; "gcc"; "sc"; "groff" ]
    | names -> select names
  in
  let algos =
    [ Ba_core.Align.Greedy; Ba_core.Align.Cost; Ba_core.Align.Tryn 5;
      Ba_core.Align.Tryn 15 ]
  in
  let columns =
    Ba_util.Ascii_table.column ~align:Ba_util.Ascii_table.Left "workload"
    :: Ba_util.Ascii_table.column "Orig"
    :: List.map
         (fun a -> Ba_util.Ascii_table.column (Ba_core.Align.algo_name a))
         algos
  in
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        let program = w.build () in
        let profile, trace =
          Ba_trace.Record.profile_and_record ~max_steps program
        in
        let orig_image = Ba_layout.Image.original ~profile program in
        let orig_out =
          Ba_sim.Runner.simulate ~max_steps ~trace
            ~archs:[ Ba_sim.Bep.Static_fallthrough ] orig_image
        in
        let orig_insns = orig_out.Ba_sim.Runner.result.Ba_exec.Engine.insns in
        let cpi_of out =
          let _, sim = out.Ba_sim.Runner.sims.(0) in
          Ba_sim.Bep.relative_cpi sim
            ~insns:out.Ba_sim.Runner.result.Ba_exec.Engine.insns ~orig_insns
        in
        (w.name :: [ Ba_util.Ascii_table.float_cell (cpi_of orig_out) ])
        @ List.map
            (fun algo ->
              let image =
                Ba_core.Align.image algo ~arch:Ba_core.Cost_model.Fallthrough profile
              in
              Ba_util.Ascii_table.float_cell
                (cpi_of
                   (Ba_sim.Runner.simulate ~max_steps ~trace
                      ~archs:[ Ba_sim.Bep.Static_fallthrough ] image)))
            algos)
      workloads
  in
  print_endline "Ablation G: algorithm comparison (FALLTHROUGH relative CPI)";
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* -- command wiring ----------------------------------------------------------- *)

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(const f $ max_steps_arg $ only_arg $ tryn_arg $ jobs_arg)

let cmd2 name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ max_steps_arg $ only_arg)

let () =
  (match Ba_par.Pool.check_env () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("experiments: " ^ msg);
    exit 2);
  let table1_cmd =
    Cmd.v (Cmd.info "table1" ~doc:"Print the Table 1 cost model.")
      Term.(const print_table1 $ const ())
  in
  let group =
    Cmd.group (Cmd.info "experiments" ~doc:"Reproduce the paper's evaluation.")
      [
        table1_cmd;
        cmd "table2" "Reproduce Table 2 (traced program attributes)."
          (fun ms only tryn jobs -> run_table `Table2 ms only tryn jobs);
        cmd "table3" "Reproduce Table 3 (static architectures)."
          (fun ms only tryn jobs -> run_table `Table3 ms only tryn jobs);
        cmd "table4" "Reproduce Table 4 (dynamic architectures)."
          (fun ms only tryn jobs -> run_table `Table4 ms only tryn jobs);
        cmd "fig4" "Reproduce Figure 4 (Alpha 21064 execution time)."
          (fun ms only tryn jobs -> run_table `Fig4 ms only tryn jobs);
        Cmd.v
          (Cmd.info "placement"
             ~doc:
               "Penalty cycles with and without the conflict-aware placement \
                post-pass (Try15/BTB baseline, seven architectures).")
          Term.(
            const run_placement $ max_steps_arg $ only_arg $ tryn_arg
            $ jobs_arg $ placement_format_arg);
        Cmd.v
          (Cmd.info "interproc"
             ~doc:
               "Inter-procedural layout: ExtTsp-aligned decisions scored \
                through the classic per-procedure image and the \
                call-graph-stitched, hot/cold-split one, across the seven \
                simulated architectures.  Every stitched layout is \
                bisimulation-proved and cost-certified; exits non-zero if \
                any fails.")
          Term.(
            const run_interproc $ max_steps_arg $ only_arg $ jobs_arg
            $ placement_format_arg);
        Cmd.v
          (Cmd.info "gap"
             ~doc:
               "Measured optimality gaps: simulated penalty cycles of \
                Greedy, Cost, ExtTsp and Try15 against the Optimal-k \
                branch-and-bound winner (pruned by static lower bounds), \
                per workload and cost-model architecture.")
          Term.(
            const run_gap $ max_steps_arg $ only_arg $ tryn_arg $ jobs_arg
            $ Arg.(
                value & opt int 4
                & info [ "k" ]
                    ~doc:"How many of the hottest chains Optimal-k reorders.")
            $ Arg.(
                value & flag
                & info [ "no-delta" ]
                    ~doc:
                      "Price candidates with full trace replays instead of \
                       the incremental delta evaluator (same figures, \
                       slower).")
            $ placement_format_arg);
        Cmd.v
          (Cmd.info "all" ~doc:"Reproduce every table and figure.")
          Term.(
            const run_all $ max_steps_arg $ only_arg $ tryn_arg $ jobs_arg
            $ timings_arg $ metrics_arg);
        cmd2 "calibrate" "Print run lengths of each workload." calibrate;
        cmd2 "ablation-order" "Chain-ordering ablation (§6.1)." ablation_order;
        cmd2 "ablation-tryn" "TryN group-size ablation." ablation_tryn;
        cmd2 "ablation-penalty" "Cost-model penalty sweep." ablation_penalty;
        cmd2 "ablation-unroll" "Self-loop unrolling (§3 ALVINN suggestion)."
          ablation_unroll;
        cmd2 "ablation-refine" "Iterative BT/FNT direction refinement."
          ablation_refine;
        cmd2 "ablation-cross-input" "Profile robustness across inputs."
          ablation_cross_input;
        cmd2 "ablation-algos" "Greedy vs Cost vs TryN comparison."
          ablation_algos;
      ]
  in
  exit (Cmd.eval group)
