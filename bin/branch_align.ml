(* The branch-alignment tool itself: profile a workload, align it with a
   chosen algorithm under a chosen architectural cost model, and report
   what changed — layouts, branch statistics and per-architecture penalty
   cycles.  This is the OM-style "object code post-processor" interface of
   the paper, driving the library end to end:

     branch_align run --workload espresso --algo try15 --arch fallthrough
     branch_align list
     branch_align dump-cfg --workload alvinn --proc 1 *)

open Cmdliner

let parse_core_algo s =
  Result.map_error (fun e -> `Msg e) (Ba_core.Align.algo_of_name s)

let algo_conv =
  let print ppf a = Fmt.string ppf (Ba_core.Align.algo_name a) in
  Arg.conv (parse_core_algo, print)

(* The align command additionally accepts the annealing search, which
   prices moves through Ba_delta's incremental model and therefore lives
   outside Ba_core.Align.algo. *)
type align_algo = Core of Ba_core.Align.algo | Anneal

let align_algo_name = function
  | Core a -> Ba_core.Align.algo_name a
  | Anneal -> "anneal"

let align_algo_conv =
  let parse = function
    | "anneal" -> Ok Anneal
    | s -> Result.map (fun a -> Core a) (parse_core_algo s)
  in
  let print ppf a = Fmt.string ppf (align_algo_name a) in
  Arg.conv (parse, print)

let arch_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Ba_core.Cost_model.arch_of_name s)
  in
  let print ppf a = Fmt.string ppf (Ba_core.Cost_model.arch_name a) in
  Arg.conv (parse, print)

let workload_arg =
  let doc = "Workload to process (see the list command)." in
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc)

let algo_arg =
  let doc =
    "Alignment algorithm: orig, greedy, cost, exttsp, or tryN (e.g. try15)."
  in
  Arg.(value & opt algo_conv (Ba_core.Align.Tryn 15) & info [ "algo" ] ~doc)

let arch_arg =
  let doc = "Architectural cost model: fallthrough, btfnt, likely, pht, btb." in
  Arg.(value & opt arch_conv Ba_core.Cost_model.Btfnt & info [ "arch" ] ~doc)

let max_steps_arg =
  let doc = "Execution budget in semantic block visits." in
  Arg.(value & opt int Ba_workloads.Spec.default_max_steps & info [ "max-steps" ] ~doc)

(* -j rejects zero/negative/garbage at parse time, mirroring the strict
   BA_JOBS handling: a bad job count is an error, never a silent default. *)
let jobs_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Ba_par.Pool.jobs_of_string s)
  in
  Arg.conv (parse, Fmt.int)

let jobs_arg =
  let doc =
    "Worker domains for the checking pool (default: \\$(b,BA_JOBS) or the \
     machine's domain count; 1 forces the sequential path).  Diagnostics, \
     certificates and exit codes are identical for every value."
  in
  Arg.(value & opt (some jobs_conv) None & info [ "j"; "jobs" ] ~doc)

let lookup name =
  match Ba_workloads.Spec.by_name name with
  | Some w -> w
  | None ->
    Printf.eprintf "unknown workload %S; try the list command\n" name;
    exit 1

let bep_archs =
  [
    Ba_sim.Bep.Static_fallthrough;
    Ba_sim.Bep.Static_btfnt;
    Ba_sim.Bep.Pht_direct { entries = 4096 };
    Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 };
    Ba_sim.Bep.Btb_arch { entries = 256; assoc = 4 };
  ]

let run_cmd name algo arch interproc max_steps =
  let workload = lookup name in
  (* Record once, replay many: the memoized pass yields program + profile +
     semantic trace; both images below replay instead of re-interpreting. *)
  let program, profile, trace = Ba_workloads.Profiled.get_traced ~max_steps workload in
  let archs_for image =
    Ba_sim.Bep.Static_likely (Ba_predict.Likely_bits.build image profile) :: bep_archs
  in
  let orig_image = Ba_layout.Image.original ~profile program in
  let orig =
    Ba_sim.Runner.simulate ~max_steps ~trace ~archs:(archs_for orig_image) orig_image
  in
  let orig_insns = orig.Ba_sim.Runner.result.Ba_exec.Engine.insns in
  let aligned_image =
    if interproc then
      let decisions = Ba_core.Align.align_program algo ~arch profile in
      (Ba_layout.Image.build_interproc ~profile program decisions)
        .Ba_layout.Image.image
    else Ba_core.Align.image algo ~arch profile
  in
  let aligned =
    Ba_sim.Runner.simulate ~max_steps ~trace ~archs:(archs_for aligned_image)
      aligned_image
  in
  Printf.printf "workload %s: %s  (algorithm %s, cost model %s%s)\n\n"
    workload.Ba_workloads.Spec.name workload.Ba_workloads.Spec.description
    (Ba_core.Align.algo_name algo)
    (Ba_core.Cost_model.arch_name arch)
    (if interproc then ", inter-procedural layout" else "");
  Printf.printf "instructions: %s -> %s  (code size %d -> %d)\n"
    (Ba_util.Ascii_table.int_cell orig_insns)
    (Ba_util.Ascii_table.int_cell aligned.Ba_sim.Runner.result.Ba_exec.Engine.insns)
    orig_image.Ba_layout.Image.total_size aligned_image.Ba_layout.Image.total_size;
  Printf.printf "fall-through conditionals: %.1f%% -> %.1f%%\n\n"
    (Ba_exec.Trace_stats.pct_cond_fallthrough orig.Ba_sim.Runner.stats)
    (Ba_exec.Trace_stats.pct_cond_fallthrough aligned.Ba_sim.Runner.stats);
  let columns =
    Ba_util.Ascii_table.
      [
        column ~align:Left "architecture"; column "orig CPI"; column "aligned CPI";
        column "gain%";
      ]
  in
  let rows =
    List.map2
      (fun (arch, osim) (_, asim) ->
        let ocpi = Ba_sim.Bep.relative_cpi osim ~insns:orig_insns ~orig_insns in
        let acpi =
          Ba_sim.Bep.relative_cpi asim
            ~insns:aligned.Ba_sim.Runner.result.Ba_exec.Engine.insns ~orig_insns
        in
        [
          Ba_sim.Bep.arch_label arch;
          Ba_util.Ascii_table.float_cell ocpi;
          Ba_util.Ascii_table.float_cell acpi;
          Ba_util.Ascii_table.float_cell ~decimals:1 (100.0 *. (1.0 -. (acpi /. ocpi)));
        ])
      (Array.to_list orig.Ba_sim.Runner.sims)
      (Array.to_list aligned.Ba_sim.Runner.sims)
  in
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* Align one workload with any algorithm — including the seeded annealing
   search — and print a deterministic listing: per-procedure block orders,
   forced jump legs and model cost, the program's total expected cost, and
   the exact simulated penalty cycles of the result under the cost model's
   canonical configuration.  Output is byte-identical at any [-j] (the CI
   gate compares -j1 against -j4): each procedure's walk draws from its own
   (seed, procedure) PRNG stream, so scheduling cannot perturb it. *)
let align_cmd name algo arch seed sweeps max_steps jobs =
  let workload = lookup name in
  let program, profile, trace =
    Ba_workloads.Profiled.get_traced ~max_steps workload
  in
  let n = Ba_ir.Program.n_procs program in
  let decisions =
    match algo with
    | Core Ba_core.Align.Original ->
      Array.init n (fun p ->
          Ba_layout.Decision.identity (Ba_ir.Program.proc program p))
    | Core a -> Ba_core.Align.align_program a ~arch profile
    | Anneal ->
      Ba_par.Pool.with_pool ?jobs (fun pool ->
          Array.of_list
            (Ba_par.Pool.map pool
               (fun pid ->
                 Ba_delta.Anneal.align_proc ~seed ~sweeps ~arch profile pid)
               (List.init n Fun.id)))
  in
  Printf.printf "workload %s: algorithm %s, cost model %s%s\n"
    workload.Ba_workloads.Spec.name (align_algo_name algo)
    (Ba_core.Cost_model.arch_name arch)
    (match algo with
    | Anneal -> Printf.sprintf " (seed %d, %d sweeps)" seed sweeps
    | Core _ -> "");
  let total = ref 0.0 in
  for p = 0 to n - 1 do
    let proc = Ba_ir.Program.proc program p in
    let d = decisions.(p) in
    let cost =
      Ba_delta.Model.total
        (Ba_delta.Model.create ~arch
           ~visits:(fun b -> Ba_cfg.Profile.visits profile p b)
           ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile p b)
           proc d)
    in
    total := !total +. cost;
    let order =
      String.concat " "
        (List.map string_of_int (Array.to_list d.Ba_layout.Decision.order))
    in
    let forced =
      let parts = ref [] in
      Array.iteri
        (fun b leg ->
          match leg with
          | Some l ->
            parts :=
              Printf.sprintf "b%d:%s" b (Ba_layout.Decision.leg_name l)
              :: !parts
          | None -> ())
        d.Ba_layout.Decision.neither;
      if !parts = [] then ""
      else "  forced " ^ String.concat " " (List.rev !parts)
    in
    Printf.printf "proc %d %s: order %s%s  cost %.1f\n" p proc.Ba_ir.Proc.name
      order forced cost
  done;
  Printf.printf "total expected cost: %.1f\n" !total;
  let spec = Ba_delta.Eval.spec_of_model arch in
  let ev = Ba_delta.Eval.create ~specs:[| spec |] profile trace decisions in
  Printf.printf "simulated penalty cycles (%s): %d\n"
    (Ba_delta.Eval.spec_label spec)
    (Ba_delta.Eval.cost_arch ev 0 decisions)

(* Profile, align (unless --algo orig) and simulate one workload, with the
   Ba_obs registry installed around the whole pipeline so every stage's
   counters, histograms and spans land in the report. *)
let simulate_cmd name algo arch max_steps metrics =
  let workload = lookup name in
  let registry =
    match metrics with None -> None | Some _ -> Some (Ba_obs.Registry.create ())
  in
  let collected f =
    match registry with None -> f () | Some r -> Ba_obs.Registry.with_registry r f
  in
  let out =
    collected (fun () ->
        let program, profile, trace =
          Ba_workloads.Profiled.get_traced ~max_steps workload
        in
        let image =
          match algo with
          | Ba_core.Align.Original -> Ba_layout.Image.original ~profile program
          | _ -> Ba_core.Align.image algo ~arch profile
        in
        let archs =
          Ba_sim.Bep.Static_likely (Ba_predict.Likely_bits.build image profile)
          :: bep_archs
        in
        Ba_sim.Runner.simulate ~max_steps ~trace ~archs image)
  in
  Printf.printf "workload %s, algorithm %s, cost model %s: %s branch events in %s instructions\n\n"
    workload.Ba_workloads.Spec.name
    (Ba_core.Align.algo_name algo)
    (Ba_core.Cost_model.arch_name arch)
    (Ba_util.Ascii_table.int_cell out.Ba_sim.Runner.result.Ba_exec.Engine.branches)
    (Ba_util.Ascii_table.int_cell out.Ba_sim.Runner.result.Ba_exec.Engine.insns);
  let columns =
    Ba_util.Ascii_table.
      [
        column ~align:Left "architecture"; column "accuracy%"; column "misfetch";
        column "mispredict"; column "BEP cycles";
      ]
  in
  let rows =
    List.map
      (fun (arch, sim) ->
        [
          Ba_sim.Bep.arch_label arch;
          Ba_util.Ascii_table.float_cell ~decimals:1
            (100.0 *. Ba_sim.Bep.cond_accuracy sim);
          Ba_util.Ascii_table.int_cell (Ba_sim.Bep.counts sim).Ba_sim.Bep.misfetches;
          Ba_util.Ascii_table.int_cell (Ba_sim.Bep.counts sim).Ba_sim.Bep.mispredicts;
          Ba_util.Ascii_table.int_cell (Ba_sim.Bep.bep sim);
        ])
      (Array.to_list out.Ba_sim.Runner.sims)
  in
  print_string (Ba_util.Ascii_table.render ~columns ~rows);
  match (metrics, registry) with
  | Some format, Some r ->
    print_endline "\n== Pipeline metrics ==";
    print_string (Ba_obs.Sink.emit format r)
  | _ -> ()

let hotspots_cmd name top max_steps =
  let workload = lookup name in
  let program = workload.Ba_workloads.Spec.build () in
  let image = Ba_layout.Image.original program in
  let hot = Ba_report.Hotspots.create image in
  let result =
    Ba_exec.Engine.run ~max_steps ~on_event:(Ba_report.Hotspots.on_event hot) image
  in
  Printf.printf "workload %s: %s branch events in %s instructions\n\n"
    workload.Ba_workloads.Spec.name
    (Ba_util.Ascii_table.int_cell result.Ba_exec.Engine.branches)
    (Ba_util.Ascii_table.int_cell result.Ba_exec.Engine.insns);
  print_string (Ba_report.Hotspots.render ~k:top hot)

let record_cmd name path max_steps =
  let workload = lookup name in
  let program = workload.Ba_workloads.Spec.build () in
  let image = Ba_layout.Image.original program in
  let result =
    Ba_exec.Trace_io.record ~path (fun ~on_event ->
        Ba_exec.Engine.run ~max_steps ~on_event image)
  in
  Printf.printf "recorded %s events (%s instructions) to %s\n"
    (Ba_util.Ascii_table.int_cell result.Ba_exec.Engine.branches)
    (Ba_util.Ascii_table.int_cell result.Ba_exec.Engine.insns)
    path

let replay_cmd path =
  (* Replay a recorded trace through every architecture that needs no
     image-side metadata. *)
  let archs =
    [
      Ba_sim.Bep.Static_fallthrough;
      Ba_sim.Bep.Static_btfnt;
      Ba_sim.Bep.Pht_direct { entries = 4096 };
      Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 };
      Ba_sim.Bep.Pht_global { history_bits = 12 };
      Ba_sim.Bep.Pht_local { history_bits = 12; branch_entries = 1024 };
      Ba_sim.Bep.Btb_arch { entries = 64; assoc = 2 };
      Ba_sim.Bep.Btb_arch { entries = 256; assoc = 4 };
    ]
  in
  let sims = List.map (fun a -> (a, Ba_sim.Bep.create a)) archs in
  let n =
    Ba_exec.Trace_io.replay ~path (fun ev ->
        List.iter (fun (_, sim) -> Ba_sim.Bep.on_event sim ev) sims)
  in
  Printf.printf "replayed %s events from %s\n\n" (Ba_util.Ascii_table.int_cell n) path;
  let columns =
    Ba_util.Ascii_table.
      [
        column ~align:Left "architecture"; column "accuracy%"; column "misfetch";
        column "mispredict"; column "BEP cycles";
      ]
  in
  let rows =
    List.map
      (fun (arch, sim) ->
        [
          Ba_sim.Bep.arch_label arch;
          Ba_util.Ascii_table.float_cell ~decimals:1
            (100.0 *. Ba_sim.Bep.cond_accuracy sim);
          Ba_util.Ascii_table.int_cell (Ba_sim.Bep.counts sim).Ba_sim.Bep.misfetches;
          Ba_util.Ascii_table.int_cell (Ba_sim.Bep.counts sim).Ba_sim.Bep.mispredicts;
          Ba_util.Ascii_table.int_cell (Ba_sim.Bep.bep sim);
        ])
      sims
  in
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

(* Packed semantic traces on disk (magic BAST1): unlike the per-event files
   of [record]/[replay] above, these store only the layout-independent
   decision stream — outcome bits plus switch/vcall varints — so one file
   replays against any layout of the program. *)

let trace_record_cmd name path max_steps =
  let workload = lookup name in
  let program = workload.Ba_workloads.Spec.build () in
  let image = Ba_layout.Image.original program in
  let result, trace = Ba_trace.Record.run ~max_steps image in
  Ba_trace.Trace.save ~path ~seed:program.Ba_ir.Program.seed ~max_steps trace;
  Printf.printf
    "recorded %s steps (%s conditionals, %s switch/vcall indices, %s payload \
     bytes) to %s\n"
    (Ba_util.Ascii_table.int_cell result.Ba_exec.Engine.steps)
    (Ba_util.Ascii_table.int_cell trace.Ba_trace.Trace.n_conds)
    (Ba_util.Ascii_table.int_cell trace.Ba_trace.Trace.n_choices)
    (Ba_util.Ascii_table.int_cell (Ba_trace.Trace.byte_size trace))
    path

let trace_replay_cmd name path algo arch =
  let workload = lookup name in
  let program = workload.Ba_workloads.Spec.build () in
  let { Ba_trace.Trace.seed; max_steps; trace } = Ba_trace.Trace.load ~path in
  if seed <> program.Ba_ir.Program.seed then begin
    Printf.eprintf
      "trace %s was recorded for a program with seed %d, but workload %s has \
       seed %d\n"
      path seed name program.Ba_ir.Program.seed;
    exit 1
  end;
  let image =
    match algo with
    | Ba_core.Align.Original -> Ba_layout.Image.original program
    | _ ->
      (* Alignment needs the profile; reconstruct it with the one interpreter
         pass the trace was recorded from. *)
      let profile = Ba_exec.Engine.profile_program ~max_steps program in
      Ba_core.Align.image algo ~arch profile
  in
  let out = Ba_sim.Runner.simulate ~trace ~archs:bep_archs image in
  Printf.printf
    "replayed %s steps from %s through %s (algorithm %s): %s branch events in \
     %s instructions\n\n"
    (Ba_util.Ascii_table.int_cell out.Ba_sim.Runner.result.Ba_exec.Engine.steps)
    path name
    (Ba_core.Align.algo_name algo)
    (Ba_util.Ascii_table.int_cell out.Ba_sim.Runner.result.Ba_exec.Engine.branches)
    (Ba_util.Ascii_table.int_cell out.Ba_sim.Runner.result.Ba_exec.Engine.insns);
  let columns =
    Ba_util.Ascii_table.
      [
        column ~align:Left "architecture"; column "accuracy%"; column "misfetch";
        column "mispredict"; column "BEP cycles";
      ]
  in
  let rows =
    List.map
      (fun (arch, sim) ->
        [
          Ba_sim.Bep.arch_label arch;
          Ba_util.Ascii_table.float_cell ~decimals:1
            (100.0 *. Ba_sim.Bep.cond_accuracy sim);
          Ba_util.Ascii_table.int_cell (Ba_sim.Bep.counts sim).Ba_sim.Bep.misfetches;
          Ba_util.Ascii_table.int_cell (Ba_sim.Bep.counts sim).Ba_sim.Bep.mispredicts;
          Ba_util.Ascii_table.int_cell (Ba_sim.Bep.bep sim);
        ])
      (Array.to_list out.Ba_sim.Runner.sims)
  in
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

let disasm_cmd name algo arch proc_id max_steps =
  let workload = lookup name in
  let program = workload.Ba_workloads.Spec.build () in
  let profile = Ba_exec.Engine.profile_program ~max_steps program in
  if proc_id < 0 || proc_id >= Ba_ir.Program.n_procs program then begin
    Printf.eprintf "procedure id out of range (program has %d)\n"
      (Ba_ir.Program.n_procs program);
    exit 1
  end;
  let fp_fraction =
    match workload.Ba_workloads.Spec.cls with
    | Ba_workloads.Spec.Fp -> 0.5
    | Ba_workloads.Spec.Int | Ba_workloads.Spec.Other -> 0.08
  in
  let original =
    Ba_isa.Codegen.of_image ~fp_fraction (Ba_layout.Image.original ~profile program)
  in
  let aligned =
    Ba_isa.Codegen.of_image ~fp_fraction (Ba_core.Align.image algo ~arch profile)
  in
  print_string (Ba_isa.Disasm.side_by_side ~original ~aligned proc_id)

type output_format = Table | Json

let format_conv =
  let parse = function
    | "table" | "ascii" -> Ok Table
    | "json" -> Ok Json
    | s -> Error (`Msg (Printf.sprintf "unknown format %S (table or json)" s))
  in
  let print ppf f = Fmt.string ppf (match f with Table -> "table" | Json -> "json") in
  Arg.conv (parse, print)

let format_arg =
  let doc = "Output format: the default ASCII table, or json." in
  Arg.(value & opt format_conv Table & info [ "format" ] ~doc)

let diag_table_columns =
  Ba_util.Ascii_table.
    [
      column ~align:Left "workload"; column ~align:Left "severity";
      column ~align:Left "rule"; column ~align:Left "location";
      column ~align:Left "message";
    ]

let plural n = if n = 1 then "" else "s"

(* Info findings (the optimality audit and the conflict lint) can be
   numerous on purpose-poor layouts like orig; the table views cap them per
   workload so errors and warnings stay visible.  JSON always carries
   everything. *)
let max_table_infos = 10

let image_for algo arch profile program =
  match algo with
  | Ba_core.Align.Original -> Ba_layout.Image.original ~profile program
  | _ -> Ba_core.Align.image algo ~arch profile

let lint_cmd workload algo arch strict format max_steps jobs =
  let workloads =
    match workload with Some name -> [ lookup name ] | None -> Ba_workloads.Spec.all
  in
  let reports =
    Ba_par.Pool.with_pool ?jobs (fun pool ->
        Ba_par.Pool.map pool
          (fun (w : Ba_workloads.Spec.t) ->
            let program, profile = Ba_workloads.Profiled.get ~max_steps w in
            let report =
              Ba_analysis.Run.check_pipeline ~arch ~max_steps ~profile ~algo
                program
            in
            (* Extension stages: the conflict analyser, the optimality
               auditor and the static bound checker all need the lowered
               image, so they run only when the five built-in stages are
               error-free. *)
            let report =
              if Ba_analysis.Run.error_count report > 0 then report
              else begin
                let image = image_for algo arch profile program in
                let conflict = Ba_conflict.Lint.check ~profile image in
                let audit =
                  List.concat
                    (List.init (Ba_ir.Program.n_procs program) (fun p ->
                         Ba_verify.Audit.check ~arch
                           ~visits:(fun b -> Ba_cfg.Profile.visits profile p b)
                           ~cond_counts:(fun b ->
                             Ba_cfg.Profile.cond_counts profile p b)
                           ~proc_id:p
                           image.Ba_layout.Image.linears.(p)))
                in
                let bound = Ba_bound.Lint.check ~algo ~arch ~profile image in
                {
                  report with
                  Ba_analysis.Run.stages =
                    report.Ba_analysis.Run.stages
                    @ [
                        (Ba_analysis.Run.Conflict, conflict);
                        (Ba_analysis.Run.Audit, audit);
                        (Ba_analysis.Run.Bound, bound);
                      ];
                }
              end
            in
            (w, report))
          workloads)
  in
  let total_errors = ref 0 and total_warnings = ref 0 and total_infos = ref 0 in
  let rows = ref [] in
  let json_workloads = ref [] in
  List.iter
    (fun ((w : Ba_workloads.Spec.t), report) ->
      let diags = Ba_analysis.Run.diagnostics report in
      let e, warn, i = Ba_analysis.Diagnostic.count diags in
      total_errors := !total_errors + e;
      total_warnings := !total_warnings + warn;
      total_infos := !total_infos + i;
      match format with
      | Json ->
        let open Ba_util.Json in
        json_workloads :=
          Obj
            [
              ("name", String w.Ba_workloads.Spec.name);
              ("errors", Int e); ("warnings", Int warn); ("infos", Int i);
              ( "stages",
                List
                  (List.map
                     (fun s ->
                       Obj
                         [
                           ("stage", String (Ba_analysis.Run.stage_name s));
                           ("ran", Bool (Ba_analysis.Run.ran report s));
                         ])
                     Ba_analysis.Run.all_stages) );
              ("diagnostics", List (List.map Ba_analysis.Diagnostic.to_json diags));
            ]
          :: !json_workloads
      | Table ->
        let stages =
          String.concat ","
            (List.map
               (fun s ->
                 Ba_analysis.Run.stage_name s
                 ^ if Ba_analysis.Run.ran report s then "" else "(skipped)")
               Ba_analysis.Run.all_stages)
        in
        Printf.printf "%-12s %d error%s, %d warning%s, %d info  [%s]\n"
          w.Ba_workloads.Spec.name e (plural e) warn (plural warn) i stages;
        let shown = ref 0 and hidden = ref 0 in
        List.iter
          (fun d ->
            if d.Ba_analysis.Diagnostic.severity <> Ba_analysis.Diagnostic.Info
            then rows := (w.Ba_workloads.Spec.name :: Ba_analysis.Diagnostic.to_row d) :: !rows
            else if !shown < max_table_infos then begin
              incr shown;
              rows := (w.Ba_workloads.Spec.name :: Ba_analysis.Diagnostic.to_row d) :: !rows
            end
            else incr hidden)
          diags;
        if !hidden > 0 then
          rows :=
            [ w.Ba_workloads.Spec.name; "info"; "..."; "..."
            ; Printf.sprintf "(%d more info findings; use --format=json for all)"
                !hidden ]
            :: !rows)
    reports;
  (match format with
  | Json ->
    let open Ba_util.Json in
    print_endline
      (to_string
         (Obj
            [
              ("command", String "lint");
              ("algo", String (Ba_core.Align.algo_name algo));
              ("arch", String (Ba_core.Cost_model.arch_name arch));
              ( "totals",
                Obj
                  [
                    ("errors", Int !total_errors); ("warnings", Int !total_warnings);
                    ("infos", Int !total_infos);
                  ] );
              ("workloads", List (List.rev !json_workloads));
            ]))
  | Table ->
    if !rows <> [] then begin
      print_newline ();
      print_string
        (Ba_util.Ascii_table.render ~columns:diag_table_columns ~rows:(List.rev !rows))
    end;
    Printf.printf
      "\nlinted %d workload%s (algorithm %s, cost model %s): %d error%s, %d warning%s, %d info\n"
      (List.length reports)
      (plural (List.length reports))
      (Ba_core.Align.algo_name algo)
      (Ba_core.Cost_model.arch_name arch)
      !total_errors (plural !total_errors) !total_warnings (plural !total_warnings)
      !total_infos);
  if !total_errors > 0 || (strict && !total_warnings > 0) then exit 1

let verify_cmd workload algo arch strict no_audit interproc format max_steps jobs =
  let workloads =
    match workload with Some name -> [ lookup name ] | None -> Ba_workloads.Spec.all
  in
  (* The pool is handed both to the per-workload map and to each
     verify_pipeline: with many workloads the outer map parallelises and
     the inner per-architecture certification runs inline; with a single
     workload the outer map short-circuits and the five architectures
     certify in parallel instead. *)
  let results =
    Ba_par.Pool.with_pool ?jobs (fun pool ->
        Ba_par.Pool.map pool
          (fun (w : Ba_workloads.Spec.t) ->
            (* The memoized traced run: the profile feeds the pipeline and
               the trace lets the auditor quote simulator-exact figures. *)
            let program, profile, trace =
              Ba_workloads.Profiled.get_traced ~max_steps w
            in
            ( w,
              Ba_verify.Run.verify_pipeline ~arch ~max_steps ~profile ~trace
                ~audit:(not no_audit) ~interproc ~algo ~pool program ))
          workloads)
  in
  let total_errors = ref 0 and total_warnings = ref 0 and total_infos = ref 0 in
  let rows = ref [] in
  let json_workloads = ref [] in
  List.iter
    (fun ((w : Ba_workloads.Spec.t), result) ->
      let diags = Ba_verify.Run.diagnostics result in
      let e, warn, i = Ba_analysis.Diagnostic.count diags in
      total_errors := !total_errors + e;
      total_warnings := !total_warnings + warn;
      total_infos := !total_infos + i;
      match format with
      | Json ->
        let open Ba_util.Json in
        json_workloads :=
          Obj
            [
              ("name", String w.Ba_workloads.Spec.name);
              ("verified", Bool result.Ba_verify.Run.verified);
              ("errors", Int e); ("warnings", Int warn); ("infos", Int i);
              ( "certificates",
                List
                  (List.map Ba_verify.Certificate.to_json
                     result.Ba_verify.Run.certificates) );
              ("diagnostics", List (List.map Ba_analysis.Diagnostic.to_json diags));
            ]
          :: !json_workloads
      | Table ->
        Printf.printf
          "%-12s %s  %d certificate%s, %d error%s, %d warning%s, %d improvable \
           site%s\n"
          w.Ba_workloads.Spec.name
          (if result.Ba_verify.Run.verified then "verified" else "NOT VERIFIED")
          (List.length result.Ba_verify.Run.certificates)
          (plural (List.length result.Ba_verify.Run.certificates))
          e (plural e) warn (plural warn) i (plural i);
        let shown = ref 0 and hidden = ref 0 in
        List.iter
          (fun d ->
            if d.Ba_analysis.Diagnostic.severity <> Ba_analysis.Diagnostic.Info
            then rows := (w.Ba_workloads.Spec.name :: Ba_analysis.Diagnostic.to_row d) :: !rows
            else if !shown < max_table_infos then begin
              incr shown;
              rows := (w.Ba_workloads.Spec.name :: Ba_analysis.Diagnostic.to_row d) :: !rows
            end
            else incr hidden)
          diags;
        if !hidden > 0 then
          rows :=
            [ w.Ba_workloads.Spec.name; "info"; "..."; "..."
            ; Printf.sprintf "(%d more info findings; use --format=json for all)"
                !hidden ]
            :: !rows)
    results;
  (match format with
  | Json ->
    let open Ba_util.Json in
    print_endline
      (to_string
         (Obj
            [
              ("command", String "verify");
              ("algo", String (Ba_core.Align.algo_name algo));
              ("arch", String (Ba_core.Cost_model.arch_name arch));
              ( "totals",
                Obj
                  [
                    ("errors", Int !total_errors); ("warnings", Int !total_warnings);
                    ("infos", Int !total_infos);
                  ] );
              ("workloads", List (List.rev !json_workloads));
            ]))
  | Table ->
    if !rows <> [] then begin
      print_newline ();
      print_string
        (Ba_util.Ascii_table.render ~columns:diag_table_columns ~rows:(List.rev !rows))
    end;
    Printf.printf
      "\nverified %d workload%s (algorithm %s, cost model %s): %d error%s, %d \
       warning%s, %d info\n"
      (List.length results)
      (plural (List.length results))
      (Ba_core.Align.algo_name algo)
      (Ba_core.Cost_model.arch_name arch)
      !total_errors (plural !total_errors) !total_warnings (plural !total_warnings)
      !total_infos);
  let unverified =
    List.exists (fun (_, r) -> not r.Ba_verify.Run.verified) results
  in
  if !total_errors > 0 || unverified || (strict && !total_warnings > 0) then exit 1

(* Static predictor-interference analysis: evaluate every predictor
   structure's pure indexing function over the aligned image's address map,
   weight the sites by the profile, and report which entries collide — no
   simulation involved.  The default is the whole workload × algorithm ×
   cost-model matrix (the lint-all shape); narrowing to a single cell
   switches to the detailed per-structure report. *)

let analyze_algos =
  [
    Ba_core.Align.Original; Ba_core.Align.Greedy; Ba_core.Align.Cost;
    Ba_core.Align.Tryn 15;
  ]

let analyze_arches =
  [
    Ba_core.Cost_model.Fallthrough; Ba_core.Cost_model.Btfnt;
    Ba_core.Cost_model.Likely; Ba_core.Cost_model.Pht; Ba_core.Cost_model.Btb;
  ]

type placement_outcome = {
  p_before : int;
  p_after : int;
  p_swaps : int;
  p_pads : int;
  p_verified : bool;
}

type analyze_cell = {
  cell_workload : Ba_workloads.Spec.t;
  cell_algo : Ba_core.Align.algo;
  cell_arch : Ba_core.Cost_model.arch;
  cell_reports : Ba_conflict.Analyze.report list;
  cell_placement : placement_outcome option;
}

let analyze_eval ~max_steps ~do_place (w, al, ar) =
  let program, profile = Ba_workloads.Profiled.get ~max_steps w in
  let decisions =
    match al with
    | Ba_core.Align.Original ->
      Array.init (Ba_ir.Program.n_procs program) (fun p ->
          Ba_layout.Decision.identity (Ba_ir.Program.proc program p))
    | _ -> Ba_core.Align.align_program al ~arch:ar profile
  in
  let image = Ba_layout.Image.build ~profile program decisions in
  let cell_reports = Ba_conflict.Analyze.analyze ~profile image in
  let cell_placement =
    if not do_place then None
    else begin
      let place = Ba_conflict.Place.improve ~arch:ar ~profile program decisions in
      (* Placement perturbed the layout; prove the perturbed image is still
         the same program (bisimulation) and still priced correctly (cost
         certification) before trusting its conflict numbers. *)
      let bisim, _certs, cert_diags, _audit =
        Ba_verify.Run.verify_image ~audit:false
          ~workload:w.Ba_workloads.Spec.name
          ~algo:(Ba_core.Align.algo_name al) ~profile
          place.Ba_conflict.Place.image
      in
      let errs, _, _ = Ba_analysis.Diagnostic.count (bisim @ cert_diags) in
      Some
        {
          p_before = place.Ba_conflict.Place.before;
          p_after = place.Ba_conflict.Place.after;
          p_swaps = place.Ba_conflict.Place.swaps;
          p_pads = Array.fold_left ( + ) 0 place.Ba_conflict.Place.pads;
          p_verified = errs = 0;
        }
    end
  in
  { cell_workload = w; cell_algo = al; cell_arch = ar; cell_reports; cell_placement }

let structure_matrix_cell (r : Ba_conflict.Analyze.report) =
  match r.Ba_conflict.Analyze.body with
  | Ba_conflict.Analyze.Map m ->
    Ba_util.Ascii_table.int_cell
      (m.Ba_conflict.Analyze.conflict_weight
      + m.Ba_conflict.Analyze.destructive_weight)
  | Ba_conflict.Analyze.Stack s -> (
    match s.Ba_conflict.Analyze.static_bound with
    | None -> "rec!"
    | Some b ->
      Printf.sprintf "%d%s" b
        (if s.Ba_conflict.Analyze.overflow_possible then "!" else ""))

let analyze_cmd workload algo arch do_place format max_steps jobs =
  let workloads =
    match workload with Some name -> [ lookup name ] | None -> Ba_workloads.Spec.all
  in
  let algos = match algo with Some a -> [ a ] | None -> analyze_algos in
  let arches = match arch with Some a -> [ a ] | None -> analyze_arches in
  let cells =
    List.concat_map
      (fun w ->
        List.concat_map
          (fun al -> List.map (fun ar -> (w, al, ar)) arches)
          algos)
      workloads
  in
  let cells =
    Ba_par.Pool.with_pool ?jobs (fun pool ->
        Ba_par.Pool.map pool (analyze_eval ~max_steps ~do_place) cells)
  in
  (match format with
  | Json ->
    let open Ba_util.Json in
    print_endline
      (to_string
         (Obj
            [
              ("command", String "analyze");
              ( "cells",
                List
                  (List.map
                     (fun c ->
                       Obj
                         ([
                            ("workload", String c.cell_workload.Ba_workloads.Spec.name);
                            ("algo", String (Ba_core.Align.algo_name c.cell_algo));
                            ("arch", String (Ba_core.Cost_model.arch_name c.cell_arch));
                            ( "objective",
                              Int (Ba_conflict.Analyze.objective c.cell_reports) );
                            ("structures", Ba_conflict.Analyze.to_json c.cell_reports);
                          ]
                         @
                         match c.cell_placement with
                         | None -> []
                         | Some p ->
                           [
                             ( "placement",
                               Obj
                                 [
                                   ("conflict_weight_before", Int p.p_before);
                                   ("conflict_weight_after", Int p.p_after);
                                   ("swaps", Int p.p_swaps);
                                   ("pad_slots", Int p.p_pads);
                                   ("verified", Bool p.p_verified);
                                 ] );
                           ]))
                     cells) );
            ]))
  | Table -> (
    match cells with
    | [ c ] ->
      Printf.printf "workload %s, algorithm %s, cost model %s\n\n"
        c.cell_workload.Ba_workloads.Spec.name
        (Ba_core.Align.algo_name c.cell_algo)
        (Ba_core.Cost_model.arch_name c.cell_arch);
      print_string (Ba_conflict.Analyze.render c.cell_reports);
      (match c.cell_placement with
      | None -> ()
      | Some p ->
        Printf.printf
          "\nplacement: conflict weight %d -> %d (%d swap%s, %d pad slot%s), %s\n"
          p.p_before p.p_after p.p_swaps (plural p.p_swaps) p.p_pads
          (plural p.p_pads)
          (if p.p_verified then "placed image verified"
           else "placed image FAILED verification"))
    | _ ->
      let open Ba_util.Ascii_table in
      let columns =
        [ column ~align:Left "workload"; column ~align:Left "algo";
          column ~align:Left "arch" ]
        @ List.map
            (fun s -> column (Ba_conflict.Structure.name s))
            Ba_conflict.Structure.default_suite
        @ [ column "total" ]
        @
        if do_place then
          [ column "conflict-wt"; column "swaps"; column "pads";
            column ~align:Left "verified" ]
        else []
      in
      let rows =
        List.map
          (fun c ->
            [
              c.cell_workload.Ba_workloads.Spec.name;
              Ba_core.Align.algo_name c.cell_algo;
              Ba_core.Cost_model.arch_name c.cell_arch;
            ]
            @ List.map structure_matrix_cell c.cell_reports
            @ [ int_cell (Ba_conflict.Analyze.objective c.cell_reports) ]
            @
            match c.cell_placement with
            | None -> []
            | Some p ->
              [
                Printf.sprintf "%d>%d" p.p_before p.p_after;
                int_cell p.p_swaps;
                int_cell p.p_pads;
                (if p.p_verified then "yes" else "NO");
              ])
          cells
      in
      print_string (render ~columns ~rows)));
  if
    do_place
    && List.exists
         (fun c ->
           match c.cell_placement with Some p -> not p.p_verified | None -> false)
         cells
  then exit 1

(* Static cost bounds: abstract-interpret each cell's lowered image into a
   sound [lower, upper] interval on expected penalty cycles — no
   simulation, pure arithmetic over the address map and the profile.  A
   single cell prints the per-site detail rows; the default is the
   workload x algorithm x cost-model matrix. *)

type bound_cell = {
  b_workload : Ba_workloads.Spec.t;
  b_algo : Ba_core.Align.algo;
  b_arch : Ba_core.Cost_model.arch;
  b_analysis : Ba_bound.Analyze.t;
}

let bound_eval ~max_steps (w, al, ar) =
  let program, profile = Ba_workloads.Profiled.get ~max_steps w in
  let image = image_for al ar profile program in
  let sim_arch = Ba_bound.Analyze.arch_of_model ar ~profile image in
  {
    b_workload = w;
    b_algo = al;
    b_arch = ar;
    b_analysis = Ba_bound.Analyze.analyze ~arch:sim_arch ~profile image;
  }

let bound_row_json (r : Ba_bound.Analyze.row) =
  let open Ba_util.Json in
  Obj
    [
      ("proc", Int r.Ba_bound.Analyze.proc);
      ("block", Int r.Ba_bound.Analyze.block);
      ("pc", Int r.Ba_bound.Analyze.pc);
      ("pooled", Int r.Ba_bound.Analyze.pooled);
      ("weight", Int r.Ba_bound.Analyze.weight);
      ("what", String r.Ba_bound.Analyze.what);
      ("lower", Int r.Ba_bound.Analyze.penalty.Ba_bound.Domain.lo);
      ("upper", Int r.Ba_bound.Analyze.penalty.Ba_bound.Domain.hi);
    ]

let bound_cmd workload algo arch format max_steps jobs =
  let workloads =
    match workload with Some name -> [ lookup name ] | None -> Ba_workloads.Spec.all
  in
  let algos = match algo with Some a -> [ a ] | None -> analyze_algos in
  let arches = match arch with Some a -> [ a ] | None -> analyze_arches in
  let cells =
    List.concat_map
      (fun w ->
        List.concat_map
          (fun al -> List.map (fun ar -> (w, al, ar)) arches)
          algos)
      workloads
  in
  let cells =
    Ba_par.Pool.with_pool ?jobs (fun pool ->
        Ba_par.Pool.map pool (bound_eval ~max_steps) cells)
  in
  match format with
  | Json ->
    let open Ba_util.Json in
    print_endline
      (to_string
         (Obj
            [
              ("command", String "bound");
              ( "cells",
                List
                  (List.map
                     (fun c ->
                       let a = c.b_analysis in
                       Obj
                         [
                           ("workload", String c.b_workload.Ba_workloads.Spec.name);
                           ("algo", String (Ba_core.Align.algo_name c.b_algo));
                           ("arch", String (Ba_core.Cost_model.arch_name c.b_arch));
                           ( "sim_arch",
                             String (Ba_sim.Bep.arch_label a.Ba_bound.Analyze.arch) );
                           ("lower", Int a.Ba_bound.Analyze.total.Ba_bound.Domain.lo);
                           ("upper", Int a.Ba_bound.Analyze.total.Ba_bound.Domain.hi);
                           ("extra_lower", Int a.Ba_bound.Analyze.extra_lo);
                           ( "sites",
                             List (List.map bound_row_json a.Ba_bound.Analyze.rows) );
                         ])
                     cells) );
            ]))
  | Table -> (
    match cells with
    | [ c ] ->
      let a = c.b_analysis in
      Printf.printf
        "workload %s, algorithm %s, cost model %s (simulated as %s)\n\n"
        c.b_workload.Ba_workloads.Spec.name
        (Ba_core.Align.algo_name c.b_algo)
        (Ba_core.Cost_model.arch_name c.b_arch)
        (Ba_sim.Bep.arch_label a.Ba_bound.Analyze.arch);
      let columns =
        Ba_util.Ascii_table.
          [
            column "proc"; column "pc"; column ~align:Left "site"; column "pooled";
            column "weight"; column "lower"; column "upper"; column "width";
          ]
      in
      let rows =
        List.map
          (fun (r : Ba_bound.Analyze.row) ->
            Ba_util.Ascii_table.
              [
                string_of_int r.Ba_bound.Analyze.proc;
                string_of_int r.Ba_bound.Analyze.pc;
                r.Ba_bound.Analyze.what;
                string_of_int r.Ba_bound.Analyze.pooled;
                int_cell r.Ba_bound.Analyze.weight;
                int_cell r.Ba_bound.Analyze.penalty.Ba_bound.Domain.lo;
                int_cell r.Ba_bound.Analyze.penalty.Ba_bound.Domain.hi;
                int_cell (Ba_bound.Domain.width r.Ba_bound.Analyze.penalty);
              ])
          a.Ba_bound.Analyze.rows
      in
      print_string (Ba_util.Ascii_table.render ~columns ~rows);
      if a.Ba_bound.Analyze.extra_lo > 0 then
        Printf.printf "\nwhole-layout extra lower bound: %d cycle%s\n"
          a.Ba_bound.Analyze.extra_lo
          (plural a.Ba_bound.Analyze.extra_lo);
      Printf.printf "\ntotal: [%s, %s] penalty cycles (width %s)\n"
        (Ba_util.Ascii_table.int_cell a.Ba_bound.Analyze.total.Ba_bound.Domain.lo)
        (Ba_util.Ascii_table.int_cell a.Ba_bound.Analyze.total.Ba_bound.Domain.hi)
        (Ba_util.Ascii_table.int_cell (Ba_bound.Domain.width a.Ba_bound.Analyze.total))
    | _ ->
      let open Ba_util.Ascii_table in
      let columns =
        [
          column ~align:Left "workload"; column ~align:Left "algo";
          column ~align:Left "arch"; column "sites"; column "lower";
          column "upper"; column "width";
        ]
      in
      let rows =
        List.map
          (fun c ->
            let a = c.b_analysis in
            [
              c.b_workload.Ba_workloads.Spec.name;
              Ba_core.Align.algo_name c.b_algo;
              Ba_core.Cost_model.arch_name c.b_arch;
              string_of_int (List.length a.Ba_bound.Analyze.rows);
              int_cell a.Ba_bound.Analyze.total.Ba_bound.Domain.lo;
              int_cell a.Ba_bound.Analyze.total.Ba_bound.Domain.hi;
              int_cell (Ba_bound.Domain.width a.Ba_bound.Analyze.total);
            ])
          cells
      in
      print_string (render ~columns ~rows))

let list_cmd () =
  let columns =
    Ba_util.Ascii_table.
      [ column ~align:Left "name"; column ~align:Left "class"; column ~align:Left "imitates" ]
  in
  let rows =
    List.map
      (fun (w : Ba_workloads.Spec.t) ->
        [ w.name; Ba_workloads.Spec.cls_name w.cls; w.description ])
      Ba_workloads.Spec.all
  in
  print_string (Ba_util.Ascii_table.render ~columns ~rows)

let dump_cfg_cmd name proc_id max_steps =
  let workload = lookup name in
  let program = workload.Ba_workloads.Spec.build () in
  let profile = Ba_exec.Engine.profile_program ~max_steps program in
  if proc_id < 0 || proc_id >= Ba_ir.Program.n_procs program then begin
    Printf.eprintf "procedure id out of range (program has %d)\n"
      (Ba_ir.Program.n_procs program);
    exit 1
  end;
  print_string (Ba_cfg.Graph.dot ~profile:(profile, proc_id) (Ba_ir.Program.proc program proc_id))

(* Alignment-as-a-service: block in the persistent request loop until
   SIGINT/SIGTERM, then drain and exit.  All the interesting behaviour
   (batching, sharded caching, backpressure) lives in Ba_serve.Server. *)
let serve_cmd socket jobs cache_mb queue_len batch_max =
  let cfg =
    {
      (Ba_serve.Server.default_config ~socket_path:socket) with
      jobs;
      cache_mb;
      queue_len;
      batch_max;
    }
  in
  Printf.printf "serving on %s (queue %d, batch %d%s)\n%!" socket queue_len
    batch_max
    (match jobs with Some j -> Printf.sprintf ", %d jobs" j | None -> "");
  Ba_serve.Server.run cfg;
  print_endline "drained, bye"

let () =
  (match Ba_par.Pool.check_env () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("branch_align: " ^ msg);
    exit 2);
  let proc_arg =
    Arg.(value & opt int 0 & info [ "proc" ] ~doc:"Procedure id to dump.")
  in
  let interproc_arg =
    let doc =
      "Build the aligned image with the inter-procedural layout: procedures \
       chained along their heaviest call edges and all-cold layout suffixes \
       moved to one trailing cold section.  Decisions are unchanged — only \
       address assignment differs."
    in
    Arg.(value & flag & info [ "interproc" ] ~doc)
  in
  let run =
    Cmd.v
      (Cmd.info "run" ~doc:"Profile, align and compare a workload.")
      Term.(
        const run_cmd $ workload_arg $ algo_arg $ arch_arg $ interproc_arg
        $ max_steps_arg)
  in
  let list =
    Cmd.v (Cmd.info "list" ~doc:"List available workloads.") Term.(const list_cmd $ const ())
  in
  let dump =
    Cmd.v
      (Cmd.info "dump-cfg" ~doc:"Print a procedure's profiled CFG as GraphViz.")
      Term.(const dump_cfg_cmd $ workload_arg $ proc_arg $ max_steps_arg)
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"How many sites to show.")
  in
  let hotspots =
    Cmd.v
      (Cmd.info "hotspots" ~doc:"Show the hottest branch sites of a workload.")
      Term.(const hotspots_cmd $ workload_arg $ top_arg $ max_steps_arg)
  in
  let trace_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "trace" ] ~doc:"Path of the binary trace file.")
  in
  let record =
    Cmd.v
      (Cmd.info "record" ~doc:"Record a workload's branch trace to a file.")
      Term.(const record_cmd $ workload_arg $ trace_arg $ max_steps_arg)
  in
  let replay =
    Cmd.v
      (Cmd.info "replay" ~doc:"Replay a recorded trace through the predictors.")
      Term.(const replay_cmd $ trace_arg)
  in
  let trace_group =
    let record =
      Cmd.v
        (Cmd.info "record"
           ~doc:
             "Record a workload's packed semantic trace (outcome bits and \
              switch/vcall indices only — layout-independent) to a file.")
        Term.(const trace_record_cmd $ workload_arg $ trace_arg $ max_steps_arg)
    in
    let replay =
      Cmd.v
        (Cmd.info "replay"
           ~doc:
             "Replay a packed semantic trace through any layout of its \
              workload via the flat replayer; no interpreter pass for \
              $(b,--algo orig).")
        Term.(const trace_replay_cmd $ workload_arg $ trace_arg $ algo_arg $ arch_arg)
    in
    Cmd.group
      (Cmd.info "trace"
         ~doc:"Record/replay packed semantic traces (magic BAST1).")
      [ record; replay ]
  in
  let align =
    let align_algo_arg =
      let doc =
        "Alignment algorithm: orig, greedy, cost, tryN (e.g. try15), or \
         anneal (the seeded annealing search)."
      in
      Arg.(value & opt align_algo_conv Anneal & info [ "algo" ] ~doc)
    in
    let seed_arg =
      let doc = "PRNG seed for the annealing search." in
      Arg.(value & opt int 0 & info [ "seed" ] ~doc)
    in
    let sweeps_arg =
      let doc = "Annealing sweeps over the move vocabulary, per procedure." in
      Arg.(
        value & opt int Ba_delta.Anneal.default_sweeps & info [ "sweeps" ] ~doc)
    in
    Cmd.v
      (Cmd.info "align"
         ~doc:
           "Align one workload and print the resulting layout: block orders, \
            forced jump legs, expected cost and exact simulated penalty \
            cycles.  $(b,--algo anneal) runs the seeded annealing search; \
            output is byte-identical at any $(b,-j).")
      Term.(
        const align_cmd $ workload_arg $ align_algo_arg $ arch_arg $ seed_arg
        $ sweeps_arg $ max_steps_arg $ jobs_arg)
  in
  let disasm =
    Cmd.v
      (Cmd.info "disasm"
         ~doc:"Disassemble a procedure, original and aligned side by side.")
      Term.(
        const disasm_cmd $ workload_arg $ algo_arg $ arch_arg
        $ Arg.(value & opt int 0 & info [ "proc" ] ~doc:"Procedure id.")
        $ max_steps_arg)
  in
  let metrics_arg =
    let doc =
      "Collect pipeline metrics while profiling, aligning and simulating, and \
       print them after the table.  $(b,--metrics) prints ASCII tables; \
       $(b,--metrics=json) prints the deterministic JSON document."
    in
    let fmt =
      Arg.enum [ ("ascii", Ba_obs.Sink.Ascii); ("json", Ba_obs.Sink.Json) ]
    in
    Arg.(
      value
      & opt ~vopt:(Some Ba_obs.Sink.Ascii) (some fmt) None
      & info [ "metrics" ] ~doc)
  in
  let simulate =
    Cmd.v
      (Cmd.info "simulate"
         ~doc:
           "Profile, align and run a workload through every BEP architecture, \
            reporting per-architecture accuracy and penalty cycles (use \
            $(b,--algo orig) for the unaligned layout).")
      Term.(
        const simulate_cmd $ workload_arg $ algo_arg $ arch_arg $ max_steps_arg
        $ metrics_arg)
  in
  let workload_opt_arg =
    let doc = "Workload to check; omit to check every built-in workload." in
    Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~doc)
  in
  let strict_arg =
    let doc = "Treat warnings as fatal (non-zero exit)." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let analyze =
    let algo_opt_arg =
      let doc =
        "Restrict to one algorithm (default: orig, greedy, cost and try15)."
      in
      Arg.(value & opt (some algo_conv) None & info [ "algo" ] ~doc)
    in
    let arch_opt_arg =
      let doc = "Restrict to one cost-model architecture (default: all five)." in
      Arg.(value & opt (some arch_conv) None & info [ "arch" ] ~doc)
    in
    let placement_arg =
      let doc =
        "Run the conflict-aware placement post-pass on every cell, report \
         the conflict objective before and after, and re-verify each placed \
         image (bisimulation and cost certification); exits non-zero if any \
         placed image fails to verify."
      in
      Arg.(value & flag & info [ "placement" ] ~doc)
    in
    Cmd.v
      (Cmd.info "analyze"
         ~doc:
           "Static predictor-interference analysis: evaluate each predictor \
            structure's indexing function over the aligned image's address \
            map and report the weighted conflicts (PHT aliasing, BTB set \
            pressure, RAS depth, cache-line sharing) — per workload, \
            algorithm and cost model, with no simulation.")
      Term.(
        const analyze_cmd $ workload_opt_arg $ algo_opt_arg $ arch_opt_arg
        $ placement_arg $ format_arg $ max_steps_arg $ jobs_arg)
  in
  let bound =
    let algo_opt_arg =
      let doc =
        "Restrict to one algorithm (default: orig, greedy, cost and try15)."
      in
      Arg.(value & opt (some algo_conv) None & info [ "algo" ] ~doc)
    in
    let arch_opt_arg =
      let doc = "Restrict to one cost-model architecture (default: all five)." in
      Arg.(value & opt (some arch_conv) None & info [ "arch" ] ~doc)
    in
    Cmd.v
      (Cmd.info "bound"
         ~doc:
           "Static cost bounds: abstract-interpret each lowered image into a \
            sound [lower, upper] interval on its expected branch-penalty \
            cycles — per workload, algorithm and cost model, with no \
            simulation.  A single cell prints the per-site detail; output is \
            byte-identical at any $(b,-j).")
      Term.(
        const bound_cmd $ workload_opt_arg $ algo_opt_arg $ arch_opt_arg
        $ format_arg $ max_steps_arg $ jobs_arg)
  in
  let lint =
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Run the five-stage static checker (IR, profile, decision, linear, \
            image) over the whole alignment pipeline; exits non-zero on any error.")
      Term.(const lint_cmd $ workload_opt_arg $ algo_arg $ arch_arg $ strict_arg
            $ format_arg $ max_steps_arg $ jobs_arg)
  in
  let verify =
    let no_audit_arg =
      let doc = "Skip the optimality audit (bisimulation and certification only)." in
      Arg.(value & flag & info [ "no-audit" ] ~doc)
    in
    let interproc_arg =
      let doc =
        "Verify the inter-procedural layout instead of the classic one: the \
         image is built with call-graph stitching and hot/cold splitting, \
         and the whole-image address map (procedure order, one cold \
         section, no overlaps) is checked alongside the per-procedure \
         bisimulation."
      in
      Arg.(value & flag & info [ "interproc" ] ~doc)
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Lint, then prove each lowered layout equivalent to its source CFG \
            (translation validation), certify its expected cost on every \
            architecture against an independent recomputation, and audit it \
            for locally improvable decisions; exits non-zero unless every \
            workload verifies.")
      Term.(const verify_cmd $ workload_opt_arg $ algo_arg $ arch_arg
            $ strict_arg $ no_audit_arg $ interproc_arg $ format_arg
            $ max_steps_arg $ jobs_arg)
  in
  let serve =
    let socket_arg =
      let doc = "Unix socket path to serve on." in
      Arg.(required & opt (some string) None & info [ "socket" ] ~doc)
    in
    let cache_mb_arg =
      let doc =
        "Byte budget of the sharded profile/trace cache, in MiB (default \
         512; 0 or less removes the bound)."
      in
      Arg.(value & opt (some int) None & info [ "cache-mb" ] ~doc)
    in
    let queue_len_arg =
      let doc =
        "Admission-queue bound; requests beyond it are answered \
         $(b,overloaded) immediately."
      in
      Arg.(value & opt int 256 & info [ "queue-len" ] ~doc)
    in
    let batch_max_arg =
      let doc = "Maximum requests dispatched per pool batch." in
      Arg.(value & opt int 64 & info [ "batch-max" ] ~doc)
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Serve align/simulate/verify/analyze/tables requests over a Unix \
            socket: batched through the deterministic pool (responses are \
            byte-identical at any $(b,-j)), cached in the sharded LRU, with \
            bounded-queue backpressure and graceful drain on \
            SIGINT/SIGTERM.")
      Term.(
        const serve_cmd $ socket_arg $ jobs_arg $ cache_mb_arg $ queue_len_arg
        $ batch_max_arg)
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "branch_align"
             ~doc:"Profile-guided branch alignment (Calder & Grunwald, ASPLOS 1994).")
          [ run; list; dump; hotspots; record; replay; trace_group; align;
            disasm; simulate; analyze; bound; lint; verify; serve ]))
