#!/bin/sh
# Every Ba_core.Align.algo constructor must appear in at least one test
# wall.  The walls sweep Matrix.algos (test/matrix.ml), so in practice a
# new constructor only has to be added there — but the sweep lists are
# values, not the type, and nothing in the compiler ties them together.
# This guard does: it scrapes the constructor names out of align.mli and
# greps the test sources for each, failing the build when one never
# shows up.
set -eu

root=$(dirname "$0")/..
mli="$root/lib/core/align.mli"
tests="$root/test"

constructors=$(awk '
  /^type algo =/ { in_type = 1; next }
  in_type && /^[^ |]/ { in_type = 0 }
  in_type && /^  \| / { sub(/^  \| /, ""); sub(/ .*/, ""); print }
' "$mli")

if [ -z "$constructors" ]; then
  echo "check_algo_walls: no constructors parsed from $mli" >&2
  exit 2
fi

missing=0
for c in $constructors; do
  if grep -rqE "Align\.$c|\| *$c\b" "$tests" --include='*.ml'; then
    echo "ok   Align.$c appears in the test walls"
  else
    echo "FAIL Align.$c appears in no test wall (add it to test/matrix.ml)" >&2
    missing=1
  fi
done

exit $missing
