(* Quickstart: build a small program by hand, profile it, align it, and
   watch the branch costs drop.

     dune exec examples/quickstart.exe

   The program is a typical compiler artifact: a while-loop whose body
   contains an unbalanced if/else (the *else* side is hot, but the compiler
   laid the *then* side on the fall-through path), reached through a small
   entry block. *)

open Ba_ir

let program =
  let b = Ba_workloads.Builder.create ~name:"quickstart" ~seed:2024 in
  let main = Ba_workloads.Builder.declare b ~name:"main" in
  Ba_workloads.Builder.define b main (fun pb ->
      let open Ba_workloads.Builder in
      seq pb
        [
          (fun pb -> basic pb ~insns:5 ());
          (fun pb ->
            while_loop pb ~trips:10_000
              ~body:(fun pb ->
                if_else pb ~p_true:0.1 (* the then-arm is cold... *)
                  ~then_:(fun pb -> basic pb ~insns:6 ())
                  ~else_:(fun pb -> basic pb ~insns:4 ()) (* ...this one is hot *)));
        ]);
  Ba_workloads.Builder.build b

let () =
  (* 1. Profile the original layout. *)
  let profile = Ba_exec.Engine.profile_program program in
  Fmt.pr "Original control flow graph of main (edge weights from the profile):@.%s@."
    (Ba_cfg.Graph.dot ~profile:(profile, 0) (Program.proc program 0));

  (* 2. Simulate the original binary on a FALLTHROUGH pipeline. *)
  let archs = [ Ba_sim.Bep.Static_fallthrough; Ba_sim.Bep.Static_btfnt ] in
  let orig = Ba_sim.Runner.simulate ~archs (Ba_layout.Image.original program) in
  let orig_insns = orig.Ba_sim.Runner.result.Ba_exec.Engine.insns in

  (* 3. Align with the paper's Try15 algorithm under the FALLTHROUGH cost
        model and rerun.  The aligned image is a complete rewritten binary:
        blocks reordered, branch senses flipped, jumps added/removed. *)
  let aligned_image =
    Ba_core.Align.image (Ba_core.Align.Tryn 15) ~arch:Ba_core.Cost_model.Fallthrough
      profile
  in
  let aligned = Ba_sim.Runner.simulate ~archs aligned_image in

  let report label (out : Ba_sim.Runner.outcome) =
    Fmt.pr "%s:@." label;
    Fmt.pr "  instructions executed : %s@."
      (Ba_util.Ascii_table.int_cell out.Ba_sim.Runner.result.Ba_exec.Engine.insns);
    Fmt.pr "  fall-through conds    : %.1f%%@."
      (Ba_exec.Trace_stats.pct_cond_fallthrough out.Ba_sim.Runner.stats);
    Array.iter
      (fun (arch, sim) ->
        Fmt.pr "  %-12s relative CPI %.3f  (misfetch %d, mispredict %d)@."
          (Ba_sim.Bep.arch_label arch)
          (Ba_sim.Bep.relative_cpi sim
             ~insns:out.Ba_sim.Runner.result.Ba_exec.Engine.insns ~orig_insns)
          (Ba_sim.Bep.counts sim).Ba_sim.Bep.misfetches
          (Ba_sim.Bep.counts sim).Ba_sim.Bep.mispredicts)
      out.Ba_sim.Runner.sims
  in
  report "Original layout" orig;
  report "After Try15 branch alignment (FALLTHROUGH cost model)" aligned;
  Fmt.pr "@.Aligned block order of main: %a@."
    Ba_layout.Decision.pp
    aligned_image.Ba_layout.Image.linears.(0).Ba_layout.Linear.decision;
  Fmt.pr
    "@.The alignment above was tuned for FALLTHROUGH, so BT/FNT barely moves —@.\
     the paper's point that \"a single branch alignment transformation will not@.\
     always give an optimal alignment for the different architectures\".  Pass@.\
     ~arch:Btfnt to Align.image to tune for BT/FNT instead.@."
