(* A tour of the branch prediction architectures.

     dune exec examples/predictor_tour.exe [workload]

   Runs one workload (default: espresso) through every architecture the
   paper simulates — three static rules, two pattern history tables, two
   BTBs, all with a 32-entry return stack — before and after Try15
   alignment, and prints accuracies, penalty events and relative CPI. *)

let workload_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "espresso"

let () =
  let workload =
    match Ba_workloads.Spec.by_name workload_name with
    | Some w -> w
    | None ->
      Fmt.epr "unknown workload %s; available:@." workload_name;
      List.iter
        (fun (w : Ba_workloads.Spec.t) -> Fmt.epr "  %s@." w.Ba_workloads.Spec.name)
        Ba_workloads.Spec.all;
      exit 1
  in
  let program = workload.Ba_workloads.Spec.build () in
  Fmt.pr "workload %s: %s@.@." workload.Ba_workloads.Spec.name
    workload.Ba_workloads.Spec.description;
  let profile = Ba_exec.Engine.profile_program program in
  let archs image =
    [
      Ba_sim.Bep.Static_fallthrough;
      Ba_sim.Bep.Static_btfnt;
      Ba_sim.Bep.Static_likely (Ba_predict.Likely_bits.build image profile);
      Ba_sim.Bep.Pht_direct { entries = 4096 };
      Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 };
      Ba_sim.Bep.Pht_global { history_bits = 12 };
      Ba_sim.Bep.Pht_local { history_bits = 12; branch_entries = 1024 };
      Ba_sim.Bep.Btb_arch { entries = 64; assoc = 2 };
      Ba_sim.Bep.Btb_arch { entries = 256; assoc = 4 };
    ]
  in
  let orig_image = Ba_layout.Image.original ~profile program in
  let orig = Ba_sim.Runner.simulate ~archs:(archs orig_image) orig_image in
  let orig_insns = orig.Ba_sim.Runner.result.Ba_exec.Engine.insns in
  (* Each architecture is evaluated on the image aligned with its own cost
     model, as in the paper's Table 3/4 "Try15" columns. *)
  let aligned_for model arch =
    let image = Ba_core.Align.image (Ba_core.Align.Tryn 15) ~arch:model profile in
    (* LIKELY hint bits are per-image: rebuild them for the aligned code. *)
    let arch =
      match arch with
      | Ba_sim.Bep.Static_likely _ ->
        Ba_sim.Bep.Static_likely (Ba_predict.Likely_bits.build image profile)
      | other -> other
    in
    let out = Ba_sim.Runner.simulate ~archs:[ arch ] image in
    (out, snd out.Ba_sim.Runner.sims.(0))
  in
  let open Ba_util.Ascii_table in
  let columns =
    [
      column ~align:Left "architecture"; column "accuracy";
      column "misfetch"; column "mispredict"; column "CPI orig"; column "CPI aligned";
    ]
  in
  let model_for arch =
    match arch with
    | Ba_sim.Bep.Static_fallthrough -> Ba_core.Cost_model.Fallthrough
    | Ba_sim.Bep.Static_btfnt -> Ba_core.Cost_model.Btfnt
    | Ba_sim.Bep.Static_likely _ -> Ba_core.Cost_model.Likely
    | Ba_sim.Bep.Pht_direct _ | Ba_sim.Bep.Pht_gshare _ | Ba_sim.Bep.Pht_global _
    | Ba_sim.Bep.Pht_local _ -> Ba_core.Cost_model.Pht
    | Ba_sim.Bep.Btb_arch _ -> Ba_core.Cost_model.Btb
  in
  let rows =
    List.map
      (fun (arch, osim) ->
        let aligned_out, asim = aligned_for (model_for arch) arch in
        let c = Ba_sim.Bep.counts osim in
        [
          Ba_sim.Bep.arch_label arch;
          Printf.sprintf "%.1f%%" (100.0 *. Ba_sim.Bep.cond_accuracy osim);
          int_cell c.Ba_sim.Bep.misfetches;
          int_cell c.Ba_sim.Bep.mispredicts;
          float_cell (Ba_sim.Bep.relative_cpi osim ~insns:orig_insns ~orig_insns);
          float_cell
            (Ba_sim.Bep.relative_cpi asim
               ~insns:aligned_out.Ba_sim.Runner.result.Ba_exec.Engine.insns ~orig_insns);
        ])
      (Array.to_list orig.Ba_sim.Runner.sims)
  in
  print_string (render ~columns ~rows);
  Fmt.pr
    "@.Note how alignment helps the static architectures most (FALLTHROUGH in@.\
     particular), the PHTs moderately (misfetch removal only), and the BTBs@.\
     least — the ordering of §6 of the paper.@."
