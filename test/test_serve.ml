(* Tests for the serving stack: the wire protocol (framing, JSON parsing,
   request/response round-trips), the sharded compute-once LRU behind
   Ba_workloads.Profiled, trace persistence under concurrent readers, and
   the server itself end to end — including the determinism-under-[-j]
   contract, the overload path, and graceful SIGTERM drain. *)

module P = Ba_serve.Protocol
module Lru = Ba_par.Lru
module J = Ba_util.Json

let wave5 () = Option.get (Ba_workloads.Spec.by_name "wave5")

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let test_request_round_trip () =
  let reqs =
    [
      P.request ~id:0 P.Ping;
      P.request ~workload:"wave5" ~algo:"try15" ~arch:"btfnt" ~max_steps:4000
        ~id:7 P.Align;
      P.request ~workload:"gcc" ~id:12345 P.Simulate;
      P.request ~workload:"alvinn" ~algo:"exttsp" ~id:2 P.Verify;
      P.request ~workload:"wave5" ~id:3 P.Analyze;
      P.request ~workload:"wave5" ~id:4 P.Tables;
      P.request ~id:5 P.Metrics;
    ]
  in
  List.iter
    (fun (r : P.request) ->
      let s = J.to_string (P.request_to_json r) in
      match J.parse s with
      | Error e -> Alcotest.fail ("reparse failed: " ^ e)
      | Ok j -> (
        match P.request_of_json j with
        | Error e -> Alcotest.fail ("decode failed: " ^ e)
        | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "request %d round-trips" r.P.id)
            true (r = r')))
    reqs

let test_response_round_trip () =
  let resps =
    [
      { P.rid = 1; status = P.Ok_; body = J.Obj [ ("x", J.Int 3) ] };
      { P.rid = 2; status = P.Error_ "unknown workload \"zzz\""; body = J.Null };
      { P.rid = 3; status = P.Overloaded; body = J.Null };
    ]
  in
  List.iter
    (fun (r : P.response) ->
      let s = J.to_string (P.response_to_json r) in
      match J.parse s with
      | Error e -> Alcotest.fail ("reparse failed: " ^ e)
      | Ok j -> (
        match P.response_of_json j with
        | Error e -> Alcotest.fail ("decode failed: " ^ e)
        | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "response %d round-trips" r.P.rid)
            true (r = r')))
    resps

(* Feeding two frames one byte at a time must yield exactly the two
   payloads, in order — the server's IO loop sees arbitrary read
   boundaries. *)
let test_framer_chunked () =
  let payloads = [ "first payload"; {|{"id":9,"kind":"ping"}|} ] in
  let wire = String.concat "" (List.map P.frame payloads) in
  let f = P.Framer.create () in
  String.iter
    (fun c ->
      match P.Framer.feed f (Bytes.make 1 c) 0 1 with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("feed failed: " ^ e))
    wire;
  List.iter
    (fun expected ->
      match P.Framer.next f with
      | Some got -> Alcotest.(check string) "payload" expected got
      | None -> Alcotest.fail "frame missing")
    payloads;
  Alcotest.(check bool) "drained" true (P.Framer.next f = None)

let test_framer_oversize () =
  let f = P.Framer.create () in
  let header = Bytes.create 4 in
  (* A length just past the cap must poison the connection. *)
  Bytes.set_int32_be header 0 (Int32.of_int (P.max_frame_bytes + 1));
  match P.Framer.feed f header 0 4 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oversized frame accepted"

let json_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 return J.Null;
                 map (fun b -> J.Bool b) bool;
                 map (fun i -> J.Int i) int;
                 map (fun s -> J.String s) (string_size (int_bound 12));
               ]
           in
           if n = 0 then leaf
           else
             oneof
               [
                 leaf;
                 map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2)));
                 map
                   (fun l -> J.Obj l)
                   (list_size (int_bound 4)
                      (pair (string_size (int_bound 6)) (self (n / 2))));
               ]))

(* Floats are deliberately absent from the generator: the printer's float
   formatting is not round-trip exact, and no protocol field needs it to
   be.  Everything else must survive print -> parse unchanged, including
   arbitrary bytes in strings (the escaper covers control characters and
   the parser decodes \u escapes). *)
let prop_json_round_trip =
  QCheck.Test.make ~count:200 ~name:"Json print/parse round-trip"
    (QCheck.make ~print:(fun j -> J.to_string j) json_gen)
    (fun j -> J.parse (J.to_string j) = Ok j)

(* ------------------------------------------------------------------ *)
(* The sharded LRU                                                     *)

let test_lru_concurrent_compute_once () =
  let calls = Atomic.make 0 in
  let cache = Lru.create ~shards:4 ~name:"t-conc" ~size_of:(fun _ -> 1) () in
  let started = Atomic.make 0 in
  let domains =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr started;
            while Atomic.get started < 8 do
              Domain.cpu_relax ()
            done;
            Lru.get cache ~key:"shared" (fun () ->
                Atomic.incr calls;
                ignore (Unix.select [] [] [] 0.01);
                42)))
  in
  List.iter
    (fun d -> Alcotest.(check int) "shared value" 42 (Domain.join d))
    domains;
  Alcotest.(check int) "exactly one compute" 1 (Atomic.get calls);
  let s = Lru.stats cache in
  Alcotest.(check int) "one miss" 1 s.Lru.misses;
  Alcotest.(check int) "seven hits" 7 s.Lru.hits

(* One shard makes recency fully deterministic: with a 10-byte budget and
   4-byte values, inserting a third value evicts the least recently
   touched — and a hit refreshes recency, so the re-read entry survives. *)
let test_lru_budget_eviction () =
  let cache =
    Lru.create ~shards:1 ~budget_bytes:10 ~name:"t-evict" ~size_of:String.length
      ()
  in
  let get k v = Lru.get cache ~key:k (fun () -> v) in
  Alcotest.(check string) "a" "aaaa" (get "a" "aaaa");
  Alcotest.(check string) "b" "bbbb" (get "b" "bbbb");
  Alcotest.(check string) "a again (hit refreshes)" "aaaa" (get "a" "XXXX");
  Alcotest.(check string) "c evicts the LRU" "cccc" (get "c" "cccc");
  Alcotest.(check bool) "a survives" true (Lru.mem cache "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem cache "b");
  Alcotest.(check bool) "c resident" true (Lru.mem cache "c");
  let s = Lru.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Lru.evictions;
  Alcotest.(check int) "bytes after eviction" 8 s.Lru.bytes;
  Alcotest.(check int) "entries" 2 s.Lru.entries;
  (* Shrinking the budget evicts immediately, oldest first. *)
  Lru.set_budget cache ~bytes:4;
  Alcotest.(check bool) "a evicted by resize" false (Lru.mem cache "a");
  Alcotest.(check bool) "c still resident" true (Lru.mem cache "c");
  Alcotest.(check int) "bytes fit budget" 4 (Lru.stats cache).Lru.bytes

let test_lru_clear () =
  let cache = Lru.create ~shards:2 ~name:"t-clear" ~size_of:(fun _ -> 3) () in
  ignore (Lru.get cache ~key:"k" (fun () -> 1) : int);
  ignore (Lru.get cache ~key:"k" (fun () -> 2) : int);
  Lru.clear cache;
  Alcotest.(check bool) "emptied" false (Lru.mem cache "k");
  let s = Lru.stats cache in
  Alcotest.(check int) "hits reset" 0 s.Lru.hits;
  Alcotest.(check int) "misses reset" 0 s.Lru.misses;
  Alcotest.(check int) "bytes reset" 0 s.Lru.bytes;
  Alcotest.(check int) "recomputes after clear" 9
    (Lru.get cache ~key:"k" (fun () -> 9));
  Alcotest.(check int) "fresh miss" 1 (Lru.stats cache).Lru.misses

let test_lru_failure_not_cached () =
  let cache = Lru.create ~shards:1 ~name:"t-fail" ~size_of:(fun _ -> 1) () in
  (match Lru.get cache ~key:"k" (fun () -> failwith "boom") with
  | (_ : int) -> Alcotest.fail "compute failure swallowed"
  | exception Failure msg -> Alcotest.(check string) "exn propagates" "boom" msg);
  Alcotest.(check bool) "failure not cached" false (Lru.mem cache "k");
  Alcotest.(check int) "next caller recomputes" 5
    (Lru.get cache ~key:"k" (fun () -> 5));
  let s = Lru.stats cache in
  Alcotest.(check int) "both lookups were misses" 2 s.Lru.misses;
  Alcotest.(check int) "no hits" 0 s.Lru.hits

(* Unbounded cache as a pure memo table: for any key sequence, the first
   value stored under a key is the one every later lookup returns,
   whatever shard the key lands on. *)
let prop_lru_round_trip =
  QCheck.Test.make ~count:100 ~name:"Lru round-trips values through shards"
    QCheck.(list (pair (string_of_size (Gen.int_bound 8)) small_int))
    (fun pairs ->
      let cache = Lru.create ~shards:4 ~name:"t-prop" ~size_of:(fun _ -> 8) () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, v) ->
          let expected =
            match Hashtbl.find_opt model k with
            | Some v0 -> v0
            | None ->
              Hashtbl.add model k v;
              v
          in
          Lru.get cache ~key:k (fun () -> v) = expected)
        pairs)

(* ------------------------------------------------------------------ *)
(* Trace persistence and the Profiled record-once contract             *)

let test_trace_concurrent_readers () =
  Ba_workloads.Profiled.clear ();
  let _, _, trace = Ba_workloads.Profiled.get_traced ~max_steps:4000 (wave5 ()) in
  let path = Filename.temp_file "ba-serve-trace" ".bast" in
  Ba_trace.Trace.save ~path ~seed:7 ~max_steps:4000 trace;
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Ba_trace.Trace.load ~path))
  in
  List.iter
    (fun d ->
      let f = Domain.join d in
      Alcotest.(check int) "seed" 7 f.Ba_trace.Trace.seed;
      Alcotest.(check int) "max_steps" 4000 f.Ba_trace.Trace.max_steps;
      Alcotest.(check bool) "trace round-trips" true
        (Ba_trace.Trace.equal trace f.Ba_trace.Trace.trace))
    domains;
  Sys.remove path

(* Equal inputs digest to equal cache keys, and equal keys share one trace
   record: two lookups are one interpreter run and one physical trace. *)
let test_equal_digest_shares_record () =
  Alcotest.(check string) "digest is a pure function of the inputs"
    (Ba_workloads.Profiled.key ~name:"wave5" ~max_steps:4000)
    (Ba_workloads.Profiled.key ~name:"wave5" ~max_steps:4000);
  Alcotest.(check bool) "distinct budgets digest apart" false
    (Ba_workloads.Profiled.key ~name:"wave5" ~max_steps:4000
    = Ba_workloads.Profiled.key ~name:"wave5" ~max_steps:4001);
  Ba_workloads.Profiled.clear ();
  let r = Ba_obs.Registry.create () in
  let t1, t2 =
    Ba_obs.Registry.with_registry r (fun () ->
        let _, _, t1 =
          Ba_workloads.Profiled.get_traced ~max_steps:4000 (wave5 ())
        in
        let _, _, t2 =
          Ba_workloads.Profiled.get_traced ~max_steps:4000 (wave5 ())
        in
        (t1, t2))
  in
  Alcotest.(check bool) "one shared trace record" true (t1 == t2);
  Alcotest.(check int) "one interpreter run" 1
    (Ba_obs.Registry.counter_value r "exec.engine.runs")

let test_histogram_quantile () =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      let h = Ba_obs.Histogram.make ~unit_:"us" "test.serve.quantile" in
      for v = 1 to 100 do
        Ba_obs.Histogram.observe h v
      done);
  (match Ba_obs.Registry.histogram_snapshot r "test.serve.quantile" with
  | None -> Alcotest.fail "histogram missing"
  | Some snap ->
    Alcotest.(check (option int)) "q=1.0 is the exact max" (Some 100)
      (Ba_obs.Histogram.quantile snap 1.0);
    (match Ba_obs.Histogram.quantile snap 0.5 with
    | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "p50 bucket bound %d covers the median" v)
        true
        (v >= 50 && v <= 100)
    | None -> Alcotest.fail "p50 missing"));
  let empty =
    {
      Ba_obs.Registry.bounds = [| 10; 100 |];
      counts = [| 0; 0; 0 |];
      total = 0;
      sum = 0;
      max_value = min_int;
    }
  in
  Alcotest.(check (option int)) "empty snapshot" None
    (Ba_obs.Histogram.quantile empty 0.5)

(* ------------------------------------------------------------------ *)
(* The server, end to end                                              *)

let socket_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "/tmp/ba-ts-%d-%d.sock" (Unix.getpid ()) !n

let start_server ?(jobs = 2) ?(queue_len = 256) ?(batch_max = 64)
    ?(install_signals = false) () =
  let sock = socket_path () in
  let cfg =
    {
      (Ba_serve.Server.default_config ~socket_path:sock) with
      jobs = Some jobs;
      queue_len;
      batch_max;
      install_signals;
    }
  in
  (sock, Ba_serve.Server.start cfg)

let test_server_ping_align_metrics () =
  let sock, h = start_server () in
  let cl = Ba_serve.Client.connect sock in
  let pong = Ba_serve.Client.call cl (P.request ~id:1 P.Ping) in
  Alcotest.(check bool) "ping ok" true (pong.P.status = P.Ok_);
  Alcotest.(check (option int)) "pong body" (Some 1)
    (Option.bind (J.member "pong" pong.P.body) (fun j ->
         match j with J.Bool true -> Some 1 | _ -> None));
  let al =
    Ba_serve.Client.call cl
      (P.request ~workload:"wave5" ~algo:"try15" ~arch:"btfnt" ~max_steps:4000
         ~id:2 P.Align)
  in
  Alcotest.(check bool) "align ok" true (al.P.status = P.Ok_);
  Alcotest.(check bool) "align body has total_cost" true
    (J.member "total_cost" al.P.body <> None);
  let m = Ba_serve.Client.call cl (P.request ~id:3 P.Metrics) in
  Alcotest.(check bool) "metrics ok" true (m.P.status = P.Ok_);
  (match J.member "server" m.P.body with
  | None -> Alcotest.fail "metrics body lacks server block"
  | Some server ->
    let int_field name =
      Option.bind (J.member name server) J.to_int_opt
    in
    Alcotest.(check bool) "served counted" true
      (match int_field "served" with Some n -> n >= 2 | None -> false);
    Alcotest.(check bool) "service latency summarised" true
      (match J.member "service" server with
      | Some (J.Obj _) -> true
      | _ -> false));
  let bad =
    Ba_serve.Client.call cl (P.request ~workload:"no-such" ~id:4 P.Align)
  in
  (match bad.P.status with
  | P.Error_ msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "error names the workload" true (contains msg "no-such")
  | _ -> Alcotest.fail "unknown workload must be an error");
  Ba_serve.Client.close cl;
  Ba_serve.Server.stop h

(* The determinism wall, through the socket: the same mixed batch served
   by a -j1 server and a -j4 server (both from a cold cache) must produce
   byte-identical response bodies. *)
let test_server_jobs_byte_identical () =
  let requests =
    List.concat_map
      (fun (i, w) ->
        [
          P.request ~workload:w ~algo:"try15" ~arch:"btfnt" ~max_steps:4000
            ~id:(3 * i) P.Align;
          P.request ~workload:w ~algo:"greedy" ~arch:"fallthrough"
            ~max_steps:4000
            ~id:((3 * i) + 1)
            P.Simulate;
          P.request ~workload:w ~algo:"cost" ~max_steps:4000
            ~id:((3 * i) + 2)
            P.Verify;
        ])
      [ (0, "wave5"); (1, "alvinn"); (2, "eqntott"); (3, "sc") ]
  in
  let serve jobs =
    Ba_workloads.Profiled.clear ();
    let sock, h = start_server ~jobs () in
    let cl = Ba_serve.Client.connect sock in
    List.iter (Ba_serve.Client.send cl) requests;
    let bodies = Hashtbl.create 16 in
    List.iter
      (fun (_ : P.request) ->
        match Ba_serve.Client.recv cl with
        | None -> Alcotest.fail "connection closed mid-batch"
        | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "request %d ok" r.P.rid)
            true (r.P.status = P.Ok_);
          Hashtbl.replace bodies r.P.rid (J.to_string r.P.body))
      requests;
    Ba_serve.Client.close cl;
    Ba_serve.Server.stop h;
    bodies
  in
  let b1 = serve 1 in
  let b4 = serve 4 in
  List.iter
    (fun (r : P.request) ->
      Alcotest.(check string)
        (Printf.sprintf "request %d byte-identical" r.P.id)
        (Hashtbl.find b1 r.P.id) (Hashtbl.find b4 r.P.id))
    requests

(* A one-slot admission queue in front of a one-task dispatcher: flooding
   it with pipelined requests must answer every id exactly once, with at
   least one served and at least one rejected as overloaded. *)
let test_server_overload () =
  let n = 30 in
  let sock, h = start_server ~jobs:1 ~queue_len:1 ~batch_max:1 () in
  let cl = Ba_serve.Client.connect sock in
  for i = 0 to n - 1 do
    Ba_serve.Client.send cl
      (P.request ~workload:"wave5" ~algo:"try15" ~max_steps:4000 ~id:i P.Verify)
  done;
  let seen = Array.make n 0 in
  let ok = ref 0 and overloaded = ref 0 in
  for _ = 1 to n do
    match Ba_serve.Client.recv cl with
    | None -> Alcotest.fail "connection closed before all responses"
    | Some r -> (
      seen.(r.P.rid) <- seen.(r.P.rid) + 1;
      match r.P.status with
      | P.Ok_ -> incr ok
      | P.Overloaded -> incr overloaded
      | P.Error_ msg -> Alcotest.fail ("unexpected error: " ^ msg))
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "id %d answered once" i) 1 c)
    seen;
  Alcotest.(check bool) "some requests served" true (!ok >= 1);
  Alcotest.(check bool) "some requests shed" true (!overloaded >= 1);
  Ba_serve.Client.close cl;
  Ba_serve.Server.stop h

(* SIGTERM must drain: answered work stays answered, the connection sees a
   clean EOF (not a reset), and the socket is unlinked. *)
let test_server_sigterm_drain () =
  let sock, h = start_server ~install_signals:true () in
  let cl = Ba_serve.Client.connect sock in
  let pong = Ba_serve.Client.call cl (P.request ~id:1 P.Ping) in
  Alcotest.(check bool) "ping before signal" true (pong.P.status = P.Ok_);
  let al =
    Ba_serve.Client.call cl
      (P.request ~workload:"wave5" ~max_steps:4000 ~id:2 P.Align)
  in
  Alcotest.(check bool) "align before signal" true (al.P.status = P.Ok_);
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Alcotest.(check bool) "clean EOF after drain" true
    (Ba_serve.Client.recv cl = None);
  Ba_serve.Client.close cl;
  Ba_serve.Server.stop h;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

let suites =
  [
    ( "serve.protocol",
      [
        Alcotest.test_case "request round-trip" `Quick test_request_round_trip;
        Alcotest.test_case "response round-trip" `Quick test_response_round_trip;
        Alcotest.test_case "framer reassembles chunked frames" `Quick
          test_framer_chunked;
        Alcotest.test_case "framer rejects oversized frames" `Quick
          test_framer_oversize;
        QCheck_alcotest.to_alcotest prop_json_round_trip;
      ] );
    ( "serve.lru",
      [
        Alcotest.test_case "concurrent gets share one compute" `Quick
          test_lru_concurrent_compute_once;
        Alcotest.test_case "byte budget evicts LRU-first" `Quick
          test_lru_budget_eviction;
        Alcotest.test_case "clear resets entries and tallies" `Quick
          test_lru_clear;
        Alcotest.test_case "failed computes are not cached" `Quick
          test_lru_failure_not_cached;
        QCheck_alcotest.to_alcotest prop_lru_round_trip;
      ] );
    ( "serve.trace",
      [
        Alcotest.test_case "save/load under concurrent readers" `Quick
          test_trace_concurrent_readers;
        Alcotest.test_case "equal digests share one trace record" `Quick
          test_equal_digest_shares_record;
        Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "ping, align, metrics, errors" `Slow
          test_server_ping_align_metrics;
        Alcotest.test_case "-j1 vs -j4 byte-identical" `Slow
          test_server_jobs_byte_identical;
        Alcotest.test_case "overload sheds load" `Slow test_server_overload;
        Alcotest.test_case "SIGTERM drains gracefully" `Slow
          test_server_sigterm_drain;
      ] );
  ]
