(* Tests for Ba_verify: the translation validator's acceptance of genuine
   lowered layouts and its rejection of corrupted ones (mutation testing),
   cost certificates and their digests, the optimality audit, and the JSON
   emitter behind --format=json.

   The mutation tests are the teeth of the suite: four corruption classes
   (branch sense flipped, jump retargeted, block dropped, two blocks
   shuffled — all without fixups) are enumerated exhaustively over real
   workload images, and the validator must reject every single mutant while
   accepting every genuine output. *)

open Ba_layout

let max_steps = 20_000

let algo = Ba_core.Align.Tryn 15
let arch = Ba_core.Cost_model.Btfnt

(* One aligned image per workload, built once and shared by the tests. *)
let images =
  lazy
    (List.map
       (fun (w : Ba_workloads.Spec.t) ->
         let program = w.Ba_workloads.Spec.build () in
         let profile = Ba_exec.Engine.profile_program ~max_steps program in
         let decisions = Ba_core.Align.align_program algo ~arch profile in
         (w.Ba_workloads.Spec.name, profile, Image.build ~profile program decisions))
       Ba_workloads.Spec.all)

let image_of name =
  let _, _, image =
    List.find (fun (n, _, _) -> n = name) (Lazy.force images)
  in
  image

let accepts ~proc_id linear =
  match Ba_verify.Bisim.verify ~proc_id linear with
  | Ok _ -> true
  | Error _ -> false

(* --- Mutation machinery ------------------------------------------------- *)

(* Fresh records throughout, so mutating one variant never aliases the
   original image ([addr] is mutable). *)
let copy_linear (l : Linear.t) =
  {
    l with
    Linear.blocks =
      Array.map (fun lb -> { lb with Linear.addr = lb.Linear.addr }) l.Linear.blocks;
  }

let with_term (l : Linear.t) pos term =
  let c = copy_linear l in
  c.Linear.blocks.(pos) <- { c.Linear.blocks.(pos) with Linear.term };
  c

(* Class 1: flip the sense of a conditional branch.  The taken leg now
   carries the wrong semantic outcome; [bisim/edge-mismatch] must fire
   (conditionals have distinct targets, enforced by Proc.validate). *)
let flip_sense_mutants l =
  let out = ref [] in
  Array.iteri
    (fun pos (lb : Linear.lblock) ->
      match lb.Linear.term with
      | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
        out :=
          ( "flip-sense", pos,
            with_term l pos
              (Linear.Lcond { taken_pos; taken_on = not taken_on; inserted_jump }) )
          :: !out
      | _ -> ())
    l.Linear.blocks;
  !out

(* Class 2: retarget a branch to a different in-range position.  A
   position maps to exactly one source block (the relation is a
   bijection), so the realised edge no longer matches any original one. *)
let retarget_mutants l =
  let n = Array.length l.Linear.blocks in
  let out = ref [] in
  if n >= 2 then
    Array.iteri
      (fun pos (lb : Linear.lblock) ->
        match lb.Linear.term with
        | Linear.Ljump t ->
          out := ("retarget", pos, with_term l pos (Linear.Ljump ((t + 1) mod n))) :: !out
        | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
          let taken_pos = (taken_pos + 1) mod n in
          out :=
            ( "retarget", pos,
              with_term l pos (Linear.Lcond { taken_pos; taken_on; inserted_jump }) )
            :: !out
        | _ -> ())
      l.Linear.blocks;
  !out

(* Class 3: drop a block outright.  The relation can no longer be a
   bijection; [bisim/block-count] must fire. *)
let drop_block_mutants l =
  let n = Array.length l.Linear.blocks in
  if n < 2 then []
  else
    List.init n (fun pos ->
        let c = copy_linear l in
        let blocks =
          Array.init (n - 1) (fun i ->
              c.Linear.blocks.(if i < pos then i else i + 1))
        in
        ("drop-block", pos, { c with Linear.blocks }))

(* Class 4: shuffle two blocks without fixing up positions or addresses.
   Either the entry leaves position 0, or some incoming edge now lands on
   the wrong source block, or the address map breaks. *)
let swap_mutants l =
  let n = Array.length l.Linear.blocks in
  let out = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let c = copy_linear l in
      let tmp = c.Linear.blocks.(i) in
      c.Linear.blocks.(i) <- c.Linear.blocks.(j);
      c.Linear.blocks.(j) <- tmp;
      out := ("swap", i * n + j, c) :: !out
    done
  done;
  !out

let mutant_workloads = [ "espresso"; "li"; "gcc" ]

(* (description, proc_id, mutant) for every mutant of every corruption
   class over the chosen workloads. *)
let all_mutants =
  lazy
    (List.concat_map
       (fun name ->
         let image = image_of name in
         List.concat
           (List.init
              (Array.length image.Image.linears)
              (fun pid ->
                let l = image.Image.linears.(pid) in
                List.map
                  (fun (cls, site, m) ->
                    (Printf.sprintf "%s/p%d/%s@%d" name pid cls site, pid, m))
                  (flip_sense_mutants l @ retarget_mutants l
                 @ drop_block_mutants l @ swap_mutants l))))
       mutant_workloads)

(* --- Acceptance --------------------------------------------------------- *)

let test_accepts_genuine () =
  List.iter
    (fun (name, _, image) ->
      Array.iteri
        (fun pid linear ->
          Alcotest.(check bool)
            (Printf.sprintf "%s proc %d bisimulates" name pid)
            true (accepts ~proc_id:pid linear))
        image.Image.linears)
    (Lazy.force images)

let test_witness_shape () =
  let image = image_of "espresso" in
  Array.iteri
    (fun pid linear ->
      match Ba_verify.Bisim.verify ~proc_id:pid linear with
      | Error _ -> Alcotest.fail "expected acceptance"
      | Ok w ->
        let n = Array.length linear.Linear.blocks in
        Alcotest.(check int) "one relation entry per block" n
          (Array.length w.Ba_verify.Bisim.position);
        (* position.(src) really is where that source block sits *)
        Array.iteri
          (fun pos (lb : Linear.lblock) ->
            Alcotest.(check int) "witness maps src to pos" pos
              w.Ba_verify.Bisim.position.(lb.Linear.src))
          linear.Linear.blocks)
    image.Image.linears

(* --- 100% mutation kill rate -------------------------------------------- *)

let test_kills_every_mutant () =
  let total = ref 0 in
  List.iter
    (fun (desc, pid, mutant) ->
      incr total;
      if accepts ~proc_id:pid mutant then
        Alcotest.failf "mutant survived the validator: %s" desc)
    (Lazy.force all_mutants);
  (* the enumeration must be non-trivial for the kill rate to mean much *)
  Alcotest.(check bool) "enumerated a real mutant population" true (!total > 100)

(* Randomised spot checks drawn from the same population, so failures
   shrink to a single mutant index. *)
let qcheck_mutants =
  QCheck.Test.make ~count:200 ~name:"validator rejects sampled mutants"
    QCheck.(small_nat)
    (fun i ->
      let mutants = Lazy.force all_mutants in
      let _, pid, mutant = List.nth mutants (i mod List.length mutants) in
      not (accepts ~proc_id:pid mutant))

(* --- Certificates ------------------------------------------------------- *)

let verify_espresso =
  lazy
    (let program =
       (List.find
          (fun (w : Ba_workloads.Spec.t) -> w.Ba_workloads.Spec.name = "espresso")
          Ba_workloads.Spec.all)
         .Ba_workloads.Spec.build ()
     in
     Ba_verify.Run.verify_pipeline ~arch ~max_steps ~algo program)

let test_certificates_issued () =
  let r = Lazy.force verify_espresso in
  Alcotest.(check bool) "verified" true r.Ba_verify.Run.verified;
  Alcotest.(check int) "one certificate per architecture"
    (List.length Ba_core.Cost_model.all_arches)
    (List.length r.Ba_verify.Run.certificates);
  List.iter
    (fun (c : Ba_verify.Certificate.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "digest of %s checks out" c.Ba_verify.Certificate.arch)
        true
        (Ba_verify.Certificate.digest_ok c);
      Alcotest.(check bool) "certified cost agrees with the evaluator" true
        (Float.abs
           (c.Ba_verify.Certificate.branch_cycles
           -. c.Ba_verify.Certificate.evaluator_cycles)
        < 1e-3))
    r.Ba_verify.Run.certificates

let test_certificate_tamper () =
  let r = Lazy.force verify_espresso in
  let c = List.hd r.Ba_verify.Run.certificates in
  let tampered =
    { c with Ba_verify.Certificate.branch_cycles = c.Ba_verify.Certificate.branch_cycles +. 1.0 }
  in
  Alcotest.(check bool) "tampered cycles break the digest" false
    (Ba_verify.Certificate.digest_ok tampered);
  let renamed = { c with Ba_verify.Certificate.workload = "espresso2" } in
  Alcotest.(check bool) "tampered workload breaks the digest" false
    (Ba_verify.Certificate.digest_ok renamed)

let test_digest_deterministic () =
  Alcotest.(check string) "fnv1a64 is stable"
    (Ba_verify.Certificate.fnv1a64 "branch alignment")
    (Ba_verify.Certificate.fnv1a64 "branch alignment");
  Alcotest.(check bool) "fnv1a64 separates close inputs" false
    (Ba_verify.Certificate.fnv1a64 "branch alignment"
    = Ba_verify.Certificate.fnv1a64 "branch alignment ")

(* --- Optimality audit --------------------------------------------------- *)

let test_audit_finds_improvements () =
  (* The original (unaligned) layout of espresso is known-improvable —
     that is the paper's whole point — so the audit must say something. *)
  let program =
    (List.find
       (fun (w : Ba_workloads.Spec.t) -> w.Ba_workloads.Spec.name = "espresso")
       Ba_workloads.Spec.all)
      .Ba_workloads.Spec.build ()
  in
  let r =
    Ba_verify.Run.verify_pipeline ~arch ~max_steps ~algo:Ba_core.Align.Original
      program
  in
  Alcotest.(check bool) "original layout still verifies" true
    r.Ba_verify.Run.verified;
  Alcotest.(check bool) "audit reports improvable sites" true
    (r.Ba_verify.Run.audit <> []);
  List.iter
    (fun (d : Ba_analysis.Diagnostic.t) ->
      Alcotest.(check bool) "audit findings are informational" true
        (d.Ba_analysis.Diagnostic.severity = Ba_analysis.Diagnostic.Info))
    r.Ba_verify.Run.audit

(* --- JSON emitter ------------------------------------------------------- *)

let test_json_escaping () =
  let open Ba_util.Json in
  Alcotest.(check string) "string escapes"
    "\"a\\\"b\\\\c\\nd\\te\\u0001\""
    (to_string (String "a\"b\\c\nd\te\x01"));
  Alcotest.(check string) "nested document"
    "{\"k\":[1,true,null,\"v\"],\"f\":2.5}"
    (to_string (Obj [ ("k", List [ Int 1; Bool true; Null; String "v" ]); ("f", Float 2.5) ]));
  Alcotest.(check string) "non-finite floats become null" "null"
    (to_string (Float Float.nan))

let test_diagnostic_json () =
  let d =
    {
      Ba_analysis.Diagnostic.severity = Ba_analysis.Diagnostic.Error;
      rule = "bisim/edge-mismatch";
      loc =
        Ba_analysis.Diagnostic.Layout_pos { proc = 1; proc_name = "main"; pos = 3 };
      message = "an \"edge\" went missing";
    }
  in
  Alcotest.(check string) "diagnostic serialises"
    "{\"severity\":\"error\",\"rule\":\"bisim/edge-mismatch\",\"location\":{\"kind\":\"layout_pos\",\"proc\":1,\"proc_name\":\"main\",\"pos\":3},\"message\":\"an \\\"edge\\\" went missing\"}"
    (Ba_util.Json.to_string (Ba_analysis.Diagnostic.to_json d))

let suites =
  [
    ( "verify.bisim",
      [
        Alcotest.test_case "accepts every genuine layout" `Slow test_accepts_genuine;
        Alcotest.test_case "witness maps blocks to positions" `Quick test_witness_shape;
      ] );
    ( "verify.mutation",
      [
        Alcotest.test_case "kills all four corruption classes" `Slow
          test_kills_every_mutant;
        QCheck_alcotest.to_alcotest qcheck_mutants;
      ] );
    ( "verify.certificate",
      [
        Alcotest.test_case "issues checked certificates" `Quick test_certificates_issued;
        Alcotest.test_case "detects tampering" `Quick test_certificate_tamper;
        Alcotest.test_case "digest is deterministic" `Quick test_digest_deterministic;
      ] );
    ( "verify.audit",
      [
        Alcotest.test_case "flags the unaligned layout" `Quick
          test_audit_finds_improvements;
      ] );
    ( "verify.json",
      [
        Alcotest.test_case "escaping and rendering" `Quick test_json_escaping;
        Alcotest.test_case "diagnostic serialisation" `Quick test_diagnostic_json;
      ] );
  ]
