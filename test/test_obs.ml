(* Tests for Ba_obs: the metric catalogue, registries and their task-order
   merge, span nesting, the sinks, and the no-registry no-op contract the
   whole pipeline's instrumentation relies on. *)

(* Handles under test.  The catalogue is process-global and
   first-registration-wins, so these names are namespaced away from the
   pipeline's real metrics. *)
let c_a = Ba_obs.Counter.make ~unit_:"events" "test.obs.a"
let c_b = Ba_obs.Counter.make ~unit_:"events" "test.obs.b"
let g_x = Ba_obs.Gauge.make ~unit_:"entries" "test.obs.x"
let h_d = Ba_obs.Histogram.make ~buckets:[| 1; 2; 4 |] "test.obs.d"
let c_noisy = Ba_obs.Counter.make ~volatile:true "test.obs.noisy"

(* -- Catalogue -------------------------------------------------------------- *)

let test_catalogue_first_registration_wins () =
  let again = Ba_obs.Counter.make ~unit_:"other-unit" "test.obs.a" in
  Alcotest.(check string) "same name, same handle" (Ba_obs.Counter.name c_a)
    (Ba_obs.Counter.name again);
  match Ba_obs.Catalogue.find "test.obs.a" with
  | Some def ->
    Alcotest.(check string) "original unit survives" "events"
      def.Ba_obs.Catalogue.unit_
  | None -> Alcotest.fail "registered metric not found"

let test_catalogue_kind_mismatch_raises () =
  Alcotest.(check bool) "counter name reused as gauge raises" true
    (try
       ignore (Ba_obs.Gauge.make "test.obs.a");
       false
     with Invalid_argument _ -> true)

let test_catalogue_rejects_bad_names () =
  Alcotest.(check bool) "empty name" true
    (try
       ignore (Ba_obs.Counter.make "");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "whitespace" true
    (try
       ignore (Ba_obs.Counter.make "has space");
       false
     with Invalid_argument _ -> true)

(* -- Registry --------------------------------------------------------------- *)

let test_noop_without_registry () =
  Alcotest.(check bool) "no registry installed" true
    (Ba_obs.Registry.current () = None);
  (* These must be cheap no-ops, not crashes. *)
  Ba_obs.Counter.incr c_a;
  Ba_obs.Gauge.set g_x 7;
  Ba_obs.Histogram.observe h_d 3;
  Ba_obs.Span.with_ "ghost" (fun () -> ());
  let r = Ba_obs.Registry.create () in
  Alcotest.(check bool) "fresh registry untouched" true (Ba_obs.Registry.is_empty r)

let test_collects_inside_with_registry () =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      Ba_obs.Counter.incr c_a;
      Ba_obs.Counter.add c_a 4;
      Ba_obs.Counter.incr c_b;
      Ba_obs.Gauge.set g_x 3;
      Ba_obs.Gauge.set g_x 9;
      Ba_obs.Histogram.observe h_d 2);
  Ba_obs.Counter.incr c_a;
  (* outside again: dropped *)
  Alcotest.(check int) "counter a" 5 (Ba_obs.Registry.counter_value r "test.obs.a");
  Alcotest.(check int) "counter b" 1 (Ba_obs.Registry.counter_value r "test.obs.b");
  Alcotest.(check int) "unknown counter reads 0" 0
    (Ba_obs.Registry.counter_value r "test.obs.never");
  Alcotest.(check (option int)) "gauge keeps last write" (Some 9)
    (Ba_obs.Registry.gauge_value r "test.obs.x")

let test_with_registry_restores_on_exception () =
  let outer = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry outer (fun () ->
      let inner = Ba_obs.Registry.create () in
      (try Ba_obs.Registry.with_registry inner (fun () -> failwith "boom")
       with Failure _ -> ());
      Ba_obs.Counter.incr c_a);
  Alcotest.(check int) "outer registry collected after inner raised" 1
    (Ba_obs.Registry.counter_value outer "test.obs.a")

let test_histogram_bucket_boundaries () =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      List.iter (Ba_obs.Histogram.observe h_d) [ 0; 1; 2; 3; 4; 5; 100 ]);
  match Ba_obs.Registry.histogram_snapshot r "test.obs.d" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    (* bounds [1;2;4]: 0,1 -> le=1; 2 -> le=2; 3,4 -> le=4; 5,100 -> overflow *)
    Alcotest.(check (array int)) "bucket counts" [| 2; 1; 2; 2 |]
      h.Ba_obs.Registry.counts;
    Alcotest.(check int) "total" 7 h.Ba_obs.Registry.total;
    Alcotest.(check int) "sum" 115 h.Ba_obs.Registry.sum;
    Alcotest.(check int) "max" 100 h.Ba_obs.Registry.max_value

let test_merge_in_task_order () =
  let parent = Ba_obs.Registry.create () in
  let t1 = Ba_obs.Registry.create () in
  let t2 = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry parent (fun () -> Ba_obs.Counter.add c_a 100);
  Ba_obs.Registry.with_registry t1 (fun () ->
      Ba_obs.Counter.add c_a 10;
      Ba_obs.Gauge.set g_x 1;
      Ba_obs.Histogram.observe h_d 1);
  Ba_obs.Registry.with_registry t2 (fun () ->
      Ba_obs.Counter.add c_a 1;
      Ba_obs.Gauge.set g_x 2;
      Ba_obs.Histogram.observe h_d 3);
  Ba_obs.Registry.merge_into ~into:parent t1;
  Ba_obs.Registry.merge_into ~into:parent t2;
  Alcotest.(check int) "counters sum" 111
    (Ba_obs.Registry.counter_value parent "test.obs.a");
  Alcotest.(check (option int)) "gauge takes last task-order write" (Some 2)
    (Ba_obs.Registry.gauge_value parent "test.obs.x");
  (match Ba_obs.Registry.histogram_snapshot parent "test.obs.d" with
  | Some h ->
    Alcotest.(check int) "histograms merge bucketwise" 2 h.Ba_obs.Registry.total;
    Alcotest.(check int) "merged max" 3 h.Ba_obs.Registry.max_value
  | None -> Alcotest.fail "merged histogram missing");
  (* A gauge never set in the source must not clobber the destination. *)
  let t3 = Ba_obs.Registry.create () in
  Ba_obs.Registry.merge_into ~into:parent t3;
  Alcotest.(check (option int)) "unset source gauge leaves destination" (Some 2)
    (Ba_obs.Registry.gauge_value parent "test.obs.x")

(* -- Spans ------------------------------------------------------------------ *)

let test_span_nesting_and_counts () =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      for _ = 1 to 3 do
        Ba_obs.Span.with_ "outer" (fun () ->
            Ba_obs.Span.with_ "inner" (fun () -> ());
            Ba_obs.Span.with_ "inner" (fun () -> ()))
      done;
      Ba_obs.Span.with_ "solo" (fun () -> ()));
  match Ba_obs.Registry.spans r with
  | [ outer; solo ] ->
    Alcotest.(check string) "outer name" "outer" outer.Ba_obs.Registry.name;
    Alcotest.(check int) "outer visits" 3 outer.Ba_obs.Registry.count;
    (match outer.Ba_obs.Registry.children with
    | [ inner ] ->
      Alcotest.(check string) "inner name" "inner" inner.Ba_obs.Registry.name;
      Alcotest.(check int) "inner visits accumulate" 6 inner.Ba_obs.Registry.count
    | _ -> Alcotest.fail "expected one inner child");
    Alcotest.(check string) "solo name" "solo" solo.Ba_obs.Registry.name;
    Alcotest.(check bool) "seconds non-negative" true
      (outer.Ba_obs.Registry.seconds >= 0.0)
  | spans ->
    Alcotest.fail (Printf.sprintf "expected 2 top-level spans, got %d" (List.length spans))

let test_span_closed_on_exception () =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      (try Ba_obs.Span.with_ "failing" (fun () -> failwith "boom")
       with Failure _ -> ());
      (* If the failing span leaked open, this would nest under it. *)
      Ba_obs.Span.with_ "after" (fun () -> ()));
  let names = List.map (fun s -> s.Ba_obs.Registry.name) (Ba_obs.Registry.spans r) in
  Alcotest.(check (list string)) "both top-level" [ "after"; "failing" ] names

let test_span_merge_under_open_cursor () =
  let parent = Ba_obs.Registry.create () in
  let task = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry task (fun () ->
      Ba_obs.Span.with_ "work" (fun () -> ()));
  Ba_obs.Registry.with_registry parent (fun () ->
      Ba_obs.Span.with_ "batch" (fun () ->
          Ba_obs.Registry.merge_into ~into:parent task));
  match Ba_obs.Registry.spans parent with
  | [ batch ] ->
    Alcotest.(check string) "top level is the open span" "batch"
      batch.Ba_obs.Registry.name;
    Alcotest.(check (list string)) "task spans nest under it" [ "work" ]
      (List.map (fun s -> s.Ba_obs.Registry.name) batch.Ba_obs.Registry.children)
  | _ -> Alcotest.fail "expected a single top-level span"

let test_exit_span_mismatch_raises () =
  let r = Ba_obs.Registry.create () in
  let outer = Ba_obs.Registry.enter_span r "outer" in
  let _inner = Ba_obs.Registry.enter_span r "inner" in
  Alcotest.(check bool) "closing the outer span first raises" true
    (try
       Ba_obs.Registry.exit_span r outer 0.0;
       false
     with Invalid_argument _ -> true)

(* -- Sinks ------------------------------------------------------------------ *)

let collected () =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      Ba_obs.Counter.add c_a 3;
      Ba_obs.Counter.incr c_noisy;
      Ba_obs.Gauge.set g_x 5;
      Ba_obs.Histogram.observe h_d 2;
      Ba_obs.Span.with_ "stage" (fun () -> ()));
  r

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let test_json_sink_shape_and_elisions () =
  let r = collected () in
  let json = Ba_util.Json.to_string (Ba_obs.Sink.to_json r) in
  Alcotest.(check bool) "counter present" true
    (contains ~needle:{|"test.obs.a":3|} json);
  Alcotest.(check bool) "gauge present" true (contains ~needle:{|"test.obs.x":5|} json);
  Alcotest.(check bool) "histogram bucket rendered" true
    (contains ~needle:{|"buckets":[{"le":2,"count":1}]|} json);
  Alcotest.(check bool) "span present without seconds" true
    (contains ~needle:{|{"name":"stage","count":1}|} json);
  Alcotest.(check bool) "volatile metric elided by default" false
    (contains ~needle:"test.obs.noisy" json);
  Alcotest.(check bool) "wall seconds elided by default" false
    (contains ~needle:"seconds" json);
  let full =
    Ba_util.Json.to_string (Ba_obs.Sink.to_json ~times:true ~volatile:true r)
  in
  Alcotest.(check bool) "volatile included on request" true
    (contains ~needle:{|"test.obs.noisy":1|} full);
  Alcotest.(check bool) "seconds included on request" true
    (contains ~needle:"seconds" full)

let test_json_sink_deterministic () =
  let j () = Ba_util.Json.to_string (Ba_obs.Sink.to_json (collected ())) in
  Alcotest.(check string) "two collections render identically" (j ()) (j ())

let test_ascii_sink () =
  let r = collected () in
  let s = Ba_obs.Sink.render r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true (contains ~needle s))
    [ "test.obs.a"; "test.obs.x"; "test.obs.d"; "test.obs.noisy"; "stage"; "events" ]

let test_noop_sink () =
  Alcotest.(check string) "noop emits nothing" ""
    (Ba_obs.Sink.emit Ba_obs.Sink.Noop (collected ()));
  Alcotest.(check string) "empty registry renders empty" ""
    (Ba_obs.Sink.render (Ba_obs.Registry.create ()))

(* -- Domains and the pool --------------------------------------------------- *)

let test_registry_is_domain_local () =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      (* A spawned domain has no registry: its increments vanish rather than
         racing into ours. *)
      Domain.join (Domain.spawn (fun () -> Ba_obs.Counter.add c_a 1000));
      Ba_obs.Counter.incr c_a);
  Alcotest.(check int) "only this domain's increment counted" 1
    (Ba_obs.Registry.counter_value r "test.obs.a")

let pool_totals jobs =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      Ba_par.Pool.with_pool ~jobs (fun pool ->
          ignore
            (Ba_par.Pool.map pool
               (fun x ->
                 Ba_obs.Counter.add c_a x;
                 Ba_obs.Gauge.set g_x x;
                 Ba_obs.Histogram.observe h_d (x mod 5);
                 x)
               (List.init 64 (fun i -> i)))));
  ( Ba_obs.Registry.counter_value r "test.obs.a",
    Ba_obs.Registry.gauge_value r "test.obs.x",
    Ba_obs.Registry.histogram_snapshot r "test.obs.d",
    Ba_util.Json.to_string (Ba_obs.Sink.to_json r) )

let test_pool_merge_deterministic () =
  let c1, g1, h1, j1 = pool_totals 1 in
  let c4, g4, h4, j4 = pool_totals 4 in
  Alcotest.(check int) "counter total at -j1" (64 * 63 / 2) c1;
  Alcotest.(check int) "counter total matches at -j4" c1 c4;
  Alcotest.(check (option int)) "gauge keeps the last task's write" (Some 63) g1;
  Alcotest.(check (option int)) "gauge identical at -j4" g1 g4;
  Alcotest.(check bool) "histograms identical" true (h1 = h4);
  Alcotest.(check string) "json byte-identical -j1 vs -j4" j1 j4

(* -- Cross-invariants: instrumentation vs the simulator's own books --------- *)

let invariant_archs =
  [
    Ba_sim.Bep.Static_fallthrough;
    Ba_sim.Bep.Static_btfnt;
    Ba_sim.Bep.Pht_direct { entries = 4096 };
    Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 };
    Ba_sim.Bep.Btb_arch { entries = 64; assoc = 2 };
    Ba_sim.Bep.Btb_arch { entries = 256; assoc = 4 };
  ]

(* For every workload in the suite: the sim.bep.* counters must agree
   exactly with what the simulators themselves report — the aggregate
   penalty-cycle counters sum to the harness's total BEP, each per-arch
   counter equals that architecture's [Bep.bep], and the event counters
   match the [counts] books.  Any charging site added to one side but not
   the other breaks this for some workload. *)
let test_bep_penalty_attribution () =
  List.iter
    (fun (w : Ba_workloads.Spec.t) ->
      let r = Ba_obs.Registry.create () in
      let out =
        Ba_obs.Registry.with_registry r (fun () ->
            let program = w.Ba_workloads.Spec.build () in
            Ba_sim.Runner.simulate ~max_steps:20_000 ~archs:invariant_archs
              (Ba_layout.Image.original program))
      in
      let v = Ba_obs.Registry.counter_value r in
      let sims = out.Ba_sim.Runner.sims in
      let total f = Array.fold_left (fun acc (_, s) -> acc + f s) 0 sims in
      let name = w.Ba_workloads.Spec.name in
      Array.iter
        (fun (arch, sim) ->
          let label = Ba_sim.Bep.arch_label arch in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: per-arch counter = Bep.bep" name label)
            (Ba_sim.Bep.bep sim)
            (v (Printf.sprintf "sim.bep.arch.%s.penalty_cycles" label)))
        sims;
      Alcotest.(check int)
        (name ^ ": misfetch+mispredict cycles sum to the total penalty")
        (total Ba_sim.Bep.bep)
        (v "sim.bep.misfetch_cycles" + v "sim.bep.mispredict_cycles");
      Alcotest.(check int) (name ^ ": misfetch events")
        (total (fun s -> (Ba_sim.Bep.counts s).Ba_sim.Bep.misfetches))
        (v "sim.bep.misfetch");
      Alcotest.(check int) (name ^ ": mispredict events")
        (total (fun s -> (Ba_sim.Bep.counts s).Ba_sim.Bep.mispredicts))
        (v "sim.bep.mispredict");
      Alcotest.(check int) (name ^ ": conditional class counter")
        (total (fun s -> (Ba_sim.Bep.counts s).Ba_sim.Bep.cond))
        (v "sim.bep.class.cond");
      Alcotest.(check int) (name ^ ": correct-conditional class counter")
        (total (fun s -> (Ba_sim.Bep.counts s).Ba_sim.Bep.cond_correct))
        (v "sim.bep.class.cond_correct");
      Alcotest.(check int) (name ^ ": return class counter")
        (total (fun s -> (Ba_sim.Bep.counts s).Ba_sim.Bep.rets))
        (v "sim.bep.class.ret"))
    Ba_workloads.Spec.all

let suites =
  [
    ( "obs.catalogue",
      [
        Alcotest.test_case "first registration wins" `Quick
          test_catalogue_first_registration_wins;
        Alcotest.test_case "kind mismatch raises" `Quick
          test_catalogue_kind_mismatch_raises;
        Alcotest.test_case "bad names rejected" `Quick test_catalogue_rejects_bad_names;
      ] );
    ( "obs.registry",
      [
        Alcotest.test_case "no-op without a registry" `Quick test_noop_without_registry;
        Alcotest.test_case "collects inside with_registry" `Quick
          test_collects_inside_with_registry;
        Alcotest.test_case "restores on exception" `Quick
          test_with_registry_restores_on_exception;
        Alcotest.test_case "histogram bucket boundaries" `Quick
          test_histogram_bucket_boundaries;
        Alcotest.test_case "merge in task order" `Quick test_merge_in_task_order;
      ] );
    ( "obs.span",
      [
        Alcotest.test_case "nesting and visit counts" `Quick
          test_span_nesting_and_counts;
        Alcotest.test_case "closed on exception" `Quick test_span_closed_on_exception;
        Alcotest.test_case "merge lands under open cursor" `Quick
          test_span_merge_under_open_cursor;
        Alcotest.test_case "exit mismatch raises" `Quick test_exit_span_mismatch_raises;
      ] );
    ( "obs.sink",
      [
        Alcotest.test_case "json shape and elisions" `Quick
          test_json_sink_shape_and_elisions;
        Alcotest.test_case "json deterministic" `Quick test_json_sink_deterministic;
        Alcotest.test_case "ascii render" `Quick test_ascii_sink;
        Alcotest.test_case "noop" `Quick test_noop_sink;
      ] );
    ( "obs.domains",
      [
        Alcotest.test_case "registry is domain-local" `Quick
          test_registry_is_domain_local;
        Alcotest.test_case "pool merge deterministic" `Quick
          test_pool_merge_deterministic;
      ] );
    ( "obs.invariants",
      [
        Alcotest.test_case "BEP penalty attribution, all workloads" `Slow
          test_bep_penalty_attribution;
      ] );
  ]
