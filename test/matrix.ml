(* Shared scaffolding for the whole-suite test walls.

   Every wall (bound soundness, conflict agreement, delta differential,
   exttsp differential) sweeps the same space — the 24 built-in
   workloads, the five algorithm families each under the cost model its
   study uses, and the harness's seven simulated architectures — at the
   standard 20k-step test budget.  The sweep lives here once; the walls
   keep only their per-cell assertions.

   This is a (wrapped false) library, not a module of the main test
   executable, so the standalone gates (lint_all, verify_all) consume the
   same canonical [algos] list instead of keeping their own copies. *)

let wall_steps = 20_000

let workload name =
  match Ba_workloads.Spec.by_name name with
  | Some w -> w
  | None -> Alcotest.failf "unknown workload %s" name

(* The harness's seven simulated architectures, likely bits built from the
   image under test as the harness does. *)
let archs_for image profile =
  [
    Ba_sim.Bep.Static_fallthrough;
    Ba_sim.Bep.Static_btfnt;
    Ba_sim.Bep.Static_likely (Ba_predict.Likely_bits.build image profile);
    Ba_sim.Bep.Pht_direct { entries = 4096 };
    Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 };
    Ba_sim.Bep.Btb_arch { entries = 64; assoc = 2 };
    Ba_sim.Bep.Btb_arch { entries = 256; assoc = 4 };
  ]

(* The canonical algorithm list every wall and standalone gate sweeps.
   Adding a constructor to Ba_core.Align.algo means adding it here (and
   scripts/check_algo_walls.sh insists every constructor shows up in some
   test wall). *)
let algos =
  [
    Ba_core.Align.Original;
    Ba_core.Align.Greedy;
    Ba_core.Align.Cost;
    Ba_core.Align.Tryn 15;
    Ba_core.Align.ExtTsp;
  ]

(* The cost model each algorithm's study runs under.  Greedy and ExtTsp
   are architecture-oblivious; the arch only labels their cells. *)
let arch_for = function
  | Ba_core.Align.Original | Ba_core.Align.Greedy | Ba_core.Align.ExtTsp ->
    Ba_core.Cost_model.Btfnt
  | Ba_core.Align.Cost -> Ba_core.Cost_model.Pht
  | Ba_core.Align.Tryn _ -> Ba_core.Cost_model.Btb

let wall_cells = List.map (fun a -> (a, arch_for a)) algos

let decisions_for ~profile program algo ~arch =
  match algo with
  | Ba_core.Align.Original ->
    Array.init (Ba_ir.Program.n_procs program) (fun p ->
        Ba_layout.Decision.identity (Ba_ir.Program.proc program p))
  | _ -> Ba_core.Align.align_program algo ~arch profile

let image_for ~profile program algo ~arch =
  match algo with
  | Ba_core.Align.Original -> Ba_layout.Image.original ~profile program
  | _ -> Ba_core.Align.image algo ~arch profile

(* Every built-in workload's memoized traced run. *)
let iter_traced ?(max_steps = wall_steps) f =
  List.iter
    (fun (w : Ba_workloads.Spec.t) ->
      let program, profile, trace =
        Ba_workloads.Profiled.get_traced ~max_steps w
      in
      f w program profile trace)
    Ba_workloads.Spec.all

(* The full workload x algorithm wall: [f] gets each cell's aligned
   image alongside the traced run it came from. *)
let iter_wall ?max_steps ?(cells = wall_cells) f =
  iter_traced ?max_steps (fun w program profile trace ->
      List.iter
        (fun (algo, arch) ->
          f ~w ~algo ~arch ~program ~profile ~trace
            (image_for ~profile program algo ~arch))
        cells)
