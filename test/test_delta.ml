(* Tests for Ba_delta: the incremental cost evaluators and the annealing
   search built on them.

   The load-bearing suite is the differential wall: across the standard
   workload x algorithm matrix and the harness's seven simulated
   architectures, {!Ba_delta.Eval.cost} of a moved layout must equal —
   exactly, as integers — the penalty cycles a full trace replay of that
   layout reports.  The move-algebra suite pins the static model's
   exactness contract through the public API alone: totals bit-equal to a
   fresh lowering, move+inverse restoring the total bit-for-bit, disjoint
   moves composing additively, and deltas agreeing with the certified
   totals of two fully-certified layouts.  The equality gates pin that
   the [?delta] switches change nothing but speed. *)

open Ba_delta

let wall_steps = Matrix.wall_steps
let qcheck_steps = 2_000

(* Deterministic QCheck stream; override with QCHECK_SEED.  The seed is
   part of every property's name, so a failure always names the stream
   that produced it (the generated program additionally prints its own
   construction seed). *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0x5eed)
  | None -> 0x5eed

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~long:false
    ~rand:(Random.State.make [| qcheck_seed |])
    test

(* The harness seven, as Eval specs — same order and configurations as
   [Matrix.archs_for]. *)
let specs7 =
  [|
    Eval.Fallthrough;
    Eval.Btfnt;
    Eval.Likely;
    Eval.Pht_direct { entries = 4096 };
    Eval.Pht_gshare { entries = 4096; history_bits = 12 };
    Eval.Btb { entries = 64; assoc = 2 };
    Eval.Btb { entries = 256; assoc = 4 };
  |]

(* The two extra dynamic predictors outside the harness seven. *)
let specs9 =
  Array.append specs7
    [|
      Eval.Pht_global { history_bits = 8 };
      Eval.Pht_local { history_bits = 8; branch_entries = 64 };
    |]

(* Reference side: a full trace replay of the candidate layout, one Bep
   simulator per spec ([Eval.to_arch] builds each spec's architecture from
   the candidate image, likely bits included). *)
let simulate_costs ~specs ~trace ~max_steps ~profile program decisions =
  let image = Ba_layout.Image.build ~profile program decisions in
  let archs =
    Array.to_list (Array.map (fun s -> Eval.to_arch s ~image ~profile) specs)
  in
  let out = Ba_sim.Runner.simulate ~max_steps ~trace ~archs image in
  Array.map (fun (_, sim) -> Ba_sim.Bep.bep sim) out.Ba_sim.Runner.sims

(* Deterministic spread of at most [k] elements across the list. *)
let sample k xs =
  let n = List.length xs in
  if n <= k then xs
  else
    let stride = n / k in
    List.filteri (fun i _ -> i mod stride = 0 && i / stride < k) xs

let check_costs ~what ~specs expected actual =
  Array.iteri
    (fun i want ->
      Alcotest.(check int)
        (Printf.sprintf "%s [%s]" what (Eval.spec_label specs.(i)))
        want actual.(i))
    expected

(* One differential cell: create the evaluator over the base layout, then
   cross-check it against full replays on the base and on a sample of its
   one-move neighbours.  Returns how many moves were checked. *)
let check_cell ~specs ~max_steps ~moves_per_cell ~what program profile trace
    decisions =
  let ev = Eval.create ~specs profile trace decisions in
  let reference =
    simulate_costs ~specs ~trace ~max_steps ~profile program decisions
  in
  check_costs ~what:(what ^ " base") ~specs reference (Eval.cost ev decisions);
  let moves =
    sample moves_per_cell
      (Move.enumerate
         ~cond_counts:(fun p b -> Ba_cfg.Profile.cond_counts profile p b)
         program decisions)
  in
  List.iter
    (fun mv ->
      let moved = Move.apply decisions mv in
      let got = Eval.cost ev moved in
      let want =
        simulate_costs ~specs ~trace ~max_steps ~profile program moved
      in
      check_costs
        ~what:(Format.asprintf "%s %a" what Move.pp mv)
        ~specs want got)
    moves;
  List.length moves

(* ------------------------------------------------------------------ *)
(* The differential wall: 24 workloads x 5 algorithms x 7 architectures,
   every sampled move priced incrementally and by full replay. *)

let test_differential_wall () =
  let moves = ref 0 and cells = ref 0 in
  Matrix.iter_traced (fun w program profile trace ->
      List.iter
        (fun (algo, arch) ->
          let decisions = Matrix.decisions_for ~profile program algo ~arch in
          let what =
            Printf.sprintf "%s/%s" w.Ba_workloads.Spec.name
              (Ba_core.Align.algo_name algo)
          in
          incr cells;
          moves :=
            !moves
            + check_cell ~specs:specs7 ~max_steps:wall_steps ~moves_per_cell:5
                ~what program profile trace decisions)
        Matrix.wall_cells);
  (* The CI step summary greps this line out of the test log. *)
  Printf.printf "delta wall: checked %d moves across %d cells, all exact\n%!"
    !moves !cells

(* ------------------------------------------------------------------ *)
(* Adversarial fallback: a swap that shifts later branch addresses across
   a tiny direct-PHT's set boundary, so the cached base is unusable and
   the entry-scoped dual replay must run — and still be exact. *)

let boundary_program () =
  let open Ba_ir in
  let blocks =
    [|
      Block.make ~insns:2
        (Term.Cond
           { on_true = 1; on_false = 2; behavior = Behavior.Pattern [| true; false; true |] });
      Block.make ~insns:3 (Term.Jump 3);
      Block.make ~insns:4 (Term.Jump 3);
      Block.make ~insns:2
        (Term.Cond { on_true = 0; on_false = 4; behavior = Behavior.Loop 7 });
      Block.make ~insns:1 Term.Halt;
    |]
  in
  Program.make ~name:"set-boundary" ~seed:3
    [| Proc.make ~name:"main" blocks |]

let test_scoped_fallback () =
  let program = boundary_program () in
  let profile, trace =
    Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
  in
  let decisions =
    Array.init (Ba_ir.Program.n_procs program) (fun p ->
        Ba_layout.Decision.identity (Ba_ir.Program.proc program p))
  in
  (* A 2-entry direct PHT: every branch pc indexes by its lowest address
     bit.  Swapping positions 1 and 2 exchanges blocks of different sizes
     (3 vs 4 insns), shifting the loop conditional's address parity — the
     moved layout maps it to the other counter, which the cached base
     pricing cannot express. *)
  let specs = [| Eval.Pht_direct { entries = 2 } |] in
  let ev = Eval.create ~specs profile trace decisions in
  let before = (Eval.stats ev).Eval.cond_scoped in
  let moved = Move.apply decisions (Move.swap ~proc:0 1) in
  let got = Eval.cost ev moved in
  let want =
    simulate_costs ~specs ~trace ~max_steps:qcheck_steps ~profile program moved
  in
  check_costs ~what:"set-boundary swap" ~specs want got;
  Alcotest.(check bool)
    "the swap forced the entry-scoped replay" true
    ((Eval.stats ev).Eval.cond_scoped > before)

(* ------------------------------------------------------------------ *)
(* Random programs: the differential property on shapes the workloads do
   not cover, all nine predictor specs at once. *)

let test_qcheck_differential =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "delta equals full replay on random programs (qcheck seed %d)"
         qcheck_seed)
    ~count:30 Gen_prog.program_arb (fun program ->
      let profile, trace =
        Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
      in
      let decisions =
        Ba_core.Align.align_program Ba_core.Align.Greedy
          ~arch:Ba_core.Cost_model.Btfnt profile
      in
      let ev = Eval.create ~specs:specs9 profile trace decisions in
      let moves =
        sample 4
          (Move.enumerate
             ~cond_counts:(fun p b -> Ba_cfg.Profile.cond_counts profile p b)
             program decisions)
      in
      List.for_all
        (fun mv ->
          let moved = Move.apply decisions mv in
          let got = Eval.cost ev moved in
          let want =
            simulate_costs ~specs:specs9 ~trace ~max_steps:qcheck_steps
              ~profile program moved
          in
          Array.for_all Fun.id
            (Array.mapi
               (fun i w ->
                 if w = got.(i) then true
                 else
                   QCheck.Test.fail_reportf
                     "%a [%s]: delta %d, full replay %d (qcheck seed %d)"
                     Move.pp mv
                     (Eval.spec_label specs9.(i))
                     got.(i) w qcheck_seed)
               want))
        moves)

(* ------------------------------------------------------------------ *)
(* Move algebra over the static model, public API only. *)

let model_fixture name =
  let w = Matrix.workload name in
  let program, profile = Ba_workloads.Profiled.get ~max_steps:wall_steps w in
  let decisions =
    Ba_core.Align.align_program Ba_core.Align.Greedy
      ~arch:Ba_core.Cost_model.Btfnt profile
  in
  (* The first procedure with enough blocks to have interior swaps. *)
  let pid =
    let rec find p =
      if p >= Ba_ir.Program.n_procs program then
        Alcotest.failf "%s: no procedure with >= 4 blocks" name
      else if Ba_ir.Proc.n_blocks (Ba_ir.Program.proc program p) >= 4 then p
      else find (p + 1)
    in
    find 0
  in
  let proc = Ba_ir.Program.proc program pid in
  let model =
    Model.create ~arch:Ba_core.Cost_model.Btfnt
      ~visits:(fun b -> Ba_cfg.Profile.visits profile pid b)
      ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile pid b)
      proc decisions.(pid)
  in
  (program, profile, pid, proc, decisions, model)

let moves_of proc model =
  let n = Model.n_positions model in
  let swaps = List.init (max 0 (n - 2)) (fun i -> Move.Swap (i + 1)) in
  let forces =
    List.concat_map
      (fun b ->
        match (Ba_ir.Proc.block proc b).Ba_ir.Block.term with
        | Ba_ir.Term.Cond _ ->
          [
            Move.Force (b, None);
            Move.Force (b, Some Ba_layout.Decision.Jump_on_true);
            Move.Force (b, Some Ba_layout.Decision.Jump_on_false);
          ]
        | _ -> [])
      (List.init (Ba_ir.Proc.n_blocks proc) Fun.id)
  in
  swaps @ forces

let exact_float = Alcotest.float 0.0

(* total/preview bit-equal to a fresh lowering of the same decision. *)
let test_model_exactness () =
  let _, profile, pid, proc, decisions, model = model_fixture "espresso" in
  let decision = decisions.(pid) in
  let cond_counts b = Ba_cfg.Profile.cond_counts profile pid b in
  let visits b = Ba_cfg.Profile.visits profile pid b in
  let fresh d =
    Ba_core.Layout_cost.branch_cost ~arch:Ba_core.Cost_model.Btfnt ~visits
      ~cond_counts
      (Ba_layout.Lower.lower ~cond_counts proc d)
  in
  Alcotest.check exact_float "total = fresh lowering" (fresh decision)
    (Model.total model);
  List.iter
    (fun mv ->
      Alcotest.(check exact_float)
        (Format.asprintf "preview %a = fresh lowering" Move.pp
           { Move.proc = pid; m = mv })
        (fresh (Move.apply_local decision mv))
        (Model.preview model mv))
    (sample 10 (moves_of proc model))

(* Committing a move and its inverse restores the total bit-for-bit. *)
let test_move_inverse () =
  let _, _, pid, proc, _, model = model_fixture "espresso" in
  List.iter
    (fun mv ->
      let t0 = Model.total model in
      let inverse =
        match mv with
        | Move.Swap _ -> mv
        | Move.Force (b, _) ->
          Move.Force (b, (Model.decision model).Ba_layout.Decision.neither.(b))
      in
      Model.commit model mv;
      Model.commit model inverse;
      Alcotest.check exact_float
        (Format.asprintf "%a + inverse = identity" Move.pp
           { Move.proc = pid; m = mv })
        t0 (Model.total model))
    (sample 10 (moves_of proc model))

(* Deltas of window-disjoint moves compose additively. *)
let test_disjoint_additive () =
  let _, _, _, _, _, model = model_fixture "gcc" in
  let n = Model.n_positions model in
  if n < 7 then Alcotest.fail "fixture too small for disjoint swaps";
  let m1 = Move.Swap 1 and m2 = Move.Swap (n - 2) in
  let t0 = Model.total model in
  let d1 = Model.delta model m1 and d2 = Model.delta model m2 in
  Model.commit model m1;
  Model.commit model m2;
  Alcotest.check (Alcotest.float 1e-6) "disjoint deltas sum"
    (t0 +. d1 +. d2) (Model.total model)

(* The model's delta equals the difference of two independently certified
   totals: lower both layouts, validate each against the CFG, and price
   the witnesses with the certifier (which shares no traversal code with
   Layout_cost, let alone with the model). *)
let test_delta_vs_certificates () =
  let program, profile, pid, proc, decisions, model = model_fixture "espresso" in
  let decision = decisions.(pid) in
  let cond_counts b = Ba_cfg.Profile.cond_counts profile pid b in
  let visits b = Ba_cfg.Profile.visits profile pid b in
  let certified d =
    let ds = Array.copy decisions in
    ds.(pid) <- d;
    let image = Ba_layout.Image.build ~profile program ds in
    let linear = image.Ba_layout.Image.linears.(pid) in
    match Ba_verify.Bisim.verify ~proc_id:pid linear with
    | Error _ -> Alcotest.fail "certified layout failed bisimulation"
    | Ok witness -> (
      match
        Ba_verify.Cost_cert.certify ~arch:Ba_core.Cost_model.Btfnt ~visits
          ~cond_counts ~proc_id:pid linear witness
      with
      | Ok total -> total
      | Error _ -> Alcotest.fail "certified layout failed certification")
  in
  let base = certified decision in
  List.iter
    (fun mv ->
      Alcotest.check
        (Alcotest.float 1e-6)
        (Format.asprintf "delta %a = certified difference" Move.pp
           { Move.proc = pid; m = mv })
        (certified (Move.apply_local decision mv) -. base)
        (Model.delta model mv))
    (sample 8 (moves_of proc model))

(* ------------------------------------------------------------------ *)
(* Equality gates: the ?delta switches change the speed, not the result. *)

let check_same_decisions what (a : Ba_layout.Decision.t array)
    (b : Ba_layout.Decision.t array) =
  Alcotest.(check int) (what ^ ": same procedure count") (Array.length a)
    (Array.length b);
  Array.iteri
    (fun p (da : Ba_layout.Decision.t) ->
      let db : Ba_layout.Decision.t = b.(p) in
      Alcotest.(check (array int))
        (Printf.sprintf "%s: proc %d order" what p)
        da.Ba_layout.Decision.order db.Ba_layout.Decision.order;
      Array.iteri
        (fun i leg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: proc %d neither %d" what p i)
            true
            (leg = db.Ba_layout.Decision.neither.(i)))
        da.Ba_layout.Decision.neither)
    a

let test_tryn_delta_gate () =
  List.iter
    (fun name ->
      let w = Matrix.workload name in
      let _, profile = Ba_workloads.Profiled.get ~max_steps:wall_steps w in
      let fast =
        Ba_core.Align.align_program (Ba_core.Align.Tryn 15) ~delta:true
          ~arch:Ba_core.Cost_model.Btfnt profile
      in
      let slow =
        Ba_core.Align.align_program (Ba_core.Align.Tryn 15) ~delta:false
          ~arch:Ba_core.Cost_model.Btfnt profile
      in
      check_same_decisions (name ^ "/try15") fast slow)
    [ "espresso"; "li"; "wave5" ]

let test_place_delta_gate () =
  let w = Matrix.workload "eqntott" in
  let program, profile = Ba_workloads.Profiled.get ~max_steps:wall_steps w in
  let decisions =
    Ba_core.Align.align_program (Ba_core.Align.Tryn 15)
      ~arch:Ba_core.Cost_model.Btb profile
  in
  let fast =
    Ba_conflict.Place.improve ~arch:Ba_core.Cost_model.Btb ~delta:true ~profile
      program decisions
  in
  let slow =
    Ba_conflict.Place.improve ~arch:Ba_core.Cost_model.Btb ~delta:false
      ~profile program decisions
  in
  check_same_decisions "place" fast.Ba_conflict.Place.decisions
    slow.Ba_conflict.Place.decisions;
  Alcotest.(check (array int))
    "place: same pads" fast.Ba_conflict.Place.pads slow.Ba_conflict.Place.pads;
  Alcotest.(check int)
    "place: same swap count" fast.Ba_conflict.Place.swaps
    slow.Ba_conflict.Place.swaps

let test_gap_delta_gate () =
  let w = Matrix.workload "eqntott" in
  let row d = Ba_report.Gap.evaluate ~max_steps:wall_steps ~k:2 ~delta:d w in
  let fast = row true and slow = row false in
  List.iter2
    (fun (f : Ba_report.Gap.cell) (s : Ba_report.Gap.cell) ->
      let what fmt =
        Printf.sprintf "gap/%s: %s"
          (Ba_core.Cost_model.arch_name f.Ba_report.Gap.model)
          fmt
      in
      Alcotest.(check int) (what "greedy") s.Ba_report.Gap.greedy f.Ba_report.Gap.greedy;
      Alcotest.(check int) (what "cost") s.Ba_report.Gap.cost f.Ba_report.Gap.cost;
      Alcotest.(check int) (what "tryn") s.Ba_report.Gap.tryn f.Ba_report.Gap.tryn;
      Alcotest.(check int) (what "anneal") s.Ba_report.Gap.anneal f.Ba_report.Gap.anneal;
      Alcotest.(check int) (what "optimal") s.Ba_report.Gap.optimal f.Ba_report.Gap.optimal;
      Alcotest.(check int) (what "simulated+pruned")
        (s.Ba_report.Gap.simulated + s.Ba_report.Gap.pruned)
        (f.Ba_report.Gap.simulated + f.Ba_report.Gap.pruned))
    fast.Ba_report.Gap.cells slow.Ba_report.Gap.cells

(* ------------------------------------------------------------------ *)
(* The annealing search: deterministic, and never worse than Greedy
   under the model it optimises. *)

let test_anneal_deterministic () =
  let w = Matrix.workload "eqntott" in
  let _, profile = Ba_workloads.Profiled.get ~max_steps:wall_steps w in
  let a =
    Anneal.align_program ~seed:7 ~arch:Ba_core.Cost_model.Btfnt profile
  in
  let b =
    Anneal.align_program ~seed:7 ~arch:Ba_core.Cost_model.Btfnt profile
  in
  check_same_decisions "anneal seed 7" a b

let test_anneal_never_worse () =
  List.iter
    (fun name ->
      let w = Matrix.workload name in
      let program, profile =
        Ba_workloads.Profiled.get ~max_steps:wall_steps w
      in
      let greedy =
        Ba_core.Align.align_program Ba_core.Align.Greedy
          ~arch:Ba_core.Cost_model.Btfnt profile
      in
      let annealed =
        Anneal.align_program ~arch:Ba_core.Cost_model.Btfnt profile
      in
      let cost decisions pid =
        Model.total
          (Model.create ~arch:Ba_core.Cost_model.Btfnt
             ~visits:(fun b -> Ba_cfg.Profile.visits profile pid b)
             ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile pid b)
             (Ba_ir.Program.proc program pid) decisions.(pid))
      in
      for pid = 0 to Ba_ir.Program.n_procs program - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "%s proc %d: anneal <= greedy" name pid)
          true
          (cost annealed pid <= cost greedy pid)
      done)
    [ "eqntott"; "wave5"; "li" ]

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "delta.wall",
      [
        Alcotest.test_case "24 workloads x 5 algos x 7 archs, exact" `Slow
          test_differential_wall;
        Alcotest.test_case "set-boundary swap forces scoped replay" `Quick
          test_scoped_fallback;
        to_alcotest test_qcheck_differential;
      ] );
    ( "delta.algebra",
      [
        Alcotest.test_case "total/preview bit-equal to fresh lowering" `Slow
          test_model_exactness;
        Alcotest.test_case "move + inverse = identity" `Slow test_move_inverse;
        Alcotest.test_case "disjoint deltas compose additively" `Slow
          test_disjoint_additive;
        Alcotest.test_case "delta = certified layout difference" `Slow
          test_delta_vs_certificates;
      ] );
    ( "delta.gates",
      [
        Alcotest.test_case "Try15 identical with and without delta" `Slow
          test_tryn_delta_gate;
        Alcotest.test_case "placement identical with and without delta" `Slow
          test_place_delta_gate;
        Alcotest.test_case "gap table identical with and without delta" `Slow
          test_gap_delta_gate;
      ] );
    ( "delta.anneal",
      [
        Alcotest.test_case "same seed, same layout" `Slow
          test_anneal_deterministic;
        Alcotest.test_case "never worse than Greedy under the model" `Slow
          test_anneal_never_worse;
      ] );
  ]
