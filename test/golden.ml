(* Golden-snapshot wall.

   Two families of snapshots live in test/golden/:

   - [tables.expected]: the 24-workload x 4-algorithm relative-CPI tables
     (Tables 2-4 and the Figure 4 series) at the standard 20k-step test
     budget, rendered with NO metrics registry installed — so any
     instrumentation that perturbs the experiment output, or any
     unintentional change to the numbers themselves, fails the build.

   - [metrics_<arch>.expected]: the deterministic metrics JSON for one
     canonical workload per branch architecture, pipeline spans included —
     so any change to a metric name, a counter's value, a histogram's
     bucketing or the span tree is a visible diff, not silent drift.

   Regenerate after an intentional change with:

     BA_BLESS=1 dune runtest

   and commit the updated .expected files with the change that caused
   them. *)

let max_steps = 20_000
let bless = match Sys.getenv_opt "BA_BLESS" with Some ("" | "0") | None -> false | Some _ -> true
let failures = ref 0

let dir =
  if Array.length Sys.argv < 2 then (
    prerr_endline "usage: golden <golden-dir>";
    exit 2)
  else Sys.argv.(1)

(* Under dune the action runs inside _build/<context>/ and [dir] names the
   build-tree copies of the snapshots — right for reading, wrong for
   blessing: dune never mirrors writes back to the source tree.  Map the
   path back to the source directory for BA_BLESS. *)
let bless_dir =
  let abs = if Filename.is_relative dir then Filename.concat (Sys.getcwd ()) dir else dir in
  let needle = "/_build/" in
  let rec find i =
    if i + String.length needle > String.length abs then None
    else if String.sub abs i (String.length needle) = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> abs
  | Some i ->
    let root = String.sub abs 0 i in
    let rest = String.sub abs (i + String.length needle)
        (String.length abs - i - String.length needle) in
    (* drop the context component ("default/...") *)
    (match String.index_opt rest '/' with
    | Some j ->
      Filename.concat root (String.sub rest (j + 1) (String.length rest - j - 1))
    | None -> abs)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let first_diff expected actual =
  let el = String.split_on_char '\n' expected and al = String.split_on_char '\n' actual in
  let rec scan i = function
    | e :: es, a :: als -> if e = a then scan (i + 1) (es, als) else Some (i, e, a)
    | e :: _, [] -> Some (i, e, "<missing>")
    | [], a :: _ -> Some (i, "<missing>", a)
    | [], [] -> None
  in
  scan 1 (el, al)

let check name actual =
  let path = Filename.concat dir (name ^ ".expected") in
  if bless then begin
    let target = Filename.concat bless_dir (name ^ ".expected") in
    write_file target actual;
    Printf.printf "blessed %s (%d bytes)\n%!" target (String.length actual)
  end
  else if not (Sys.file_exists path) then begin
    incr failures;
    Printf.printf "FAIL %s: golden file missing; run BA_BLESS=1 dune runtest\n%!" name
  end
  else
    let expected = read_file path in
    if expected = actual then Printf.printf "ok   %s\n%!" name
    else begin
      incr failures;
      (match first_diff expected actual with
      | Some (line, e, a) ->
        Printf.printf
          "FAIL %s: output drifted from %s\n  first difference at line %d:\n  \
           expected: %s\n  actual:   %s\n"
          name path line e a
      | None -> Printf.printf "FAIL %s: output drifted from %s\n" name path);
      Printf.printf
        "  if the change is intentional, rebless with BA_BLESS=1 dune runtest\n%!"
    end

(* -- 24-workload relative-CPI tables, metrics collection off --------------- *)

let tables () =
  assert (Ba_obs.Registry.current () = None);
  let evals = Ba_report.Harness.evaluate_suite ~max_steps Ba_workloads.Spec.all in
  String.concat "\n"
    [
      "== Table 2: measured program attributes ==";
      Ba_report.Tables.table2 evals;
      "== Table 3: static architectures, relative CPI ==";
      Ba_report.Tables.table3 evals;
      "== Table 4: dynamic architectures, relative CPI ==";
      Ba_report.Tables.table4 evals;
      "== Figure 4: Alpha 21064 relative execution time ==";
      Ba_report.Tables.fig4 evals;
    ]

(* -- Metrics JSON, one canonical workload per architecture ----------------- *)

(* Each case runs the full pipeline (profile -> align -> simulate) for one
   workload under one branch architecture, with a fresh registry around the
   whole thing; the snapshot is the deterministic JSON (volatile metrics and
   wall seconds elided by the sink). *)
let metrics_cases =
  [
    ("fallthrough", "compress", Ba_core.Cost_model.Fallthrough,
     fun _ _ -> Ba_sim.Bep.Static_fallthrough);
    ("btfnt", "espresso", Ba_core.Cost_model.Btfnt,
     fun _ _ -> Ba_sim.Bep.Static_btfnt);
    ("likely", "li", Ba_core.Cost_model.Likely,
     fun image profile ->
       Ba_sim.Bep.Static_likely (Ba_predict.Likely_bits.build image profile));
    ("pht-direct", "eqntott", Ba_core.Cost_model.Pht,
     fun _ _ -> Ba_sim.Bep.Pht_direct { entries = 4096 });
    ("pht-gshare", "gcc", Ba_core.Cost_model.Pht,
     fun _ _ -> Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 });
    ("btb-256x4", "sc", Ba_core.Cost_model.Btb,
     fun _ _ -> Ba_sim.Bep.Btb_arch { entries = 256; assoc = 4 });
  ]

let metrics_json (slug, workload, cost_arch, make_arch) =
  let spec =
    match Ba_workloads.Spec.by_name workload with
    | Some w -> w
    | None -> failwith ("unknown canonical workload " ^ workload)
  in
  let registry = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry registry (fun () ->
      let program = spec.Ba_workloads.Spec.build () in
      let profile = Ba_exec.Engine.profile_program ~max_steps program in
      let image = Ba_core.Align.image (Ba_core.Align.Tryn 15) ~arch:cost_arch profile in
      ignore
        (Ba_sim.Runner.simulate ~max_steps ~archs:[ make_arch image profile ] image
          : Ba_sim.Runner.outcome));
  (slug, Ba_util.Json.to_string (Ba_obs.Sink.to_json registry) ^ "\n")

(* -- ExtTSP and inter-procedural layout report ----------------------------- *)

let spec_named name =
  match Ba_workloads.Spec.by_name name with
  | Some w -> w
  | None -> failwith ("unknown canonical workload " ^ name)

(* A four-workload subset keeps the branch-and-bound gap search and the
   stitched-image verification affordable; the full 24-workload ExtTsp
   columns are already pinned through [tables]. *)
let exttsp_subset = [ "compress"; "eqntott"; "li"; "wave5" ]

let exttsp_report () =
  assert (Ba_obs.Registry.current () = None);
  let specs = List.map spec_named exttsp_subset in
  let evals = Ba_report.Harness.evaluate_suite ~max_steps specs in
  let gap_rows = Ba_report.Gap.evaluate_suite ~max_steps specs in
  let ip_rows = Ba_report.Interproc.evaluate_suite ~max_steps specs in
  List.iter
    (fun (r : Ba_report.Interproc.row) ->
      if not r.Ba_report.Interproc.verified then
        failwith
          ("exttsp_report: stitched " ^ r.Ba_report.Interproc.workload.Ba_workloads.Spec.name
         ^ " failed verification"))
    ip_rows;
  (* The snapshot must pin a live inter-procedural win: at least one
     verified workload where stitching strictly reduces some
     architecture's penalty cycles. *)
  let wins (r : Ba_report.Interproc.row) =
    let w = ref false in
    Array.iteri
      (fun i p -> if r.Ba_report.Interproc.stitched.(i) < p then w := true)
      r.Ba_report.Interproc.plain;
    !w
  in
  if not (List.exists wins ip_rows) then
    failwith "exttsp_report: no inter-procedural win in the subset";
  String.concat "\n"
    [
      "== ExtTsp subset: static architectures, relative CPI ==";
      Ba_report.Tables.table3 evals;
      "== ExtTsp subset: dynamic architectures, relative CPI ==";
      Ba_report.Tables.table4 evals;
      "== Optimality gap, ExtTsp included ==";
      Ba_report.Gap.render gap_rows;
      "== Inter-procedural layout: penalty cycles, plain>stitched ==";
      Ba_report.Interproc.render ip_rows;
    ]

(* -- Metrics JSON for one canonical inter-procedural pipeline -------------- *)

(* The full stitched pipeline (profile+trace -> ExtTsp -> build_interproc
   -> replay) under a fresh registry: the ExtTsp guard counter, the
   stitcher's split/cold counters and the span tree are all pinned. *)
let metrics_interproc () =
  let spec = spec_named "wave5" in
  let registry = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry registry (fun () ->
      let program = spec.Ba_workloads.Spec.build () in
      let profile, trace =
        Ba_trace.Record.profile_and_record ~max_steps program
      in
      let decisions = Ba_core.Align.align_program Ba_core.Align.ExtTsp profile in
      let ip = Ba_layout.Image.build_interproc ~profile program decisions in
      ignore
        (Ba_sim.Runner.simulate ~max_steps ~trace
           ~archs:[ Ba_sim.Bep.Static_btfnt ]
           ip.Ba_layout.Image.image
          : Ba_sim.Runner.outcome));
  Ba_util.Json.to_string (Ba_obs.Sink.to_json registry) ^ "\n"

(* -- Canonical conflict report --------------------------------------------- *)

(* The default-suite static conflict analysis of one workload's original
   image — the analyze subcommand's table and JSON, pinned byte-for-byte.
   wave5's unaligned layout genuinely collides (nonzero conflict weight in
   several structures), so the snapshot pins real conflict lists, not just
   empty maps.  The analysis is pure arithmetic over the address map, so
   any drift here means the indexing functions, the site extraction, or
   the report rendering changed. *)
let conflict_report () =
  let spec =
    match Ba_workloads.Spec.by_name "wave5" with
    | Some w -> w
    | None -> failwith "unknown canonical workload wave5"
  in
  let program, profile = Ba_workloads.Profiled.get ~max_steps spec in
  let image = Ba_layout.Image.original ~profile program in
  let reports = Ba_conflict.Analyze.analyze ~profile image in
  String.concat "\n"
    [
      "== wave5, original image: static predictor conflicts ==";
      Ba_conflict.Analyze.render reports;
      Ba_util.Json.to_string (Ba_conflict.Analyze.to_json reports) ^ "\n";
    ]

(* -- Canonical bound report ------------------------------------------------ *)

(* The abstract-interpretation cost bounds of one workload under BT/FNT,
   for both the Try15 layout and the original one, plus the bound lint of
   the Try15 cell.  wave5's Try15/BT-FNT layout is genuinely certified
   suboptimal by the static bounds alone (orig's upper bound sits below
   its lower bound), so the snapshot pins a live
   [bound/provably-suboptimal] finding, not just interval arithmetic. *)
let bound_report () =
  let spec =
    match Ba_workloads.Spec.by_name "wave5" with
    | Some w -> w
    | None -> failwith "unknown canonical workload wave5"
  in
  let program, profile = Ba_workloads.Profiled.get ~max_steps spec in
  let analyze image =
    Ba_bound.Analyze.analyze
      ~arch:
        (Ba_bound.Analyze.arch_of_model Ba_core.Cost_model.Btfnt ~profile image)
      ~profile image
  in
  let detail (a : Ba_bound.Analyze.t) =
    String.concat "\n"
      (List.map
         (fun (r : Ba_bound.Analyze.row) ->
           Printf.sprintf "proc %d pc %-4d %-9s pooled %d weight %-6d [%d, %d]"
             r.Ba_bound.Analyze.proc r.Ba_bound.Analyze.pc r.Ba_bound.Analyze.what
             r.Ba_bound.Analyze.pooled r.Ba_bound.Analyze.weight
             r.Ba_bound.Analyze.penalty.Ba_bound.Domain.lo
             r.Ba_bound.Analyze.penalty.Ba_bound.Domain.hi)
         a.Ba_bound.Analyze.rows
      @ [
          Printf.sprintf "total [%d, %d] extra_lo %d"
            a.Ba_bound.Analyze.total.Ba_bound.Domain.lo
            a.Ba_bound.Analyze.total.Ba_bound.Domain.hi
            a.Ba_bound.Analyze.extra_lo;
        ])
  in
  let t15 =
    Ba_core.Align.image (Ba_core.Align.Tryn 15) ~arch:Ba_core.Cost_model.Btfnt
      profile
  in
  let orig = Ba_layout.Image.original ~profile program in
  let diags =
    Ba_bound.Lint.check ~algo:(Ba_core.Align.Tryn 15)
      ~arch:Ba_core.Cost_model.Btfnt ~profile t15
  in
  (* The optimality audit of wave5's Greedy/FALLTHROUGH layout, with the
     recorded trace handed through so the finding quotes the exact
     simulated saving (Ba_delta.Eval) next to the model's expected one —
     any drift in either pricing path is a visible diff here. *)
  let audit_findings =
    let _, _, trace = Ba_workloads.Profiled.get_traced ~max_steps spec in
    let result =
      Ba_verify.Run.verify_pipeline ~arch:Ba_core.Cost_model.Fallthrough
        ~max_steps ~profile ~trace ~algo:Ba_core.Align.Greedy program
    in
    result.Ba_verify.Run.audit
  in
  String.concat "\n"
    ([
       "== wave5, Try15/BT-FNT: static cost bounds ==";
       detail (analyze t15);
       "== wave5, orig/BT-FNT: static cost bounds ==";
       detail (analyze orig);
       "== wave5, Try15/BT-FNT: bound lint ==";
     ]
    @ List.map
        (fun d -> Format.asprintf "%a" Ba_analysis.Diagnostic.pp d)
        diags
    @ [ "== wave5, Greedy/FALLTHROUGH: optimality audit (simulator-exact) ==" ]
    @ List.map
        (fun d -> Format.asprintf "%a" Ba_analysis.Diagnostic.pp d)
        audit_findings)
  ^ "\n"

let () =
  check "tables" (tables ());
  check "exttsp_report" (exttsp_report ());
  check "metrics_interproc" (metrics_interproc ());
  check "conflict_report" (conflict_report ());
  check "bound_report" (bound_report ());
  List.iter
    (fun case ->
      let slug, json = metrics_json case in
      check ("metrics_" ^ slug) json)
    metrics_cases;
  if !failures > 0 then begin
    Printf.printf "%d golden snapshot(s) drifted\n%!" !failures;
    exit 1
  end
