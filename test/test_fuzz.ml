(* Property-based pipeline fuzz: for arbitrary generated programs (see
   Gen_prog), every alignment algorithm must produce a layout that survives
   the full verification stack — lint, translation validation (Bisim) and
   independent cost certification (Cost_cert) on every architecture — and
   the Cost heuristic must never price worse than Greedy under the model it
   optimizes for.  This is the adversarial counterpart of the curated
   verify-all matrix: the workload suite is hand-built, these programs are
   not. *)

open Ba_core

let fuzz_steps = 3_000

let algos = [ Align.Original; Align.Greedy; Align.Cost; Align.Tryn 5 ]

let pp_diags ppf diags =
  Fmt.list ~sep:Fmt.cut Ba_analysis.Diagnostic.pp ppf
    (List.filter Ba_analysis.Diagnostic.is_error diags)

(* Full verification of every algorithm: bisimulation proves the lowered
   code equivalent to the CFG, certification cross-checks the pricing on
   all five architectures. *)
let test_all_algos_verify =
  QCheck.Test.make ~name:"fuzz: every algorithm bisimulates and certifies"
    ~count:40 Gen_prog.large_program_arb (fun program ->
      let profile = Ba_exec.Engine.profile_program ~max_steps:fuzz_steps program in
      List.for_all
        (fun algo ->
          let r = Ba_verify.Run.verify_pipeline ~profile ~algo program in
          let errs = Ba_verify.Run.error_count r in
          if (not r.Ba_verify.Run.verified) || errs > 0 then
            QCheck.Test.fail_reportf
              "%s: %sverified, %d error(s)@\n%a"
              (Align.algo_name algo)
              (if r.Ba_verify.Run.verified then "" else "NOT ")
              errs pp_diags
              (Ba_verify.Run.diagnostics r)
          else true)
        algos)

(* The exact branch cost of a whole program's lowered image under [arch]. *)
let program_branch_cost ~arch ~profile program decisions =
  let image = Ba_layout.Image.build ~profile program decisions in
  let total = ref 0.0 in
  Array.iteri
    (fun pid linear ->
      total :=
        !total
        +. Layout_cost.branch_cost ~arch
             ~visits:(fun b -> Ba_cfg.Profile.visits profile pid b)
             ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile pid b)
             linear)
    image.Ba_layout.Image.linears;
  !total

(* §4's qualitative claim, fuzzed: the cost-model-driven heuristic never
   loses to the architecture-oblivious Greedy under the model it optimizes.
   FALLTHROUGH is the model with no direction-guessing noise, so the
   guarantee is exact there. *)
let test_cost_never_worse_than_greedy =
  QCheck.Test.make ~name:"fuzz: Cost prices no worse than Greedy under its model"
    ~count:100 Gen_prog.program_arb (fun program ->
      let arch = Cost_model.Fallthrough in
      let profile = Ba_exec.Engine.profile_program ~max_steps:fuzz_steps program in
      let cost_of algo =
        program_branch_cost ~arch ~profile program
          (Align.align_program algo ~arch profile)
      in
      let greedy = cost_of Align.Greedy in
      let cost = cost_of Align.Cost in
      if cost > greedy +. 1e-6 then
        QCheck.Test.fail_reportf "Cost %.3f > Greedy %.3f" cost greedy
      else true)

(* Same instrument pointed at Tryn: exhaustive-within-group search must not
   lose to Greedy under its own model either. *)
let test_tryn_never_worse_than_greedy =
  QCheck.Test.make ~name:"fuzz: Try5 prices no worse than Greedy under its model"
    ~count:60 Gen_prog.program_arb (fun program ->
      let arch = Cost_model.Fallthrough in
      let profile = Ba_exec.Engine.profile_program ~max_steps:fuzz_steps program in
      let cost_of algo =
        program_branch_cost ~arch ~profile program
          (Align.align_program algo ~arch profile)
      in
      let greedy = cost_of Align.Greedy in
      let tryn = cost_of (Align.Tryn 5) in
      if tryn > greedy +. 1e-6 then
        QCheck.Test.fail_reportf "Try5 %.3f > Greedy %.3f" tryn greedy
      else true)

let suites =
  [
    ( "fuzz.pipeline",
      List.map (QCheck_alcotest.to_alcotest ~long:false)
        [
          test_all_algos_verify;
          test_cost_never_worse_than_greedy;
          test_tryn_never_worse_than_greedy;
        ] );
  ]
