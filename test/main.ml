let () =
  Alcotest.run "branch_alignment"
    (List.concat
       [ Test_util.suites; Test_ir.suites; Test_cfg.suites; Test_layout.suites;
         Test_exec.suites; Test_predict.suites; Test_core.suites; Test_sim.suites;
         Test_workloads.suites; Test_report.suites; Test_isa.suites;
         Test_analysis.suites; Test_verify.suites; Test_obs.suites;
         Test_par.suites; Test_trace.suites; Test_conflict.suites;
         Test_bound.suites; Test_delta.suites; Test_exttsp.suites;
         Test_fuzz.suites; Test_serve.suites ])
