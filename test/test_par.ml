(* Tests for Ba_par: the deterministic Domain pool, the compute-once memo,
   the library's reentrancy under concurrent simulation, and the
   differential guarantee the whole PR rests on — parallel evaluation
   renders byte-identical tables and identical certificate digests. *)

let seq_map f xs = List.map f xs

(* -- Pool ------------------------------------------------------------------- *)

let test_empty () =
  Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty input" [] (Ba_par.Pool.map pool (fun x -> x) []))

let test_single () =
  Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "single task" [ 84 ]
        (Ba_par.Pool.map pool (fun x -> 2 * x) [ 42 ]))

let test_tasks_exceed_domains () =
  let xs = List.init 2000 (fun i -> i) in
  let f x = (x * x) + 1 in
  Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "2000 tasks on 4 jobs keep input order"
        (seq_map f xs) (Ba_par.Pool.map pool f xs))

let test_jobs1_matches () =
  let xs = List.init 100 (fun i -> i) in
  let f x = x * 3 in
  Ba_par.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (list int)) "-j1 sequential path" (seq_map f xs)
        (Ba_par.Pool.map pool f xs))

let test_mapi_and_array () =
  Ba_par.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "mapi sees indexes" [ 10; 21; 32 ]
        (Ba_par.Pool.mapi pool (fun i x -> (10 * x) + i) [ 1; 2; 3 ]);
      Alcotest.(check (array int)) "map_array" [| 2; 4; 6 |]
        (Ba_par.Pool.map_array pool (fun x -> 2 * x) [| 1; 2; 3 |]))

exception Boom of int

let test_exception_propagation () =
  Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
      let f x = if x = 7 || x = 100 then raise (Boom x) else x in
      (* Two tasks raise; the reported exception is the lowest-indexed one —
         exactly what a sequential left-to-right run would surface. *)
      (match Ba_par.Pool.map pool f (List.init 500 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest raising index wins" 7 i);
      (* The pool survives a failed batch. *)
      Alcotest.(check (list int)) "pool reusable after failure" [ 2; 4 ]
        (Ba_par.Pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

let test_reuse () =
  Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 5 do
        let xs = List.init (100 * round) (fun i -> i) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (seq_map (fun x -> x + round) xs)
          (Ba_par.Pool.map pool (fun x -> x + round) xs)
      done)

let test_map_reduce () =
  let xs = List.init 64 (fun i -> i) in
  let f x = Printf.sprintf "%x" x in
  let expected = List.fold_left (fun acc s -> acc ^ s) "" (List.map f xs) in
  Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check string) "non-commutative reduce keeps task order" expected
        (Ba_par.Pool.map_reduce pool ~map:f ~reduce:(fun acc s -> acc ^ s) ~init:"" xs))

let test_stress_result_index_integrity () =
  (* Tasks do wildly different amounts of work, so completion order is
     thoroughly interleaved; every result must still land in its own slot. *)
  let n = 3000 in
  let f i =
    let work = (i * 2654435761) land 1023 in
    let acc = ref i in
    for k = 1 to work do
      acc := (!acc * 31) + k
    done;
    (i, !acc)
  in
  let expected = Array.init n f in
  Ba_par.Pool.with_pool ~jobs:8 (fun pool ->
      let got = Ba_par.Pool.map_array pool f (Array.init n (fun i -> i)) in
      Alcotest.(check bool) "all slots hold their own task's result" true
        (got = expected))

let test_nested_map_runs_inline () =
  Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
      let got =
        Ba_par.Pool.map pool
          (fun x ->
            (* A map issued from inside a task must not deadlock. *)
            Ba_par.Pool.map_reduce pool
              ~map:(fun y -> x * y)
              ~reduce:( + ) ~init:0 [ 1; 2; 3 ])
          (List.init 16 (fun i -> i))
      in
      Alcotest.(check (list int)) "nested totals" (List.init 16 (fun i -> 6 * i)) got)

let test_timed_map () =
  Ba_par.Pool.with_pool ~jobs:2 (fun pool ->
      let results, stats =
        Ba_par.Pool.timed_map pool ~label:"squares"
          ~task_label:string_of_int
          (fun x -> x * x)
          [ 3; 4; 5 ]
      in
      Alcotest.(check (list int)) "results" [ 9; 16; 25 ] results;
      Alcotest.(check int) "task count" 3 (Ba_par.Stats.tasks stats);
      Alcotest.(check (array string)) "labels" [| "3"; "4"; "5" |]
        stats.Ba_par.Stats.task_labels;
      Alcotest.(check bool) "wall time measured" true
        (stats.Ba_par.Stats.wall_seconds >= 0.0);
      Alcotest.(check bool) "speedup finite" true
        (Float.is_finite (Ba_par.Stats.speedup stats));
      (* The JSON surface used by the bench harness. *)
      let contains ~needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
        scan 0
      in
      let json = Ba_util.Json.to_string (Ba_par.Stats.to_json stats) in
      Alcotest.(check bool) "json mentions the label" true
        (contains ~needle:{|"label":"squares"|} json))

let test_default_jobs_env () =
  let saved = Sys.getenv_opt "BA_JOBS" in
  let restore () =
    match saved with
    | Some v -> Unix.putenv "BA_JOBS" v
    | None -> Unix.putenv "BA_JOBS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "BA_JOBS" "3";
      Alcotest.(check int) "BA_JOBS honoured" 3 (Ba_par.Pool.default_jobs ());
      Alcotest.(check bool) "valid env passes check_env" true
        (Ba_par.Pool.check_env () = Ok ());
      Unix.putenv "BA_JOBS" "not-a-number";
      (match Ba_par.Pool.default_jobs () with
      | (_ : int) -> Alcotest.fail "garbage BA_JOBS must be rejected"
      | exception Failure _ -> ());
      Alcotest.(check bool) "garbage fails check_env" true
        (match Ba_par.Pool.check_env () with Error _ -> true | Ok () -> false);
      Unix.putenv "BA_JOBS" "";
      Alcotest.(check bool) "unset env passes check_env" true
        (Ba_par.Pool.check_env () = Ok ()))

(* The CLI-facing parser behind -j and BA_JOBS: positive integers only,
   with an error message that names the offending value. *)
let test_jobs_of_string () =
  List.iter
    (fun (s, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S parses" s)
        true
        (Ba_par.Pool.jobs_of_string s = Ok expected))
    [ ("1", 1); ("4", 4); (" 8 ", 8); ("64", 64) ];
  List.iter
    (fun s ->
      match Ba_par.Pool.jobs_of_string s with
      | Ok n -> Alcotest.fail (Printf.sprintf "%S accepted as %d" s n)
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S rejected with a message" s)
          true
          (String.length msg > 0))
    [ "0"; "-1"; "-3"; "garbage"; ""; "1.5"; "4x" ]

(* -- Memo ------------------------------------------------------------------- *)

let test_memo_computes_once () =
  let memo = Ba_par.Memo.create () in
  let computes = ref 0 in
  let compute () =
    incr computes;
    42
  in
  Alcotest.(check int) "first get computes" 42 (Ba_par.Memo.get memo ~key:"k" compute);
  Alcotest.(check int) "second get shares" 42 (Ba_par.Memo.get memo ~key:"k" compute);
  Alcotest.(check int) "exactly one compute" 1 !computes;
  Alcotest.(check int) "one hit" 1 (Ba_par.Memo.hits memo);
  Alcotest.(check int) "one miss" 1 (Ba_par.Memo.misses memo);
  Alcotest.(check bool) "mem" true (Ba_par.Memo.mem memo "k");
  Alcotest.(check int) "length" 1 (Ba_par.Memo.length memo)

let test_memo_concurrent_single_compute () =
  let memo = Ba_par.Memo.create () in
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    (* Give every other task time to pile up on the pending cell. *)
    Unix.sleepf 0.02;
    "shared"
  in
  Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
      let results =
        Ba_par.Pool.map pool
          (fun _ -> Ba_par.Memo.get memo ~key:"shared-key" compute)
          (List.init 16 (fun i -> i))
      in
      Alcotest.(check (list string)) "all tasks see the one result"
        (List.init 16 (fun _ -> "shared"))
        results);
  Alcotest.(check int) "compute ran exactly once" 1 (Atomic.get computes)

let test_memo_caches_failure () =
  let memo = Ba_par.Memo.create () in
  let computes = ref 0 in
  let compute () =
    incr computes;
    failwith "broken"
  in
  let expect_failure () =
    match Ba_par.Memo.get memo ~key:"bad" compute with
    | (_ : int) -> Alcotest.fail "expected Failure"
    | exception Failure m -> Alcotest.(check string) "message" "broken" m
  in
  expect_failure ();
  expect_failure ();
  Alcotest.(check int) "failing compute also runs once" 1 !computes

let test_memo_clear () =
  let memo = Ba_par.Memo.create () in
  let computes = ref 0 in
  let compute () = incr computes; !computes in
  ignore (Ba_par.Memo.get memo ~key:"k" compute : int);
  Ba_par.Memo.clear memo;
  Alcotest.(check int) "recomputes after clear" 2 (Ba_par.Memo.get memo ~key:"k" compute);
  Alcotest.(check int) "counters reset" 1 (Ba_par.Memo.misses memo)

(* -- Reentrancy: concurrent simulation ------------------------------------- *)

let sim_archs =
  [
    Ba_sim.Bep.Static_fallthrough;
    Ba_sim.Bep.Static_btfnt;
    Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 };
    Ba_sim.Bep.Btb_arch { entries = 64; assoc = 2 };
  ]

let sim_fingerprint (out : Ba_sim.Runner.outcome) =
  ( out.Ba_sim.Runner.result.Ba_exec.Engine.insns,
    out.Ba_sim.Runner.result.Ba_exec.Engine.steps,
    out.Ba_sim.Runner.result.Ba_exec.Engine.branches,
    Array.to_list
      (Array.map
         (fun (_, sim) ->
           let c = Ba_sim.Bep.counts sim in
           (Ba_sim.Bep.bep sim, c.Ba_sim.Bep.misfetches, c.Ba_sim.Bep.mispredicts))
         out.Ba_sim.Runner.sims) )

let test_concurrent_simulation_matches_sequential () =
  (* Two domains simulate the same image object at once; if any simulator,
     predictor or interpreter state were shared at toplevel, the counters
     would diverge from the sequential run. *)
  let w = Option.get (Ba_workloads.Spec.by_name "compress") in
  let program = w.Ba_workloads.Spec.build () in
  let image = Ba_layout.Image.original program in
  let run () = sim_fingerprint (Ba_sim.Runner.simulate ~max_steps:20_000 ~archs:sim_archs image) in
  let sequential = run () in
  Alcotest.(check bool) "sequential runs are bit-identical" true (run () = sequential);
  let d1 = Domain.spawn run and d2 = Domain.spawn run in
  let c1 = Domain.join d1 and c2 = Domain.join d2 in
  Alcotest.(check bool) "concurrent run 1 matches sequential" true (c1 = sequential);
  Alcotest.(check bool) "concurrent run 2 matches sequential" true (c2 = sequential)

(* -- Differential determinism: tables and digests --------------------------- *)

let diff_workloads () =
  List.filter_map Ba_workloads.Spec.by_name
    [ "alvinn"; "swm256"; "compress"; "espresso"; "gcc"; "groff" ]

let diff_steps = 20_000

let test_tables_byte_identical () =
  let ws = diff_workloads () in
  Alcotest.(check int) "six workloads selected" 6 (List.length ws);
  let seq = Ba_report.Harness.evaluate_suite ~max_steps:diff_steps ~jobs:1 ws in
  let par = Ba_report.Harness.evaluate_suite ~max_steps:diff_steps ~jobs:4 ws in
  Alcotest.(check string) "table2 byte-identical under -j4"
    (Ba_report.Tables.table2 seq) (Ba_report.Tables.table2 par);
  Alcotest.(check string) "table3 byte-identical under -j4"
    (Ba_report.Tables.table3 seq) (Ba_report.Tables.table3 par);
  Alcotest.(check string) "fig4 byte-identical under -j4"
    (Ba_report.Tables.fig4 seq) (Ba_report.Tables.fig4 par)

let digests_of result =
  List.map
    (fun c -> (c.Ba_verify.Certificate.arch, c.Ba_verify.Certificate.digest))
    result.Ba_verify.Run.certificates

(* The process-wide Profiled memo may already hold these workloads from
   earlier suites, which would turn every [get] below into a hit and leave
   the memo's cold path (miss -> compute -> Pending await) untested.
   Clearing first makes the cold path run deterministically regardless of
   test order. *)
let test_profiled_cold_path () =
  let w = Option.get (Ba_workloads.Spec.by_name "compress") in
  Ba_workloads.Profiled.clear ();
  let results =
    Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
        Ba_par.Pool.map pool
          (fun _ -> Ba_workloads.Profiled.get ~max_steps:diff_steps w)
          (List.init 8 (fun i -> i)))
  in
  let hits, misses = Ba_workloads.Profiled.stats () in
  Alcotest.(check int) "one cold compute for the shared key" 1 misses;
  Alcotest.(check int) "every other task awaited the pending cell" 7 hits;
  (match results with
  | (program, profile) :: rest ->
    Alcotest.(check bool) "all tasks share one program instance" true
      (List.for_all (fun (p, _) -> p == program) rest);
    Alcotest.(check bool) "all tasks share one profile instance" true
      (List.for_all (fun (_, pr) -> pr == profile) rest)
  | [] -> Alcotest.fail "no results");
  Ba_workloads.Profiled.clear ();
  ignore (Ba_workloads.Profiled.get ~max_steps:diff_steps w);
  let _, misses = Ba_workloads.Profiled.stats () in
  Alcotest.(check int) "clear forces a recompute" 1 misses

let test_certificate_digests_identical () =
  let ws = diff_workloads () in
  let algo = Ba_core.Align.Tryn 15 in
  Ba_workloads.Profiled.clear ();
  let verify ?pool (w : Ba_workloads.Spec.t) =
    let program, profile = Ba_workloads.Profiled.get ~max_steps:diff_steps w in
    (w.Ba_workloads.Spec.name, digests_of (Ba_verify.Run.verify_pipeline ?pool ~profile ~algo program))
  in
  let sequential = List.map (fun w -> verify w) ws in
  let _, misses = Ba_workloads.Profiled.stats () in
  Alcotest.(check int) "sequential round profiled every workload cold"
    (List.length ws) misses;
  (* Outer parallelism: workloads verified on 4 domains. *)
  let outer =
    Ba_par.Pool.with_pool ~jobs:4 (fun pool ->
        Ba_par.Pool.map pool (fun w -> verify w) ws)
  in
  (* Inner parallelism: one workload at a time, architectures certified on
     4 domains. *)
  let inner =
    Ba_par.Pool.with_pool ~jobs:4 (fun pool -> List.map (fun w -> verify ~pool w) ws)
  in
  Alcotest.(check bool) "digests unchanged under workload-parallel run" true
    (outer = sequential);
  Alcotest.(check bool) "digests unchanged under arch-parallel run" true
    (inner = sequential);
  List.iter
    (fun (name, digests) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: one certificate per architecture" name)
        (List.length Ba_core.Cost_model.all_arches)
        (List.length digests))
    sequential

(* The ISSUE's acceptance bar for the observability layer: the full metrics
   document — every decision counter, predictor counter, histogram and span
   count — is byte-identical whatever the pool width.  The Profiled memo is
   cleared before each run so both start from the same cold state. *)
let test_metrics_json_byte_identical () =
  let collect jobs =
    Ba_workloads.Profiled.clear ();
    let r = Ba_obs.Registry.create () in
    Ba_obs.Registry.with_registry r (fun () ->
        ignore
          (Ba_report.Harness.evaluate_suite ~max_steps:diff_steps ~jobs
             (diff_workloads ())
            : Ba_report.Harness.eval list));
    (r, Ba_util.Json.to_string (Ba_obs.Sink.to_json r))
  in
  let r1, j1 = collect 1 in
  let _, j4 = collect 4 in
  Alcotest.(check string) "metrics JSON byte-identical -j1 vs -j4" j1 j4;
  (* Sanity: the document is not vacuous — the alignment decision counters,
     predictor counters and simulator penalty counters all fired. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " collected") true
        (Ba_obs.Registry.counter_value r1 name > 0))
    [
      "core.align.greedy.link"; "core.align.tryn.link"; "exec.engine.runs";
      "predict.pht.lookup"; "predict.ras.push"; "sim.bep.misfetch_cycles";
      "sim.bep.mispredict_cycles"; "lru.profiled.miss"; "par.pool.batch";
    ]

let test_evaluate_suite_timed () =
  let ws = diff_workloads () in
  let evals, stats =
    Ba_report.Harness.evaluate_suite_timed ~max_steps:diff_steps ~jobs:2 ws
  in
  Alcotest.(check int) "one eval per workload" (List.length ws) (List.length evals);
  Alcotest.(check (array string)) "tasks labelled by workload"
    (Array.of_list (List.map (fun (w : Ba_workloads.Spec.t) -> w.Ba_workloads.Spec.name) ws))
    stats.Ba_par.Stats.task_labels

let suites =
  [
    ( "par.pool",
      [
        Alcotest.test_case "empty input" `Quick test_empty;
        Alcotest.test_case "single task" `Quick test_single;
        Alcotest.test_case "tasks exceed domains" `Quick test_tasks_exceed_domains;
        Alcotest.test_case "-j1 sequential path" `Quick test_jobs1_matches;
        Alcotest.test_case "mapi and map_array" `Quick test_mapi_and_array;
        Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        Alcotest.test_case "pool reuse" `Quick test_reuse;
        Alcotest.test_case "deterministic map_reduce" `Quick test_map_reduce;
        Alcotest.test_case "stress: result-index integrity" `Quick
          test_stress_result_index_integrity;
        Alcotest.test_case "nested map runs inline" `Quick test_nested_map_runs_inline;
        Alcotest.test_case "timed map stats" `Quick test_timed_map;
        Alcotest.test_case "BA_JOBS default" `Quick test_default_jobs_env;
        Alcotest.test_case "jobs_of_string validation" `Quick test_jobs_of_string;
      ] );
    ( "par.memo",
      [
        Alcotest.test_case "computes once" `Quick test_memo_computes_once;
        Alcotest.test_case "concurrent gets share one compute" `Quick
          test_memo_concurrent_single_compute;
        Alcotest.test_case "failure cached" `Quick test_memo_caches_failure;
        Alcotest.test_case "clear" `Quick test_memo_clear;
        Alcotest.test_case "profiled memo cold path" `Slow test_profiled_cold_path;
      ] );
    ( "par.reentrancy",
      [
        Alcotest.test_case "concurrent simulation matches sequential" `Quick
          test_concurrent_simulation_matches_sequential;
      ] );
    ( "par.determinism",
      [
        Alcotest.test_case "tables byte-identical -j1 vs -j4" `Slow
          test_tables_byte_identical;
        Alcotest.test_case "certificate digests identical" `Slow
          test_certificate_digests_identical;
        Alcotest.test_case "metrics JSON byte-identical -j1 vs -j4" `Slow
          test_metrics_json_byte_identical;
        Alcotest.test_case "timed suite evaluation" `Slow test_evaluate_suite_timed;
      ] );
  ]
