(* Tests for Ba_predict: counters, static rules, PHTs, BTB, return stack,
   Alpha history bits, likely bits. *)

open Ba_predict

(* -- Counter2 ---------------------------------------------------------- *)

let test_counter_saturation () =
  let c = ref Counter2.initial in
  for _ = 1 to 10 do
    c := Counter2.update !c ~taken:true
  done;
  Alcotest.(check bool) "predicts taken" true (Counter2.predict !c);
  Alcotest.(check int) "saturates at 3" 3 (!c :> int);
  for _ = 1 to 10 do
    c := Counter2.update !c ~taken:false
  done;
  Alcotest.(check bool) "predicts not-taken" false (Counter2.predict !c);
  Alcotest.(check int) "saturates at 0" 0 (!c :> int)

let test_counter_hysteresis () =
  (* From strongly taken, a single not-taken must not flip the prediction. *)
  let c = Counter2.update Counter2.strongly_taken ~taken:false in
  Alcotest.(check bool) "still predicts taken" true (Counter2.predict c)

let test_counter_initial_not_taken () =
  Alcotest.(check bool) "cold counter predicts fall-through" false
    (Counter2.predict Counter2.initial)

(* -- Static_rule --------------------------------------------------------- *)

let test_static_rules () =
  let p rule ~pc ~tt = Static_rule.predict_taken rule ~pc ~taken_target:tt in
  Alcotest.(check bool) "fallthrough never taken" false
    (p Static_rule.Fallthrough ~pc:100 ~tt:50);
  Alcotest.(check bool) "btfnt backward taken" true (p Static_rule.Btfnt ~pc:100 ~tt:50);
  Alcotest.(check bool) "btfnt forward not taken" false (p Static_rule.Btfnt ~pc:100 ~tt:150);
  Alcotest.(check bool) "btfnt self counts backward" true (p Static_rule.Btfnt ~pc:100 ~tt:100);
  let likely = Static_rule.Likely (fun pc -> pc = 42) in
  Alcotest.(check bool) "likely hint true" true (p likely ~pc:42 ~tt:0);
  Alcotest.(check bool) "likely hint false" false (p likely ~pc:43 ~tt:0)

(* -- Pht ------------------------------------------------------------------ *)

let test_pht_learns_bias () =
  let pht = Pht.create_direct ~entries:16 in
  for _ = 1 to 4 do
    Pht.update pht ~pc:5 ~taken:true
  done;
  Alcotest.(check bool) "learned taken" true (Pht.predict pht ~pc:5);
  Alcotest.(check bool) "other entry unaffected" false (Pht.predict pht ~pc:6)

let test_pht_aliasing () =
  (* pc 5 and pc 21 collide in a 16-entry direct-mapped table. *)
  let pht = Pht.create_direct ~entries:16 in
  for _ = 1 to 4 do
    Pht.update pht ~pc:5 ~taken:true
  done;
  Alcotest.(check bool) "aliased entry shares state" true (Pht.predict pht ~pc:21)

let test_pht_rejects_bad_sizes () =
  Alcotest.(check bool) "non power of two raises" true
    (try
       ignore (Pht.create_direct ~entries:12);
       false
     with Invalid_argument _ -> true)

let test_gshare_learns_alternation () =
  (* A strictly alternating branch defeats a per-address 2-bit counter but
     is perfectly predictable from 1 bit of global history. *)
  let run pht =
    let correct = ref 0 in
    let n = 1000 in
    for i = 1 to n do
      let taken = i mod 2 = 0 in
      if Pht.predict pht ~pc:77 = taken then incr correct;
      Pht.update pht ~pc:77 ~taken
    done;
    float_of_int !correct /. 1000.0
  in
  let gshare_acc = run (Pht.create_gshare ~entries:256 ~history_bits:8) in
  let direct_acc = run (Pht.create_direct ~entries:256) in
  Alcotest.(check bool)
    (Printf.sprintf "gshare (%.2f) beats direct (%.2f) on alternation" gshare_acc direct_acc)
    true
    (gshare_acc > 0.95 && direct_acc < 0.7)

let test_gshare_history_masking () =
  let pht = Pht.create_gshare ~entries:16 ~history_bits:4 in
  (* Just exercise update/predict through enough history wrap-arounds. *)
  for i = 0 to 100 do
    ignore (Pht.predict pht ~pc:i);
    Pht.update pht ~pc:i ~taken:(i mod 3 = 0)
  done;
  Alcotest.(check int) "entries" 16 (Pht.entries pht)

(* -- Two_level --------------------------------------------------------------- *)

let test_local_learns_loop_pattern () =
  (* A branch with a fixed period-4 pattern (three taken, one not) is
     perfectly predictable from 3+ bits of its own history, even when an
     unrelated noisy branch interleaves with it. *)
  let two = Two_level.create_local ~history_bits:4 ~branch_entries:64 () in
  let noise = Ba_util.Rng.create 7 in
  let correct = ref 0 in
  let n = 2000 in
  for i = 1 to n do
    let taken = i mod 4 <> 0 in
    if Two_level.predict two ~pc:5 = taken then incr correct;
    Two_level.update two ~pc:5 ~taken;
    (* Interleaved random branch at another address. *)
    Two_level.update two ~pc:9 ~taken:(Ba_util.Rng.bool noise)
  done;
  let accuracy = float_of_int !correct /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "local accuracy %.2f on period-4 pattern" accuracy)
    true (accuracy > 0.95)

let test_global_learns_global_pattern () =
  (* With a single branch, global history equals local history: a strict
     alternation is learned perfectly. *)
  let two = Two_level.create_global ~history_bits:4 () in
  let correct = ref 0 in
  for i = 1 to 1000 do
    let taken = i mod 2 = 0 in
    if Two_level.predict two ~pc:0 = taken then incr correct;
    Two_level.update two ~pc:0 ~taken
  done;
  Alcotest.(check bool) "global learns alternation" true (!correct > 950)

let test_global_ignores_address () =
  (* Pan et al.'s degenerate scheme uses no branch address: two branches
     with the same history index the same counter. *)
  let two = Two_level.create_global ~history_bits:4 () in
  for _ = 1 to 8 do
    Two_level.update two ~pc:100 ~taken:true
  done;
  Alcotest.(check bool) "prediction shared across addresses" true
    (Two_level.predict two ~pc:100 = Two_level.predict two ~pc:999)

let test_two_level_names () =
  Alcotest.(check string) "global" "global-2level-16"
    (Two_level.name (Two_level.create_global ~history_bits:4 ()));
  Alcotest.(check string) "local" "local-2level-16"
    (Two_level.name (Two_level.create_local ~history_bits:4 ~branch_entries:8 ()))

let test_two_level_validation () =
  Alcotest.(check bool) "bad bits" true
    (try ignore (Two_level.create_global ~history_bits:0 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad entries" true
    (try ignore (Two_level.create_local ~branch_entries:12 ()); false
     with Invalid_argument _ -> true)

(* -- Btb ------------------------------------------------------------------- *)

let test_btb_miss_then_hit () =
  let btb = Btb.create ~entries:64 ~assoc:2 in
  (match Btb.lookup btb ~pc:100 with
  | Btb.Miss -> ()
  | Btb.Hit _ -> Alcotest.fail "cold BTB should miss");
  Btb.update btb ~pc:100 ~taken:true ~target:200;
  match Btb.lookup btb ~pc:100 with
  | Btb.Hit { target; predict_taken } ->
    Alcotest.(check int) "stored target" 200 target;
    Alcotest.(check bool) "allocated strongly taken" true predict_taken
  | Btb.Miss -> Alcotest.fail "should hit after taken update"

let test_btb_not_taken_never_allocates () =
  let btb = Btb.create ~entries:64 ~assoc:2 in
  Btb.update btb ~pc:100 ~taken:false ~target:200;
  (match Btb.lookup btb ~pc:100 with
  | Btb.Miss -> ()
  | Btb.Hit _ -> Alcotest.fail "not-taken branches must not be stored");
  Alcotest.(check int) "empty" 0 (Btb.occupancy btb)

let test_btb_counter_training () =
  let btb = Btb.create ~entries:64 ~assoc:2 in
  Btb.update btb ~pc:100 ~taken:true ~target:200;
  (* Two not-taken updates drive the 2-bit counter below the threshold. *)
  Btb.update btb ~pc:100 ~taken:false ~target:200;
  Btb.update btb ~pc:100 ~taken:false ~target:200;
  match Btb.lookup btb ~pc:100 with
  | Btb.Hit { predict_taken; _ } ->
    Alcotest.(check bool) "counter trained down" false predict_taken
  | Btb.Miss -> Alcotest.fail "entry should survive"

let test_btb_lru_eviction () =
  (* 2-way set: three distinct taken branches mapping to the same set evict
     the least recently used. *)
  let btb = Btb.create ~entries:8 ~assoc:2 in
  (* set index = pc mod 4; pcs 4, 8, 12 share set 0. *)
  Btb.update btb ~pc:4 ~taken:true ~target:1;
  Btb.update btb ~pc:8 ~taken:true ~target:2;
  Btb.update btb ~pc:4 ~taken:true ~target:1;
  (* refresh 4 *)
  Btb.update btb ~pc:12 ~taken:true ~target:3;
  (* evicts 8 *)
  (match Btb.lookup btb ~pc:8 with
  | Btb.Miss -> ()
  | Btb.Hit _ -> Alcotest.fail "LRU entry should be evicted");
  match Btb.lookup btb ~pc:4 with
  | Btb.Hit _ -> ()
  | Btb.Miss -> Alcotest.fail "recently used entry should survive"

let test_btb_target_update () =
  let btb = Btb.create ~entries:8 ~assoc:2 in
  Btb.update btb ~pc:4 ~taken:true ~target:1;
  Btb.update btb ~pc:4 ~taken:true ~target:9;
  match Btb.lookup btb ~pc:4 with
  | Btb.Hit { target; _ } -> Alcotest.(check int) "latest target" 9 target
  | Btb.Miss -> Alcotest.fail "should hit"

let test_btb_bad_geometry () =
  Alcotest.(check bool) "entries % assoc" true
    (try
       ignore (Btb.create ~entries:10 ~assoc:4);
       false
     with Invalid_argument _ -> true)

(* -- Return_stack ------------------------------------------------------- *)

let test_ras_lifo () =
  let ras = Return_stack.create ~depth:4 in
  Return_stack.push ras 1;
  Return_stack.push ras 2;
  Alcotest.(check (option int)) "pop 2" (Some 2) (Return_stack.pop ras);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Return_stack.pop ras);
  Alcotest.(check (option int)) "empty" None (Return_stack.pop ras)

let test_ras_overflow_wraps () =
  let ras = Return_stack.create ~depth:2 in
  Return_stack.push ras 1;
  Return_stack.push ras 2;
  Return_stack.push ras 3;
  (* overwrites 1 *)
  Alcotest.(check (option int)) "pop 3" (Some 3) (Return_stack.pop ras);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Return_stack.pop ras);
  Alcotest.(check (option int)) "oldest lost" None (Return_stack.pop ras)

(* -- Alpha_bits ------------------------------------------------------------ *)

let test_alpha_bits_cold_btfnt () =
  let bits = Alpha_bits.create () in
  Alcotest.(check bool) "cold backward predicted taken" true
    (Alpha_bits.predict bits ~pc:100 ~taken_target:50);
  Alcotest.(check bool) "cold forward predicted not-taken" false
    (Alpha_bits.predict bits ~pc:100 ~taken_target:150)

let test_alpha_bits_history () =
  let bits = Alpha_bits.create () in
  Alpha_bits.update bits ~pc:100 ~taken:false;
  Alcotest.(check bool) "bit overrides BT/FNT" false
    (Alpha_bits.predict bits ~pc:100 ~taken_target:50)

let test_alpha_bits_eviction_resets () =
  let bits = Alpha_bits.create ~lines:4 ~insns_per_line:8 () in
  Alpha_bits.update bits ~pc:0 ~taken:false;
  (* pc 32 maps to the same line (4 lines x 8 insns = 32-instruction wrap). *)
  Alpha_bits.update bits ~pc:32 ~taken:true;
  Alcotest.(check bool) "evicted bit falls back to BT/FNT" true
    (Alpha_bits.predict bits ~pc:0 ~taken_target:0)

(* -- Icache ----------------------------------------------------------------- *)

let test_icache_miss_then_hit () =
  let c = Icache.create ~lines:4 ~insns_per_line:8 () in
  Alcotest.(check int) "cold miss" 1 (Icache.touch_range c ~addr:0 ~size:4);
  Alcotest.(check int) "now hot" 0 (Icache.touch_range c ~addr:4 ~size:4);
  Alcotest.(check int) "misses" 1 (Icache.misses c)

let test_icache_range_spans_lines () =
  let c = Icache.create ~lines:4 ~insns_per_line:8 () in
  (* 20 instructions starting at 4 touch lines 0, 1 and 2. *)
  Alcotest.(check int) "three cold lines" 3 (Icache.touch_range c ~addr:4 ~size:20);
  Alcotest.(check int) "accesses" 3 (Icache.accesses c)

let test_icache_capacity_eviction () =
  let c = Icache.create ~lines:2 ~insns_per_line:8 () in
  ignore (Icache.touch_range c ~addr:0 ~size:1);
  (* line 0 -> set 0 *)
  ignore (Icache.touch_range c ~addr:16 ~size:1);
  (* line 2 -> set 0: evicts line 0 (direct-mapped) *)
  Alcotest.(check int) "line 0 evicted" 1 (Icache.touch_range c ~addr:0 ~size:1)

let test_icache_associativity_helps () =
  let run assoc =
    let c = Icache.create ~lines:4 ~insns_per_line:8 ~assoc () in
    (* Two lines aliasing to the same direct-mapped set, touched
       alternately. *)
    for _ = 1 to 10 do
      ignore (Icache.touch_range c ~addr:0 ~size:1);
      ignore (Icache.touch_range c ~addr:32 ~size:1)
    done;
    Icache.misses c
  in
  let direct = run 1 and two_way = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "2-way (%d) beats direct (%d) on ping-pong" two_way direct)
    true
    (two_way = 2 && direct = 20)

let test_icache_dense_beats_sparse () =
  (* The alignment argument in miniature: the same 16 hot instructions
     packed contiguously occupy 2 lines; spread across 8 blocks at 16-insn
     strides they occupy 8 lines and no longer fit a 4-line cache. *)
  let dense = Icache.create ~lines:4 ~insns_per_line:8 () in
  let sparse = Icache.create ~lines:4 ~insns_per_line:8 () in
  for _ = 1 to 50 do
    ignore (Icache.touch_range dense ~addr:0 ~size:16);
    for b = 0 to 7 do
      ignore (Icache.touch_range sparse ~addr:(b * 16) ~size:2)
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "dense misses (%d) << sparse misses (%d)" (Icache.misses dense)
       (Icache.misses sparse))
    true
    (Icache.misses dense = 2 && Icache.misses sparse > 100)

(* -- Likely_bits ---------------------------------------------------------- *)

let test_likely_bits () =
  let open Ba_ir in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1
          (Term.Cond { on_true = 1; on_false = 2; behavior = Behavior.Loop 5 });
        Block.make ~insns:1 (Term.Jump 0);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let prog = Program.make ~name:"likely" ~seed:1 [| main |] in
  let profile = Ba_exec.Engine.profile_program prog in
  let image = Ba_layout.Image.original prog in
  let bits = Likely_bits.build image profile in
  Alcotest.(check int) "one conditional" 1 (Likely_bits.count bits);
  (* Original layout: on_true (the majority outcome) is the fall-through, so
     the branch is likely NOT taken. *)
  let pc = Ba_layout.Linear.branch_pc (Ba_layout.Image.lblock image 0 0) in
  Alcotest.(check bool) "hint not taken" false (Likely_bits.hint bits pc);
  (* A layout that flips the sense flips the hint. *)
  let image2 =
    Ba_layout.Image.build ~profile prog [| Ba_layout.Decision.of_order [| 0; 2; 1 |] |]
  in
  let bits2 = Likely_bits.build image2 profile in
  let pc2 = Ba_layout.Linear.branch_pc (Ba_layout.Image.lblock image2 0 0) in
  Alcotest.(check bool) "flipped hint taken" true (Likely_bits.hint bits2 pc2)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"counter stays in [0,3]" ~count:300 (list bool) (fun updates ->
        let c =
          List.fold_left (fun c taken -> Counter2.update c ~taken) Counter2.initial updates
        in
        (c :> int) >= 0 && (c :> int) <= 3);
    Test.make ~name:"RAS never exceeds depth" ~count:200
      (pair (int_range 1 8) (list small_nat))
      (fun (depth, pushes) ->
        let ras = Return_stack.create ~depth in
        List.iter (Return_stack.push ras) pushes;
        Return_stack.occupancy ras <= depth);
    Test.make ~name:"BTB occupancy bounded by entries" ~count:100
      (list (pair small_nat bool))
      (fun updates ->
        let btb = Btb.create ~entries:16 ~assoc:4 in
        List.iter (fun (pc, taken) -> Btb.update btb ~pc ~taken ~target:(pc + 1)) updates;
        Btb.occupancy btb <= 16);
  ]

(* -- Edge cases pinned through Ba_obs counters ------------------------------
   These scenarios re-drive the structures' corner branches (saturation
   rails, circular-stack wraparound, set-conflict eviction, index aliasing)
   and assert the exact event counts the instrumentation records, so both
   the predictor semantics and the metric names/semantics are pinned. *)

let counted f =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r f;
  fun name -> Ba_obs.Registry.counter_value r name

let test_obs_counter2_saturation_rails () =
  let read =
    counted (fun () ->
        let c = ref Ba_predict.Counter2.initial in
        (* initial = 1: two updates climb to 3, the next 8 saturate high *)
        for _ = 1 to 10 do
          c := Ba_predict.Counter2.update !c ~taken:true
        done;
        (* three updates descend to 0, the next 7 saturate low *)
        for _ = 1 to 10 do
          c := Ba_predict.Counter2.update !c ~taken:false
        done)
  in
  Alcotest.(check int) "high rail" 8 (read "predict.counter2.sat_hi");
  Alcotest.(check int) "low rail" 7 (read "predict.counter2.sat_lo")

let test_obs_ras_overflow_underflow () =
  let popped = ref [] in
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      let s = Ba_predict.Return_stack.create ~depth:2 in
      Ba_predict.Return_stack.push s 10;
      Ba_predict.Return_stack.push s 20;
      Ba_predict.Return_stack.push s 30;
      (* overflow: wraps, overwriting 10 *)
      for _ = 1 to 3 do
        popped := Ba_predict.Return_stack.pop s :: !popped
      done);
  let read = Ba_obs.Registry.counter_value r in
  Alcotest.(check (list (option int)))
    "wraparound pops newest two, then underflows"
    [ Some 30; Some 20; None ] (List.rev !popped);
  Alcotest.(check int) "pushes" 3 (read "predict.ras.push");
  Alcotest.(check int) "one overflow" 1 (read "predict.ras.overflow");
  Alcotest.(check int) "pops" 3 (read "predict.ras.pop");
  Alcotest.(check int) "one underflow" 1 (read "predict.ras.underflow");
  match Ba_obs.Registry.histogram_snapshot r "predict.ras.depth" with
  | Some h ->
    (* occupancies after each push: 1, 2, 2 *)
    Alcotest.(check int) "depth observations" 3 h.Ba_obs.Registry.total;
    Alcotest.(check int) "depth max is the stack depth" 2 h.Ba_obs.Registry.max_value
  | None -> Alcotest.fail "predict.ras.depth histogram missing"

let test_obs_btb_set_conflict_eviction () =
  let read =
    counted (fun () ->
        let btb = Ba_predict.Btb.create ~entries:2 ~assoc:2 in
        (* one 2-way set: fill it, re-touch the first entry so the second
           becomes LRU, then allocate a third taken branch *)
        Ba_predict.Btb.update btb ~pc:0x10 ~taken:true ~target:1;
        Ba_predict.Btb.update btb ~pc:0x20 ~taken:true ~target:2;
        Ba_predict.Btb.update btb ~pc:0x10 ~taken:true ~target:1;
        Ba_predict.Btb.update btb ~pc:0x30 ~taken:true ~target:3;
        let expect pc hit =
          Alcotest.(check bool)
            (Printf.sprintf "pc %#x %s" pc (if hit then "survives" else "evicted"))
            hit
            (match Ba_predict.Btb.lookup btb ~pc with
            | Ba_predict.Btb.Hit _ -> true
            | Ba_predict.Btb.Miss -> false)
        in
        expect 0x10 true;
        expect 0x20 false;
        expect 0x30 true)
  in
  Alcotest.(check int) "allocations" 3 (read "predict.btb.alloc");
  Alcotest.(check int) "the LRU victim is evicted once" 1 (read "predict.btb.evict");
  Alcotest.(check int) "verification lookups" 3 (read "predict.btb.lookup");
  Alcotest.(check int) "hits" 2 (read "predict.btb.hit");
  Alcotest.(check int) "misses" 1 (read "predict.btb.miss")

let test_obs_pht_alias_counter () =
  let read =
    counted (fun () ->
        let pht = Ba_predict.Pht.create_direct ~entries:16 in
        (* pc 5 trains the slot; pc 21 = 5 + 16 maps to the same index *)
        Ba_predict.Pht.update pht ~pc:5 ~taken:true;
        Ba_predict.Pht.update pht ~pc:5 ~taken:true;
        Ba_predict.Pht.update pht ~pc:21 ~taken:false;
        Ba_predict.Pht.update pht ~pc:5 ~taken:true;
        ignore (Ba_predict.Pht.predict pht ~pc:5 : bool))
  in
  Alcotest.(check int) "one lookup" 1 (read "predict.pht.lookup");
  (* updates where the trained direction already agreed: the second and
     fourth (counter >= 2 predicts taken); the not-taken interloper and the
     cold first update disagree *)
  Alcotest.(check int) "agreeing updates" 2 (read "predict.pht.hit");
  (* a different pc touching an owned slot: 21 after 5, then 5 after 21 *)
  Alcotest.(check int) "alias transitions" 2 (read "predict.pht.alias")

let suites =
  [
    ( "predict.counter2",
      [
        Alcotest.test_case "saturation" `Quick test_counter_saturation;
        Alcotest.test_case "hysteresis" `Quick test_counter_hysteresis;
        Alcotest.test_case "initial" `Quick test_counter_initial_not_taken;
      ] );
    ("predict.static", [ Alcotest.test_case "rules" `Quick test_static_rules ]);
    ( "predict.pht",
      [
        Alcotest.test_case "learns bias" `Quick test_pht_learns_bias;
        Alcotest.test_case "aliasing" `Quick test_pht_aliasing;
        Alcotest.test_case "bad sizes" `Quick test_pht_rejects_bad_sizes;
        Alcotest.test_case "gshare alternation" `Quick test_gshare_learns_alternation;
        Alcotest.test_case "gshare masking" `Quick test_gshare_history_masking;
      ] );
    ( "predict.two_level",
      [
        Alcotest.test_case "local learns pattern" `Quick test_local_learns_loop_pattern;
        Alcotest.test_case "global learns pattern" `Quick test_global_learns_global_pattern;
        Alcotest.test_case "global ignores address" `Quick test_global_ignores_address;
        Alcotest.test_case "names" `Quick test_two_level_names;
        Alcotest.test_case "validation" `Quick test_two_level_validation;
      ] );
    ( "predict.btb",
      [
        Alcotest.test_case "miss then hit" `Quick test_btb_miss_then_hit;
        Alcotest.test_case "not-taken no alloc" `Quick test_btb_not_taken_never_allocates;
        Alcotest.test_case "counter training" `Quick test_btb_counter_training;
        Alcotest.test_case "LRU eviction" `Quick test_btb_lru_eviction;
        Alcotest.test_case "target update" `Quick test_btb_target_update;
        Alcotest.test_case "bad geometry" `Quick test_btb_bad_geometry;
      ] );
    ( "predict.return_stack",
      [
        Alcotest.test_case "LIFO" `Quick test_ras_lifo;
        Alcotest.test_case "overflow wraps" `Quick test_ras_overflow_wraps;
      ] );
    ( "predict.alpha_bits",
      [
        Alcotest.test_case "cold BT/FNT" `Quick test_alpha_bits_cold_btfnt;
        Alcotest.test_case "history bit" `Quick test_alpha_bits_history;
        Alcotest.test_case "eviction resets" `Quick test_alpha_bits_eviction_resets;
      ] );
    ( "predict.icache",
      [
        Alcotest.test_case "miss then hit" `Quick test_icache_miss_then_hit;
        Alcotest.test_case "range spans lines" `Quick test_icache_range_spans_lines;
        Alcotest.test_case "capacity eviction" `Quick test_icache_capacity_eviction;
        Alcotest.test_case "associativity" `Quick test_icache_associativity_helps;
        Alcotest.test_case "dense beats sparse" `Quick test_icache_dense_beats_sparse;
      ] );
    ("predict.likely_bits", [ Alcotest.test_case "hints" `Quick test_likely_bits ]);
    ("predict.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
