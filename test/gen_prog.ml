(* QCheck generators for random (but always valid) programs, layouts and
   related data, shared by the layout/exec/align test modules.

   Construction keeps every block reachable by always including block [i+1]
   among block [i]'s successors; diversity comes from the second conditional
   target, switch fan-out, and call structure. *)

open Ba_ir

let behavior_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun b -> Behavior.Always b) bool;
      map (fun p -> Behavior.Bias p) (float_bound_inclusive 1.0);
      map (fun n -> Behavior.Loop n) (int_range 1 32);
      map (fun l -> Behavior.Pattern (Array.of_list l)) (list_size (int_range 1 8) bool);
      map2
        (fun p q -> Behavior.Markov { p_stay_true = p; p_stay_false = q; init = false })
        (float_bound_inclusive 1.0) (float_bound_inclusive 1.0);
    ]

(* A procedure with [n] blocks; [is_main] picks Halt vs Ret for the final
   block; [n_procs] bounds callee ids (procedures only call higher ids, so
   the random call graph cannot recurse unboundedly by accident). *)
let proc_gen ~self ~n_procs ~is_main n =
  let open QCheck.Gen in
  let block_gen i st =
    let insns = int_range 1 10 st in
    let other ~not_ =
      (* A random block distinct from [not_]. *)
      let rec draw () =
        let b = int_range 0 (n - 1) st in
        if b = not_ then draw () else b
      in
      draw ()
    in
    let term =
      if i = n - 1 then if is_main then Term.Halt else Term.Ret
      else
        match int_range 0 9 st with
        | 0 | 1 -> Term.Jump (i + 1)
        | 2 | 3 | 4 | 5 ->
          let on_false = other ~not_:(i + 1) in
          let behavior = behavior_gen st in
          if bool st then Term.Cond { on_true = i + 1; on_false; behavior }
          else Term.Cond { on_true = on_false; on_false = i + 1; behavior }
        | 6 ->
          let extra = int_range 0 2 st in
          let targets =
            Array.init (extra + 1) (fun k ->
                ((if k = 0 then i + 1 else int_range 0 (n - 1) st), 1.0 +. float_bound_inclusive 3.0 st))
          in
          Term.Switch { targets }
        | 7 when self + 1 < n_procs ->
          Term.Call { callee = int_range (self + 1) (n_procs - 1) st; next = i + 1 }
        | 8 when self + 2 < n_procs ->
          let c1 = int_range (self + 1) (n_procs - 1) st in
          let c2 = int_range (self + 1) (n_procs - 1) st in
          Term.Vcall { callees = [| (c1, 2.0); (c2, 1.0) |]; next = i + 1 }
        | _ -> Term.Jump (i + 1)
    in
    Block.make ~insns term
  in
  fun st ->
    let blocks = Array.init n (fun i -> block_gen i st) in
    Proc.make ~name:(Printf.sprintf "p%d" self) blocks

(* [sized_program_gen ~max_procs ~max_blocks] bounds the call-graph width
   and per-procedure block count; the historical [program_gen] keeps its
   small defaults, the pipeline fuzz uses larger bounds. *)
let sized_program_gen ~max_procs ~max_blocks =
  let open QCheck.Gen in
  fun st ->
    let n_procs = int_range 1 max_procs st in
    let seed = int_range 0 1_000_000 st in
    let procs =
      Array.init n_procs (fun self ->
          let n = int_range 2 max_blocks st in
          proc_gen ~self ~n_procs ~is_main:(self = 0) n st)
    in
    Program.make ~name:"random" ~seed procs

let program_gen = sized_program_gen ~max_procs:4 ~max_blocks:12

let print_program p =
  Fmt.str "@[<v>seed %d@,%a@]" p.Program.seed
    (Fmt.array (fun ppf proc -> Fmt.pf ppf "%a" Proc.pp proc))
    p.Program.procs

let program_arb = QCheck.make ~print:print_program program_gen

(* Wider programs for the end-to-end pipeline fuzz: deeper call graphs and
   longer procedures exercise chain merging, switch lowering and the
   certifier's position accounting harder than the unit-test sizes do. *)
let large_program_arb =
  QCheck.make ~print:print_program (sized_program_gen ~max_procs:6 ~max_blocks:20)

(* Single-procedure programs whose terminators are only jumps and
   conditionals — the control-flow shape the paper's §4 cost-vs-greedy
   claim is about (switches and calls price chains the Cost heuristic does
   not reorder for). *)
let cond_proc_gen n =
  let open QCheck.Gen in
  let block_gen i st =
    let insns = int_range 1 10 st in
    let term =
      if i = n - 1 then Term.Halt
      else
        match int_range 0 4 st with
        | 0 -> Term.Jump (i + 1)
        | _ ->
          let other ~not_ =
            let rec draw () =
              let b = int_range 0 (n - 1) st in
              if b = not_ then draw () else b
            in
            draw ()
          in
          let on_false = other ~not_:(i + 1) in
          let behavior = behavior_gen st in
          if bool st then Term.Cond { on_true = i + 1; on_false; behavior }
          else Term.Cond { on_true = on_false; on_false = i + 1; behavior }
    in
    Block.make ~insns term
  in
  fun st -> Proc.make ~name:"main" (Array.init n (fun i -> block_gen i st))

let cond_program_gen st =
  let open QCheck.Gen in
  let n = int_range 2 14 st in
  let seed = int_range 0 1_000_000 st in
  Program.make ~name:"random-cond" ~seed [| cond_proc_gen n st |]

let cond_program_arb = QCheck.make ~print:print_program cond_program_gen

(* A random layout decision for each procedure: a permutation with the entry
   block kept first. *)
let decisions_gen program st =
  Array.map
    (fun proc ->
      let n = Proc.n_blocks proc in
      let rest = Array.init (n - 1) (fun i -> i + 1) in
      let rng = Ba_util.Rng.create (QCheck.Gen.int_range 0 1_000_000 st) in
      Ba_util.Rng.shuffle rng rest;
      Ba_layout.Decision.of_order (Array.append [| 0 |] rest))
    program.Program.procs

let program_with_decisions_arb =
  QCheck.make
    ~print:(fun (p, ds) ->
      Fmt.str "%d procs; decisions: %a" (Program.n_procs p)
        (Fmt.array Ba_layout.Decision.pp)
        ds)
    QCheck.Gen.(
      program_gen >>= fun p ->
      fun st -> (p, decisions_gen p st))
