(* Tests for Ba_core: the cost model (Table 1), exact layout costing, and
   the Greedy / Cost / Try15 alignment algorithms, including the paper's
   Figure 3 loop-alignment cycle counts. *)

open Ba_ir
open Ba_core

let table = Cost_model.default_table

let check_cost = Alcotest.(check (float 1e-9))

(* -- Cost_model (Table 1) -------------------------------------------------- *)

let test_table1_static_costs () =
  (* Unconditional: 2; fall-through: 1; predicted taken: 2; mispredicted: 5. *)
  check_cost "uncond" 2.0 (Cost_model.uncond_cost Cost_model.Fallthrough table);
  (* FALLTHROUGH: taken leg always mispredicted. *)
  check_cost "ft: taken mispredicted" 5.0
    (Cost_model.cond_cost Cost_model.Fallthrough table ~w_taken:1.0 ~w_fall:0.0
       ~taken_backward:true);
  check_cost "ft: fall correct" 1.0
    (Cost_model.cond_cost Cost_model.Fallthrough table ~w_taken:0.0 ~w_fall:1.0
       ~taken_backward:false)

let test_table1_btfnt () =
  (* Backward taken predicted: taken costs 2, fall-through costs 5. *)
  check_cost "backward taken" 2.0
    (Cost_model.cond_cost Cost_model.Btfnt table ~w_taken:1.0 ~w_fall:0.0
       ~taken_backward:true);
  check_cost "backward fall mispredicted" 5.0
    (Cost_model.cond_cost Cost_model.Btfnt table ~w_taken:0.0 ~w_fall:1.0
       ~taken_backward:true);
  check_cost "forward taken mispredicted" 5.0
    (Cost_model.cond_cost Cost_model.Btfnt table ~w_taken:1.0 ~w_fall:0.0
       ~taken_backward:false);
  check_cost "forward fall correct" 1.0
    (Cost_model.cond_cost Cost_model.Btfnt table ~w_taken:0.0 ~w_fall:1.0
       ~taken_backward:false)

let test_table1_likely () =
  (* LIKELY predicts the majority leg regardless of direction. *)
  check_cost "majority taken" (10.0 *. 2.0 +. 1.0 *. 5.0)
    (Cost_model.cond_cost Cost_model.Likely table ~w_taken:10.0 ~w_fall:1.0
       ~taken_backward:false);
  check_cost "majority fall" (10.0 *. 1.0 +. 1.0 *. 5.0)
    (Cost_model.cond_cost Cost_model.Likely table ~w_taken:1.0 ~w_fall:10.0
       ~taken_backward:false)

let test_dynamic_cost_assumptions () =
  (* PHT (§6): conditionals mispredicted 10% of the time.
     taken leg: 0.9*2 + 0.1*5 = 2.3 ; fall leg: 0.9*1 + 0.1*5 = 1.4. *)
  check_cost "pht taken" 2.3
    (Cost_model.cond_cost Cost_model.Pht table ~w_taken:1.0 ~w_fall:0.0
       ~taken_backward:false);
  check_cost "pht fall" 1.4
    (Cost_model.cond_cost Cost_model.Pht table ~w_taken:0.0 ~w_fall:1.0
       ~taken_backward:false);
  (* BTB additionally hits 90% of taken branches, removing their misfetch:
     taken leg: 0.9*(1 + 0.1*1) + 0.1*5 = 1.49. *)
  check_cost "btb taken" 1.49
    (Cost_model.cond_cost Cost_model.Btb table ~w_taken:1.0 ~w_fall:0.0
       ~taken_backward:false);
  check_cost "btb uncond" 1.1 (Cost_model.uncond_cost Cost_model.Btb table)

let test_neither_beats_taken_loop_fallthrough () =
  (* The paper's single-block loop argument (§4, Cost): under FALLTHROUGH a
     taken loop edge costs 5 per iteration, while inverting the sense and
     adding a jump costs 3 (1 + 2). *)
  let aligned_as_taken =
    Cost_model.cond_cost Cost_model.Fallthrough table ~w_taken:8999.0 ~w_fall:1.0
      ~taken_backward:true
  in
  let neither =
    Cost_model.cond_neither_cost Cost_model.Fallthrough table ~w_jump:8999.0
      ~w_taken:1.0 ~taken_backward:false
  in
  check_cost "taken loop" ((8999.0 *. 5.0) +. 1.0) aligned_as_taken;
  check_cost "inverted + jump" ((8999.0 *. 3.0) +. 5.0) neither;
  Alcotest.(check bool) "neither wins" true (neither < aligned_as_taken)

(* -- Figure 3: loop alignment ---------------------------------------------- *)

(* Loop A -> B -> C -> A with 9000 entries of A (8999 continues, 1 exit to
   D), reached from entry block E.  Laid out [E; A; D; B; C] the loop costs
   4 cycles per iteration (taken conditional + unconditional) for LIKELY —
   the paper's 36,002 cycles.  A rotated layout removes both. *)
let figure3_program () =
  let main =
    Proc.make ~name:"fig3"
      [|
        (* E *) Block.make ~insns:1 (Term.Jump 1);
        (* A *)
        Block.make ~insns:1
          (Term.Cond { on_true = 2; on_false = 4; behavior = Behavior.Loop 9000 });
        (* B *) Block.make ~insns:1 (Term.Jump 3);
        (* C *) Block.make ~insns:1 (Term.Jump 1);
        (* D *) Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"figure3" ~seed:42 [| main |]

let figure3_cost ~arch decision =
  let prog = figure3_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:100_000 prog in
  let linear =
    Ba_layout.Lower.lower
      ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile 0 b)
      (Program.proc prog 0) decision
  in
  Layout_cost.branch_cost ~arch
    ~visits:(fun b -> Ba_cfg.Profile.visits profile 0 b)
    ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile 0 b)
    linear

let test_figure3_original_cost () =
  (* Original layout [E; A; D; B; C]:
     A's taken leg (B, 8999 traversals) correctly predicted by LIKELY: 2 ea;
     A's fall-through (exit, 1) mispredicted: 5;
     C's jump back: 2 x 8999; halt: 1.  Total 36,002 — Figure 3(a). *)
  let cost =
    figure3_cost ~arch:Cost_model.Likely
      (Ba_layout.Decision.of_order [| 0; 1; 4; 2; 3 |])
  in
  check_cost "paper figure 3(a)" 36002.0 cost

let test_figure3_paper_transformed_cost () =
  (* The paper's transformed layout keeps the loop in one chain with the
     header first: [E; A; B; C; D].  Continue leg falls through (1 ea), the
     back jump remains: 8999 + 5 + 17998 + 1 = 27,003 (the paper reports
     27,004 for its variant). *)
  let cost =
    figure3_cost ~arch:Cost_model.Likely
      (Ba_layout.Decision.of_order [| 0; 1; 2; 3; 4 |])
  in
  check_cost "paper figure 3(b)" 27003.0 cost

let test_figure3_tryn_improves () =
  let prog = figure3_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:100_000 prog in
  let original = figure3_cost ~arch:Cost_model.Likely (Ba_layout.Decision.identity (Program.proc prog 0)) in
  let decision = Align.align_proc (Align.Tryn 15) ~arch:Cost_model.Likely profile 0 in
  let aligned = figure3_cost ~arch:Cost_model.Likely decision in
  Alcotest.(check bool)
    (Printf.sprintf "Try15 (%.0f) at least matches the paper's transform (original %.0f)"
       aligned original)
    true
    (aligned <= 27003.0)

(* -- Greedy ---------------------------------------------------------------- *)

let diamond_program () =
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1
          (Term.Cond { on_true = 1; on_false = 2; behavior = Behavior.Bias 0.9 });
        Block.make ~insns:1 (Term.Jump 3);
        Block.make ~insns:1 (Term.Jump 3);
        Block.make ~insns:1
          (Term.Cond { on_true = 0; on_false = 4; behavior = Behavior.Loop 50 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"diamond" ~seed:3 [| main |]

let test_greedy_links_hot_path () =
  let prog = diamond_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:10_000 prog in
  let ctx = Ctx.of_profile profile 0 in
  let chain = Greedy.build_chains ctx in
  (* The hot path 0 -> 1 -> 3 must be one chain. *)
  Alcotest.(check (option int)) "0 falls to 1" (Some 1) (Ba_layout.Chain.chain_succ chain 0);
  Alcotest.(check (option int)) "1 falls to 3" (Some 3) (Ba_layout.Chain.chain_succ chain 1)

let test_greedy_decision_valid () =
  let prog = diamond_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:10_000 prog in
  let d = Align.align_proc Align.Greedy profile 0 in
  Alcotest.(check bool) "valid decision" true
    (Result.is_ok (Ba_layout.Decision.validate (Program.proc prog 0) d))

(* -- Cost ------------------------------------------------------------------- *)

let self_loop_program () =
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1 (Term.Jump 1);
        Block.make ~insns:11
          (Term.Cond { on_true = 1; on_false = 2; behavior = Behavior.Loop 5000 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"selfloop" ~seed:8 [| main |]

let test_cost_forbids_self_loop_fallthrough () =
  (* Under FALLTHROUGH, the Cost algorithm should choose "align neither
     edge" for the hot self-loop conditional (the ALVINN input_hidden case,
     Figure 2): its exit edge must NOT become the fall-through, because the
     inverted-sense-plus-jump lowering is cheaper. *)
  let prog = self_loop_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:100_000 prog in
  let ctx = Ctx.of_profile profile 0 in
  let chain = Cost_align.build_chains ~arch:Cost_model.Fallthrough ctx in
  Alcotest.(check (option int)) "no fall-through out of the loop block" None
    (Ba_layout.Chain.chain_succ chain 1);
  Alcotest.(check bool) "explicitly forbidden" true
    (Ba_layout.Chain.fallthrough_forbidden chain 1)

let test_cost_self_loop_cheaper_than_greedy () =
  let prog = self_loop_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:100_000 prog in
  let arch = Cost_model.Fallthrough in
  let eval algo =
    let d = Align.align_proc algo ~arch profile 0 in
    let linear =
      Ba_layout.Lower.lower
        ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile 0 b)
        (Program.proc prog 0) d
    in
    Layout_cost.branch_cost ~arch
      ~visits:(fun b -> Ba_cfg.Profile.visits profile 0 b)
      ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile 0 b)
      linear
  in
  let greedy = eval Align.Greedy in
  let cost = eval Align.Cost in
  Alcotest.(check bool)
    (Printf.sprintf "cost (%.0f) < greedy (%.0f)" cost greedy)
    true (cost < greedy)

(* -- Tryn -------------------------------------------------------------------- *)

let test_tryn_handles_group_boundaries () =
  (* n = 1 forces every edge into its own group; the algorithm must still
     produce a valid decision. *)
  let prog = diamond_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:10_000 prog in
  let d = Align.align_proc (Align.Tryn 1) ~arch:Cost_model.Fallthrough profile 0 in
  Alcotest.(check bool) "valid" true
    (Result.is_ok (Ba_layout.Decision.validate (Program.proc prog 0) d))

let test_tryn_rejects_bad_n () =
  let prog = diamond_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:10_000 prog in
  Alcotest.check_raises "n = 0" (Invalid_argument "Tryn.build_chains: n must be positive")
    (fun () -> ignore (Align.align_proc (Align.Tryn 0) ~arch:Cost_model.Fallthrough profile 0))

let test_tryn_never_worse_than_greedy_under_model () =
  (* On these deterministic workloads, Try15's exhaustive-within-group
     search should never lose to Greedy under the model it optimizes
     (FALLTHROUGH has no direction-guessing noise). *)
  List.iter
    (fun prog ->
      let profile = Ba_exec.Engine.profile_program ~max_steps:100_000 prog in
      let arch = Cost_model.Fallthrough in
      let eval algo =
        let d = Align.align_proc algo ~arch profile 0 in
        let linear =
          Ba_layout.Lower.lower
            ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile 0 b)
            (Program.proc prog 0) d
        in
        Layout_cost.branch_cost ~arch
          ~visits:(fun b -> Ba_cfg.Profile.visits profile 0 b)
          ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile 0 b)
          linear
      in
      let greedy = eval Align.Greedy in
      let tryn = eval (Align.Tryn 15) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: try15 (%.0f) <= greedy (%.0f)" prog.Program.name tryn greedy)
        true
        (tryn <= greedy +. 1e-6))
    [ diamond_program (); self_loop_program (); figure3_program () ]

(* -- Align front end --------------------------------------------------------- *)

let test_align_original_is_identity () =
  let prog = diamond_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:10_000 prog in
  let d = Align.align_proc Align.Original profile 0 in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3; 4 |] d.Ba_layout.Decision.order

let test_align_image_semantics_preserved () =
  let prog = diamond_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:10_000 prog in
  List.iter
    (fun algo ->
      let image = Align.image algo ~arch:Cost_model.Fallthrough profile in
      Alcotest.(check bool)
        (Align.algo_name algo ^ " image valid")
        true
        (Result.is_ok (Ba_layout.Image.validate image));
      let r = Ba_exec.Engine.run ~max_steps:10_000 image in
      let r0 = Ba_exec.Engine.run ~max_steps:10_000 (Ba_layout.Image.original prog) in
      Alcotest.(check int) (Align.algo_name algo ^ " same steps") r0.Ba_exec.Engine.steps
        r.Ba_exec.Engine.steps)
    [ Align.Original; Align.Greedy; Align.Cost; Align.Tryn 15 ]

let test_algo_names () =
  Alcotest.(check string) "orig" "Orig" (Align.algo_name Align.Original);
  Alcotest.(check string) "greedy" "Greedy" (Align.algo_name Align.Greedy);
  Alcotest.(check string) "cost" "Cost" (Align.algo_name Align.Cost);
  Alcotest.(check string) "try15" "Try15" (Align.algo_name (Align.Tryn 15))

(* -- Exhaustive (optimality reference) --------------------------------------- *)

let test_exhaustive_matches_figure3 () =
  (* On the Figure 3 loop the optimal LIKELY layout is the 18,006-cycle
     rotation Try15 finds (18,005 in branch cost without the halt? the halt
     is included by branch_cost, so both report the same number). *)
  let prog = figure3_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:100_000 prog in
  let opt = Exhaustive.optimal_cost ~arch:Cost_model.Likely profile 0 in
  let try15 =
    figure3_cost ~arch:Cost_model.Likely
      (Align.align_proc (Align.Tryn 15) ~arch:Cost_model.Likely profile 0)
  in
  Alcotest.(check (float 1e-6)) "try15 is optimal here" opt try15;
  Alcotest.(check bool) "strictly better than the paper's transform" true (opt < 27003.0)

let test_exhaustive_lower_bounds_heuristics () =
  (* The exhaustive optimum never exceeds any heuristic's exact cost. *)
  let prog = diamond_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:10_000 prog in
  List.iter
    (fun arch ->
      let opt = Exhaustive.optimal_cost ~arch profile 0 in
      List.iter
        (fun algo ->
          let d = Align.align_proc algo ~arch profile 0 in
          let linear =
            Ba_layout.Lower.lower
              ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile 0 b)
              (Program.proc prog 0) d
          in
          let c =
            Layout_cost.branch_cost ~arch
              ~visits:(fun b -> Ba_cfg.Profile.visits profile 0 b)
              ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile 0 b)
              linear
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: optimal (%.0f) <= heuristic (%.0f)"
               (Cost_model.arch_name arch) (Align.algo_name algo) opt c)
            true
            (opt <= c +. 1e-6))
        [ Align.Original; Align.Greedy; Align.Cost; Align.Tryn 15 ])
    Cost_model.all_arches

let test_exhaustive_rejects_large () =
  let w = Option.get (Ba_workloads.Spec.by_name "gcc") in
  let prog = w.Ba_workloads.Spec.build () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:5_000 prog in
  Alcotest.(check bool) "too many blocks" true
    (try
       ignore (Exhaustive.align_proc ~arch:Cost_model.Fallthrough profile 1);
       false
     with Invalid_argument _ -> true)

let test_tryn_near_optimal_on_small_procs () =
  (* Quantified optimality gap: on every workload procedure small enough to
     enumerate, Try15's exact FALLTHROUGH cost is within 5% of optimal. *)
  let checked = ref 0 in
  List.iter
    (fun name ->
      let w = Option.get (Ba_workloads.Spec.by_name name) in
      let prog = w.Ba_workloads.Spec.build () in
      let profile = Ba_exec.Engine.profile_program ~max_steps:50_000 prog in
      for pid = 0 to Program.n_procs prog - 1 do
        let proc = Program.proc prog pid in
        if Proc.n_blocks proc <= 7 then begin
          incr checked;
          let arch = Cost_model.Fallthrough in
          let opt = Exhaustive.optimal_cost ~arch profile pid in
          let d = Align.align_proc (Align.Tryn 15) ~arch ~min_weight:1 profile pid in
          let c =
            Layout_cost.branch_cost ~arch
              ~visits:(fun b -> Ba_cfg.Profile.visits profile pid b)
              ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile pid b)
              (Ba_layout.Lower.lower
                 ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile pid b)
                 proc d)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s proc %d: try15 (%.0f) within 5%% of optimal (%.0f)"
               name pid c opt)
            true
            (c <= (opt *. 1.05) +. 5.0)
        end
      done)
    [ "alvinn"; "swm256"; "ora"; "compress" ];
  Alcotest.(check bool) "checked at least 4 procedures" true (!checked >= 4)

(* -- iterative refinement ----------------------------------------------------- *)

let test_refinement_never_hurts_btfnt () =
  (* Re-aligning with the previous layout's real directions must not lose to
     the single guess-based pass, measured by the exact evaluator. *)
  let w = Option.get (Ba_workloads.Spec.by_name "compress") in
  let prog = w.Ba_workloads.Spec.build () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:60_000 prog in
  let arch = Cost_model.Btfnt in
  let exact_cost rounds =
    let decisions =
      Align.align_program (Align.Tryn 15) ~arch ~refine_rounds:rounds profile
    in
    let image = Ba_layout.Image.build ~profile prog decisions in
    Array.to_list image.Ba_layout.Image.linears
    |> List.mapi (fun pid linear ->
           Layout_cost.branch_cost ~arch
             ~visits:(fun b -> Ba_cfg.Profile.visits profile pid b)
             ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile pid b)
             linear)
    |> List.fold_left ( +. ) 0.0
  in
  let r1 = exact_cost 1 and r2 = exact_cost 2 in
  Alcotest.(check bool)
    (Printf.sprintf "refined (%.0f) <= unrefined (%.0f)" r2 r1)
    true (r2 <= r1 +. 1e-6)

let test_refinement_rejects_bad_rounds () =
  let prog = diamond_program () in
  let profile = Ba_exec.Engine.profile_program ~max_steps:10_000 prog in
  Alcotest.check_raises "rounds 0"
    (Invalid_argument "Align.align_proc: refine_rounds must be >= 1") (fun () ->
      ignore (Align.align_proc Align.Greedy ~refine_rounds:0 profile 0))

(* -- Unroll (§3 extension) --------------------------------------------------- *)

let test_unroll_rewrites_self_loop () =
  let prog = self_loop_program () in
  Alcotest.(check (list (pair int int))) "one site" [ (0, 1) ]
    (Unroll.unrollable_self_loops prog ~factor:2);
  let unrolled = Unroll.unroll_self_loops ~factor:2 prog in
  Alcotest.(check bool) "valid" true (Result.is_ok (Program.validate unrolled));
  Alcotest.(check int) "one copy appended" 4 (Program.total_blocks unrolled);
  (* Copy 0 falls into the appended copy, which carries the halved test. *)
  (match (Proc.block (Program.proc unrolled 0) 1).Block.term with
  | Term.Jump 3 -> ()
  | _ -> Alcotest.fail "original block should fall into its copy");
  match (Proc.block (Program.proc unrolled 0) 3).Block.term with
  | Term.Cond { on_true = 1; on_false = 2; behavior = Behavior.Loop 2500 } -> ()
  | _ -> Alcotest.fail "copy should loop back with halved trip count"

let test_unroll_preserves_work () =
  (* Same straight-line instructions per run, strictly fewer branches. *)
  let prog = self_loop_program () in
  let unrolled = Unroll.unroll_self_loops ~factor:4 prog in
  let r0 = Ba_exec.Engine.run ~max_steps:200_000 (Ba_layout.Image.original prog) in
  let r1 = Ba_exec.Engine.run ~max_steps:200_000 (Ba_layout.Image.original unrolled) in
  Alcotest.(check bool) "both complete" true
    (r0.Ba_exec.Engine.completed && r1.Ba_exec.Engine.completed);
  (* Straight-line work: body insns x trips is identical; total instructions
     shrink because 3 of every 4 loop tests disappear. *)
  Alcotest.(check bool) "fewer branches" true
    (r1.Ba_exec.Engine.branches < r0.Ba_exec.Engine.branches);
  Alcotest.(check bool) "fewer instructions" true
    (r1.Ba_exec.Engine.insns < r0.Ba_exec.Engine.insns);
  (* 5000 iterations of an 11-insn body appear in both runs. *)
  let body_work (r : Ba_exec.Engine.result) extra = r.Ba_exec.Engine.insns - extra in
  ignore body_work;
  let profile = Ba_cfg.Profile.create unrolled in
  let _ = Ba_exec.Engine.run ~max_steps:200_000 ~profile (Ba_layout.Image.original unrolled) in
  let body_visits =
    Ba_cfg.Profile.visits profile 0 1 + Ba_cfg.Profile.visits profile 0 3
    + Ba_cfg.Profile.visits profile 0 4
    + Ba_cfg.Profile.visits profile 0 5
  in
  Alcotest.(check int) "body executed 5000 times in total" 5000 body_visits

let test_unroll_skips_indivisible () =
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1 (Term.Jump 1);
        Block.make ~insns:5
          (Term.Cond { on_true = 1; on_false = 2; behavior = Behavior.Loop 7 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let prog = Program.make ~name:"odd" ~seed:1 [| main |] in
  Alcotest.(check (list (pair int int))) "7 not divisible by 2" []
    (Unroll.unrollable_self_loops prog ~factor:2);
  let unrolled = Unroll.unroll_self_loops ~factor:2 prog in
  Alcotest.(check int) "unchanged" (Program.total_blocks prog)
    (Program.total_blocks unrolled)

let test_unroll_rejects_bad_factor () =
  Alcotest.check_raises "factor 1"
    (Invalid_argument "Unroll.unroll_self_loops: factor must be >= 2") (fun () ->
      ignore (Unroll.unroll_self_loops ~factor:1 (self_loop_program ())))

let test_unroll_improves_fallthrough_cpi () =
  (* The paper's §3 claim: duplicating ALVINN's loop block reduces the
     misfetch penalty for all architectures and improves FALLTHROUGH
     prediction. *)
  let prog = self_loop_program () in
  let cpi program ~orig_insns =
    let profile = Ba_exec.Engine.profile_program ~max_steps:200_000 program in
    let image =
      Align.image (Align.Tryn 15) ~arch:Cost_model.Fallthrough profile
    in
    let out =
      Ba_sim.Runner.simulate ~max_steps:200_000
        ~archs:[ Ba_sim.Bep.Static_fallthrough ] image
    in
    let _, sim = out.Ba_sim.Runner.sims.(0) in
    Ba_sim.Bep.relative_cpi sim ~insns:out.Ba_sim.Runner.result.Ba_exec.Engine.insns
      ~orig_insns
  in
  let orig_insns =
    (Ba_exec.Engine.run ~max_steps:200_000 (Ba_layout.Image.original prog))
      .Ba_exec.Engine.insns
  in
  let aligned = cpi prog ~orig_insns in
  let unrolled = cpi (Unroll.unroll_self_loops ~factor:4 prog) ~orig_insns in
  Alcotest.(check bool)
    (Printf.sprintf "unrolled (%.3f) < aligned (%.3f)" unrolled aligned)
    true (unrolled < aligned)

(* -- QCheck -------------------------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  let algos = [ Align.Greedy; Align.Cost; Align.Tryn 5 ] in
  [
    Test.make ~name:"alignment always yields valid decisions" ~count:60
      Gen_prog.program_arb (fun p ->
        let profile = Ba_exec.Engine.profile_program ~max_steps:3_000 p in
        List.for_all
          (fun algo ->
            let ds = Align.align_program algo ~arch:Cost_model.Btfnt profile in
            Array.for_all2
              (fun d proc -> Result.is_ok (Ba_layout.Decision.validate proc d))
              ds p.Program.procs)
          algos);
    Test.make ~name:"aligned images execute identically (semantics)" ~count:40
      Gen_prog.program_arb (fun p ->
        let profile = Ba_exec.Engine.profile_program ~max_steps:3_000 p in
        let r0 = Ba_exec.Engine.run ~max_steps:3_000 (Ba_layout.Image.original p) in
        List.for_all
          (fun algo ->
            let image = Align.image algo ~arch:Cost_model.Fallthrough profile in
            let r = Ba_exec.Engine.run ~max_steps:3_000 image in
            r.Ba_exec.Engine.steps = r0.Ba_exec.Engine.steps
            && r.Ba_exec.Engine.completed = r0.Ba_exec.Engine.completed)
          algos);
    Test.make ~name:"layout cost is non-negative and finite" ~count:60
      Gen_prog.program_arb (fun p ->
        let profile = Ba_exec.Engine.profile_program ~max_steps:3_000 p in
        List.for_all
          (fun arch ->
            let d = Align.align_program Align.Greedy ~arch profile in
            let image = Ba_layout.Image.build ~profile p d in
            Array.for_all
              (fun (linear : Ba_layout.Linear.t) ->
                let pid =
                  (* recover the procedure id by name lookup *)
                  let rec find i =
                    if Ba_ir.Program.proc p i == linear.Ba_layout.Linear.proc then i
                    else find (i + 1)
                  in
                  find 0
                in
                let c =
                  Layout_cost.branch_cost ~arch
                    ~visits:(fun b -> Ba_cfg.Profile.visits profile pid b)
                    ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile pid b)
                    linear
                in
                c >= 0.0 && Float.is_finite c)
              image.Ba_layout.Image.linears)
          Cost_model.all_arches);
  ]

let suites =
  [
    ( "core.cost_model",
      [
        Alcotest.test_case "table 1 static" `Quick test_table1_static_costs;
        Alcotest.test_case "bt/fnt" `Quick test_table1_btfnt;
        Alcotest.test_case "likely" `Quick test_table1_likely;
        Alcotest.test_case "dynamic assumptions" `Quick test_dynamic_cost_assumptions;
        Alcotest.test_case "loop inversion" `Quick test_neither_beats_taken_loop_fallthrough;
      ] );
    ( "core.figure3",
      [
        Alcotest.test_case "original 36,002" `Quick test_figure3_original_cost;
        Alcotest.test_case "transformed 27,003" `Quick test_figure3_paper_transformed_cost;
        Alcotest.test_case "try15 improves" `Quick test_figure3_tryn_improves;
      ] );
    ( "core.greedy",
      [
        Alcotest.test_case "links hot path" `Quick test_greedy_links_hot_path;
        Alcotest.test_case "valid decision" `Quick test_greedy_decision_valid;
      ] );
    ( "core.cost_align",
      [
        Alcotest.test_case "self-loop neither" `Quick test_cost_forbids_self_loop_fallthrough;
        Alcotest.test_case "beats greedy on loop" `Quick test_cost_self_loop_cheaper_than_greedy;
      ] );
    ( "core.tryn",
      [
        Alcotest.test_case "group boundaries" `Quick test_tryn_handles_group_boundaries;
        Alcotest.test_case "rejects bad n" `Quick test_tryn_rejects_bad_n;
        Alcotest.test_case "never worse than greedy" `Quick
          test_tryn_never_worse_than_greedy_under_model;
      ] );
    ( "core.exhaustive",
      [
        Alcotest.test_case "figure 3 optimum" `Quick test_exhaustive_matches_figure3;
        Alcotest.test_case "lower bounds heuristics" `Slow
          test_exhaustive_lower_bounds_heuristics;
        Alcotest.test_case "rejects large procs" `Quick test_exhaustive_rejects_large;
        Alcotest.test_case "try15 near optimal" `Slow test_tryn_near_optimal_on_small_procs;
      ] );
    ( "core.refine",
      [
        Alcotest.test_case "never hurts bt/fnt" `Slow test_refinement_never_hurts_btfnt;
        Alcotest.test_case "rejects bad rounds" `Quick test_refinement_rejects_bad_rounds;
      ] );
    ( "core.unroll",
      [
        Alcotest.test_case "rewrites self-loop" `Quick test_unroll_rewrites_self_loop;
        Alcotest.test_case "preserves work" `Quick test_unroll_preserves_work;
        Alcotest.test_case "skips indivisible" `Quick test_unroll_skips_indivisible;
        Alcotest.test_case "rejects bad factor" `Quick test_unroll_rejects_bad_factor;
        Alcotest.test_case "improves FT CPI" `Quick test_unroll_improves_fallthrough_cpi;
      ] );
    ( "core.align",
      [
        Alcotest.test_case "original identity" `Quick test_align_original_is_identity;
        Alcotest.test_case "semantics preserved" `Quick test_align_image_semantics_preserved;
        Alcotest.test_case "algo names" `Quick test_algo_names;
      ] );
    ("core.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
