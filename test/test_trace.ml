(* Differential test wall for Ba_trace.

   The contract under test: a trace recorded in ONE interpreter pass over
   the original layout replays through {!Ba_trace.Flat}/{!Ba_trace.Replay}
   on EVERY layout of the same program, reproducing exactly the result,
   event stream, block stream, simulator books and [sim.*] metrics that a
   direct {!Ba_exec.Engine.run} on that layout produces.  Unit tests pin
   the tricky layout legs (inserted jumps, via-jump returns, truncation
   mid-call, switch/vcall varints); QCheck properties extend the claim to
   arbitrary generated programs and all four alignment algorithms; the
   harness-level test proves the rendered tables are byte-identical with
   replay on and off; and the memo gate proves the record-once promise —
   one full evaluation costs exactly one interpreter run. *)

open Ba_ir
open Ba_layout
open Ba_exec

let cond ?(behavior = Behavior.Bias 0.5) t f =
  Term.Cond { on_true = t; on_false = f; behavior }

(* The replayer reuses one mutable scratch event for the whole run; copy
   (payload included) everything we retain past the callback. *)
let copy_event (e : Event.t) =
  {
    e with
    Event.kind =
      (match e.Event.kind with
      | Event.Cond { taken; taken_target } -> Event.Cond { taken; taken_target }
      | k -> k);
  }

type streams = {
  result : Engine.result;
  events : Event.t list;
  blocks : (int * int) list;
}

let direct_streams ?max_steps image =
  let events = ref [] and blocks = ref [] in
  let result =
    Engine.run ?max_steps
      ~on_event:(fun e -> events := copy_event e :: !events)
      ~on_block:(fun ~addr ~size -> blocks := (addr, size) :: !blocks)
      image
  in
  { result; events = List.rev !events; blocks = List.rev !blocks }

let replay_streams image trace =
  let events = ref [] and blocks = ref [] in
  let result =
    Ba_trace.Replay.run
      ~on_event:(fun e -> events := copy_event e :: !events)
      ~on_block:(fun ~addr ~size -> blocks := (addr, size) :: !blocks)
      (Ba_trace.Flat.of_image image) trace
  in
  { result; events = List.rev !events; blocks = List.rev !blocks }

let check_streams name direct replay =
  let r1 = direct.result and r2 = replay.result in
  if r1 <> r2 then
    Alcotest.failf
      "%s: results differ: direct {insns=%d;steps=%d;branches=%d;completed=%b} \
       replay {insns=%d;steps=%d;branches=%d;completed=%b}"
      name r1.Engine.insns r1.Engine.steps r1.Engine.branches r1.Engine.completed
      r2.Engine.insns r2.Engine.steps r2.Engine.branches r2.Engine.completed;
  let n1 = List.length direct.events and n2 = List.length replay.events in
  if n1 <> n2 then Alcotest.failf "%s: %d direct events vs %d replayed" name n1 n2;
  List.iteri
    (fun i (d, r) ->
      if d <> r then
        Alcotest.failf "%s: event %d differs: direct %a, replay %a" name i
          Event.pp d Event.pp r)
    (List.combine direct.events replay.events);
  Alcotest.(check bool) (name ^ ": block streams equal") true
    (direct.blocks = replay.blocks)

let count_kind k events =
  List.length (List.filter (fun e -> e.Event.kind = k) events)

(* -- packed format unit tests ---------------------------------------------- *)

let test_builder_bits () =
  let outcomes = [ true; false; true; true; false; false; true; false; true; true ] in
  let b = Ba_trace.Trace.Builder.create () in
  List.iter (Ba_trace.Trace.Builder.add_outcome b) outcomes;
  let t = Ba_trace.Trace.Builder.finish b ~steps:42 ~completed:true in
  Alcotest.(check int) "n_conds" (List.length outcomes) t.Ba_trace.Trace.n_conds;
  Alcotest.(check int) "steps" 42 t.Ba_trace.Trace.steps;
  Alcotest.(check bool) "completed" true t.Ba_trace.Trace.completed;
  Alcotest.(check int) "n_choices" 0 t.Ba_trace.Trace.n_choices;
  (* 10 bits pack into 2 bytes, LSB-first. *)
  Alcotest.(check int) "byte size" 2 (Ba_trace.Trace.byte_size t);
  List.iteri
    (fun i expect ->
      Alcotest.(check bool)
        (Printf.sprintf "bit %d" i)
        expect (Ba_trace.Trace.cond t i))
    outcomes;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Trace.cond: index out of range") (fun () ->
      ignore (Ba_trace.Trace.cond t (List.length outcomes)));
  Alcotest.check_raises "negative"
    (Invalid_argument "Trace.cond: index out of range") (fun () ->
      ignore (Ba_trace.Trace.cond t (-1)))

let test_builder_varints () =
  (* LEB128 widths: 0, 1, 127 take one byte; 128, 300 take two. *)
  let b = Ba_trace.Trace.Builder.create () in
  List.iter (Ba_trace.Trace.Builder.add_choice b) [ 0; 1; 127; 128; 300 ];
  Ba_trace.Trace.Builder.add_outcome b true;
  let t = Ba_trace.Trace.Builder.finish b ~steps:1 ~completed:false in
  Alcotest.(check int) "n_choices" 5 t.Ba_trace.Trace.n_choices;
  Alcotest.(check int) "choices bytes + 1 cond byte" (7 + 1)
    (Ba_trace.Trace.byte_size t)

(* -- hand-built layout legs ------------------------------------------------ *)

(* main calls p1 and halts; fully deterministic, two events (call, ret). *)
let call_program () =
  let callee = Proc.make ~name:"callee" [| Block.make ~insns:3 Term.Ret |] in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:2 (Term.Call { callee = 1; next = 1 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"call" ~seed:7 [| main; callee |]

let test_replay_call_ret () =
  let program = call_program () in
  let _profile, trace = Ba_trace.Record.profile_and_record program in
  let image = Image.original program in
  let direct = direct_streams image in
  let replay = replay_streams image trace in
  check_streams "call/ret" direct replay;
  Alcotest.(check int) "trace steps" direct.result.Engine.steps
    trace.Ba_trace.Trace.steps;
  Alcotest.(check bool) "trace completed" true trace.Ba_trace.Trace.completed;
  (* no conditionals, no switches: the decision streams are empty *)
  Alcotest.(check int) "no cond bits" 0 trace.Ba_trace.Trace.n_conds;
  Alcotest.(check int) "no choice varints" 0 trace.Ba_trace.Trace.n_choices

(* A loop block laid out so that neither conditional leg is adjacent: the
   not-adjacent false leg goes through an inserted jump (ocond's [c]
   operand), which the replayer must re-derive from the layout — the trace
   records only the semantic outcome bit. *)
let test_replay_inserted_jump () =
  let main =
    Proc.make ~name:"selfloop"
      [|
        Block.make ~insns:1 (Term.Jump 1);
        Block.make ~insns:2 (cond ~behavior:(Behavior.Loop 3) 1 2);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let program = Program.make ~name:"self" ~seed:5 [| main |] in
  let profile, trace = Ba_trace.Record.profile_and_record program in
  let image = Image.build ~profile program [| Decision.of_order [| 0; 2; 1 |] |] in
  let direct = direct_streams image in
  let replay = replay_streams image trace in
  check_streams "inserted jump" direct replay;
  (* entry jump + the loop-exit inserted jump must both appear *)
  Alcotest.(check int) "uncond events" 2 (count_kind Event.Uncond replay.events)

(* A call whose continuation block is NOT laid out after the call block:
   the return resumes through a return jump (ocall's [b]/[c] operands). *)
let test_replay_via_jump_return () =
  let callee = Proc.make ~name:"callee" [| Block.make ~insns:3 Term.Ret |] in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:2 (Term.Call { callee = 1; next = 1 });
        Block.make ~insns:1 (Term.Jump 2);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let program = Program.make ~name:"viajump" ~seed:11 [| main; callee |] in
  let profile, trace = Ba_trace.Record.profile_and_record program in
  let image =
    Image.build ~profile program
      [| Decision.of_order [| 0; 2; 1 |]; Decision.of_order [| 0 |] |]
  in
  let direct = direct_streams image in
  let replay = replay_streams image trace in
  check_streams "via-jump return" direct replay;
  Alcotest.(check int) "one ret" 1 (count_kind Event.Ret replay.events);
  (* the continuation is reached through the inserted return jump *)
  Alcotest.(check bool) "return jump exercised" true
    (count_kind Event.Uncond replay.events >= 1)

(* Budget exhaustion inside a callee: the trace records the truncated run
   (completed = false) and the replay must stop at exactly the same block,
   with the call stack still open. *)
let test_replay_truncation_mid_call () =
  let callee =
    Proc.make ~name:"spin"
      [|
        Block.make ~insns:1 (cond ~behavior:(Behavior.Loop 100) 1 2);
        Block.make ~insns:2 (Term.Jump 0);
        Block.make ~insns:1 Term.Ret;
      |]
  in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:2 (Term.Call { callee = 1; next = 1 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let program = Program.make ~name:"trunc" ~seed:13 [| main; callee |] in
  let max_steps = 10 in
  let profile, trace = Ba_trace.Record.profile_and_record ~max_steps program in
  Alcotest.(check bool) "recorded run truncated" false
    trace.Ba_trace.Trace.completed;
  Alcotest.(check int) "recorded steps = budget" max_steps
    trace.Ba_trace.Trace.steps;
  let image =
    Image.build ~profile program
      [| Decision.of_order [| 0; 1 |]; Decision.of_order [| 0; 2; 1 |] |]
  in
  let direct = direct_streams ~max_steps image in
  let replay = replay_streams image trace in
  check_streams "truncation mid-call" direct replay;
  Alcotest.(check bool) "replay truncated too" false
    replay.result.Engine.completed

(* Switches and vcalls consume one varint each, whatever the layout: replay
   the same trace through two different layouts and check each against its
   own direct run. *)
let test_replay_switch_vcall () =
  let p1 = Proc.make ~name:"p1" [| Block.make ~insns:2 Term.Ret |] in
  let p2 = Proc.make ~name:"p2" [| Block.make ~insns:4 Term.Ret |] in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1 (cond ~behavior:(Behavior.Loop 20) 1 5);
        Block.make ~insns:1
          (Term.Switch { targets = [| (2, 1.0); (3, 2.0); (4, 0.5) |] });
        Block.make ~insns:2 (Term.Jump 4);
        Block.make ~insns:3 (Term.Jump 4);
        Block.make ~insns:1
          (Term.Vcall { callees = [| (1, 1.0); (2, 3.0) |]; next = 0 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let program = Program.make ~name:"choices" ~seed:23 [| main; p1; p2 |] in
  let profile, trace = Ba_trace.Record.profile_and_record program in
  Alcotest.(check bool) "switch+vcall recorded" true
    (trace.Ba_trace.Trace.n_choices >= 2);
  let layouts =
    [
      ("original", Image.original ~profile program);
      ( "permuted",
        Image.build ~profile program
          [|
            Decision.of_order [| 0; 4; 3; 2; 1; 5 |];
            Decision.of_order [| 0 |];
            Decision.of_order [| 0 |];
          |] );
    ]
  in
  List.iter
    (fun (name, image) ->
      check_streams name (direct_streams image) (replay_streams image trace))
    layouts

(* -- disk round-trip ------------------------------------------------------- *)

let test_disk_roundtrip () =
  let program = call_program () in
  let _profile, trace =
    Ba_trace.Record.profile_and_record ~max_steps:500 program
  in
  let path = Filename.temp_file "ba_trace" ".bast" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ba_trace.Trace.save ~path ~seed:program.Program.seed ~max_steps:500 trace;
      let f = Ba_trace.Trace.load ~path in
      Alcotest.(check int) "seed" program.Program.seed f.Ba_trace.Trace.seed;
      Alcotest.(check int) "max_steps" 500 f.Ba_trace.Trace.max_steps;
      Alcotest.(check bool) "trace round-trips" true
        (f.Ba_trace.Trace.trace = trace))

let test_disk_bad_magic () =
  let path = Filename.temp_file "ba_trace" ".bast" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace file";
      close_out oc;
      match Ba_trace.Trace.load ~path with
      | _ -> Alcotest.fail "bad magic accepted"
      | exception Failure _ -> ())

(* -- record-once memo gate ------------------------------------------------- *)

(* The tentpole promise, asserted on the real harness: one full workload
   evaluation (7 architectures x 4 algorithm families, Alpha model
   included) costs exactly ONE interpreter pass; every other image replays
   the recorded trace. *)
let test_record_once_memo_gate () =
  let w = Option.get (Ba_workloads.Spec.by_name "compress") in
  Ba_workloads.Profiled.clear ();
  let registry = Ba_obs.Registry.create () in
  ignore
    (Ba_obs.Registry.with_registry registry (fun () ->
         Ba_report.Harness.evaluate ~max_steps:2_000 w));
  Alcotest.(check int) "exactly one interpreter run" 1
    (Ba_obs.Registry.counter_value registry "exec.engine.runs");
  Alcotest.(check bool) "every other image replayed" true
    (Ba_obs.Registry.counter_value registry "exec.trace.replays" > 0);
  let _, misses = Ba_workloads.Profiled.stats () in
  Alcotest.(check int) "single memo miss" 1 misses;
  ignore (Ba_workloads.Profiled.get_traced ~max_steps:2_000 w);
  let hits, misses = Ba_workloads.Profiled.stats () in
  Alcotest.(check int) "still a single miss" 1 misses;
  Alcotest.(check bool) "subsequent lookups hit" true (hits > 0)

(* Rendered tables must be byte-identical whether the harness interprets
   every image or replays the recorded trace. *)
let test_tables_identical_with_replay_off () =
  let ws = List.filter_map Ba_workloads.Spec.by_name [ "alvinn"; "compress" ] in
  Ba_workloads.Profiled.clear ();
  let direct =
    Ba_report.Harness.evaluate_suite ~max_steps:2_000 ~jobs:1 ~replay:false ws
  in
  Ba_workloads.Profiled.clear ();
  let replay = Ba_report.Harness.evaluate_suite ~max_steps:2_000 ~jobs:1 ws in
  List.iter
    (fun (name, render) ->
      Alcotest.(check string) name (render direct) (render replay))
    [
      ("table2", Ba_report.Tables.table2);
      ("table3", Ba_report.Tables.table3);
      ("table4", Ba_report.Tables.table4);
      ("fig4", Ba_report.Tables.fig4);
    ]

(* -- QCheck properties ----------------------------------------------------- *)

let fuzz_steps = 1_500

let algos = Ba_core.Align.[ Original; Greedy; Cost; Tryn 5 ]

let archs =
  Ba_sim.Bep.
    [
      Static_fallthrough;
      Static_btfnt;
      Pht_direct { entries = 512 };
      Pht_gshare { entries = 512; history_bits = 8 };
      Pht_global { history_bits = 8 };
      Pht_local { history_bits = 6; branch_entries = 64 };
      Btb_arch { entries = 64; assoc = 2 };
    ]

let image_of ~profile program algo =
  Image.build ~profile program
    (Ba_core.Align.align_program algo ~arch:Ba_core.Cost_model.Fallthrough
       profile)

(* Replay produces the exact event/block/result streams of a direct run,
   on every algorithm's layout of an arbitrary program. *)
let test_qcheck_replay_streams =
  QCheck.Test.make ~name:"replay = direct: events, blocks, result" ~count:30
    Gen_prog.program_arb (fun program ->
      let profile, trace =
        Ba_trace.Record.profile_and_record ~max_steps:fuzz_steps program
      in
      List.iter
        (fun algo ->
          let image = image_of ~profile program algo in
          let direct = direct_streams ~max_steps:fuzz_steps image in
          let replay = replay_streams image trace in
          check_streams (Ba_core.Align.algo_name algo) direct replay)
        algos;
      true)

(* The full simulation substrate agrees too: simulator books, penalty
   totals, trace statistics and the [sim.*] metric counters are identical
   between the interpret and replay paths. *)
let test_qcheck_replay_sims =
  QCheck.Test.make ~name:"replay = direct: Bep books and sim.* counters"
    ~count:20 Gen_prog.program_arb (fun program ->
      let profile, trace =
        Ba_trace.Record.profile_and_record ~max_steps:fuzz_steps program
      in
      let run_sims image trace =
        let registry = Ba_obs.Registry.create () in
        let out =
          Ba_obs.Registry.with_registry registry (fun () ->
              Ba_sim.Runner.simulate ~max_steps:fuzz_steps ?trace ~archs image)
        in
        let counters =
          List.filter
            (fun (name, _) ->
              String.length name >= 4 && String.sub name 0 4 = "sim.")
            (Ba_obs.Registry.counters registry)
        in
        (out, counters)
      in
      List.iter
        (fun algo ->
          let image = image_of ~profile program algo in
          let direct, direct_counters = run_sims image None in
          let replay, replay_counters = run_sims image (Some trace) in
          let label = Ba_core.Align.algo_name algo in
          if direct.Ba_sim.Runner.result <> replay.Ba_sim.Runner.result then
            QCheck.Test.fail_reportf "%s: results differ" label;
          Array.iter2
            (fun (a1, s1) (a2, s2) ->
              if a1 <> a2 then
                QCheck.Test.fail_reportf "%s: arch order differs" label;
              if Ba_sim.Bep.counts s1 <> Ba_sim.Bep.counts s2 then
                QCheck.Test.fail_reportf "%s/%s: Bep books differ" label
                  (Ba_sim.Bep.arch_label a1);
              if Ba_sim.Bep.bep s1 <> Ba_sim.Bep.bep s2 then
                QCheck.Test.fail_reportf "%s/%s: penalty cycles differ" label
                  (Ba_sim.Bep.arch_label a1))
            direct.Ba_sim.Runner.sims replay.Ba_sim.Runner.sims;
          let summarize out =
            Ba_exec.Trace_stats.summarize out.Ba_sim.Runner.stats ~program
              ~insns:out.Ba_sim.Runner.result.Engine.insns
          in
          if summarize direct <> summarize replay then
            QCheck.Test.fail_reportf "%s: trace statistics differ" label;
          if direct_counters <> replay_counters then
            QCheck.Test.fail_reportf "%s: sim.* counters differ" label)
        algos;
      true)

(* Satellite: the binary-searched [Engine.weighted_index] must be
   draw-for-draw identical to the historical linear scan, zero-weight
   entries included. *)
let linear_weighted_index rng weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  let x = Ba_util.Rng.float rng total in
  let n = Array.length weights in
  let rec go i acc =
    let acc = acc +. weights.(i) in
    if x < acc || i = n - 1 then i else go (i + 1) acc
  in
  go 0 0.0

let test_qcheck_weighted_index =
  QCheck.Test.make ~name:"weighted_index = historical linear scan" ~count:500
    QCheck.(
      pair (int_bound 1_000_000)
        (array_of_size Gen.(int_range 1 8) (int_bound 100)))
    (fun (seed, raw) ->
      let weights = Array.map (fun w -> float_of_int w /. 10.0) raw in
      if Array.for_all (fun w -> w = 0.0) weights then weights.(0) <- 1.0;
      (* same seed, two independent generators: both sides consume exactly
         one draw, so the streams stay aligned *)
      let r1 = Ba_util.Rng.create seed and r2 = Ba_util.Rng.create seed in
      let fast = Engine.weighted_index r1 weights in
      let slow = linear_weighted_index r2 weights in
      if fast <> slow then
        QCheck.Test.fail_reportf "index %d <> linear %d on [|%s|]" fast slow
          (String.concat "; "
             (Array.to_list (Array.map string_of_float weights)))
      else true)

let suites =
  [
    ( "trace.format",
      [
        Alcotest.test_case "builder packs outcome bits" `Quick test_builder_bits;
        Alcotest.test_case "builder packs choice varints" `Quick
          test_builder_varints;
        Alcotest.test_case "disk round-trip" `Quick test_disk_roundtrip;
        Alcotest.test_case "bad magic rejected" `Quick test_disk_bad_magic;
      ] );
    ( "trace.replay",
      [
        Alcotest.test_case "call/ret" `Quick test_replay_call_ret;
        Alcotest.test_case "inserted-jump legs" `Quick test_replay_inserted_jump;
        Alcotest.test_case "via-jump returns" `Quick test_replay_via_jump_return;
        Alcotest.test_case "truncation mid-call" `Quick
          test_replay_truncation_mid_call;
        Alcotest.test_case "switch/vcall varints across layouts" `Quick
          test_replay_switch_vcall;
      ] );
    ( "trace.harness",
      [
        Alcotest.test_case "record-once memo gate" `Slow
          test_record_once_memo_gate;
        Alcotest.test_case "tables identical with replay off" `Slow
          test_tables_identical_with_replay_off;
      ] );
    ( "trace.fuzz",
      List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        [
          test_qcheck_replay_streams;
          test_qcheck_replay_sims;
          test_qcheck_weighted_index;
        ] );
  ]
