(* Tests for Ba_sim: BEP accounting rules per architecture (§6), relative
   CPI, the multi-architecture runner, and the Alpha 21064 timing model. *)

open Ba_exec
open Ba_sim

let cond_ev ?(pc = 100) ~taken ~taken_target () =
  {
    Event.pc;
    target = (if taken then taken_target else pc + 1);
    kind = Event.Cond { taken; taken_target };
  }

let feed arch events =
  let sim = Bep.create arch in
  List.iter (Bep.on_event sim) events;
  sim

(* -- static/PHT accounting rules ------------------------------------------ *)

let test_fallthrough_rule () =
  (* FALLTHROUGH predicts not-taken: a taken conditional is a mispredict,
     a not-taken one is free. *)
  let sim =
    feed Bep.Static_fallthrough
      [
        cond_ev ~taken:true ~taken_target:50 ();
        cond_ev ~taken:false ~taken_target:50 ();
      ]
  in
  let c = Bep.counts sim in
  Alcotest.(check int) "mispredicts" 1 c.Bep.mispredicts;
  Alcotest.(check int) "misfetches" 0 c.Bep.misfetches;
  Alcotest.(check int) "bep" 4 (Bep.bep sim);
  Alcotest.(check (float 1e-9)) "accuracy" 0.5 (Bep.cond_accuracy sim)

let test_btfnt_rule () =
  (* Backward taken: correctly predicted taken -> misfetch only.
     Forward taken: mispredict.  Backward not-taken: mispredict. *)
  let sim =
    feed Bep.Static_btfnt
      [
        cond_ev ~taken:true ~taken_target:50 ();
        (* backward, taken: misfetch *)
        cond_ev ~taken:true ~taken_target:150 ();
        (* forward, taken: mispredict *)
        cond_ev ~taken:false ~taken_target:50 ();
        (* backward, not taken: mispredict *)
        cond_ev ~taken:false ~taken_target:150 ();
        (* forward, not taken: free *)
      ]
  in
  let c = Bep.counts sim in
  Alcotest.(check int) "misfetches" 1 c.Bep.misfetches;
  Alcotest.(check int) "mispredicts" 2 c.Bep.mispredicts;
  Alcotest.(check int) "bep" 9 (Bep.bep sim)

let test_uncond_call_misfetch () =
  let sim =
    feed Bep.Static_fallthrough
      [
        { Event.pc = 10; target = 50; kind = Event.Uncond };
        { Event.pc = 20; target = 80; kind = Event.Call };
      ]
  in
  let c = Bep.counts sim in
  Alcotest.(check int) "two misfetches" 2 c.Bep.misfetches;
  Alcotest.(check int) "no mispredicts" 0 c.Bep.mispredicts

let test_indirect_mispredict () =
  let sim =
    feed Bep.Static_fallthrough
      [
        { Event.pc = 10; target = 50; kind = Event.Indirect_jump };
        { Event.pc = 20; target = 80; kind = Event.Indirect_call };
      ]
  in
  Alcotest.(check int) "two mispredicts" 2 (Bep.counts sim).Bep.mispredicts

let test_return_stack_predicts () =
  (* A call followed by a return to the call's fall-through is free; a
     return to anywhere else is a mispredict. *)
  let sim =
    feed Bep.Static_fallthrough
      [
        { Event.pc = 20; target = 80; kind = Event.Call };
        { Event.pc = 95; target = 21; kind = Event.Ret };
      ]
  in
  let c = Bep.counts sim in
  Alcotest.(check int) "correct return" 1 c.Bep.rets_correct;
  Alcotest.(check int) "call misfetch only" 1 c.Bep.misfetches;
  Alcotest.(check int) "no mispredict" 0 c.Bep.mispredicts;
  let sim2 =
    feed Bep.Static_fallthrough [ { Event.pc = 95; target = 21; kind = Event.Ret } ]
  in
  Alcotest.(check int) "empty stack mispredicts" 1 (Bep.counts sim2).Bep.mispredicts

let test_pht_learns () =
  (* Ten consecutive taken executions of one conditional: the 2-bit counter
     mispredicts at most the first two, then predicts taken (misfetch). *)
  let events = List.init 10 (fun _ -> cond_ev ~taken:true ~taken_target:50 ()) in
  let sim = feed (Bep.Pht_direct { entries = 64 }) events in
  let c = Bep.counts sim in
  Alcotest.(check int) "early mispredicts" 1 c.Bep.mispredicts;
  Alcotest.(check int) "then misfetches" 9 c.Bep.misfetches

let test_likely_uses_hints () =
  let bits = Hashtbl.create 4 in
  Hashtbl.replace bits 100 true;
  (* Build Likely_bits through its public constructor path: fake it with a
     tiny program instead. *)
  ignore bits;
  let open Ba_ir in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1
          (Term.Cond { on_true = 1; on_false = 2; behavior = Behavior.Loop 10 });
        Block.make ~insns:1 (Term.Jump 0);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let prog = Program.make ~name:"lk" ~seed:2 [| main |] in
  let profile = Ba_exec.Engine.profile_program prog in
  let image = Ba_layout.Image.original prog in
  let likely = Ba_predict.Likely_bits.build image profile in
  let sim = Bep.create (Bep.Static_likely likely) in
  let result = Engine.run ~on_event:(Bep.on_event sim) image in
  ignore result;
  let c = Bep.counts sim in
  (* Loop 10, on_true adjacent: 9 not-taken (hint says not-taken: correct,
     free) + 1 taken exit (mispredicted); the 9 back jumps each misfetch. *)
  Alcotest.(check int) "correct" 9 c.Bep.cond_correct;
  Alcotest.(check int) "mispredicts" 1 c.Bep.mispredicts;
  Alcotest.(check int) "misfetches" 9 c.Bep.misfetches

(* -- BTB accounting --------------------------------------------------------- *)

let test_btb_taken_hit_free () =
  let arch = Bep.Btb_arch { entries = 64; assoc = 2 } in
  let events = List.init 5 (fun _ -> cond_ev ~taken:true ~taken_target:50 ()) in
  let sim = feed arch events in
  let c = Bep.counts sim in
  (* First execution misses (predicted not-taken): mispredict; later ones
     hit with a strongly-taken counter and the right target: free. *)
  Alcotest.(check int) "one mispredict" 1 c.Bep.mispredicts;
  Alcotest.(check int) "no misfetch" 0 c.Bep.misfetches;
  Alcotest.(check int) "rest correct" 4 c.Bep.cond_correct

let test_btb_uncond_miss_misfetch () =
  let arch = Bep.Btb_arch { entries = 64; assoc = 2 } in
  let ev = { Event.pc = 10; target = 50; kind = Event.Uncond } in
  let sim = feed arch [ ev; ev ] in
  let c = Bep.counts sim in
  Alcotest.(check int) "first miss misfetches" 1 c.Bep.misfetches;
  Alcotest.(check int) "no mispredicts" 0 c.Bep.mispredicts

let test_btb_indirect_target_change () =
  let arch = Bep.Btb_arch { entries = 64; assoc = 2 } in
  let ev target = { Event.pc = 10; target; kind = Event.Indirect_jump } in
  let sim = feed arch [ ev 50; ev 50; ev 70 ] in
  let c = Bep.counts sim in
  (* miss (mispredict), hit with right target (free), hit with stale target
     (mispredict). *)
  Alcotest.(check int) "mispredicts" 2 c.Bep.mispredicts

(* -- relative CPI ------------------------------------------------------------ *)

let test_relative_cpi () =
  let sim = feed Bep.Static_fallthrough [ cond_ev ~taken:true ~taken_target:50 () ] in
  (* bep = 4; aligned program ran 978 instructions, original 1000. *)
  Alcotest.(check (float 1e-9)) "relative cpi" 0.982
    (Bep.relative_cpi sim ~insns:978 ~orig_insns:1000)

(* -- runner ------------------------------------------------------------------- *)

let loop_program () =
  (* An entry block in front of the loop header, so rotation is possible
     (the procedure entry itself can never move). *)
  let open Ba_ir in
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:2 (Term.Jump 1);
        Block.make ~insns:4
          (Term.Cond { on_true = 2; on_false = 3; behavior = Behavior.Loop 100 });
        Block.make ~insns:4 (Term.Jump 1);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"runner" ~seed:4 [| main |]

let test_runner_multiple_archs () =
  let prog = loop_program () in
  let image = Ba_layout.Image.original prog in
  let out =
    Runner.simulate
      ~archs:[ Bep.Static_fallthrough; Bep.Static_btfnt; Bep.Pht_direct { entries = 64 } ]
      image
  in
  Alcotest.(check int) "three sims" 3 (Array.length out.Runner.sims);
  (* All sims saw the same conditionals. *)
  Array.iter
    (fun (_, sim) -> Alcotest.(check int) "cond count" 100 (Bep.counts sim).Bep.cond)
    out.Runner.sims;
  let cpis = Runner.relative_cpis out ~orig_insns:out.Runner.result.Engine.insns in
  List.iter (fun (_, cpi) -> Alcotest.(check bool) "cpi >= 1" true (cpi >= 1.0)) cpis

let test_runner_stats_attached () =
  let prog = loop_program () in
  let out = Runner.simulate ~archs:[ Bep.Static_fallthrough ] (Ba_layout.Image.original prog) in
  Alcotest.(check (float 0.01)) "fall-through pct" 99.0
    (Trace_stats.pct_cond_fallthrough out.Runner.stats)

(* -- Alpha model --------------------------------------------------------------- *)

let test_alpha_cycles () =
  let alpha = Alpha.create () in
  (* one misfetch (uncond), one mispredict (indirect) *)
  Alpha.on_event alpha { Event.pc = 10; target = 50; kind = Event.Uncond };
  Alpha.on_event alpha { Event.pc = 20; target = 80; kind = Event.Indirect_jump };
  Alcotest.(check int) "misfetches" 1 (Alpha.misfetches alpha);
  Alcotest.(check int) "mispredicts" 1 (Alpha.mispredicts alpha);
  (* 100 insns dual-issue = 50 cycles + 0.7 * 1 + 5. *)
  Alcotest.(check (float 1e-9)) "cycles" 55.7 (Alpha.cycles alpha ~insns:100)

let test_alpha_learns_loop () =
  (* A backward loop branch is predicted taken from the first sight (BT/FNT
     fill) and stays predicted by its history bit. *)
  let alpha = Alpha.create () in
  for _ = 1 to 50 do
    Alpha.on_event alpha
      { Event.pc = 100; target = 50; kind = Event.Cond { taken = true; taken_target = 50 } }
  done;
  Alcotest.(check int) "no mispredicts" 0 (Alpha.mispredicts alpha);
  Alcotest.(check int) "misfetch per iteration" 50 (Alpha.misfetches alpha)

let test_alpha_alignment_helps_end_to_end () =
  (* The while-loop program: alignment removes the hot back jump, so the
     Alpha model must report fewer cycles. *)
  let prog = loop_program () in
  let profile = Engine.profile_program prog in
  let r_orig, a_orig = Runner.simulate_alpha (Ba_layout.Image.original prog) in
  let aligned =
    Ba_core.Align.image (Ba_core.Align.Tryn 15) ~arch:Ba_core.Cost_model.Btb profile
  in
  let r_al, a_al = Runner.simulate_alpha aligned in
  let c_orig = Alpha.cycles a_orig ~insns:r_orig.Engine.insns in
  let c_al = Alpha.cycles a_al ~insns:r_al.Engine.insns in
  Alcotest.(check bool)
    (Printf.sprintf "aligned (%.0f) < original (%.0f)" c_al c_orig)
    true (c_al < c_orig)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~name:"bep is non-negative and bounded" ~count:50 Gen_prog.program_arb
      (fun p ->
        let image = Ba_layout.Image.original p in
        let out =
          Runner.simulate ~max_steps:2_000
            ~archs:
              [
                Bep.Static_fallthrough;
                Bep.Pht_gshare { entries = 256; history_bits = 8 };
                Bep.Btb_arch { entries = 64; assoc = 2 };
              ]
            image
        in
        Array.for_all
          (fun (_, sim) ->
            let b = Bep.bep sim in
            b >= 0 && b <= 5 * out.Runner.result.Engine.branches)
          out.Runner.sims);
    Test.make ~name:"cond counts agree across architectures" ~count:50
      Gen_prog.program_arb (fun p ->
        let image = Ba_layout.Image.original p in
        let out =
          Runner.simulate ~max_steps:2_000
            ~archs:[ Bep.Static_fallthrough; Bep.Static_btfnt ] image
        in
        match out.Runner.sims with
        | [| (_, a); (_, b) |] -> (Bep.counts a).Bep.cond = (Bep.counts b).Bep.cond
        | _ -> false);
  ]

let suites =
  [
    ( "sim.bep.static",
      [
        Alcotest.test_case "fallthrough rule" `Quick test_fallthrough_rule;
        Alcotest.test_case "btfnt rule" `Quick test_btfnt_rule;
        Alcotest.test_case "uncond/call misfetch" `Quick test_uncond_call_misfetch;
        Alcotest.test_case "indirect mispredict" `Quick test_indirect_mispredict;
        Alcotest.test_case "return stack" `Quick test_return_stack_predicts;
        Alcotest.test_case "pht learns" `Quick test_pht_learns;
        Alcotest.test_case "likely hints" `Quick test_likely_uses_hints;
      ] );
    ( "sim.bep.btb",
      [
        Alcotest.test_case "taken hit free" `Quick test_btb_taken_hit_free;
        Alcotest.test_case "uncond miss" `Quick test_btb_uncond_miss_misfetch;
        Alcotest.test_case "indirect target change" `Quick test_btb_indirect_target_change;
      ] );
    ( "sim.metrics",
      [ Alcotest.test_case "relative cpi" `Quick test_relative_cpi ] );
    ( "sim.runner",
      [
        Alcotest.test_case "multiple archs" `Quick test_runner_multiple_archs;
        Alcotest.test_case "stats attached" `Quick test_runner_stats_attached;
      ] );
    ( "sim.alpha",
      [
        Alcotest.test_case "cycles" `Quick test_alpha_cycles;
        Alcotest.test_case "learns loop" `Quick test_alpha_learns_loop;
        Alcotest.test_case "alignment helps" `Quick test_alpha_alignment_helps_end_to_end;
      ] );
    ("sim.properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
  ]
