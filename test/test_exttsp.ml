(* The ExtTSP / inter-procedural differential test wall.

   The load-bearing property is bit-equality of the incremental chain
   evaluator: after every single merge, across every built-in workload's
   every procedure (and again on QCheck-random programs),
   {!Ba_core.Exttsp.Eval.total} must equal {!Eval.scratch_total} — the
   same objective recomputed from first principles — as raw floats, not
   within a tolerance.  Around that wall sit the guard property (ExtTsp
   never loses to Greedy under the ExtTSP objective), the verification
   wall (every ExtTsp layout and every stitched inter-procedural image
   bisimulation-proved and cost-certified), the stitching invariants
   (inter-procedural address assignment changes no per-procedure
   [Layout_cost.branch_cost] and no static-predictor penalty total), and
   hand-built adversarial programs gen_prog cannot produce: recursive
   call chains, single-block procedures, an all-cold procedure. *)

open Ba_core

let wall_steps = Matrix.wall_steps
let qcheck_steps = 2_000

(* Deterministic QCheck stream; override with QCHECK_SEED.  The seed is
   part of every property's name, so a failure always names the stream
   that produced it. *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0x5eed)
  | None -> 0x5eed

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~long:false
    ~rand:(Random.State.make [| qcheck_seed |])
    test

(* Bit-equality: Alcotest's float testable with a zero epsilon. *)
let exact = Alcotest.float 0.0

let exttsp_decisions ~profile program =
  Matrix.decisions_for ~profile program Align.ExtTsp
    ~arch:(Matrix.arch_for Align.ExtTsp)

(* ------------------------------------------------------------------ *)
(* The incremental-evaluator wall: drive the merge loop one step at a
   time; after every merge the cached total must be bit-equal to the
   from-scratch recomputation, the reported best gain must price like
   [merge_gain], and applying it must move the total by that gain. *)

let drive_eval ~what profile pid =
  let ev = Exttsp.Eval.create profile pid in
  let check_bit_equal tag =
    Alcotest.check exact
      (Printf.sprintf "%s: total = scratch_total %s" what tag)
      (Exttsp.Eval.scratch_total ev)
      (Exttsp.Eval.total ev)
  in
  check_bit_equal "initially";
  let merges = ref 0 in
  let rec loop () =
    match Exttsp.Eval.best_merge ev with
    | None -> ()
    | Some (a, b, gain) ->
      let before = Exttsp.Eval.total ev in
      Alcotest.check (Alcotest.float 1e-6)
        (Printf.sprintf "%s: best_merge gain prices like merge_gain" what)
        (Exttsp.Eval.merge_gain ev a b)
        gain;
      Exttsp.Eval.merge ev a b;
      incr merges;
      check_bit_equal (Printf.sprintf "after merge %d" !merges);
      Alcotest.check (Alcotest.float 1e-6)
        (Printf.sprintf "%s: merge %d moved the total by its gain" what !merges)
        (before +. gain)
        (Exttsp.Eval.total ev);
      loop ()
  in
  loop ();
  (* The final concatenated order can only add cross-chain credit the
     chain-set total did not count. *)
  let edges = Exttsp.edges_of profile pid in
  let sizes =
    Exttsp.sizes_of (Ba_ir.Program.proc (Ba_cfg.Profile.program profile) pid)
  in
  let final = Exttsp.score_order ~sizes ~edges (Exttsp.Eval.order ev) in
  if final < Exttsp.Eval.total ev -. 1e-9 then
    Alcotest.failf "%s: concatenated order scores %.9f < chain total %.9f" what
      final (Exttsp.Eval.total ev);
  !merges

let test_incremental_wall () =
  let merges = ref 0 and procs = ref 0 in
  Matrix.iter_traced (fun w program profile _trace ->
      for pid = 0 to Ba_ir.Program.n_procs program - 1 do
        incr procs;
        merges :=
          !merges
          + drive_eval
              ~what:(Printf.sprintf "%s/p%d" w.Ba_workloads.Spec.name pid)
              profile pid
      done);
  (* The CI step summary greps this line out of the test log. *)
  Printf.printf
    "exttsp wall: %d merges bit-exact across %d procs, %d workloads\n%!"
    !merges !procs
    (List.length Ba_workloads.Spec.all)

(* ------------------------------------------------------------------ *)
(* The guard property: align_proc scores Pettis-Hansen's layout too and
   keeps the better, so under the ExtTSP objective it can never lose. *)

let test_never_worse_than_greedy () =
  Matrix.iter_traced (fun w program profile _trace ->
      let ext = exttsp_decisions ~profile program in
      let greedy =
        Matrix.decisions_for ~profile program Align.Greedy
          ~arch:(Matrix.arch_for Align.Greedy)
      in
      for pid = 0 to Ba_ir.Program.n_procs program - 1 do
        let se = Exttsp.score_decision profile pid ext.(pid) in
        let sg = Exttsp.score_decision profile pid greedy.(pid) in
        if se < sg -. 1e-9 then
          Alcotest.failf "%s/p%d: exttsp scores %.9f < greedy %.9f"
            w.Ba_workloads.Spec.name pid se sg
      done)

(* ------------------------------------------------------------------ *)
(* The verification wall: every workload's ExtTsp layout, plain and
   stitched, bisimulation-proved and cost-certified on every
   architecture; the stitched image additionally passes the image-level
   structural checks (cross-procedure overlap, cold-section gaps). *)

let test_verify_wall () =
  let images = ref 0 and certs = ref 0 in
  Matrix.iter_traced (fun w program profile _trace ->
      let decisions = exttsp_decisions ~profile program in
      let plain = Ba_layout.Image.build ~profile program decisions in
      let ip = Ba_layout.Image.build_interproc ~profile program decisions in
      List.iter
        (fun (tag, image) ->
          incr images;
          let bisim, certificates, cert_diags, _audit =
            Ba_verify.Run.verify_image ~audit:false
              ~workload:w.Ba_workloads.Spec.name
              ~algo:(Align.algo_name Align.ExtTsp) ~profile image
          in
          let fail_on_errors pass diags =
            List.iter
              (fun d ->
                if Ba_analysis.Diagnostic.is_error d then
                  Alcotest.failf "%s/%s %s: %a" w.Ba_workloads.Spec.name tag
                    pass Ba_analysis.Diagnostic.pp d)
              diags
          in
          fail_on_errors "bisim" bisim;
          fail_on_errors "certification" cert_diags;
          if certificates = [] then
            Alcotest.failf "%s/%s: no cost certificates issued"
              w.Ba_workloads.Spec.name tag;
          certs := !certs + List.length certificates)
        [ ("plain", plain); ("interproc", ip.Ba_layout.Image.image) ];
      List.iter
        (fun d ->
          if Ba_analysis.Diagnostic.is_error d then
            Alcotest.failf "%s/interproc image check: %a"
              w.Ba_workloads.Spec.name Ba_analysis.Diagnostic.pp d)
        (Ba_analysis.Check_image.check ip.Ba_layout.Image.image));
  Printf.printf "exttsp verify wall: %d images proved, %d certificates\n%!"
    !images !certs

(* ------------------------------------------------------------------ *)
(* Stitching invariants.  build_interproc keeps every decision, so each
   procedure's lowered code is identical and the exact cost model must
   price it identically under every architecture; and because addresses
   stay strictly increasing with layout position inside each procedure,
   branch direction — all a static predictor sees — is preserved, so
   the static-architecture penalty totals of a full replay are equal. *)

let check_branch_costs ~what program profile plain stitched =
  for pid = 0 to Ba_ir.Program.n_procs program - 1 do
    List.iter
      (fun arch ->
        let cost (image : Ba_layout.Image.t) =
          Layout_cost.branch_cost ~arch
            ~visits:(fun b -> Ba_cfg.Profile.visits profile pid b)
            ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile pid b)
            image.Ba_layout.Image.linears.(pid)
        in
        Alcotest.check exact
          (Printf.sprintf "%s: p%d %s branch cost unchanged by stitching"
             what pid (Cost_model.arch_name arch))
          (cost plain) (cost stitched))
      Cost_model.all_arches
  done

let static_penalties ~max_steps ~trace ~profile image =
  (* The likely-bit table is indexed by branch address, so each image
     gets its own build; the per-site hints are identical because both
     images lower the same decisions, so equality still isolates
     address-independence. *)
  let archs =
    [
      Ba_sim.Bep.Static_fallthrough;
      Ba_sim.Bep.Static_btfnt;
      Ba_sim.Bep.Static_likely (Ba_predict.Likely_bits.build image profile);
    ]
  in
  let out = Ba_sim.Runner.simulate ~max_steps ~trace ~archs image in
  Array.map (fun (_, sim) -> Ba_sim.Bep.bep sim) out.Ba_sim.Runner.sims

let check_static_penalties ~what ~max_steps ~trace ~profile plain stitched =
  let before = static_penalties ~max_steps ~trace ~profile plain in
  let after = static_penalties ~max_steps ~trace ~profile stitched in
  Array.iteri
    (fun i want ->
      Alcotest.(check int)
        (Printf.sprintf "%s: static arch %d penalty unchanged by stitching"
           what i)
        want after.(i))
    before

let test_stitching_invariants () =
  Matrix.iter_traced (fun w program profile trace ->
      let decisions = exttsp_decisions ~profile program in
      let plain = Ba_layout.Image.build ~profile program decisions in
      let ip = Ba_layout.Image.build_interproc ~profile program decisions in
      let stitched = ip.Ba_layout.Image.image in
      let what = w.Ba_workloads.Spec.name in
      check_branch_costs ~what program profile plain stitched;
      check_static_penalties ~what ~max_steps:wall_steps ~trace ~profile plain
        stitched)

(* ------------------------------------------------------------------ *)
(* Adversarial programs the random generators cannot produce: gen_prog
   only ever calls higher procedure ids, so recursion — and with it the
   call-graph cycles Pettis-Hansen chaining has to break — needs
   hand-built cases.  Each case must survive the full treatment: ExtTsp
   alignment, stitching, per-procedure bisimulation, the image checks,
   and both stitching invariants. *)

(* The stitcher's address contract: inside every procedure the hot
   prefix (layout positions below the split) sits below [hot_size] and
   the cold suffix at or above it. *)
let check_split_addresses name (ip : Ba_layout.Image.interproc) =
  Array.iteri
    (fun pid (linear : Ba_layout.Linear.t) ->
      Array.iteri
        (fun pos (lb : Ba_layout.Linear.lblock) ->
          let hot = pos < ip.Ba_layout.Image.splits.(pid) in
          if hot <> (lb.Ba_layout.Linear.addr < ip.Ba_layout.Image.hot_size)
          then
            Alcotest.failf
              "%s: p%d layout position %d (%s) at address %d, cold section \
               starts at %d"
              name pid pos
              (if hot then "hot" else "cold")
              lb.Ba_layout.Linear.addr ip.Ba_layout.Image.hot_size)
        linear.Ba_layout.Linear.blocks)
    ip.Ba_layout.Image.image.Ba_layout.Image.linears

let check_program name program =
  let profile, trace =
    Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
  in
  let decisions = exttsp_decisions ~profile program in
  let plain = Ba_layout.Image.build ~profile program decisions in
  let ip = Ba_layout.Image.build_interproc ~profile program decisions in
  let stitched = ip.Ba_layout.Image.image in
  check_split_addresses name ip;
  Array.iteri
    (fun pid linear ->
      match Ba_verify.Bisim.verify ~proc_id:pid linear with
      | Ok _ -> ()
      | Error diags ->
        Alcotest.failf "%s: p%d stitched bisim: %a" name pid
          Ba_analysis.Diagnostic.pp (List.hd diags))
    stitched.Ba_layout.Image.linears;
  List.iter
    (fun d ->
      if Ba_analysis.Diagnostic.is_error d then
        Alcotest.failf "%s: image check: %a" name Ba_analysis.Diagnostic.pp d)
    (Ba_analysis.Check_image.check stitched);
  check_branch_costs ~what:name program profile plain stitched;
  check_static_penalties ~what:name ~max_steps:qcheck_steps ~trace ~profile
    plain stitched;
  ip

let recursive_program () =
  let open Ba_ir in
  (* main calls p1; p1 and p2 call each other, bounded by the Loop
     behavior (true three times, then false) — a call-graph cycle. *)
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:2 (Term.Call { callee = 1; next = 1 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let p1 =
    Proc.make ~name:"ping"
      [|
        Block.make ~insns:3
          (Term.Cond { on_true = 1; on_false = 2; behavior = Behavior.Loop 4 });
        Block.make ~insns:2 (Term.Call { callee = 2; next = 2 });
        Block.make ~insns:1 Term.Ret;
      |]
  in
  let p2 =
    Proc.make ~name:"pong"
      [|
        Block.make ~insns:2 (Term.Call { callee = 1; next = 1 });
        Block.make ~insns:1 Term.Ret;
      |]
  in
  Program.make ~name:"recursive" ~seed:0 [| main; p1; p2 |]

let single_block_program () =
  let open Ba_ir in
  (* Leaf procedures that are nothing but a Ret: one-chain, one-block
     layouts that the chain merger and the stitcher must both leave
     alone. *)
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:1 (Term.Call { callee = 1; next = 1 });
        Block.make ~insns:2 (Term.Call { callee = 2; next = 2 });
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let leaf name insns = Proc.make ~name [| Block.make ~insns Term.Ret |] in
  Program.make ~name:"single_block" ~seed:0
    [| main; leaf "tiny" 1; leaf "small" 5 |]

let all_cold_program () =
  let open Ba_ir in
  (* A statically-reachable but never-executed block in main, and a whole
     procedure that is never called: every block cold, so the stitcher's
     cold section swallows the entire procedure. *)
  let main =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:2
          (Term.Cond
             { on_true = 1; on_false = 2; behavior = Behavior.Always false });
        Block.make ~insns:3 (Term.Jump 2);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  let dead =
    Proc.make ~name:"dead"
      [|
        Block.make ~insns:4
          (Term.Cond
             { on_true = 2; on_false = 1; behavior = Behavior.Always true });
        Block.make ~insns:2 Term.Ret;
        Block.make ~insns:1 (Term.Jump 1);
      |]
  in
  Program.make ~name:"all_cold" ~seed:0 [| main; dead |]

let test_adversarial_recursion () =
  ignore (check_program "recursive" (recursive_program ()))

let test_adversarial_single_block () =
  let ip = check_program "single_block" (single_block_program ()) in
  (* A one-block procedure has nothing to split. *)
  Alcotest.(check int) "single-block leaf p1 unsplit" 1
    ip.Ba_layout.Image.splits.(1)

let test_adversarial_all_cold () =
  let ip = check_program "all_cold" (all_cold_program ()) in
  (* The never-called procedure must actually be split: the entry stays
     hot by the stitcher's contract, but its cold suffix (everything its
     Ret does not fall through to) moves to the trailing cold section. *)
  let n_blocks =
    Array.length
      ip.Ba_layout.Image.image.Ba_layout.Image.linears.(1)
        .Ba_layout.Linear.blocks
  in
  if ip.Ba_layout.Image.splits.(1) >= n_blocks then
    Alcotest.failf "all_cold: dead procedure not split (split %d of %d blocks)"
      ip.Ba_layout.Image.splits.(1) n_blocks

(* ------------------------------------------------------------------ *)
(* QCheck: random programs.  The nine-spec property reuses Ba_delta's
   incremental evaluator as a second independent pricing of the ExtTsp
   layout — the same spec list test_delta's wall sweeps. *)

let specs9 =
  let open Ba_delta in
  [|
    Eval.Fallthrough;
    Eval.Btfnt;
    Eval.Likely;
    Eval.Pht_direct { entries = 4096 };
    Eval.Pht_gshare { entries = 4096; history_bits = 12 };
    Eval.Btb { entries = 64; assoc = 2 };
    Eval.Btb { entries = 256; assoc = 4 };
    Eval.Pht_global { history_bits = 8 };
    Eval.Pht_local { history_bits = 8; branch_entries = 64 };
  |]

let prop_incremental_random =
  QCheck.Test.make ~count:30
    ~name:
      (Printf.sprintf
         "exttsp: incremental total bit-equal to scratch on random programs \
          (seed %d)"
         qcheck_seed)
    Gen_prog.program_arb
    (fun program ->
      let profile = Ba_exec.Engine.profile_program ~max_steps:qcheck_steps program in
      for pid = 0 to Ba_ir.Program.n_procs program - 1 do
        let ev = Exttsp.Eval.create profile pid in
        let check tag =
          let t = Exttsp.Eval.total ev
          and s = Exttsp.Eval.scratch_total ev in
          if t <> s then
            QCheck.Test.fail_reportf "p%d %s: total %.17g <> scratch %.17g" pid
              tag t s
        in
        check "initially";
        let rec loop n =
          match Exttsp.Eval.best_merge ev with
          | None -> ()
          | Some (a, b, _) ->
            Exttsp.Eval.merge ev a b;
            check (Printf.sprintf "after merge %d" n);
            loop (n + 1)
        in
        loop 1
      done;
      true)

let prop_nine_spec_differential =
  QCheck.Test.make ~count:15
    ~name:
      (Printf.sprintf
         "exttsp: layout priced exactly on 9 predictor specs (seed %d)"
         qcheck_seed)
    Gen_prog.program_arb
    (fun program ->
      let profile, trace =
        Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
      in
      let decisions = exttsp_decisions ~profile program in
      let ev = Ba_delta.Eval.create ~specs:specs9 profile trace decisions in
      let got = Ba_delta.Eval.cost ev decisions in
      let image = Ba_layout.Image.build ~profile program decisions in
      let archs =
        Array.to_list
          (Array.map (fun s -> Ba_delta.Eval.to_arch s ~image ~profile) specs9)
      in
      let out =
        Ba_sim.Runner.simulate ~max_steps:qcheck_steps ~trace ~archs image
      in
      Array.iteri
        (fun i (_, sim) ->
          let want = Ba_sim.Bep.bep sim in
          if want <> got.(i) then
            QCheck.Test.fail_reportf "[%s] replay %d <> incremental %d"
              (Ba_delta.Eval.spec_label specs9.(i))
              want got.(i))
        out.Ba_sim.Runner.sims;
      true)

let prop_interproc_random =
  QCheck.Test.make ~count:15
    ~name:
      (Printf.sprintf
         "interproc: stitching proved and static penalties preserved on \
          random programs (seed %d)"
         qcheck_seed)
    Gen_prog.program_arb
    (fun program ->
      let profile, trace =
        Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
      in
      let decisions = exttsp_decisions ~profile program in
      let plain = Ba_layout.Image.build ~profile program decisions in
      let ip = Ba_layout.Image.build_interproc ~profile program decisions in
      let stitched = ip.Ba_layout.Image.image in
      Array.iteri
        (fun pid linear ->
          match Ba_verify.Bisim.verify ~proc_id:pid linear with
          | Ok _ -> ()
          | Error diags ->
            QCheck.Test.fail_reportf "p%d stitched bisim: %s" pid
              (Format.asprintf "%a" Ba_analysis.Diagnostic.pp (List.hd diags)))
        stitched.Ba_layout.Image.linears;
      List.iter
        (fun d ->
          if Ba_analysis.Diagnostic.is_error d then
            QCheck.Test.fail_reportf "image check: %s"
              (Format.asprintf "%a" Ba_analysis.Diagnostic.pp d))
        (Ba_analysis.Check_image.check stitched);
      let before =
        static_penalties ~max_steps:qcheck_steps ~trace ~profile plain
      in
      let after =
        static_penalties ~max_steps:qcheck_steps ~trace ~profile stitched
      in
      Array.iteri
        (fun i want ->
          if want <> after.(i) then
            QCheck.Test.fail_reportf
              "static arch %d: plain penalty %d <> stitched %d" i want
              after.(i))
        before;
      true)

let suites =
  [
    ( "exttsp",
      [
        Alcotest.test_case "incremental wall: 24 workloads bit-exact" `Slow
          test_incremental_wall;
        Alcotest.test_case "never worse than Greedy on the objective" `Slow
          test_never_worse_than_greedy;
        Alcotest.test_case "verify wall: plain + interproc proved" `Slow
          test_verify_wall;
        Alcotest.test_case "stitching preserves costs and static penalties"
          `Slow test_stitching_invariants;
        Alcotest.test_case "adversarial: recursive call chain" `Quick
          test_adversarial_recursion;
        Alcotest.test_case "adversarial: single-block procedures" `Quick
          test_adversarial_single_block;
        Alcotest.test_case "adversarial: all-cold procedure" `Quick
          test_adversarial_all_cold;
        to_alcotest prop_incremental_random;
        to_alcotest prop_nine_spec_differential;
        to_alcotest prop_interproc_random;
      ] );
  ]
