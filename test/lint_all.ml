(* The lint-all matrix: every built-in workload, linted end-to-end under
   every alignment algorithm and every architectural cost model.  Runs as
   part of `dune runtest`; any Error-severity diagnostic fails the build
   with its rule id and location printed.

   The 600 cells run on a Ba_par.Pool (BA_JOBS-many domains; BA_JOBS=1
   forces the sequential path).  Each workload is profiled once via the
   Ba_workloads.Profiled memo and the profile shared across its algorithm
   × architecture cells — concurrent cells of the same workload block on
   the memo rather than re-profiling.  Results come back in cell order, so
   the report below is byte-identical whatever the scheduling. *)

let algos = Matrix.algos

(* Enough budget that every workload's control-flow signature is fully
   exercised; completion is not required (truncation is lint-legal). *)
let max_steps = 60_000

let () =
  let cells =
    List.concat_map
      (fun (w : Ba_workloads.Spec.t) ->
        List.concat_map
          (fun algo ->
            List.map (fun arch -> (w, algo, arch)) Ba_core.Cost_model.all_arches)
          algos)
      Ba_workloads.Spec.all
  in
  let results =
    Ba_par.Pool.with_pool (fun pool ->
        Ba_par.Pool.map pool
          (fun ((w : Ba_workloads.Spec.t), algo, arch) ->
            let program, profile = Ba_workloads.Profiled.get ~max_steps w in
            (w, algo, arch, Ba_analysis.Run.check_pipeline ~arch ~profile ~algo program))
          cells)
  in
  let failed = ref 0 in
  List.iter
    (fun ((w : Ba_workloads.Spec.t), algo, arch, report) ->
      let errs = Ba_analysis.Run.error_count report in
      if errs > 0 then begin
        incr failed;
        Printf.printf "FAIL %-12s %-8s %-11s %d error%s\n" w.name
          (Ba_core.Align.algo_name algo)
          (Ba_core.Cost_model.arch_name arch)
          errs
          (if errs = 1 then "" else "s");
        List.iter
          (fun d ->
            if Ba_analysis.Diagnostic.is_error d then
              Format.printf "  %a@." Ba_analysis.Diagnostic.pp d)
          (Ba_analysis.Run.diagnostics report)
      end)
    results;
  let hits, misses = Ba_workloads.Profiled.stats () in
  if !failed > 0 then begin
    Printf.printf "lint-all: %d of %d workload/algo/arch combinations failed\n"
      !failed (List.length results);
    exit 1
  end
  else
    Printf.printf
      "lint-all: %d workload/algo/arch combinations, no errors (%d profiles \
       computed, %d cells served from the memo)\n"
      (List.length results) misses hits
