(* The verify-all matrix: every built-in workload, verified end-to-end
   under every alignment algorithm.  For each pair the pipeline is linted,
   the lowered layout is proved equivalent to its source CFG (translation
   validation), its expected cost is certified on every architecture
   against an independent recomputation, and the optimality audit runs.
   Any Error-severity diagnostic — or a pair that fails to produce a full
   certificate set — fails the build.

   The 120 pairs run on a Ba_par.Pool (BA_JOBS-many domains), each
   workload profiled once via the Ba_workloads.Profiled memo exactly as
   lint_all does; the per-pair certificate list keeps architecture order,
   so every digest matches the sequential run's. *)

let algos = Matrix.algos

let max_steps = 60_000

let () =
  let pairs =
    List.concat_map
      (fun (w : Ba_workloads.Spec.t) -> List.map (fun algo -> (w, algo)) algos)
      Ba_workloads.Spec.all
  in
  let results =
    Ba_par.Pool.with_pool (fun pool ->
        Ba_par.Pool.map pool
          (fun ((w : Ba_workloads.Spec.t), algo) ->
            let program, profile = Ba_workloads.Profiled.get ~max_steps w in
            (w, algo, Ba_verify.Run.verify_pipeline ~profile ~algo program))
          pairs)
  in
  let failed = ref 0 and certificates = ref 0 in
  List.iter
    (fun ((w : Ba_workloads.Spec.t), algo, result) ->
      certificates := !certificates + List.length result.Ba_verify.Run.certificates;
      let errs = Ba_verify.Run.error_count result in
      if errs > 0 || not result.Ba_verify.Run.verified then begin
        incr failed;
        Printf.printf "FAIL %-12s %-8s %sverified, %d error%s\n" w.name
          (Ba_core.Align.algo_name algo)
          (if result.Ba_verify.Run.verified then "" else "not ")
          errs
          (if errs = 1 then "" else "s");
        List.iter
          (fun d ->
            if Ba_analysis.Diagnostic.is_error d then
              Format.printf "  %a@." Ba_analysis.Diagnostic.pp d)
          (Ba_verify.Run.diagnostics result)
      end)
    results;
  if !failed > 0 then begin
    Printf.printf "verify-all: %d of %d workload/algo pairs failed\n" !failed
      (List.length results);
    exit 1
  end
  else
    Printf.printf "verify-all: %d workload/algo pairs verified, %d certificates issued\n"
      (List.length results) !certificates
