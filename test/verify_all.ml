(* The verify-all matrix: every built-in workload, verified end-to-end
   under every alignment algorithm.  For each pair the pipeline is linted,
   the lowered layout is proved equivalent to its source CFG (translation
   validation), its expected cost is certified on every architecture
   against an independent recomputation, and the optimality audit runs.
   Any Error-severity diagnostic — or a pair that fails to produce a full
   certificate set — fails the build.

   Each workload is profiled once and the profile reused across the
   algorithms, exactly as lint_all does. *)

let algos =
  [
    Ba_core.Align.Original;
    Ba_core.Align.Greedy;
    Ba_core.Align.Cost;
    Ba_core.Align.Tryn 15;
  ]

let max_steps = 60_000

let () =
  let failed = ref 0 and runs = ref 0 and certificates = ref 0 in
  List.iter
    (fun (w : Ba_workloads.Spec.t) ->
      let program = w.Ba_workloads.Spec.build () in
      let profile = Ba_exec.Engine.profile_program ~max_steps program in
      List.iter
        (fun algo ->
          incr runs;
          let result = Ba_verify.Run.verify_pipeline ~profile ~algo program in
          certificates := !certificates + List.length result.Ba_verify.Run.certificates;
          let errs = Ba_verify.Run.error_count result in
          if errs > 0 || not result.Ba_verify.Run.verified then begin
            incr failed;
            Printf.printf "FAIL %-12s %-8s %sverified, %d error%s\n" w.name
              (Ba_core.Align.algo_name algo)
              (if result.Ba_verify.Run.verified then "" else "not ")
              errs
              (if errs = 1 then "" else "s");
            List.iter
              (fun d ->
                if Ba_analysis.Diagnostic.is_error d then
                  Format.printf "  %a@." Ba_analysis.Diagnostic.pp d)
              (Ba_verify.Run.diagnostics result)
          end)
        algos)
    Ba_workloads.Spec.all;
  if !failed > 0 then begin
    Printf.printf "verify-all: %d of %d workload/algo pairs failed\n" !failed !runs;
    exit 1
  end
  else
    Printf.printf
      "verify-all: %d workload/algo pairs verified, %d certificates issued\n"
      !runs !certificates
