(* Tests for Ba_analysis: profile flow conservation on hand-built
   profiles, decision linting, and the corrupted-decision path through
   Run.check_layout that backs the CLI's non-zero exit. *)

open Ba_ir
open Ba_analysis

let cond ?(behavior = Behavior.Bias 0.9) t f =
  Term.Cond { on_true = t; on_false = f; behavior }

(* A single-procedure program with a counted loop:
   b0 (entry) -> b1 (loop head, cond) -> b2 (body) -> b1, exit to b3. *)
let loop_program () =
  let p =
    Proc.make ~name:"loop"
      [|
        Block.make (Term.Jump 1);
        Block.make (cond 2 3);
        Block.make (Term.Jump 1);
        Block.make Term.Halt;
      |]
  in
  Program.make ~name:"toy_loop" [| p |]

(* Hand-record a conserved profile: program start enters b0 once, the
   loop runs nine iterations, then exits.  Every counter satisfies the
   Kirchhoff laws exactly. *)
let conserved_profile program =
  let pr = Ba_cfg.Profile.create program in
  let visit b n =
    for _ = 1 to n do
      Ba_cfg.Profile.record_visit pr 0 b
    done
  in
  visit 0 1;
  visit 1 10;
  for _ = 1 to 9 do
    Ba_cfg.Profile.record_cond pr 0 1 true
  done;
  Ba_cfg.Profile.record_cond pr 0 1 false;
  visit 2 9;
  visit 3 1;
  pr

let has_rule rule diags =
  List.exists (fun d -> d.Diagnostic.rule = rule) diags

let errors diags =
  let e, _, _ = Diagnostic.count diags in
  e

let test_profile_conserved () =
  let program = loop_program () in
  let diags = Check_profile.check (conserved_profile program) in
  Alcotest.(check int) "no findings" 0 (List.length diags)

let test_profile_corrupted_visit () =
  let program = loop_program () in
  let pr = conserved_profile program in
  (* One phantom visit on the loop body: no incoming edge explains it. *)
  Ba_cfg.Profile.record_visit pr 0 2;
  let diags = Check_profile.check pr in
  Alcotest.(check bool) "flow conservation violated" true
    (has_rule "profile/flow-conservation" diags);
  Alcotest.(check bool) "reported as error" true (errors diags > 0)

let test_profile_corrupted_cond () =
  let program = loop_program () in
  let pr = conserved_profile program in
  (* One phantom resolution: true + false no longer sums to the visits. *)
  Ba_cfg.Profile.record_cond pr 0 1 true;
  let diags = Check_profile.check pr in
  Alcotest.(check bool) "cond resolution violated" true
    (has_rule "profile/cond-resolution" diags)

let test_profile_tolerates_one_in_flight () =
  (* A run cut off by the step budget leaves exactly one control transfer
     in flight (the loop body resolved its jump but the head was never
     re-entered); the single missing visit must not be an error. *)
  let program = loop_program () in
  let w = Ba_exec.Engine.profile_program ~max_steps:7 program in
  Alcotest.(check int) "truncated run still conserves" 0
    (errors (Check_profile.check w))

let diamond () =
  Proc.make ~name:"diamond"
    [|
      Block.make (cond 1 2);
      Block.make (Term.Jump 3);
      Block.make (Term.Jump 3);
      Block.make (cond 0 4);
      Block.make Term.Ret;
    |]

let test_decision_non_permutation () =
  let p = diamond () in
  let d = Ba_layout.Decision.of_order [| 0; 1; 1; 3; 4 |] in
  let diags = Check_decision.check ~proc_id:0 p d in
  Alcotest.(check bool) "duplicate flagged" true
    (has_rule "decision/duplicate-block" diags);
  Alcotest.(check bool) "missing flagged" true
    (has_rule "decision/missing-block" diags);
  Alcotest.(check bool) "errors" true (errors diags > 0)

let test_decision_entry_not_first () =
  let p = diamond () in
  let d = Ba_layout.Decision.of_order [| 1; 0; 2; 3; 4 |] in
  let diags = Check_decision.check ~proc_id:0 p d in
  Alcotest.(check bool) "entry not first flagged" true
    (has_rule "decision/entry-not-first" diags)

let test_decision_accepts_valid () =
  let p = diamond () in
  let d = Ba_layout.Decision.of_order [| 0; 3; 1; 2; 4 |] in
  Alcotest.(check int) "clean" 0
    (List.length (Check_decision.check ~proc_id:0 p d))

(* The CLI's failure path: feeding Run.check_layout a corrupted decision
   must produce stage-3 errors and skip lowering entirely. *)
let test_corrupted_decision_through_run () =
  let program = loop_program () in
  let stages =
    Run.check_layout program
      [| Ba_layout.Decision.of_order [| 0; 2; 2; 3 |] |]
  in
  let decision_diags = List.assoc Run.Decision stages in
  Alcotest.(check bool) "decision errors" true (errors decision_diags > 0);
  Alcotest.(check bool) "lowering skipped" false
    (List.mem_assoc Run.Linear stages)

let test_pipeline_clean_on_workload () =
  let w = List.hd Ba_workloads.Spec.all in
  let report =
    Run.check_pipeline ~algo:(Ba_core.Align.Tryn 15) ~max_steps:40_000
      (w.Ba_workloads.Spec.build ())
  in
  Alcotest.(check int) "no errors" 0 (Run.error_count report);
  List.iter
    (fun s ->
      Alcotest.(check bool) (Run.stage_name s ^ " ran") true (Run.ran report s))
    Run.core_stages

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "profile: conserved hand profile" `Quick
          test_profile_conserved;
        Alcotest.test_case "profile: phantom visit caught" `Quick
          test_profile_corrupted_visit;
        Alcotest.test_case "profile: phantom resolution caught" `Quick
          test_profile_corrupted_cond;
        Alcotest.test_case "profile: truncated run tolerated" `Quick
          test_profile_tolerates_one_in_flight;
        Alcotest.test_case "decision: non-permutation rejected" `Quick
          test_decision_non_permutation;
        Alcotest.test_case "decision: entry must be first" `Quick
          test_decision_entry_not_first;
        Alcotest.test_case "decision: valid layout accepted" `Quick
          test_decision_accepts_valid;
        Alcotest.test_case "run: corrupted decision fails layout check" `Quick
          test_corrupted_decision_through_run;
        Alcotest.test_case "run: full pipeline clean on a workload" `Quick
          test_pipeline_clean_on_workload;
      ] );
  ]
