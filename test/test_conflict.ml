(* Tests for Ba_conflict: hand-built interference summaries with exact
   expected counts, a colliding hand program cross-checked against the
   live simulators, QCheck cross-validation of the static conflict maps
   against the Ba_obs aliasing counters, a full-workload agreement wall,
   and the conflict-aware placement invariants (never-worse objective,
   valid padded images, bisimulation + cost certification).

   The cross-validation invariants, and why they hold:

   - direct PHT: static items are exactly the executed conditionals
     (weights come from cond counts, so truncation cannot desynchronise
     them), and the simulator's alias counter fires iff two distinct pcs
     update one counter.  So [alias > 0 <-> conflicts <> []], and alias
     events are bounded by the conflicting occupants' total weight.
   - BTB: the simulator allocates only on taken branches and fills
     invalid ways first, so dynamic allocating pcs are a subset of the
     static taken-weighted sites; no static set over [assoc] items means
     no eviction, ever.
   - RAS: without recursion the dynamic call depth never exceeds the
     static longest-chain bound, so a bound within the stack depth means
     zero overflows.
   - Alpha history lines: a refill fires on every tag mismatch including
     the cold first touch, so refills >= distinct executed conditional
     lines, with equality exactly when no two lines share an index.
   - icache: fetched lines are a subset of the statically weighted lines,
     so a conflict-free map bounds misses by the line count.

   Gshare (dynamic history, projected to zero statically) and the
   two-level table (no alias counter) are deliberately not cross-validated. *)

open Ba_ir
open Ba_conflict

(* ------------------------------------------------------------------ *)
(* Helpers *)

let map_of structure reports =
  match
    List.find_opt (fun r -> r.Analyze.structure = structure) reports
  with
  | Some { Analyze.body = Analyze.Map m; _ } -> m
  | Some _ -> Alcotest.failf "%s: expected a map report" (Structure.name structure)
  | None -> Alcotest.failf "%s: no report" (Structure.name structure)

let ras_of reports =
  match
    List.find_opt
      (fun r ->
        match r.Analyze.body with Analyze.Stack _ -> true | _ -> false)
      reports
  with
  | Some { Analyze.body = Analyze.Stack s; _ } -> s
  | _ -> Alcotest.fail "no RAS report"

(* Run one Bep architecture over [image] in a fresh registry and read the
   named counter.  One architecture per registry — concurrent simulators
   would sum their counters. *)
let sim_counter ?return_stack_depth ?trace ~max_steps ~arch image name =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      ignore
        (Ba_sim.Runner.simulate ?return_stack_depth ?trace ~max_steps
           ~archs:[ arch ] image));
  Ba_obs.Registry.counter_value r name

let alpha_counters ?trace ~max_steps ~config image =
  let r = Ba_obs.Registry.create () in
  Ba_obs.Registry.with_registry r (fun () ->
      ignore (Ba_sim.Runner.simulate_alpha ?trace ~max_steps ~config image));
  ( Ba_obs.Registry.counter_value r "predict.alpha.refill",
    Ba_obs.Registry.counter_value r "predict.icache.miss" )

let conflict_occupant_weight m =
  List.fold_left
    (fun acc c ->
      List.fold_left
        (fun acc o -> acc + o.Analyze.o_weight)
        acc c.Analyze.occupants)
    0 m.Analyze.conflicts

let workload = Matrix.workload

let errors diags =
  let e, _, _ = Ba_analysis.Diagnostic.count diags in
  e

(* ------------------------------------------------------------------ *)
(* Synthetic summaries: of_summary over hand-built sites with counts
   computable on paper. *)

let csite ~block ~offset ~w_true ~w_false =
  {
    Site.proc = 0;
    block;
    offset;
    kind = Site.Cond { taken_on = true; w_true; w_false; taken_off = 0 };
    weight = w_true + w_false;
    taken_weight = w_true;
  }

let jsite ~block ~offset ~weight =
  { Site.proc = 0; block; offset; kind = Site.Jump { cont = false }; weight;
    taken_weight = weight }

let summary ?(sites = []) ?(regions = []) ?(ras_bound = Some 0)
    ?(call_blocks = 0) () =
  { Site.sites; regions; ras_bound; call_blocks }

(* Two conditionals at pcs 3 and 19: a 16-entry direct PHT folds both onto
   index 3 (3 land 15 = 19 land 15); one is taken-biased (6/4), the other
   fall-biased (1/4).  Expected: one conflict, excess = the lighter site's
   full weight (assoc 1), opposing, destructive weight = lighter side. *)
let test_pht_synthetic () =
  let s =
    summary
      ~sites:
        [
          csite ~block:0 ~offset:3 ~w_true:6 ~w_false:4;
          csite ~block:1 ~offset:19 ~w_true:1 ~w_false:4;
        ]
      ()
  in
  let hit = Structure.Pht_direct { entries = 16 } in
  let m = map_of hit (Analyze.of_summary ~suite:[ hit ] ~bases:[| 0 |] s) in
  Alcotest.(check int) "items" 2 m.Analyze.items;
  Alcotest.(check int) "total weight" 15 m.Analyze.total_weight;
  Alcotest.(check int) "used" 1 m.Analyze.used;
  (match m.Analyze.conflicts with
  | [ c ] ->
    Alcotest.(check int) "index" 3 c.Analyze.index;
    Alcotest.(check int) "excess" 5 c.Analyze.excess_weight;
    Alcotest.(check bool) "opposing" true c.Analyze.opposing;
    Alcotest.(check int) "opposing weight" 5 c.Analyze.opposing_weight
  | cs -> Alcotest.failf "expected 1 conflict, got %d" (List.length cs));
  Alcotest.(check int) "conflict weight" 5 m.Analyze.conflict_weight;
  Alcotest.(check int) "destructive pairs" 1 m.Analyze.destructive_pairs;
  Alcotest.(check int) "destructive weight" 5 m.Analyze.destructive_weight;
  (* 32 entries separate indices 3 and 19 *)
  let miss = Structure.Pht_direct { entries = 32 } in
  let m = map_of miss (Analyze.of_summary ~suite:[ miss ] ~bases:[| 0 |] s) in
  Alcotest.(check int) "no conflicts" 0 (List.length m.Analyze.conflicts);
  Alcotest.(check int) "used (wide)" 2 m.Analyze.used

(* Three taken sites at odd pcs all land in set 1 of a 4-entry 2-way BTB;
   the two heaviest fit the ways, the lightest (weight 2) is excess. *)
let test_btb_synthetic () =
  let s =
    summary
      ~sites:
        [
          jsite ~block:0 ~offset:1 ~weight:10;
          jsite ~block:1 ~offset:3 ~weight:6;
          jsite ~block:2 ~offset:5 ~weight:2;
        ]
      ()
  in
  let btb = Structure.Btb { entries = 4; assoc = 2 } in
  let m = map_of btb (Analyze.of_summary ~suite:[ btb ] ~bases:[| 0 |] s) in
  Alcotest.(check int) "items" 3 m.Analyze.items;
  Alcotest.(check int) "used" 1 m.Analyze.used;
  match m.Analyze.conflicts with
  | [ c ] ->
    Alcotest.(check int) "set" 1 c.Analyze.index;
    Alcotest.(check int) "occupants" 3 (List.length c.Analyze.occupants);
    Alcotest.(check int) "excess" 2 c.Analyze.excess_weight
  | cs -> Alcotest.failf "expected 1 conflict, got %d" (List.length cs)

(* Two fetch regions on cache lines 0 and 4 of a 4-line direct-mapped
   icache (4 insns/line): both map to set 0, the lighter line is excess. *)
let test_icache_synthetic () =
  let s =
    summary
      ~regions:
        [
          { Site.r_proc = 0; r_offset = 0; r_size = 4; r_weight = 5 };
          { Site.r_proc = 0; r_offset = 16; r_size = 4; r_weight = 7 };
        ]
      ()
  in
  let ic = Structure.Icache { lines = 4; insns_per_line = 4; assoc = 1 } in
  let m = map_of ic (Analyze.of_summary ~suite:[ ic ] ~bases:[| 0 |] s) in
  Alcotest.(check int) "items" 2 m.Analyze.items;
  match m.Analyze.conflicts with
  | [ c ] ->
    Alcotest.(check int) "set" 0 c.Analyze.index;
    Alcotest.(check int) "excess" 5 c.Analyze.excess_weight
  | cs -> Alcotest.failf "expected 1 conflict, got %d" (List.length cs)

let test_ras_synthetic () =
  let check_ras bound depth expect_overflow =
    let s = summary ~ras_bound:bound ~call_blocks:1 () in
    let r =
      ras_of (Analyze.of_summary ~suite:[ Structure.Ras { depth } ] ~bases:[| 0 |] s)
    in
    Alcotest.(check bool) "overflow possible" expect_overflow
      r.Analyze.overflow_possible;
    Alcotest.(check (option int)) "bound echoed" bound r.Analyze.static_bound
  in
  check_ras (Some 40) 32 true;
  check_ras (Some 3) 32 false;
  check_ras None 32 true

(* ------------------------------------------------------------------ *)
(* A hand program whose collisions are computable from the address map:
   b0 (3 insns, conditional at pc 3, alternating) and b1 (15 insns,
   conditional at pc 19, never taken) collide in a 16-entry PHT with
   opposing majority directions; the back-jump of b2 lands at pc 21, so
   pcs 3 and 21 share the odd set of a 2-entry BTB. *)

let cond ~behavior t f = Term.Cond { on_true = t; on_false = f; behavior }

let colliding_program () =
  let p =
    Proc.make ~name:"main"
      [|
        Block.make ~insns:3
          (cond ~behavior:(Behavior.Pattern [| true; false |]) 1 2);
        Block.make ~insns:15 (cond ~behavior:(Behavior.Always false) 3 2);
        Block.make ~insns:1 (Term.Jump 0);
        Block.make ~insns:1 Term.Halt;
      |]
  in
  Program.make ~name:"colliding" [| p |]

let test_hand_program_static () =
  let program = colliding_program () in
  let profile, _ = Ba_trace.Record.profile_and_record ~max_steps:2_000 program in
  let image = Ba_layout.Image.original ~profile program in
  let hit = Structure.Pht_direct { entries = 16 } in
  let m = map_of hit (Analyze.analyze ~suite:[ hit ] ~profile image) in
  (match m.Analyze.conflicts with
  | [ c ] ->
    Alcotest.(check int) "pht index" 3 c.Analyze.index;
    Alcotest.(check bool) "opposing directions" true c.Analyze.opposing
  | cs -> Alcotest.failf "expected 1 PHT conflict, got %d" (List.length cs));
  let miss = Structure.Pht_direct { entries = 32 } in
  let m = map_of miss (Analyze.analyze ~suite:[ miss ] ~profile image) in
  Alcotest.(check int) "32 entries separate the pair" 0
    (List.length m.Analyze.conflicts);
  let btb = Structure.Btb { entries = 2; assoc = 1 } in
  let m = map_of btb (Analyze.analyze ~suite:[ btb ] ~profile image) in
  match m.Analyze.conflicts with
  | [ c ] -> Alcotest.(check int) "btb set" 1 c.Analyze.index
  | cs -> Alcotest.failf "expected 1 BTB conflict, got %d" (List.length cs)

let test_hand_program_dynamic () =
  let program = colliding_program () in
  let profile, trace =
    Ba_trace.Record.profile_and_record ~max_steps:2_000 program
  in
  let image = Ba_layout.Image.original ~profile program in
  let alias16 =
    sim_counter ~trace ~max_steps:2_000
      ~arch:(Ba_sim.Bep.Pht_direct { entries = 16 })
      image "predict.pht.alias"
  in
  Alcotest.(check bool) "16-entry PHT aliases" true (alias16 > 0);
  let alias32 =
    sim_counter ~trace ~max_steps:2_000
      ~arch:(Ba_sim.Bep.Pht_direct { entries = 32 })
      image "predict.pht.alias"
  in
  Alcotest.(check int) "32-entry PHT alias-free" 0 alias32

(* ------------------------------------------------------------------ *)
(* Static call-depth bounds *)

let call_chain_program () =
  let main =
    Proc.make ~name:"main"
      [| Block.make (Term.Call { callee = 1; next = 1 }); Block.make Term.Halt |]
  in
  let mid =
    Proc.make ~name:"mid"
      [| Block.make (Term.Call { callee = 2; next = 1 }); Block.make Term.Ret |]
  in
  let leaf = Proc.make ~name:"leaf" [| Block.make Term.Ret |] in
  Program.make ~name:"chain" [| main; mid; leaf |]

let recursive_program () =
  let main =
    Proc.make ~name:"main"
      [| Block.make (Term.Call { callee = 1; next = 1 }); Block.make Term.Halt |]
  in
  let back =
    Proc.make ~name:"back"
      [| Block.make (Term.Call { callee = 0; next = 1 }); Block.make Term.Ret |]
  in
  Program.make ~name:"mutual" [| main; back |]

let test_ras_bounds () =
  let chain = call_chain_program () in
  let profile, _ = Ba_trace.Record.profile_and_record ~max_steps:100 chain in
  let image = Ba_layout.Image.original ~profile chain in
  let s = Site.extract ~profile image in
  Alcotest.(check (option int)) "main->mid->leaf bounds at 2" (Some 2)
    s.Site.ras_bound;
  let deep = ras_of (Analyze.analyze ~suite:[ Structure.Ras { depth = 1 } ] ~profile image) in
  Alcotest.(check bool) "1-deep stack overflows" true deep.Analyze.overflow_possible;
  let wide = ras_of (Analyze.analyze ~suite:[ Structure.Ras { depth = 4 } ] ~profile image) in
  Alcotest.(check bool) "4-deep stack fits" false wide.Analyze.overflow_possible;
  let rec_p = recursive_program () in
  let profile, _ = Ba_trace.Record.profile_and_record ~max_steps:100 rec_p in
  let image = Ba_layout.Image.original ~profile rec_p in
  let s = Site.extract ~profile image in
  Alcotest.(check (option int)) "mutual recursion is unbounded" None
    s.Site.ras_bound

(* ------------------------------------------------------------------ *)
(* Lint rules: stable ids, Info-only severity. *)

let test_lint_rules () =
  let program = colliding_program () in
  let profile, _ = Ba_trace.Record.profile_and_record ~max_steps:2_000 program in
  let image = Ba_layout.Image.original ~profile program in
  let diags =
    Lint.check ~suite:[ Structure.Pht_direct { entries = 16 } ] ~profile image
  in
  Alcotest.(check bool) "conflict/pht-hot-pair fires" true
    (List.exists
       (fun d -> d.Ba_analysis.Diagnostic.rule = "conflict/pht-hot-pair")
       diags);
  List.iter
    (fun d ->
      Alcotest.(check bool) "conflict findings are Info" false
        (Ba_analysis.Diagnostic.is_error d))
    diags;
  let rec_p = recursive_program () in
  let profile, _ = Ba_trace.Record.profile_and_record ~max_steps:100 rec_p in
  let image = Ba_layout.Image.original ~profile rec_p in
  let diags = Lint.check ~suite:[ Structure.Ras { depth = 32 } ] ~profile image in
  Alcotest.(check bool) "conflict/ras-depth fires on recursion" true
    (List.exists
       (fun d -> d.Ba_analysis.Diagnostic.rule = "conflict/ras-depth")
       diags)

(* ------------------------------------------------------------------ *)
(* Pad re-scoring: scoring extracted sites under shifted bases (the pure
   arithmetic the placement search runs in its inner loop) must agree
   exactly with re-analyzing an image rebuilt with those pads. *)

let test_pad_rescore () =
  let w = workload "tex" in
  let program, profile = Ba_workloads.Profiled.get ~max_steps:20_000 w in
  let decisions =
    Ba_core.Align.align_program Ba_core.Align.Cost ~arch:Ba_core.Cost_model.Btb
      profile
  in
  let image = Ba_layout.Image.build ~profile program decisions in
  let s = Site.extract ~profile image in
  let n = Array.length image.Ba_layout.Image.bases in
  let pads = Array.init n (fun p -> p * 3 mod 7) in
  let padded = Ba_layout.Image.build ~profile ~pads program decisions in
  let suite = Structure.placement_suite in
  let via_bases =
    Analyze.of_summary ~suite ~bases:padded.Ba_layout.Image.bases s
  in
  let via_image = Analyze.analyze ~suite ~profile padded in
  Alcotest.(check string) "re-scoring equals re-analysis"
    (Ba_util.Json.to_string (Analyze.to_json via_image))
    (Ba_util.Json.to_string (Analyze.to_json via_bases))

(* ------------------------------------------------------------------ *)
(* QCheck cross-validation on generated programs. *)

let qcheck_steps = 2_000

let images_of program profile =
  [
    Ba_layout.Image.original ~profile program;
    Ba_core.Align.image (Ba_core.Align.Tryn 5) ~arch:Ba_core.Cost_model.Btfnt
      profile;
  ]

let test_bep_cross =
  QCheck.Test.make
    ~name:"static maps agree with Bep counters (PHT / BTB / RAS)" ~count:30
    Gen_prog.program_arb (fun program ->
      let profile, trace =
        Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
      in
      List.for_all
        (fun image ->
          let pht = Structure.Pht_direct { entries = 64 } in
          let m = map_of pht (Analyze.analyze ~suite:[ pht ] ~profile image) in
          let alias =
            sim_counter ~trace ~max_steps:qcheck_steps
              ~arch:(Ba_sim.Bep.Pht_direct { entries = 64 })
              image "predict.pht.alias"
          in
          if alias > 0 && m.Analyze.conflicts = [] then
            QCheck.Test.fail_reportf "%d aliases but no static PHT conflict"
              alias
          else if alias = 0 && m.Analyze.conflicts <> [] then
            QCheck.Test.fail_reportf "static PHT conflict but no aliases"
          else if alias > conflict_occupant_weight m then
            QCheck.Test.fail_reportf "aliases %d exceed occupant weight %d"
              alias (conflict_occupant_weight m)
          else begin
            let btb = Structure.Btb { entries = 16; assoc = 2 } in
            let mb =
              map_of btb (Analyze.analyze ~suite:[ btb ] ~profile image)
            in
            let evict =
              sim_counter ~trace ~max_steps:qcheck_steps
                ~arch:(Ba_sim.Bep.Btb_arch { entries = 16; assoc = 2 })
                image "predict.btb.evict"
            in
            if mb.Analyze.conflicts = [] && evict > 0 then
              QCheck.Test.fail_reportf
                "conflict-free static BTB map but %d evictions" evict
            else begin
              let r =
                ras_of
                  (Analyze.analyze ~suite:[ Structure.Ras { depth = 8 } ]
                     ~profile image)
              in
              match r.Analyze.static_bound with
              | Some b when b <= 8 ->
                let overflow =
                  sim_counter ~return_stack_depth:8 ~trace
                    ~max_steps:qcheck_steps ~arch:Ba_sim.Bep.Static_btfnt image
                    "predict.ras.overflow"
                in
                if overflow > 0 then
                  QCheck.Test.fail_reportf
                    "static depth bound %d fits 8 but %d overflows" b overflow
                else true
              | _ -> true
            end
          end)
        (images_of program profile))

let test_alpha_cross =
  QCheck.Test.make
    ~name:"static line maps agree with Alpha refill / icache miss counters"
    ~count:30 Gen_prog.program_arb (fun program ->
      let profile, trace =
        Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
      in
      let alpha = Structure.Alpha { lines = 8; insns_per_line = 8 } in
      let icache = Structure.Icache { lines = 16; insns_per_line = 8; assoc = 1 } in
      let config =
        { Ba_sim.Alpha.default_config with lines = 8; icache_lines = 16 }
      in
      List.for_all
        (fun image ->
          let reports =
            Analyze.analyze ~suite:[ alpha; icache ] ~profile image
          in
          let am = map_of alpha reports in
          let im = map_of icache reports in
          let refill, miss =
            alpha_counters ~trace ~max_steps:qcheck_steps ~config image
          in
          if refill < am.Analyze.items then
            QCheck.Test.fail_reportf "refills %d below %d conditional lines"
              refill am.Analyze.items
          else if am.Analyze.conflicts = [] && refill <> am.Analyze.items then
            QCheck.Test.fail_reportf
              "conflict-free history lines but %d refills for %d lines" refill
              am.Analyze.items
          else if im.Analyze.conflicts = [] && miss > im.Analyze.items then
            QCheck.Test.fail_reportf
              "conflict-free icache map but %d misses for %d lines" miss
              im.Analyze.items
          else true)
        (images_of program profile))

(* ------------------------------------------------------------------ *)
(* The agreement wall: every built-in workload, original and Try15/BTB
   images, static maps vs dynamic counters under matching geometries. *)

let wall_steps = Matrix.wall_steps

let test_workload_agreement () =
  Matrix.iter_traced (fun w program profile trace ->
      let images =
        [
          ("orig", Ba_layout.Image.original ~profile program);
          ( "try15",
            Ba_core.Align.image (Ba_core.Align.Tryn 15)
              ~arch:Ba_core.Cost_model.Btb profile );
        ]
      in
      List.iter
        (fun (label, image) ->
          let ctx msg = w.Ba_workloads.Spec.name ^ "/" ^ label ^ ": " ^ msg in
          let pht = Structure.Pht_direct { entries = 256 } in
          let m = map_of pht (Analyze.analyze ~suite:[ pht ] ~profile image) in
          let alias =
            sim_counter ~trace ~max_steps:wall_steps
              ~arch:(Ba_sim.Bep.Pht_direct { entries = 256 })
              image "predict.pht.alias"
          in
          Alcotest.(check bool)
            (ctx "pht aliases iff static conflicts")
            (m.Analyze.conflicts <> [])
            (alias > 0);
          Alcotest.(check bool)
            (ctx "pht aliases bounded by occupant weight")
            true
            (alias <= conflict_occupant_weight m);
          let btb = Structure.Btb { entries = 64; assoc = 2 } in
          let mb = map_of btb (Analyze.analyze ~suite:[ btb ] ~profile image) in
          let evict =
            sim_counter ~trace ~max_steps:wall_steps
              ~arch:(Ba_sim.Bep.Btb_arch { entries = 64; assoc = 2 })
              image "predict.btb.evict"
          in
          if mb.Analyze.conflicts = [] then
            Alcotest.(check int) (ctx "btb conflict-free means no evictions") 0
              evict;
          let r =
            ras_of
              (Analyze.analyze ~suite:[ Structure.Ras { depth = 32 } ] ~profile
                 image)
          in
          (match r.Analyze.static_bound with
          | Some b when b <= 32 ->
            let overflow =
              sim_counter ~return_stack_depth:32 ~trace ~max_steps:wall_steps
                ~arch:Ba_sim.Bep.Static_btfnt image "predict.ras.overflow"
            in
            Alcotest.(check int) (ctx "ras bound means no overflow") 0 overflow
          | _ -> ());
          let alpha = Structure.Alpha { lines = 32; insns_per_line = 8 } in
          let icache =
            Structure.Icache { lines = 64; insns_per_line = 8; assoc = 1 }
          in
          let reports =
            Analyze.analyze ~suite:[ alpha; icache ] ~profile image
          in
          let am = map_of alpha reports in
          let im = map_of icache reports in
          let config = { Ba_sim.Alpha.default_config with lines = 32 } in
          let refill, miss =
            alpha_counters ~trace ~max_steps:wall_steps ~config image
          in
          Alcotest.(check bool)
            (ctx "alpha refills cover conditional lines")
            true
            (refill >= am.Analyze.items);
          if am.Analyze.conflicts = [] then
            Alcotest.(check int)
              (ctx "conflict-free history lines refill once")
              am.Analyze.items refill;
          if im.Analyze.conflicts = [] then
            Alcotest.(check bool)
              (ctx "conflict-free icache bounds misses")
              true
              (miss <= im.Analyze.items))
        images)

(* ------------------------------------------------------------------ *)
(* Placement invariants. *)

let test_placement_workloads () =
  List.iter
    (fun name ->
      let w = workload name in
      let program, profile = Ba_workloads.Profiled.get ~max_steps:wall_steps w in
      let decisions =
        Ba_core.Align.align_program (Ba_core.Align.Tryn 15)
          ~arch:Ba_core.Cost_model.Btb profile
      in
      let place =
        Place.improve ~arch:Ba_core.Cost_model.Btb ~profile program decisions
      in
      Alcotest.(check bool) (name ^ ": objective never worse") true
        (place.Place.after <= place.Place.before);
      Alcotest.(check int)
        (name ^ ": padded image lints clean")
        0
        (errors (Ba_analysis.Check_image.check place.Place.image));
      let bisim, _, cert_diags, _ =
        Ba_verify.Run.verify_image ~audit:false ~workload:name ~algo:"try15"
          ~profile place.Place.image
      in
      Alcotest.(check int)
        (name ^ ": placed image bisimulates and certifies")
        0
        (errors (bisim @ cert_diags)))
    [ "compress"; "espresso"; "tomcatv" ]

let test_placement_report () =
  let row = Ba_report.Placement.evaluate ~max_steps:wall_steps (workload "eqntott") in
  let total = Array.fold_left ( + ) 0 in
  Alcotest.(check bool) "objective never worse" true
    (row.Ba_report.Placement.after <= row.Ba_report.Placement.before);
  Alcotest.(check bool) "effective cycles never worse than base" true
    (total row.Ba_report.Placement.effective <= total row.Ba_report.Placement.base);
  if row.Ba_report.Placement.applied then
    Alcotest.(check bool) "applied rows ship a non-regressing image" true
      (total row.Ba_report.Placement.placed <= total row.Ba_report.Placement.base)

let test_place_qcheck =
  QCheck.Test.make ~name:"placement never raises the objective, images stay valid"
    ~count:25 Gen_prog.program_arb (fun program ->
      let profile, _ =
        Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
      in
      let decisions =
        Ba_core.Align.align_program Ba_core.Align.Greedy
          ~arch:Ba_core.Cost_model.Btfnt profile
      in
      let place = Place.improve ~profile program decisions in
      if place.Place.after > place.Place.before then
        QCheck.Test.fail_reportf "objective rose: %d -> %d" place.Place.before
          place.Place.after
      else begin
        let e = errors (Ba_analysis.Check_image.check place.Place.image) in
        if e > 0 then
          QCheck.Test.fail_reportf "padded image has %d lint errors" e
        else true
      end)

(* ------------------------------------------------------------------ *)
(* Placement edge cases: degenerate inputs the improver must survive
   without perturbing anything it should not. *)

(* Single-block procedures: main's callee has no non-entry position, so
   the swap search has nothing to move and padding is the only lever. *)
let test_place_single_block () =
  let open Ba_ir in
  let lone =
    Program.make ~name:"lone" ~seed:1
      [| Proc.make ~name:"main" [| Block.make ~insns:4 Term.Halt |] |]
  in
  let with_leaf =
    Program.make ~name:"with-leaf" ~seed:2
      [|
        Proc.make ~name:"main"
          [|
            Block.make ~insns:2 (Term.Call { callee = 1; next = 1 });
            Block.make ~insns:2 Term.Halt;
          |];
        Proc.make ~name:"leaf" [| Block.make ~insns:3 Term.Ret |];
      |]
  in
  List.iter
    (fun program ->
      let profile, _ =
        Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
      in
      let decisions =
        Array.init (Ba_ir.Program.n_procs program) (fun p ->
            Ba_layout.Decision.identity (Ba_ir.Program.proc program p))
      in
      let place = Place.improve ~profile program decisions in
      Alcotest.(check bool) "objective never worse" true
        (place.Place.after <= place.Place.before);
      Alcotest.(check int) "nothing to swap" 0 place.Place.swaps;
      Alcotest.(check int) "image lints clean" 0
        (errors (Ba_analysis.Check_image.check place.Place.image)))
    [ lone; with_leaf ]

(* A created-but-never-run profile weighs every site at zero: no move can
   strictly improve, so the improver must reproduce the input exactly. *)
let test_place_zero_profile () =
  let program = (workload "compress").Ba_workloads.Spec.build () in
  let profile = Ba_cfg.Profile.create program in
  let decisions =
    Array.init (Ba_ir.Program.n_procs program) (fun p ->
        Ba_layout.Decision.identity (Ba_ir.Program.proc program p))
  in
  let place = Place.improve ~profile program decisions in
  Alcotest.(check int) "zero objective in" 0 place.Place.before;
  Alcotest.(check int) "zero objective out" 0 place.Place.after;
  Alcotest.(check int) "no swaps" 0 place.Place.swaps;
  Alcotest.(check int) "no pads" 0 (Array.fold_left ( + ) 0 place.Place.pads);
  Alcotest.(check int) "image lints clean" 0
    (errors (Ba_analysis.Check_image.check place.Place.image))

(* Padding landing exactly on a structure boundary: two hot self-loop
   conditionals in different procedures share the only set their parity
   allows in a 2-set direct-mapped BTB; no swap can separate them (each
   branch terminates its procedure's pinned entry block, and reordering
   the remaining blocks inserts a jump the cost guard rejects), so the
   improver must shift a whole procedure across the set boundary with
   inter-procedure padding. *)
let test_place_pad_boundary () =
  let open Ba_ir in
  let hot = Behavior.Loop 9 in
  let program =
    Program.make ~name:"collide" ~seed:3
      [|
        Proc.make ~name:"main"
          [|
            Block.make ~insns:2
              (Term.Cond { on_true = 0; on_false = 1; behavior = hot });
            Block.make ~insns:2 (Term.Call { callee = 1; next = 2 });
            Block.make ~insns:2 Term.Halt;
          |];
        Proc.make ~name:"spin"
          [|
            (* 3 slots, not 2: lands spin's branch on main's hot set. *)
            Block.make ~insns:3
              (Term.Cond { on_true = 0; on_false = 1; behavior = hot });
            Block.make ~insns:2 Term.Ret;
          |];
      |]
  in
  let suite = [ Structure.Btb { entries = 2; assoc = 1 } ] in
  let profile, _ =
    Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
  in
  let decisions =
    Array.init (Ba_ir.Program.n_procs program) (fun p ->
        Ba_layout.Decision.identity (Ba_ir.Program.proc program p))
  in
  let place = Place.improve ~suite ~profile program decisions in
  Alcotest.(check bool) "the identity layout collides" true
    (place.Place.before > 0);
  Alcotest.(check bool) "padding separates the sets" true
    (place.Place.after < place.Place.before);
  Alcotest.(check bool) "a pad was placed" true
    (Array.fold_left ( + ) 0 place.Place.pads > 0);
  Alcotest.(check int) "no swaps" 0 place.Place.swaps;
  Alcotest.(check int) "padded image lints clean" 0
    (errors (Ba_analysis.Check_image.check place.Place.image))

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "conflict.analyze",
      [
        Alcotest.test_case "pht synthetic counts" `Quick test_pht_synthetic;
        Alcotest.test_case "btb synthetic counts" `Quick test_btb_synthetic;
        Alcotest.test_case "icache synthetic counts" `Quick test_icache_synthetic;
        Alcotest.test_case "ras synthetic bounds" `Quick test_ras_synthetic;
        Alcotest.test_case "hand program static map" `Quick test_hand_program_static;
        Alcotest.test_case "hand program dynamic counters" `Quick
          test_hand_program_dynamic;
        Alcotest.test_case "call-depth bounds" `Quick test_ras_bounds;
        Alcotest.test_case "lint rules" `Quick test_lint_rules;
        Alcotest.test_case "pad re-scoring" `Quick test_pad_rescore;
      ] );
    ( "conflict.cross",
      List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        [ test_bep_cross; test_alpha_cross ] );
    ( "conflict.wall",
      [
        Alcotest.test_case "all workloads, static maps vs counters" `Slow
          test_workload_agreement;
      ] );
    ( "conflict.place",
      [
        Alcotest.test_case "curated placement verifies" `Slow
          test_placement_workloads;
        Alcotest.test_case "placement report row" `Slow test_placement_report;
        QCheck_alcotest.to_alcotest ~long:false test_place_qcheck;
        Alcotest.test_case "single-block procedures" `Quick
          test_place_single_block;
        Alcotest.test_case "zero-weight profile is a no-op" `Quick
          test_place_zero_profile;
        Alcotest.test_case "padding crosses a structure boundary" `Quick
          test_place_pad_boundary;
      ] );
  ]
