(* Tests for Ba_bound: the abstract-interpretation cost bounds and the
   branch-and-bound optimality audit.

   The load-bearing suite is the soundness wall: for every workload x
   algorithm x simulated architecture cell, the static interval must
   bracket the exact penalty cycles of the simulator replaying the same
   recorded trace the profile came from.  The counter-domain suite
   re-derives the 2-bit-counter transfer function's envelope by dynamic
   programming over ALL interleavings of a site's taken/not-taken batch
   and checks the closed forms against it: the lower bound must be exactly
   the true minimum (it prices real layouts, so slack there is pure
   pessimism) and the upper bound must dominate the true maximum. *)

open Ba_sim

let wall_steps = Matrix.wall_steps
let qcheck_steps = 2_000
let workload = Matrix.workload
let archs_for = Matrix.archs_for

let check_brackets ~what ~arch ~iv bep =
  if not (iv.Ba_bound.Domain.lo <= bep && bep <= iv.Ba_bound.Domain.hi) then
    Alcotest.failf "%s, %s: simulated %d outside bound [%d, %d]" what
      (Bep.arch_label arch) bep iv.Ba_bound.Domain.lo iv.Ba_bound.Domain.hi

(* ------------------------------------------------------------------ *)
(* Counter domain vs exhaustive interleavings of the real Counter2. *)

(* Exact (min, max) mispredict counts over every order in which [taken]
   taken and [not_taken] not-taken outcomes can reach one 2-bit counter
   starting at [state], by DP on (state, left_t, left_f). *)
let true_minmax ~state ~taken ~not_taken =
  let memo = Hashtbl.create 97 in
  let rec go state t f =
    if t = 0 && f = 0 then (0, 0)
    else
      let key = ((state : Ba_predict.Counter2.t :> int), t, f) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let step ~outcome t' f' =
          let mis = if Ba_predict.Counter2.predict state = outcome then 0 else 1 in
          let mn, mx = go (Ba_predict.Counter2.update state ~taken:outcome) t' f' in
          (mis + mn, mis + mx)
        in
        let options =
          (if t > 0 then [ step ~outcome:true (t - 1) f ] else [])
          @ if f > 0 then [ step ~outcome:false t (f - 1) ] else []
        in
        let mn = List.fold_left (fun acc (m, _) -> min acc m) max_int options in
        let mx = List.fold_left (fun acc (_, m) -> max acc m) 0 options in
        Hashtbl.add memo key (mn, mx);
        (mn, mx)
  in
  go state taken not_taken

let test_counter_domain () =
  for s = 0 to 3 do
    for t = 0 to 6 do
      for f = 0 to 6 do
        let iv =
          Ba_bound.Domain.Counter.mispredicts ~state:s ~taken:t ~not_taken:f
        in
        let mn, mx =
          true_minmax ~state:(Ba_predict.Counter2.of_int s) ~taken:t ~not_taken:f
        in
        if iv.Ba_bound.Domain.lo <> mn then
          Alcotest.failf "s=%d t=%d f=%d: lower %d, true min %d" s t f
            iv.Ba_bound.Domain.lo mn;
        if iv.Ba_bound.Domain.hi < mx then
          Alcotest.failf "s=%d t=%d f=%d: upper %d below true max %d" s t f
            iv.Ba_bound.Domain.hi mx;
        if iv.Ba_bound.Domain.hi > t + f then
          Alcotest.failf "s=%d t=%d f=%d: upper %d exceeds weight %d" s t f
            iv.Ba_bound.Domain.hi (t + f)
      done
    done
  done

let test_counter_serves () =
  (* The serve_* state intervals used inside the batching argument stay
     within the saturating range and are monotone in the batch size. *)
  for s = 0 to 3 do
    for w = 0 to 8 do
      let mt, st = Ba_bound.Domain.Counter.serve_taken ~state:s w in
      let mf, sf = Ba_bound.Domain.Counter.serve_not_taken ~state:s w in
      Alcotest.(check bool) "taken end state in range" true (st >= 0 && st <= 3);
      Alcotest.(check bool) "fall end state in range" true (sf >= 0 && sf <= 3);
      Alcotest.(check bool) "taken mispredicts bounded" true (mt >= 0 && mt <= w);
      Alcotest.(check bool) "fall mispredicts bounded" true (mf >= 0 && mf <= w)
    done
  done

(* ------------------------------------------------------------------ *)
(* The soundness wall: 24 workloads x 4 algorithms x 7 architectures. *)

let test_soundness_wall () =
  Matrix.iter_wall (fun ~w ~algo ~arch:_ ~program:_ ~profile ~trace image ->
      let archs = archs_for image profile in
      let out = Runner.simulate ~max_steps:wall_steps ~trace ~archs image in
      Array.iter
        (fun (arch, sim) ->
          let iv = Ba_bound.Analyze.bounds ~arch ~profile image in
          check_brackets
            ~what:
              (Printf.sprintf "%s/%s" w.Ba_workloads.Spec.name
                 (Ba_core.Align.algo_name algo))
            ~arch ~iv (Bep.bep sim))
        out.Runner.sims)

(* ------------------------------------------------------------------ *)
(* Random programs: soundness on shapes the workloads don't cover, and
   on the two extra dynamic predictors outside the harness seven. *)

let test_qcheck_soundness =
  QCheck.Test.make ~name:"bounds bracket the simulator on random programs"
    ~count:40 Gen_prog.program_arb (fun program ->
      let profile, trace =
        Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
      in
      let images =
        [
          ("orig", Ba_layout.Image.original ~profile program);
          ( "greedy",
            Ba_core.Align.image Ba_core.Align.Greedy
              ~arch:Ba_core.Cost_model.Btfnt profile );
        ]
      in
      List.for_all
        (fun (label, image) ->
          let archs =
            archs_for image profile
            @ [
                Bep.Pht_global { history_bits = 8 };
                Bep.Pht_local { history_bits = 8; branch_entries = 64 };
              ]
          in
          let out = Runner.simulate ~max_steps:qcheck_steps ~trace ~archs image in
          Array.for_all
            (fun (arch, sim) ->
              let iv = Ba_bound.Analyze.bounds ~arch ~profile image in
              let bep = Bep.bep sim in
              if iv.Ba_bound.Domain.lo <= bep && bep <= iv.Ba_bound.Domain.hi
              then true
              else
                QCheck.Test.fail_reportf "%s, %s: simulated %d outside [%d, %d]"
                  label (Bep.arch_label arch) bep iv.Ba_bound.Domain.lo
                  iv.Ba_bound.Domain.hi)
            out.Runner.sims)
        images)

(* ------------------------------------------------------------------ *)
(* Static-rule exactness: a call-free loop program prices exactly. *)

let test_exact_loop () =
  let open Ba_ir in
  let blocks =
    [|
      Block.make ~insns:3
        (Term.Cond { on_true = 0; on_false = 1; behavior = Behavior.Loop 7 });
      Block.make ~insns:2 Term.Halt;
    |]
  in
  let program =
    Program.make ~name:"tight-loop" ~seed:11 [| Proc.make ~name:"main" blocks |]
  in
  let profile, trace =
    Ba_trace.Record.profile_and_record ~max_steps:qcheck_steps program
  in
  let image = Ba_layout.Image.original ~profile program in
  let out =
    Runner.simulate ~max_steps:qcheck_steps ~trace
      ~archs:[ Bep.Static_fallthrough; Bep.Static_btfnt ] image
  in
  Array.iter
    (fun (arch, sim) ->
      let iv = Ba_bound.Analyze.bounds ~arch ~profile image in
      Alcotest.(check int)
        (Bep.arch_label arch ^ ": width zero")
        0
        (Ba_bound.Domain.width iv);
      Alcotest.(check int)
        (Bep.arch_label arch ^ ": exactly the simulated cycles")
        (Bep.bep sim) iv.Ba_bound.Domain.lo)
    out.Runner.sims

(* A profile with zero recorded weight prices every site at exactly zero. *)
let test_zero_profile () =
  let program = (workload "compress").Ba_workloads.Spec.build () in
  let profile = Ba_cfg.Profile.create program in
  let image = Ba_layout.Image.original ~profile program in
  List.iter
    (fun arch ->
      let iv = Ba_bound.Analyze.bounds ~arch ~profile image in
      Alcotest.(check int)
        (Bep.arch_label arch ^ ": zero lower")
        0 iv.Ba_bound.Domain.lo;
      Alcotest.(check int)
        (Bep.arch_label arch ^ ": zero upper")
        0 iv.Ba_bound.Domain.hi)
    (archs_for image profile)

(* ------------------------------------------------------------------ *)
(* Optimal-k audit invariants, via the gap report. *)

let test_gap_invariants () =
  List.iter
    (fun name ->
      let row = Ba_report.Gap.evaluate ~max_steps:wall_steps ~k:3 (workload name) in
      List.iter
        (fun (c : Ba_report.Gap.cell) ->
          let label what =
            Printf.sprintf "%s/%s: %s" name
              (Ba_core.Cost_model.arch_name c.Ba_report.Gap.model)
              what
          in
          Alcotest.(check bool)
            (label "winner never beats its own lower bound")
            true
            (c.Ba_report.Gap.opt_lower <= c.Ba_report.Gap.optimal);
          Alcotest.(check bool)
            (label "gap(try15) >= 0")
            true
            (c.Ba_report.Gap.optimal <= c.Ba_report.Gap.tryn);
          Alcotest.(check int)
            (label "candidates = simulated + pruned")
            c.Ba_report.Gap.candidates
            (c.Ba_report.Gap.simulated + c.Ba_report.Gap.pruned);
          Alcotest.(check bool)
            (label "identity candidate explored")
            true
            (c.Ba_report.Gap.candidates >= 1))
        row.Ba_report.Gap.cells)
    [ "wave5"; "li" ]

let test_optimal_direct () =
  let w = workload "compress" in
  let program, profile, trace =
    Ba_workloads.Profiled.get_traced ~max_steps:wall_steps w
  in
  let bep decisions =
    let image = Ba_layout.Image.build ~profile program decisions in
    let arch =
      Ba_bound.Analyze.arch_of_model Ba_core.Cost_model.Btfnt ~profile image
    in
    let out = Runner.simulate ~max_steps:wall_steps ~trace ~archs:[ arch ] image in
    Bep.bep (snd out.Runner.sims.(0))
  in
  let bounds decisions =
    let image = Ba_layout.Image.build ~profile program decisions in
    let arch =
      Ba_bound.Analyze.arch_of_model Ba_core.Cost_model.Btfnt ~profile image
    in
    let iv = Ba_bound.Analyze.bounds ~arch ~profile image in
    (iv.Ba_bound.Domain.lo, iv.Ba_bound.Domain.hi)
  in
  let base =
    Ba_core.Align.align_program (Ba_core.Align.Tryn 15)
      ~arch:Ba_core.Cost_model.Btfnt profile
  in
  let r = Ba_core.Optimal.search ~k:4 ~bounds ~cost:bep ~profile base in
  Alcotest.(check bool) "never worse than the base layout" true
    (r.Ba_core.Optimal.best_cost <= r.Ba_core.Optimal.base_cost);
  Alcotest.(check bool) "winner respects its lower bound" true
    (r.Ba_core.Optimal.best_lower <= r.Ba_core.Optimal.best_cost);
  Alcotest.(check int) "all candidates accounted for"
    r.Ba_core.Optimal.candidates
    (r.Ba_core.Optimal.simulated + r.Ba_core.Optimal.pruned);
  (* Determinism: the search is a pure fold over a deterministic
     candidate list. *)
  let r2 = Ba_core.Optimal.search ~k:4 ~bounds ~cost:bep ~profile base in
  Alcotest.(check int) "search is deterministic" r.Ba_core.Optimal.best_cost
    r2.Ba_core.Optimal.best_cost

(* ------------------------------------------------------------------ *)
(* The bound/* lint rules. *)

let rule_fires rule diags =
  List.exists (fun d -> d.Ba_analysis.Diagnostic.rule = rule) diags

let test_lint_rules () =
  let w = workload "wave5" in
  let program, profile = Ba_workloads.Profiled.get ~max_steps:wall_steps w in
  (* wave5's Try15/BT-FNT layout is certified worse than orig by the
     static bounds alone (also pinned in the golden wall). *)
  let t15 =
    Ba_core.Align.image (Ba_core.Align.Tryn 15) ~arch:Ba_core.Cost_model.Btfnt
      profile
  in
  let diags =
    Ba_bound.Lint.check ~algo:(Ba_core.Align.Tryn 15)
      ~arch:Ba_core.Cost_model.Btfnt ~profile t15
  in
  Alcotest.(check bool) "provably-suboptimal fires" true
    (rule_fires "bound/provably-suboptimal" diags);
  (* The dynamic-history domain is nearly vacuous, so the original layout
     under PHT must report a too-wide interval. *)
  let orig = Ba_layout.Image.original ~profile program in
  let diags2 =
    Ba_bound.Lint.check ~algo:Ba_core.Align.Original
      ~arch:Ba_core.Cost_model.Pht ~profile orig
  in
  Alcotest.(check bool) "gap-too-wide fires" true
    (rule_fires "bound/gap-too-wide" diags2);
  List.iter
    (fun d ->
      Alcotest.(check bool) "bound findings are Info-severity" true
        (d.Ba_analysis.Diagnostic.severity = Ba_analysis.Diagnostic.Info))
    (diags @ diags2)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "bound.domain",
      [
        Alcotest.test_case "counter envelope vs exhaustive interleavings" `Quick
          test_counter_domain;
        Alcotest.test_case "serve state intervals stay in range" `Quick
          test_counter_serves;
      ] );
    ( "bound.soundness",
      [
        Alcotest.test_case "24 workloads x 4 algos x 7 archs bracket" `Slow
          test_soundness_wall;
        QCheck_alcotest.to_alcotest ~long:false test_qcheck_soundness;
        Alcotest.test_case "call-free loop prices exactly" `Quick test_exact_loop;
        Alcotest.test_case "zero-weight profile prices zero" `Quick
          test_zero_profile;
      ] );
    ( "bound.optimal",
      [
        Alcotest.test_case "gap table invariants" `Slow test_gap_invariants;
        Alcotest.test_case "branch-and-bound invariants" `Slow test_optimal_direct;
      ] );
    ( "bound.lint",
      [ Alcotest.test_case "bound/* rules fire" `Slow test_lint_rules ] );
  ]
