(** Layout decisions.

    A decision is what an alignment algorithm produces: a permutation of a
    procedure's basic blocks, plus the set of conditional blocks the
    algorithm decided to align {e neither} edge of (the inverted-sense plus
    inserted-jump lowering, profitable for tight loops).  The entry block
    must stay first (a procedure's entry point is its first address, as in
    the paper's link-time setting).  Everything else about the final code —
    which edges become fall-throughs, where branch senses flip, where
    unconditional jumps are inserted — is derived mechanically by
    {!Lower}. *)

type jump_leg =
  | Jump_heavier  (** route the more frequent leg through the inserted jump
                      (best under FALLTHROUGH: the hot path costs
                      fall-through + jump instead of a mispredict) *)
  | Jump_on_true  (** the [on_true] leg goes through the jump *)
  | Jump_on_false
      (** the [on_false] leg goes through the jump (e.g. under BT/FNT a hot
          backward [on_true] leg is better kept as a correctly predicted
          taken branch, with the rare exit jumping) *)

type t = {
  order : Ba_ir.Term.block_id array;
  neither : jump_leg option array;
      (** indexed by block id; [Some leg] forces the jump-insertion
          ("align neither edge") lowering for that conditional even if one
          of its targets happens to be adjacent, with [leg] through the
          inserted jump *)
}

val identity : Ba_ir.Proc.t -> t
(** The original compiler layout: blocks in array order, nothing forced. *)

val of_order : ?neither:jump_leg option array -> Ba_ir.Term.block_id array -> t

val of_chains :
  ?neither:jump_leg option array -> Ba_ir.Term.block_id list list -> t
(** Concatenate ordered chains into a block order. *)

val swap_positions : t -> int -> int -> t
(** Fresh decision with the blocks at two layout positions exchanged
    (forced set unchanged).  Used by the optimality auditor to price
    adjacent-swap variants; raises [Invalid_argument] on out-of-range
    positions. *)

val with_neither : t -> Ba_ir.Term.block_id -> jump_leg option -> t
(** Fresh decision with one block's forced "align neither edge" choice
    replaced. *)

val position : t -> Ba_ir.Term.block_id array
(** Inverse permutation: [(position d).(b)] is the position of block [b] in
    the layout. *)

val validate : Ba_ir.Proc.t -> t -> (unit, string) result
(** The order must be a permutation of the procedure's blocks with the entry
    block first, and the forced set must be sized to the procedure. *)

val leg_name : jump_leg -> string
(** "heavier" / "true" / "false", for diagnostics. *)

val pp : Format.formatter -> t -> unit
