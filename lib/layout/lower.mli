(** Lowering a layout decision to linear code.

    Given the block permutation, lowering derives every fall-through,
    inverts branch senses, and inserts unconditional jumps where a block's
    required successor is not adjacent:

    - a [Jump]/[Call]/[Vcall] successor that is next in layout costs no
      branch instruction (or no continuation jump); otherwise an
      unconditional branch is emitted;
    - a conditional whose [on_true] (resp. [on_false]) target is next is
      emitted with the sense making that target the fall-through;
    - a conditional adjacent to neither target (or forced by the decision's
      [neither] set) is emitted as a conditional branch plus an inserted
      unconditional jump.  Unforced, the encoding is compiler-natural —
      branch taken to [on_true], jump to [on_false]; a forced decision names
      the jump leg, which is how the Cost/Try15 algorithms realise the
      paper's loop transformation (§4). *)

val lower :
  ?cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  Ba_ir.Proc.t ->
  Decision.t ->
  Linear.t
(** [lower ?cond_counts proc decision] produces linear code.  [cond_counts]
    supplies per-conditional [(times-true, times-false)] profile counts,
    consulted only for a forced [Jump_heavier] choice; it defaults to
    treating the [on_true] leg as heavier.  Raises [Invalid_argument] on an
    invalid decision. *)

val term_at :
  ?cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  Ba_ir.Proc.t ->
  order:Ba_ir.Term.block_id array ->
  pos:int array ->
  neither:Decision.jump_leg option array ->
  int ->
  Linear.lterm
(** [term_at proc ~order ~pos ~neither i] is the terminator [lower] would
    give the block at layout position [i] under the decision the three
    arrays describe ([pos] must be the inverse permutation of [order]).
    This is the single-position slice of [lower]; incremental evaluators
    use it to re-lower only the positions a local move can affect. *)
