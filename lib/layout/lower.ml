open Ba_ir

(* Single-position lowering: the terminator the block at layout position
   [i] gets, given the order / position / neither arrays alone.  [lower]
   below and the incremental evaluator (Ba_delta.Model) both go through
   this, so a cached per-position re-lowering cannot drift from the full
   one. *)
let term_at ?(cond_counts = fun _ -> (1, 0)) p ~order ~pos ~neither i =
  let n = Array.length order in
  let b = order.(i) in
  let blk = Proc.block p b in
  let next = if i + 1 < n then Some order.(i + 1) else None in
  let cont_of d = if next = Some d then Linear.Fall else Linear.Jump_to pos.(d) in
  match blk.Block.term with
  | Term.Jump d -> if next = Some d then Linear.Lnone else Linear.Ljump pos.(d)
  | Term.Cond { on_true; on_false; _ } ->
    let forced = neither.(b) in
    if forced = None && next = Some on_true then
      Linear.Lcond { taken_pos = pos.(on_false); taken_on = false; inserted_jump = None }
    else if forced = None && next = Some on_false then
      Linear.Lcond { taken_pos = pos.(on_true); taken_on = true; inserted_jump = None }
    else begin
      (* Neither target is (usable as) adjacent: one leg is taken, the
         other goes through an inserted unconditional jump.  A forced
         decision names the jump leg; unforced (compiler-natural)
         encoding branches to [on_true] and jumps to [on_false]. *)
      let jump_on_true =
        match forced with
        | Some Decision.Jump_on_true -> true
        | Some Decision.Jump_on_false | None -> false
        | Some Decision.Jump_heavier ->
          let w_true, w_false = cond_counts b in
          w_true >= w_false
      in
      if jump_on_true then
        Linear.Lcond
          { taken_pos = pos.(on_false); taken_on = false;
            inserted_jump = Some pos.(on_true) }
      else
        Linear.Lcond
          { taken_pos = pos.(on_true); taken_on = true;
            inserted_jump = Some pos.(on_false) }
    end
  | Term.Switch { targets } ->
    Linear.Lswitch
      {
        positions = Array.map (fun (d, _) -> pos.(d)) targets;
        weights = Array.map snd targets;
      }
  | Term.Call { callee; next = d } -> Linear.Lcall { callee; cont = cont_of d }
  | Term.Vcall { callees; next = d } ->
    Linear.Lvcall
      {
        callees = Array.map fst callees;
        weights = Array.map snd callees;
        cont = cont_of d;
      }
  | Term.Ret -> Linear.Lret
  | Term.Halt -> Linear.Lhalt

let lower ?cond_counts p (decision : Decision.t) =
  (match Decision.validate p decision with
  | Error e -> invalid_arg ("Lower.lower: " ^ e)
  | Ok () -> ());
  let pos = Decision.position decision in
  let order = decision.order in
  let neither = decision.neither in
  let blocks =
    Array.mapi
      (fun i b ->
        let blk = Proc.block p b in
        let term = term_at ?cond_counts p ~order ~pos ~neither i in
        { Linear.src = b; insns = blk.Block.insns; term; addr = 0 })
      order
  in
  { Linear.proc = p; decision; blocks }
