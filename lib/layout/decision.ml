type jump_leg = Jump_heavier | Jump_on_true | Jump_on_false

type t = {
  order : Ba_ir.Term.block_id array;
  neither : jump_leg option array;
}

let of_order ?neither order =
  let neither =
    match neither with Some a -> a | None -> Array.make (Array.length order) None
  in
  { order; neither }

let identity p = of_order (Array.init (Ba_ir.Proc.n_blocks p) Fun.id)

let of_chains ?neither chains = of_order ?neither (Array.of_list (List.concat chains))

let swap_positions t i j =
  let order = Array.copy t.order in
  let tmp = order.(i) in
  order.(i) <- order.(j);
  order.(j) <- tmp;
  { order; neither = Array.copy t.neither }

let with_neither t b leg =
  let neither = Array.copy t.neither in
  neither.(b) <- leg;
  { order = Array.copy t.order; neither }

let position t =
  let pos = Array.make (Array.length t.order) (-1) in
  Array.iteri (fun i b -> pos.(b) <- i) t.order;
  pos

let validate p t =
  let n = Ba_ir.Proc.n_blocks p in
  if Array.length t.order <> n then Error "layout order has wrong length"
  else if Array.length t.neither <> n then Error "neither set has wrong length"
  else begin
    let seen = Array.make n false in
    let bad = ref None in
    Array.iter
      (fun b ->
        if b < 0 || b >= n then bad := Some (Printf.sprintf "block id %d out of range" b)
        else if seen.(b) then bad := Some (Printf.sprintf "block %d duplicated" b)
        else seen.(b) <- true)
      t.order;
    match !bad with
    | Some msg -> Error msg
    | None ->
      if t.order.(0) <> Ba_ir.Proc.entry then Error "entry block not first"
      else Ok ()
  end

let leg_name = function
  | Jump_heavier -> "heavier"
  | Jump_on_true -> "true"
  | Jump_on_false -> "false"

let pp ppf t =
  let forced =
    Array.to_list t.neither
    |> List.mapi (fun b f -> Option.map (fun leg -> (b, leg)) f)
    |> List.filter_map Fun.id
  in
  Fmt.pf ppf "[%s]%s"
    (String.concat " " (Array.to_list (Array.map string_of_int t.order)))
    (match forced with
    | [] -> ""
    | l ->
      " neither:"
      ^ String.concat ","
          (List.map (fun (b, leg) -> Printf.sprintf "%d(%s)" b (leg_name leg)) l))
