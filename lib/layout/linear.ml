type cont = Fall | Jump_to of int

type lterm =
  | Lnone
  | Ljump of int
  | Lcond of { taken_pos : int; taken_on : bool; inserted_jump : int option }
  | Lswitch of { positions : int array; weights : float array }
  | Lcall of { callee : Ba_ir.Term.proc_id; cont : cont }
  | Lvcall of { callees : Ba_ir.Term.proc_id array; weights : float array; cont : cont }
  | Lret
  | Lhalt

type lblock = {
  src : Ba_ir.Term.block_id;
  insns : int;
  term : lterm;
  mutable addr : int;
}

type t = { proc : Ba_ir.Proc.t; decision : Decision.t; blocks : lblock array }

let term_insns = function
  | Lnone -> 0
  | Ljump _ -> 1
  | Lcond { inserted_jump = None; _ } -> 1
  | Lcond { inserted_jump = Some _; _ } -> 2
  | Lswitch _ -> 1
  | Lcall { cont = Fall; _ } | Lvcall { cont = Fall; _ } -> 1
  | Lcall { cont = Jump_to _; _ } | Lvcall { cont = Jump_to _; _ } -> 2
  | Lret -> 1
  | Lhalt -> 1

let block_size lb = lb.insns + term_insns lb.term

let falls_through lb =
  match lb.term with
  | Lnone
  | Lcond { inserted_jump = None; _ }
  | Lcall { cont = Fall; _ }
  | Lvcall { cont = Fall; _ } -> true
  | Ljump _ | Lcond { inserted_jump = Some _; _ } | Lswitch _
  | Lcall { cont = Jump_to _; _ } | Lvcall { cont = Jump_to _; _ }
  | Lret | Lhalt -> false

let code_size t = Array.fold_left (fun acc lb -> acc + block_size lb) 0 t.blocks

let static_successors t i =
  let n = Array.length t.blocks in
  let next = if i + 1 < n then [ i + 1 ] else [] in
  let in_range p = p >= 0 && p < n in
  let succ =
    match t.blocks.(i).term with
    | Lnone -> next
    | Ljump p -> [ p ]
    | Lcond { taken_pos; inserted_jump; _ } ->
      taken_pos :: (match inserted_jump with Some j -> [ j ] | None -> next)
    | Lswitch { positions; _ } -> Array.to_list positions
    | Lcall { cont; _ } | Lvcall { cont; _ } -> (
      match cont with Fall -> next | Jump_to p -> [ p ])
    | Lret | Lhalt -> []
  in
  List.sort_uniq compare (List.filter in_range succ)

let branch_pc lb = lb.addr + lb.insns

let inserted_jump_pc lb = lb.addr + lb.insns + 1

let validate t =
  let n = Array.length t.blocks in
  let in_range pos = pos >= 0 && pos < n in
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    (match Decision.validate t.proc t.decision with
    | Error e -> fail "decision: %s" e
    | Ok () -> ());
    if Array.length t.blocks <> Ba_ir.Proc.n_blocks t.proc then
      fail "layout block count mismatch";
    Array.iteri
      (fun i lb ->
        if lb.src <> t.decision.Decision.order.(i) then
          fail "position %d: source block does not match decision" i;
        let check pos = if not (in_range pos) then fail "position %d: target out of range" i in
        let next_exists = i + 1 < n in
        match lb.term with
        | Lnone -> if not next_exists then fail "last block falls through off the end"
        | Ljump pos -> check pos
        | Lcond { taken_pos; inserted_jump; _ } ->
          check taken_pos;
          (match inserted_jump with
          | Some pos -> check pos
          | None -> if not next_exists then fail "last block's conditional falls off the end")
        | Lswitch { positions; weights } ->
          Array.iter check positions;
          if Array.length positions <> Array.length weights then
            fail "position %d: switch arity mismatch" i
        | Lcall { cont; _ } | Lvcall { cont; _ } -> (
          match cont with
          | Jump_to pos -> check pos
          | Fall -> if not next_exists then fail "last block's call falls off the end")
        | Lret | Lhalt -> ())
      t.blocks;
    Ok ()
  with Bad msg -> Error msg

let pp_cont ppf = function
  | Fall -> Fmt.string ppf "fall"
  | Jump_to p -> Fmt.pf ppf "jump@%d" p

let pp_lterm ppf = function
  | Lnone -> Fmt.string ppf "fall"
  | Ljump p -> Fmt.pf ppf "jump@%d" p
  | Lcond { taken_pos; taken_on; inserted_jump } ->
    Fmt.pf ppf "cond(taken when %b)@%d%a" taken_on taken_pos
      (Fmt.option (fun ppf p -> Fmt.pf ppf " +jump@%d" p))
      inserted_jump
  | Lswitch _ -> Fmt.string ppf "switch"
  | Lcall { callee; cont } -> Fmt.pf ppf "call p%d %a" callee pp_cont cont
  | Lvcall { cont; _ } -> Fmt.pf ppf "vcall %a" pp_cont cont
  | Lret -> Fmt.string ppf "ret"
  | Lhalt -> Fmt.string ppf "halt"

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun i lb ->
      Fmt.pf ppf "%2d: b%-3d addr=%-6d insns=%-3d %a@," i lb.src lb.addr lb.insns
        pp_lterm lb.term)
    t.blocks;
  Fmt.pf ppf "@]"
