type t = {
  program : Ba_ir.Program.t;
  linears : Linear.t array;
  bases : int array;
  total_size : int;
}

let build ?profile ?pads program decisions =
  Ba_obs.Span.with_ "lower" @@ fun () ->
  let n = Ba_ir.Program.n_procs program in
  if Array.length decisions <> n then
    invalid_arg "Image.build: one decision per procedure required";
  (match pads with
  | Some pads ->
    if Array.length pads <> n then
      invalid_arg "Image.build: one pad per procedure required";
    Array.iter (fun pad -> if pad < 0 then invalid_arg "Image.build: negative pad") pads
  | None -> ());
  let linears =
    Array.init n (fun p ->
        let proc = Ba_ir.Program.proc program p in
        let cond_counts =
          match profile with
          | Some prof -> Some (fun b -> Ba_cfg.Profile.cond_counts prof p b)
          | None -> None
        in
        Lower.lower ?cond_counts proc decisions.(p))
  in
  let bases = Array.make n 0 in
  let addr = ref 0 in
  Array.iteri
    (fun p linear ->
      (match pads with
      | Some pads -> addr := !addr + pads.(p)
      | None -> ());
      bases.(p) <- !addr;
      Array.iter
        (fun (lb : Linear.lblock) ->
          lb.Linear.addr <- !addr;
          addr := !addr + Linear.block_size lb)
        linear.Linear.blocks)
    linears;
  { program; linears; bases; total_size = !addr }

let original ?profile program =
  let decisions =
    Array.init (Ba_ir.Program.n_procs program) (fun p ->
        Decision.identity (Ba_ir.Program.proc program p))
  in
  build ?profile program decisions

let entry_addr t p = t.bases.(p)

let block_addr t p b =
  let linear = t.linears.(p) in
  let pos = (Decision.position linear.Linear.decision).(b) in
  linear.Linear.blocks.(pos).Linear.addr

let lblock t p pos = t.linears.(p).Linear.blocks.(pos)

let validate t =
  let n = Array.length t.linears in
  let rec check p =
    if p = n then Ok ()
    else
      match Linear.validate t.linears.(p) with
      | Error e ->
        Error (Printf.sprintf "%s: %s" (Ba_ir.Program.proc t.program p).Ba_ir.Proc.name e)
      | Ok () -> check (p + 1)
  in
  check 0
