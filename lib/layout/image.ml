type t = {
  program : Ba_ir.Program.t;
  linears : Linear.t array;
  bases : int array;
  total_size : int;
}

let build ?profile ?pads program decisions =
  Ba_obs.Span.with_ "lower" @@ fun () ->
  let n = Ba_ir.Program.n_procs program in
  if Array.length decisions <> n then
    invalid_arg "Image.build: one decision per procedure required";
  (match pads with
  | Some pads ->
    if Array.length pads <> n then
      invalid_arg "Image.build: one pad per procedure required";
    Array.iter (fun pad -> if pad < 0 then invalid_arg "Image.build: negative pad") pads
  | None -> ());
  let linears =
    Array.init n (fun p ->
        let proc = Ba_ir.Program.proc program p in
        let cond_counts =
          match profile with
          | Some prof -> Some (fun b -> Ba_cfg.Profile.cond_counts prof p b)
          | None -> None
        in
        Lower.lower ?cond_counts proc decisions.(p))
  in
  let bases = Array.make n 0 in
  let addr = ref 0 in
  Array.iteri
    (fun p linear ->
      (match pads with
      | Some pads -> addr := !addr + pads.(p)
      | None -> ());
      bases.(p) <- !addr;
      Array.iter
        (fun (lb : Linear.lblock) ->
          lb.Linear.addr <- !addr;
          addr := !addr + Linear.block_size lb)
        linear.Linear.blocks)
    linears;
  { program; linears; bases; total_size = !addr }

type interproc = {
  image : t;
  proc_order : int array;
  splits : int array;
  hot_size : int;
}

let m_interproc = Ba_obs.Counter.make ~unit_:"images" "layout.interproc.images"

let m_split_procs =
  Ba_obs.Counter.make ~unit_:"procs" "layout.interproc.split_procs"

let m_cold_insns =
  Ba_obs.Counter.make ~unit_:"insns" "layout.interproc.cold_insns"

(* Call-graph edge weights: how often procedure [p] transfers to callee
   [q], from the caller block's visit counts (virtual calls apportioned by
   their weight tables).  Deterministic: callers ascending, blocks
   ascending, vcall callees in table order. *)
let call_edges profile program =
  let n = Ba_ir.Program.n_procs program in
  let weights = Hashtbl.create 16 in
  let add p q w =
    if w > 0.0 && p <> q then
      let key = (p, q) in
      Hashtbl.replace weights key
        (w +. try Hashtbl.find weights key with Not_found -> 0.0)
  in
  for p = 0 to n - 1 do
    let proc = Ba_ir.Program.proc program p in
    for b = 0 to Ba_ir.Proc.n_blocks proc - 1 do
      let visits = float_of_int (Ba_cfg.Profile.visits profile p b) in
      match (Ba_ir.Proc.block proc b).Ba_ir.Block.term with
      | Ba_ir.Term.Call { callee; _ } -> add p callee visits
      | Ba_ir.Term.Vcall { callees; _ } ->
        let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 callees in
        if total > 0.0 then
          Array.iter (fun (q, w) -> add p q (visits *. w /. total)) callees
      | _ -> ()
    done
  done;
  let edges = Hashtbl.fold (fun (p, q) w acc -> (p, q, w) :: acc) weights [] in
  (* heaviest first; ties by (caller, callee) so the order is total *)
  List.sort
    (fun (p1, q1, w1) (p2, q2, w2) -> compare (w2, p1, q1) (w1, p2, q2))
    edges

(* Pettis-Hansen-style procedure chaining over the call graph: walk call
   edges heaviest-first, appending the callee's chain after the caller's
   whenever they are still distinct, so hot callees land right after their
   hot callers.  The entry procedure's chain is pinned first; remaining
   chains follow by total entry-visit hotness (ties by smallest pid). *)
let stitch_order profile program =
  let n = Ba_ir.Program.n_procs program in
  let chain_of = Array.init n (fun p -> p) in
  let members = Array.init n (fun p -> ref [ p ]) in
  List.iter
    (fun (p, q, _) ->
      let a = chain_of.(p) and b = chain_of.(q) in
      if a <> b && b <> chain_of.(0) then begin
        List.iter (fun r -> chain_of.(r) <- a) !(members.(b));
        members.(a) := !(members.(a)) @ !(members.(b));
        members.(b) := []
      end)
    (call_edges profile program);
  let hotness c =
    List.fold_left
      (fun acc p ->
        acc + Ba_cfg.Profile.visits profile p Ba_ir.Proc.entry)
      0 !(members.(c))
  in
  let live =
    List.filter
      (fun c -> chain_of.(c) = c && c <> chain_of.(0))
      (List.init n (fun i -> i))
  in
  let rest =
    List.stable_sort (fun c1 c2 -> compare (hotness c2, c1) (hotness c1, c2)) live
  in
  Array.of_list (List.concat_map (fun c -> !(members.(c))) (chain_of.(0) :: rest))

(* The first layout position of the procedure's cold suffix (its block
   count when nothing is cold): the longest all-cold tail that keeps the
   entry hot and is only entered through an explicit transfer — the block
   before the split must not fall through, or the gap would break the
   control flow the addresses describe. *)
let split_point profile ~cold_threshold p (linear : Linear.t) =
  let blocks = linear.Linear.blocks in
  let n = Array.length blocks in
  let cold i =
    Ba_cfg.Profile.visits profile p blocks.(i).Linear.src <= cold_threshold
  in
  let s = ref n in
  while !s > 1 && cold (!s - 1) do decr s done;
  while !s < n && Linear.falls_through blocks.(!s - 1) do incr s done;
  !s

let build_interproc ?pads ?(cold_threshold = 0) ~profile program decisions =
  Ba_obs.Span.with_ "lower" @@ fun () ->
  let n = Ba_ir.Program.n_procs program in
  if Array.length decisions <> n then
    invalid_arg "Image.build_interproc: one decision per procedure required";
  (match pads with
  | Some pads ->
    if Array.length pads <> n then
      invalid_arg "Image.build_interproc: one pad per procedure required";
    Array.iter
      (fun pad ->
        if pad < 0 then invalid_arg "Image.build_interproc: negative pad")
      pads
  | None -> ());
  if cold_threshold < 0 then
    invalid_arg "Image.build_interproc: negative cold threshold";
  let linears =
    Array.init n (fun p ->
        let proc = Ba_ir.Program.proc program p in
        Lower.lower
          ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile p b)
          proc decisions.(p))
  in
  let proc_order = stitch_order profile program in
  let splits =
    Array.init n (fun p -> split_point profile ~cold_threshold p linears.(p))
  in
  (* Hot prefixes in stitched order (with the pads), then every cold
     suffix in the same order in one trailing cold section.  Addresses
     stay strictly increasing with layout position inside each procedure,
     so the positional taken-branch direction the cost model and the
     bisimulation use agrees with the address direction the predictors
     see. *)
  let bases = Array.make n 0 in
  let addr = ref 0 in
  Array.iter
    (fun p ->
      (match pads with Some pads -> addr := !addr + pads.(p) | None -> ());
      bases.(p) <- !addr;
      let blocks = linears.(p).Linear.blocks in
      for i = 0 to splits.(p) - 1 do
        blocks.(i).Linear.addr <- !addr;
        addr := !addr + Linear.block_size blocks.(i)
      done)
    proc_order;
  let hot_size = !addr in
  Array.iter
    (fun p ->
      let blocks = linears.(p).Linear.blocks in
      for i = splits.(p) to Array.length blocks - 1 do
        blocks.(i).Linear.addr <- !addr;
        addr := !addr + Linear.block_size blocks.(i)
      done)
    proc_order;
  Ba_obs.Counter.incr m_interproc;
  Array.iteri
    (fun p s ->
      let blocks = linears.(p).Linear.blocks in
      if s < Array.length blocks then begin
        Ba_obs.Counter.incr m_split_procs;
        let cold = ref 0 in
        for i = s to Array.length blocks - 1 do
          cold := !cold + Linear.block_size blocks.(i)
        done;
        Ba_obs.Counter.add m_cold_insns !cold
      end)
    splits;
  let image = { program; linears; bases; total_size = !addr } in
  { image; proc_order; splits; hot_size }

let original ?profile program =
  let decisions =
    Array.init (Ba_ir.Program.n_procs program) (fun p ->
        Decision.identity (Ba_ir.Program.proc program p))
  in
  build ?profile program decisions

let entry_addr t p = t.bases.(p)

let block_addr t p b =
  let linear = t.linears.(p) in
  let pos = (Decision.position linear.Linear.decision).(b) in
  linear.Linear.blocks.(pos).Linear.addr

let lblock t p pos = t.linears.(p).Linear.blocks.(pos)

let validate t =
  let n = Array.length t.linears in
  let rec check p =
    if p = n then Ok ()
    else
      match Linear.validate t.linears.(p) with
      | Error e ->
        Error (Printf.sprintf "%s: %s" (Ba_ir.Program.proc t.program p).Ba_ir.Proc.name e)
      | Ok () -> check (p + 1)
  in
  check 0
