(** Whole-program code images.

    An image is the program with one linear layout per procedure and
    absolute addresses assigned (procedures are placed in program order —
    the paper reorders blocks within procedures only).  Addresses count
    instructions; procedure [p]'s code starts at [bases.(p)]. *)

type t = {
  program : Ba_ir.Program.t;
  linears : Linear.t array;
  bases : int array;
  total_size : int;
}

val build :
  ?profile:Ba_cfg.Profile.t ->
  ?pads:int array ->
  Ba_ir.Program.t ->
  Decision.t array ->
  t
(** [build program decisions] lowers every procedure and assigns addresses.
    [profile], when given, supplies the conditional counts used by
    {!Lower.lower} for neither-adjacent conditionals.  [pads], when given,
    inserts that many unused instruction slots {e before} each procedure
    (conflict-aware placement shifts procedures to steer predictor
    indices; the gap is never fetched, so execution is unchanged).  Raises
    [Invalid_argument] if the decision or pad array length does not match,
    any pad is negative, or any decision is invalid. *)

type interproc = {
  image : t;
  proc_order : int array;
      (** placement order of the procedures' hot regions (a permutation of
          proc ids; [bases] stays indexed by proc id as always) *)
  splits : int array;
      (** per-procedure first cold layout position; the procedure's block
          count when nothing was split *)
  hot_size : int;
      (** address where the trailing cold section begins (pads included) *)
}

val build_interproc :
  ?pads:int array ->
  ?cold_threshold:int ->
  profile:Ba_cfg.Profile.t ->
  Ba_ir.Program.t ->
  Decision.t array ->
  interproc
(** Inter-procedural layout (Codestitcher-style): procedures are chained
    along their heaviest call edges so hot callees land right after their
    hot callers (the entry procedure first), and each procedure's all-cold
    layout suffix — blocks visited at most [cold_threshold] times
    (default 0) — is moved to one trailing cold section.

    Decisions are untouched: every procedure keeps its block permutation,
    so lowering, per-procedure costs and the bisimulation witness are the
    same as {!build}'s.  Only address assignment changes, and addresses
    remain strictly increasing with layout position inside each procedure
    (the cold suffix sits above every hot region), so positional
    taken-branch direction and address direction still agree.  A cold
    suffix is only split off after a block that does not fall through
    ({!Linear.falls_through}), keeping the address map honest about
    reachability; the splitter shrinks the suffix until that holds.

    [pads], as in {!build}, inserts unused slots before each procedure's
    hot region (in placement order) — the same mechanism conflict-aware
    placement uses.  Raises [Invalid_argument] on the same conditions as
    {!build} plus a negative [cold_threshold]. *)

val original : ?profile:Ba_cfg.Profile.t -> Ba_ir.Program.t -> t
(** The identity layout of every procedure — the "Orig" rows of the paper's
    tables. *)

val entry_addr : t -> Ba_ir.Term.proc_id -> int

val block_addr : t -> Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> int
(** Address of a semantic block in the image. *)

val lblock : t -> Ba_ir.Term.proc_id -> int -> Linear.lblock
(** Layout block by (procedure, layout position). *)

val validate : t -> (unit, string) result
