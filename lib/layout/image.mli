(** Whole-program code images.

    An image is the program with one linear layout per procedure and
    absolute addresses assigned (procedures are placed in program order —
    the paper reorders blocks within procedures only).  Addresses count
    instructions; procedure [p]'s code starts at [bases.(p)]. *)

type t = {
  program : Ba_ir.Program.t;
  linears : Linear.t array;
  bases : int array;
  total_size : int;
}

val build :
  ?profile:Ba_cfg.Profile.t ->
  ?pads:int array ->
  Ba_ir.Program.t ->
  Decision.t array ->
  t
(** [build program decisions] lowers every procedure and assigns addresses.
    [profile], when given, supplies the conditional counts used by
    {!Lower.lower} for neither-adjacent conditionals.  [pads], when given,
    inserts that many unused instruction slots {e before} each procedure
    (conflict-aware placement shifts procedures to steer predictor
    indices; the gap is never fetched, so execution is unchanged).  Raises
    [Invalid_argument] if the decision or pad array length does not match,
    any pad is negative, or any decision is invalid. *)

val original : ?profile:Ba_cfg.Profile.t -> Ba_ir.Program.t -> t
(** The identity layout of every procedure — the "Orig" rows of the paper's
    tables. *)

val entry_addr : t -> Ba_ir.Term.proc_id -> int

val block_addr : t -> Ba_ir.Term.proc_id -> Ba_ir.Term.block_id -> int
(** Address of a semantic block in the image. *)

val lblock : t -> Ba_ir.Term.proc_id -> int -> Linear.lblock
(** Layout block by (procedure, layout position). *)

val validate : t -> (unit, string) result
