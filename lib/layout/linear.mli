(** Laid-out ("linear") procedure code.

    This is the output of lowering a block permutation: an array of layout
    blocks in final order, with every control transfer resolved to a layout
    position and every needed branch instruction made explicit.  It is what
    the interpreter executes and what addresses are assigned to.

    Instruction accounting: addresses count instructions (one address unit
    per instruction).  A layout block occupies its straight-line
    instructions, then its terminator's branch instruction(s), if any. *)

type cont = Fall | Jump_to of int
(** How control continues after a call returns: straight to the next layout
    block, or through an inserted unconditional jump. *)

type lterm =
  | Lnone  (** pure fall-through; no branch instruction *)
  | Ljump of int  (** unconditional branch to a layout position *)
  | Lcond of { taken_pos : int; taken_on : bool; inserted_jump : int option }
      (** conditional branch: when the semantic outcome equals [taken_on]
          the branch is taken to [taken_pos]; otherwise control falls
          through — either to the next layout block, or (the paper's "align
          neither edge" case) to an inserted unconditional jump targeting
          [inserted_jump]. *)
  | Lswitch of { positions : int array; weights : float array }
      (** indirect jump; target chosen by weighted draw at run time *)
  | Lcall of { callee : Ba_ir.Term.proc_id; cont : cont }
  | Lvcall of { callees : Ba_ir.Term.proc_id array; weights : float array; cont : cont }
  | Lret
  | Lhalt

type lblock = {
  src : Ba_ir.Term.block_id;  (** originating semantic block *)
  insns : int;  (** straight-line instructions *)
  term : lterm;
  mutable addr : int;  (** absolute address; assigned by {!Image.build} *)
}

type t = { proc : Ba_ir.Proc.t; decision : Decision.t; blocks : lblock array }

val term_insns : lterm -> int
(** Branch instructions a terminator contributes to its layout block (0 for
    pure fall-through, 2 for a conditional with an inserted jump or a call
    with a continuation jump, 1 otherwise). *)

val block_size : lblock -> int
(** Total instructions the layout block occupies, branch instruction(s)
    included. *)

val code_size : t -> int

val falls_through : lblock -> bool
(** Can control reach the next layout position implicitly, without a
    branch instruction?  True for [Lnone], a conditional without an
    inserted jump, and call continuations lowered to [Fall].  The
    inter-procedural splitter ({!Image.build_interproc}) may only open an
    address gap after a block where this is [false]. *)

val static_successors : t -> int -> int list
(** Layout positions control can transfer to from the block at the given
    position, derived from the lowered terminator alone (fall-throughs,
    branch targets, inserted jumps; call continuations but not callees).
    Out-of-range targets are silently dropped — callers validating
    structure must range-check separately.  Sorted, without duplicates. *)

val branch_pc : lblock -> int
(** Address of the terminator's (first) branch instruction.  Meaningless for
    [Lnone]/[Lhalt]. *)

val inserted_jump_pc : lblock -> int
(** Address of the inserted unconditional jump of an [Lcond] with
    [inserted_jump], or of a call continuation jump. *)

val validate : t -> (unit, string) result
(** Structural invariants: positions in range; the source permutation is the
    decision's; no block falls off the end of the procedure; fall-through
    consistency between [lterm]s and the semantic CFG. *)

val pp : Format.formatter -> t -> unit
