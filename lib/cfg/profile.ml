open Ba_ir

type block_counts = {
  mutable visits : int;
  mutable n_true : int;  (* conditionals only *)
  mutable n_false : int;
  cases : int array;  (* switches only; empty otherwise *)
}

type t = { program : Program.t; counts : block_counts array array }

let create program =
  let proc_counts p =
    Array.map
      (fun (blk : Block.t) ->
        let cases =
          match blk.term with
          | Term.Switch { targets } -> Array.make (Array.length targets) 0
          | _ -> [||]
        in
        { visits = 0; n_true = 0; n_false = 0; cases })
      p.Proc.blocks
  in
  { program; counts = Array.map proc_counts program.Program.procs }

let program t = t.program

let record_visit t p b =
  let c = t.counts.(p).(b) in
  c.visits <- c.visits + 1

let record_cond t p b outcome =
  let c = t.counts.(p).(b) in
  if outcome then c.n_true <- c.n_true + 1 else c.n_false <- c.n_false + 1

let record_switch t p b case =
  let c = t.counts.(p).(b) in
  c.cases.(case) <- c.cases.(case) + 1

let visits t p b = t.counts.(p).(b).visits

let cond_counts t p b =
  let blk = Proc.block (Program.proc t.program p) b in
  match blk.Block.term with
  | Term.Cond _ ->
    let c = t.counts.(p).(b) in
    (c.n_true, c.n_false)
  | _ -> invalid_arg "Profile.cond_counts: not a conditional block"

let switch_counts t p b =
  let blk = Proc.block (Program.proc t.program p) b in
  match blk.Block.term with
  | Term.Switch _ -> Array.copy t.counts.(p).(b).cases
  | _ -> invalid_arg "Profile.switch_counts: not a switch block"

let edge_weight t p (e : Edge.t) =
  let c = t.counts.(p).(e.src) in
  match e.kind with
  | Edge.On_true -> c.n_true
  | Edge.On_false -> c.n_false
  | Edge.Flow -> c.visits
  | Edge.Case i -> c.cases.(i)

let alignable_edges t p =
  let proc = Program.proc t.program p in
  let weighted =
    Edge.of_proc proc
    |> List.filter Edge.is_alignable
    |> List.map (fun e -> (e, edge_weight t p e))
  in
  (* Sort by decreasing weight; keep the original edge order among equals so
     the algorithms are deterministic. *)
  List.stable_sort (fun (_, w1) (_, w2) -> compare w2 w1) weighted

let likely_taken t p b =
  let n_true, n_false = cond_counts t p b in
  n_true >= n_false

let merge = function
  | [] -> invalid_arg "Profile.merge: empty list"
  | first :: rest as all ->
    List.iter
      (fun p ->
        if p.program != first.program then
          invalid_arg "Profile.merge: profiles of different programs")
      rest;
    let out = create first.program in
    List.iter
      (fun p ->
        Array.iteri
          (fun pid blocks ->
            Array.iteri
              (fun b (c : block_counts) ->
                let o = out.counts.(pid).(b) in
                o.visits <- o.visits + c.visits;
                o.n_true <- o.n_true + c.n_true;
                o.n_false <- o.n_false + c.n_false;
                Array.iteri (fun i n -> o.cases.(i) <- o.cases.(i) + n) c.cases)
              blocks)
          p.counts)
      all;
    out

let scale_to_float = float_of_int
