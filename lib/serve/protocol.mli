(** The serve wire protocol.

    Frames are a 4-byte big-endian payload length followed by that many
    bytes of compact JSON — one request or response per frame, no padding.
    Requests carry a client-chosen [id]; the server echoes it in the
    response, so clients may pipeline and correlate by id.  Responses to
    compute requests preserve per-connection request order; [overloaded]
    rejections are written immediately and may overtake queued work.

    A request:  [{"id":7,"kind":"align","workload":"tower","algo":"try15",
    "arch":"btfnt","max_steps":20000}] — [workload]/[algo]/[arch]/[max_steps]
    are optional where the kind ignores them, and [algo]/[arch] accept
    exactly the command-line spellings.

    A response: [{"id":7,"status":"ok","body":{...}}], with [status] one of
    ["ok"], ["error"] (plus an ["error"] message field) or ["overloaded"]. *)

val max_frame_bytes : int
(** Frames larger than this (16 MiB) are a protocol error. *)

type kind = Ping | Align | Simulate | Verify | Analyze | Tables | Metrics

val kind_name : kind -> string
val kind_of_name : string -> (kind, string) result

type request = {
  id : int;
  kind : kind;
  workload : string;  (** ["" ] when absent *)
  algo : string;  (** command-line spelling; [""] = server default (try15) *)
  arch : string;  (** command-line spelling; [""] = server default (btfnt) *)
  max_steps : int option;
}

type status = Ok_ | Error_ of string | Overloaded

type response = { rid : int; status : status; body : Ba_util.Json.t }

val request :
  ?workload:string ->
  ?algo:string ->
  ?arch:string ->
  ?max_steps:int ->
  id:int ->
  kind ->
  request

val request_to_json : request -> Ba_util.Json.t
val request_of_json : Ba_util.Json.t -> (request, string) result
val response_to_json : response -> Ba_util.Json.t
val response_of_json : Ba_util.Json.t -> (response, string) result

val frame : string -> string
(** Prefix a payload with its length header. *)

(** Incremental frame decoder for non-blocking reads. *)
module Framer : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> int -> (unit, string) result
  (** [feed t buf off len] consumes freshly-read bytes.  [Error] (an
      oversized frame) poisons the connection — close it. *)

  val next : t -> string option
  (** Pop the next complete payload, in arrival order. *)
end

(** {1 Blocking IO} — used by the client and the tests; the server's IO
    loop uses {!Framer} over non-blocking reads instead. *)

val read_frame : Unix.file_descr -> string option
(** [None] on a clean EOF at a frame boundary; raises [End_of_file] on a
    truncated frame and [Failure] on an oversized one. *)

val write_frame : Unix.file_descr -> string -> unit
val write_response : Unix.file_descr -> response -> unit
val write_request : Unix.file_descr -> request -> unit
