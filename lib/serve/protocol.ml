(* Wire protocol: 4-byte big-endian payload length, then a JSON document.
   One request or response per frame.  The framing is deliberately dumb —
   everything interesting (kinds, status, bodies) lives in the JSON, so the
   protocol can grow fields without breaking old frames. *)

let max_frame_bytes = 16 * 1024 * 1024

type kind = Ping | Align | Simulate | Verify | Analyze | Tables | Metrics

let kind_name = function
  | Ping -> "ping"
  | Align -> "align"
  | Simulate -> "simulate"
  | Verify -> "verify"
  | Analyze -> "analyze"
  | Tables -> "tables"
  | Metrics -> "metrics"

let kind_of_name = function
  | "ping" -> Ok Ping
  | "align" -> Ok Align
  | "simulate" -> Ok Simulate
  | "verify" -> Ok Verify
  | "analyze" -> Ok Analyze
  | "tables" -> Ok Tables
  | "metrics" -> Ok Metrics
  | s -> Error (Printf.sprintf "unknown request kind %S" s)

type request = {
  id : int;
  kind : kind;
  workload : string;  (* ignored by ping/metrics *)
  algo : string;  (* spelling as on the command line; "" = default *)
  arch : string;  (* likewise *)
  max_steps : int option;
}

type status = Ok_ | Error_ of string | Overloaded

type response = { rid : int; status : status; body : Ba_util.Json.t }

let request ?(workload = "") ?(algo = "") ?(arch = "") ?max_steps ~id kind =
  { id; kind; workload; algo; arch; max_steps }

let request_to_json (r : request) =
  let open Ba_util.Json in
  Obj
    (List.concat
       [
         [ ("id", Int r.id); ("kind", String (kind_name r.kind)) ];
         (if r.workload = "" then [] else [ ("workload", String r.workload) ]);
         (if r.algo = "" then [] else [ ("algo", String r.algo) ]);
         (if r.arch = "" then [] else [ ("arch", String r.arch) ]);
         (match r.max_steps with
         | None -> []
         | Some s -> [ ("max_steps", Int s) ]);
       ])

let request_of_json (j : Ba_util.Json.t) : (request, string) result =
  let open Ba_util.Json in
  let str key default =
    match member key j with
    | None -> Ok default
    | Some v -> (
      match to_string_opt v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "request field %S must be a string" key))
  in
  match member "id" j with
  | None -> Error "request missing \"id\""
  | Some idv -> (
    match to_int_opt idv with
    | None -> Error "request field \"id\" must be an integer"
    | Some id -> (
      match member "kind" j with
      | None -> Error "request missing \"kind\""
      | Some kv -> (
        match to_string_opt kv with
        | None -> Error "request field \"kind\" must be a string"
        | Some ks -> (
          match kind_of_name ks with
          | Error e -> Error e
          | Ok kind -> (
            match (str "workload" "", str "algo" "", str "arch" "") with
            | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
            | Ok workload, Ok algo, Ok arch -> (
              match member "max_steps" j with
              | None -> Ok { id; kind; workload; algo; arch; max_steps = None }
              | Some sv -> (
                match to_int_opt sv with
                | Some s when s > 0 ->
                  Ok { id; kind; workload; algo; arch; max_steps = Some s }
                | Some _ | None ->
                  Error "request field \"max_steps\" must be a positive integer"))))))
    )

let status_name = function
  | Ok_ -> "ok"
  | Error_ _ -> "error"
  | Overloaded -> "overloaded"

let response_to_json (r : response) =
  let open Ba_util.Json in
  Obj
    (List.concat
       [
         [ ("id", Int r.rid); ("status", String (status_name r.status)) ];
         (match r.status with
         | Error_ msg -> [ ("error", String msg) ]
         | Ok_ | Overloaded -> []);
         (match r.body with Null -> [] | body -> [ ("body", body) ]);
       ])

let response_of_json (j : Ba_util.Json.t) : (response, string) result =
  let open Ba_util.Json in
  match Option.bind (member "id" j) to_int_opt with
  | None -> Error "response missing integer \"id\""
  | Some rid -> (
    match Option.bind (member "status" j) to_string_opt with
    | None -> Error "response missing \"status\""
    | Some s ->
      let body = Option.value ~default:Null (member "body" j) in
      (match s with
      | "ok" -> Ok { rid; status = Ok_; body }
      | "overloaded" -> Ok { rid; status = Overloaded; body }
      | "error" ->
        let msg =
          Option.value ~default:"unknown error"
            (Option.bind (member "error" j) to_string_opt)
        in
        Ok { rid; status = Error_ msg; body }
      | s -> Error (Printf.sprintf "unknown response status %S" s)))

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let frame payload =
  let n = String.length payload in
  if n > max_frame_bytes then invalid_arg "Protocol.frame: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

module Framer = struct
  (* Incremental decoder for the non-blocking server loop: feed whatever
     bytes arrived, pop complete payloads in order. *)
  type t = {
    mutable header : int;  (* header bytes consumed, < 4 while reading it *)
    mutable need : int;  (* payload length once the header is complete *)
    mutable partial : Buffer.t;
    ready : string Queue.t;
    hdr : Bytes.t;
  }

  let create () =
    {
      header = 0;
      need = -1;
      partial = Buffer.create 256;
      ready = Queue.create ();
      hdr = Bytes.create 4;
    }

  let feed t buf off len =
    let i = ref off in
    let stop = off + len in
    let err = ref None in
    while !i < stop && !err = None do
      if t.need < 0 then begin
        Bytes.set t.hdr t.header (Bytes.get buf !i);
        t.header <- t.header + 1;
        incr i;
        if t.header = 4 then begin
          let n =
            (Bytes.get_uint8 t.hdr 0 lsl 24)
            lor (Bytes.get_uint8 t.hdr 1 lsl 16)
            lor (Bytes.get_uint8 t.hdr 2 lsl 8)
            lor Bytes.get_uint8 t.hdr 3
          in
          if n > max_frame_bytes then
            err := Some (Printf.sprintf "frame of %d bytes exceeds limit" n)
          else begin
            t.need <- n;
            t.header <- 0;
            if n = 0 then begin
              Queue.add "" t.ready;
              t.need <- -1
            end
          end
        end
      end
      else begin
        let take = min (stop - !i) (t.need - Buffer.length t.partial) in
        Buffer.add_subbytes t.partial buf !i take;
        i := !i + take;
        if Buffer.length t.partial = t.need then begin
          Queue.add (Buffer.contents t.partial) t.ready;
          Buffer.clear t.partial;
          t.need <- -1
        end
      end
    done;
    match !err with None -> Ok () | Some e -> Error e

  let next t = Queue.take_opt t.ready
end

(* ------------------------------------------------------------------ *)
(* Blocking IO (clients, tests)                                        *)

let rec really_read fd buf off len =
  if len > 0 then begin
    let n = Unix.read fd buf off len in
    if n = 0 then raise End_of_file;
    really_read fd buf (off + n) (len - n)
  end

let rec really_write fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    really_write fd buf (off + n) (len - n)
  end

let read_frame fd : string option =
  let hdr = Bytes.create 4 in
  match really_read fd hdr 0 4 with
  | exception End_of_file -> None
  | () ->
    let n =
      (Bytes.get_uint8 hdr 0 lsl 24)
      lor (Bytes.get_uint8 hdr 1 lsl 16)
      lor (Bytes.get_uint8 hdr 2 lsl 8)
      lor Bytes.get_uint8 hdr 3
    in
    if n > max_frame_bytes then
      failwith (Printf.sprintf "frame of %d bytes exceeds limit" n);
    let payload = Bytes.create n in
    really_read fd payload 0 n;
    Some (Bytes.unsafe_to_string payload)

let write_frame fd payload =
  let framed = frame payload in
  really_write fd (Bytes.unsafe_of_string framed) 0 (String.length framed)

let write_response fd (r : response) =
  write_frame fd (Ba_util.Json.to_string (response_to_json r))

let write_request fd (r : request) =
  write_frame fd (Ba_util.Json.to_string (request_to_json r))
