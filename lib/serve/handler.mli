(** Request execution: the CLI pipelines rendered as JSON bodies.

    {!handle} is a pure function of the request — profiles and traces come
    from the deterministic {!Ba_workloads.Profiled} cache and every body
    field is computed by the same code paths the CLI commands print from —
    so a batch of handlers dispatched through {!Ba_par.Pool} produces
    byte-identical responses at any [-j].  [metrics] requests are the one
    exception: they read server state, so {!Server} answers them itself and
    {!handle} returns an error for them. *)

val handle : Protocol.request -> Protocol.response
