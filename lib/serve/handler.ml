(* Request execution.  Each handler mirrors the corresponding CLI command's
   pipeline but renders a JSON body instead of an ASCII table, so a served
   response carries the same numbers the command line would print.  Handlers
   are pure functions of the request (profiles and traces come from the
   deterministic Profiled cache), which is what makes batched responses
   byte-identical at any [-j]. *)

open Ba_util

let bep_archs =
  [
    Ba_sim.Bep.Static_fallthrough;
    Ba_sim.Bep.Static_btfnt;
    Ba_sim.Bep.Pht_direct { entries = 4096 };
    Ba_sim.Bep.Pht_gshare { entries = 4096; history_bits = 12 };
    Ba_sim.Bep.Btb_arch { entries = 256; assoc = 4 };
  ]

type algo = Core of Ba_core.Align.algo | Anneal

let parse_algo = function
  | "" -> Ok (Core (Ba_core.Align.Tryn 15))
  | "anneal" -> Ok Anneal
  | s -> Result.map (fun a -> Core a) (Ba_core.Align.algo_of_name s)

let parse_arch = function
  | "" -> Ok Ba_core.Cost_model.Btfnt
  | s -> Ba_core.Cost_model.arch_of_name s

let lookup_workload = function
  | "" -> Error "request needs a \"workload\" field"
  | name -> (
    match Ba_workloads.Spec.by_name name with
    | Some w -> Ok w
    | None -> Error (Printf.sprintf "unknown workload %S" name))

(* The (workload, algo, arch, max_steps) quadruple every compute kind
   starts from. *)
let resolve (r : Protocol.request) =
  match lookup_workload r.Protocol.workload with
  | Error e -> Error e
  | Ok w -> (
    match parse_algo r.Protocol.algo with
    | Error e -> Error e
    | Ok algo -> (
      match parse_arch r.Protocol.arch with
      | Error e -> Error e
      | Ok arch ->
        let max_steps =
          match r.Protocol.max_steps with
          | Some s -> s
          | None -> Ba_workloads.Spec.default_max_steps
        in
        Ok (w, algo, arch, max_steps)))

let algo_name = function
  | Core a -> Ba_core.Align.algo_name a
  | Anneal -> "anneal"

let decisions_for ~algo ~arch program profile =
  let n = Ba_ir.Program.n_procs program in
  match algo with
  | Core Ba_core.Align.Original ->
    Array.init n (fun p ->
        Ba_layout.Decision.identity (Ba_ir.Program.proc program p))
  | Core a -> Ba_core.Align.align_program a ~arch profile
  | Anneal ->
    (* Seed 0, default sweeps — the CLI's defaults.  Runs inline (no pool):
       handlers already execute inside pool tasks. *)
    Array.init n (fun pid ->
        Ba_delta.Anneal.align_proc ~seed:0
          ~sweeps:Ba_delta.Anneal.default_sweeps ~arch profile pid)

let align_body ~w ~algo ~arch ~max_steps =
  let workload = (w : Ba_workloads.Spec.t) in
  let program, profile, trace =
    Ba_workloads.Profiled.get_traced ~max_steps workload
  in
  let decisions = decisions_for ~algo ~arch program profile in
  let n = Ba_ir.Program.n_procs program in
  let total = ref 0.0 in
  let procs =
    List.init n (fun p ->
        let proc = Ba_ir.Program.proc program p in
        let d = decisions.(p) in
        let cost =
          Ba_delta.Model.total
            (Ba_delta.Model.create ~arch
               ~visits:(fun b -> Ba_cfg.Profile.visits profile p b)
               ~cond_counts:(fun b -> Ba_cfg.Profile.cond_counts profile p b)
               proc d)
        in
        total := !total +. cost;
        let forced =
          let parts = ref [] in
          Array.iteri
            (fun b leg ->
              match leg with
              | Some l ->
                parts :=
                  Json.Obj
                    [
                      ("block", Json.Int b);
                      ("leg", Json.String (Ba_layout.Decision.leg_name l));
                    ]
                  :: !parts
              | None -> ())
            d.Ba_layout.Decision.neither;
          List.rev !parts
        in
        Json.Obj
          [
            ("proc", Json.Int p);
            ("name", Json.String proc.Ba_ir.Proc.name);
            ( "order",
              Json.List
                (List.map
                   (fun b -> Json.Int b)
                   (Array.to_list d.Ba_layout.Decision.order)) );
            ("forced", Json.List forced);
            ("cost", Json.Float cost);
          ])
  in
  let spec = Ba_delta.Eval.spec_of_model arch in
  let ev = Ba_delta.Eval.create ~specs:[| spec |] profile trace decisions in
  Json.Obj
    [
      ("workload", Json.String workload.Ba_workloads.Spec.name);
      ("algo", Json.String (algo_name algo));
      ("arch", Json.String (Ba_core.Cost_model.arch_name arch));
      ("procs", Json.List procs);
      ("total_cost", Json.Float !total);
      ("penalty_model", Json.String (Ba_delta.Eval.spec_label spec));
      ("penalty_cycles", Json.Int (Ba_delta.Eval.cost_arch ev 0 decisions));
    ]

let simulate_body ~w ~algo ~arch ~max_steps =
  let workload = (w : Ba_workloads.Spec.t) in
  let core_algo =
    match algo with
    | Core a -> a
    | Anneal -> invalid_arg "simulate does not accept the anneal search"
  in
  let program, profile, trace =
    Ba_workloads.Profiled.get_traced ~max_steps workload
  in
  let image =
    match core_algo with
    | Ba_core.Align.Original -> Ba_layout.Image.original ~profile program
    | _ -> Ba_core.Align.image core_algo ~arch profile
  in
  let archs =
    Ba_sim.Bep.Static_likely (Ba_predict.Likely_bits.build image profile)
    :: bep_archs
  in
  let out = Ba_sim.Runner.simulate ~max_steps ~trace ~archs image in
  let sims =
    List.map
      (fun (a, sim) ->
        let counts = Ba_sim.Bep.counts sim in
        Json.Obj
          [
            ("label", Json.String (Ba_sim.Bep.arch_label a));
            ("accuracy", Json.Float (100.0 *. Ba_sim.Bep.cond_accuracy sim));
            ("misfetches", Json.Int counts.Ba_sim.Bep.misfetches);
            ("mispredicts", Json.Int counts.Ba_sim.Bep.mispredicts);
            ("bep_cycles", Json.Int (Ba_sim.Bep.bep sim));
          ])
      (Array.to_list out.Ba_sim.Runner.sims)
  in
  Json.Obj
    [
      ("workload", Json.String workload.Ba_workloads.Spec.name);
      ("algo", Json.String (Ba_core.Align.algo_name core_algo));
      ("arch", Json.String (Ba_core.Cost_model.arch_name arch));
      ( "branches",
        Json.Int out.Ba_sim.Runner.result.Ba_exec.Engine.branches );
      ("insns", Json.Int out.Ba_sim.Runner.result.Ba_exec.Engine.insns);
      ("architectures", Json.List sims);
    ]

let verify_body ~w ~algo ~arch ~max_steps =
  let workload = (w : Ba_workloads.Spec.t) in
  let core_algo =
    match algo with
    | Core a -> a
    | Anneal -> invalid_arg "verify does not accept the anneal search"
  in
  let program, profile, trace =
    Ba_workloads.Profiled.get_traced ~max_steps workload
  in
  let result =
    Ba_verify.Run.verify_pipeline ~arch ~max_steps ~profile ~trace ~audit:true
      ~algo:core_algo program
  in
  let diags = Ba_verify.Run.diagnostics result in
  let e, warn, i = Ba_analysis.Diagnostic.count diags in
  Json.Obj
    [
      ("workload", Json.String workload.Ba_workloads.Spec.name);
      ("algo", Json.String (Ba_core.Align.algo_name core_algo));
      ("arch", Json.String (Ba_core.Cost_model.arch_name arch));
      ("verified", Json.Bool result.Ba_verify.Run.verified);
      ("errors", Json.Int e);
      ("warnings", Json.Int warn);
      ("infos", Json.Int i);
      ( "certificates",
        Json.List
          (List.map Ba_verify.Certificate.to_json
             result.Ba_verify.Run.certificates) );
      ( "diagnostics",
        Json.List (List.map Ba_analysis.Diagnostic.to_json diags) );
    ]

let analyze_body ~w ~algo ~arch ~max_steps =
  let workload = (w : Ba_workloads.Spec.t) in
  let core_algo =
    match algo with
    | Core a -> a
    | Anneal -> invalid_arg "analyze does not accept the anneal search"
  in
  let program, profile, _trace =
    Ba_workloads.Profiled.get_traced ~max_steps workload
  in
  let image =
    match core_algo with
    | Ba_core.Align.Original -> Ba_layout.Image.original ~profile program
    | _ -> Ba_core.Align.image core_algo ~arch profile
  in
  let reports = Ba_conflict.Analyze.analyze ~profile image in
  Json.Obj
    [
      ("workload", Json.String workload.Ba_workloads.Spec.name);
      ("algo", Json.String (Ba_core.Align.algo_name core_algo));
      ("arch", Json.String (Ba_core.Cost_model.arch_name arch));
      ("objective", Json.Int (Ba_conflict.Analyze.objective reports));
      ("reports", Ba_conflict.Analyze.to_json reports);
    ]

let tables_body ~w ~max_steps =
  let workload = (w : Ba_workloads.Spec.t) in
  let eval = Ba_report.Harness.evaluate ~max_steps workload in
  Json.Obj
    [
      ("workload", Json.String workload.Ba_workloads.Spec.name);
      ("table2", Json.String (Ba_report.Tables.table2 [ eval ]));
      ("table3", Json.String (Ba_report.Tables.table3 [ eval ]));
      ("table4", Json.String (Ba_report.Tables.table4 [ eval ]));
    ]

let handle (r : Protocol.request) : Protocol.response =
  let ok body = { Protocol.rid = r.Protocol.id; status = Ok_; body } in
  let error msg =
    { Protocol.rid = r.Protocol.id; status = Error_ msg; body = Json.Null }
  in
  match r.Protocol.kind with
  | Protocol.Ping -> ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Metrics ->
    (* The server answers these itself (it owns the registry and the
       latency samples); reaching here means a bare handler was asked. *)
    error "metrics requests are answered by the server"
  | Protocol.Align | Protocol.Simulate | Protocol.Verify | Protocol.Analyze
  | Protocol.Tables -> (
    match resolve r with
    | Error e -> error e
    | Ok (w, algo, arch, max_steps) -> (
      match
        match r.Protocol.kind with
        | Protocol.Align -> align_body ~w ~algo ~arch ~max_steps
        | Protocol.Simulate -> simulate_body ~w ~algo ~arch ~max_steps
        | Protocol.Verify -> verify_body ~w ~algo ~arch ~max_steps
        | Protocol.Analyze -> analyze_body ~w ~algo ~arch ~max_steps
        | Protocol.Tables -> tables_body ~w ~max_steps
        | Protocol.Ping | Protocol.Metrics -> assert false
      with
      | body -> ok body
      | exception Invalid_argument msg -> error msg
      | exception Failure msg -> error msg))
