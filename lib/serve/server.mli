(** The alignment server: a Unix-socket request loop over the CLI pipelines.

    See DESIGN.md "Serving, sharded caching & backpressure" for the full
    story.  In short:

    - requests are admitted into a bounded queue; when it is full the
      server answers [overloaded] immediately instead of queueing — clients
      retry, the server never falls behind unboundedly;
    - a dispatcher drains the queue in batches of at most [batch_max] and
      executes each batch through a {!Ba_par.Pool} — task-indexed result
      slots keep every response body byte-identical at any [jobs];
    - profiles and traces come from the process-wide, byte-budgeted
      {!Ba_workloads.Profiled} LRU ([cache_mb] resizes it), so repeated
      workloads are served from memory;
    - SIGINT/SIGTERM (when [install_signals]) or {!stop} drain gracefully:
      everything already admitted is answered before the socket is
      unlinked. *)

type config = {
  socket_path : string;
  jobs : int option;  (** pool size; [None] = {!Ba_par.Pool.default_jobs} *)
  cache_mb : int option;  (** resize the {!Ba_workloads.Profiled} budget *)
  queue_len : int;  (** admission-queue bound *)
  batch_max : int;  (** max requests per dispatch batch *)
  install_signals : bool;  (** catch SIGINT/SIGTERM for graceful drain *)
}

val default_config : socket_path:string -> config
(** [queue_len = 256], [batch_max = 64], signals installed. *)

val run : config -> unit
(** Bind, serve until a stop signal arrives, drain, clean up.  Blocks the
    calling domain for the server's lifetime. *)

type handle

val start : config -> handle
(** {!run} on a background domain.  The socket is already bound and
    listening when [start] returns, so a client may connect immediately. *)

val stop : handle -> unit
(** Request a graceful drain and wait for the server to finish. *)
