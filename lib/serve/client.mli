(** Blocking protocol client.

    One connection per value; {!send}/{!recv} allow pipelining (responses
    to compute requests preserve per-connection request order, and every
    response echoes the request id), {!call} is the simple one-at-a-time
    path. *)

type t

val connect : ?retries:int -> string -> t
(** Connect to a server socket, retrying [retries] times (50 ms apart,
    default 40) while the path does not accept yet — covers the window
    between {!Server.start} and a forked CLI server actually listening. *)

val close : t -> unit
val send : t -> Protocol.request -> unit

val recv : t -> Protocol.response option
(** [None] on a clean EOF (server drained and closed). *)

val call : t -> Protocol.request -> Protocol.response
(** {!send} then {!recv}; raises on EOF. *)
