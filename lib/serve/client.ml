(* Blocking client, used by the load generator, the CLI and the tests.
   Connections are plain blocking fds; pipelining is the caller's business
   (send several, then recv and correlate by id). *)

type t = { fd : Unix.file_descr }

let connect ?(retries = 40) path =
  let rec attempt n =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd }
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* The server may still be binding; back off briefly and retry. *)
      ignore (Unix.select [] [] [] 0.05);
      attempt (n - 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  attempt retries

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req = Protocol.write_request t.fd req

let recv t =
  match Protocol.read_frame t.fd with
  | None -> None
  | Some payload -> (
    match Ba_util.Json.parse payload with
    | Error e -> failwith (Printf.sprintf "malformed response frame: %s" e)
    | Ok j -> (
      match Protocol.response_of_json j with
      | Error e -> failwith (Printf.sprintf "malformed response: %s" e)
      | Ok resp -> Some resp))

let call t req =
  send t req;
  match recv t with
  | Some resp -> resp
  | None -> failwith "server closed the connection mid-call"
