(* The serving loop.

   Two domains split the work:

   - the {e IO domain} (the caller of [run]) owns the listening socket and
     every connection: it [select]s, accepts, feeds non-blocking reads
     through each connection's {!Protocol.Framer}, and turns complete
     frames into admission-queue entries.  Overload rejections and parse
     errors are answered directly from here — they must not wait behind
     compute.
   - the {e dispatcher domain} drains the admission queue in batches of at
     most [batch_max], executes each batch with {!Ba_par.Pool.map_array}
     (task-indexed slots: responses are byte-identical at any [-j]), and
     writes the responses.  [metrics] requests are answered between
     batches, on the dispatcher, because they read the registry and the
     latency samples that batch execution writes.

   Shutdown (SIGINT, SIGTERM, or [stop]) closes the listening socket,
   wakes both domains through a self-pipe, lets the dispatcher drain every
   queued request, then closes connections and unlinks the socket path. *)

type config = {
  socket_path : string;
  jobs : int option;
  cache_mb : int option;
  queue_len : int;
  batch_max : int;
  install_signals : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    jobs = None;
    cache_mb = None;
    queue_len = 256;
    batch_max = 64;
    install_signals = true;
  }

type conn = {
  fd : Unix.file_descr;
  framer : Protocol.Framer.t;
  wmutex : Mutex.t;
  alive : bool Atomic.t;  (* false once the peer vanished *)
  pending : int Atomic.t;  (* admitted requests not yet responded to *)
  closed : bool Atomic.t;  (* the fd has been closed *)
}

(* The fd may be closed only once no queued response can still name it —
   otherwise the kernel could recycle the descriptor for a fresh accept and
   a late response would land on the wrong client.  [drop] (IO side) and
   the dispatcher's post-response bookkeeping both funnel here; the atomic
   exchange makes the close single-shot. *)
let conn_close conn =
  if not (Atomic.exchange conn.closed true) then
    try Unix.close conn.fd with Unix.Unix_error _ -> ()

type pending = {
  p_conn : conn;
  p_req : Protocol.request;
  p_enqueued : float;  (* Unix.gettimeofday at admission *)
}

(* Latency samples, microseconds.  Growable arrays so the percentiles are
   exact (nearest rank), not bucket estimates. *)
type samples = { mutable a : int array; mutable n : int }

let samples_create () = { a = Array.make 1024 0; n = 0 }

let samples_add s v =
  if s.n = Array.length s.a then begin
    let b = Array.make (2 * s.n) 0 in
    Array.blit s.a 0 b 0 s.n;
    s.a <- b
  end;
  s.a.(s.n) <- v;
  s.n <- s.n + 1

let samples_percentile sorted n q =
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let samples_summary s =
  let sorted = Array.sub s.a 0 s.n in
  Array.sort compare sorted;
  let pct q = samples_percentile sorted s.n q in
  Ba_util.Json.Obj
    [
      ("count", Ba_util.Json.Int s.n);
      ("p50_us", Ba_util.Json.Int (pct 0.50));
      ("p95_us", Ba_util.Json.Int (pct 0.95));
      ("p99_us", Ba_util.Json.Int (pct 0.99));
      ("max_us", Ba_util.Json.Int (if s.n = 0 then 0 else sorted.(s.n - 1)));
    ]

(* Volatile: wall-clock latencies can never be part of the deterministic
   metrics document. *)
let h_queue_us =
  Ba_obs.Histogram.make ~unit_:"us" ~volatile:true "serve.queue_wait_us"

let h_service_us =
  Ba_obs.Histogram.make ~unit_:"us" ~volatile:true "serve.service_us"

let m_requests = Ba_obs.Counter.make ~unit_:"requests" ~volatile:true "serve.requests"
let m_batches = Ba_obs.Counter.make ~unit_:"batches" ~volatile:true "serve.batches"

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;  (* self-pipe: signals and [stop] *)
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  queue : pending Queue.t;
  mutable io_done : bool;  (* IO loop stopped feeding the queue *)
  smutex : Mutex.t;  (* stats below *)
  queue_us : samples;
  service_us : samples;
  mutable served : int;
  mutable rejected : int;
  mutable batches : int;
  registry : Ba_obs.Registry.t;
  started : float;
}

let write_all conn s =
  (* Connection fds are non-blocking (the IO loop reads them that way);
     wait for writability between partial writes so a slow reader cannot
     wedge a response half-sent. *)
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write conn.fd b !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ conn.fd ] [] 5.0)
  done

let send_response conn (resp : Protocol.response) =
  if Atomic.get conn.alive && not (Atomic.get conn.closed) then begin
    let payload = Ba_util.Json.to_string (Protocol.response_to_json resp) in
    Mutex.lock conn.wmutex;
    (try write_all conn (Protocol.frame payload)
     with Unix.Unix_error _ -> Atomic.set conn.alive false);
    Mutex.unlock conn.wmutex
  end

(* Dispatcher side: respond, then release the admission reference; close a
   dropped connection once its last response has been accounted for. *)
let respond_and_release conn resp =
  send_response conn resp;
  let remaining = Atomic.fetch_and_add conn.pending (-1) - 1 in
  if remaining = 0 && not (Atomic.get conn.alive) then conn_close conn

let cache_stats_json () =
  let s = Ba_workloads.Profiled.lru_stats () in
  Ba_util.Json.Obj
    [
      ("hits", Ba_util.Json.Int s.Ba_par.Lru.hits);
      ("misses", Ba_util.Json.Int s.Ba_par.Lru.misses);
      ("evictions", Ba_util.Json.Int s.Ba_par.Lru.evictions);
      ("entries", Ba_util.Json.Int s.Ba_par.Lru.entries);
      ("bytes", Ba_util.Json.Int s.Ba_par.Lru.bytes);
      ("budget_bytes", Ba_util.Json.Int s.Ba_par.Lru.budget_bytes);
    ]

(* Runs on the dispatcher, between batches: the registry and the sample
   arrays are quiescent there. *)
let metrics_response t (req : Protocol.request) =
  Mutex.lock t.smutex;
  let body =
    Ba_util.Json.Obj
      [
        ("metrics", Ba_obs.Sink.to_json t.registry);
        ( "server",
          Ba_util.Json.Obj
            [
              ("uptime_s", Ba_util.Json.Float (Unix.gettimeofday () -. t.started));
              ("served", Ba_util.Json.Int t.served);
              ("overloaded", Ba_util.Json.Int t.rejected);
              ("batches", Ba_util.Json.Int t.batches);
              ("queue_wait", samples_summary t.queue_us);
              ("service", samples_summary t.service_us);
              ("cache", cache_stats_json ());
            ] );
      ]
  in
  Mutex.unlock t.smutex;
  { Protocol.rid = req.Protocol.id; status = Ok_; body }

let dispatcher_loop t pool =
  Ba_obs.Registry.set_current (Some t.registry);
  let batch = Array.make t.cfg.batch_max None in
  let rec loop () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not t.io_done do
      Condition.wait t.qcond t.qmutex
    done;
    let n = ref 0 in
    while !n < t.cfg.batch_max && not (Queue.is_empty t.queue) do
      batch.(!n) <- Some (Queue.pop t.queue);
      incr n
    done;
    let drained = Queue.is_empty t.queue && t.io_done in
    Mutex.unlock t.qmutex;
    let count = !n in
    if count > 0 then begin
      let items = Array.init count (fun i -> Option.get batch.(i)) in
      Array.fill batch 0 count None;
      let t_start = Unix.gettimeofday () in
      (* Compute kinds go through the pool; metrics are answered here
         afterwards, in batch order, once the batch's registries have
         merged. *)
      let responses =
        Ba_par.Pool.map_array pool
          (fun p ->
            match p.p_req.Protocol.kind with
            | Protocol.Metrics -> None
            | _ ->
              let t0 = Unix.gettimeofday () in
              let resp = Handler.handle p.p_req in
              Some (resp, Unix.gettimeofday () -. t0))
          items
      in
      let t_end = Unix.gettimeofday () in
      Mutex.lock t.smutex;
      t.batches <- t.batches + 1;
      Array.iteri
        (fun i p ->
          let queue_us =
            int_of_float ((t_start -. p.p_enqueued) *. 1e6)
          in
          samples_add t.queue_us (max 0 queue_us);
          Ba_obs.Histogram.observe h_queue_us (max 0 queue_us);
          let service_s =
            match responses.(i) with
            | Some (_, s) -> s
            | None -> t_end -. t_start
          in
          let service_us = max 0 (int_of_float (service_s *. 1e6)) in
          samples_add t.service_us service_us;
          Ba_obs.Histogram.observe h_service_us service_us;
          t.served <- t.served + 1;
          Ba_obs.Counter.incr m_requests)
        items;
      Ba_obs.Counter.incr m_batches;
      Mutex.unlock t.smutex;
      Array.iteri
        (fun i p ->
          let resp =
            match responses.(i) with
            | Some (resp, _) -> resp
            | None -> metrics_response t p.p_req
          in
          respond_and_release p.p_conn resp)
        items
    end;
    if not drained then loop ()
  in
  loop ();
  Ba_obs.Registry.set_current None

(* ------------------------------------------------------------------ *)
(* IO loop                                                             *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let overload_response (req : Protocol.request) =
  { Protocol.rid = req.Protocol.id; status = Overloaded; body = Ba_util.Json.Null }

let admit t conn payload =
  match Ba_util.Json.parse payload with
  | Error e ->
    send_response conn
      { Protocol.rid = 0; status = Error_ ("bad frame: " ^ e); body = Null };
    true
  | Ok j -> (
    match Protocol.request_of_json j with
    | Error e ->
      let rid =
        match Option.bind (Ba_util.Json.member "id" j) Ba_util.Json.to_int_opt with
        | Some id -> id
        | None -> 0
      in
      send_response conn { Protocol.rid; status = Error_ e; body = Null };
      true
    | Ok req ->
      Mutex.lock t.qmutex;
      let accepted = Queue.length t.queue < t.cfg.queue_len in
      if accepted then begin
        Atomic.incr conn.pending;
        Queue.add
          { p_conn = conn; p_req = req; p_enqueued = Unix.gettimeofday () }
          t.queue;
        Condition.signal t.qcond
      end;
      Mutex.unlock t.qmutex;
      if not accepted then begin
        Mutex.lock t.smutex;
        t.rejected <- t.rejected + 1;
        Mutex.unlock t.smutex;
        send_response conn (overload_response req)
      end;
      true)

let io_loop t =
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let buf = Bytes.create 65536 in
  let drain_wake () =
    match Unix.read t.wake_r (Bytes.create 64) 0 64 with
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  let handle_readable fd =
    if fd = t.listen_fd then begin
      match Unix.accept ~cloexec:true t.listen_fd with
      | cfd, _ ->
        Unix.set_nonblock cfd;
        Hashtbl.replace conns cfd
          {
            fd = cfd;
            framer = Protocol.Framer.create ();
            wmutex = Mutex.create ();
            alive = Atomic.make true;
            pending = Atomic.make 0;
            closed = Atomic.make false;
          }
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    end
    else if fd = t.wake_r then drain_wake ()
    else
      match Hashtbl.find_opt conns fd with
      | None -> ()
      | Some conn ->
        let drop () =
          Atomic.set conn.alive false;
          Hashtbl.remove conns fd;
          if Atomic.get conn.pending = 0 then conn_close conn
        in
        let rec pump () =
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> drop ()
          | n -> (
            match Protocol.Framer.feed conn.framer buf 0 n with
            | Error _ -> drop ()
            | Ok () ->
              let rec frames () =
                match Protocol.Framer.next conn.framer with
                | Some payload ->
                  ignore (admit t conn payload : bool);
                  frames ()
                | None -> ()
              in
              frames ();
              if Atomic.get conn.alive then pump ())
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
          | exception Unix.Unix_error _ -> drop ()
        in
        pump ()
  in
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      let read_fds =
        t.listen_fd :: t.wake_r
        :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
      in
      (match Unix.select read_fds [] [] 1.0 with
      | readable, _, _ -> List.iter handle_readable readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (* Stop feeding the queue and let the dispatcher drain what is already
     admitted. *)
  Mutex.lock t.qmutex;
  t.io_done <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex;
  conns

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
  with Unix.Unix_error _ -> ()

let request_stop t =
  Atomic.set t.stopping true;
  wake t

let create cfg =
  (match cfg.cache_mb with
  | Some mb -> Ba_workloads.Profiled.set_budget_mb mb
  | None -> ());
  if String.length cfg.socket_path > 100 then
    invalid_arg "Server: socket path too long for a unix socket";
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  {
    cfg;
    listen_fd;
    wake_r;
    wake_w;
    stopping = Atomic.make false;
    qmutex = Mutex.create ();
    qcond = Condition.create ();
    queue = Queue.create ();
    io_done = false;
    smutex = Mutex.create ();
    queue_us = samples_create ();
    service_us = samples_create ();
    served = 0;
    rejected = 0;
    batches = 0;
    registry = Ba_obs.Registry.create ();
    started = Unix.gettimeofday ();
  }

let run_created t =
  let previous =
    if t.cfg.install_signals then
      List.map
        (fun signum ->
          (signum, Sys.signal signum (Sys.Signal_handle (fun _ -> request_stop t))))
        [ Sys.sigint; Sys.sigterm ]
    else []
  in
  let finish () =
    List.iter (fun (signum, behavior) -> Sys.set_signal signum behavior) previous
  in
  Fun.protect ~finally:finish (fun () ->
      Ba_par.Pool.with_pool ?jobs:t.cfg.jobs (fun pool ->
          let dispatcher = Domain.spawn (fun () -> dispatcher_loop t pool) in
          let conns = io_loop t in
          Domain.join dispatcher;
          Hashtbl.iter (fun _ conn -> conn_close conn) conns);
      close_quietly t.listen_fd;
      close_quietly t.wake_r;
      close_quietly t.wake_w;
      try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())

let run cfg =
  let t = create cfg in
  run_created t

type handle = { server : t; thread : unit Domain.t }

let start cfg =
  let t = create cfg in
  (* The socket is bound and listening before [start] returns, so a client
     may connect immediately. *)
  let thread = Domain.spawn (fun () -> run_created t) in
  { server = t; thread }

let stop h =
  request_stop h.server;
  Domain.join h.thread
