type algo = Original | Greedy | Cost | Tryn of int | ExtTsp

let algo_name = function
  | Original -> "Orig"
  | Greedy -> "Greedy"
  | Cost -> "Cost"
  | Tryn n -> Printf.sprintf "Try%d" n
  | ExtTsp -> "ExtTsp"

(* One spelling table shared by the CLI and the serve protocol, so a request
   kind accepts exactly what the command line accepts. *)
let algo_of_name s =
  match String.lowercase_ascii s with
  | "orig" | "original" -> Ok Original
  | "greedy" | "pettis-hansen" -> Ok Greedy
  | "cost" -> Ok Cost
  | "exttsp" -> Ok ExtTsp
  | l when String.length l > 3 && String.sub l 0 3 = "try" -> (
    match int_of_string_opt (String.sub l 3 (String.length l - 3)) with
    | Some n when n > 0 -> Ok (Tryn n)
    | Some _ | None -> Error "tryN: N must be a positive integer")
  | _ -> Error (Printf.sprintf "unknown algorithm %S" s)

let run_algo algo ?delta ~arch ?table ?min_weight ctx =
  match algo with
  | Original -> invalid_arg "Align.run_algo: Original has no chains"
  | ExtTsp -> invalid_arg "Align.run_algo: ExtTsp merges its own chains"
  | Greedy -> Greedy.build_chains ctx
  | Cost -> Cost_align.build_chains ~arch ?table ctx
  | Tryn n -> Tryn.build_chains ?delta ~arch ?table ~n ?min_weight ctx

(* Exact model cost of one decision: lower it and price the result — the
   same objective Layout_cost scores finished layouts with. *)
let exact_cost ~arch ?table profile pid decision =
  let proc = Ba_ir.Program.proc (Ba_cfg.Profile.program profile) pid in
  let cond_counts b = Ba_cfg.Profile.cond_counts profile pid b in
  let linear = Ba_layout.Lower.lower ~cond_counts proc decision in
  Layout_cost.branch_cost ~arch ?table
    ~visits:(fun b -> Ba_cfg.Profile.visits profile pid b)
    ~cond_counts linear

let m_model_guard =
  Ba_obs.Counter.make ~unit_:"procs" "core.align.model_guard"

let align_proc algo ?strategy ?delta ?(arch = Cost_model.Btfnt) ?table ?min_weight
    ?(refine_rounds = 1) profile pid =
  Ba_obs.Span.with_ "align" @@ fun () ->
  let program = Ba_cfg.Profile.program profile in
  let proc = Ba_ir.Program.proc program pid in
  match algo with
  | Original -> Ba_layout.Decision.identity proc
  | ExtTsp ->
    (* Chain merging over the extended-TSP objective; architecture
       oblivious, so [arch]/[refine_rounds] do not apply.  The
       never-worse-than-Greedy guard (under the ExtTSP objective) lives
       inside [Exttsp.align_proc]. *)
    Exttsp.align_proc ?strategy profile pid
  | Greedy | Cost | Tryn _ ->
    if refine_rounds < 1 then invalid_arg "Align.align_proc: refine_rounds must be >= 1";
    let base_ctx = Ctx.of_profile profile pid in
    let one_round ctx =
      Ctx.to_decision ?strategy ctx (run_algo algo ?delta ~arch ?table ?min_weight ctx)
    in
    (* Round one guesses taken-branch directions from DFS back edges; each
       further round re-aligns knowing the previous layout's actual block
       positions — closing the gap the paper notes for BT/FNT ("it is not
       known where the taken branch will be located ... until the chains
       are formed and laid out"). *)
    let rec refine round decision =
      if round >= refine_rounds then decision
      else begin
        let pos = Ba_layout.Decision.position decision in
        let ctx = Ctx.with_direction base_ctx (fun s d -> pos.(d) <= pos.(s)) in
        refine (round + 1) (one_round ctx)
      end
    in
    let decision = refine 1 (one_round base_ctx) in
    (match algo with
    | Original | ExtTsp | Greedy -> decision
    | Cost | Tryn _ ->
      (* Model guard: the cost-model heuristics estimate during chain
         construction and can (rarely — ~0.1% of random CFGs) end up
         pricier than the architecture-oblivious Greedy under their own
         model.  Price both layouts exactly and keep the cheaper, so
         "never loses to Greedy under the model it optimizes" holds by
         construction; ties keep the heuristic's layout. *)
      let greedy = Ctx.to_decision ?strategy base_ctx (Greedy.build_chains base_ctx) in
      if exact_cost ~arch ?table profile pid greedy
         < exact_cost ~arch ?table profile pid decision
      then begin
        Ba_obs.Counter.incr m_model_guard;
        greedy
      end
      else decision)

let align_program algo ?strategy ?delta ?arch ?table ?min_weight ?refine_rounds profile =
  let program = Ba_cfg.Profile.program profile in
  Array.init (Ba_ir.Program.n_procs program) (fun pid ->
      align_proc algo ?strategy ?delta ?arch ?table ?min_weight ?refine_rounds profile pid)

let image algo ?strategy ?delta ?arch ?table ?min_weight ?refine_rounds profile =
  let program = Ba_cfg.Profile.program profile in
  let decisions =
    align_program algo ?strategy ?delta ?arch ?table ?min_weight ?refine_rounds profile
  in
  Ba_layout.Image.build ~profile program decisions
