(* Extended-TSP chain merging.  See the interface for the objective; the
   evaluator's incrementality argument is spelled out inline below. *)

type params = {
  fall_weight : float;
  jump_weight : float;
  fwd_limit : int;
  bwd_limit : int;
}

let default_params =
  { fall_weight = 1.0; jump_weight = 0.1; fwd_limit = 1024; bwd_limit = 640 }

type edge = {
  src : Ba_ir.Term.block_id;
  dst : Ba_ir.Term.block_id;
  weight : float;
}

let m_merges = Ba_obs.Counter.make ~unit_:"merges" "core.exttsp.merges"
let m_guard = Ba_obs.Counter.make ~unit_:"procs" "core.exttsp.guard"

(* One slot per terminator, whatever the lowering later emits: the
   objective must be a function of the permutation alone so that a chain's
   internal contributions are invariant under concatenation. *)
let sizes_of (proc : Ba_ir.Proc.t) =
  Array.map (fun (b : Ba_ir.Block.t) -> b.Ba_ir.Block.insns + 1) proc.Ba_ir.Proc.blocks

let edges_of profile pid =
  let program = Ba_cfg.Profile.program profile in
  let proc = Ba_ir.Program.proc program pid in
  let n = Ba_ir.Proc.n_blocks proc in
  let acc = ref [] in
  let push src dst weight = acc := { src; dst; weight } :: !acc in
  for s = 0 to n - 1 do
    let visits () = float_of_int (Ba_cfg.Profile.visits profile pid s) in
    match (Ba_ir.Proc.block proc s).Ba_ir.Block.term with
    | Ba_ir.Term.Jump d -> push s d (visits ())
    | Ba_ir.Term.Cond { on_true; on_false; _ } ->
      let w_true, w_false = Ba_cfg.Profile.cond_counts profile pid s in
      push s on_true (float_of_int w_true);
      push s on_false (float_of_int w_false)
    | Ba_ir.Term.Switch { targets } ->
      (* Per-target traversal counts, duplicate targets folded into their
         first occurrence so no edge is priced twice. *)
      let counts = Ba_cfg.Profile.switch_counts profile pid s in
      let order = ref [] and folded = Hashtbl.create 4 in
      Array.iteri
        (fun k (d, _) ->
          let c = float_of_int counts.(k) in
          match Hashtbl.find_opt folded d with
          | Some prior -> Hashtbl.replace folded d (prior +. c)
          | None ->
            Hashtbl.add folded d c;
            order := d :: !order)
        targets;
      List.iter (fun d -> push s d (Hashtbl.find folded d)) (List.rev !order)
    | Ba_ir.Term.Call { next; _ } | Ba_ir.Term.Vcall { next; _ } ->
      push s next (visits ())
    | Ba_ir.Term.Ret | Ba_ir.Term.Halt -> ()
  done;
  Array.of_list (List.rev !acc)

(* Contribution of one edge traversal set given the branch-site end of the
   source block and the start of the destination block, in instruction
   slots.  Zero-distance forward = fall-through. *)
let contribution params ~src_end ~dst_start weight =
  if weight <= 0.0 then 0.0
  else if dst_start = src_end then params.fall_weight *. weight
  else if dst_start > src_end then begin
    let d = dst_start - src_end in
    if d < params.fwd_limit then
      params.jump_weight *. weight
      *. (1.0 -. (float_of_int d /. float_of_int params.fwd_limit))
    else 0.0
  end
  else begin
    let d = src_end - dst_start in
    if d < params.bwd_limit then
      params.jump_weight *. weight
      *. (1.0 -. (float_of_int d /. float_of_int params.bwd_limit))
    else 0.0
  end

let score_order ?(params = default_params) ~sizes ~edges order =
  let n = Array.length order in
  let start = Array.make (Array.length sizes) 0 in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    start.(order.(i)) <- !cursor;
    cursor := !cursor + sizes.(order.(i))
  done;
  Array.fold_left
    (fun acc { src; dst; weight } ->
      acc
      +. contribution params ~src_end:(start.(src) + sizes.(src))
           ~dst_start:start.(dst) weight)
    0.0 edges

let score_decision ?params profile pid (decision : Ba_layout.Decision.t) =
  let proc = Ba_ir.Program.proc (Ba_cfg.Profile.program profile) pid in
  score_order ?params ~sizes:(sizes_of proc) ~edges:(edges_of profile pid)
    decision.Ba_layout.Decision.order

module Eval = struct
  (* Chains are identified by their root block id (the id of their first
     member at creation); a merge keeps the absorbing chain's id.  Offsets
     are block starts within the owning chain — invariant under every
     merge that does not involve the chain, which is what makes the cached
     per-edge contributions reusable: an edge's contribution depends only
     on the two endpoints' offsets within a *common* chain. *)
  type t = {
    params : params;
    sizes : int array;
    edges : edge array;
    contrib : float array;  (* cached contribution per edge, in edge order *)
    chain_of : int array;  (* block -> owning chain id *)
    offset : int array;  (* block -> start offset within its chain *)
    blocks_of : (int, int list) Hashtbl.t;  (* chain id -> members in order *)
    chain_size : int array;  (* chain id -> total slots *)
    chain_weight : float array;  (* chain id -> total block visit weight *)
    incident : (int, int list) Hashtbl.t;  (* chain id -> incident edge idxs *)
    mutable live : int list;  (* live chain ids, ascending *)
    entry_chain : unit -> int;
  }

  let create ?(params = default_params) profile pid =
    let proc = Ba_ir.Program.proc (Ba_cfg.Profile.program profile) pid in
    let n = Ba_ir.Proc.n_blocks proc in
    let sizes = sizes_of proc in
    let edges = edges_of profile pid in
    let chain_of = Array.init n (fun b -> b) in
    let offset = Array.make n 0 in
    let blocks_of = Hashtbl.create n in
    let incident = Hashtbl.create n in
    for b = 0 to n - 1 do
      Hashtbl.replace blocks_of b [ b ];
      Hashtbl.replace incident b []
    done;
    Array.iteri
      (fun e { src; dst; _ } ->
        Hashtbl.replace incident src (e :: Hashtbl.find incident src);
        if dst <> src then
          Hashtbl.replace incident dst (e :: Hashtbl.find incident dst))
      edges;
    let contrib =
      Array.map
        (fun { src; dst; weight } ->
          if src = dst then
            contribution params ~src_end:sizes.(src) ~dst_start:0 weight
          else 0.0)
        edges
    in
    let t =
      {
        params;
        sizes;
        edges;
        contrib;
        chain_of;
        offset;
        blocks_of;
        chain_size = Array.copy sizes;
        chain_weight =
          Array.init n (fun b ->
              float_of_int (Ba_cfg.Profile.visits profile pid b));
        incident;
        live = List.init n (fun i -> i);
        entry_chain = (fun () -> chain_of.(Ba_ir.Proc.entry));
      }
    in
    t

  let n_chains t = List.length t.live

  let chains t =
    List.map (fun c -> Array.of_list (Hashtbl.find t.blocks_of c)) t.live

  let total t = Array.fold_left ( +. ) 0.0 t.contrib

  let edge_contribution t ~shift_b ~in_b e =
    (* Contribution of edge [e] once chain b sits [shift_b] slots after
       the start of chain a; [in_b] says which blocks currently belong to
       chain b. *)
    let { src; dst; weight } = t.edges.(e) in
    let place blk = t.offset.(blk) + if in_b blk then shift_b else 0 in
    contribution t.params
      ~src_end:(place src + t.sizes.(src))
      ~dst_start:(place dst) weight

  let scratch_total t =
    let acc = ref 0.0 in
    Array.iteri
      (fun e { src; dst; _ } ->
        let c =
          if t.chain_of.(src) = t.chain_of.(dst) then
            edge_contribution t ~shift_b:0 ~in_b:(fun _ -> false) e
          else 0.0
        in
        acc := !acc +. c)
      t.edges;
    !acc

  let cross_edges t a b =
    (* Edge indices with one endpoint in each chain, ascending and without
       duplicates (an edge is listed under both endpoint chains). *)
    let sel e =
      let { src; dst; _ } = t.edges.(e) in
      let cs = t.chain_of.(src) and cd = t.chain_of.(dst) in
      (cs = a && cd = b) || (cs = b && cd = a)
    in
    List.sort_uniq compare
      (List.filter sel (Hashtbl.find t.incident a))

  let merge_gain t a b =
    let shift_b = t.chain_size.(a) in
    let in_b blk = t.chain_of.(blk) = b in
    List.fold_left
      (fun acc e -> acc +. edge_contribution t ~shift_b ~in_b e)
      0.0 (cross_edges t a b)

  let merge t a b =
    if a = b || t.chain_of.(a) <> a || t.chain_of.(b) <> b then
      invalid_arg "Exttsp.Eval.merge: not distinct live chains";
    let cross = cross_edges t a b in
    let shift_b = t.chain_size.(a) in
    let in_b blk = t.chain_of.(blk) = b in
    (* Re-price exactly the window: the edges crossing the junction.  All
       other cached contributions are offsets-within-one-chain and those
       offsets do not change. *)
    List.iter
      (fun e -> t.contrib.(e) <- edge_contribution t ~shift_b ~in_b e)
      cross;
    let b_blocks = Hashtbl.find t.blocks_of b in
    List.iter
      (fun blk ->
        t.chain_of.(blk) <- a;
        t.offset.(blk) <- t.offset.(blk) + shift_b)
      b_blocks;
    Hashtbl.replace t.blocks_of a (Hashtbl.find t.blocks_of a @ b_blocks);
    Hashtbl.remove t.blocks_of b;
    t.chain_size.(a) <- t.chain_size.(a) + t.chain_size.(b);
    t.chain_weight.(a) <- t.chain_weight.(a) +. t.chain_weight.(b);
    Hashtbl.replace t.incident a
      (Hashtbl.find t.incident a @ Hashtbl.find t.incident b);
    Hashtbl.remove t.incident b;
    t.live <- List.filter (fun c -> c <> b) t.live;
    Ba_obs.Counter.incr m_merges

  let best_merge t =
    let entry = t.entry_chain () in
    (* Candidate pairs: both orientations of every edge-connected pair of
       live chains, the entry chain never appended. *)
    let pairs = Hashtbl.create 16 in
    Array.iter
      (fun { src; dst; _ } ->
        let a = t.chain_of.(src) and b = t.chain_of.(dst) in
        if a <> b then begin
          if b <> entry then Hashtbl.replace pairs (a, b) ();
          if a <> entry then Hashtbl.replace pairs (b, a) ()
        end)
      t.edges;
    let candidates =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) pairs [])
    in
    List.fold_left
      (fun best (a, b) ->
        let gain = merge_gain t a b in
        if gain <= 0.0 then best
        else
          match best with
          | Some (_, _, g) when g >= gain -> best
          | _ -> Some (a, b, gain))
      None candidates

  let order t =
    let entry = t.entry_chain () in
    let rest = List.filter (fun c -> c <> entry) t.live in
    let density c = t.chain_weight.(c) /. float_of_int t.chain_size.(c) in
    let rest =
      List.stable_sort
        (fun c1 c2 -> compare (density c2, c1) (density c1, c2))
        rest
    in
    Array.of_list
      (List.concat_map (fun c -> Hashtbl.find t.blocks_of c) (entry :: rest))
end

let align_proc ?params ?strategy profile pid =
  let ev = Eval.create ?params profile pid in
  let rec loop () =
    match Eval.best_merge ev with
    | Some (a, b, _) ->
      Eval.merge ev a b;
      loop ()
    | None -> ()
  in
  loop ();
  let mine = Ba_layout.Decision.of_order (Eval.order ev) in
  let ctx = Ctx.of_profile profile pid in
  let greedy = Ctx.to_decision ?strategy ctx (Greedy.build_chains ctx) in
  if
    score_decision ?params profile pid greedy
    > score_decision ?params profile pid mine
  then begin
    Ba_obs.Counter.incr m_guard;
    greedy
  end
  else mine
