open Ba_ir
open Ba_layout

(* Optimal-k: bounded exhaustive reordering of the k hottest chains of the
   hottest procedure, pruned by a static lower bound.

   The search is oracle-parameterized so [ba_core] stays free of the
   simulator and bound-analysis dependencies: [bounds] prices a candidate
   statically (Ba_bound over its image), [cost] prices it exactly (a trace
   replay through Ba_sim).  Candidates are simulated in ascending
   lower-bound order; once one is priced, every candidate whose lower
   bound already meets the incumbent is pruned unsimulated.  The sound
   pricing function is what makes the pruning a proof, not a heuristic:
   [best_cost] can never beat the pruned candidates' true costs. *)

type candidate = {
  perm : int array;  (* movable-chain permutation, indices into [movable] *)
  decisions : Decision.t array;
  lower : int;
  upper : int;
}

type result = {
  proc : Term.proc_id;
  chains : int;
  movable : int;
  candidates : int;
  simulated : int;
  pruned : int;
  base_cost : int;
  best_cost : int;
  best_lower : int;
  best_perm : int array;
  best : Decision.t array;
}

let m_candidates =
  Ba_obs.Counter.make ~unit_:"layouts" "core.align.optimal.candidates"

let m_simulated =
  Ba_obs.Counter.make ~unit_:"layouts" "core.align.optimal.simulated"

let m_pruned = Ba_obs.Counter.make ~unit_:"layouts" "core.align.optimal.pruned"

let hottest_proc profile =
  let program = Ba_cfg.Profile.program profile in
  let best = ref 0 and best_w = ref (-1) in
  for p = 0 to Program.n_procs program - 1 do
    let w = ref 0 in
    Array.iteri
      (fun b _ -> w := !w + Ba_cfg.Profile.visits profile p b)
      (Program.proc program p).Proc.blocks;
    if !w > !best_w then begin
      best := p;
      best_w := !w
    end
  done;
  !best

(* Split a decision order into chains: consecutive positions stay chained
   while the earlier block has a CFG edge to the later one (the layout kept
   them adjacent on purpose); a missing edge starts a new chain. *)
let chains_of (proc : Proc.t) (order : Term.block_id array) =
  let n = Array.length order in
  let cuts = ref [ 0 ] in
  for i = 1 to n - 1 do
    let prev = (Proc.block proc order.(i - 1)).Block.term in
    if not (List.mem order.(i) (Term.successors prev)) then cuts := i :: !cuts
  done;
  let cuts = Array.of_list (List.rev !cuts) in
  Array.to_list
    (Array.mapi
       (fun c start ->
         let stop = if c + 1 < Array.length cuts then cuts.(c + 1) else n in
         (start, stop - start))
       cuts)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
      l

let search ?(k = 4) ~bounds ~cost ~profile base =
  let program = Ba_cfg.Profile.program profile in
  let pid = hottest_proc profile in
  let proc = Program.proc program pid in
  let order = base.(pid).Decision.order in
  let chain_list = chains_of proc order in
  let weight_of (start, len) =
    let w = ref 0 in
    for i = start to start + len - 1 do
      w := !w + Ba_cfg.Profile.visits profile pid order.(i)
    done;
    !w
  in
  (* The entry chain is pinned (layouts must keep the entry block first);
     the k hottest of the rest move.  Ties break toward earlier chains so
     the candidate set is deterministic. *)
  let rest = List.tl chain_list in
  let ranked =
    List.stable_sort
      (fun a b -> compare (- weight_of a) (- weight_of b))
      rest
  in
  let movable =
    List.sort compare
      (List.filteri (fun i _ -> i < k) ranked)
  in
  let movable_arr = Array.of_list movable in
  let is_movable c = List.mem c movable in
  let make_order perm =
    (* Walk the original chain sequence; fixed chains emit themselves,
       movable slots emit the permuted movable chains in [perm] order. *)
    let out = Array.make (Array.length order) 0 in
    let pos = ref 0 and slot = ref 0 in
    List.iter
      (fun c ->
        let start, len =
          if is_movable c then begin
            let c' = movable_arr.(perm.(!slot)) in
            incr slot;
            c'
          end
          else c
        in
        for i = start to start + len - 1 do
          out.(!pos) <- order.(i);
          incr pos
        done)
      chain_list;
    out
  in
  let mk_candidate perm =
    let ord = make_order (Array.of_list perm) in
    let decisions = Array.copy base in
    decisions.(pid) <-
      Decision.of_order ~neither:(Array.copy base.(pid).Decision.neither) ord;
    let lower, upper = bounds decisions in
    { perm = Array.of_list perm; decisions; lower; upper }
  in
  let idx = List.init (Array.length movable_arr) Fun.id in
  let cands = List.map mk_candidate (permutations idx) in
  (* Ascending lower bound, original generation order on ties: simulate
     the most promising candidates first so pruning bites early. *)
  let ranked_cands =
    List.stable_sort (fun a b -> compare a.lower b.lower) cands
  in
  let base_cost = cost base in
  let incumbent = ref max_int and best = ref None in
  let simulated = ref 0 and pruned = ref 0 in
  List.iter
    (fun c ->
      if c.lower >= !incumbent then incr pruned
      else begin
        incr simulated;
        let x = cost c.decisions in
        if x < !incumbent then begin
          incumbent := x;
          best := Some c
        end
      end)
    ranked_cands;
  let best_c =
    match !best with Some c -> c | None -> List.hd ranked_cands
  in
  Ba_obs.Counter.add m_candidates (List.length cands);
  Ba_obs.Counter.add m_simulated !simulated;
  Ba_obs.Counter.add m_pruned !pruned;
  {
    proc = pid;
    chains = List.length chain_list;
    movable = Array.length movable_arr;
    candidates = List.length cands;
    simulated = !simulated;
    pruned = !pruned;
    base_cost;
    best_cost = (if !best = None then base_cost else !incumbent);
    best_lower = best_c.lower;
    best_perm = best_c.perm;
    best = best_c.decisions;
  }
