let m_link = Ba_obs.Counter.make ~unit_:"edges" "core.align.greedy.link"

let m_rejected =
  Ba_obs.Counter.make ~unit_:"edges" "core.align.greedy.link_rejected"

let build_chains (ctx : Ctx.t) =
  let chain = Ctx.fresh_chain ctx in
  List.iter
    (fun ((e : Ba_cfg.Edge.t), _w) ->
      if Ba_layout.Chain.can_link chain ~src:e.src ~dst:e.dst then begin
        Ba_obs.Counter.incr m_link;
        Ba_layout.Chain.link chain ~src:e.src ~dst:e.dst
      end
      else Ba_obs.Counter.incr m_rejected)
    ctx.Ctx.edges;
  chain
