(** Front end to the branch alignment algorithms.

    An algorithm maps a procedure plus its execution profile to a layout
    {!Ba_layout.Decision}; {!align_program} applies it to every procedure,
    giving the decision array {!Ba_layout.Image.build} consumes.

    [Original] is the identity transformation (the paper's "Orig" columns);
    [Greedy] is Pettis & Hansen's bottom-up algorithm; [Cost] and [Tryn]
    additionally take the architectural cost model into account.  [arch]
    selects that model and defaults to [Btfnt], matching the architecture
    Pettis & Hansen tuned for.

    [delta] (default [true]) selects {!Tryn}'s incremental leaf
    evaluation; decisions are bit-identical either way, it only changes
    how search leaves are priced.

    [refine_rounds] (default 1) enables iterative refinement: rounds after
    the first re-run the algorithm with taken-branch directions taken from
    the previous round's actual layout instead of DFS guesses.  Only the
    BT/FNT cost model consults directions, so refinement is useful there
    and a no-op elsewhere. *)

type algo =
  | Original
  | Greedy
  | Cost
  | Tryn of int  (** group size; the paper's Try15 is [Tryn 15] *)
  | ExtTsp
      (** chain merging over the extended-TSP objective ({!Exttsp});
          architecture-oblivious like [Greedy], so [arch], [delta] and
          [refine_rounds] do not apply *)

val algo_name : algo -> string

val algo_of_name : string -> (algo, string) result
(** Parse a command-line / protocol spelling: [orig]/[original], [greedy]/
    [pettis-hansen], [cost], [exttsp], or [tryN] (e.g. [try15]).
    Case-insensitive. *)

val align_proc :
  algo ->
  ?strategy:Ba_layout.Chain_order.strategy ->
  ?delta:bool ->
  ?arch:Cost_model.arch ->
  ?table:Cost_model.table ->
  ?min_weight:int ->
  ?refine_rounds:int ->
  Ba_cfg.Profile.t ->
  Ba_ir.Term.proc_id ->
  Ba_layout.Decision.t

val align_program :
  algo ->
  ?strategy:Ba_layout.Chain_order.strategy ->
  ?delta:bool ->
  ?arch:Cost_model.arch ->
  ?table:Cost_model.table ->
  ?min_weight:int ->
  ?refine_rounds:int ->
  Ba_cfg.Profile.t ->
  Ba_layout.Decision.t array

val image :
  algo ->
  ?strategy:Ba_layout.Chain_order.strategy ->
  ?delta:bool ->
  ?arch:Cost_model.arch ->
  ?table:Cost_model.table ->
  ?min_weight:int ->
  ?refine_rounds:int ->
  Ba_cfg.Profile.t ->
  Ba_layout.Image.t
(** Align every procedure and build the rewritten code image in one step
    (profile-guided lowering included). *)
