type arch = Fallthrough | Btfnt | Likely | Pht | Btb

let arch_name = function
  | Fallthrough -> "FALLTHROUGH"
  | Btfnt -> "BT/FNT"
  | Likely -> "LIKELY"
  | Pht -> "PHT"
  | Btb -> "BTB"

let all_arches = [ Fallthrough; Btfnt; Likely; Pht; Btb ]

let arch_of_name s =
  match String.lowercase_ascii s with
  | "fallthrough" | "ft" -> Ok Fallthrough
  | "btfnt" -> Ok Btfnt
  | "likely" -> Ok Likely
  | "pht" -> Ok Pht
  | "btb" -> Ok Btb
  | _ -> Error (Printf.sprintf "unknown architecture %S" s)

type table = { instruction : float; misfetch : float; mispredict : float }

let default_table = { instruction = 1.0; misfetch = 1.0; mispredict = 4.0 }

let pht_accuracy = 0.9
let btb_hit_rate = 0.9

let uncond_cost arch t =
  match arch with
  | Fallthrough | Btfnt | Likely | Pht -> t.instruction +. t.misfetch
  | Btb -> t.instruction +. ((1.0 -. btb_hit_rate) *. t.misfetch)

(* Per-traversal cost of one leg of a conditional branch. *)
let taken_leg_cost arch t ~predicted_taken =
  match arch with
  | Fallthrough | Btfnt | Likely ->
    if predicted_taken then t.instruction +. t.misfetch
    else t.instruction +. t.mispredict
  | Pht ->
    t.instruction
    +. (pht_accuracy *. t.misfetch)
    +. ((1.0 -. pht_accuracy) *. t.mispredict)
  | Btb ->
    (* A BTB hit redirects fetch with no misfetch; the misfetch survives
       only on the assumed misses, and mispredicts on the assumed 10%. *)
    t.instruction
    +. (pht_accuracy *. (1.0 -. btb_hit_rate) *. t.misfetch)
    +. ((1.0 -. pht_accuracy) *. t.mispredict)

let fall_leg_cost arch t ~predicted_taken =
  match arch with
  | Fallthrough | Btfnt | Likely ->
    if predicted_taken then t.instruction +. t.mispredict else t.instruction
  | Pht | Btb -> t.instruction +. ((1.0 -. pht_accuracy) *. t.mispredict)

let predicted_taken arch ~w_taken ~w_fall ~taken_backward =
  match arch with
  | Fallthrough -> false
  | Btfnt -> taken_backward
  | Likely -> w_taken >= w_fall
  | Pht | Btb -> false (* unused: the dynamic legs cost by accuracy, not rule *)

let cond_cost arch t ~w_taken ~w_fall ~taken_backward =
  let predicted_taken = predicted_taken arch ~w_taken ~w_fall ~taken_backward in
  (w_taken *. taken_leg_cost arch t ~predicted_taken)
  +. (w_fall *. fall_leg_cost arch t ~predicted_taken)

let cond_neither_cost arch t ~w_jump ~w_taken ~taken_backward =
  (* The jump leg traverses the conditional not-taken, then an inserted
     unconditional jump. *)
  cond_cost arch t ~w_taken ~w_fall:w_jump ~taken_backward
  +. (w_jump *. uncond_cost arch t)

let call_cost arch t =
  match arch with
  | Fallthrough | Btfnt | Likely | Pht -> t.instruction +. t.misfetch
  | Btb -> t.instruction +. ((1.0 -. btb_hit_rate) *. t.misfetch)

let indirect_cost arch t =
  match arch with
  | Fallthrough | Btfnt | Likely | Pht -> t.instruction +. t.mispredict
  | Btb ->
    t.instruction
    +. ((1.0 -. btb_hit_rate) *. t.mispredict)

let return_cost t = t.instruction
