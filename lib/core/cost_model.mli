(** The paper's architectural cost models (Table 1 and §6).

    Alignment decisions are driven by per-traversal branch costs, in cycles,
    including the branch instruction itself:

    {v
    Unconditional branch               2   (instruction + misfetch)
    Correctly predicted fall-through   1   (instruction)
    Correctly predicted taken          2   (instruction + misfetch)
    Mispredicted                       5   (instruction + mispredict)
    v}

    For the dynamic architectures the paper adjusts the model rather than
    simulating the predictor inside the optimizer: conditional branches are
    assumed mispredicted 10% of the time, and the BTB is additionally
    assumed to miss 10% of taken branches (removing the misfetch on the 90%
    it hits). *)

type arch = Fallthrough | Btfnt | Likely | Pht | Btb

val arch_name : arch -> string
val all_arches : arch list

val arch_of_name : string -> (arch, string) result
(** Parse a command-line / protocol spelling: [fallthrough]/[ft], [btfnt],
    [likely], [pht], or [btb].  Case-insensitive. *)

type table = {
  instruction : float;  (** base cost of executing the branch instruction *)
  misfetch : float;  (** pipeline bubble of a correctly-predicted redirect *)
  mispredict : float;  (** penalty of a wrong prediction *)
}

val default_table : table
(** The paper's numbers: instruction 1, misfetch 1, mispredict 4. *)

val pht_accuracy : float
(** Assumed conditional accuracy of the dynamic predictors (0.9). *)

val btb_hit_rate : float
(** Assumed BTB hit rate on taken branches (0.9). *)

val uncond_cost : arch -> table -> float
(** Per-traversal cost of an unconditional branch: [instruction + misfetch]
    for the static and PHT architectures; under a BTB the misfetch is paid
    only on the assumed 10% misses. *)

val cond_cost :
  arch -> table -> w_taken:float -> w_fall:float -> taken_backward:bool -> float
(** Total cost of a conditional branch site whose taken leg is traversed
    [w_taken] times and fall-through leg [w_fall] times, with the taken
    target placed before ([taken_backward]) or after the branch.  The
    predicted direction follows the architecture: FALLTHROUGH predicts
    not-taken, BT/FNT predicts by [taken_backward], LIKELY predicts the
    majority leg, and the dynamic models use {!pht_accuracy}. *)

val cond_neither_cost :
  arch -> table -> w_jump:float -> w_taken:float -> taken_backward:bool -> float
(** Cost of the "align neither edge" lowering: the leg traversed [w_jump]
    times goes not-taken through an inserted unconditional jump, the other
    leg ([w_taken]) is the taken target.  This is the transformation that
    turns a 5-cycle single-block loop iteration into 3 cycles under
    FALLTHROUGH (§4, Cost). *)

val call_cost : arch -> table -> float
(** Direct call: instruction + misfetch (BTB: misfetch on miss only). *)

val indirect_cost : arch -> table -> float
(** Indirect jump or indirect call: mispredicted for the static and PHT
    architectures; a BTB predicts it with the assumed hit rate. *)

val return_cost : table -> float
(** Returns predicted by the return stack are free beyond the instruction
    itself (§6). *)
