(** Optimal-k: branch-and-bound search over chain reorderings.

    Splits the hottest procedure's layout into chains (maximal runs of
    blocks the decision kept CFG-adjacent), permutes the [k] hottest
    non-entry chains exhaustively ([k]! candidate layouts, identity
    included), prices every candidate with a {e sound} static lower/upper
    bound, and only simulates candidates whose lower bound still beats the
    best exactly-priced cost — so the reported optimum over the candidate
    set is exact despite most candidates never being simulated.

    The pricing functions are passed in ([ba_core] knows nothing of the
    simulator): [bounds] is typically [Ba_bound.Analyze.bounds] over the
    candidate's image, [cost] a trace replay through [Ba_sim.Runner].
    Soundness of [bounds] is the pruning's correctness condition, and the
    test wall asserts the witness: [best_cost >= best_lower] always. *)

type candidate = {
  perm : int array;
  decisions : Ba_layout.Decision.t array;
  lower : int;
  upper : int;
}

type result = {
  proc : Ba_ir.Term.proc_id;  (** the reordered (hottest) procedure *)
  chains : int;  (** chains its layout splits into *)
  movable : int;  (** chains actually permuted, [<= k] *)
  candidates : int;  (** [movable]! layouts priced statically *)
  simulated : int;  (** layouts priced exactly *)
  pruned : int;  (** layouts rejected on their lower bound alone *)
  base_cost : int;  (** exact cost of the base layout *)
  best_cost : int;  (** exact cost of the winner; [<= base_cost] *)
  best_lower : int;  (** the winner's own static lower bound *)
  best_perm : int array;
  best : Ba_layout.Decision.t array;
}

val search :
  ?k:int ->
  bounds:(Ba_layout.Decision.t array -> int * int) ->
  cost:(Ba_layout.Decision.t array -> int) ->
  profile:Ba_cfg.Profile.t ->
  Ba_layout.Decision.t array ->
  result
(** [search ~bounds ~cost ~profile base] explores reorderings of [base]
    (one decision per procedure, as {!Align.align_program} returns).
    [k] defaults to 4 (at most 24 candidates).  Deterministic: ties in
    procedure heat, chain heat and lower bounds all break toward earlier
    positions. *)
