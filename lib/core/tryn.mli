(** The paper's Try15 alignment algorithm (§4).

    The procedure's alignable edges that executed at least [min_weight]
    times (the paper prunes edges executed no more than once) are taken in
    weight order, [n] at a time.  For each group every feasible combination
    of per-edge placements — fall-through or taken — is enumerated with a
    branch-and-bound search and scored under the architecture's cost model;
    a conditional both of whose legs end up taken is scored as the
    jump-insertion ("align neither") lowering.  The best assignment is
    committed before moving to the next group, and edges below the weight
    threshold are linked greedily at the end.

    [n] defaults to 15 as in the paper; the ablation benchmark sweeps it.

    [delta] (default [true]) evaluates search leaves incrementally: each
    group source's cost is cached and invalidated only when a link or
    unlink touches that source, so a leaf costs O(relinked sources)
    instead of O(group sources).  Leaf totals are folded in the same
    order either way, so the chosen chains are bit-identical — the
    equality gate in [test_delta.ml] holds both paths to the same
    decisions. *)

val build_chains :
  ?delta:bool ->
  arch:Cost_model.arch ->
  ?table:Cost_model.table ->
  ?n:int ->
  ?min_weight:int ->
  Ctx.t ->
  Ba_layout.Chain.t
