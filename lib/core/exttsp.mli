(** Extended-TSP block reordering (Newell & Pupyrev, "Improved Basic Block
    Reordering").

    Where the paper's Greedy/Cost/TryN maximise fall-throughs (possibly
    weighted by an architectural cost model), the extended-TSP objective
    also credits {e short} forward and backward jumps, decayed linearly
    with distance — a proxy for icache/fetch locality: a taken branch that
    lands a few lines away is far cheaper than one that crosses the cache.
    The algorithm is the modern chain-merging formulation: every block
    starts as its own chain, and the pair of chains whose concatenation
    gains the most objective is merged until no merge gains.

    Merges are priced {e incrementally} through {!Eval}, a
    [Ba_delta.Model]-style windowed evaluator: block sizes are
    layout-independent, so a chain's internal contributions never change
    when the chain moves — only the edges {e crossing} the two merged
    chains are re-priced.  {!Eval.scratch_total} recomputes every edge
    from first principles; the differential wall in [test_exttsp.ml]
    holds it bit-equal to the incrementally maintained {!Eval.total}
    after every merge.

    The objective is architecture-oblivious (like Greedy); [align_proc]
    still never loses to Greedy {e under the ExtTSP objective} — it scores
    Pettis-Hansen's layout too and keeps whichever is better (counted by
    the [core.exttsp.guard] metric). *)

type params = {
  fall_weight : float;  (** credit per traversal of a fall-through edge *)
  jump_weight : float;  (** peak credit for a zero-distance jump *)
  fwd_limit : int;  (** forward jumps at or beyond this distance score 0 *)
  bwd_limit : int;  (** backward jumps at or beyond this distance score 0 *)
}

val default_params : params
(** The published constants: fall-through 1.0, jump 0.1, forward window
    1024, backward window 640 (instruction slots). *)

type edge = {
  src : Ba_ir.Term.block_id;
  dst : Ba_ir.Term.block_id;
  weight : float;  (** profile traversal count of the edge *)
}

val edges_of :
  Ba_cfg.Profile.t -> Ba_ir.Term.proc_id -> edge array
(** Every weighted layout-sensitive edge of the procedure, in a fixed
    deterministic order (blocks ascending, each terminator's successors in
    declaration order, switch targets deduplicated): jump edges, both
    conditional legs, switch cases, and call/vcall continuations. *)

val sizes_of : Ba_ir.Proc.t -> int array
(** Layout-independent block sizes: straight-line instructions plus one
    terminator slot.  (The real lowering sometimes emits a second branch
    instruction; the objective deliberately prices the permutation, not
    the lowering, so that chain contributions are position-invariant and
    merges can be evaluated incrementally.) *)

val score_order :
  ?params:params -> sizes:int array -> edges:edge array ->
  Ba_ir.Term.block_id array -> float
(** From-scratch objective of a complete block order: the sum over [edges]
    (in array order) of each edge's contribution at its laid-out
    distance. *)

val score_decision :
  ?params:params -> Ba_cfg.Profile.t -> Ba_ir.Term.proc_id ->
  Ba_layout.Decision.t -> float
(** {!score_order} of a decision's order, with edges and sizes derived
    from the profile. *)

(** The incremental chain evaluator. *)
module Eval : sig
  type t

  val create : ?params:params -> Ba_cfg.Profile.t -> Ba_ir.Term.proc_id -> t
  (** Every block in its own chain; only self-loop edges score. *)

  val n_chains : t -> int

  val chains : t -> Ba_ir.Term.block_id array list
  (** Live chains, ascending by chain id (deterministic). *)

  val total : t -> float
  (** Objective of the current chain set — cached per-edge contributions
      summed in edge order.  Edges between different chains contribute 0
      (unmerged chains are notionally far apart). *)

  val scratch_total : t -> float
  (** The same figure recomputed from first principles: every edge
      re-priced from the current chain assignment and offsets, summed in
      the same edge order.  Bit-equal to {!total} by construction; the
      differential wall enforces it. *)

  val best_merge : t -> (int * int * float) option
  (** [(a, b, gain)] with the strictly largest positive gain among all
      pairs of edge-connected live chains, appending [b] after [a]; ties
      broken by the smaller [(a, b)].  The entry chain is never appended
      ([b] is never the entry's chain), keeping the entry block a chain
      head.  [None] when no merge gains. *)

  val merge_gain : t -> int -> int -> float
  (** Objective gained by appending chain [b] after chain [a]: the sum of
      the cross-chain edges' contributions at the merged offsets. *)

  val merge : t -> int -> int -> unit
  (** Append chain [b] to chain [a], re-pricing only the edges that cross
      the two chains (the "window"); all other cached contributions are
      position-invariant and untouched. *)

  val order : t -> Ba_ir.Term.block_id array
  (** Concatenate the live chains: the entry chain first, the rest by
      execution density (visit weight per instruction slot) descending,
      ties by first block id. *)
end

val align_proc :
  ?params:params ->
  ?strategy:Ba_layout.Chain_order.strategy ->
  Ba_cfg.Profile.t -> Ba_ir.Term.proc_id ->
  Ba_layout.Decision.t
(** Run the chain-merging algorithm, then score Pettis-Hansen's Greedy
    layout under the same objective and return whichever is better (the
    guard mirrors [Align]'s cost-model guard; [strategy] orders Greedy's
    chains as {!Ctx.to_decision} would). *)
