(** Exact cost of a lowered layout under a cost model.

    Whereas the alignment heuristics estimate costs before the final block
    order is known (guessing branch directions from DFS back edges), this
    module scores a finished {!Ba_layout.Linear.t} exactly: taken-branch
    direction comes from real layout positions, fall-throughs from real
    adjacency.  It is the objective the paper's Figure 3 cycle counts are
    computed with, and the regression tests use it to verify that the
    smarter algorithms never lose to the simpler ones under their own
    model. *)

type breakdown = {
  straight : float;  (** straight-line instruction cycles *)
  cond : float;  (** conditional branch cycles, inserted jumps included *)
  uncond : float;  (** unconditional branch cycles (jumps, call continuations) *)
  calls : float;  (** direct call cycles *)
  indirect : float;  (** switch / vcall cycles *)
  returns : float;
  total : float;
}

type site = {
  s_straight : float;
  s_cond : float;
  s_uncond : float;
  s_calls : float;
  s_indirect : float;
  s_returns : float;
}
(** One layout position's contribution, one field per [breakdown]
    category.  [evaluate] and [per_block] are sums of these, so exposing
    the per-position view lets incremental evaluators cache sites and
    re-price only the positions a local move affects, bit-for-bit. *)

val site_cost :
  arch:Cost_model.arch ->
  table:Cost_model.table ->
  visits:(Ba_ir.Term.block_id -> int) ->
  cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  Ba_layout.Linear.t ->
  int ->
  site
(** The contribution of one layout position.  Depends only on the block's
    [src]/[insns]/[term] and the position index (taken-branch direction is
    positional), never on assigned addresses. *)

val evaluate :
  arch:Cost_model.arch ->
  ?table:Cost_model.table ->
  visits:(Ba_ir.Term.block_id -> int) ->
  cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  Ba_layout.Linear.t ->
  breakdown
(** [visits] and [cond_counts] come from a {!Ba_cfg.Profile}; counts are the
    semantic per-block numbers, so the same profile scores every layout of
    the procedure. *)

val per_block :
  arch:Cost_model.arch ->
  ?table:Cost_model.table ->
  visits:(Ba_ir.Term.block_id -> int) ->
  cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  Ba_layout.Linear.t ->
  float array
(** Branch cycles (straight-line component excluded) attributed to each
    layout position.  Sums to {!branch_cost}; the static cost certifier
    cross-checks its independent recomputation against this position by
    position, so a divergence is localised to one site. *)

val branch_cost :
  arch:Cost_model.arch ->
  ?table:Cost_model.table ->
  visits:(Ba_ir.Term.block_id -> int) ->
  cond_counts:(Ba_ir.Term.block_id -> int * int) ->
  Ba_layout.Linear.t ->
  float
(** [evaluate] minus the layout-independent straight-line component — the
    "branch execution cost" the paper quotes for Figure 3. *)
