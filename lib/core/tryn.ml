open Ba_layout

type decision = Fall | Taken

(* Exact above-baseline cost of conditional site [s] at a search leaf.
   [leg_status] reports, for each leg, whether it is the chain fall-through
   (links made by this or earlier groups): legs not linked are taken.  The
   baseline (one instruction per traversal) is included — it is constant
   across assignments, so it cancels in comparisons. *)
let site_cost ~arch ~table (ctx : Ctx.t) chain s =
  match Ctx.cond_legs ctx s with
  | None -> 0.0
  | Some ((d1, w1), (d2, w2)) ->
    let fw = float_of_int in
    let fall_leg =
      match Chain.chain_succ chain s with
      | Some d when d = d1 -> Some (d1, w1, d2, w2)
      | Some d when d = d2 -> Some (d2, w2, d1, w1)
      | Some _ | None -> None
    in
    (match fall_leg with
    | Some (_, w_fall, d_taken, w_taken) ->
      Cost_model.cond_cost arch table ~w_taken:(fw w_taken) ~w_fall:(fw w_fall)
        ~taken_backward:(ctx.Ctx.is_back_edge s d_taken)
    | None ->
      (* No fall-through: lowering will insert a jump; the commit step picks
         the cheaper jump leg, so score that choice here. *)
      let _, cost =
        Options.best_neither ~arch ~table ctx s ~legs:((d1, w1), (d2, w2))
      in
      cost)

let flow_cost ~arch ~table (ctx : Ctx.t) chain s =
  match Chain.chain_succ chain s with
  | Some _ -> 0.0
  | None -> float_of_int (ctx.Ctx.visits s) *. Cost_model.uncond_cost arch table

let is_cond (ctx : Ctx.t) b =
  match (Ba_ir.Proc.block ctx.Ctx.proc b).Ba_ir.Block.term with
  | Ba_ir.Term.Cond _ -> true
  | _ -> false

(* Evaluate the current chain state restricted to the source blocks touched
   by the group. *)
let leaf_cost ~arch ~table ctx chain sources =
  List.fold_left
    (fun acc s ->
      acc
      +.
      if is_cond ctx s then site_cost ~arch ~table ctx chain s
      else flow_cost ~arch ~table ctx chain s)
    0.0 sources

(* Optimistic (lower-bound) cost increment of one decision, for pruning. *)
let optimistic ~arch ~table (ctx : Ctx.t) ((e : Ba_cfg.Edge.t), w) = function
  | Fall -> 0.0
  | Taken ->
    let fw = float_of_int w in
    if is_cond ctx e.src then
      (* Best case for a taken leg: correctly predicted taken. *)
      fw *. table.Cost_model.misfetch
    else fw *. Cost_model.uncond_cost arch table

let distinct_sources group =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun ((e : Ba_cfg.Edge.t), _) ->
      if Hashtbl.mem seen e.src then None
      else begin
        Hashtbl.add seen e.src ();
        Some e.src
      end)
    group

(* Search one group: enumerate all feasible Fall/Taken assignments with
   branch-and-bound, returning the best assignment's links.

   With [delta] (the default), leaf evaluation is incremental: a source's
   cost depends only on its own chain successor ([site_cost] and
   [flow_cost] read nothing else that the search mutates), and the search
   only relinks edges of this group, so a cached per-source cost goes
   stale exactly when a link or unlink names that source — dirty it then,
   reprice only dirty sources at the next leaf.  The evaluation folds the
   cached values in [sources] order, the same order [leaf_cost] folds, so
   every leaf total — and therefore every chosen assignment — is
   bit-identical to the full evaluation. *)
let search_group ?(delta = true) ~arch ~table ctx chain group =
  let edges = Array.of_list group in
  let n = Array.length edges in
  let sources = distinct_sources group in
  let src_arr = Array.of_list sources in
  let n_src = Array.length src_arr in
  let slot = Hashtbl.create (max 16 (2 * n_src)) in
  Array.iteri (fun i s -> Hashtbl.replace slot s i) src_arr;
  let cache = Array.make (max 1 n_src) 0.0 in
  let cache_valid = Array.make (max 1 n_src) false in
  let dirty s =
    match Hashtbl.find_opt slot s with
    | Some i -> cache_valid.(i) <- false
    | None -> ()
  in
  let leaf () =
    if not delta then leaf_cost ~arch ~table ctx chain sources
    else begin
      let acc = ref 0.0 in
      for i = 0 to n_src - 1 do
        let s = src_arr.(i) in
        if not cache_valid.(i) then begin
          cache.(i) <-
            (if is_cond ctx s then site_cost ~arch ~table ctx chain s
             else flow_cost ~arch ~table ctx chain s);
          cache_valid.(i) <- true
        end;
        acc := !acc +. cache.(i)
      done;
      !acc
    end
  in
  let best_cost = ref infinity in
  let best_links = ref [] in
  let current_links = ref [] in
  let rec go i partial =
    if partial >= !best_cost then ()
    else if i = n then begin
      let cost = leaf () in
      if cost < !best_cost then begin
        best_cost := cost;
        best_links := List.rev !current_links
      end
    end
    else begin
      let ((e : Ba_cfg.Edge.t), _w) = edges.(i) in
      (* Try the fall-through placement first (it is never worse in the
         optimistic bound, so it tends to tighten the bound early). *)
      if Chain.can_link chain ~src:e.src ~dst:e.dst then begin
        Chain.link chain ~src:e.src ~dst:e.dst;
        dirty e.src;
        current_links := (e.src, e.dst) :: !current_links;
        go (i + 1) (partial +. optimistic ~arch ~table ctx edges.(i) Fall);
        current_links := List.tl !current_links;
        Chain.unlink chain ~src:e.src;
        dirty e.src
      end;
      go (i + 1) (partial +. optimistic ~arch ~table ctx edges.(i) Taken)
    end
  in
  go 0 0.0;
  !best_links

let rec chunk n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let group, rest = take n [] l in
    group :: chunk n rest

let m_group_size =
  Ba_obs.Histogram.make ~unit_:"edges"
    ~buckets:[| 1; 2; 4; 8; 16; 32 |]
    "core.align.tryn.group_size"

let m_link = Ba_obs.Counter.make ~unit_:"edges" "core.align.tryn.link"
let m_neither = Ba_obs.Counter.make ~unit_:"sites" "core.align.tryn.neither"
let m_cold_link = Ba_obs.Counter.make ~unit_:"edges" "core.align.tryn.cold_link"

let build_chains ?delta ~arch ?(table = Cost_model.default_table) ?(n = 15)
    ?(min_weight = 2) (ctx : Ctx.t) =
  if n < 1 then invalid_arg "Tryn.build_chains: n must be positive";
  let chain = Ctx.fresh_chain ctx in
  let hot, cold = List.partition (fun (_, w) -> w >= min_weight) ctx.Ctx.edges in
  let processed = Hashtbl.create 64 in
  List.iter
    (fun group ->
      Ba_obs.Histogram.observe m_group_size (List.length group);
      List.iter (fun ((e : Ba_cfg.Edge.t), _) -> Hashtbl.replace processed e ()) group;
      let links = search_group ?delta ~arch ~table ctx chain group in
      List.iter
        (fun (src, dst) ->
          Ba_obs.Counter.incr m_link;
          Chain.link chain ~src ~dst)
        links;
      (* A conditional whose legs were all considered and left taken was
         scored as the jump-insertion lowering; pin that decision so a later
         chain ordering cannot accidentally make a leg adjacent. *)
      List.iter
        (fun s ->
          match Ctx.cond_legs ctx s with
          | Some (((d1, _), (d2, _)) as legs)
            when Chain.chain_succ chain s = None
                 && (not (Chain.fallthrough_forbidden chain s))
                 && Hashtbl.mem processed { Ba_cfg.Edge.src = s; dst = d1; kind = On_true }
                 && Hashtbl.mem processed { Ba_cfg.Edge.src = s; dst = d2; kind = On_false }
            ->
            let jump_leg, _ = Options.best_neither ~arch ~table ctx s ~legs in
            Ba_obs.Counter.incr m_neither;
            Chain.forbid_fallthrough ~jump_leg chain s
          | Some _ | None -> ())
        (distinct_sources group))
    (chunk n hot);
  (* Cold edges carry no useful cost signal; link them greedily to avoid
     pointless jumps in never-executed code. *)
  List.iter
    (fun ((e : Ba_cfg.Edge.t), _) ->
      if (not (Hashtbl.mem processed e)) && Chain.can_link chain ~src:e.src ~dst:e.dst
      then begin
        Ba_obs.Counter.incr m_cold_link;
        Chain.link chain ~src:e.src ~dst:e.dst
      end)
    cold;
  chain
