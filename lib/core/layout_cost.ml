open Ba_layout

type breakdown = {
  straight : float;
  cond : float;
  uncond : float;
  calls : float;
  indirect : float;
  returns : float;
  total : float;
}

(* Per-position contribution, one field per breakdown category.  Both the
   whole-procedure breakdown and the per-position view are sums of these,
   so the two public entry points cannot drift apart. *)
type site = {
  s_straight : float;
  s_cond : float;
  s_uncond : float;
  s_calls : float;
  s_indirect : float;
  s_returns : float;
}

let zero_site =
  {
    s_straight = 0.0; s_cond = 0.0; s_uncond = 0.0; s_calls = 0.0;
    s_indirect = 0.0; s_returns = 0.0;
  }

let site_cost ~arch ~table ~visits ~cond_counts (linear : Linear.t) pos =
  let lb = linear.Linear.blocks.(pos) in
  let uncond_c = Cost_model.uncond_cost arch table in
  let w = float_of_int (visits lb.Linear.src) in
  let site =
    {
      zero_site with
      s_straight = w *. float_of_int lb.Linear.insns *. table.Cost_model.instruction;
    }
  in
  match lb.Linear.term with
  | Linear.Lnone -> site
  | Linear.Ljump _ -> { site with s_uncond = w *. uncond_c }
  | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
    let n_true, n_false = cond_counts lb.Linear.src in
    let w_taken, w_fall =
      if taken_on then (float_of_int n_true, float_of_int n_false)
      else (float_of_int n_false, float_of_int n_true)
    in
    (* Positions are address-ordered, so a target at or before this block
       is a backward branch. *)
    let taken_backward = taken_pos <= pos in
    let cond = Cost_model.cond_cost arch table ~w_taken ~w_fall ~taken_backward in
    let uncond =
      match inserted_jump with Some _ -> w_fall *. uncond_c | None -> 0.0
    in
    { site with s_cond = cond; s_uncond = uncond }
  | Linear.Lswitch _ ->
    { site with s_indirect = w *. Cost_model.indirect_cost arch table }
  | Linear.Lcall { cont; _ } ->
    {
      site with
      s_calls = w *. Cost_model.call_cost arch table;
      s_uncond =
        (match cont with Linear.Jump_to _ -> w *. uncond_c | Linear.Fall -> 0.0);
    }
  | Linear.Lvcall { cont; _ } ->
    {
      site with
      s_indirect = w *. Cost_model.indirect_cost arch table;
      s_uncond =
        (match cont with Linear.Jump_to _ -> w *. uncond_c | Linear.Fall -> 0.0);
    }
  | Linear.Lret -> { site with s_returns = w *. Cost_model.return_cost table }
  | Linear.Lhalt -> { site with s_returns = w *. table.Cost_model.instruction }

let evaluate ~arch ?(table = Cost_model.default_table) ~visits ~cond_counts
    (linear : Linear.t) =
  let straight = ref 0.0 in
  let cond = ref 0.0 in
  let uncond = ref 0.0 in
  let calls = ref 0.0 in
  let indirect = ref 0.0 in
  let returns = ref 0.0 in
  Array.iteri
    (fun pos _ ->
      let s = site_cost ~arch ~table ~visits ~cond_counts linear pos in
      straight := !straight +. s.s_straight;
      cond := !cond +. s.s_cond;
      uncond := !uncond +. s.s_uncond;
      calls := !calls +. s.s_calls;
      indirect := !indirect +. s.s_indirect;
      returns := !returns +. s.s_returns)
    linear.Linear.blocks;
  let total = !straight +. !cond +. !uncond +. !calls +. !indirect +. !returns in
  {
    straight = !straight;
    cond = !cond;
    uncond = !uncond;
    calls = !calls;
    indirect = !indirect;
    returns = !returns;
    total;
  }

let per_block ~arch ?(table = Cost_model.default_table) ~visits ~cond_counts
    (linear : Linear.t) =
  Array.mapi
    (fun pos _ ->
      let s = site_cost ~arch ~table ~visits ~cond_counts linear pos in
      s.s_cond +. s.s_uncond +. s.s_calls +. s.s_indirect +. s.s_returns)
    linear.Linear.blocks

let branch_cost ~arch ?table ~visits ~cond_counts linear =
  let b = evaluate ~arch ?table ~visits ~cond_counts linear in
  b.total -. b.straight
