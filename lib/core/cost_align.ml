open Ba_layout

(* How much does predecessor [p] gain from having [d] as its fall-through,
   under the current chain state?  Used for the paper's "examine all the
   predecessors of D" refinement. *)
let benefit_of_getting ~arch ~table (ctx : Ctx.t) chain p d =
  if not (Chain.can_link chain ~src:p ~dst:d) then 0.0
  else
    match Ctx.cond_legs ctx p with
    | Some legs -> begin
      match Options.feasible ~arch ~table ctx chain p ~legs with
      | [] -> 0.0
      | options ->
        let with_d =
          List.filter
            (fun (k, _) -> match k with Options.Fall_to x -> x = d | Options.Neither _ -> false)
            options
        in
        let without_d =
          List.filter
            (fun (k, _) -> match k with Options.Fall_to x -> x <> d | Options.Neither _ -> true)
            options
        in
        let best l = match l with [] -> infinity | (_, c) :: _ -> c in
        max 0.0 (best without_d -. best with_d)
    end
    | None -> (
      (* Single-exit block: the gain is the saved unconditional branch. *)
      match (Ba_ir.Proc.block ctx.Ctx.proc p).Ba_ir.Block.term with
      | Ba_ir.Term.Jump d' | Ba_ir.Term.Call { next = d'; _ } | Ba_ir.Term.Vcall { next = d'; _ }
        when d' = d ->
        float_of_int (ctx.Ctx.visits p) *. Cost_model.uncond_cost arch table
      | _ -> 0.0)

let m_link = Ba_obs.Counter.make ~unit_:"edges" "core.align.cost.link"

let m_rejected =
  Ba_obs.Counter.make ~unit_:"edges" "core.align.cost.link_rejected"

let m_neither = Ba_obs.Counter.make ~unit_:"sites" "core.align.cost.neither"

let build_chains ~arch ?(table = Cost_model.default_table) (ctx : Ctx.t) =
  let chain = Ctx.fresh_chain ctx in
  let decided = Array.make (Ba_ir.Proc.n_blocks ctx.Ctx.proc) false in
  let process ((e : Ba_cfg.Edge.t), _w) =
    let s = e.src and d = e.dst in
    if not decided.(s) then
      match Ctx.cond_legs ctx s with
      | None ->
        (* Single-exit block: a fall-through strictly dominates a jump, so
           link whenever possible (heavier competitors for [d] were
           processed first). *)
        if Chain.can_link chain ~src:s ~dst:d then begin
          Ba_obs.Counter.incr m_link;
          Chain.link chain ~src:s ~dst:d;
          decided.(s) <- true
        end
      | Some legs -> begin
        match Options.feasible ~arch ~table ctx chain s ~legs with
        | [] -> ()
        | (best_kind, best_cost) :: rest -> begin
          let runner_up = match rest with [] -> infinity | (_, c) :: _ -> c in
          match best_kind with
          | Options.Fall_to dst ->
            (* Decline the link if another predecessor of [dst] stands to
               gain more from the fall-through slot than we do. *)
            let my_benefit = runner_up -. best_cost in
            let rival_benefit =
              List.fold_left
                (fun acc p ->
                  if p = s then acc
                  else max acc (benefit_of_getting ~arch ~table ctx chain p dst))
                0.0 ctx.Ctx.preds.(dst)
            in
            if rival_benefit > my_benefit then Ba_obs.Counter.incr m_rejected
            else begin
              Ba_obs.Counter.incr m_link;
              Chain.link chain ~src:s ~dst:dst;
              decided.(s) <- true
            end
          | Options.Neither jump_leg ->
            Ba_obs.Counter.incr m_neither;
            Chain.forbid_fallthrough ~jump_leg chain s;
            decided.(s) <- true
        end
      end
  in
  List.iter process ctx.Ctx.edges;
  chain
