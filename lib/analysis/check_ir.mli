(** Stage 1: deep IR lint.

    Goes beyond {!Ba_ir.Proc.validate} (which stops at the first fault) by
    reporting {e every} violation as a structured diagnostic, and adds
    rules [validate] does not know: degenerate self-jumps and jump-only
    cycles (control enters and can never branch out), dead switch cases and
    vcall callees, statically-constant conditionals, call-graph dangling
    references and call-graph-unreachable procedures.

    Rules: [ir/successor-range], [ir/cond-equal-targets],
    [ir/bad-behavior], [ir/switch-empty], [ir/switch-negative-weight],
    [ir/switch-all-zero], [ir/switch-dead-case],
    [ir/switch-duplicate-target], [ir/vcall-empty],
    [ir/vcall-negative-weight], [ir/vcall-all-zero],
    [ir/vcall-dead-callee], [ir/unreachable-block], [ir/self-jump],
    [ir/jump-cycle], [ir/cond-constant], [ir/dangling-callee],
    [ir/halt-outside-main], [ir/unreachable-proc]. *)

val check_proc : proc_id:Ba_ir.Term.proc_id -> Ba_ir.Proc.t -> Diagnostic.t list
(** Intra-procedural rules only. *)

val check_program : Ba_ir.Program.t -> Diagnostic.t list
(** {!check_proc} on every procedure plus the inter-procedural rules
    (dangling callees, [Halt] outside main, call-graph reachability). *)
