(** Threading all checkers over one workload / algorithm pair.

    [check_pipeline] drives the same pipeline the tool itself runs —
    profile the original layout, align every procedure, lower, assign
    addresses — and lints every intermediate product: the IR (stage 1),
    the collected profile (stage 2), each procedure's layout decision
    (stage 3), each lowered procedure (stage 4) and the final code image
    (stage 5).  Later stages are skipped when an earlier stage reports
    errors (aligning an invalid program, or lowering a non-permutation,
    would crash rather than lint). *)

type stage = Ir | Profile | Decision | Linear | Image | Conflict | Audit | Bound
(** [Conflict], [Audit] and [Bound] are extension stages: {!check_pipeline} cannot
    run them itself (the conflict analyser and the alignment auditor live
    above this library), so drivers append their findings to
    {!report.stages} after the five built-in stages. *)

val stage_name : stage -> string

val all_stages : stage list
(** Every stage in display order, extension stages last. *)

val core_stages : stage list
(** The five stages {!check_pipeline} runs itself. *)

type report = {
  program_name : string;
  algo : Ba_core.Align.algo;
  arch : Ba_core.Cost_model.arch;
  stages : (stage * Diagnostic.t list) list;
      (** executed stages in pipeline order, with their findings *)
}

val diagnostics : report -> Diagnostic.t list
(** All findings of all executed stages, in {!Diagnostic.sort} order. *)

val error_count : report -> int
val ran : report -> stage -> bool

val check_layout :
  ?profile:Ba_cfg.Profile.t ->
  Ba_ir.Program.t ->
  Ba_layout.Decision.t array ->
  (stage * Diagnostic.t list) list
(** Lint externally supplied decisions: stage 3 on every procedure, then —
    only if no decision errors — lower and run stages 4 and 5.  [profile]
    feeds the profile-guided jump-leg choice during lowering, as in
    {!Ba_layout.Image.build}.  Raises [Invalid_argument] if the decision
    array length does not match the program. *)

val check_pipeline :
  ?arch:Ba_core.Cost_model.arch ->
  ?max_steps:int ->
  ?profile:Ba_cfg.Profile.t ->
  algo:Ba_core.Align.algo ->
  Ba_ir.Program.t ->
  report
(** Run the full five-stage lint.  [arch] (default [Btfnt]) selects the
    cost model the alignment runs under; [max_steps] bounds the profiling
    run (default {!Ba_exec.Engine.run}'s); [profile], when given, replaces
    the profiling run (it must have been created for [program] — raises
    [Invalid_argument] otherwise), letting callers lint many
    algorithm/architecture pairs against one profile. *)
