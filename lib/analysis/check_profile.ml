open Ba_ir

type deficit = {
  loc : Diagnostic.location;
  rule : string;
  amount : int;
  visits : int;
  lower : int;
}

let check (profile : Ba_cfg.Profile.t) =
  let program = Ba_cfg.Profile.program profile in
  let n_procs = Program.n_procs program in
  let diags = ref [] in
  let deficits = ref [] in
  let block_loc pid b =
    Diagnostic.Block
      { proc = pid; proc_name = (Program.proc program pid).Proc.name; block = b }
  in
  let at pid b sev ~rule fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          { Diagnostic.severity = sev; rule; loc = block_loc pid b; message }
          :: !diags)
      fmt
  in
  (* Inter-procedural call counts: how often each procedure is entered by
     direct calls (exact) and how often it may be entered by virtual
     dispatch (upper bound; per-callee draws are not in the profile). *)
  let direct_calls = Array.make n_procs 0 in
  let vcall_possible = Array.make n_procs 0 in
  Program.iter_blocks program (fun pid b (blk : Block.t) ->
      let site_visits = Ba_cfg.Profile.visits profile pid b in
      match blk.Block.term with
      | Term.Call { callee; _ } ->
        direct_calls.(callee) <- direct_calls.(callee) + site_visits
      | Term.Vcall { callees; _ } ->
        let distinct = List.sort_uniq compare (Array.to_list (Array.map fst callees)) in
        List.iter
          (fun c -> vcall_possible.(c) <- vcall_possible.(c) + site_visits)
          distinct
      | _ -> ());
  for pid = 0 to n_procs - 1 do
    let proc = Program.proc program pid in
    let n = Proc.n_blocks proc in
    (* Exact incoming traversals per block, and the call-continuation part
       that only bounds from above. *)
    let exact_in = Array.make n 0 in
    let call_in = Array.make n 0 in
    Array.iteri
      (fun src (blk : Block.t) ->
        let visits = Ba_cfg.Profile.visits profile pid src in
        if visits < 0 then
          at pid src Diagnostic.Error ~rule:"profile/negative-count"
            "negative visit count %d" visits;
        match blk.Block.term with
        | Term.Jump d -> exact_in.(d) <- exact_in.(d) + visits
        | Term.Cond { on_true; on_false; _ } ->
          let n_true, n_false = Ba_cfg.Profile.cond_counts profile pid src in
          if n_true < 0 || n_false < 0 then
            at pid src Diagnostic.Error ~rule:"profile/negative-count"
              "negative conditional resolution counts (%d true, %d false)" n_true
              n_false;
          if n_true + n_false <> visits then
            at pid src Diagnostic.Error ~rule:"profile/cond-resolution"
              "conditional resolved %d times (%d true + %d false) but visited %d times"
              (n_true + n_false) n_true n_false visits;
          exact_in.(on_true) <- exact_in.(on_true) + n_true;
          exact_in.(on_false) <- exact_in.(on_false) + n_false
        | Term.Switch { targets } ->
          let cases = Ba_cfg.Profile.switch_counts profile pid src in
          Array.iteri
            (fun i c ->
              if c < 0 then
                at pid src Diagnostic.Error ~rule:"profile/negative-count"
                  "negative count %d on switch case %d" c i)
            cases;
          let total = Array.fold_left ( + ) 0 cases in
          if total <> visits then
            at pid src Diagnostic.Error ~rule:"profile/switch-resolution"
              "switch resolved %d times across its cases but visited %d times" total
              visits;
          Array.iteri
            (fun i c ->
              let d = fst targets.(i) in
              exact_in.(d) <- exact_in.(d) + c)
            cases
        | Term.Call { next; _ } | Term.Vcall { next; _ } ->
          call_in.(next) <- call_in.(next) + visits
        | Term.Ret | Term.Halt -> ())
      proc.Proc.blocks;
    for b = 0 to n - 1 do
      let visits = Ba_cfg.Profile.visits profile pid b in
      let is_entry = b = Proc.entry in
      let rule = if is_entry then "profile/entry-count" else "profile/flow-conservation" in
      let lower = exact_in.(b) + (if is_entry then direct_calls.(pid) else 0) in
      let upper =
        lower + call_in.(b)
        + (if is_entry then vcall_possible.(pid) else 0)
        + if is_entry && pid = program.Program.main then 1 else 0
      in
      if visits > upper then
        at pid b Diagnostic.Error ~rule
          "visited %d times but incoming flow explains at most %d (exact in-flow \
           %d, call continuations %d%s)"
          visits upper exact_in.(b) call_in.(b)
          (if is_entry then
             Printf.sprintf ", direct calls %d, possible vcalls %d" direct_calls.(pid)
               vcall_possible.(pid)
           else "")
      else if visits < lower then
        deficits :=
          { loc = block_loc pid b; rule; amount = lower - visits; visits; lower }
          :: !deficits
    done
  done;
  (* At most one transfer can be in flight when the step budget cuts a run
     short, so a single missing visit program-wide is legal. *)
  let total_deficit = List.fold_left (fun acc d -> acc + d.amount) 0 !deficits in
  if total_deficit > 1 then
    List.iter
      (fun d ->
        diags :=
          Diagnostic.make Diagnostic.Error ~rule:d.rule ~loc:d.loc
            "visited %d times but incoming flow requires at least %d" d.visits d.lower
          :: !diags)
      !deficits;
  List.rev !diags
