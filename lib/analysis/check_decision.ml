open Ba_ir

let check ~proc_id (p : Proc.t) (d : Ba_layout.Decision.t) =
  let n = Proc.n_blocks p in
  let diags = ref [] in
  let at loc sev ~rule fmt =
    Printf.ksprintf
      (fun message -> diags := { Diagnostic.severity = sev; rule; loc; message } :: !diags)
      fmt
  in
  let proc_loc = Diagnostic.Proc { proc = proc_id; proc_name = p.Proc.name } in
  let block_loc b =
    Diagnostic.Block { proc = proc_id; proc_name = p.Proc.name; block = b }
  in
  let order = d.Ba_layout.Decision.order in
  if Array.length order <> n then
    at proc_loc Diagnostic.Error ~rule:"decision/order-length"
      "layout order has %d entries for a %d-block procedure" (Array.length order) n
  else begin
    let seen = Array.make n 0 in
    Array.iter
      (fun b ->
        if b < 0 || b >= n then
          at proc_loc Diagnostic.Error ~rule:"decision/block-range"
            "layout names block %d, out of range for a %d-block procedure" b n
        else seen.(b) <- seen.(b) + 1)
      order;
    Array.iteri
      (fun b times ->
        if times > 1 then
          at (block_loc b) Diagnostic.Error ~rule:"decision/duplicate-block"
            "block appears %d times in the layout order" times
        else if times = 0 then
          at (block_loc b) Diagnostic.Error ~rule:"decision/missing-block"
            "block missing from the layout order")
      seen;
    if order.(0) <> Proc.entry then
      at proc_loc Diagnostic.Error ~rule:"decision/entry-not-first"
        "layout starts with block %d, not the entry block %d" order.(0) Proc.entry
  end;
  let neither = d.Ba_layout.Decision.neither in
  if Array.length neither <> n then
    at proc_loc Diagnostic.Error ~rule:"decision/neither-length"
      "forced-jump set has %d entries for a %d-block procedure" (Array.length neither)
      n
  else
    Array.iteri
      (fun b forced ->
        match forced with
        | None -> ()
        | Some leg -> (
          match (Proc.block p b).Block.term with
          | Term.Cond _ -> ()
          | term ->
            at (block_loc b) Diagnostic.Warning ~rule:"decision/neither-non-cond"
              "forced jump leg (%s) on a non-conditional block (%s); lowering ignores \
               it"
              (Ba_layout.Decision.leg_name leg) (Term.kind_name term)))
      neither;
  List.rev !diags
