open Ba_ir
open Ba_layout

(* [err] takes an already-formatted message: a lambda-bound printer cannot
   be polymorphic in its format string. *)
let check_cont ~err ~check_range ~pos ~next_exists i next cont =
  match cont with
  | Linear.Fall ->
    if not next_exists then
      err ~rule:"linear/off-end"
        "last layout block's call continuation falls through off the end"
    else if pos.(next) <> i + 1 then
      err ~rule:"linear/fallthrough-mismatch"
        (Printf.sprintf
           "call continuation falls through to position %d but b%d is at position %d"
           (i + 1) next pos.(next))
  | Linear.Jump_to t ->
    if check_range "call continuation jump" t then begin
      if t <> pos.(next) then
        err ~rule:"linear/fallthrough-mismatch"
          (Printf.sprintf
             "call continuation jumps to position %d but b%d is at position %d" t
             next pos.(next));
      if t = i + 1 then
        err ~rule:"linear/redundant-jump"
          (Printf.sprintf "call continuation jump to the adjacent position %d" t)
    end

let check ~proc_id (linear : Linear.t) =
  let p = linear.Linear.proc in
  let decision = linear.Linear.decision in
  let proc_name = p.Proc.name in
  match Decision.validate p decision with
  | Error e ->
    [
      Diagnostic.make Diagnostic.Error ~rule:"linear/invalid-decision"
        ~loc:(Diagnostic.Proc { proc = proc_id; proc_name })
        "cannot check lowering against an invalid decision: %s" e;
    ]
  | Ok () ->
    let n = Proc.n_blocks p in
    let pos = Decision.position decision in
    let diags = ref [] in
    let at i sev ~rule fmt =
      Printf.ksprintf
        (fun message ->
          diags :=
            { Diagnostic.severity = sev; rule;
              loc = Diagnostic.Layout_pos { proc = proc_id; proc_name; pos = i };
              message }
            :: !diags)
        fmt
    in
    if Array.length linear.Linear.blocks <> n then
      at 0 Diagnostic.Error ~rule:"linear/block-count"
        "%d layout blocks for a %d-block procedure"
        (Array.length linear.Linear.blocks)
        n
    else
      Array.iteri
        (fun i (lb : Linear.lblock) ->
          let b = lb.Linear.src in
          if b <> decision.Decision.order.(i) then
            at i Diagnostic.Error ~rule:"linear/src-mismatch"
              "layout block carries source b%d but the decision places b%d here" b
              decision.Decision.order.(i);
          let next_exists = i + 1 < n in
          let in_range t = t >= 0 && t < n in
          let check_range what t =
            if not (in_range t) then begin
              at i Diagnostic.Error ~rule:"linear/position-range"
                "%s targets layout position %d, out of range [0, %d)" what t n;
              false
            end
            else true
          in
          let term = (Proc.block p b).Block.term in
          let kind_mismatch () =
            at i Diagnostic.Error ~rule:"linear/terminator-kind"
              "lowered terminator does not correspond to the IR terminator (%s) of b%d"
              (Term.kind_name term) b
          in
          match (lb.Linear.term, term) with
          | Linear.Lnone, Term.Jump d ->
            if not next_exists then
              at i Diagnostic.Error ~rule:"linear/off-end"
                "last layout block falls through off the end of the procedure"
            else if pos.(d) <> i + 1 then
              at i Diagnostic.Error ~rule:"linear/fallthrough-mismatch"
                "falls through to position %d but the jump target b%d is at position \
                 %d"
                (i + 1) d pos.(d)
          | Linear.Ljump t, Term.Jump d ->
            if check_range "unconditional jump" t then begin
              if t <> pos.(d) then
                at i Diagnostic.Error ~rule:"linear/fallthrough-mismatch"
                  "jump targets position %d but b%d is at position %d" t d pos.(d);
              if t = i + 1 then
                at i Diagnostic.Error ~rule:"linear/redundant-jump"
                  "jump to the adjacent position %d; lowering should fall through"
                  t
            end
          | Linear.Lcond { taken_pos; taken_on; inserted_jump }, Term.Cond { on_true; on_false; _ }
            -> begin
            let pt = pos.(on_true) and pf = pos.(on_false) in
            let forced = decision.Decision.neither.(b) in
            (match inserted_jump with
            | None -> begin
              if forced <> None then
                at i Diagnostic.Error ~rule:"linear/forced-ignored"
                  "decision forces the neither-edge lowering of b%d but no jump was \
                   inserted"
                  b;
              if not next_exists then
                at i Diagnostic.Error ~rule:"linear/off-end"
                  "last layout block's conditional falls through off the end";
              if check_range "conditional branch" taken_pos then begin
                let expect_taken, expect_fall, fall_block =
                  if taken_on then (pt, pf, on_false) else (pf, pt, on_true)
                in
                if taken_pos <> expect_taken then
                  at i Diagnostic.Error ~rule:"linear/cond-edges"
                    "taken-when-%b branch targets position %d but b%d is at position \
                     %d"
                    taken_on taken_pos
                    (if taken_on then on_true else on_false)
                    expect_taken;
                if next_exists && expect_fall <> i + 1 then
                  at i Diagnostic.Error ~rule:"linear/fallthrough-mismatch"
                    "fall-through leg resolves to b%d at position %d, not the \
                     adjacent position %d"
                    fall_block expect_fall (i + 1)
              end
            end
            | Some j ->
              if
                check_range "conditional branch" taken_pos
                && check_range "inserted jump" j
              then begin
                let expect_taken, expect_jump, jump_block =
                  if taken_on then (pt, pf, on_false) else (pf, pt, on_true)
                in
                if taken_pos <> expect_taken || j <> expect_jump then
                  at i Diagnostic.Error ~rule:"linear/cond-edges"
                    "taken-when-%b branch @%d with inserted jump @%d does not cover \
                     the edges to b%d@%d and b%d@%d"
                    taken_on taken_pos j on_true pt on_false pf
                else begin
                  if forced = None && (pt = i + 1 || pf = i + 1) then
                    at i Diagnostic.Error ~rule:"linear/jump-not-demanded"
                      "jump inserted although b%d is adjacent and the decision does \
                       not force the neither-edge lowering"
                      (if pt = i + 1 then on_true else on_false);
                  (match forced with
                  | Some Decision.Jump_on_true when jump_block <> on_true ->
                    at i Diagnostic.Error ~rule:"linear/forced-leg"
                      "decision routes the true leg through the inserted jump but \
                       the false leg (b%d) jumps"
                      on_false
                  | Some Decision.Jump_on_false when jump_block <> on_false ->
                    at i Diagnostic.Error ~rule:"linear/forced-leg"
                      "decision routes the false leg through the inserted jump but \
                       the true leg (b%d) jumps"
                      on_true
                  | _ -> ());
                  if j = i + 1 then
                    at i Diagnostic.Error ~rule:"linear/redundant-jump"
                      "inserted jump to the adjacent position %d" j
                end
              end)
          end
          | Linear.Lswitch { positions; weights }, Term.Switch { targets } ->
            if
              Array.length positions <> Array.length targets
              || Array.length weights <> Array.length targets
            then
              at i Diagnostic.Error ~rule:"linear/switch-mismatch"
                "switch lowered with %d positions / %d weights for %d IR targets"
                (Array.length positions) (Array.length weights)
                (Array.length targets)
            else
              Array.iteri
                (fun k (d, w) ->
                  if check_range (Printf.sprintf "switch case %d" k) positions.(k)
                  then begin
                    if positions.(k) <> pos.(d) then
                      at i Diagnostic.Error ~rule:"linear/switch-mismatch"
                        "case %d targets position %d but b%d is at position %d" k
                        positions.(k) d pos.(d);
                    if weights.(k) <> w then
                      at i Diagnostic.Error ~rule:"linear/switch-mismatch"
                        "case %d carries weight %g but the IR says %g" k weights.(k)
                        w
                  end)
                targets
          | Linear.Lcall { callee; cont }, Term.Call { callee = ir_callee; next } ->
            if callee <> ir_callee then
              at i Diagnostic.Error ~rule:"linear/call-mismatch"
                "call lowered to p%d but the IR calls p%d" callee ir_callee;
            check_cont
              ~err:(fun ~rule m -> at i Diagnostic.Error ~rule "%s" m)
              ~check_range ~pos ~next_exists i next cont
          | ( Linear.Lvcall { callees; weights; cont },
              Term.Vcall { callees = ir_callees; next } ) ->
            if
              Array.length callees <> Array.length ir_callees
              || Array.length weights <> Array.length ir_callees
            then
              at i Diagnostic.Error ~rule:"linear/call-mismatch"
                "vcall lowered with %d callees / %d weights for %d IR callees"
                (Array.length callees) (Array.length weights)
                (Array.length ir_callees)
            else
              Array.iteri
                (fun k (c, w) ->
                  if callees.(k) <> c then
                    at i Diagnostic.Error ~rule:"linear/call-mismatch"
                      "vcall callee %d is p%d but the IR says p%d" k callees.(k) c;
                  if weights.(k) <> w then
                    at i Diagnostic.Error ~rule:"linear/call-mismatch"
                      "vcall callee %d carries weight %g but the IR says %g" k
                      weights.(k) w)
                ir_callees;
            check_cont
              ~err:(fun ~rule m -> at i Diagnostic.Error ~rule "%s" m)
              ~check_range ~pos ~next_exists i next cont
          | Linear.Lret, Term.Ret | Linear.Lhalt, Term.Halt -> ()
          | ( ( Linear.Lnone | Linear.Ljump _ | Linear.Lcond _ | Linear.Lswitch _
              | Linear.Lcall _ | Linear.Lvcall _ | Linear.Lret | Linear.Lhalt ),
              _ ) ->
            kind_mismatch ())
        linear.Linear.blocks;
    List.rev !diags
