(** Structured lint diagnostics.

    Every checker in [Ba_analysis] reports through this type rather than a
    bare string, so callers (the [branch_align lint] subcommand, the test
    suite, future CI) can filter by severity, group by rule, and point at
    the exact pipeline location — procedure, semantic block, or layout
    position — the invariant was violated at.

    Rule ids are stable slugs of the form ["stage/rule-name"]
    (e.g. ["profile/flow-conservation"]); the catalogue lives in
    DESIGN.md's "Invariants & lint rules" section. *)

type severity = Error | Warning | Info

type location =
  | Program  (** a whole-program fact (e.g. call-graph shape) *)
  | Proc of { proc : Ba_ir.Term.proc_id; proc_name : string }
  | Block of {
      proc : Ba_ir.Term.proc_id;
      proc_name : string;
      block : Ba_ir.Term.block_id;
    }  (** a semantic basic block *)
  | Layout_pos of {
      proc : Ba_ir.Term.proc_id;
      proc_name : string;
      pos : int;
    }  (** a position in a lowered (linear) layout *)

type t = { severity : severity; rule : string; loc : location; message : string }

val make :
  severity -> rule:string -> loc:location -> ('a, unit, string, t) format4 -> 'a
(** [make Error ~rule ~loc fmt ...] builds a diagnostic with a formatted
    message. *)

val severity_name : severity -> string
val is_error : t -> bool

val count : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val sort : t list -> t list
(** Stable order: errors first, then warnings, then infos; within a
    severity, by location (program, then procedure id, then block/position),
    then rule id. *)

val pp_location : Format.formatter -> location -> unit
val pp : Format.formatter -> t -> unit

val to_row : t -> string list
(** [[severity; rule; location; message]] — one table row for
    {!Ba_util.Ascii_table.render}. *)

val location_to_json : location -> Ba_util.Json.t

val to_json : t -> Ba_util.Json.t
(** Machine-readable form, shared by [lint --format=json] and
    [verify --format=json]. *)
