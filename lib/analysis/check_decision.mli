(** Stage 3: layout decisions.

    An alignment algorithm's output must be a true permutation of the
    procedure's blocks with the entry block first (a procedure's entry
    point is its first address), and its forced "align neither edge" set
    must be sized to the procedure and only name conditional blocks.

    Rules: [decision/order-length], [decision/block-range],
    [decision/duplicate-block], [decision/missing-block],
    [decision/entry-not-first], [decision/neither-length],
    [decision/neither-non-cond]. *)

val check :
  proc_id:Ba_ir.Term.proc_id ->
  Ba_ir.Proc.t ->
  Ba_layout.Decision.t ->
  Diagnostic.t list
