(** Stage 5: whole-program code images.

    Address accounting: procedure bases start at zero and are laid
    end-to-end in program order, each layout block starts exactly where the
    previous one ended (its straight-line instructions plus terminator
    instructions — so addresses are strictly increasing, with no gaps or
    overlaps), and [total_size] equals the end of the last procedure.

    Rules: [image/linear-count], [image/base-mismatch],
    [image/address-gap], [image/proc-overlap], [image/total-size]. *)

val check : Ba_layout.Image.t -> Diagnostic.t list
