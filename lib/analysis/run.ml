type stage = Ir | Profile | Decision | Linear | Image | Conflict | Audit | Bound

let stage_name = function
  | Ir -> "ir"
  | Profile -> "profile"
  | Decision -> "decision"
  | Linear -> "linear"
  | Image -> "image"
  | Conflict -> "conflict"
  | Audit -> "audit"
  | Bound -> "bound"

let core_stages = [ Ir; Profile; Decision; Linear; Image ]
let all_stages = core_stages @ [ Conflict; Audit; Bound ]

type report = {
  program_name : string;
  algo : Ba_core.Align.algo;
  arch : Ba_core.Cost_model.arch;
  stages : (stage * Diagnostic.t list) list;
}

let diagnostics r = Diagnostic.sort (List.concat_map snd r.stages)

let error_count r =
  let e, _, _ = Diagnostic.count (diagnostics r) in
  e

let ran r stage = List.mem_assoc stage r.stages

let has_errors diags = List.exists Diagnostic.is_error diags

let check_layout ?profile (program : Ba_ir.Program.t) decisions =
  let n = Ba_ir.Program.n_procs program in
  if Array.length decisions <> n then
    invalid_arg "Run.check_layout: one decision per procedure required";
  let decision_diags =
    List.concat
      (List.init n (fun pid ->
           Check_decision.check ~proc_id:pid (Ba_ir.Program.proc program pid)
             decisions.(pid)))
  in
  if has_errors decision_diags then [ (Decision, decision_diags) ]
  else begin
    let image = Ba_layout.Image.build ?profile program decisions in
    let linear_diags =
      List.concat
        (List.init n (fun pid ->
             Check_linear.check ~proc_id:pid image.Ba_layout.Image.linears.(pid)))
    in
    [
      (Decision, decision_diags);
      (Linear, linear_diags);
      (Image, Check_image.check image);
    ]
  end

let check_pipeline ?(arch = Ba_core.Cost_model.Btfnt) ?max_steps ?profile ~algo
    (program : Ba_ir.Program.t) =
  let ir_diags = Check_ir.check_program program in
  let stages =
    if has_errors ir_diags then [ (Ir, ir_diags) ]
    else begin
      let profile =
        match profile with
        | Some p ->
          if Ba_cfg.Profile.program p != program then
            invalid_arg "Run.check_pipeline: profile of a different program";
          p
        | None -> Ba_exec.Engine.profile_program ?max_steps program
      in
      let profile_diags = Check_profile.check profile in
      let decisions = Ba_core.Align.align_program algo ~arch profile in
      (Ir, ir_diags) :: (Profile, profile_diags) :: check_layout ~profile program decisions
    end
  in
  { program_name = program.Ba_ir.Program.name; algo; arch; stages }
