type severity = Error | Warning | Info

type location =
  | Program
  | Proc of { proc : Ba_ir.Term.proc_id; proc_name : string }
  | Block of {
      proc : Ba_ir.Term.proc_id;
      proc_name : string;
      block : Ba_ir.Term.block_id;
    }
  | Layout_pos of { proc : Ba_ir.Term.proc_id; proc_name : string; pos : int }

type t = { severity : severity; rule : string; loc : location; message : string }

let make severity ~rule ~loc fmt =
  Printf.ksprintf (fun message -> { severity; rule; loc; message }) fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Locations order program-first, then by procedure, then by block/position;
   blocks sort before layout positions of the same procedure so IR-level
   findings lead. *)
let location_key = function
  | Program -> (-1, 0, 0)
  | Proc { proc; _ } -> (proc, -1, 0)
  | Block { proc; block; _ } -> (proc, 0, block)
  | Layout_pos { proc; pos; _ } -> (proc, 1, pos)

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = compare (location_key a.loc) (location_key b.loc) in
        if c <> 0 then c else compare a.rule b.rule)
    ds

let location_string = function
  | Program -> "program"
  | Proc { proc_name; _ } -> proc_name
  | Block { proc_name; block; _ } -> Printf.sprintf "%s/b%d" proc_name block
  | Layout_pos { proc_name; pos; _ } -> Printf.sprintf "%s@%d" proc_name pos

let pp_location ppf loc = Fmt.string ppf (location_string loc)

let pp ppf d =
  Fmt.pf ppf "%s[%s] %a: %s" (severity_name d.severity) d.rule pp_location d.loc
    d.message

let to_row d =
  [ severity_name d.severity; d.rule; location_string d.loc; d.message ]

let location_to_json loc =
  let open Ba_util.Json in
  match loc with
  | Program -> Obj [ ("kind", String "program") ]
  | Proc { proc; proc_name } ->
    Obj [ ("kind", String "proc"); ("proc", Int proc); ("proc_name", String proc_name) ]
  | Block { proc; proc_name; block } ->
    Obj
      [
        ("kind", String "block"); ("proc", Int proc);
        ("proc_name", String proc_name); ("block", Int block);
      ]
  | Layout_pos { proc; proc_name; pos } ->
    Obj
      [
        ("kind", String "layout_pos"); ("proc", Int proc);
        ("proc_name", String proc_name); ("pos", Int pos);
      ]

let to_json d =
  let open Ba_util.Json in
  Obj
    [
      ("severity", String (severity_name d.severity));
      ("rule", String d.rule);
      ("location", location_to_json d.loc);
      ("message", String d.message);
    ]
