open Ba_ir
open Ba_layout

(* An image's address map is a set of contiguous runs: one per procedure
   in the classic layout, two — hot prefix and cold suffix — for a
   procedure split by the inter-procedural layout.  Within a procedure the
   addresses must start at the base and increase contiguously, with at
   most one upward gap (the hot/cold split), and only after a block that
   cannot fall through.  Globally the runs may appear in any order (the
   stitcher permutes procedure placement) but must not overlap, and
   [total_size] must sit at the end of the last run. *)
let check (image : Image.t) =
  let program = image.Image.program in
  let n_procs = Program.n_procs program in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if
    Array.length image.Image.linears <> n_procs
    || Array.length image.Image.bases <> n_procs
  then
    add
      (Diagnostic.make Diagnostic.Error ~rule:"image/linear-count"
         ~loc:Diagnostic.Program
         "%d layouts and %d bases for a %d-procedure program"
         (Array.length image.Image.linears)
         (Array.length image.Image.bases)
         n_procs)
  else begin
    let runs = ref [] in
    Array.iteri
      (fun pid (linear : Linear.t) ->
        let proc_name = (Program.proc program pid).Proc.name in
        let at pos rule fmt =
          Printf.ksprintf
            (fun message ->
              add
                (Diagnostic.make Diagnostic.Error ~rule
                   ~loc:(Diagnostic.Layout_pos { proc = pid; proc_name; pos })
                   "%s" message))
            fmt
        in
        let blocks = linear.Linear.blocks in
        let run_start = ref image.Image.bases.(pid) in
        let cursor = ref image.Image.bases.(pid) in
        let gaps = ref 0 in
        Array.iteri
          (fun i (lb : Linear.lblock) ->
            if lb.Linear.addr <> !cursor then begin
              if i = 0 then
                at i "image/base-mismatch"
                  "block at address %d but the procedure is based at %d"
                  lb.Linear.addr !cursor
              else if lb.Linear.addr < !cursor then
                at i "image/address-gap"
                  "block at address %d but the preceding code ends at %d \
                   (addresses must be strictly increasing)"
                  lb.Linear.addr !cursor
              else begin
                incr gaps;
                if !gaps > 1 then
                  at i "image/address-gap"
                    "second address gap at %d (one hot/cold split is the \
                     most a procedure may carry)"
                    lb.Linear.addr
                else begin
                  if Linear.falls_through blocks.(i - 1) then
                    at i "image/cold-fallthrough"
                      "cold section starts at address %d but the block \
                       before the split falls through"
                      lb.Linear.addr;
                  runs := (!run_start, !cursor, pid) :: !runs;
                  run_start := lb.Linear.addr
                end
              end;
              (* resynchronise so one bad address reports once *)
              cursor := lb.Linear.addr
            end;
            cursor := !cursor + Linear.block_size lb)
          blocks;
        runs := (!run_start, !cursor, pid) :: !runs)
      image.Image.linears;
    (* Gaps between runs are deliberate (inter-procedure pads, the
       hot/cold boundary); only runs overrunning each other are errors. *)
    let last_end =
      List.fold_left
        (fun prev_end (start, stop, pid) ->
          if start < prev_end then
            add
              (Diagnostic.make Diagnostic.Error ~rule:"image/proc-overlap"
                 ~loc:
                   (Diagnostic.Proc
                      { proc = pid;
                        proc_name = (Program.proc program pid).Proc.name })
                 "code run at address %d overlaps the previous run, which \
                  ends at %d"
                 start prev_end);
          max prev_end stop)
        0
        (List.sort compare (List.rev !runs))
    in
    if image.Image.total_size <> last_end then
      add
        (Diagnostic.make Diagnostic.Error ~rule:"image/total-size"
           ~loc:Diagnostic.Program
           "total_size is %d but the last code run ends at address %d"
           image.Image.total_size last_end)
  end;
  List.rev !diags
