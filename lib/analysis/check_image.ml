open Ba_ir
open Ba_layout

let check (image : Image.t) =
  let program = image.Image.program in
  let n_procs = Program.n_procs program in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if
    Array.length image.Image.linears <> n_procs
    || Array.length image.Image.bases <> n_procs
  then
    add
      (Diagnostic.make Diagnostic.Error ~rule:"image/linear-count"
         ~loc:Diagnostic.Program
         "%d layouts and %d bases for a %d-procedure program"
         (Array.length image.Image.linears)
         (Array.length image.Image.bases)
         n_procs)
  else begin
    let expected_base = ref 0 in
    Array.iteri
      (fun pid (linear : Linear.t) ->
        let proc_name = (Program.proc program pid).Proc.name in
        let proc_loc = Diagnostic.Proc { proc = pid; proc_name } in
        (* A base past the previous end is a deliberate alignment gap
           (conflict-aware placement pads between procedures); only bases
           that run code into the preceding procedure are errors. *)
        if image.Image.bases.(pid) < !expected_base then
          add
            (Diagnostic.make Diagnostic.Error ~rule:"image/proc-overlap" ~loc:proc_loc
               "procedure based at address %d overlaps the previous procedure, \
                which ends at %d"
               image.Image.bases.(pid) !expected_base);
        let cursor = ref image.Image.bases.(pid) in
        Array.iteri
          (fun i (lb : Linear.lblock) ->
            if lb.Linear.addr <> !cursor then
              add
                (Diagnostic.make Diagnostic.Error
                   ~rule:
                     (if i = 0 then "image/base-mismatch" else "image/address-gap")
                   ~loc:(Diagnostic.Layout_pos { proc = pid; proc_name; pos = i })
                   "block at address %d but the preceding code ends at %d \
                    (addresses must be contiguous and strictly increasing)"
                   lb.Linear.addr !cursor);
            cursor := lb.Linear.addr + Linear.block_size lb)
          linear.Linear.blocks;
        expected_base := !cursor)
      image.Image.linears;
    if image.Image.total_size <> !expected_base then
      add
        (Diagnostic.make Diagnostic.Error ~rule:"image/total-size"
           ~loc:Diagnostic.Program
           "total_size is %d but the last procedure ends at address %d"
           image.Image.total_size !expected_base)
  end;
  List.rev !diags
