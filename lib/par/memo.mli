(** A compute-once, share-everywhere cache safe under domain parallelism.

    [get] guarantees the compute function runs {e exactly once} per key, no
    matter how many pool tasks ask concurrently: the first caller computes
    while the rest block on a condition variable and then share the result.
    An exception raised by the compute function is cached too, and re-raised
    for every caller of that key — deterministically, like the value would
    have been.

    Keys are strings; callers are expected to build them from
    {!Ba_util.Fnv.digest64} over a canonical description of the inputs
    (see [Ba_workloads.Profiled] for the profile cache's keying). *)

type 'a t

val create : unit -> 'a t

val get : 'a t -> key:string -> (unit -> 'a) -> 'a

val mem : 'a t -> string -> bool
(** True if the key holds a settled (computed or failed) entry. *)

val length : 'a t -> int
(** Number of settled entries. *)

val hits : 'a t -> int
(** [get] calls served from the cache (including ones that blocked while
    the first caller was still computing). *)

val misses : 'a t -> int
(** [get] calls that ran the compute function. *)

val clear : 'a t -> unit
(** Drop every settled entry and reset the counters.  Raises
    [Invalid_argument] if a computation is still in flight. *)
