(* Sharded compute-once LRU cache.

   Keys hash to one of N independent shards (FNV-1a-64, like every other
   digest in the repo), so concurrent lookups on different shards never
   contend.  Within a shard, a miss installs a [Pending] cell before the
   compute runs outside the lock — concurrent callers of the same key block
   on the cell instead of recomputing (the record-once contract the trace
   layer depends on).  Recency is an integer stamp per entry; eviction
   scans for the minimum stamp, which is O(entries-per-shard) but entries
   here are whole recorded traces, so shards hold tens of values, not
   millions. *)

type 'a state =
  | Pending
  | Ready of 'a
  | Failed  (* compute raised; cell is dead, waiters must retry *)

type 'a entry = {
  mutable state : 'a state;
  mutable size : int;  (* bytes charged against the shard budget *)
  mutable stamp : int;  (* shard tick at last touch; larger = more recent *)
}

type 'a shard = {
  mutex : Mutex.t;
  settled : Condition.t;  (* some Pending cell became Ready or Failed *)
  table : (string, 'a entry) Hashtbl.t;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type 'a t = {
  shards : 'a shard array;
  size_of : 'a -> int;
  mutable budget_bytes : int;  (* total across shards; <= 0 means unbounded *)
  m_hit : Ba_obs.Counter.t;
  m_miss : Ba_obs.Counter.t;
  m_evict : Ba_obs.Counter.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;
  budget_bytes : int;
}

let create ?(shards = 8) ?(budget_bytes = 0) ~name ~size_of () =
  if shards < 1 then invalid_arg "Lru.create: shards must be at least 1";
  (* Volatile: hit/miss splits depend on scheduling once eviction kicks in,
     so they must stay out of the deterministic metrics document. *)
  let metric suffix =
    Ba_obs.Counter.make ~unit_:"lookups" ~volatile:true
      (Printf.sprintf "lru.%s.%s" name suffix)
  in
  {
    shards =
      Array.init shards (fun _ ->
          {
            mutex = Mutex.create ();
            settled = Condition.create ();
            table = Hashtbl.create 16;
            bytes = 0;
            tick = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
          });
    size_of;
    budget_bytes;
    m_hit = metric "hit";
    m_miss = metric "miss";
    m_evict = metric "evict";
  }

let shard_of t key =
  let h = Ba_util.Fnv.hash64 key in
  let n = Array.length t.shards in
  t.shards.(Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int n)))

let per_shard_budget (t : _ t) =
  if t.budget_bytes <= 0 then max_int
  else max 1 (t.budget_bytes / Array.length t.shards)

let touch (sh : _ shard) e =
  sh.tick <- sh.tick + 1;
  e.stamp <- sh.tick

(* With [sh.mutex] held: drop least-recently-used Ready entries until the
   shard fits its budget.  Pending cells are never evicted (a computer or
   waiters hold them); if nothing evictable remains we stop, over budget. *)
let evict_over_budget (t : _ t) (sh : _ shard) =
  let budget = per_shard_budget t in
  let exhausted = ref false in
  while sh.bytes > budget && not !exhausted do
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match e.state with
        | Ready _ -> (
          match !victim with
          | Some (_, best) when best.stamp <= e.stamp -> ()
          | _ -> victim := Some (k, e))
        | Pending | Failed -> ())
      sh.table;
    match !victim with
    | Some (k, e) ->
      Hashtbl.remove sh.table k;
      sh.bytes <- sh.bytes - e.size;
      sh.evictions <- sh.evictions + 1;
      Ba_obs.Counter.incr t.m_evict
    | None -> exhausted := true
  done

let get (t : _ t) ~key compute =
  let sh = shard_of t key in
  Mutex.lock sh.mutex;
  (* [counted] is true once this call has been tallied as a hit or miss, so
     retries after a Failed cell do not double count. *)
  let rec acquire ~counted =
    match Hashtbl.find_opt sh.table key with
    | Some e -> (
      if not counted then begin
        sh.hits <- sh.hits + 1;
        Ba_obs.Counter.incr t.m_hit
      end;
      match e.state with
      | Ready v ->
        touch sh e;
        Mutex.unlock sh.mutex;
        v
      | Failed ->
        (* Dead cell left by a failed compute; replace it. *)
        Hashtbl.remove sh.table key;
        acquire ~counted:true
      | Pending ->
        let rec wait () =
          match e.state with
          | Pending ->
            Condition.wait sh.settled sh.mutex;
            wait ()
          | Ready v ->
            touch sh e;
            Mutex.unlock sh.mutex;
            v
          | Failed -> acquire ~counted:true
        in
        wait ())
    | None ->
      if not counted then begin
        sh.misses <- sh.misses + 1;
        Ba_obs.Counter.incr t.m_miss
      end;
      let e = { state = Pending; size = 0; stamp = sh.tick } in
      Hashtbl.replace sh.table key e;
      Mutex.unlock sh.mutex;
      (match compute () with
      | v ->
        let size = max 0 (t.size_of v) in
        Mutex.lock sh.mutex;
        e.state <- Ready v;
        e.size <- size;
        sh.bytes <- sh.bytes + size;
        touch sh e;
        Condition.broadcast sh.settled;
        evict_over_budget t sh;
        Mutex.unlock sh.mutex;
        v
      | exception ex ->
        Mutex.lock sh.mutex;
        (* Leave a Failed marker for waiters already holding the cell, but
           remove it from the table so the next lookup recomputes. *)
        e.state <- Failed;
        (match Hashtbl.find_opt sh.table key with
        | Some e' when e' == e -> Hashtbl.remove sh.table key
        | _ -> ());
        Condition.broadcast sh.settled;
        Mutex.unlock sh.mutex;
        raise ex)
  in
  acquire ~counted:false

let mem (t : _ t) key =
  let sh = shard_of t key in
  Mutex.lock sh.mutex;
  let present =
    match Hashtbl.find_opt sh.table key with
    | Some { state = Ready _; _ } -> true
    | _ -> false
  in
  Mutex.unlock sh.mutex;
  present

let set_budget (t : _ t) ~bytes =
  t.budget_bytes <- bytes;
  Array.iter
    (fun sh ->
      Mutex.lock sh.mutex;
      evict_over_budget t sh;
      Mutex.unlock sh.mutex)
    t.shards

let stats (t : _ t) =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.mutex;
      let entries =
        Hashtbl.fold
          (fun _ e n -> match e.state with Ready _ -> n + 1 | _ -> n)
          sh.table 0
      in
      let acc =
        {
          acc with
          hits = acc.hits + sh.hits;
          misses = acc.misses + sh.misses;
          evictions = acc.evictions + sh.evictions;
          entries = acc.entries + entries;
          bytes = acc.bytes + sh.bytes;
        }
      in
      Mutex.unlock sh.mutex;
      acc)
    {
      hits = 0;
      misses = 0;
      evictions = 0;
      entries = 0;
      bytes = 0;
      budget_bytes = t.budget_bytes;
    }
    t.shards

let clear (t : _ t) =
  Array.iter
    (fun sh ->
      Mutex.lock sh.mutex;
      (* Ready entries go; Pending cells stay (their computer will settle
         them and account their bytes), so a clear racing a compute cannot
         corrupt the byte ledger. *)
      let pending =
        Hashtbl.fold
          (fun k e acc ->
            match e.state with
            | Pending -> (k, e) :: acc
            | Ready _ | Failed -> acc)
          sh.table []
      in
      Hashtbl.reset sh.table;
      List.iter (fun (k, e) -> Hashtbl.replace sh.table k e) pending;
      sh.bytes <- 0;
      sh.hits <- 0;
      sh.misses <- 0;
      sh.evictions <- 0;
      Mutex.unlock sh.mutex)
    t.shards
