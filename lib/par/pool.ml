(* Hand-rolled work pool over Domain + Mutex/Condition (no dependency on
   domainslib).  Determinism comes from the result slots being indexed by
   task, not by completion: scheduling can interleave however it likes and
   the caller still sees input order. *)

type batch = {
  run : int -> unit;  (* run task [i]; must never raise *)
  n : int;
  mutable next : int;  (* next unclaimed task index *)
  mutable unfinished : int;  (* tasks not yet completed *)
}

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* claimable work exists, or shutdown *)
  finished : Condition.t;  (* a batch completed *)
  idle : Condition.t;  (* the pool is free for the next batch *)
  mutable current : batch option;
  mutable busy : bool;  (* a map is in flight *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* True while the current domain is executing a pool task; a nested [map]
   must then run inline rather than submit to (and deadlock on) the pool. *)
let in_task = Domain.DLS.new_key (fun () -> false)

let jobs_of_string s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "job count must be positive, got %d" n)
  | None -> Error (Printf.sprintf "job count must be a positive integer, got %S" s)

(* An empty value counts as unset: [BA_JOBS= cmd] is the conventional way
   to clear an inherited setting, and [Unix.putenv "BA_JOBS" ""] is the
   only way a test can restore an originally-unset variable. *)
let jobs_env () =
  match Sys.getenv_opt "BA_JOBS" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> Some s

let check_env () =
  match jobs_env () with
  | None -> Ok ()
  | Some s -> (
    match jobs_of_string s with
    | Ok _ -> Ok ()
    | Error e -> Error (Printf.sprintf "BA_JOBS: %s" e))

let default_jobs () =
  match jobs_env () with
  | Some s -> (
    match jobs_of_string s with
    | Ok n -> n
    | Error e -> failwith (Printf.sprintf "BA_JOBS: %s" e))
  | None -> Domain.recommended_domain_count ()

let jobs t = t.n_jobs

let run_task b i =
  let prev = Domain.DLS.get in_task in
  Domain.DLS.set in_task true;
  b.run i;
  Domain.DLS.set in_task prev

(* With [t.mutex] held: claim the next task of the current batch, clearing
   [current] once the batch has no unclaimed tasks left. *)
let try_claim t =
  match t.current with
  | Some b when b.next < b.n ->
    let i = b.next in
    b.next <- i + 1;
    if b.next >= b.n then t.current <- None;
    Some (b, i)
  | _ -> None

let complete t b =
  Mutex.lock t.mutex;
  b.unfinished <- b.unfinished - 1;
  if b.unfinished = 0 then Condition.broadcast t.finished;
  Mutex.unlock t.mutex

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec await () =
      if t.stop then None
      else
        match try_claim t with
        | Some claimed -> Some claimed
        | None ->
          Condition.wait t.work t.mutex;
          await ()
    in
    match await () with
    | None -> Mutex.unlock t.mutex
    | Some (b, i) ->
      Mutex.unlock t.mutex;
      run_task b i;
      complete t b;
      loop ()
  in
  loop ()

let create ?jobs () =
  let n_jobs = match jobs with Some j -> j | None -> default_jobs () in
  if n_jobs < 1 then invalid_arg "Pool.create: jobs must be at least 1";
  let t =
    {
      n_jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      idle = Condition.create ();
      current = None;
      busy = false;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Submit a batch and participate in running it until every task has
   completed (claimed tasks may still be in flight on worker domains after
   the submitter runs out of work to claim; wait for those too). *)
let run_batch t b =
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.map: pool already shut down"
  end;
  while t.busy do
    Condition.wait t.idle t.mutex
  done;
  t.busy <- true;
  t.current <- Some b;
  Condition.broadcast t.work;
  let rec participate () =
    match try_claim t with
    | Some (b', i) ->
      Mutex.unlock t.mutex;
      run_task b' i;
      complete t b';
      Mutex.lock t.mutex;
      participate ()
    | None ->
      while b.unfinished > 0 do
        Condition.wait t.finished t.mutex
      done;
      t.busy <- false;
      Condition.broadcast t.idle;
      Mutex.unlock t.mutex
  in
  participate ()

let m_batches = Ba_obs.Counter.make ~unit_:"batches" "par.pool.batch"
let m_tasks = Ba_obs.Counter.make ~unit_:"tasks" "par.pool.tasks"
let m_steal = Ba_obs.Counter.make ~unit_:"tasks" ~volatile:true "par.pool.steal"
let m_jobs = Ba_obs.Gauge.make ~unit_:"domains" ~volatile:true "par.pool.jobs"

(* The shared core: run [n] tasks, fill task-indexed result slots, raise the
   lowest-indexed task exception (what a sequential left-to-right run would
   surface) after the batch drains.

   When the submitting domain has a metrics registry installed, each task
   gets a fresh registry for its duration (workers never share one), and all
   task registries merge into the submitter's in task order once the batch
   has drained — so every counter total is independent of scheduling. *)
let run_indexed t ~times n task =
  if n > 0 then begin
    let parent = Ba_obs.Registry.current () in
    let task_regs =
      match parent with
      | None -> [||]
      | Some _ -> Array.init n (fun _ -> Ba_obs.Registry.create ())
    in
    let submitter = Domain.self () in
    let instrumented i =
      if Array.length task_regs = 0 then (task i : (_, exn) result)
      else
        Ba_obs.Registry.with_registry task_regs.(i) (fun () ->
            if not (Domain.self () = submitter) then Ba_obs.Counter.incr m_steal;
            task i)
    in
    let timed i =
      match times with
      | None -> ignore (instrumented i : (_, exn) result)
      | Some ts ->
        let t0 = Unix.gettimeofday () in
        ignore (instrumented i : (_, exn) result);
        ts.(i) <- Unix.gettimeofday () -. t0
    in
    if t.n_jobs = 1 || n = 1 || Domain.DLS.get in_task then
      (* Sequential path: same slots, same exception contract, no pool
         machinery.  [n = 1] deliberately skips the [in_task] flag so a
         nested map of a single outer task can still use the pool. *)
      for i = 0 to n - 1 do
        timed i
      done
    else run_batch t { run = timed; n; next = 0; unfinished = n };
    match parent with
    | None -> ()
    | Some p ->
      Array.iter (fun r -> Ba_obs.Registry.merge_into ~into:p r) task_regs;
      Ba_obs.Counter.incr m_batches;
      Ba_obs.Counter.add m_tasks n;
      Ba_obs.Gauge.set m_jobs t.n_jobs
  end

let extract results =
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false)
    results

let map_array_timed t ~times f xs =
  let n = Array.length xs in
  let results = Array.make n None in
  let task i =
    let r = match f xs.(i) with v -> Ok v | exception e -> Error e in
    results.(i) <- Some r;
    r
  in
  run_indexed t ~times n task;
  extract results

let map_array t f xs = map_array_timed t ~times:None f xs

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let mapi t f xs =
  Array.to_list
    (map_array t (fun (i, x) -> f i x) (Array.of_list (List.mapi (fun i x -> (i, x)) xs)))

let map_reduce t ~map:f ~reduce ~init xs = List.fold_left reduce init (map t f xs)

let timed_map t ~label ?task_label f xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  let times = Array.make n 0.0 in
  let t0 = Unix.gettimeofday () in
  let results = map_array_timed t ~times:(Some times) f xs in
  let wall = Unix.gettimeofday () -. t0 in
  let task_labels =
    match task_label with
    | Some l -> Array.map l xs
    | None -> Array.init n string_of_int
  in
  ( Array.to_list results,
    Stats.make ~label ~jobs:t.n_jobs ~wall_seconds:wall ~task_labels
      ~task_seconds:times )
