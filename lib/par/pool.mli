(** A deterministic Domain-based work pool.

    The evaluation matrices (tables, lint-all, verify-all, bench) are
    embarrassingly parallel grids, but every rendered table must be
    bit-for-bit identical whatever the scheduling.  The pool guarantees
    that by construction: tasks are claimed from a shared index counter,
    every result is written into a task-indexed slot, and {!map} returns
    the slots in input order — so output depends only on the task function,
    never on completion order.

    Concurrency rules:

    - A pool runs one batch at a time; concurrent {!map} calls from
      different domains queue up on the pool and run back to back.
    - A {!map} issued from {e inside} a pool task runs inline
      (sequentially, in the calling task) instead of deadlocking on the
      pool; nested parallelism is deliberately not a thing.
    - Tasks must not share unsynchronised mutable state.  Everything in
      [lib/] keeps its interpreter and predictor state per run, so the
      pipeline functions are safe as-is; profiles passed to tasks are only
      read.

    Exception contract: if tasks raise, {!map} raises the exception of the
    {e lowest-indexed} raising task — the same one a sequential left-to-right
    run would surface — after the whole batch has drained.  The pool remains
    usable afterwards.

    [jobs = 1] forces the plain sequential path: no domains are spawned
    and tasks run in the calling domain in input order. *)

type t

val jobs_of_string : string -> (int, string) result
(** Parse a job count: a positive integer (surrounding whitespace allowed).
    Zero, negative, and non-numeric values are errors with a human-readable
    message. *)

val check_env : unit -> (unit, string) result
(** Validate the [BA_JOBS] environment variable without consuming it.  [Ok]
    when unset or a positive integer; [Error message] otherwise.  Entry
    points call this first so a malformed [BA_JOBS] is a clear non-zero exit
    instead of a silent fallback. *)

val default_jobs : unit -> int
(** The [BA_JOBS] environment variable if set, otherwise
    [Domain.recommended_domain_count ()].  Raises [Failure] if [BA_JOBS] is
    set to anything but a positive integer — use {!check_env} at program
    entry for a graceful message. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the submitting
    domain participates in every batch, so [jobs] is the true concurrency).
    [jobs] defaults to {!default_jobs}; values below 1 raise
    [Invalid_argument]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Calling {!map} after
    shutdown raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown]. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. *)

val mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** Parallel map, then a sequential left fold over the results in task
    order — deterministic even for non-commutative [reduce]. *)

val timed_map :
  t ->
  label:string ->
  ?task_label:('a -> string) ->
  ('a -> 'b) ->
  'a list ->
  'b list * Stats.t
(** {!map} that also captures per-task and whole-batch wall times. *)
