(** Per-batch timing captured by {!Pool.timed_map}.

    [task_seconds] is task-indexed (same order as the input list), so the
    record is itself deterministic in shape; only the measured durations
    vary run to run. *)

type t = {
  label : string;  (** what the batch computed, e.g. ["evaluate_suite"] *)
  jobs : int;  (** pool width the batch ran at *)
  wall_seconds : float;  (** whole-batch wall time *)
  task_labels : string array;
  task_seconds : float array;  (** per-task wall time, task-indexed *)
}

val make :
  label:string ->
  jobs:int ->
  wall_seconds:float ->
  task_labels:string array ->
  task_seconds:float array ->
  t
(** Raises [Invalid_argument] if the label and seconds arrays disagree in
    length. *)

val tasks : t -> int

val total_task_seconds : t -> float
(** Sum of per-task times — the sequential-equivalent work. *)

val speedup : t -> float
(** [total_task_seconds / wall_seconds]; 0 when the wall time is 0. *)

val to_json : t -> Ba_util.Json.t

val render : t -> string
(** Human-readable ASCII table: one row per task plus a summary line. *)

val pp : Format.formatter -> t -> unit
