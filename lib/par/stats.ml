type t = {
  label : string;
  jobs : int;
  wall_seconds : float;
  task_labels : string array;
  task_seconds : float array;
}

let make ~label ~jobs ~wall_seconds ~task_labels ~task_seconds =
  if Array.length task_labels <> Array.length task_seconds then
    invalid_arg "Stats.make: one label per task required";
  { label; jobs; wall_seconds; task_labels; task_seconds }

let tasks t = Array.length t.task_seconds
let total_task_seconds t = Array.fold_left ( +. ) 0.0 t.task_seconds

let speedup t =
  if t.wall_seconds <= 0.0 then 0.0 else total_task_seconds t /. t.wall_seconds

let to_json t =
  let open Ba_util.Json in
  Obj
    [
      ("label", String t.label);
      ("jobs", Int t.jobs);
      ("tasks", Int (tasks t));
      ("wall_seconds", Float t.wall_seconds);
      ("task_seconds_total", Float (total_task_seconds t));
      ("speedup", Float (speedup t));
      ( "tasks_detail",
        List
          (Array.to_list
             (Array.map2
                (fun label seconds ->
                  Obj [ ("label", String label); ("seconds", Float seconds) ])
                t.task_labels t.task_seconds)) );
    ]

let render t =
  let columns =
    Ba_util.Ascii_table.[ column ~align:Left "task"; column "seconds" ]
  in
  let rows =
    Array.to_list
      (Array.map2
         (fun label seconds ->
           [ label; Ba_util.Ascii_table.float_cell ~decimals:3 seconds ])
         t.task_labels t.task_seconds)
  in
  Ba_util.Ascii_table.render ~columns ~rows
  ^ Printf.sprintf "%s: %d tasks on %d jobs: %.3fs wall, %.3fs of work (speedup %.2fx)\n"
      t.label (tasks t) t.jobs t.wall_seconds (total_task_seconds t) (speedup t)

let pp ppf t = Fmt.string ppf (render t)
