type 'a state = Pending | Ready of 'a | Failed of exn

type 'a t = {
  mutex : Mutex.t;
  settled : Condition.t;  (* some Pending cell settled *)
  table : (string, 'a state ref) Hashtbl.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create () =
  {
    mutex = Mutex.create ();
    settled = Condition.create ();
    table = Hashtbl.create 64;
    hit_count = 0;
    miss_count = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Which task records the one miss for a shared key is scheduling-dependent,
   but the totals are not: one miss per key, hits = gets - misses. *)
let m_hit = Ba_obs.Counter.make ~unit_:"gets" "par.memo.hit"
let m_miss = Ba_obs.Counter.make ~unit_:"gets" "par.memo.miss"

let get t ~key compute =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some cell ->
    Ba_obs.Counter.incr m_hit;
    t.hit_count <- t.hit_count + 1;
    let rec await () =
      match !cell with
      | Pending ->
        Condition.wait t.settled t.mutex;
        await ()
      | Ready v ->
        Mutex.unlock t.mutex;
        v
      | Failed e ->
        Mutex.unlock t.mutex;
        raise e
    in
    await ()
  | None ->
    let cell = ref Pending in
    Hashtbl.add t.table key cell;
    Ba_obs.Counter.incr m_miss;
    t.miss_count <- t.miss_count + 1;
    Mutex.unlock t.mutex;
    (* Compute outside the lock so unrelated keys proceed in parallel. *)
    let result = match compute () with v -> Ok v | exception e -> Error e in
    locked t (fun () ->
        cell := (match result with Ok v -> Ready v | Error e -> Failed e);
        Condition.broadcast t.settled);
    (match result with Ok v -> v | Error e -> raise e)

let mem t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some { contents = Ready _ | Failed _ } -> true
      | Some { contents = Pending } | None -> false)

let length t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ cell acc -> match !cell with Pending -> acc | _ -> acc + 1)
        t.table 0)

let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)

let clear t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ cell ->
          match !cell with
          | Pending -> invalid_arg "Memo.clear: a computation is still in flight"
          | _ -> ())
        t.table;
      Hashtbl.reset t.table;
      t.hit_count <- 0;
      t.miss_count <- 0)
