(** Sharded compute-once LRU cache with byte budgets.

    The serving path memoizes recorded traces and profiles keyed by FNV-1a-64
    digests; this cache gives that memoization a bound.  Keys are hashed to
    one of N shards, each with its own lock, so lookups on different shards
    never contend.  Within a shard the cache is compute-once: a miss installs
    a pending cell before running [compute] outside the lock, and concurrent
    callers of the same key block on the cell and share the single result —
    exactly the record-once contract {!Ba_workloads.Profiled} had with
    {!Memo}, plus eviction.

    Counting contract (what the tests pin): the first caller of a key is one
    miss; every concurrent or later caller is one hit, including callers that
    blocked on the pending cell.  A failed compute is not cached — waiters
    retry (and may turn into the new computer) without being re-counted.

    Per cache, three volatile {!Ba_obs} counters are registered:
    [lru.<name>.hit], [lru.<name>.miss], [lru.<name>.evict].  They are
    volatile because hit/miss splits depend on scheduling once eviction is
    active, and the metrics JSON document must stay deterministic. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** ready (cached) entries across all shards *)
  bytes : int;  (** bytes charged across all shards *)
  budget_bytes : int;  (** configured total budget; [<= 0] means unbounded *)
}

val create :
  ?shards:int -> ?budget_bytes:int -> name:string -> size_of:('a -> int) -> unit -> 'a t
(** [create ~name ~size_of ()] makes an empty cache.  [shards] defaults to 8;
    [budget_bytes] is the total budget split evenly across shards, and values
    [<= 0] (the default) mean unbounded.  [size_of] prices a value when it is
    inserted; the price is remembered, so mutating a cached value's size
    afterwards does not corrupt the ledger. *)

val get : 'a t -> key:string -> (unit -> 'a) -> 'a
(** [get t ~key compute] returns the cached value for [key], computing (and
    caching) it on a miss.  Concurrent callers of the same key block and
    share one compute.  If [compute] raises, the exception propagates to the
    computing caller, nothing is cached, and blocked waiters retry. *)

val mem : 'a t -> string -> bool
(** [mem t key] is [true] iff a ready value for [key] is currently cached
    (pending computes do not count). *)

val set_budget : 'a t -> bytes:int -> unit
(** Replace the total byte budget and evict immediately to fit. *)

val stats : 'a t -> stats

val clear : 'a t -> unit
(** Drop every ready entry and reset the hit/miss/eviction tallies.  In-flight
    computes are untouched: their pending cells survive and settle normally. *)
