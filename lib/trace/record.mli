(** Recording semantic traces.

    One {!Ba_exec.Engine.run} pass can produce the profile {e and} the
    trace — the record-once half of the paper's "instrument once, simulate
    many" workflow.  Everything downstream then replays. *)

val run :
  ?on_event:(Ba_exec.Event.t -> unit) ->
  ?on_block:(addr:int -> size:int -> unit) ->
  ?profile:Ba_cfg.Profile.t ->
  ?max_steps:int ->
  Ba_layout.Image.t ->
  Ba_exec.Engine.result * Trace.t
(** {!Ba_exec.Engine.run} with the decision hooks wired into a
    {!Trace.Builder}; all other callbacks pass through. *)

val profile_and_record :
  ?max_steps:int -> Ba_ir.Program.t -> Ba_cfg.Profile.t * Trace.t
(** Run the original layout once, collecting the profile and the trace in
    the same pass — a drop-in replacement for
    {!Ba_exec.Engine.profile_program} that also yields the trace.  Uses the
    same ["profile"] span. *)
