(** The flat replayer.

    Drives a recorded {!Trace.t} through a {!Flat.t}, producing exactly the
    event stream, block stream and {!Ba_exec.Engine.result} that
    {!Ba_exec.Engine.run} produces on the same image with the same budget —
    byte-identical, proven by the differential test wall — at a fraction of
    the cost: no hashtable lookups, no RNG draws, no weighted scans, and no
    per-event allocation.

    The events passed to [on_event] are {e one mutable scratch value}
    reused for the whole run (see {!Ba_exec.Event.t}); consumers must copy
    what they keep. *)

val run :
  ?on_event:(Ba_exec.Event.t -> unit) ->
  ?on_block:(addr:int -> size:int -> unit) ->
  Flat.t ->
  Trace.t ->
  Ba_exec.Engine.result
(** Raises [Failure] if the trace runs out of decisions for the image —
    the sign of a trace recorded for a different program or budget. *)
