(** Packed semantic traces.

    A trace is the {e layout-independent} decision stream of one program
    execution: every conditional's semantic outcome as one bit, every
    switch/vcall's selected index as one varint, plus the step count and
    whether the run halted.  It deliberately contains {e no} addresses,
    positions or events — those are layout artifacts that {!Replay}
    re-derives from whichever image it is driving.

    Layout-independence holds by construction: {!Ba_exec.Engine.site_seed}
    derives every site's RNG from the program seed and the site's semantic
    (procedure, block) identity only, the global 16-bit history register is
    formed from semantic outcomes in semantic order, and
    {!Ba_layout.Lower.lower} preserves the source order of switch targets
    and vcall callees — so index [i] recorded on one layout selects the
    same semantic successor on every layout of the same program.

    Consumption is also layout-invariant: a block's terminator {e kind}
    does not depend on the layout (a conditional consumes exactly one bit
    whether or not it needed an inserted jump; a switch/vcall consumes
    exactly one varint; jumps, calls, returns and halts consume nothing),
    so one interleaved pair of streams replays correctly everywhere.

    Typical cost: 1 bit per conditional, 1-2 bytes per switch/vcall —
    roughly 400 KB for a 3M-step workload. *)

type t = {
  steps : int;  (** semantic block visits of the recorded run *)
  completed : bool;  (** the recorded run halted before its budget *)
  n_conds : int;  (** conditional outcomes recorded *)
  conds : bytes;  (** outcome bits, LSB-first within each byte *)
  n_choices : int;  (** switch/vcall indices recorded *)
  choices : bytes;  (** the indices, concatenated unsigned LEB128 varints *)
}
(** The record is transparent so {!Replay}'s inner loop reads the streams
    without call overhead; treat values as immutable. *)

val byte_size : t -> int
(** Payload bytes (both streams), the number reported by [bench]. *)

val equal : t -> t -> bool
(** Structural equality of the full decision stream (used by the save/load
    and cache round-trip tests). *)

val cond : t -> int -> bool
(** [cond t i] is the [i]th conditional outcome.  Bounds-checked. *)

(** {1 Building} *)

module Builder : sig
  type trace := t
  type t

  val create : unit -> t
  val add_outcome : t -> bool -> unit
  val add_choice : t -> int -> unit

  val finish : t -> steps:int -> completed:bool -> trace
  (** The builder must not be reused after [finish]. *)
end

(** {1 Disk format}

    Magic ["BAST1\n"], then the program seed (zigzag varint), the recording
    [max_steps], and the six trace fields — all varints via the
    {!Ba_exec.Trace_io} coder, streams as raw bytes.  The seed and budget
    let [branch_align trace replay] refuse a trace recorded for a different
    program or budget. *)

type file = { seed : int; max_steps : int; trace : t }

val save : path:string -> seed:int -> max_steps:int -> t -> unit
val load : path:string -> file
(** Raises [Failure] on bad magic or a truncated file. *)
