let run ?on_event ?on_block ?profile ?max_steps image =
  let b = Trace.Builder.create () in
  let result =
    Ba_exec.Engine.run ?on_event ?on_block ?profile ?max_steps
      ~on_outcome:(Trace.Builder.add_outcome b)
      ~on_choice:(Trace.Builder.add_choice b) image
  in
  ( result,
    Trace.Builder.finish b ~steps:result.Ba_exec.Engine.steps
      ~completed:result.Ba_exec.Engine.completed )

let profile_and_record ?max_steps program =
  Ba_obs.Span.with_ "profile" @@ fun () ->
  let profile = Ba_cfg.Profile.create program in
  let image = Ba_layout.Image.original program in
  let (_ : Ba_exec.Engine.result), trace = run ~profile ?max_steps image in
  (profile, trace)
