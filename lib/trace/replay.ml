open Ba_exec

let m_replays = Ba_obs.Counter.make ~unit_:"runs" "exec.trace.replays"
let m_steps = Ba_obs.Counter.make ~unit_:"blocks" "exec.trace.steps"
let m_insns = Ba_obs.Counter.make ~unit_:"insns" "exec.trace.insns"
let m_branches = Ba_obs.Counter.make ~unit_:"branches" "exec.trace.branches"

let run ?(on_event = fun _ -> ()) ?(on_block = fun ~addr:_ ~size:_ -> ())
    (flat : Flat.t) (tr : Trace.t) =
  let addr = flat.Flat.addr in
  let insns_of = flat.Flat.insns in
  let opcode = flat.Flat.opcode in
  let fa = flat.Flat.a and fb = flat.Flat.b and fc = flat.Flat.c in
  let succ = flat.Flat.succ in
  (* one scratch event, mutated in place *)
  let cond_kind = Event.Cond { taken = false; taken_target = 0 } in
  let scratch = { Event.pc = 0; target = 0; kind = Event.Uncond } in
  let branches = ref 0 in
  let emit pc target kind =
    scratch.Event.pc <- pc;
    scratch.Event.target <- target;
    scratch.Event.kind <- kind;
    incr branches;
    on_event scratch
  in
  let emit_cond pc target ~taken ~taken_target =
    (match cond_kind with
    | Event.Cond payload ->
      payload.taken <- taken;
      payload.taken_target <- taken_target
    | _ -> assert false);
    emit pc target cond_kind
  in
  (* decision cursors *)
  let conds = tr.Trace.conds in
  let cond_i = ref 0 in
  let next_outcome () =
    let i = !cond_i in
    if i >= tr.Trace.n_conds then
      failwith "Replay: trace exhausted (conditional outcomes)";
    cond_i := i + 1;
    (Char.code (Bytes.unsafe_get conds (i lsr 3)) lsr (i land 7)) land 1 = 1
  in
  let choices = tr.Trace.choices in
  let choices_len = Bytes.length choices in
  let choice_off = ref 0 in
  let next_choice () =
    let off = ref !choice_off in
    let shift = ref 0 and acc = ref 0 and fin = ref false in
    while not !fin do
      if !off >= choices_len then
        failwith "Replay: trace exhausted (switch/vcall indices)";
      let byte = Char.code (Bytes.unsafe_get choices !off) in
      incr off;
      acc := !acc lor ((byte land 0x7F) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then fin := true
    done;
    choice_off := !off;
    !acc
  in
  (* call stack as a pair of int arrays: (jump_pc or -1, resume gpos) *)
  let cap = ref 64 in
  let s_jump = ref (Array.make !cap 0) in
  let s_res = ref (Array.make !cap 0) in
  let sp = ref 0 in
  let push jump_pc resume =
    if !sp = !cap then begin
      let cap' = !cap * 2 in
      let j = Array.make cap' 0 and r = Array.make cap' 0 in
      Array.blit !s_jump 0 j 0 !cap;
      Array.blit !s_res 0 r 0 !cap;
      s_jump := j;
      s_res := r;
      cap := cap'
    end;
    !s_jump.(!sp) <- jump_pc;
    !s_res.(!sp) <- resume;
    incr sp
  in
  let budget = tr.Trace.steps in
  let insns = ref 0 in
  let steps = ref 0 in
  let g = ref flat.Flat.entry in
  let running = ref true in
  while !running && !steps < budget do
    let gp = !g in
    incr steps;
    let baddr = addr.(gp) in
    let bins = insns_of.(gp) in
    insns := !insns + bins;
    let pc = baddr + bins in
    let op = opcode.(gp) in
    on_block ~addr:baddr ~size:(if op = Flat.onone then bins else bins + 1);
    if op = Flat.onone then g := gp + 1
    else if op = Flat.ocond then begin
      incr insns;
      let outcome = next_outcome () in
      let taken_pos = fa.(gp) in
      let taken_target = addr.(taken_pos) in
      if outcome = (fb.(gp) = 1) then begin
        emit_cond pc taken_target ~taken:true ~taken_target;
        g := taken_pos
      end
      else begin
        emit_cond pc (pc + 1) ~taken:false ~taken_target;
        let j = fc.(gp) in
        if j < 0 then g := gp + 1
        else begin
          incr insns;
          on_block ~addr:(pc + 1) ~size:1;
          emit (pc + 1) addr.(j) Event.Uncond;
          g := j
        end
      end
    end
    else if op = Flat.ojump then begin
      incr insns;
      emit pc addr.(fa.(gp)) Event.Uncond;
      g := fa.(gp)
    end
    else if op = Flat.oswitch then begin
      incr insns;
      let target = succ.(fa.(gp) + next_choice ()) in
      emit pc addr.(target) Event.Indirect_jump;
      g := target
    end
    else if op = Flat.ocall then begin
      incr insns;
      let callee = fa.(gp) in
      emit pc addr.(callee) Event.Call;
      push fb.(gp) fc.(gp);
      g := callee
    end
    else if op = Flat.ovcall then begin
      incr insns;
      let callee = succ.(fa.(gp) + next_choice ()) in
      emit pc addr.(callee) Event.Indirect_call;
      push fb.(gp) fc.(gp);
      g := callee
    end
    else if op = Flat.oret then begin
      incr insns;
      if !sp = 0 then begin
        emit pc 0 Event.Ret;
        running := false
      end
      else begin
        decr sp;
        let jump_pc = !s_jump.(!sp) in
        let resume = !s_res.(!sp) in
        if jump_pc < 0 then begin
          emit pc addr.(resume) Event.Ret;
          g := resume
        end
        else begin
          emit pc jump_pc Event.Ret;
          incr insns;
          on_block ~addr:jump_pc ~size:1;
          emit jump_pc addr.(resume) Event.Uncond;
          g := resume
        end
      end
    end
    else begin
      (* ohalt *)
      incr insns;
      running := false
    end
  done;
  Ba_obs.Counter.incr m_replays;
  Ba_obs.Counter.add m_steps !steps;
  Ba_obs.Counter.add m_insns !insns;
  Ba_obs.Counter.add m_branches !branches;
  {
    Engine.insns = !insns;
    steps = !steps;
    branches = !branches;
    completed = tr.Trace.completed;
  }
