open Ba_layout

type t = {
  image : Image.t;
  entry : int;
  pbase : int array;
  addr : int array;
  insns : int array;
  opcode : int array;
  a : int array;
  b : int array;
  c : int array;
  succ : int array;
}

let onone = 0
let ojump = 1
let ocond = 2
let oswitch = 3
let ocall = 4
let ovcall = 5
let oret = 6
let ohalt = 7

let of_image (image : Image.t) =
  let linears = image.Image.linears in
  let nprocs = Array.length linears in
  let pbase = Array.make nprocs 0 in
  let n = ref 0 in
  for p = 0 to nprocs - 1 do
    pbase.(p) <- !n;
    n := !n + Array.length linears.(p).Linear.blocks
  done;
  let n = !n in
  let addr = Array.make n 0 in
  let insns = Array.make n 0 in
  let opcode = Array.make n onone in
  let a = Array.make n (-1) in
  let b = Array.make n (-1) in
  let c = Array.make n (-1) in
  (* successor pool: switch positions and vcall callee entries, as global
     positions *)
  let pool_len =
    let len = ref 0 in
    Array.iter
      (fun lin ->
        Array.iter
          (fun lb ->
            match lb.Linear.term with
            | Linear.Lswitch { positions; _ } -> len := !len + Array.length positions
            | Linear.Lvcall { callees; _ } -> len := !len + Array.length callees
            | _ -> ())
          lin.Linear.blocks)
      linears;
    !len
  in
  let succ = Array.make (max 1 pool_len) (-1) in
  let pool_next = ref 0 in
  for p = 0 to nprocs - 1 do
    let base = pbase.(p) in
    let blocks = linears.(p).Linear.blocks in
    Array.iteri
      (fun pos lb ->
        let g = base + pos in
        addr.(g) <- lb.Linear.addr;
        insns.(g) <- lb.Linear.insns;
        let cont_operands cont =
          match cont with
          | Linear.Fall -> (-1, g + 1)
          | Linear.Jump_to target ->
            (Linear.inserted_jump_pc lb, base + target)
        in
        match lb.Linear.term with
        | Linear.Lnone -> opcode.(g) <- onone
        | Linear.Ljump target ->
          opcode.(g) <- ojump;
          a.(g) <- base + target
        | Linear.Lcond { taken_pos; taken_on; inserted_jump } ->
          opcode.(g) <- ocond;
          a.(g) <- base + taken_pos;
          b.(g) <- (if taken_on then 1 else 0);
          c.(g) <- (match inserted_jump with Some j -> base + j | None -> -1)
        | Linear.Lswitch { positions; _ } ->
          opcode.(g) <- oswitch;
          a.(g) <- !pool_next;
          b.(g) <- Array.length positions;
          Array.iter
            (fun target ->
              succ.(!pool_next) <- base + target;
              incr pool_next)
            positions
        | Linear.Lcall { callee; cont } ->
          opcode.(g) <- ocall;
          a.(g) <- pbase.(callee);
          let jump_pc, resume = cont_operands cont in
          b.(g) <- jump_pc;
          c.(g) <- resume
        | Linear.Lvcall { callees; cont; _ } ->
          opcode.(g) <- ovcall;
          a.(g) <- !pool_next;
          Array.iter
            (fun callee ->
              succ.(!pool_next) <- pbase.(callee);
              incr pool_next)
            callees;
          let jump_pc, resume = cont_operands cont in
          b.(g) <- jump_pc;
          c.(g) <- resume
        | Linear.Lret -> opcode.(g) <- oret
        | Linear.Lhalt -> opcode.(g) <- ohalt)
      blocks
  done;
  {
    image;
    entry = pbase.(image.Image.program.Ba_ir.Program.main);
    pbase;
    addr;
    insns;
    opcode;
    a;
    b;
    c;
    succ;
  }
