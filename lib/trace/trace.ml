type t = {
  steps : int;
  completed : bool;
  n_conds : int;
  conds : bytes;
  n_choices : int;
  choices : bytes;
}

let byte_size t = Bytes.length t.conds + Bytes.length t.choices

let equal a b =
  a.steps = b.steps && a.completed = b.completed && a.n_conds = b.n_conds
  && a.n_choices = b.n_choices
  && Bytes.equal a.conds b.conds
  && Bytes.equal a.choices b.choices

let cond t i =
  if i < 0 || i >= t.n_conds then invalid_arg "Trace.cond: index out of range";
  (Char.code (Bytes.get t.conds (i lsr 3)) lsr (i land 7)) land 1 = 1

module Builder = struct
  type t = {
    conds : Buffer.t;
    mutable bit_acc : int;
    mutable bit_n : int;
    mutable n_conds : int;
    choices : Buffer.t;
    mutable n_choices : int;
  }

  let create () =
    {
      conds = Buffer.create 4096;
      bit_acc = 0;
      bit_n = 0;
      n_conds = 0;
      choices = Buffer.create 1024;
      n_choices = 0;
    }

  let add_outcome b v =
    if v then b.bit_acc <- b.bit_acc lor (1 lsl b.bit_n);
    b.bit_n <- b.bit_n + 1;
    b.n_conds <- b.n_conds + 1;
    if b.bit_n = 8 then begin
      Buffer.add_char b.conds (Char.chr b.bit_acc);
      b.bit_acc <- 0;
      b.bit_n <- 0
    end

  let add_choice b i =
    Ba_exec.Trace_io.buf_varint b.choices i;
    b.n_choices <- b.n_choices + 1

  let finish b ~steps ~completed =
    if b.bit_n > 0 then begin
      Buffer.add_char b.conds (Char.chr b.bit_acc);
      b.bit_acc <- 0;
      b.bit_n <- 0
    end;
    {
      steps;
      completed;
      n_conds = b.n_conds;
      conds = Buffer.to_bytes b.conds;
      n_choices = b.n_choices;
      choices = Buffer.to_bytes b.choices;
    }
end

(* -- disk format ----------------------------------------------------------- *)

let magic = "BAST1\n"

type file = { seed : int; max_steps : int; trace : t }

(* Seeds may be any int; zigzag them into the nonnegative range the varint
   coder accepts. *)
let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag n = (n lsr 1) lxor (- (n land 1))

let save ~path ~seed ~max_steps t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      let v = Ba_exec.Trace_io.write_varint oc in
      v (zigzag seed);
      v max_steps;
      v t.steps;
      output_byte oc (if t.completed then 1 else 0);
      v t.n_conds;
      v (Bytes.length t.conds);
      output_bytes oc t.conds;
      v t.n_choices;
      v (Bytes.length t.choices);
      output_bytes oc t.choices)

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (match really_input_string ic (String.length magic) with
      | m when m = magic -> ()
      | _ -> failwith "Trace.load: bad magic"
      | exception End_of_file -> failwith "Trace.load: truncated header");
      let v () = Ba_exec.Trace_io.read_varint ic in
      let seed = unzigzag (v ()) in
      let max_steps = v () in
      let steps = v () in
      let completed =
        match input_byte ic with
        | 0 -> false
        | 1 -> true
        | _ -> failwith "Trace.load: bad completed flag"
        | exception End_of_file -> failwith "Trace.load: truncated file"
      in
      let n_conds = v () in
      let conds_len = v () in
      let conds = Bytes.create conds_len in
      (try really_input ic conds 0 conds_len
       with End_of_file -> failwith "Trace.load: truncated cond stream");
      let n_choices = v () in
      let choices_len = v () in
      let choices = Bytes.create choices_len in
      (try really_input ic choices 0 choices_len
       with End_of_file -> failwith "Trace.load: truncated choice stream");
      { seed; max_steps; trace = { steps; completed; n_conds; conds; n_choices; choices } })
