(** Flattened code images.

    [of_image] specializes an {!Ba_layout.Image.t} into position-indexed
    parallel arrays over {e global positions} (procedure layouts
    concatenated in program order), so {!Replay}'s dispatch loop is array
    reads only — no hashtables, no option chasing, no per-visit float
    scans. *)

type t = {
  image : Ba_layout.Image.t;  (** the image this was flattened from *)
  entry : int;  (** global position of main's entry block *)
  pbase : int array;  (** first global position of each procedure *)
  addr : int array;  (** block address, by global position *)
  insns : int array;  (** straight-line instruction count *)
  opcode : int array;  (** terminator opcode, one of the [o*] codes below *)
  a : int array;  (** primary operand, see the opcode table *)
  b : int array;  (** secondary operand *)
  c : int array;  (** tertiary operand *)
  succ : int array;  (** shared successor pool for switch/vcall targets *)
}

(** Opcodes and operand meaning ([g] is the block's global position):

    - [onone]: fall through to [g+1]; no operands.
    - [ojump]: [a] = target global position.
    - [ocond]: [a] = taken global position, [b] = 1 iff taken on [true],
      [c] = inserted-jump global position or [-1] for fall-through.
    - [oswitch]: [a] = offset into [succ], [b] = target count.
    - [ocall]: [a] = callee entry global position, [b] = return-jump pc or
      [-1] when the continuation falls through, [c] = resume global
      position.
    - [ovcall]: [a] = offset into [succ] (callee entry global positions),
      [b]/[c] as [ocall]; target count is implicit in the trace.
    - [oret], [ohalt]: no operands. *)

val onone : int
val ojump : int
val ocond : int
val oswitch : int
val ocall : int
val ovcall : int
val oret : int
val ohalt : int

val of_image : Ba_layout.Image.t -> t
