(** Integer-valued distribution metrics (return-stack depth, TryN group
    size).  Buckets are upper bounds — a value lands in the first bucket
    whose bound is [>= v], or in the final overflow slot; the default
    bucket set is powers of two up to 64 Ki. *)

type t

val make : ?unit_:string -> ?volatile:bool -> ?buckets:int array -> string -> t
val name : t -> string
val observe : t -> int -> unit

val observe_n : t -> int -> n:int -> unit
(** [observe_n h v ~n] records [n] observations of value [v] at once —
    exactly equivalent to [n] calls of [observe h v]; structures that batch
    their metrics flush per-value tallies through this. *)

val quantile : Registry.hsnap -> float -> int option
(** [quantile snap q] is a nearest-rank estimate of the [q]-quantile
    ([0.0 <= q <= 1.0], clamped) of the observations in [snap]: the upper
    bound of the bucket containing the rank, capped at the exact maximum
    (so [quantile snap 1.0 = Some max]).  [None] when the snapshot is
    empty. *)
