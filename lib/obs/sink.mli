(** Registry output.

    Three sinks: [Ascii] (human-facing tables and a span tree, everything
    included), [Json] (machine-facing via {!Ba_util.Json}), and [Noop]
    (renders nothing — with no registry installed the whole subsystem
    costs one branch per instrumented operation).

    Determinism: [to_json] defaults to [~times:false ~volatile:false],
    eliding span wall-times and scheduling-dependent metrics (pool steals,
    pool width) — the resulting document is byte-identical whatever [-j]
    the work ran under.  [render] defaults to showing everything; its
    output is for eyes, not for diffing. *)

type format = Ascii | Json | Noop

val to_json : ?times:bool -> ?volatile:bool -> Registry.t -> Ba_util.Json.t

val render : ?times:bool -> ?volatile:bool -> Registry.t -> string

val emit : ?times:bool -> ?volatile:bool -> format -> Registry.t -> string
(** [Json] output ends with a newline; [Noop] is [""]. *)
