(** Monotonic event counters.

    [make] is cheap and idempotent (handles are catalogue entries); keep
    handles at module scope for hot paths.  [incr]/[add] record into the
    calling domain's current registry and are single-branch no-ops when
    collection is off. *)

type t

val make : ?unit_:string -> ?volatile:bool -> string -> t
val name : t -> string
val incr : t -> unit

val add : t -> int -> unit
(** [add t 0] is a no-op and does not materialise the counter's cell —
    flushing a zero whole-run sum leaves the registry exactly as
    per-event increments would have. *)
