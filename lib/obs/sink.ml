type format = Ascii | Json | Noop

let is_volatile name =
  match Catalogue.find name with
  | Some def -> def.Catalogue.volatile
  | None -> false

let unit_of name =
  match Catalogue.find name with Some def -> def.Catalogue.unit_ | None -> ""

let keep ~volatile (name, _) = volatile || not (is_volatile name)

(* -- JSON ------------------------------------------------------------------- *)

let histo_json (h : Registry.hsnap) =
  let open Ba_util.Json in
  let buckets =
    List.filteri (fun i _ -> h.Registry.counts.(i) > 0)
      (Array.to_list (Array.mapi (fun i le -> (le, h.Registry.counts.(i))) h.Registry.bounds))
  in
  let overflow = h.Registry.counts.(Array.length h.Registry.counts - 1) in
  Obj
    (List.concat
       [
         [ ("count", Int h.Registry.total); ("sum", Int h.Registry.sum) ];
         (if h.Registry.total > 0 then [ ("max", Int h.Registry.max_value) ] else []);
         [
           ( "buckets",
             List
               (List.map
                  (fun (le, c) -> Obj [ ("le", Int le); ("count", Int c) ])
                  buckets) );
         ];
         (if overflow > 0 then [ ("overflow", Int overflow) ] else []);
       ])

let rec span_json ~times (s : Registry.span) =
  let open Ba_util.Json in
  Obj
    (List.concat
       [
         [ ("name", String s.Registry.name); ("count", Int s.Registry.count) ];
         (if times then [ ("seconds", Float s.Registry.seconds) ] else []);
         (match s.Registry.children with
         | [] -> []
         | cs -> [ ("children", List (List.map (span_json ~times) cs)) ]);
       ])

let to_json ?(times = false) ?(volatile = false) reg =
  let open Ba_util.Json in
  let obj_of entries value = Obj (List.map (fun (n, v) -> (n, value v)) entries) in
  Obj
    [
      ("counters", obj_of (List.filter (keep ~volatile) (Registry.counters reg)) (fun v -> Int v));
      ("gauges", obj_of (List.filter (keep ~volatile) (Registry.gauges reg)) (fun v -> Int v));
      ( "histograms",
        obj_of (List.filter (keep ~volatile) (Registry.histograms reg)) histo_json );
      ("spans", List (List.map (span_json ~times) (Registry.spans reg)));
    ]

(* -- ASCII ------------------------------------------------------------------ *)

let scalar_table title rows =
  if rows = [] then ""
  else
    let columns =
      Ba_util.Ascii_table.[ column ~align:Left "metric"; column "value"; column ~align:Left "unit" ]
    in
    Printf.sprintf "-- %s --\n%s" title
      (Ba_util.Ascii_table.render ~columns
         ~rows:
           (List.map
              (fun (name, v) -> [ name; Ba_util.Ascii_table.int_cell v; unit_of name ])
              rows))

let histo_table rows =
  if rows = [] then ""
  else
    let columns =
      Ba_util.Ascii_table.
        [
          column ~align:Left "histogram"; column "count"; column "sum"; column "mean";
          column "max";
        ]
    in
    Printf.sprintf "-- histograms --\n%s"
      (Ba_util.Ascii_table.render ~columns
         ~rows:
           (List.map
              (fun (name, (h : Registry.hsnap)) ->
                [
                  name;
                  Ba_util.Ascii_table.int_cell h.Registry.total;
                  Ba_util.Ascii_table.int_cell h.Registry.sum;
                  (if h.Registry.total = 0 then "-"
                   else
                     Ba_util.Ascii_table.float_cell ~decimals:2
                       (float_of_int h.Registry.sum /. float_of_int h.Registry.total));
                  (if h.Registry.total = 0 then "-"
                   else Ba_util.Ascii_table.int_cell h.Registry.max_value);
                ])
              rows))

let rec span_lines ~times ~depth (s : Registry.span) =
  let indent = String.make (2 * depth) ' ' in
  let line =
    if times then
      Printf.sprintf "%s%s: %d (%.3fs)" indent s.Registry.name s.Registry.count
        s.Registry.seconds
    else Printf.sprintf "%s%s: %d" indent s.Registry.name s.Registry.count
  in
  line :: List.concat_map (span_lines ~times ~depth:(depth + 1)) s.Registry.children

let render ?(times = true) ?(volatile = true) reg =
  let sections =
    List.filter
      (fun s -> s <> "")
      [
        scalar_table "counters" (List.filter (keep ~volatile) (Registry.counters reg));
        scalar_table "gauges" (List.filter (keep ~volatile) (Registry.gauges reg));
        histo_table (List.filter (keep ~volatile) (Registry.histograms reg));
        (match Registry.spans reg with
        | [] -> ""
        | spans ->
          "-- spans --\n"
          ^ String.concat "\n" (List.concat_map (span_lines ~times ~depth:0) spans)
          ^ "\n");
      ]
  in
  String.concat "\n" sections

let emit ?times ?volatile format reg =
  match format with
  | Noop -> ""
  | Json -> Ba_util.Json.to_string (to_json ?times ?volatile reg) ^ "\n"
  | Ascii -> render ?times ?volatile reg
