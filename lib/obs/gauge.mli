(** Last-write-wins point-in-time values (pool width, table occupancy).

    Under the task-order registry merge, the value observed is the one the
    last task (in input order) set — the same a sequential run would leave
    behind. *)

type t

val make : ?unit_:string -> ?volatile:bool -> string -> t
val name : t -> string
val set : t -> int -> unit
