type t = Catalogue.def

let make ?unit_ ?volatile name = Catalogue.register ?unit_ ?volatile Catalogue.Gauge name

let name (t : t) = t.Catalogue.name

let set t v =
  match Registry.current () with
  | None -> ()
  | Some r -> Registry.set_gauge r t v
