(** Metric registries: where counters, gauges, histograms and spans record.

    A registry is a plain single-domain container.  Collection is off by
    default — metric handles are no-ops until a registry is installed with
    {!with_registry} (one conditional branch per operation when disabled).
    Parallel code gives each task its own registry and merges them in task
    order ({!merge_into}), which is how every observable number stays
    deterministic under [-j]: counters and histograms are sums, a gauge
    keeps the last task-order write, spans accumulate under the
    submitter's open span. *)

type hsnap = {
  bounds : int array;
  counts : int array;  (** one slot per bound, plus a final overflow slot *)
  total : int;
  sum : int;
  max_value : int;  (** [min_int] when [total = 0] *)
}

type span = { name : string; count : int; seconds : float; children : span list }

type t

val create : unit -> t

val current : unit -> t option
(** The registry installed on the calling domain, if any. *)

val set_current : t option -> unit

val with_registry : t -> (unit -> 'a) -> 'a
(** [with_registry r f] installs [r] as the calling domain's current
    registry for the duration of [f], restoring the previous one after
    (exceptions included). *)

val add_counter : t -> Catalogue.def -> int -> unit
val set_gauge : t -> Catalogue.def -> int -> unit
val observe_n : t -> Catalogue.def -> int -> int -> unit
(** [observe_n t def v n] records [n] observations of [v]; rejects negative
    [n]. *)

val observe : t -> Catalogue.def -> int -> unit
(** The typed mutators behind the metric handles; each finds-or-creates the
    cell for [def] and updates it. *)

type node
(** An open span; only {!Span} uses these. *)

val enter_span : t -> string -> node
(** Open (or re-open) the named child of the current span and make it
    current. *)

val exit_span : t -> node -> float -> unit
(** Close [node], adding one visit and [seconds] to it.  Raises
    [Invalid_argument] if [node] is not the innermost open span. *)

val merge_into : into:t -> t -> unit
(** Merge a task registry into a parent.  Raises [Invalid_argument] if a
    name changed kind or histogram shape between the two (impossible when
    all handles come from {!Catalogue}). *)

val counters : t -> (string * int) list
(** Counter cells, sorted by name. *)

val gauges : t -> (string * int) list
(** Gauge cells that were actually set, sorted by name. *)

val histograms : t -> (string * hsnap) list

val counter_value : t -> string -> int
(** [0] when the counter never fired. *)

val gauge_value : t -> string -> int option
val histogram_snapshot : t -> string -> hsnap option

val spans : t -> span list
(** Top-level spans, children sorted by name at every level. *)

val is_empty : t -> bool
