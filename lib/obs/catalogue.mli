(** The process-global catalogue of metric definitions.

    Every metric handle ({!Ba_obs.Counter}, {!Ba_obs.Gauge},
    {!Ba_obs.Histogram}) is backed by a catalogue entry keyed by its stable
    hierarchical name (["predict.pht.hit"], ["par.memo.miss"], ...).  The
    catalogue makes names first-class: sinks can report a metric's unit,
    tests can assert a name exists, and registries created on different
    domains agree on histogram bucket bounds because the first registration
    of a name wins. *)

type kind = Counter | Gauge | Histogram

val kind_name : kind -> string

type def = private {
  name : string;
  kind : kind;
  unit_ : string;  (** e.g. ["events"], ["cycles"], ["blocks"] — documentation only *)
  volatile : bool;
      (** scheduling-dependent (pool steals, occupancy): excluded from
          deterministic sink output by default *)
  buckets : int array;  (** histogram upper bounds; [[||]] for other kinds *)
  id : int;
      (** dense process-wide index, assigned at first registration; lets a
          registry reach a metric's cell by array lookup instead of hashing
          the name on every hot-path increment *)
}

val register : ?unit_:string -> ?volatile:bool -> ?buckets:int array -> kind -> string -> def
(** [register kind name] returns the definition for [name], creating it on
    first use.  Re-registering an existing name returns the original
    definition (its unit, volatility and buckets are kept); registering the
    same name with a different [kind] raises [Invalid_argument], as do
    empty/ill-formed names and non-increasing bucket bounds. *)

val find : string -> def option

val all : unit -> def list
(** Every registered definition, sorted by name. *)
