type t = Catalogue.def

let make ?unit_ ?volatile name = Catalogue.register ?unit_ ?volatile Catalogue.Counter name

let name (t : t) = t.Catalogue.name

(* [n = 0] must not materialise a cell: batched flushes add whole-run
   sums, and a zero sum has to leave the registry exactly as the
   per-event increments would have — absent. *)
let add t n =
  if n <> 0 then
    match Registry.current () with
    | None -> ()
    | Some r -> Registry.add_counter r t n

let incr t = add t 1
