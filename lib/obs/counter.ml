type t = Catalogue.def

let make ?unit_ ?volatile name = Catalogue.register ?unit_ ?volatile Catalogue.Counter name

let name (t : t) = t.Catalogue.name

let add t n =
  match Registry.current () with
  | None -> ()
  | Some r -> Registry.add_counter r t n

let incr t = add t 1
