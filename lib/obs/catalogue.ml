type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type def = {
  name : string;
  kind : kind;
  unit_ : string;
  volatile : bool;
  buckets : int array;
  id : int;  (* dense, assigned at first registration; registry fast path *)
}

(* The catalogue is process-global and written from module initialisers and
   from dynamic registrations (per-architecture counters created at
   simulator construction time, possibly on a pool worker domain), so every
   access takes the mutex. *)
let mutex = Mutex.create ()
let table : (string, def) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Powers of two up to 64 Ki: structure depths and sizes (return-stack
   depth, TryN group size, pool batch width) all live comfortably here. *)
let default_buckets =
  Array.init 17 (fun i -> 1 lsl i)

let check_name name =
  if name = "" then invalid_arg "Catalogue.register: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '/' -> ()
      | _ ->
        invalid_arg
          (Printf.sprintf "Catalogue.register: invalid character %C in metric name %S"
             c name))
    name

let register ?(unit_ = "events") ?(volatile = false) ?buckets kind name =
  check_name name;
  let buckets =
    match kind with
    | Histogram -> (
      match buckets with
      | Some b ->
        if Array.length b = 0 then
          invalid_arg "Catalogue.register: histogram needs at least one bucket";
        Array.iteri
          (fun i _ ->
            if i > 0 && b.(i) <= b.(i - 1) then
              invalid_arg "Catalogue.register: bucket bounds must be increasing")
          b;
        b
      | None -> default_buckets)
    | Counter | Gauge -> [||]
  in
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some existing ->
        if existing.kind <> kind then
          invalid_arg
            (Printf.sprintf "Catalogue.register: %s already registered as a %s" name
               (kind_name existing.kind));
        (* First registration wins: every handle for a name shares one
           definition, so histogram cells always agree on bucket bounds. *)
        existing
      | None ->
        let def = { name; kind; unit_; volatile; buckets; id = !next_id } in
        incr next_id;
        Hashtbl.add table name def;
        def)

let find name = locked (fun () -> Hashtbl.find_opt table name)

let all () =
  locked (fun () ->
      List.sort
        (fun a b -> compare a.name b.name)
        (Hashtbl.fold (fun _ d acc -> d :: acc) table []))
