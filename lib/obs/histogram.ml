type t = Catalogue.def

let make ?unit_ ?volatile ?buckets name =
  Catalogue.register ?unit_ ?volatile ?buckets Catalogue.Histogram name

let name (t : t) = t.Catalogue.name

let observe t v =
  match Registry.current () with
  | None -> ()
  | Some r -> Registry.observe r t v

let observe_n t v ~n =
  match Registry.current () with
  | None -> ()
  | Some r -> Registry.observe_n r t v n
