type t = Catalogue.def

let make ?unit_ ?volatile ?buckets name =
  Catalogue.register ?unit_ ?volatile ?buckets Catalogue.Histogram name

let name (t : t) = t.Catalogue.name

let observe t v =
  match Registry.current () with
  | None -> ()
  | Some r -> Registry.observe r t v

let observe_n t v ~n =
  match Registry.current () with
  | None -> ()
  | Some r -> Registry.observe_n r t v n

(* Nearest-rank quantile estimate from a snapshot: walk the cumulative
   counts to the bucket containing the rank and report that bucket's upper
   bound (the overflow slot reports the true maximum, which the snapshot
   tracks exactly). *)
let quantile (s : Registry.hsnap) q =
  if s.Registry.total = 0 then None
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int s.Registry.total)) in
      if r < 1 then 1 else r
    in
    let n_bounds = Array.length s.Registry.bounds in
    let rec walk i acc =
      if i >= n_bounds then Some s.Registry.max_value
      else
        let acc = acc + s.Registry.counts.(i) in
        if acc >= rank then Some (min s.Registry.bounds.(i) s.Registry.max_value)
        else walk (i + 1) acc
    in
    walk 0 0
  end
