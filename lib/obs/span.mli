(** Nestable stage timers.

    [with_ "align" f] runs [f] under a span named ["align"] nested below
    whatever span is currently open on this domain, accumulating one visit
    and the wall time.  Span {e structure} and visit counts are
    deterministic; the seconds are not, so sinks elide them unless asked
    ({!Sink.to_json} [~times:true]).  A single branch when collection is
    off. *)

val with_ : string -> (unit -> 'a) -> 'a
