type hsnap = {
  bounds : int array;
  counts : int array;  (* one slot per bound, plus an overflow slot *)
  total : int;
  sum : int;
  max_value : int;
}

type cell =
  | Counter_cell of int ref
  | Gauge_cell of { mutable value : int; mutable set : bool }
  | Histogram_cell of {
      bounds : int array;
      counts : int array;
      mutable total : int;
      mutable sum : int;
      mutable max_value : int;
    }

type snode = {
  mutable s_count : int;
  mutable s_seconds : float;
  s_children : (string, snode) Hashtbl.t;
}

type span = { name : string; count : int; seconds : float; children : span list }

type t = {
  cells : (string, cell) Hashtbl.t;
  mutable by_id : cell option array;
      (* cache of [cells] indexed by [Catalogue.def.id]: hot-path increments
         reach their cell with one array read instead of hashing the metric
         name on every event *)
  s_root : snode;
  mutable s_stack : snode list;  (* non-empty; head is the open span *)
}

let fresh_snode () = { s_count = 0; s_seconds = 0.0; s_children = Hashtbl.create 4 }

let create () =
  let root = fresh_snode () in
  { cells = Hashtbl.create 64; by_id = Array.make 256 None; s_root = root;
    s_stack = [ root ] }

(* A registry is deliberately not thread-safe: collection installs one
   registry per domain (the pool gives each task its own and merges them in
   task order), so cell updates never race.  The "current registry" is
   domain-local state. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get current_key
let set_current r = Domain.DLS.set current_key r

let with_registry r f =
  let prev = current () in
  set_current (Some r);
  Fun.protect ~finally:(fun () -> set_current prev) f

(* -- cells ------------------------------------------------------------------ *)

let slow_cell t (def : Catalogue.def) =
  match Hashtbl.find_opt t.cells def.Catalogue.name with
  | Some c -> c
  | None ->
    let c =
      match def.Catalogue.kind with
      | Catalogue.Counter -> Counter_cell (ref 0)
      | Catalogue.Gauge -> Gauge_cell { value = 0; set = false }
      | Catalogue.Histogram ->
        Histogram_cell
          {
            bounds = def.Catalogue.buckets;
            counts = Array.make (Array.length def.Catalogue.buckets + 1) 0;
            total = 0;
            sum = 0;
            max_value = min_int;
          }
    in
    Hashtbl.add t.cells def.Catalogue.name c;
    c

let cell t (def : Catalogue.def) =
  let id = def.Catalogue.id in
  if id < Array.length t.by_id then
    match Array.unsafe_get t.by_id id with
    | Some c -> c
    | None ->
      let c = slow_cell t def in
      t.by_id.(id) <- Some c;
      c
  else begin
    let grown = Array.make (max (id + 1) (2 * Array.length t.by_id)) None in
    Array.blit t.by_id 0 grown 0 (Array.length t.by_id);
    t.by_id <- grown;
    let c = slow_cell t def in
    t.by_id.(id) <- Some c;
    c
  end

let add_counter t def n =
  match cell t def with
  | Counter_cell c -> c := !c + n
  | Gauge_cell _ | Histogram_cell _ ->
    invalid_arg (Printf.sprintf "Registry.add_counter: %s is not a counter" def.Catalogue.name)

let set_gauge t def v =
  match cell t def with
  | Gauge_cell g ->
    g.value <- v;
    g.set <- true
  | Counter_cell _ | Histogram_cell _ ->
    invalid_arg (Printf.sprintf "Registry.set_gauge: %s is not a gauge" def.Catalogue.name)

let observe_n t def v n =
  if n < 0 then invalid_arg "Registry.observe_n: negative count";
  if n > 0 then
    match cell t def with
    | Histogram_cell h ->
      let nb = Array.length h.bounds in
      let rec slot i = if i = nb || v <= h.bounds.(i) then i else slot (i + 1) in
      let i = slot 0 in
      h.counts.(i) <- h.counts.(i) + n;
      h.total <- h.total + n;
      h.sum <- h.sum + (v * n);
      if v > h.max_value then h.max_value <- v
    | Counter_cell _ | Gauge_cell _ ->
      invalid_arg (Printf.sprintf "Registry.observe: %s is not a histogram" def.Catalogue.name)

let observe t def v = observe_n t def v 1

(* -- spans ------------------------------------------------------------------ *)

type node = snode

let span_cursor t = match t.s_stack with n :: _ -> n | [] -> t.s_root

let enter_span t name =
  let parent = span_cursor t in
  let node =
    match Hashtbl.find_opt parent.s_children name with
    | Some n -> n
    | None ->
      let n = fresh_snode () in
      Hashtbl.add parent.s_children name n;
      n
  in
  t.s_stack <- node :: t.s_stack;
  node

let exit_span t node seconds =
  (match t.s_stack with
  | top :: rest when top == node -> t.s_stack <- rest
  | _ ->
    (* Mismatched enter/exit can only come from a bug in Span; fail loudly
       rather than corrupt the tree. *)
    invalid_arg "Registry.exit_span: span stack mismatch");
  node.s_count <- node.s_count + 1;
  node.s_seconds <- node.s_seconds +. seconds

(* -- merge ------------------------------------------------------------------ *)

let rec merge_snode ~into src =
  into.s_count <- into.s_count + src.s_count;
  into.s_seconds <- into.s_seconds +. src.s_seconds;
  Hashtbl.iter
    (fun name child ->
      let dst_child =
        match Hashtbl.find_opt into.s_children name with
        | Some n -> n
        | None ->
          let n = fresh_snode () in
          Hashtbl.add into.s_children name n;
          n
      in
      merge_snode ~into:dst_child child)
    src.s_children

let merge_into ~into src =
  Hashtbl.iter
    (fun name src_cell ->
      match (Hashtbl.find_opt into.cells name, src_cell) with
      | None, Counter_cell c -> Hashtbl.add into.cells name (Counter_cell (ref !c))
      | None, Gauge_cell g ->
        Hashtbl.add into.cells name (Gauge_cell { value = g.value; set = g.set })
      | None, Histogram_cell h ->
        Hashtbl.add into.cells name
          (Histogram_cell
             {
               bounds = h.bounds;
               counts = Array.copy h.counts;
               total = h.total;
               sum = h.sum;
               max_value = h.max_value;
             })
      | Some (Counter_cell dst), Counter_cell src -> dst := !dst + !src
      | Some (Gauge_cell dst), Gauge_cell src ->
        (* Task-order merge: a later task's set wins, as it would have in a
           sequential run. *)
        if src.set then begin
          dst.value <- src.value;
          dst.set <- true
        end
      | Some (Histogram_cell dst), Histogram_cell src ->
        if Array.length dst.counts <> Array.length src.counts then
          invalid_arg
            (Printf.sprintf "Registry.merge_into: %s has mismatched buckets" name);
        Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
        dst.total <- dst.total + src.total;
        dst.sum <- dst.sum + src.sum;
        dst.max_value <- max dst.max_value src.max_value
      | Some _, _ ->
        invalid_arg (Printf.sprintf "Registry.merge_into: %s changed kind" name))
    src.cells;
  (* Spans merge under the destination's open span, so work collected from
     pool tasks nests below whatever stage the submitter had open. *)
  merge_snode ~into:(span_cursor into) src.s_root

(* -- snapshots -------------------------------------------------------------- *)

let sorted_fold f t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun name c acc -> match f c with Some v -> (name, v) :: acc | None -> acc)
       t.cells [])

let counters t =
  sorted_fold (function Counter_cell c -> Some !c | _ -> None) t

let gauges t =
  sorted_fold (function Gauge_cell g when g.set -> Some g.value | _ -> None) t

let histograms t =
  sorted_fold
    (function
      | Histogram_cell h ->
        Some
          {
            bounds = h.bounds;
            counts = Array.copy h.counts;
            total = h.total;
            sum = h.sum;
            max_value = h.max_value;
          }
      | _ -> None)
    t

let counter_value t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Counter_cell c) -> !c
  | Some _ | None -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Gauge_cell g) when g.set -> Some g.value
  | Some _ | None -> None

let histogram_snapshot t name =
  match Hashtbl.find_opt t.cells name with
  | Some (Histogram_cell h) ->
    Some
      {
        bounds = h.bounds;
        counts = Array.copy h.counts;
        total = h.total;
        sum = h.sum;
        max_value = h.max_value;
      }
  | Some _ | None -> None

let rec snapshot_snode name node =
  {
    name;
    count = node.s_count;
    seconds = node.s_seconds;
    children =
      List.sort
        (fun a b -> compare a.name b.name)
        (Hashtbl.fold (fun n c acc -> snapshot_snode n c :: acc) node.s_children []);
  }

let spans t = (snapshot_snode "" t.s_root).children

let is_empty t = Hashtbl.length t.cells = 0 && Hashtbl.length t.s_root.s_children = 0
