let with_ name f =
  match Registry.current () with
  | None -> f ()
  | Some r ->
    let node = Registry.enter_span r name in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> Registry.exit_span r node (Unix.gettimeofday () -. t0))
      f
