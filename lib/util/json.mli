(** Minimal JSON emission and parsing.

    The diagnostic and certificate machinery needs machine-readable output
    (`branch_align lint --format=json`, `branch_align verify --format=json`)
    without pulling a JSON dependency into the build.  The serve protocol
    additionally needs to read frames back, so a small strict parser lives
    here too. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats render as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-literal escaping of the content (no surrounding quotes). *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Strict parse of a single JSON value.  Object key order is preserved;
    numbers containing ['.'], ['e'] or ['E'] become [Float], others [Int]
    (falling back to [Float] on overflow).  Trailing non-whitespace after
    the value is an error. *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] when [json] is an [Obj]. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
