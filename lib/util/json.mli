(** Minimal JSON emission.

    The diagnostic and certificate machinery needs machine-readable output
    (`branch_align lint --format=json`, `branch_align verify --format=json`)
    without pulling a JSON dependency into the build.  This is an emitter
    only — values are constructed in code and rendered compactly; there is
    deliberately no parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats render as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-literal escaping of the content (no surrounding quotes). *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val pp : Format.formatter -> t -> unit
