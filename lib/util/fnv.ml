let prime = 0x100000001b3L
let offset_basis = 0xcbf29ce484222325L

let hash64 s =
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let digest64 s = Printf.sprintf "%016Lx" (hash64 s)
