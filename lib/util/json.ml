type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  (* "%g" may print a bare integer ("3") or an exponent ("1e+06"); both are
     JSON numbers.  NaN and infinities have no JSON spelling. *)
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    (* Encode a Unicode scalar value as UTF-8.  Lone surrogates are mapped
       to U+FFFD so malformed input cannot round-trip invalid bytes. *)
    let cp = if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp in
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape"
         else
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
             advance ();
             let cp = parse_hex4 () in
             (* Combine surrogate pairs when both halves are present. *)
             if
               cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
               && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = parse_hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 add_utf8 buf
                   (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
               else begin
                 add_utf8 buf cp;
                 add_utf8 buf lo
               end
             end
             else add_utf8 buf cp
           | _ -> fail "invalid escape");
        loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          items := parse_value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elems ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg

(* Accessor helpers used by the serve protocol. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
