type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  (* "%g" may print a bare integer ("3") or an exponent ("1e+06"); both are
     JSON numbers.  NaN and infinities have no JSON spelling. *)
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)
