(** FNV-1a 64-bit hashing.

    The repo's one digest primitive: certificate digests
    ([Ba_verify.Certificate]) and memo keys ([Ba_par.Memo] consumers) both
    use it, so a digest printed anywhere can be recomputed from the same
    canonical string with this module. *)

val hash64 : string -> int64
(** The raw FNV-1a 64-bit hash of the string. *)

val digest64 : string -> string
(** [hash64] rendered as 16 lowercase hex characters. *)
