(** Memoized workload profiling and trace recording.

    Every matrix in the repo (the table harness, lint-all, verify-all, the
    bench pipelines) starts a cell by building a workload and profiling it —
    and both the profile and the semantic decision stream are
    layout-independent, so re-running the interpreter for every algorithm ×
    architecture cell is pure waste.  This module runs the interpreter
    {e exactly once} per workload per [max_steps] budget, collecting the
    program, its profile {e and} its packed {!Ba_trace.Trace.t} in the same
    pass, and shares the triple across all cells, including concurrent ones
    (the underlying {!Ba_par.Lru} blocks duplicate computations).

    The cache is bounded: entries are priced at the packed trace size plus a
    flat overhead and evicted least-recently-used once the byte budget
    (512 MiB by default, resizable with {!set_budget_mb}) is exceeded.
    Evictions only cost a recompute — the triple is a pure function of the
    key — so correctness never depends on residency.

    Sharing is sound because every consumer treats the triple as read-only:
    the profile's counters are only mutated during the initial profiling
    run, inside the memoized compute, and traces are never mutated after
    {!Ba_trace.Trace.Builder.finish}.

    The cache key is the FNV-1a-64 digest of ["profile|<name>|<max_steps>"]
    — workload names are unique and [Spec.build] is deterministic, so the
    triple is a pure function of the key. *)

val key : name:string -> max_steps:int -> string

val get_traced :
  ?max_steps:int -> Spec.t -> Ba_ir.Program.t * Ba_cfg.Profile.t * Ba_trace.Trace.t
(** [max_steps] defaults to {!Spec.default_max_steps}.  The returned
    program is the exact instance the profile was collected on (profile
    consumers check physical identity); the trace drives
    {!Ba_sim.Runner.simulate}'s replay path for every layout of that
    program. *)

val get : ?max_steps:int -> Spec.t -> Ba_ir.Program.t * Ba_cfg.Profile.t
(** {!get_traced} without the trace. *)

val stats : unit -> int * int
(** [(hits, misses)] of the process-wide cache. *)

val lru_stats : unit -> Ba_par.Lru.stats
(** Full cache statistics including evictions, resident entries, and byte
    usage against the budget. *)

val set_budget_mb : int -> unit
(** Resize the cache's total byte budget (evicting immediately to fit);
    values [<= 0] make it unbounded. *)

val clear : unit -> unit
