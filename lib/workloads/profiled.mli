(** Memoized workload profiling.

    Every matrix in the repo (the table harness, lint-all, verify-all, the
    bench pipelines) starts a cell by building a workload and profiling it —
    and the profile is layout-independent, so re-profiling the same workload
    for every algorithm × architecture cell is pure waste.  This module
    computes each workload's program + profile {e exactly once} per
    [max_steps] budget and shares the pair across all cells, including
    concurrent ones (the underlying {!Ba_par.Memo} blocks duplicate
    computations).

    Sharing is sound because every consumer treats the pair as read-only:
    the profile's counters are only mutated during the initial profiling
    run, inside the memoized compute.

    The cache key is the FNV-1a-64 digest of ["profile|<name>|<max_steps>"]
    — workload names are unique and [Spec.build] is deterministic, so the
    pair is a pure function of the key. *)

val key : name:string -> max_steps:int -> string

val get : ?max_steps:int -> Spec.t -> Ba_ir.Program.t * Ba_cfg.Profile.t
(** [max_steps] defaults to {!Spec.default_max_steps}.  The returned
    program is the exact instance the profile was collected on (profile
    consumers check physical identity). *)

val stats : unit -> int * int
(** [(hits, misses)] of the process-wide cache. *)

val clear : unit -> unit
