(* Default budget: 512 MiB comfortably holds every workload in the suite at
   the default step budget while still exercising eviction when a server is
   pointed at a smaller [--cache-mb]. *)
let default_budget_bytes = 512 * 1024 * 1024

(* A cached triple is dominated by its packed trace; the program and profile
   ride along under a flat overhead allowance. *)
let entry_overhead_bytes = 64 * 1024

let size_of (_program, _profile, trace) =
  Ba_trace.Trace.byte_size trace + entry_overhead_bytes

let cache : (Ba_ir.Program.t * Ba_cfg.Profile.t * Ba_trace.Trace.t) Ba_par.Lru.t =
  Ba_par.Lru.create ~shards:8 ~budget_bytes:default_budget_bytes ~name:"profiled"
    ~size_of ()

let key ~name ~max_steps =
  Ba_util.Fnv.digest64 (Printf.sprintf "profile|%s|%d" name max_steps)

let get_traced ?max_steps (w : Spec.t) =
  let max_steps =
    match max_steps with Some s -> s | None -> Spec.default_max_steps
  in
  Ba_par.Lru.get cache
    ~key:(key ~name:w.Spec.name ~max_steps)
    (fun () ->
      let program = w.Spec.build () in
      let profile, trace = Ba_trace.Record.profile_and_record ~max_steps program in
      (program, profile, trace))

let get ?max_steps w =
  let program, profile, _ = get_traced ?max_steps w in
  (program, profile)

let stats () =
  let s = Ba_par.Lru.stats cache in
  (s.Ba_par.Lru.hits, s.Ba_par.Lru.misses)

let lru_stats () = Ba_par.Lru.stats cache
let set_budget_mb mb = Ba_par.Lru.set_budget cache ~bytes:(mb * 1024 * 1024)
let clear () = Ba_par.Lru.clear cache
