let cache : (Ba_ir.Program.t * Ba_cfg.Profile.t * Ba_trace.Trace.t) Ba_par.Memo.t =
  Ba_par.Memo.create ()

let key ~name ~max_steps =
  Ba_util.Fnv.digest64 (Printf.sprintf "profile|%s|%d" name max_steps)

let get_traced ?max_steps (w : Spec.t) =
  let max_steps =
    match max_steps with Some s -> s | None -> Spec.default_max_steps
  in
  Ba_par.Memo.get cache
    ~key:(key ~name:w.Spec.name ~max_steps)
    (fun () ->
      let program = w.Spec.build () in
      let profile, trace = Ba_trace.Record.profile_and_record ~max_steps program in
      (program, profile, trace))

let get ?max_steps w =
  let program, profile, _ = get_traced ?max_steps w in
  (program, profile)

let stats () = (Ba_par.Memo.hits cache, Ba_par.Memo.misses cache)
let clear () = Ba_par.Memo.clear cache
