(** Conflict-aware placement.

    A post-pass over an aligned layout that reduces the {e predicted}
    predictor interference ({!Analyze.objective}) without giving up the
    alignment's own wins.  Two mechanisms, applied in order:

    + {b block-order perturbation} — adjacent layout swaps
      ({!Ba_layout.Decision.swap_positions}), accepted only when the
      procedure's exact {!Ba_core.Layout_cost.branch_cost} under the
      alignment's cost model does not increase {e and} the global conflict
      objective strictly decreases;
    + {b inter-procedure padding} — unused instruction slots inserted
      before procedures ({!Ba_layout.Image.build}'s [pads]) to steer
      branch addresses away from shared predictor indices.  Padding never
      moves code relative to its procedure, so execution semantics, the
      bisimulation argument and per-procedure costs are untouched.

    Both searches are greedy, first-improvement, in fixed (procedure,
    position / pad) order — deterministic by construction. *)

type result = {
  image : Ba_layout.Image.t;  (** final image, pads applied *)
  decisions : Ba_layout.Decision.t array;
  pads : int array;
  before : int;  (** conflict objective of the input layout *)
  after : int;  (** conflict objective of [image]; [after <= before] *)
  swaps : int;  (** accepted block-order perturbations *)
}

val improve :
  ?suite:Structure.t list ->
  ?arch:Ba_core.Cost_model.arch ->
  ?max_pad:int ->
  ?delta:bool ->
  ?interproc:bool ->
  profile:Ba_cfg.Profile.t ->
  Ba_ir.Program.t ->
  Ba_layout.Decision.t array ->
  result
(** [improve ~profile program decisions] runs both mechanisms under the
    ["place"] span.  [suite] defaults to {!Structure.placement_suite},
    [arch] (the swap guard's cost model) to [Btfnt], [max_pad] to 32.
    The result never has a larger objective than the input: every step
    requires strict improvement, and zero pads with zero swaps reproduce
    the input image.

    [delta] (default [true]) prices the swap guard incrementally with
    {!Ba_delta.Model} instead of re-lowering the whole procedure per
    candidate; the accepted swaps — and therefore the result — are
    bit-identical either way.

    [interproc] (default [false]) composes placement with the stitched
    layout: every image — the objective baseline, each swap candidate's,
    each pad candidate's and the final result — is built with
    {!Ba_layout.Image.build_interproc}, so the pads steer the hot regions
    of the stitched order (the cold section and later procedures shift
    with them, and the pad sweep prices each candidate exactly by
    rebuilding rather than through the base-shift shortcut, which is
    unsound for split procedures). *)
