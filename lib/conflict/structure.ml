type t =
  | Pht_direct of { entries : int }
  | Pht_gshare of { entries : int; history_bits : int }
  | Two_level_local of { branch_entries : int }
  | Btb of { entries : int; assoc : int }
  | Ras of { depth : int }
  | Icache of { lines : int; insns_per_line : int; assoc : int }
  | Alpha of { lines : int; insns_per_line : int }

let name = function
  | Pht_direct { entries } -> Printf.sprintf "pht-direct-%d" entries
  | Pht_gshare { entries; history_bits } ->
    Printf.sprintf "pht-gshare-%dh%d" entries history_bits
  | Two_level_local { branch_entries } ->
    Printf.sprintf "2level-local-%d" branch_entries
  | Btb { entries; assoc } -> Printf.sprintf "btb-%dx%d" entries assoc
  | Ras { depth } -> Printf.sprintf "ras-%d" depth
  | Icache { lines; insns_per_line; assoc } ->
    if assoc = 1 then Printf.sprintf "icache-%dx%d" lines insns_per_line
    else Printf.sprintf "icache-%dx%da%d" lines insns_per_line assoc
  | Alpha { lines; insns_per_line } ->
    Printf.sprintf "alpha-%dx%d" lines insns_per_line

let default_suite =
  [
    Pht_direct { entries = 256 };
    Pht_gshare { entries = 256; history_bits = 8 };
    Two_level_local { branch_entries = 64 };
    Btb { entries = 64; assoc = 2 };
    Ras { depth = 32 };
    Icache { lines = 64; insns_per_line = 8; assoc = 1 };
    Alpha { lines = 32; insns_per_line = 8 };
  ]

let placement_suite =
  [
    Pht_direct { entries = 256 };
    Two_level_local { branch_entries = 64 };
    Btb { entries = 64; assoc = 2 };
    Icache { lines = 64; insns_per_line = 8; assoc = 1 };
    Alpha { lines = 32; insns_per_line = 8 };
  ]
