(** The predictor structures the static conflict analysis reasons about.

    Each constructor names one hardware structure from the paper's
    architecture space together with its geometry.  The analysis evaluates
    the structure's {e pure} indexing function (exported by [Ba_predict]
    precisely so simulation and analysis cannot drift apart) over the
    static address map of a code image, and reports which entries end up
    shared by hot branch sites.

    The default geometries are scaled to the workload suite's code
    footprints (hundreds of instructions, not megabytes), the same scaling
    {!Ba_sim.Alpha.default_config} applies to its instruction cache: a
    4096-entry PHT over an 800-instruction program would never collide and
    the analysis would be vacuous. *)

type t =
  | Pht_direct of { entries : int }
      (** direct-mapped pattern history table; index = low pc bits *)
  | Pht_gshare of { entries : int; history_bits : int }
      (** gshare PHT.  The branch history register is dynamic, so the
          static analysis projects it to zero — a heuristic view (history
          zero re-occurs whenever the recent outcomes were all not-taken),
          not a bound.  Reports for this structure are advisory. *)
  | Two_level_local of { branch_entries : int }
      (** per-branch history table of Yeh & Patt's local scheme; branches
          sharing a history register interleave their outcome streams *)
  | Btb of { entries : int; assoc : int }
      (** branch target buffer; an entry is allocated per taken branch *)
  | Ras of { depth : int }  (** return-address stack *)
  | Icache of { lines : int; insns_per_line : int; assoc : int }
      (** instruction cache over fetched address ranges *)
  | Alpha of { lines : int; insns_per_line : int }
      (** the 21064's per-instruction history bits: direct-mapped lines
          whose refill discards every resident branch's history *)

val name : t -> string
(** Stable slug, e.g. ["pht-direct-256"]; used in reports, JSON and golden
    files. *)

val default_suite : t list
(** The seven structures the [analyze] subcommand reports on. *)

val placement_suite : t list
(** The address-sensitive subset driving conflict-aware placement: the RAS
    is layout-invariant and the gshare projection duplicates the direct
    PHT under zero history, so both are excluded from the placement
    objective. *)
